package risc1_test

import (
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"

	"risc1"
)

var lintTargets = []struct {
	name   string
	target risc1.Target
}{
	{"windowed", risc1.RISCWindowed},
	{"flat", risc1.RISCFlat},
	{"cisc", risc1.CISC},
}

// TestLintBenchmarkCorpusClean is the golden gate behind the analyzer's
// tuning: everything the Cm compiler emits for the paper's benchmark suite
// must lint warning-free on every target. Info diagnostics are allowed —
// recursion and window-spill predictions are facts, not defects — but they
// may only come from the reg-window pass.
func TestLintBenchmarkCorpusClean(t *testing.T) {
	for _, name := range risc1.BenchmarkNames() {
		src, ok := risc1.BenchmarkSource(name)
		if !ok {
			t.Fatalf("benchmark %q has no source", name)
		}
		for _, tt := range lintTargets {
			diags, err := risc1.LintCm(src, tt.target, risc1.LintOptions{})
			if err != nil {
				t.Errorf("%s/%s: %v", name, tt.name, err)
				continue
			}
			for _, d := range diags {
				if d.Severity >= risc1.SevWarning {
					t.Errorf("%s/%s: compiled code linted dirty: %s", name, tt.name, d)
				} else if d.Pass != "reg-window" {
					t.Errorf("%s/%s: unexpected info outside reg-window: %s", name, tt.name, d)
				}
			}
		}
	}
}

// TestLintRecursiveBenchmarksReported pins the reg-window pass's positive
// side: the suite's recursive programs each get exactly their unbounded-
// depth info on the windowed target.
func TestLintRecursiveBenchmarksReported(t *testing.T) {
	recursive := map[string]bool{"fib": true, "acker": true, "hanoi": true, "qsort": true, "queens": true}
	for name := range recursive {
		src, ok := risc1.BenchmarkSource(name)
		if !ok {
			t.Fatalf("benchmark %q has no source", name)
		}
		diags, err := risc1.LintCm(src, risc1.RISCWindowed, risc1.LintOptions{})
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		found := false
		for _, d := range diags {
			if d.Pass == "reg-window" && d.Severity == risc1.SevInfo &&
				strings.Contains(d.Message, "recursive") {
				found = true
			}
		}
		if !found {
			t.Errorf("%s: recursion not reported: %v", name, diags)
		}
	}
}

var codeLiteral = regexp.MustCompile("(?s)`([^`]*)`")

// TestLintExamplesClean lints every Cm and assembly source embedded in the
// examples/ programs: the repository's teaching corpus must also be
// warning-free.
func TestLintExamplesClean(t *testing.T) {
	files, err := filepath.Glob(filepath.Join("examples", "*", "main.go"))
	if err != nil || len(files) == 0 {
		t.Fatalf("no examples found: %v", err)
	}
	linted := 0
	for _, file := range files {
		b, err := os.ReadFile(file)
		if err != nil {
			t.Fatal(err)
		}
		for i, m := range codeLiteral.FindAllStringSubmatch(string(b), -1) {
			src := m[1]
			var diags []risc1.Diagnostic
			var derr error
			switch {
			case strings.Contains(src, "int main"):
				diags, derr = risc1.LintCm(src, risc1.RISCWindowed, risc1.LintOptions{})
			case strings.Contains(src, "ret r25") || strings.Contains(src, ".entry"):
				diags, derr = risc1.LintAssembly(src, risc1.RISCWindowed, risc1.LintOptions{})
			default:
				continue // not a program literal
			}
			linted++
			if derr != nil {
				t.Errorf("%s literal %d: %v", file, i, derr)
				continue
			}
			if n := risc1.Count(diags, risc1.SevWarning); n != 0 {
				for _, d := range diags {
					t.Errorf("%s literal %d: %s", file, i, d)
				}
			}
		}
	}
	if linted < 4 {
		t.Errorf("only %d example sources linted; extraction heuristic broke?", linted)
	}
}

// TestLintImageAssemblyTargets checks the facade wiring: the same hazard
// source yields the window warning on the windowed target and not on flat.
func TestLintImageAssemblyTargets(t *testing.T) {
	src := `
main:
	callr r25,f
	add r9,#0,r1
	ret r25,#8
	nop
f:
	ret r25,#0
	nop
`
	windowed, err := risc1.LintAssembly(src, risc1.RISCWindowed, risc1.LintOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if risc1.Count(windowed, risc1.SevWarning) != 1 {
		t.Errorf("windowed: want 1 warning, got %v", windowed)
	}
	flat, err := risc1.LintAssembly(src, risc1.RISCFlat, risc1.LintOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if risc1.Count(flat, risc1.SevWarning) != 0 {
		t.Errorf("flat: want 0 warnings, got %v", flat)
	}
}
