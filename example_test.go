package risc1_test

import (
	"fmt"

	"risc1"
)

// The happy path: compile a small C program and run it on RISC I.
func ExampleBuildAndRun() {
	out, err := risc1.BuildAndRun(`
		int fib(int n) {
			if (n < 2) return n;
			return fib(n - 1) + fib(n - 2);
		}
		int main() { putint(fib(15)); return 0; }`, risc1.RISCWindowed)
	if err != nil {
		panic(err)
	}
	fmt.Println(out.Console)
	// Output: 610
}

// Assembly-level control: the window overlap passes the argument and the
// result without touching memory.
func ExampleNewMachine() {
	m := risc1.NewMachine(risc1.MachineConfig{})
	err := m.LoadAssembly(`
	main:	add r0,#6,r10        ; outgoing argument (our LOW)
		callr r25,double
		nop
		stl r10,(r0)#-252    ; putint(result)
		ret r25,#8
		nop
	double:	add r26,r26,r26      ; arrived as our HIGH; reply the same way
		ret r25,#8
		nop`)
	if err != nil {
		panic(err)
	}
	if err := m.Run(); err != nil {
		panic(err)
	}
	fmt.Println(m.Console())
	// Output: 12
}

// Comparing the three machines of the evaluation on one program.
func ExampleBuildAndRun_threeMachines() {
	src := `int main() { putint(6 * 7); return 0; }`
	for _, target := range []risc1.Target{risc1.RISCWindowed, risc1.RISCFlat, risc1.CISC} {
		out, err := risc1.BuildAndRun(src, target)
		if err != nil {
			panic(err)
		}
		fmt.Printf("%v: %s\n", target, out.Console)
	}
	// Output:
	// risc-windowed: 42
	// risc-flat: 42
	// cisc: 42
}

// Inspecting generated code: the same statement on both encodings.
func ExampleCompileCm() {
	asmText, err := risc1.CompileCm(
		"int g; int main() { g = 1; return 0; }", risc1.RISCWindowed,
		risc1.CompileOptions{})
	if err != nil {
		panic(err)
	}
	fmt.Println(len(asmText) > 0)
	// Output: true
}
