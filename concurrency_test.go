package risc1_test

import (
	"bufio"
	"context"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"risc1"
	"risc1/internal/core"
	"risc1/internal/mem"
	"risc1/internal/prog"
)

// corpusHeader is one SMP corpus file's contract: what the static analyzer
// must say, and what a real execution must do.
type corpusHeader struct {
	lintPasses []string // expected "pass severity" pairs
	dyn        string   // race | clean | lockfault | deadlock | skip
}

func readCorpusHeader(t *testing.T, src string) corpusHeader {
	t.Helper()
	var h corpusHeader
	sc := bufio.NewScanner(strings.NewReader(src))
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		line = strings.TrimSpace(strings.TrimPrefix(line, "//"))
		switch {
		case strings.HasPrefix(line, ";lint:"):
			h.lintPasses = append(h.lintPasses,
				strings.Join(strings.Fields(strings.TrimPrefix(line, ";lint:")), " "))
		case strings.HasPrefix(line, ";dyn:"):
			h.dyn = strings.Fields(strings.TrimPrefix(line, ";dyn:"))[0]
		}
	}
	return h
}

// TestConcurrencyCorpusTwoSided is the hazard side of the two-sided
// contract, driven through the public facade: every file in the SMP hazard
// corpus is flagged by the static concurrency passes, and — where the
// ";dyn:" header says the defect is observable — a real multi-core
// execution confirms it: the dynamic race detector reports the race, the
// lock page raises its typed fault, or the deadlock burns the cycle
// budget.
func TestConcurrencyCorpusTwoSided(t *testing.T) {
	files, err := filepath.Glob(filepath.Join("internal", "lint", "testdata", "smp", "*"))
	if err != nil || len(files) < 10 {
		t.Fatalf("smp hazard corpus too small: %v (%d files)", err, len(files))
	}
	raceConfirmed := 0
	for _, file := range files {
		file := file
		t.Run(filepath.Base(file), func(t *testing.T) {
			b, err := os.ReadFile(file)
			if err != nil {
				t.Fatal(err)
			}
			src := string(b)
			h := readCorpusHeader(t, src)
			if len(h.lintPasses) == 0 || h.dyn == "" {
				t.Fatalf("%s lacks ;lint: or ;dyn: headers", file)
			}

			// Static side.
			var diags []risc1.Diagnostic
			isCm := strings.HasSuffix(file, ".cm")
			if isCm {
				diags, err = risc1.LintCm(src, risc1.RISCWindowed, risc1.LintOptions{})
			} else {
				diags, err = risc1.LintAssembly(src, risc1.RISCWindowed, risc1.LintOptions{})
			}
			if err != nil {
				t.Fatalf("lint: %v", err)
			}
			for _, want := range h.lintPasses {
				found := false
				for _, d := range diags {
					if d.Pass+" "+d.Severity.String() == want {
						found = true
					}
				}
				if !found {
					t.Errorf("static side missed %q: got %v", want, diags)
				}
			}

			// Dynamic side.
			if h.dyn == "skip" || !isCm {
				return
			}
			img, err := risc1.CompileToImage(src, risc1.RISCWindowed)
			if err != nil {
				t.Fatalf("compile: %v", err)
			}
			opt := risc1.RunOptions{Cores: 4, Race: true}
			if h.dyn == "deadlock" {
				opt.MaxCycles = 200_000
			}
			info, err := risc1.RunImage(context.Background(), img, opt)
			switch h.dyn {
			case "race":
				if err != nil {
					t.Fatalf("racy program failed to run: %v", err)
				}
				if len(info.Races) == 0 {
					t.Fatal("dynamic side saw no race")
				}
				for _, r := range info.Races {
					if !r.Prev.Write && !r.Curr.Write {
						t.Errorf("race %v has no write side", r)
					}
				}
				raceConfirmed++
			case "clean":
				if err != nil {
					t.Fatalf("clean program failed to run: %v", err)
				}
				if len(info.Races) != 0 {
					t.Errorf("clean program raced dynamically: %v", info.Races)
				}
			case "lockfault":
				var lf *mem.LockFault
				if !errors.As(err, &lf) {
					t.Fatalf("want a lock-page fault, got: %v", err)
				}
			case "deadlock":
				if !errors.Is(err, core.ErrMaxCycles) {
					t.Fatalf("want the deadlock to exhaust the cycle budget, got: %v", err)
				}
			default:
				t.Fatalf("unknown ;dyn: kind %q", h.dyn)
			}
		})
	}
	if raceConfirmed < 4 {
		t.Errorf("only %d corpus races confirmed dynamically; corpus eroded?", raceConfirmed)
	}
}

// TestConcurrencyCleanTwoSided is the clean side of the contract: the
// shipped parallel kernels produce no concurrency findings statically and
// run race-free on four cores under the dynamic detector — with the right
// answers. The sequential benchmark suite, linted with the concurrency
// passes forced on, must also stay silent: forcing changes eagerness, not
// verdicts.
func TestConcurrencyCleanTwoSided(t *testing.T) {
	for _, b := range prog.Parallel() {
		diags, err := risc1.LintCm(b.Source, risc1.RISCWindowed, risc1.LintOptions{})
		if err != nil {
			t.Fatalf("%s: lint: %v", b.Name, err)
		}
		for _, d := range diags {
			if d.Severity >= risc1.SevWarning {
				t.Errorf("%s: parallel kernel linted dirty: %s", b.Name, d)
			}
		}

		img, err := risc1.CompileToImage(b.Source, risc1.RISCWindowed)
		if err != nil {
			t.Fatalf("%s: compile: %v", b.Name, err)
		}
		info, err := risc1.RunImage(context.Background(), img,
			risc1.RunOptions{Cores: 4, Race: true})
		if err != nil {
			t.Fatalf("%s on 4 cores under race mode: %v", b.Name, err)
		}
		if len(info.Races) != 0 {
			t.Errorf("%s: clean kernel raced: %v", b.Name, info.Races)
		}
		if want := prog.Expected(b.Name); info.Console != want {
			t.Errorf("%s under race mode: console %q, want %q", b.Name, info.Console, want)
		}
	}

	for _, name := range risc1.BenchmarkNames() {
		src, ok := risc1.BenchmarkSource(name)
		if !ok {
			t.Fatalf("benchmark %q has no source", name)
		}
		diags, err := risc1.LintCm(src, risc1.RISCWindowed, risc1.LintOptions{SMP: true})
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		for _, d := range diags {
			if d.Severity >= risc1.SevWarning {
				t.Errorf("%s: forced concurrency passes found noise: %s", name, d)
			}
		}
	}
}

// TestRaceRunRequiresWindowed pins the facade contract: the dynamic
// detector rides the shared-memory machine, which is windowed-only.
func TestRaceRunRequiresWindowed(t *testing.T) {
	img, err := risc1.CompileToImage("int main() { putint(1); return 0; }", risc1.RISCFlat)
	if err != nil {
		t.Fatal(err)
	}
	_, err = risc1.RunImage(context.Background(), img, risc1.RunOptions{Race: true})
	if !errors.Is(err, risc1.ErrWindowedOnly) {
		t.Fatalf("flat + race = %v, want ErrWindowedOnly", err)
	}
}
