package risc1_test

import (
	"strings"
	"testing"

	"risc1"
)

func TestBuildAndRunAllTargets(t *testing.T) {
	src := `
int square(int x) { return x * x; }
int main() { putint(square(6) + square(8)); return 0; }`
	for _, target := range []risc1.Target{risc1.RISCWindowed, risc1.RISCFlat, risc1.CISC} {
		out, err := risc1.BuildAndRun(src, target)
		if err != nil {
			t.Fatalf("%v: %v", target, err)
		}
		if out.Console != "100" {
			t.Errorf("%v: console %q", target, out.Console)
		}
		if out.Instructions == 0 || out.Cycles == 0 || out.Time <= 0 {
			t.Errorf("%v: stats not populated: %+v", target, out)
		}
	}
}

func TestMachineAssemblyLevel(t *testing.T) {
	m := risc1.NewMachine(risc1.MachineConfig{})
	err := m.LoadAssembly(`
	main:	add r0,#21,r1
		add r1,r1,r1
		stl r1,(r0)#-252
		ret r25,#8
		nop
	`)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Run(); err != nil {
		t.Fatal(err)
	}
	if m.Console() != "42" || m.Reg(1) != 42 || !m.Halted() {
		t.Errorf("console=%q r1=%d halted=%v", m.Console(), m.Reg(1), m.Halted())
	}
	if m.Info().Instructions != 4 {
		t.Errorf("instructions = %d, want 4", m.Info().Instructions)
	}
}

func TestMachineStep(t *testing.T) {
	m := risc1.NewMachine(risc1.MachineConfig{Windows: 4})
	if err := m.LoadAssembly("main: add r0,#1,r1\n ret r25,#8\n nop"); err != nil {
		t.Fatal(err)
	}
	if err := m.Step(); err != nil {
		t.Fatal(err)
	}
	if m.PC() != 4 || m.Reg(1) != 1 {
		t.Errorf("after one step: pc=%d r1=%d", m.PC(), m.Reg(1))
	}
}

func TestTraceCallback(t *testing.T) {
	m := risc1.NewMachine(risc1.MachineConfig{})
	if err := m.LoadAssembly("main: add r0,#1,r1\n ret r25,#8\n nop"); err != nil {
		t.Fatal(err)
	}
	var got []string
	m.SetTrace(func(pc uint32, disasm string) {
		got = append(got, disasm)
	})
	if err := m.Run(); err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[0] != "add r0,#1,r1" || got[1] != "ret r25,#8" {
		t.Errorf("trace = %v", got)
	}
	// Clearing the trace must stop callbacks.
	m.SetTrace(nil)
}

func TestDisassemble(t *testing.T) {
	out, err := risc1.Disassemble("main: add r1,r2,r3\n")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "add r1,r2,r3") {
		t.Errorf("listing: %s", out)
	}
}

func TestCompileCmShowsAssembly(t *testing.T) {
	asmText, err := risc1.CompileCm("int main() { return 3; }", risc1.RISCWindowed,
		risc1.CompileOptions{})
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"main:", "ret r25,#8"} {
		if !strings.Contains(asmText, want) {
			t.Errorf("assembly missing %q:\n%s", want, asmText)
		}
	}
}

func TestBenchmarkAccessors(t *testing.T) {
	names := risc1.BenchmarkNames()
	if len(names) < 10 {
		t.Fatalf("only %d benchmarks", len(names))
	}
	src, ok := risc1.BenchmarkSource("hanoi")
	if !ok || !strings.Contains(src, "hanoi") {
		t.Error("hanoi source missing")
	}
	if _, ok := risc1.BenchmarkSource("nope"); ok {
		t.Error("found nonexistent benchmark")
	}
}

func TestExperimentDispatch(t *testing.T) {
	// E2 and E8 are static (fast); they prove the dispatch path.
	for _, id := range []string{"E2", "E8"} {
		out, err := risc1.Experiment(id)
		if err != nil || out == "" {
			t.Errorf("experiment %s: %v", id, err)
		}
	}
	if _, err := risc1.Experiment("E99"); err == nil {
		t.Error("unknown experiment accepted")
	}
	if len(risc1.ExperimentIDs()) != 11 {
		t.Error("expected 11 experiments")
	}
}

func TestCompileErrorSurface(t *testing.T) {
	if _, err := risc1.BuildAndRun("int main() { return x; }", risc1.RISCWindowed); err == nil {
		t.Error("undefined variable compiled")
	}
	if err := risc1.NewMachine(risc1.MachineConfig{}).LoadAssembly("frob r1"); err == nil {
		t.Error("bad assembly loaded")
	}
}
