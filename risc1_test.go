package risc1_test

import (
	"context"
	"errors"
	"strings"
	"testing"

	"risc1"
)

func TestBuildAndRunAllTargets(t *testing.T) {
	src := `
int square(int x) { return x * x; }
int main() { putint(square(6) + square(8)); return 0; }`
	for _, target := range []risc1.Target{risc1.RISCWindowed, risc1.RISCFlat, risc1.CISC} {
		out, err := risc1.BuildAndRun(src, target)
		if err != nil {
			t.Fatalf("%v: %v", target, err)
		}
		if out.Console != "100" {
			t.Errorf("%v: console %q", target, out.Console)
		}
		if out.Instructions == 0 || out.Cycles == 0 || out.Time <= 0 {
			t.Errorf("%v: stats not populated: %+v", target, out)
		}
	}
}

func TestMachineAssemblyLevel(t *testing.T) {
	m := risc1.NewMachine(risc1.MachineConfig{})
	err := m.LoadAssembly(`
	main:	add r0,#21,r1
		add r1,r1,r1
		stl r1,(r0)#-252
		ret r25,#8
		nop
	`)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Run(); err != nil {
		t.Fatal(err)
	}
	if m.Console() != "42" || m.Reg(1) != 42 || !m.Halted() {
		t.Errorf("console=%q r1=%d halted=%v", m.Console(), m.Reg(1), m.Halted())
	}
	if m.Info().Instructions != 4 {
		t.Errorf("instructions = %d, want 4", m.Info().Instructions)
	}
}

func TestMachineStep(t *testing.T) {
	m := risc1.NewMachine(risc1.MachineConfig{Windows: 4})
	if err := m.LoadAssembly("main: add r0,#1,r1\n ret r25,#8\n nop"); err != nil {
		t.Fatal(err)
	}
	if err := m.Step(); err != nil {
		t.Fatal(err)
	}
	if m.PC() != 4 || m.Reg(1) != 1 {
		t.Errorf("after one step: pc=%d r1=%d", m.PC(), m.Reg(1))
	}
}

func TestTraceCallback(t *testing.T) {
	m := risc1.NewMachine(risc1.MachineConfig{})
	if err := m.LoadAssembly("main: add r0,#1,r1\n ret r25,#8\n nop"); err != nil {
		t.Fatal(err)
	}
	var got []string
	m.SetTrace(func(pc uint32, disasm string) {
		got = append(got, disasm)
	})
	if err := m.Run(); err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[0] != "add r0,#1,r1" || got[1] != "ret r25,#8" {
		t.Errorf("trace = %v", got)
	}
	// Clearing the trace must stop callbacks.
	m.SetTrace(nil)
}

func TestDisassemble(t *testing.T) {
	out, err := risc1.Disassemble("main: add r1,r2,r3\n")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "add r1,r2,r3") {
		t.Errorf("listing: %s", out)
	}
}

func TestCompileCmShowsAssembly(t *testing.T) {
	asmText, err := risc1.CompileCm("int main() { return 3; }", risc1.RISCWindowed,
		risc1.CompileOptions{})
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"main:", "ret r25,#8"} {
		if !strings.Contains(asmText, want) {
			t.Errorf("assembly missing %q:\n%s", want, asmText)
		}
	}
}

func TestBenchmarkAccessors(t *testing.T) {
	names := risc1.BenchmarkNames()
	if len(names) < 10 {
		t.Fatalf("only %d benchmarks", len(names))
	}
	src, ok := risc1.BenchmarkSource("hanoi")
	if !ok || !strings.Contains(src, "hanoi") {
		t.Error("hanoi source missing")
	}
	if _, ok := risc1.BenchmarkSource("nope"); ok {
		t.Error("found nonexistent benchmark")
	}
}

func TestExperimentDispatch(t *testing.T) {
	// E2 and E8 are static (fast); they prove the dispatch path.
	for _, id := range []string{"E2", "E8"} {
		out, err := risc1.Experiment(id)
		if err != nil || out == "" {
			t.Errorf("experiment %s: %v", id, err)
		}
	}
	if _, err := risc1.Experiment("E99"); err == nil {
		t.Error("unknown experiment accepted")
	}
	if len(risc1.ExperimentIDs()) != 12 {
		t.Error("expected 12 experiments")
	}
}

func TestCompileErrorSurface(t *testing.T) {
	if _, err := risc1.BuildAndRun("int main() { return x; }", risc1.RISCWindowed); err == nil {
		t.Error("undefined variable compiled")
	}
	if err := risc1.NewMachine(risc1.MachineConfig{}).LoadAssembly("frob r1"); err == nil {
		t.Error("bad assembly loaded")
	}
}

// parallelSrc spawns one worker; 0+1+2 = 3 under any interleaving thanks to
// the spinlock.
const parallelSrc = `
int total;
void worker(int k) {
    lock(0);
    total += k + 1;
    unlock(0);
}
int main() {
    int h;
    h = spawn(worker, 1);
    worker(0);
    join(h);
    putint(total);
    return 0;
}`

func TestRunImageSMP(t *testing.T) {
	img, err := risc1.CompileToImage(parallelSrc, risc1.RISCWindowed)
	if err != nil {
		t.Fatal(err)
	}
	info, err := risc1.RunImage(context.Background(), img, risc1.RunOptions{Cores: 2})
	if err != nil {
		t.Fatal(err)
	}
	if info.Console != "3" {
		t.Errorf("console %q, want 3", info.Console)
	}
	if info.SMP == nil || info.SMP.Cores != 2 || info.SMP.Spawns != 1 {
		t.Fatalf("SMP = %+v, want 2 cores / 1 spawn", info.SMP)
	}
	if len(info.SMP.PerCore) != 2 || info.SMP.PerCore[1].Instructions == 0 {
		t.Errorf("per-core stats %+v: worker core retired nothing", info.SMP.PerCore)
	}

	// Cores <= 1 keeps the single-core path: no SMP section at all.
	info, err = risc1.RunImage(context.Background(), img, risc1.RunOptions{Cores: 1})
	if err != nil {
		t.Fatal(err)
	}
	if info.SMP != nil {
		t.Errorf("single-core run grew an SMP section: %+v", info.SMP)
	}

	if _, err := risc1.RunImage(context.Background(), img, risc1.RunOptions{Cores: risc1.MaxCores + 1}); !errors.Is(err, risc1.ErrBadCores) {
		t.Errorf("over-limit cores: %v, want ErrBadCores", err)
	}
	if _, err := risc1.RunImage(context.Background(), img, risc1.RunOptions{Cores: -1}); !errors.Is(err, risc1.ErrBadCores) {
		t.Errorf("negative cores: %v, want ErrBadCores", err)
	}
	flat, err := risc1.CompileToImage("int main() { putint(1); return 0; }", risc1.RISCFlat)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := risc1.RunImage(context.Background(), flat, risc1.RunOptions{Cores: 2}); !errors.Is(err, risc1.ErrWindowedOnly) {
		t.Errorf("flat multi-core: %v, want ErrWindowedOnly", err)
	}
}
