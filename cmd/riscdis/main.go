// Riscdis disassembles a riscasm binary image back to RISC I assembly.
//
// Usage:
//
//	riscdis prog.bin
package main

import (
	"encoding/binary"
	"fmt"
	"os"

	"risc1/internal/isa"
)

func main() {
	if len(os.Args) != 2 {
		fmt.Fprintln(os.Stderr, "usage: riscdis prog.bin")
		os.Exit(2)
	}
	data, err := os.ReadFile(os.Args[1])
	if err != nil {
		fatal(err)
	}
	if len(data) < 16 || string(data[:8]) != "RISC1IMG" {
		fatal(fmt.Errorf("%s is not a riscasm image", os.Args[1]))
	}
	org := binary.BigEndian.Uint32(data[8:12])
	entry := binary.BigEndian.Uint32(data[12:16])
	body := data[16:]
	fmt.Printf("; org %#x, entry %#x\n", org, entry)
	for off := 0; off+4 <= len(body); off += 4 {
		w := binary.BigEndian.Uint32(body[off:])
		addr := org + uint32(off)
		marker := "  "
		if addr == entry {
			marker = "=>"
		}
		fmt.Printf("%s%08x:  %08x  %s\n", marker, addr, w, isa.DisasmWord(w))
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "riscdis:", err)
	os.Exit(1)
}
