// Riscasm assembles RISC I assembly. By default it prints a listing with
// addresses and encodings; -o writes a loadable binary image (a small
// header followed by the raw bytes) that riscrun and riscdis accept.
//
// Usage:
//
//	riscasm [-o prog.bin] [-lint] prog.s
//
// With -lint the assembled image is also run through the static analyzer
// (see docs/LINT.md) under the windowed convention; findings go to stderr
// and error-severity findings make the exit status 1.
package main

import (
	"encoding/binary"
	"flag"
	"fmt"
	"os"

	"risc1/internal/asm"
	"risc1/internal/lint"
)

// Magic identifies riscasm image files.
const Magic = "RISC1IMG"

func main() {
	out := flag.String("o", "", "write a binary image instead of a listing")
	lintFlag := flag.Bool("lint", false, "statically analyze the assembled image; findings on stderr")
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: riscasm [-o out.bin] prog.s")
		os.Exit(2)
	}
	src, err := os.ReadFile(flag.Arg(0))
	if err != nil {
		fatal(err)
	}
	img, err := asm.Assemble(string(src))
	if err != nil {
		fatal(err)
	}
	if *lintFlag {
		diags := lint.Check(img, lint.Options{})
		for _, d := range diags {
			fmt.Fprintf(os.Stderr, "riscasm: lint: %s\n", d)
		}
		if lint.Count(diags, lint.SevError) > 0 {
			os.Exit(1)
		}
	}
	if *out == "" {
		fmt.Print(asm.Disassemble(img))
		fmt.Printf("; %d bytes, org %#x, entry %#x\n", img.Size(), img.Org, img.Entry)
		return
	}
	f, err := os.Create(*out)
	if err != nil {
		fatal(err)
	}
	defer f.Close()
	header := make([]byte, 16)
	copy(header, Magic)
	binary.BigEndian.PutUint32(header[8:], img.Org)
	binary.BigEndian.PutUint32(header[12:], img.Entry)
	if _, err := f.Write(header); err != nil {
		fatal(err)
	}
	if _, err := f.Write(img.Bytes); err != nil {
		fatal(err)
	}
	fmt.Printf("wrote %s: %d bytes, org %#x, entry %#x\n", *out, img.Size(), img.Org, img.Entry)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "riscasm:", err)
	os.Exit(1)
}
