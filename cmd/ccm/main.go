// Ccm is the Cm compiler driver: it compiles a Cm source file and prints
// the generated assembly for the chosen target machine.
//
// Usage:
//
//	ccm [-target windowed|flat|cisc|pipelined] [-noopt] [-widedata] [-lint] file.cm
//
// With -lint the compiled image is also run through the static analyzer
// (see docs/LINT.md); findings go to stderr and error-severity findings
// make the exit status 1.
package main

import (
	"flag"
	"fmt"
	"os"

	"risc1"
)

func main() {
	target := flag.String("target", "windowed", "code generator: windowed, flat, cisc or pipelined")
	noopt := flag.Bool("noopt", false, "leave NOPs in delay slots (RISC targets)")
	wide := flag.Bool("widedata", false, "full 32-bit global addressing (RISC targets)")
	dis := flag.Bool("dis", false, "print the encoded listing instead of assembly source")
	lintFlag := flag.Bool("lint", false, "statically analyze the compiled image; findings on stderr")
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: ccm [-target windowed|flat|cisc] file.cm")
		os.Exit(2)
	}
	src, err := os.ReadFile(flag.Arg(0))
	if err != nil {
		fatal(err)
	}
	t, err := parseTarget(*target)
	if err != nil {
		fatal(err)
	}
	var out string
	if *dis {
		out, err = risc1.CompileAndDisassemble(string(src), t)
	} else {
		out, err = risc1.CompileCm(string(src), t, risc1.CompileOptions{
			NoDelaySlotFill: *noopt, WideData: *wide,
		})
	}
	if err != nil {
		fatal(err)
	}
	fmt.Print(out)
	if *lintFlag {
		diags, err := risc1.LintCm(string(src), t, risc1.LintOptions{})
		if err != nil {
			fatal(err)
		}
		for _, d := range diags {
			fmt.Fprintf(os.Stderr, "ccm: lint: %s\n", d)
		}
		if risc1.Count(diags, risc1.SevError) > 0 {
			os.Exit(1)
		}
	}
}

func parseTarget(s string) (risc1.Target, error) {
	switch s {
	case "windowed", "risc":
		return risc1.RISCWindowed, nil
	case "flat":
		return risc1.RISCFlat, nil
	case "cisc", "cx":
		return risc1.CISC, nil
	case "pipelined":
		// Codegen-wise identical to windowed; the distinction matters to
		// the execution layers (riscrun, riscd), which pick the
		// cycle-accurate pipeline model for it.
		return risc1.RISCPipelined, nil
	}
	return 0, fmt.Errorf("unknown target %q (want windowed, flat, cisc or pipelined)", s)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "ccm:", err)
	os.Exit(1)
}
