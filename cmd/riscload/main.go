// Riscload replays realistic traffic mixes against a running riscd and
// reports the serving-capacity numbers: latency percentiles, throughput,
// shed rate and cache hit rate per mix. It is the load half of the
// serving-layer perf gate — CI spawns a riscd, points riscload at it, and
// fails the build when the capacity assertions regress.
//
// Usage:
//
//	riscload [-url http://127.0.0.1:8049] [-c N] [-d D] [-mix a,b,...]
//	         [-out BENCH_serve.json] [-history BENCH_serve_history.jsonl]
//	         [-gate] [-list]
//
// Mixes run sequentially, each with -c closed-loop workers for -d. -out
// writes the full report as JSON; -history appends the same report as one
// JSONL line, growing the longitudinal record across commits. -gate
// evaluates the capacity assertions (every mix answers, hot hit rate >= 0.9,
// hot p50 <= cold p50) and exits 1 on violation.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"strings"
	"time"

	"risc1/internal/loadgen"
)

func main() {
	url := flag.String("url", "http://127.0.0.1:8049", "base URL of the riscd under test")
	concurrency := flag.Int("c", 8, "closed-loop workers per mix")
	duration := flag.Duration("d", 10*time.Second, "duration per mix")
	mixFlag := flag.String("mix", "", "comma-separated mix names (empty = all)")
	out := flag.String("out", "", "write the report as JSON to this file")
	history := flag.String("history", "", "append the report as one JSONL line to this file")
	gate := flag.Bool("gate", false, "evaluate capacity assertions; exit 1 on violation")
	list := flag.Bool("list", false, "list known mixes and exit")
	flag.Parse()
	if flag.NArg() != 0 {
		fmt.Fprintln(os.Stderr, "usage: riscload [-url U] [-c N] [-d D] [-mix a,b,...] [-out F] [-history F] [-gate] [-list]")
		os.Exit(2)
	}
	if *list {
		for _, name := range loadgen.Mixes() {
			fmt.Println(name)
		}
		return
	}

	opts := loadgen.Options{BaseURL: *url, Concurrency: *concurrency, Duration: *duration}
	if *mixFlag != "" {
		opts.Mixes = strings.Split(*mixFlag, ",")
	}
	rep, err := loadgen.Run(opts)
	if err != nil {
		log.Fatalf("riscload: %v", err)
	}

	fmt.Printf("riscload: %s, %d workers, %gs per mix\n\n",
		rep.BaseURL, rep.Concurrency, rep.DurationS)
	fmt.Printf("%-8s %8s %6s %6s %6s %9s %9s %9s %9s %7s %6s\n",
		"mix", "requests", "ok", "shed", "err", "p50ms", "p90ms", "p99ms", "rps", "shed%", "hit%")
	for _, m := range rep.Mixes {
		hit := "n/a"
		if m.CacheHitRate >= 0 {
			hit = fmt.Sprintf("%.1f", 100*m.CacheHitRate)
		}
		fmt.Printf("%-8s %8d %6d %6d %6d %9.2f %9.2f %9.2f %9.1f %7.1f %6s\n",
			m.Name, m.Requests, m.OK, m.Shed, m.Errors,
			m.P50MS, m.P90MS, m.P99MS, m.ThroughputRPS, 100*m.ShedRate, hit)
	}

	raw, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		log.Fatalf("riscload: %v", err)
	}
	if *out != "" {
		if err := os.WriteFile(*out, append(raw, '\n'), 0o644); err != nil {
			log.Fatalf("riscload: %v", err)
		}
	}
	if *history != "" {
		line, err := json.Marshal(rep)
		if err != nil {
			log.Fatalf("riscload: %v", err)
		}
		f, err := os.OpenFile(*history, os.O_APPEND|os.O_CREATE|os.O_WRONLY, 0o644)
		if err != nil {
			log.Fatalf("riscload: %v", err)
		}
		if _, err := f.Write(append(line, '\n')); err != nil {
			log.Fatalf("riscload: %v", err)
		}
		if err := f.Close(); err != nil {
			log.Fatalf("riscload: %v", err)
		}
	}

	if *gate {
		if violations := loadgen.Gate(rep); len(violations) > 0 {
			for _, v := range violations {
				fmt.Fprintf(os.Stderr, "riscload: GATE FAIL: %s\n", v)
			}
			os.Exit(1)
		}
		fmt.Println("\nriscload: capacity gate passed")
	}
}
