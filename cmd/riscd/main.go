// Riscd serves the risc1 simulators over HTTP/JSON: POST /v1/run compiles
// (or assembles) and executes a program on any of the three machines under
// server-enforced cycle and wall-clock budgets, POST /v1/run/stream does the
// same but emits Server-Sent Events live (console chunks, sampled stats
// frames, one terminal result), POST /v1/disasm returns the encoded listing,
// GET /v1/benchmarks lists the suite, GET /v1/experiments/{id} renders a
// paper table, and GET /metrics exposes Prometheus counters. Requests beyond
// pool+queue capacity are shed with 429 + an adaptive Retry-After.
//
// Usage:
//
//	riscd [-addr :8049] [-workers N] [-queue N] [-max-cycles N]
//	      [-max-cores N] [-timeout D] [-cache N] [-cache-shards N]
//	      [-stream-interval D] [-drain D]
//
// On SIGINT/SIGTERM the server drains: /healthz flips to 503, new work is
// refused, in-flight runs get the drain grace to finish and are then
// aborted via context cancellation.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"risc1"
	"risc1/internal/serve"
)

func main() {
	addr := flag.String("addr", ":8049", "listen address")
	workers := flag.Int("workers", 0, "concurrent simulations (0 = GOMAXPROCS)")
	queue := flag.Int("queue", 0, "admitted requests waiting beyond the pool (0 = 4x workers, negative = none)")
	maxCycles := flag.Uint64("max-cycles", risc1.DefaultMaxCycles, "per-run cycle budget ceiling")
	maxCores := flag.Int("max-cores", serve.DefaultMaxCores, "shared-memory core ceiling per run (negative disables multi-core)")
	timeout := flag.Duration("timeout", serve.DefaultTimeout, "per-run wall-clock deadline ceiling")
	cache := flag.Int("cache", serve.DefaultCacheEntries, "compiled-image cache entries (negative disables)")
	cacheShards := flag.Int("cache-shards", serve.DefaultCacheShards, "lock stripes in the compiled-image cache")
	streamInterval := flag.Duration("stream-interval", serve.DefaultStreamInterval, "stats-frame sampling interval on /v1/run/stream")
	drain := flag.Duration("drain", 5*time.Second, "shutdown grace before in-flight runs are canceled")
	flag.Parse()
	if flag.NArg() != 0 {
		fmt.Fprintln(os.Stderr, "usage: riscd [-addr A] [-workers N] [-queue N] [-max-cycles N] [-max-cores N] [-timeout D] [-cache N] [-cache-shards N] [-stream-interval D] [-drain D]")
		os.Exit(2)
	}

	s := serve.New(serve.Config{
		Workers:        *workers,
		QueueDepth:     *queue,
		MaxCycles:      *maxCycles,
		MaxCores:       *maxCores,
		Timeout:        *timeout,
		CacheEntries:   *cache,
		CacheShards:    *cacheShards,
		StreamInterval: *streamInterval,
	})

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		log.Fatalf("riscd: %v", err)
	}
	log.Printf("riscd: listening on %s", ln.Addr())

	srv := &http.Server{Handler: s}
	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(ln) }()

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-errc:
		log.Fatalf("riscd: %v", err)
	case got := <-sig:
		log.Printf("riscd: %v, draining (grace %v)", got, *drain)
	}

	s.Drain()
	ctx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil && errors.Is(err, context.DeadlineExceeded) {
		// Runs outlived the grace: abort them via context cancellation and
		// give the handlers a moment to write their 503s.
		log.Printf("riscd: drain grace expired, canceling in-flight runs")
		s.CancelRuns()
		ctx2, cancel2 := context.WithTimeout(context.Background(), 2*time.Second)
		defer cancel2()
		if err := srv.Shutdown(ctx2); err != nil {
			srv.Close()
		}
	}
	s.CancelRuns()
	log.Printf("riscd: shut down cleanly")
}
