// Riscrun compiles (for .cm sources) or assembles (for .s sources) a
// program, runs it to completion on the selected machine, and prints its
// console output, optionally followed by execution statistics.
//
// Usage:
//
//	riscrun [-target windowed|flat|cisc|pipelined] [-policy delayed|squash] [-cores N] [-race] [-windows N] [-engine E] [-timeout D] [-max-cycles N] [-stats] [-profile F] prog.cm
//	riscrun [-windows N] [-flat] [-engine E] [-timeout D] [-max-cycles N] [-stats] [-profile F] prog.s
//
// -race runs the program under the dynamic race detector (windowed target
// only): any unsynchronized cross-core accesses to shared words are
// printed to stderr with core, PC and source line, and make the exit
// status 1. Combine with -cores to exercise real parallelism.
//
// -target pipelined runs windowed code on the cycle-accurate five-stage
// pipeline model; -stats then adds the measured CPI, stall/flush/forward
// counts and the delay-slot fill rate. -policy picks the control-transfer
// policy (the paper's delayed jumps, or predict-not-taken squash hardware).
//
// -profile dumps the run's execution-heat profile — block leaders with
// their dispatch counts and trace membership, plus the measured dynamic
// opcode n-grams and the trace tier's counters — as JSON to the given
// file ("-" for stdout). Heat is collected by the trace-capable engines
// (auto, trace); under -engine block or step the profile is empty.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"

	"risc1"
)

// profileDump is the JSON shape behind -profile, shared with riscbench.
type profileDump struct {
	Schema             string               `json:"schema"`
	Engine             string               `json:"engine"`
	TracesCompiled     uint64               `json:"traces_compiled"`
	TraceSideExits     uint64               `json:"trace_side_exits"`
	TraceInvalidations uint64               `json:"trace_invalidations"`
	TraceInstructions  uint64               `json:"trace_instructions"`
	HotBlocks          int                  `json:"hot_blocks"`
	Blocks             []risc1.BlockProfile `json:"blocks"`
	NGrams             []risc1.NGramCount   `json:"ngrams"`
}

func writeProfile(path string, engine risc1.Engine, info *risc1.RunInfo) error {
	dump := profileDump{
		Schema:             "risc1-profile/1",
		Engine:             engine.String(),
		TracesCompiled:     info.TracesCompiled,
		TraceSideExits:     info.TraceSideExits,
		TraceInvalidations: info.TraceInvalidations,
		TraceInstructions:  info.TraceInstructions,
		HotBlocks:          info.HotBlocks,
		Blocks:             info.Profile,
		NGrams:             info.NGrams,
	}
	out, err := json.MarshalIndent(dump, "", "  ")
	if err != nil {
		return err
	}
	out = append(out, '\n')
	if path == "-" {
		_, err = os.Stdout.Write(out)
		return err
	}
	return os.WriteFile(path, out, 0o644)
}

func main() {
	target := flag.String("target", "windowed", "machine for .cm sources: windowed, flat, cisc or pipelined")
	policyFlag := flag.String("policy", "delayed", "control-transfer policy for -target pipelined: delayed or squash")
	windows := flag.Int("windows", 0, "register windows for .s sources (0 = 8)")
	flat := flag.Bool("flat", false, "disable register windows for .s sources")
	stats := flag.Bool("stats", false, "print execution statistics")
	trace := flag.Int("trace", 0, "print the first N executed instructions (.s sources)")
	timeout := flag.Duration("timeout", 0, "abort execution after this wall-clock duration (0 = none)")
	maxCycles := flag.Uint64("max-cycles", risc1.DefaultMaxCycles,
		"abort after this many simulated cycles (0 = machine default); riscd enforces the same default budget")
	engineFlag := flag.String("engine", "auto", "RISC execution engine: auto, block, step or trace")
	cores := flag.Int("cores", 1, "shared-memory cores for .cm sources (windowed target only)")
	race := flag.Bool("race", false, "run under the dynamic race detector (windowed .cm sources); races exit 1")
	profile := flag.String("profile", "", "write the execution-heat profile as JSON to this file (- for stdout)")
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: riscrun [-target T] [-stats] prog.cm|prog.s")
		os.Exit(2)
	}
	path := flag.Arg(0)
	srcBytes, err := os.ReadFile(path)
	if err != nil {
		fatal(err)
	}
	src := string(srcBytes)

	engine, err := risc1.ParseEngine(*engineFlag)
	if err != nil {
		fatal(err)
	}
	policy, err := risc1.ParsePolicy(*policyFlag)
	if err != nil {
		fatal(err)
	}

	ctx := context.Background()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}

	var info *risc1.RunInfo
	if strings.HasSuffix(path, ".s") && *cores > 1 {
		fatal(fmt.Errorf("-cores: assembly sources run single-core; use a .cm source: %w", risc1.ErrWindowedOnly))
	}
	if strings.HasSuffix(path, ".s") && *race {
		fatal(fmt.Errorf("-race: assembly sources run single-core; use a .cm source: %w", risc1.ErrWindowedOnly))
	}
	if strings.HasSuffix(path, ".s") {
		m := risc1.NewMachine(risc1.MachineConfig{Windows: *windows, Flat: *flat, MaxCycles: *maxCycles, Engine: engine})
		if err := m.LoadAssembly(src); err != nil {
			fatal(err)
		}
		if *trace > 0 {
			left := *trace
			m.SetTrace(func(pc uint32, disasm string) {
				if left > 0 {
					fmt.Fprintf(os.Stderr, "%08x: %s\n", pc, disasm)
					left--
				}
			})
		}
		if err := m.RunContext(ctx); err != nil {
			fatal(err)
		}
		info = m.Info()
		info.Console = m.Console()
		if *profile != "" {
			info.Profile = m.Profile()
			info.NGrams = append(m.HotNGrams(2, 8), m.HotNGrams(3, 8)...)
		}
	} else {
		t := risc1.RISCWindowed
		switch *target {
		case "windowed", "risc":
		case "flat":
			t = risc1.RISCFlat
		case "cisc", "cx":
			t = risc1.CISC
		case "pipelined":
			t = risc1.RISCPipelined
		default:
			fatal(fmt.Errorf("unknown target %q", *target))
		}
		img, err := risc1.CompileToImage(src, t)
		if err != nil {
			fatal(err)
		}
		info, err = risc1.RunImage(ctx, img, risc1.RunOptions{
			MaxCycles: *maxCycles, Engine: engine, Policy: policy,
			Profile: *profile != "", Cores: *cores, Race: *race,
		})
		if err != nil {
			fatal(err)
		}
	}

	fmt.Println(info.Console)
	raced := *race && len(info.Races) > 0
	if raced {
		for _, r := range info.Races {
			fmt.Fprintf(os.Stderr, "riscrun: race: %s\n", r)
		}
		fmt.Fprintf(os.Stderr, "riscrun: %d data race(s) detected\n", len(info.Races))
	}
	if *profile != "" {
		if err := writeProfile(*profile, engine, info); err != nil {
			fatal(err)
		}
	}
	if *stats {
		fmt.Printf("instructions: %d\ncycles:       %d\nsim time:     %v\n",
			info.Instructions, info.Cycles, info.Time)
		fmt.Printf("calls: %d  max depth: %d  window ovf/unf: %d/%d\n",
			info.Calls, info.MaxCallDepth, info.WindowOverflows, info.WindowUnderflows)
		fmt.Printf("memory: %d fetch B, %d read B, %d write B\n",
			info.FetchBytes, info.DataReadBytes, info.DataWriteBytes)
		if p := info.Pipeline; p != nil {
			fmt.Printf("pipeline (%s): CPI %.3f  single-cycle ref %d cyc\n",
				p.Policy, p.CPI, p.RefCycles)
			fmt.Printf("stalls: %d load-use, %d window, %d mem-port, %d flush  forwards: %d EX/MEM, %d MEM/WB\n",
				p.LoadUseStallCycles, p.WindowStallCycles, p.MemPortStallCycles,
				p.FlushBubbleCycles, p.ForwardsEXMEM, p.ForwardsMEMWB)
			fmt.Printf("delay slots: %d filled / %d retired (%.1f%%)\n",
				p.DelaySlotsFilled, p.DelaySlots, p.FillRatePct)
		}
		if s := info.SMP; s != nil {
			fmt.Printf("smp: %d cores  elapsed %d cyc  contention %d cyc  rounds %d  spawns %d (%d failed)\n",
				s.Cores, s.ElapsedCycles, s.ContentionCycles, s.Rounds, s.Spawns, s.SpawnFails)
			for i, c := range s.PerCore {
				fmt.Printf("  core %d: %d instr  %d cyc (+%d contention)  %d read B  %d write B\n",
					i, c.Instructions, c.Cycles, c.ContentionCycles, c.DataReadBytes, c.DataWriteBytes)
			}
		}
	}
	if raced {
		os.Exit(1)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "riscrun:", err)
	os.Exit(1)
}
