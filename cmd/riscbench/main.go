// Riscbench regenerates the tables and figures of the RISC I evaluation.
//
// Usage:
//
//	riscbench                 # run every experiment, E1..E12
//	riscbench -exp E4         # just the execution-time comparison
//	riscbench -target pipelined  # per-benchmark CPI/stall/fill table on the
//	                             # cycle-accurate pipeline (shorthand for -exp E11)
//	riscbench -json           # also write BENCH_risc1.json (machine-readable)
//	riscbench -engine step    # force the single-step reference engine
//	riscbench -profile -      # dump the reference loop's heat profile as JSON
//	riscbench -timeout 30s    # abort any single configuration after 30s
//	riscbench -inject hanoi   # fault-inject one benchmark (degradation demo)
//
// All experiments share one Lab, so benchmark configurations used by several
// tables are simulated only once, concurrently. A configuration that fails or
// times out renders as an ERR cell; the rest of its table survives, the
// failure is listed on stderr (and in the JSON report), and riscbench exits
// nonzero.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"slices"
	"strings"
	"time"

	"risc1"
	"risc1/internal/exp"
	"risc1/internal/mem"
)

// benchFile is where -json writes its report; historyFile accumulates one
// dated JSON line per -json run so throughput can be tracked over time.
const (
	benchFile   = "BENCH_risc1.json"
	historyFile = "BENCH_history.jsonl"
)

// throughputAsm is the tight arithmetic loop of the package's
// BenchmarkSimulatorThroughput: 1M iterations of add/cmp/blt plus the
// delay-slot NOP — four simulated instructions per trip.
const throughputAsm = `
main:	add r0,#0,r1
	li #1000000,r2
loop:	add r1,#1,r1
	cmp r1,r2
	blt loop
	nop
	ret r25,#8
	nop
`

type benchReport struct {
	Schema     string `json:"schema"`
	Engine     string `json:"engine"`
	GoVersion  string `json:"go_version"`
	GOMAXPROCS int    `json:"gomaxprocs"`
	// Simulator is the throughput under the engine the run used;
	// SimulatorByEngine holds all three engines for the speedup ladder.
	Simulator         simThroughput            `json:"simulator_throughput"`
	SimulatorByEngine map[string]simThroughput `json:"simulator_throughput_by_engine"`
	BlockSpeedup      float64                  `json:"block_speedup_over_step"`
	TraceSpeedup      float64                  `json:"trace_speedup_over_block"`
	// TraceCoverage describes the trace tier's dynamic-fusion coverage on
	// the reference loop: how much of the instruction stream retired
	// inside compiled traces and which opcode n-grams measured hottest.
	TraceCoverage traceCoverage `json:"trace_coverage"`
	// Pipeline aggregates the cycle-accurate five-stage pipeline
	// measurement (experiment E11) over the whole suite.
	Pipeline pipelineReport `json:"pipeline"`
	// SMP is the shared-memory scalability measurement (experiment E12):
	// per-kernel speedup, contention and memory-traffic curves over the
	// core-count sweep.
	SMP         smpReport          `json:"smp"`
	Experiments []experimentTiming `json:"experiments"`
	Headline    headlineMetrics    `json:"headline_metrics"`
	Failures    []failureReport    `json:"failures,omitempty"`
}

// pipelineReport is the suite-wide summary of the cycle-accurate pipeline:
// effective CPI under both control-transfer policies, the stall/flush
// breakdown, forwarding traffic, and the delayed jump's measured advantage.
type pipelineReport struct {
	Instructions  uint64  `json:"sim_instructions"`
	CyclesDelayed uint64  `json:"cycles_delayed"`
	CyclesSquash  uint64  `json:"cycles_squash"`
	CPIDelayed    float64 `json:"cpi_delayed"`
	CPISquash     float64 `json:"cpi_squash"`
	DelayedAdvPct float64 `json:"delayed_advantage_pct"`
	FillRatePct   float64 `json:"delay_slot_fill_pct"`
	LoadUseStalls uint64  `json:"load_use_stall_cycles"`
	WindowStalls  uint64  `json:"window_stall_cycles"`
	MemPortStalls uint64  `json:"mem_port_stall_cycles"`
	FlushBubbles  uint64  `json:"flush_bubble_cycles"`
	ForwardsEXMEM uint64  `json:"forwards_ex_mem"`
	ForwardsMEMWB uint64  `json:"forwards_mem_wb"`
}

// smpReport is the E12 scalability sweep in machine-readable form.
type smpReport struct {
	CoreCounts []int             `json:"core_counts"`
	Kernels    []smpKernelReport `json:"kernels"`
}

type smpKernelReport struct {
	Name  string          `json:"name"`
	Cells []smpCellReport `json:"cells"`
}

type smpCellReport struct {
	Cores            int     `json:"cores"`
	ElapsedCycles    uint64  `json:"elapsed_cycles"`
	Speedup          float64 `json:"speedup"`
	Instructions     uint64  `json:"sim_instructions"`
	ContentionCycles uint64  `json:"contention_cycles"`
	TrafficBytes     uint64  `json:"data_traffic_bytes"`
	Spawns           uint64  `json:"spawns"`
}

// traceCoverage is the trace tier's fusion-coverage summary.
type traceCoverage struct {
	HotBlocks           int                `json:"hot_blocks"`
	TracesCompiled      uint64             `json:"traces_compiled"`
	TraceSideExits      uint64             `json:"trace_side_exits"`
	TraceInvalidations  uint64             `json:"trace_invalidations"`
	TraceInstructionPct float64            `json:"trace_instruction_pct"`
	TopNGrams           []risc1.NGramCount `json:"top_ngrams"`
}

// historyEntry is one line of BENCH_history.jsonl.
type historyEntry struct {
	Date         string  `json:"date"`
	Schema       string  `json:"schema"`
	Engine       string  `json:"engine"`
	GoVersion    string  `json:"go_version"`
	GOMAXPROCS   int     `json:"gomaxprocs"`
	StepIPS      float64 `json:"step_sim_instructions_per_sec"`
	BlockIPS     float64 `json:"block_sim_instructions_per_sec"`
	TraceIPS     float64 `json:"trace_sim_instructions_per_sec"`
	BlockSpeedup float64 `json:"block_speedup_over_step"`
	TraceSpeedup float64 `json:"trace_speedup_over_block"`
	TracePct     float64 `json:"trace_instruction_pct"`
	CPIDelayed   float64 `json:"cpi_delayed"`
	CPISquash    float64 `json:"cpi_squash"`
	PipeAdvPct   float64 `json:"delayed_advantage_pct"`
	// Best parallel-kernel speedup and total contention charge at four
	// cores, so SMP scalability is trackable over time alongside
	// throughput.
	SMPSpeedup4   float64 `json:"smp_best_speedup_4core"`
	SMPContention uint64  `json:"smp_contention_cycles_4core"`
}

type failureReport struct {
	Bench  string `json:"bench"`
	Target string `json:"target"`
	Error  string `json:"error"`
}

type simThroughput struct {
	Instructions       uint64  `json:"sim_instructions"`
	Seconds            float64 `json:"wall_seconds"`
	InstructionsPerSec float64 `json:"sim_instructions_per_sec"`
}

type experimentTiming struct {
	ID      string  `json:"id"`
	Seconds float64 `json:"wall_seconds"`
}

type headlineMetrics struct {
	E3CodeSizeRatioGeomean  float64 `json:"e3_code_size_ratio_geomean"`
	E4CXOverRiscTimeGeomean float64 `json:"e4_cx_over_risc_time_geomean"`
	E5HanoiWinBytesPerCall  float64 `json:"e5_hanoi_win_bytes_per_call"`
	E5HanoiCXBytesPerCall   float64 `json:"e5_hanoi_cx_bytes_per_call"`
	E6TrapPct8Windows       float64 `json:"e6_trap_pct_8_windows_recursive"`
	E7AvgCycleSavingPct     float64 `json:"e7_avg_cycle_saving_pct"`
}

func main() {
	which := flag.String("exp", "all", "experiment id (E1..E12) or all")
	targetFlag := flag.String("target", "", "run the per-benchmark table for one target; only \"pipelined\" (shorthand for -exp E11)")
	jsonOut := flag.Bool("json", false, "write "+benchFile+" with throughput and headline metrics")
	timeout := flag.Duration("timeout", 0, "per-configuration wall-clock limit (0 = none)")
	inject := flag.String("inject", "", "benchmark name to run under an injected memory fault")
	engineFlag := flag.String("engine", "auto", "RISC execution engine for all runs: auto, block, step or trace")
	profileOut := flag.String("profile", "", "write the reference loop's execution-heat profile as JSON to this file (- for stdout)")
	flag.Parse()

	engine, err := risc1.ParseEngine(*engineFlag)
	if err != nil {
		fmt.Fprintf(os.Stderr, "riscbench: %v\n", err)
		os.Exit(2)
	}

	valid := risc1.ExperimentIDs()
	ids := valid
	if *which != "all" {
		if !slices.Contains(valid, *which) {
			fmt.Fprintf(os.Stderr, "riscbench: unknown experiment %q (valid: %s, all)\n",
				*which, strings.Join(valid, ", "))
			os.Exit(2)
		}
		ids = []string{*which}
	}
	if *targetFlag != "" {
		if *targetFlag != "pipelined" {
			fmt.Fprintf(os.Stderr, "riscbench: unknown -target %q (only \"pipelined\" has a per-benchmark table; see -exp)\n",
				*targetFlag)
			os.Exit(2)
		}
		if *which != "all" && *which != "E11" {
			fmt.Fprintf(os.Stderr, "riscbench: -target pipelined conflicts with -exp %s\n", *which)
			os.Exit(2)
		}
		ids = []string{"E11"}
	}
	lab := exp.NewLab()
	lab.SetEngine(engine)
	if *timeout > 0 {
		lab.SetTimeout(*timeout)
	}
	if *inject != "" {
		if _, ok := risc1.BenchmarkSource(*inject); !ok {
			fmt.Fprintf(os.Stderr, "riscbench: unknown benchmark %q (valid: %s)\n",
				*inject, strings.Join(risc1.BenchmarkNames(), ", "))
			os.Exit(2)
		}
		lab.InjectFault(*inject, &mem.FaultPlan{FailNthWrite: 1})
	}
	var timings []experimentTiming
	for _, id := range ids {
		start := time.Now()
		out, err := exp.Render(lab, id)
		if err != nil {
			fmt.Fprintf(os.Stderr, "riscbench: %s: %v\n", id, err)
			os.Exit(1)
		}
		elapsed := time.Since(start)
		timings = append(timings, experimentTiming{ID: id, Seconds: elapsed.Seconds()})
		fmt.Println(out)
		fmt.Printf("[%s regenerated in %v]\n\n", id, elapsed.Round(time.Millisecond))
	}

	failures := lab.Failures()
	if *profileOut != "" {
		if err := writeBenchProfile(*profileOut, engine); err != nil {
			fmt.Fprintf(os.Stderr, "riscbench: %v\n", err)
			os.Exit(1)
		}
	}
	if *jsonOut {
		if err := writeReport(lab, engine, timings, failures); err != nil {
			fmt.Fprintf(os.Stderr, "riscbench: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("[wrote %s]\n", benchFile)
	}
	if len(failures) > 0 {
		fmt.Fprintf(os.Stderr, "riscbench: %d configuration(s) failed:\n", len(failures))
		for _, f := range failures {
			fmt.Fprintf(os.Stderr, "  %s [%s]: %v\n", f.Bench, f.Target, f.Err)
		}
		os.Exit(1)
	}
}

// measureThroughput runs the reference loop once under the given engine,
// returning the machine so the caller can mine its profile.
func measureThroughput(e risc1.Engine) (simThroughput, *risc1.Machine, error) {
	m := risc1.NewMachine(risc1.MachineConfig{Engine: e})
	if err := m.LoadAssembly(throughputAsm); err != nil {
		return simThroughput{}, nil, err
	}
	start := time.Now()
	if err := m.Run(); err != nil {
		return simThroughput{}, nil, err
	}
	secs := time.Since(start).Seconds()
	instrs := m.Info().Instructions
	return simThroughput{
		Instructions:       instrs,
		Seconds:            secs,
		InstructionsPerSec: float64(instrs) / secs,
	}, m, nil
}

// writeBenchProfile runs the reference loop on a trace-capable engine and
// dumps its execution-heat profile in riscrun's -profile JSON shape.
func writeBenchProfile(path string, engine risc1.Engine) error {
	if engine == risc1.EngineBlock || engine == risc1.EngineStep {
		engine = risc1.EngineTrace // heat is only counted on the trace tier
	}
	_, m, err := measureThroughput(engine)
	if err != nil {
		return err
	}
	info := m.Info()
	dump := struct {
		Schema             string               `json:"schema"`
		Engine             string               `json:"engine"`
		TracesCompiled     uint64               `json:"traces_compiled"`
		TraceSideExits     uint64               `json:"trace_side_exits"`
		TraceInvalidations uint64               `json:"trace_invalidations"`
		TraceInstructions  uint64               `json:"trace_instructions"`
		HotBlocks          int                  `json:"hot_blocks"`
		Blocks             []risc1.BlockProfile `json:"blocks"`
		NGrams             []risc1.NGramCount   `json:"ngrams"`
	}{
		Schema:             "risc1-profile/1",
		Engine:             engine.String(),
		TracesCompiled:     info.TracesCompiled,
		TraceSideExits:     info.TraceSideExits,
		TraceInvalidations: info.TraceInvalidations,
		TraceInstructions:  info.TraceInstructions,
		HotBlocks:          info.HotBlocks,
		Blocks:             m.Profile(),
		NGrams:             append(m.HotNGrams(2, 8), m.HotNGrams(3, 8)...),
	}
	out, err := json.MarshalIndent(&dump, "", "  ")
	if err != nil {
		return err
	}
	out = append(out, '\n')
	if path == "-" {
		_, err = os.Stdout.Write(out)
		return err
	}
	return os.WriteFile(path, out, 0o644)
}

// writeReport measures raw simulator throughput under all engines, pulls
// the headline numbers out of the (already warm) lab, then writes the JSON
// report and appends a dated line to the throughput history.
func writeReport(lab *exp.Lab, engine risc1.Engine, timings []experimentTiming, failures []exp.Failure) error {
	rep := benchReport{
		Schema:      "risc1-bench/5",
		Engine:      engine.String(),
		GoVersion:   runtime.Version(),
		GOMAXPROCS:  runtime.GOMAXPROCS(0),
		Experiments: timings,
	}
	for _, f := range failures {
		rep.Failures = append(rep.Failures, failureReport{
			Bench: f.Bench, Target: f.Target.String(), Error: f.Err.Error(),
		})
	}

	stepT, _, err := measureThroughput(risc1.EngineStep)
	if err != nil {
		return err
	}
	blockT, _, err := measureThroughput(risc1.EngineBlock)
	if err != nil {
		return err
	}
	traceT, traceM, err := measureThroughput(risc1.EngineTrace)
	if err != nil {
		return err
	}
	rep.SimulatorByEngine = map[string]simThroughput{
		"step":  stepT,
		"block": blockT,
		"trace": traceT,
	}
	if stepT.Seconds > 0 && blockT.Seconds > 0 {
		rep.BlockSpeedup = blockT.InstructionsPerSec / stepT.InstructionsPerSec
	}
	if blockT.Seconds > 0 && traceT.Seconds > 0 {
		rep.TraceSpeedup = traceT.InstructionsPerSec / blockT.InstructionsPerSec
	}
	traceInfo := traceM.Info()
	rep.TraceCoverage = traceCoverage{
		HotBlocks:          traceInfo.HotBlocks,
		TracesCompiled:     traceInfo.TracesCompiled,
		TraceSideExits:     traceInfo.TraceSideExits,
		TraceInvalidations: traceInfo.TraceInvalidations,
		TopNGrams:          traceM.HotNGrams(3, 8),
	}
	if traceInfo.Instructions > 0 {
		rep.TraceCoverage.TraceInstructionPct =
			100 * float64(traceInfo.TraceInstructions) / float64(traceInfo.Instructions)
	}
	switch engine {
	case risc1.EngineStep:
		rep.Simulator = stepT
	case risc1.EngineBlock:
		rep.Simulator = blockT
	default: // auto and trace both run the trace tier
		rep.Simulator = traceT
	}

	e11, err := exp.E11PipelinedCPI(lab)
	if err != nil {
		return err
	}
	rep.Pipeline = pipelineReport{
		Instructions:  e11.Instructions,
		CyclesDelayed: e11.CyclesDelayed,
		CyclesSquash:  e11.CyclesSquash,
		CPIDelayed:    e11.CPIDelayed,
		CPISquash:     e11.CPISquash,
		DelayedAdvPct: e11.DelayedAdvPct,
		FillRatePct:   e11.FillRatePct,
		LoadUseStalls: e11.LoadUseStalls,
		WindowStalls:  e11.WindowStalls,
		MemPortStalls: e11.MemPortStalls,
		FlushBubbles:  e11.FlushBubbles,
		ForwardsEXMEM: e11.ForwardsEXMEM,
		ForwardsMEMWB: e11.ForwardsMEMWB,
	}

	e12, err := exp.E12SMPScalability(lab)
	if err != nil {
		return err
	}
	rep.SMP = smpReport{CoreCounts: exp.E12CoreCounts}
	var bestSpeedup4 float64
	var contention4 uint64
	for _, row := range e12.Rows {
		k := smpKernelReport{Name: row.Name}
		for _, c := range row.Cells {
			k.Cells = append(k.Cells, smpCellReport{
				Cores:            c.Cores,
				ElapsedCycles:    c.Elapsed,
				Speedup:          c.Speedup,
				Instructions:     c.Instructions,
				ContentionCycles: c.ContentionCycles,
				TrafficBytes:     c.TrafficBytes,
				Spawns:           c.Spawns,
			})
			if c.Cores == 4 {
				contention4 += c.ContentionCycles
				if c.Speedup > bestSpeedup4 {
					bestSpeedup4 = c.Speedup
				}
			}
		}
		rep.SMP.Kernels = append(rep.SMP.Kernels, k)
	}

	e3, err := exp.E3ProgramSize(lab)
	if err != nil {
		return err
	}
	rep.Headline.E3CodeSizeRatioGeomean = e3.GeoMean
	e4, err := exp.E4ExecutionTime(lab)
	if err != nil {
		return err
	}
	rep.Headline.E4CXOverRiscTimeGeomean = e4.GeoMean
	e5, err := exp.E5CallTraffic(lab)
	if err != nil {
		return err
	}
	for _, row := range e5.Rows {
		if row.Name == "hanoi" {
			rep.Headline.E5HanoiWinBytesPerCall = row.WindowedPer
			rep.Headline.E5HanoiCXBytesPerCall = row.CiscPer
		}
	}
	e6, err := exp.E6WindowDepth(lab)
	if err != nil {
		return err
	}
	for _, row := range e6.Rows {
		if row.Windows == 8 {
			rep.Headline.E6TrapPct8Windows = row.TrapPct
		}
	}
	e7, err := exp.E7DelaySlots(lab)
	if err != nil {
		return err
	}
	if len(e7.Rows) > 0 {
		sum := 0.0
		for _, row := range e7.Rows {
			sum += row.SavingPct
		}
		rep.Headline.E7AvgCycleSavingPct = sum / float64(len(e7.Rows))
	}

	data, err := json.MarshalIndent(&rep, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(benchFile, append(data, '\n'), 0o644); err != nil {
		return err
	}
	return appendHistory(historyEntry{
		Date:          time.Now().UTC().Format(time.RFC3339),
		Schema:        rep.Schema,
		Engine:        rep.Engine,
		GoVersion:     rep.GoVersion,
		GOMAXPROCS:    rep.GOMAXPROCS,
		StepIPS:       stepT.InstructionsPerSec,
		BlockIPS:      blockT.InstructionsPerSec,
		TraceIPS:      traceT.InstructionsPerSec,
		BlockSpeedup:  rep.BlockSpeedup,
		TraceSpeedup:  rep.TraceSpeedup,
		TracePct:      rep.TraceCoverage.TraceInstructionPct,
		CPIDelayed:    rep.Pipeline.CPIDelayed,
		CPISquash:     rep.Pipeline.CPISquash,
		PipeAdvPct:    rep.Pipeline.DelayedAdvPct,
		SMPSpeedup4:   bestSpeedup4,
		SMPContention: contention4,
	})
}

// appendHistory adds one JSON line to the throughput history file.
func appendHistory(e historyEntry) error {
	line, err := json.Marshal(&e)
	if err != nil {
		return err
	}
	f, err := os.OpenFile(historyFile, os.O_CREATE|os.O_APPEND|os.O_WRONLY, 0o644)
	if err != nil {
		return err
	}
	if _, err := f.Write(append(line, '\n')); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
