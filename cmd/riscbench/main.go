// Riscbench regenerates the tables and figures of the RISC I evaluation.
//
// Usage:
//
//	riscbench                 # run every experiment, E1..E10
//	riscbench -exp E4         # just the execution-time comparison
//	riscbench -json           # also write BENCH_risc1.json (machine-readable)
//	riscbench -timeout 30s    # abort any single configuration after 30s
//	riscbench -inject hanoi   # fault-inject one benchmark (degradation demo)
//
// All experiments share one Lab, so benchmark configurations used by several
// tables are simulated only once, concurrently. A configuration that fails or
// times out renders as an ERR cell; the rest of its table survives, the
// failure is listed on stderr (and in the JSON report), and riscbench exits
// nonzero.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"slices"
	"strings"
	"time"

	"risc1"
	"risc1/internal/exp"
	"risc1/internal/mem"
)

// benchFile is where -json writes its report.
const benchFile = "BENCH_risc1.json"

// throughputAsm is the tight arithmetic loop of the package's
// BenchmarkSimulatorThroughput: 1M iterations of add/cmp/blt plus the
// delay-slot NOP — four simulated instructions per trip.
const throughputAsm = `
main:	add r0,#0,r1
	li #1000000,r2
loop:	add r1,#1,r1
	cmp r1,r2
	blt loop
	nop
	ret r25,#8
	nop
`

type benchReport struct {
	Schema      string             `json:"schema"`
	Simulator   simThroughput      `json:"simulator_throughput"`
	Experiments []experimentTiming `json:"experiments"`
	Headline    headlineMetrics    `json:"headline_metrics"`
	Failures    []failureReport    `json:"failures,omitempty"`
}

type failureReport struct {
	Bench  string `json:"bench"`
	Target string `json:"target"`
	Error  string `json:"error"`
}

type simThroughput struct {
	Instructions       uint64  `json:"sim_instructions"`
	Seconds            float64 `json:"wall_seconds"`
	InstructionsPerSec float64 `json:"sim_instructions_per_sec"`
}

type experimentTiming struct {
	ID      string  `json:"id"`
	Seconds float64 `json:"wall_seconds"`
}

type headlineMetrics struct {
	E3CodeSizeRatioGeomean  float64 `json:"e3_code_size_ratio_geomean"`
	E4CXOverRiscTimeGeomean float64 `json:"e4_cx_over_risc_time_geomean"`
	E5HanoiWinBytesPerCall  float64 `json:"e5_hanoi_win_bytes_per_call"`
	E5HanoiCXBytesPerCall   float64 `json:"e5_hanoi_cx_bytes_per_call"`
	E6TrapPct8Windows       float64 `json:"e6_trap_pct_8_windows_recursive"`
	E7AvgCycleSavingPct     float64 `json:"e7_avg_cycle_saving_pct"`
}

func main() {
	which := flag.String("exp", "all", "experiment id (E1..E10) or all")
	jsonOut := flag.Bool("json", false, "write "+benchFile+" with throughput and headline metrics")
	timeout := flag.Duration("timeout", 0, "per-configuration wall-clock limit (0 = none)")
	inject := flag.String("inject", "", "benchmark name to run under an injected memory fault")
	flag.Parse()

	valid := risc1.ExperimentIDs()
	ids := valid
	if *which != "all" {
		if !slices.Contains(valid, *which) {
			fmt.Fprintf(os.Stderr, "riscbench: unknown experiment %q (valid: %s, all)\n",
				*which, strings.Join(valid, ", "))
			os.Exit(2)
		}
		ids = []string{*which}
	}
	lab := exp.NewLab()
	if *timeout > 0 {
		lab.SetTimeout(*timeout)
	}
	if *inject != "" {
		if _, ok := risc1.BenchmarkSource(*inject); !ok {
			fmt.Fprintf(os.Stderr, "riscbench: unknown benchmark %q (valid: %s)\n",
				*inject, strings.Join(risc1.BenchmarkNames(), ", "))
			os.Exit(2)
		}
		lab.InjectFault(*inject, &mem.FaultPlan{FailNthWrite: 1})
	}
	var timings []experimentTiming
	for _, id := range ids {
		start := time.Now()
		out, err := exp.Render(lab, id)
		if err != nil {
			fmt.Fprintf(os.Stderr, "riscbench: %s: %v\n", id, err)
			os.Exit(1)
		}
		elapsed := time.Since(start)
		timings = append(timings, experimentTiming{ID: id, Seconds: elapsed.Seconds()})
		fmt.Println(out)
		fmt.Printf("[%s regenerated in %v]\n\n", id, elapsed.Round(time.Millisecond))
	}

	failures := lab.Failures()
	if *jsonOut {
		if err := writeReport(lab, timings, failures); err != nil {
			fmt.Fprintf(os.Stderr, "riscbench: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("[wrote %s]\n", benchFile)
	}
	if len(failures) > 0 {
		fmt.Fprintf(os.Stderr, "riscbench: %d configuration(s) failed:\n", len(failures))
		for _, f := range failures {
			fmt.Fprintf(os.Stderr, "  %s [%s]: %v\n", f.Bench, f.Target, f.Err)
		}
		os.Exit(1)
	}
}

// writeReport measures raw simulator throughput and pulls the headline
// numbers out of the (already warm) lab, then writes the JSON report.
func writeReport(lab *exp.Lab, timings []experimentTiming, failures []exp.Failure) error {
	rep := benchReport{Schema: "risc1-bench/1", Experiments: timings}
	for _, f := range failures {
		rep.Failures = append(rep.Failures, failureReport{
			Bench: f.Bench, Target: f.Target.String(), Error: f.Err.Error(),
		})
	}

	m := risc1.NewMachine(risc1.MachineConfig{})
	if err := m.LoadAssembly(throughputAsm); err != nil {
		return err
	}
	start := time.Now()
	if err := m.Run(); err != nil {
		return err
	}
	secs := time.Since(start).Seconds()
	instrs := m.Info().Instructions
	rep.Simulator = simThroughput{
		Instructions:       instrs,
		Seconds:            secs,
		InstructionsPerSec: float64(instrs) / secs,
	}

	e3, err := exp.E3ProgramSize(lab)
	if err != nil {
		return err
	}
	rep.Headline.E3CodeSizeRatioGeomean = e3.GeoMean
	e4, err := exp.E4ExecutionTime(lab)
	if err != nil {
		return err
	}
	rep.Headline.E4CXOverRiscTimeGeomean = e4.GeoMean
	e5, err := exp.E5CallTraffic(lab)
	if err != nil {
		return err
	}
	for _, row := range e5.Rows {
		if row.Name == "hanoi" {
			rep.Headline.E5HanoiWinBytesPerCall = row.WindowedPer
			rep.Headline.E5HanoiCXBytesPerCall = row.CiscPer
		}
	}
	e6, err := exp.E6WindowDepth(lab)
	if err != nil {
		return err
	}
	for _, row := range e6.Rows {
		if row.Windows == 8 {
			rep.Headline.E6TrapPct8Windows = row.TrapPct
		}
	}
	e7, err := exp.E7DelaySlots(lab)
	if err != nil {
		return err
	}
	if len(e7.Rows) > 0 {
		sum := 0.0
		for _, row := range e7.Rows {
			sum += row.SavingPct
		}
		rep.Headline.E7AvgCycleSavingPct = sum / float64(len(e7.Rows))
	}

	data, err := json.MarshalIndent(&rep, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(benchFile, append(data, '\n'), 0o644)
}
