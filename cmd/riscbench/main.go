// Riscbench regenerates the tables and figures of the RISC I evaluation.
//
// Usage:
//
//	riscbench            # run every experiment, E1..E9
//	riscbench -exp E4    # just the execution-time comparison
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"risc1"
)

func main() {
	which := flag.String("exp", "all", "experiment id (E1..E9) or all")
	flag.Parse()

	ids := risc1.ExperimentIDs()
	if *which != "all" {
		ids = []string{*which}
	}
	for _, id := range ids {
		start := time.Now()
		out, err := risc1.Experiment(id)
		if err != nil {
			fmt.Fprintf(os.Stderr, "riscbench: %s: %v\n", id, err)
			os.Exit(1)
		}
		fmt.Println(out)
		fmt.Printf("[%s regenerated in %v]\n\n", id, time.Since(start).Round(time.Millisecond))
	}
}
