// Risclint statically analyzes RISC I (and CX) programs without running
// them: it builds a control-flow graph honoring the delayed-transfer
// semantics and reports delay-slot hazards, bad branch targets,
// register-window misuse, use-before-def reads, suspicious constant memory
// accesses, and unreachable code. See docs/LINT.md for the pass catalog.
//
// Usage:
//
//	risclint [-target windowed|flat|cisc|pipelined|smp] [-lang cm|asm] [-json] [-Werror] file...
//
// Cm sources are compiled for the target first; assembly sources are
// assembled. -target smp lints under the windowed convention with the
// concurrency passes (smp-race, smp-lock, smp-spawn) forced on — the
// right target for programs that spawn workers or take locks. With -json
// the findings are printed as one JSON array of {file, diagnostics}
// objects. The exit status is 1 when any file has an error-severity
// finding (with -Werror, warnings too), 2 when a file cannot be read,
// compiled, or assembled.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"risc1"
)

func main() {
	target := flag.String("target", "windowed", "machine convention: windowed, flat, cisc, pipelined or smp")
	lang := flag.String("lang", "", "source language: cm or asm (default: by extension)")
	asJSON := flag.Bool("json", false, "print findings as JSON")
	werror := flag.Bool("Werror", false, "treat warnings as fatal")
	flag.Parse()
	if flag.NArg() == 0 {
		fmt.Fprintln(os.Stderr, "usage: risclint [-target windowed|flat|cisc|smp] [-lang cm|asm] [-json] [-Werror] file...")
		os.Exit(2)
	}
	t, opts, err := parseTarget(*target)
	if err != nil {
		fatal(err)
	}

	type fileReport struct {
		File        string             `json:"file"`
		Diagnostics []risc1.Diagnostic `json:"diagnostics"`
	}
	var reports []fileReport
	gate := risc1.SevError
	if *werror {
		gate = risc1.SevWarning
	}
	failed := false
	for _, file := range flag.Args() {
		src, err := os.ReadFile(file)
		if err != nil {
			fatal(err)
		}
		var diags []risc1.Diagnostic
		switch languageOf(*lang, file, string(src)) {
		case "cm":
			diags, err = risc1.LintCm(string(src), t, opts)
		default:
			diags, err = risc1.LintAssembly(string(src), t, opts)
		}
		if err != nil {
			fatal(fmt.Errorf("%s: %w", file, err))
		}
		if diags == nil {
			diags = []risc1.Diagnostic{} // JSON: [] rather than null
		}
		reports = append(reports, fileReport{File: file, Diagnostics: diags})
		if risc1.Count(diags, gate) > 0 {
			failed = true
		}
	}

	if *asJSON {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(reports); err != nil {
			fatal(err)
		}
	} else {
		for _, r := range reports {
			for _, d := range r.Diagnostics {
				loc := r.File
				if d.Line > 0 {
					loc = fmt.Sprintf("%s:%d", r.File, d.Line)
				}
				fmt.Printf("%s: %s: %s [%s] (pc %#x", loc, d.Severity, d.Message, d.Pass, d.PC)
				if d.Disasm != "" {
					fmt.Printf(": %s", d.Disasm)
				}
				fmt.Println(")")
			}
		}
	}
	if failed {
		os.Exit(1)
	}
}

// languageOf picks the source language: an explicit -lang wins, then the
// extension, then a content sniff for files named neither way.
func languageOf(flagLang, file, src string) string {
	if flagLang != "" {
		return flagLang
	}
	switch strings.ToLower(filepath.Ext(file)) {
	case ".cm", ".c":
		return "cm"
	case ".s", ".asm":
		return "asm"
	}
	if strings.Contains(src, "int main") {
		return "cm"
	}
	return "asm"
}

func parseTarget(s string) (risc1.Target, risc1.LintOptions, error) {
	switch s {
	case "windowed", "risc":
		return risc1.RISCWindowed, risc1.LintOptions{}, nil
	case "flat":
		return risc1.RISCFlat, risc1.LintOptions{}, nil
	case "cisc", "cx":
		return risc1.CISC, risc1.LintOptions{}, nil
	case "pipelined":
		// Lints under the windowed conventions: the pipeline target runs
		// the same generated code, only the timing model differs.
		return risc1.RISCPipelined, risc1.LintOptions{}, nil
	case "smp":
		// The windowed convention with the concurrency passes forced on.
		return risc1.RISCWindowed, risc1.LintOptions{SMP: true}, nil
	}
	return 0, risc1.LintOptions{}, fmt.Errorf(
		"unknown target %q (want windowed, flat, cisc, pipelined or smp)", s)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "risclint:", err)
	os.Exit(2)
}
