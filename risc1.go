// Package risc1 is a library reproduction of "RISC I: A Reduced Instruction
// Set VLSI Computer" (Patterson & Séquin, ISCA 1981): a cycle-modelled
// simulator of the RISC I architecture — 31 instructions, overlapping
// register windows, delayed jumps — together with everything its published
// evaluation needs: a microcoded CISC comparator ("CX"), a small-C compiler
// with back ends for both machines (plus a windowless RISC ablation), the
// classic benchmark suite, and harnesses that regenerate each table and
// figure of the paper.
//
// Quick start:
//
//	out, err := risc1.BuildAndRun(`
//	    int main() { putint(6 * 7); return 0; }`, risc1.RISCWindowed)
//	fmt.Println(out.Console) // "42"
//
// For assembly-level work, create a Machine, load RISC I assembly, and step
// or run it:
//
//	m := risc1.NewMachine(risc1.MachineConfig{})
//	m.LoadAssembly("main: add r0,#1,r1\n ret r25,#8\n nop")
//	m.Run()
//
// The experiment harnesses behind the paper's tables are exposed through
// Experiment and ExperimentIDs; `go test -bench .` regenerates all of them.
package risc1

import (
	"context"
	"time"

	"risc1/internal/asm"
	"risc1/internal/cc"
	"risc1/internal/cisc"
	"risc1/internal/core"
	"risc1/internal/exp"
	"risc1/internal/isa"
	"risc1/internal/lint"
	"risc1/internal/mem"
	"risc1/internal/pipeline"
	"risc1/internal/prog"
	"risc1/internal/smp"
	"risc1/internal/timing"
)

// Target selects a compilation target for Cm sources.
type Target = cc.Target

// The three targets of the paper's methodology, plus the cycle-accurate
// pipelined model of the windowed machine.
const (
	// RISCWindowed is RISC I as built: register-window calling convention.
	RISCWindowed = cc.RISCWindowed
	// RISCFlat is the ablation: same ISA, conventional save/restore calls.
	RISCFlat = cc.RISCFlat
	// CISC is the CX comparator machine.
	CISC = cc.CISC
	// RISCPipelined runs windowed code on the cycle-accurate five-stage
	// pipeline model: architectural results identical to RISCWindowed
	// (the pipeline drives the same step oracle), timing measured with
	// forwarding, interlocks, window-trap drains and a control-transfer
	// policy instead of unit instruction costs.
	RISCPipelined = cc.RISCPipelined
)

// Policy selects how the pipelined target resolves control transfers; see
// pipeline.Policy. Targets other than RISCPipelined ignore it.
type Policy = pipeline.Policy

// The control-transfer policies of the pipelined target.
const (
	// PolicyDelayed is the paper's delayed jump: the slot covers the
	// branch shadow exactly, taken transfers cost no extra cycle.
	PolicyDelayed = pipeline.PolicyDelayed
	// PolicySquash is predict-not-taken hardware on the same ISA: each
	// taken transfer squashes one wrong-path fetch (a one-cycle bubble).
	PolicySquash = pipeline.PolicySquash
)

// ParsePolicy maps the CLI/API spelling ("delayed", "squash", or empty for
// delayed) to a Policy.
func ParsePolicy(s string) (Policy, error) { return pipeline.ParsePolicy(s) }

// Engine selects how the RISC I core executes: the profile-guided trace
// tier (the default — basic blocks plus superblocks compiled over hot
// paths), plain basic-block compilation, or the single-step reference
// interpreter. The engines are observationally identical — same console,
// statistics, faults — and differ only in speed; see core.Engine.
type Engine = core.Engine

// The execution engines. EngineAuto resolves to the trace tier unless a
// per-instruction trace callback is installed.
const (
	EngineAuto  = core.EngineAuto
	EngineBlock = core.EngineBlock
	EngineStep  = core.EngineStep
	EngineTrace = core.EngineTrace
)

// ParseEngine maps the CLI/API spelling ("auto", "block", "step", "trace",
// or empty for auto) to an Engine.
func ParseEngine(s string) (Engine, error) { return core.ParseEngine(s) }

// CompileOptions tunes Cm compilation.
type CompileOptions struct {
	// NoDelaySlotFill keeps a NOP in every delayed-transfer slot.
	NoDelaySlotFill bool
	// WideData uses full 32-bit addressing for globals instead of the
	// 8 KiB global-pointer window.
	WideData bool
}

// CompileCm compiles Cm source to assembly text for the given target.
func CompileCm(source string, target Target, opts CompileOptions) (string, error) {
	res, err := cc.Compile(source, cc.Options{
		Target:          target,
		NoDelaySlotFill: opts.NoDelaySlotFill,
		WideData:        opts.WideData,
	})
	if err != nil {
		return "", err
	}
	return res.Asm, nil
}

// MaxCores is the largest shared-memory machine RunOptions.Cores accepts.
const MaxCores = smp.MaxCores

// Typed SMP configuration errors, re-exported so callers can test with
// errors.Is; see internal/smp.
var (
	// ErrBadCores rejects a core count outside 1..MaxCores.
	ErrBadCores = smp.ErrBadCores
	// ErrWindowedOnly rejects a multi-core run on any target but
	// RISCWindowed: the spawn/join runtime leans on the register windows.
	ErrWindowedOnly = smp.ErrWindowedOnly
)

// DefaultMaxCycles is the cycle budget applied when a caller does not pick
// one: cmd/riscrun's -max-cycles default and the riscd serving layer's
// per-request ceiling both share this constant, so the CLI and the service
// enforce the same bound on runaway programs. (At the paper's 400 ns cycle
// this is ~7 simulated minutes — far beyond any legitimate benchmark.)
const DefaultMaxCycles uint64 = 1_000_000_000

// RunInfo summarizes one program execution.
type RunInfo struct {
	Console string
	// ConsoleTruncated reports that the program printed more than the
	// console device retains (mem.DefaultConsoleLimit) and the excess was
	// dropped.
	ConsoleTruncated bool
	Instructions     uint64
	Cycles           uint64 // processor cycles (RISC) or microcycles (CX)
	Time             time.Duration
	CodeBytes        int
	DataBytes        int

	Calls            uint64
	MaxCallDepth     int
	WindowOverflows  uint64
	WindowUnderflows uint64
	DataReadBytes    uint64
	DataWriteBytes   uint64
	FetchBytes       uint64

	// Trace-tier meta statistics, populated on RISC targets when the auto
	// or trace engine ran. They live outside the architectural statistics
	// above on purpose: all engines agree on those exactly, and only the
	// trace tier has traces to count.
	TracesCompiled     uint64
	TraceSideExits     uint64
	TraceInvalidations uint64
	// TraceInstructions counts dynamic instructions retired inside
	// compiled traces (a subset of Instructions).
	TraceInstructions uint64
	// HotBlocks counts block leaders whose execution heat reached the
	// trace-compile threshold.
	HotBlocks int
	// Profile and NGrams carry the full heat table and the measured
	// dynamic opcode n-grams; both are filled only when
	// RunOptions.Profile is set.
	Profile []BlockProfile
	NGrams  []NGramCount

	// Pipeline carries the cycle-accurate timing breakdown for runs on
	// the RISCPipelined target; nil for every other target. For those
	// runs Cycles and Time above are the measured pipeline values, and
	// Pipeline.RefCycles preserves the single-cycle model's count.
	Pipeline *PipelineInfo

	// SMP carries the shared-memory machine's breakdown for runs with
	// RunOptions.Cores > 1; nil otherwise. For those runs Instructions and
	// the data-traffic totals above aggregate every core, and Cycles is
	// the machine's makespan (max over cores of executed plus contention
	// cycles).
	SMP *SMPInfo

	// Races holds the data races the dynamic detector observed, filled
	// only when RunOptions.Race is set. Empty means the execution was
	// race-free under the hybrid lockset/happens-before test; each entry
	// records the two unsynchronized accesses with core, PC and source
	// line. Reporting is capped per run, one race per shared word.
	Races []Race
}

// Race is one dynamically-observed data race; see internal/smp.
type Race = smp.Race

// RaceAccess is one side of a Race: which core touched the word, where,
// and whether it wrote.
type RaceAccess = smp.RaceAccess

// SMPInfo is the shared-memory machine's execution breakdown.
type SMPInfo struct {
	Cores int `json:"cores"`
	// ElapsedCycles is the makespan under the interconnect cost model.
	ElapsedCycles uint64 `json:"elapsed_cycles"`
	// ContentionCycles totals the arbitration penalty charged across cores
	// for rounds where more than one core touched memory.
	ContentionCycles uint64 `json:"contention_cycles"`
	// Rounds counts scheduler rounds; Spawns counts workers launched and
	// SpawnFails the spawn requests that fell back to an inline call.
	Rounds     uint64        `json:"rounds"`
	Spawns     uint64        `json:"spawns"`
	SpawnFails uint64        `json:"spawn_fails"`
	PerCore    []SMPCoreInfo `json:"per_core"`
}

// SMPCoreInfo is one core's share of a shared-memory run.
type SMPCoreInfo = smp.CoreStats

// PipelineInfo is the cycle-accurate pipeline's timing breakdown.
type PipelineInfo struct {
	Policy string  `json:"policy"`
	Cycles uint64  `json:"cycles"`
	CPI    float64 `json:"cpi"`
	// RefCycles is what the single-cycle cost model charges the same
	// execution — the baseline the pipeline is measured against.
	RefCycles          uint64  `json:"ref_cycles"`
	LoadUseStallCycles uint64  `json:"load_use_stall_cycles"`
	WindowStallCycles  uint64  `json:"window_stall_cycles"`
	MemPortStallCycles uint64  `json:"mem_port_stall_cycles"`
	FlushBubbleCycles  uint64  `json:"flush_bubble_cycles"`
	ForwardsEXMEM      uint64  `json:"forwards_ex_mem"`
	ForwardsMEMWB      uint64  `json:"forwards_mem_wb"`
	DelaySlots         uint64  `json:"delay_slots"`
	DelaySlotsFilled   uint64  `json:"delay_slots_filled"`
	FillRatePct        float64 `json:"fill_rate_pct"`
}

// BlockProfile is one row of the execution-heat profile: a basic-block
// leader, how many times it dispatched, and whether a live compiled trace
// covers it.
type BlockProfile struct {
	PC    uint32 `json:"pc"`
	Count uint64 `json:"count"`
	Trace bool   `json:"trace"`
}

// NGramCount is one measured dynamic opcode n-gram — the profile the
// trace tier's instruction-fusion repertoire grows from.
type NGramCount struct {
	Ops   []string `json:"ops"`
	Count uint64   `json:"count"`
}

// BuildAndRun compiles a Cm program, assembles it and runs it to completion
// on the selected machine, returning the console output and statistics.
func BuildAndRun(source string, target Target) (*RunInfo, error) {
	return BuildAndRunContext(context.Background(), source, target)
}

// BuildAndRunContext is BuildAndRun honoring ctx: cancellation or deadline
// expiry aborts the simulation within one run batch. A failed run returns a
// structured error (core.RunError / cisc.RunError) carrying the faulting PC,
// its disassembly, the cycle count and a register snapshot.
func BuildAndRunContext(ctx context.Context, source string, target Target) (*RunInfo, error) {
	img, err := CompileToImage(source, target)
	if err != nil {
		return nil, err
	}
	return RunImage(ctx, img, RunOptions{})
}

// Image is a compiled, loadable program for one target machine. An Image is
// immutable after creation — running it copies the bytes into a fresh
// machine — so one Image can safely serve many concurrent RunImage calls.
// This is the unit the riscd serving layer caches: compile once, run many.
type Image struct {
	target Target
	risc   *asm.Image
	cisc   *cisc.Image
}

// Target returns the machine the image was compiled for.
func (img *Image) Target() Target { return img.target }

// Size returns the image size in bytes (code plus initialized data).
func (img *Image) Size() int {
	if img.target == CISC {
		return img.cisc.Size()
	}
	return len(img.risc.Bytes)
}

// Disassemble renders the image's encoded listing.
func (img *Image) Disassemble() string {
	if img.target == CISC {
		return cisc.Disassemble(img.cisc)
	}
	return asm.Disassemble(img.risc)
}

// CompileToImage compiles a Cm program to a reusable Image for the given
// target, including BuildAndRun's wide-addressing fallback for RISC targets.
func CompileToImage(source string, target Target) (*Image, error) {
	if target == CISC {
		res, err := cc.Compile(source, cc.Options{Target: target})
		if err != nil {
			return nil, err
		}
		ci, err := cisc.Assemble(res.Asm)
		if err != nil {
			return nil, err
		}
		return &Image{target: target, cisc: ci}, nil
	}
	ri, err := compileRISC(source, target)
	if err != nil {
		return nil, err
	}
	return &Image{target: target, risc: ri}, nil
}

// AssembleToImage assembles machine-level source to a reusable Image: RISC I
// assembly for the RISC targets (RISCWindowed, RISCFlat and RISCPipelined
// differ only in how the machine runs the image, not in its encoding), CX
// assembly for CISC.
func AssembleToImage(source string, target Target) (*Image, error) {
	if target == CISC {
		ci, err := cisc.Assemble(source)
		if err != nil {
			return nil, err
		}
		return &Image{target: target, cisc: ci}, nil
	}
	ri, err := asm.Assemble(source)
	if err != nil {
		return nil, err
	}
	return &Image{target: target, risc: ri}, nil
}

// RunOptions bounds one image execution.
type RunOptions struct {
	// MaxCycles aborts the run once the machine has simulated this many
	// cycles (RISC) or microcycles (CX). Zero keeps the machine default.
	MaxCycles uint64
	// Engine selects the RISC core execution engine. The CX machine has a
	// single interpreter and ignores it; the pipelined target always runs
	// the step oracle (the timing model observes individual retirements).
	Engine Engine
	// Policy selects the pipelined target's control-transfer policy
	// (delayed or squash); other targets ignore it.
	Policy Policy
	// Profile collects the execution-heat table and dynamic opcode
	// n-grams into RunInfo.Profile / RunInfo.NGrams (RISC targets only).
	Profile bool
	// Cores runs the image on a shared-memory machine of this many RISC I
	// cores (1..MaxCores; 0 means 1). Multi-core runs require the
	// RISCWindowed target — every other target returns ErrWindowedOnly —
	// and fill RunInfo.SMP. MaxCycles bounds each core individually.
	Cores int
	// Race runs the image under the dynamic race detector: a hybrid
	// lockset/happens-before shadow memory records unsynchronized access
	// pairs to shared words into RunInfo.Races. It routes the run through
	// the shared-memory machine (so it requires RISCWindowed, even at one
	// core) and forces the step engine for exact access attribution —
	// expect a slower run, not different architectural results.
	Race bool
	// Monitor, when non-nil, observes the run while it is in flight —
	// the seam the riscd streaming API is built on. It never changes
	// architectural results; a run with a Monitor retires the same
	// instructions and prints the same console as one without.
	Monitor *RunMonitor
}

// RunMonitor observes a run in flight. Both callbacks run on the simulation
// goroutine: a callback that blocks stalls the guest program, which is how a
// streaming consumer applies backpressure deliberately. Either field may be
// nil.
type RunMonitor struct {
	// Console receives each console rendering (one putc byte or one putint
	// decimal string) as the guest emits it, including output the retained
	// console buffer drops at its cap — live consumers see everything even
	// when RunInfo.Console is truncated.
	Console func(chunk string)
	// Progress is called periodically — at run-batch boundaries on the
	// single-core machines, after each scheduling round on the SMP
	// machine — with the instruction and cycle counters retired so far.
	Progress func(instructions, cycles uint64)
}

// install arms the monitor's callbacks on one machine's memory and progress
// hook. setProgress receives a nil-able hook so machines without the monitor
// stay zero-overhead.
func (mon *RunMonitor) install(m *mem.Memory, setProgress func(func(uint64, uint64))) {
	if mon == nil {
		return
	}
	if mon.Console != nil {
		m.SetConsoleSink(mon.Console)
	}
	if mon.Progress != nil {
		setProgress(mon.Progress)
	}
}

// RunImage runs a compiled image to completion on a fresh machine of its
// target, honoring ctx like BuildAndRunContext. The image is not modified,
// so concurrent RunImage calls on one Image are safe.
func RunImage(ctx context.Context, img *Image, opt RunOptions) (*RunInfo, error) {
	if opt.Cores < 0 || opt.Cores > MaxCores {
		return nil, ErrBadCores
	}
	if opt.Cores > 1 || opt.Race {
		if img.target != RISCWindowed {
			return nil, ErrWindowedOnly
		}
		return runSMP(ctx, img, opt)
	}
	if img.target == CISC {
		m := cisc.New(cisc.Config{MaxCycles: opt.MaxCycles})
		if err := m.Load(img.cisc); err != nil {
			return nil, err
		}
		opt.Monitor.install(m.Mem, func(f func(uint64, uint64)) { m.Progress = f })
		if err := m.RunContext(ctx); err != nil {
			return nil, err
		}
		return ciscInfo(m, img.cisc), nil
	}
	if img.target == RISCPipelined {
		pm := pipeline.New(core.Config{
			SaveStackBytes: 64 << 10,
			MaxCycles:      opt.MaxCycles,
		}, opt.Policy)
		if err := pm.Load(img.risc); err != nil {
			return nil, err
		}
		cpu := pm.CPU()
		opt.Monitor.install(cpu.Mem, func(f func(uint64, uint64)) { cpu.Progress = f })
		if err := pm.RunContext(ctx); err != nil {
			return nil, err
		}
		info := riscInfo(pm.CPU(), len(img.risc.Bytes))
		res := pm.Result()
		info.Pipeline = pipelineInfo(res, info.Cycles)
		// Report the measured pipeline timing as the run's headline
		// cycles; the single-cycle count stays in Pipeline.RefCycles.
		info.Cycles = res.Cycles
		info.Time = timing.RiscTime(res.Cycles)
		return info, nil
	}
	m := core.New(core.Config{
		Flat:           img.target == RISCFlat,
		SaveStackBytes: 64 << 10,
		MaxCycles:      opt.MaxCycles,
		Engine:         opt.Engine,
	})
	if err := m.Load(img.risc); err != nil {
		return nil, err
	}
	opt.Monitor.install(m.Mem, func(f func(uint64, uint64)) { m.Progress = f })
	if err := m.RunContext(ctx); err != nil {
		return nil, err
	}
	info := riscInfo(m, len(img.risc.Bytes))
	if opt.Profile {
		info.Profile = heatProfile(m)
		info.NGrams = hotNGrams(m)
	}
	return info, nil
}

// runSMP executes a windowed image on the shared-memory multiprocessor.
func runSMP(ctx context.Context, img *Image, opt RunOptions) (*RunInfo, error) {
	cores := opt.Cores
	if cores < 1 {
		cores = 1
	}
	m, err := smp.New(img.risc, smp.Config{
		Cores: cores,
		Race:  opt.Race,
		Core: core.Config{
			SaveStackBytes: 64 << 10,
			MaxCycles:      opt.MaxCycles,
			Engine:         opt.Engine,
		},
	})
	if err != nil {
		return nil, err
	}
	opt.Monitor.install(m.Core(0).Mem, func(f func(uint64, uint64)) { m.Progress = f })
	if err := m.Run(ctx); err != nil {
		return nil, err
	}
	leader := m.Core(0)
	info := riscInfo(leader, len(img.risc.Bytes))
	if opt.Profile {
		info.Profile = heatProfile(leader)
		info.NGrams = hotNGrams(leader)
	}
	perCore := m.CoreStats()
	si := &SMPInfo{
		Cores:            m.Cores(),
		ElapsedCycles:    m.Elapsed(),
		ContentionCycles: m.ContentionCycles(),
		Rounds:           m.Rounds(),
		Spawns:           m.Spawns(),
		SpawnFails:       m.SpawnFails(),
		PerCore:          perCore,
	}
	// Aggregate the whole machine into the headline fields: total
	// retirements and traffic, makespan cycles.
	info.Instructions, info.DataReadBytes, info.DataWriteBytes = 0, 0, 0
	info.FetchBytes, info.Calls = 0, 0
	for i, cs := range perCore {
		info.Instructions += cs.Instructions
		info.DataReadBytes += cs.DataReadBytes
		info.DataWriteBytes += cs.DataWriteBytes
		cst := m.Core(i).Stats()
		info.FetchBytes += cst.FetchBytes
		info.Calls += cst.Calls
	}
	info.Cycles = si.ElapsedCycles
	info.Time = timing.RiscTime(si.ElapsedCycles)
	info.SMP = si
	if opt.Race {
		info.Races = m.Races()
	}
	return info, nil
}

// compileRISC compiles and assembles a Cm program for a RISC target. When
// assembly fails only because a value outran its immediate field — a program
// whose data exceeds the global pointer's 8 KiB reach — it recompiles once
// with full 32-bit addressing. Any other assembly error is returned as-is:
// retrying could only mask the genuine diagnostic behind a second compile.
func compileRISC(source string, target Target) (*asm.Image, error) {
	res, err := cc.Compile(source, cc.Options{Target: target})
	if err != nil {
		return nil, err
	}
	img, err := asm.Assemble(res.Asm)
	if err == nil || !asm.IsOutOfRange(err) {
		return img, err
	}
	res, werr := cc.Compile(source, cc.Options{Target: target, WideData: true})
	if werr != nil {
		return nil, err // report the original, narrow-addressing failure
	}
	return asm.Assemble(res.Asm)
}

func riscInfo(m *core.CPU, imageBytes int) *RunInfo {
	s := m.Stats()
	ts := m.TraceStats()
	info := &RunInfo{
		Console:          m.Console(),
		ConsoleTruncated: m.Mem.ConsoleTruncated(),
		Instructions:     s.Instructions,
		Cycles:           s.Cycles,
		Time:             timing.RiscTime(s.Cycles),
		CodeBytes:        imageBytes,
		Calls:            s.Calls,
		MaxCallDepth:     s.MaxCallDepth,
		WindowOverflows:  s.WindowOverflow,
		WindowUnderflows: s.WindowUnderflow,
		DataReadBytes:    s.DataReads,
		DataWriteBytes:   s.DataWrites,
		FetchBytes:       s.FetchBytes,

		TracesCompiled:     ts.Compiled,
		TraceSideExits:     ts.SideExits,
		TraceInvalidations: ts.Invalidations,
		TraceInstructions:  ts.Instructions,
	}
	thr := m.HotThreshold()
	for _, h := range m.HeatProfile() {
		if h.Count >= thr {
			info.HotBlocks++
		}
	}
	return info
}

// pipelineInfo converts a pipeline timing result to the facade type.
// refCycles is the single-cycle model's count for the same execution.
func pipelineInfo(r pipeline.Result, refCycles uint64) *PipelineInfo {
	return &PipelineInfo{
		Policy:             r.Policy.String(),
		Cycles:             r.Cycles,
		CPI:                r.CPI(),
		RefCycles:          refCycles,
		LoadUseStallCycles: r.LoadUseStallCycles,
		WindowStallCycles:  r.WindowStallCycles,
		MemPortStallCycles: r.MemPortStallCycles,
		FlushBubbleCycles:  r.FlushBubbleCycles,
		ForwardsEXMEM:      r.ForwardsEXMEM,
		ForwardsMEMWB:      r.ForwardsMEMWB,
		DelaySlots:         r.DelaySlots,
		DelaySlotsFilled:   r.DelaySlotsFilled,
		FillRatePct:        100 * r.FillRate(),
	}
}

// heatProfile converts the core's heat table to the facade type.
func heatProfile(m *core.CPU) []BlockProfile {
	heat := m.HeatProfile()
	out := make([]BlockProfile, len(heat))
	for i, h := range heat {
		out[i] = BlockProfile{PC: h.PC, Count: h.Count, Trace: h.Trace}
	}
	return out
}

// hotNGrams collects the top measured bigrams and trigrams.
func hotNGrams(m *core.CPU) []NGramCount {
	var out []NGramCount
	for _, n := range []int{2, 3} {
		for _, g := range m.HotNGrams(n, 8) {
			out = append(out, NGramCount{Ops: g.Ops, Count: g.Count})
		}
	}
	return out
}

func ciscInfo(m *cisc.CPU, img *cisc.Image) *RunInfo {
	s := m.Stats()
	return &RunInfo{
		Console:          m.Console(),
		ConsoleTruncated: m.Mem.ConsoleTruncated(),
		Instructions:     s.Instructions,
		Cycles:           s.Cycles,
		Time:             timing.CXTime(s.Cycles),
		CodeBytes:        img.Size(),
		Calls:            s.Calls,
		MaxCallDepth:     s.MaxCallDepth,
		DataReadBytes:    s.DataReads,
		DataWriteBytes:   s.DataWrites,
		FetchBytes:       s.FetchBytes,
	}
}

// MachineConfig sizes an assembly-level RISC I machine.
type MachineConfig struct {
	Windows   int  // register windows (0 = the paper's 8)
	Flat      bool // disable window sliding
	MemSize   int  // RAM bytes (0 = 1 MiB)
	MaxCycles uint64
	// Engine selects the execution engine (auto, block, step, trace).
	Engine Engine
}

// Machine is an assembly-level RISC I processor.
type Machine struct {
	cpu       *core.CPU
	lastImage *asm.Image
}

// NewMachine builds a RISC I machine.
func NewMachine(cfg MachineConfig) *Machine {
	return &Machine{cpu: core.New(core.Config{
		Windows:   cfg.Windows,
		Flat:      cfg.Flat,
		MemSize:   cfg.MemSize,
		MaxCycles: cfg.MaxCycles,
		Engine:    cfg.Engine,
	})}
}

// LoadAssembly assembles RISC I source and loads it at its origin.
func (m *Machine) LoadAssembly(source string) error {
	img, err := asm.Assemble(source)
	if err != nil {
		return err
	}
	m.lastImage = img
	return m.cpu.Load(img)
}

// Run executes until halt, fault, or the cycle limit.
func (m *Machine) Run() error { return m.cpu.Run() }

// RunContext is Run honoring ctx: cancellation or deadline expiry aborts
// within one run batch, returning a structured core.RunError wrapping
// ctx.Err().
func (m *Machine) RunContext(ctx context.Context) error { return m.cpu.RunContext(ctx) }

// Step executes one instruction. The configured MaxCycles budget is exact
// and enforced here as well as in Run: a step that would begin at or beyond
// the limit refuses to execute.
func (m *Machine) Step() error { return m.cpu.Step() }

// Halted reports whether the program has finished.
func (m *Machine) Halted() bool { return m.cpu.Halted() }

// PC returns the program counter.
func (m *Machine) PC() uint32 { return m.cpu.PC() }

// Reg reads a visible register of the current window.
func (m *Machine) Reg(r uint8) uint32 { return m.cpu.Reg(r) }

// Console returns everything the program printed.
func (m *Machine) Console() string { return m.cpu.Console() }

// Info returns the execution statistics so far.
func (m *Machine) Info() *RunInfo {
	size := 0
	if m.lastImage != nil {
		size = len(m.lastImage.Bytes)
	}
	return riscInfo(m.cpu, size)
}

// Profile returns the execution-heat table accumulated so far, hottest
// first. Heat is counted by the trace-capable engines (auto, trace); the
// block and step engines leave it empty.
func (m *Machine) Profile() []BlockProfile { return heatProfile(m.cpu) }

// HotNGrams returns the top measured dynamic opcode n-grams (n clamped to
// 2 or 3).
func (m *Machine) HotNGrams(n, top int) []NGramCount {
	var out []NGramCount
	for _, g := range m.cpu.HotNGrams(n, top) {
		out = append(out, NGramCount{Ops: g.Ops, Count: g.Count})
	}
	return out
}

// Interrupt queues an external interrupt. When interrupts are enabled the
// processor redirects to vector at the next instruction boundary; the
// handler uses CALLINT to capture the restart PC (sliding to a fresh
// register window) and RETINT to resume.
func (m *Machine) Interrupt(vector uint32) { m.cpu.Interrupt(vector) }

// Symbol looks up a label in the most recently loaded program.
func (m *Machine) Symbol(name string) (uint32, bool) {
	if m.lastImage == nil {
		return 0, false
	}
	return m.lastImage.Symbol(name)
}

// SetTrace installs (or clears, with nil) a per-instruction trace callback
// receiving each executed instruction's address and disassembly.
func (m *Machine) SetTrace(f func(pc uint32, disasm string)) {
	if f == nil {
		m.cpu.Trace = nil
		return
	}
	m.cpu.Trace = func(pc uint32, inst isa.Inst) { f(pc, inst.String()) }
}

// Disassemble renders RISC I assembly for an assembled source, with
// addresses and encodings (a convenience for debugging and teaching).
func Disassemble(source string) (string, error) {
	img, err := asm.Assemble(source)
	if err != nil {
		return "", err
	}
	return asm.Disassemble(img), nil
}

// CompileAndDisassemble compiles a Cm program and returns the target
// machine's encoded listing — handy for comparing how the fixed-format
// RISC I and the variable-length CX spell the same program. RISC targets
// share BuildAndRun's wide-addressing fallback, so any program that runs
// also disassembles.
func CompileAndDisassemble(source string, target Target) (string, error) {
	if target == CISC {
		res, err := cc.Compile(source, cc.Options{Target: target})
		if err != nil {
			return "", err
		}
		img, err := cisc.Assemble(res.Asm)
		if err != nil {
			return "", err
		}
		return cisc.Disassemble(img), nil
	}
	img, err := compileRISC(source, target)
	if err != nil {
		return "", err
	}
	return asm.Disassemble(img), nil
}

// Diagnostic is one static-analysis finding; see package lint.
type Diagnostic = lint.Diagnostic

// Severity ranks a Diagnostic.
type Severity = lint.Severity

// Diagnostic severities, least severe first.
const (
	SevInfo    = lint.SevInfo
	SevWarning = lint.SevWarning
	SevError   = lint.SevError
)

// Count returns how many diagnostics are at least as severe as min.
func Count(diags []Diagnostic, min Severity) int { return lint.Count(diags, min) }

// LintOptions tunes the static analysis.
type LintOptions struct {
	// SMP forces the concurrency passes (smp-race, smp-lock, smp-spawn)
	// on windowed images. The passes engage automatically when the image
	// contains SMP operations — spawn/join/lock runtime calls or direct
	// device-page accesses — so the flag only matters for declaring
	// intent: with it set, an image meant to be concurrent is analyzed as
	// such even if the analysis finds no SMP operations to anchor on.
	SMP bool
}

// LintImage statically analyzes a compiled or assembled image: CFG
// construction honoring the delayed-transfer semantics, then the dataflow
// passes of package lint (delay-slot hazards, branch targets,
// register-window depth, use-before-def, constant memory accesses,
// unreachable code, and — on images that use the shared-memory runtime —
// the concurrency lockset/race passes). CISC images get the subset of
// checks that translate to the CX machine. The result is sorted by
// address; it is empty for a clean image.
func LintImage(img *Image, opts LintOptions) []Diagnostic {
	if img.target == CISC {
		return lint.CheckCISC(img.cisc)
	}
	return lint.Check(img.risc, lint.Options{
		Flat: img.target == RISCFlat,
		SMP:  opts.SMP,
	})
}

// LintCm compiles a Cm program for the given target and lints the result —
// the convenience behind ccm's -lint flag.
func LintCm(source string, target Target, opts LintOptions) ([]Diagnostic, error) {
	img, err := CompileToImage(source, target)
	if err != nil {
		return nil, err
	}
	return LintImage(img, opts), nil
}

// LintAssembly assembles machine-level source for the given target and
// lints the result — the convenience behind riscasm's -lint flag.
func LintAssembly(source string, target Target, opts LintOptions) ([]Diagnostic, error) {
	img, err := AssembleToImage(source, target)
	if err != nil {
		return nil, err
	}
	return LintImage(img, opts), nil
}

// BenchmarkNames lists the benchmark suite.
func BenchmarkNames() []string {
	var out []string
	for _, b := range prog.All() {
		out = append(out, b.Name)
	}
	return out
}

// BenchmarkSource returns a suite benchmark's Cm source.
func BenchmarkSource(name string) (string, bool) {
	b, ok := prog.ByName(name)
	return b.Source, ok
}

// ExperimentIDs lists the paper's tables and figures in order. E10, E11 and
// E12 are this repository's extensions: the analytical pipeline-organization
// ablation behind the delayed-jump design decision, its cycle-accurate
// measurement on the five-stage pipeline model, and the shared-memory SMP
// scalability sweep.
func ExperimentIDs() []string { return exp.IDs() }

// Lab caches benchmark runs across experiments: many experiments share
// configurations (e.g. the default windowed suite), so running them through
// one Lab simulates each configuration only once. Safe for concurrent use.
type Lab struct {
	l *exp.Lab
}

// NewLab builds an empty experiment lab.
func NewLab() *Lab { return &Lab{l: exp.NewLab()} }

// Experiment runs one reproduction experiment and returns its rendered
// table(s). IDs are E1..E12; see DESIGN.md for the experiment index.
func Experiment(id string) (string, error) {
	return NewLab().Experiment(id)
}

// Experiment runs one experiment against the lab's shared run cache.
func (lab *Lab) Experiment(id string) (string, error) {
	return exp.Render(lab.l, id)
}
