package risc1_test

import (
	"context"
	"errors"
	"reflect"
	"sync"
	"testing"

	"risc1"
	"risc1/internal/core"
)

// TestImageCompileOnceRunMany pins the serving layer's foundation: one
// compiled Image runs concurrently on fresh machines with identical results.
func TestImageCompileOnceRunMany(t *testing.T) {
	img, err := risc1.CompileToImage(`
int fib(int n) {
    if (n < 2) return n;
    return fib(n - 1) + fib(n - 2);
}
int main() { putint(fib(12)); return 0; }`, risc1.RISCWindowed)
	if err != nil {
		t.Fatal(err)
	}
	if img.Target() != risc1.RISCWindowed || img.Size() == 0 {
		t.Fatalf("bad image: target %v size %d", img.Target(), img.Size())
	}
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			info, err := risc1.RunImage(context.Background(), img, risc1.RunOptions{})
			if err != nil {
				t.Error(err)
				return
			}
			if info.Console != "144" {
				t.Errorf("console = %q, want 144", info.Console)
			}
		}()
	}
	wg.Wait()
}

// TestImageMatchesBuildAndRun checks the image path and the one-shot path
// produce identical statistics on every target.
func TestImageMatchesBuildAndRun(t *testing.T) {
	src := `int main() { putint(6 * 7); return 0; }`
	for _, target := range []risc1.Target{risc1.RISCWindowed, risc1.RISCFlat, risc1.CISC} {
		direct, err := risc1.BuildAndRun(src, target)
		if err != nil {
			t.Fatal(err)
		}
		img, err := risc1.CompileToImage(src, target)
		if err != nil {
			t.Fatal(err)
		}
		staged, err := risc1.RunImage(context.Background(), img, risc1.RunOptions{})
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(staged, direct) {
			t.Errorf("target %v: image run diverged:\n%+v\n%+v", target, staged, direct)
		}
		if dis := img.Disassemble(); len(dis) == 0 {
			t.Errorf("target %v: empty disassembly", target)
		}
	}
}

// TestRunImageMaxCycles pins the budget plumbing: an infinite loop dies at
// exactly the requested cycle.
func TestRunImageMaxCycles(t *testing.T) {
	img, err := risc1.AssembleToImage("main: jmpr alw,main\n nop\n", risc1.RISCWindowed)
	if err != nil {
		t.Fatal(err)
	}
	_, err = risc1.RunImage(context.Background(), img, risc1.RunOptions{MaxCycles: 500})
	if !errors.Is(err, core.ErrMaxCycles) {
		t.Fatalf("err = %v, want ErrMaxCycles", err)
	}
	var re *core.RunError
	if !errors.As(err, &re) || re.Cycles != 500 {
		t.Fatalf("budget not exact: %v", err)
	}
}

// TestAssembleToImageCISC checks the CX assembler path of AssembleToImage.
func TestAssembleToImageCISC(t *testing.T) {
	asmText, err := risc1.CompileCm(
		`int main() { putint(7); return 0; }`, risc1.CISC, risc1.CompileOptions{})
	if err != nil {
		t.Fatal(err)
	}
	img, err := risc1.AssembleToImage(asmText, risc1.CISC)
	if err != nil {
		t.Fatal(err)
	}
	info, err := risc1.RunImage(context.Background(), img, risc1.RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if info.Console != "7" {
		t.Errorf("console = %q, want 7", info.Console)
	}
}
