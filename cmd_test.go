package risc1_test

import (
	"bufio"
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

// runTool invokes one of the repository's commands via `go run` and returns
// its stdout (diagnostics and traces go to stderr).
func runTool(t *testing.T, args ...string) string {
	t.Helper()
	cmd := exec.Command("go", append([]string{"run"}, args...)...)
	var stderr strings.Builder
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		t.Fatalf("go run %v: %v\n%s", args, err, stderr.String())
	}
	return string(out)
}

// runToolErr is runTool for invocations expected to fail: it returns stdout,
// stderr and the exit code instead of failing the test.
func runToolErr(t *testing.T, args ...string) (stdout, stderr string, code int) {
	t.Helper()
	cmd := exec.Command("go", append([]string{"run"}, args...)...)
	var errBuf strings.Builder
	cmd.Stderr = &errBuf
	out, err := cmd.Output()
	if err != nil {
		var ee *exec.ExitError
		if !errors.As(err, &ee) {
			t.Fatalf("go run %v: %v\n%s", args, err, errBuf.String())
		}
		code = ee.ExitCode()
	}
	return string(out), errBuf.String(), code
}

// TestRiscbenchBadExperiment pins the CLI contract: an unknown experiment ID
// exits nonzero and names the valid ones.
func TestRiscbenchBadExperiment(t *testing.T) {
	if testing.Short() {
		t.Skip("CLI smoke tests compile the tools")
	}
	_, stderr, code := runToolErr(t, "./cmd/riscbench", "-exp", "BOGUS")
	if code == 0 {
		t.Fatal("riscbench -exp BOGUS exited 0")
	}
	if !strings.Contains(stderr, "E1") || !strings.Contains(stderr, "E10") {
		t.Fatalf("error does not list valid IDs:\n%s", stderr)
	}
}

// TestRiscbenchInjectDegrades runs one experiment with a fault-injected
// benchmark: the table must still render (ERR cell for the victim, real rows
// elsewhere) and the process must exit nonzero reporting the failure.
func TestRiscbenchInjectDegrades(t *testing.T) {
	if testing.Short() {
		t.Skip("CLI smoke tests compile the tools")
	}
	stdout, stderr, code := runToolErr(t, "./cmd/riscbench", "-exp", "E4", "-inject", "hanoi")
	if code == 0 {
		t.Fatal("riscbench with an injected fault exited 0")
	}
	if !strings.Contains(stdout, "ERR") || !strings.Contains(stdout, "sieve") {
		t.Fatalf("degraded table wrong:\n%s", stdout)
	}
	if !strings.Contains(stderr, "hanoi") {
		t.Fatalf("failure summary missing the victim:\n%s", stderr)
	}
}

func TestCLIPipeline(t *testing.T) {
	if testing.Short() {
		t.Skip("CLI smoke tests compile the tools")
	}
	dir := t.TempDir()

	// ccm: compile a Cm program for each target.
	cm := filepath.Join(dir, "p.cm")
	if err := os.WriteFile(cm, []byte(`
int twice(int x) { return x + x; }
int main() { putint(twice(21)); return 0; }`), 0o644); err != nil {
		t.Fatal(err)
	}
	asmText := runTool(t, "./cmd/ccm", "-target", "windowed", cm)
	if !strings.Contains(asmText, "twice:") {
		t.Fatalf("ccm output missing function label:\n%s", asmText)
	}
	if out := runTool(t, "./cmd/ccm", "-target", "cisc", cm); !strings.Contains(out, ".mask") {
		t.Fatalf("cisc output missing mask:\n%s", out)
	}

	// riscrun on the Cm source, all four targets.
	for _, target := range []string{"windowed", "flat", "cisc", "pipelined"} {
		out := runTool(t, "./cmd/riscrun", "-target", target, "-stats", cm)
		if !strings.HasPrefix(out, "42\n") {
			t.Fatalf("riscrun -target %s printed %q", target, out)
		}
		if !strings.Contains(out, "instructions:") {
			t.Fatalf("riscrun -stats missing statistics:\n%s", out)
		}
		if target == "pipelined" && !strings.Contains(out, "pipeline (delayed): CPI") {
			t.Fatalf("riscrun -target pipelined -stats missing pipeline block:\n%s", out)
		}
	}

	// The pipelined target's squash policy must cost cycles, never change
	// program output.
	sqOut := runTool(t, "./cmd/riscrun", "-target", "pipelined", "-policy", "squash", "-stats", cm)
	if !strings.HasPrefix(sqOut, "42\n") || !strings.Contains(sqOut, "pipeline (squash): CPI") {
		t.Fatalf("riscrun -policy squash printed:\n%s", sqOut)
	}
	if _, stderr, code := runToolErr(t, "./cmd/riscrun", "-target", "pipelined", "-policy", "oracle", cm); code == 0 {
		t.Fatal("riscrun accepted an unknown -policy")
	} else if !strings.Contains(stderr, "policy") {
		t.Fatalf("unknown policy error: %s", stderr)
	}
	if _, _, code := runToolErr(t, "./cmd/riscrun", "-engine", "warp", cm); code == 0 {
		t.Fatal("riscrun accepted an unknown -engine")
	}

	// riscasm: assemble the compiler's output; then riscdis round trip.
	s := filepath.Join(dir, "p.s")
	if err := os.WriteFile(s, []byte(asmText), 0o644); err != nil {
		t.Fatal(err)
	}
	listing := runTool(t, "./cmd/riscasm", s)
	if !strings.Contains(listing, "callr") {
		t.Fatalf("listing missing call:\n%s", listing)
	}
	bin := filepath.Join(dir, "p.bin")
	runTool(t, "./cmd/riscasm", "-o", bin, s)
	dis := runTool(t, "./cmd/riscdis", bin)
	if !strings.Contains(dis, "ret r25,#8") {
		t.Fatalf("riscdis output missing epilogue:\n%s", dis)
	}

	// riscrun on assembly with a trace.
	out := runTool(t, "./cmd/riscrun", "-trace", "3", "-stats", s)
	if !strings.HasPrefix(out, "42\n") {
		t.Fatalf("riscrun on .s printed %q", out)
	}

	// riscbench: one static experiment end to end, and the pipelined
	// target shorthand for the measured CPI table.
	bench := runTool(t, "./cmd/riscbench", "-exp", "E2")
	if !strings.Contains(bench, "RISC I (this repo)") {
		t.Fatalf("riscbench E2 output:\n%s", bench)
	}
	pipe := runTool(t, "./cmd/riscbench", "-target", "pipelined")
	for _, want := range []string{"E11.", "CPI dly", "(total)"} {
		if !strings.Contains(pipe, want) {
			t.Fatalf("riscbench -target pipelined missing %q:\n%s", want, pipe)
		}
	}
	if _, _, code := runToolErr(t, "./cmd/riscbench", "-target", "cisc"); code == 0 {
		t.Fatal("riscbench accepted -target cisc")
	}
}

// TestRisclintCLI drives the analyzer CLI end to end: clean source passes
// silently, a hazard is reported with its source line, -Werror turns the
// warning into exit 1, and -json emits a machine-readable report.
func TestRisclintCLI(t *testing.T) {
	if testing.Short() {
		t.Skip("CLI smoke tests compile the tools")
	}
	dir := t.TempDir()

	clean := filepath.Join(dir, "clean.cm")
	if err := os.WriteFile(clean, []byte("int main() { putint(42); return 0; }"), 0o644); err != nil {
		t.Fatal(err)
	}
	if out := runTool(t, "./cmd/risclint", clean); out != "" {
		t.Errorf("clean program produced output:\n%s", out)
	}

	// A store in a delayed call's slot runs in the callee's window.
	hazard := filepath.Join(dir, "hazard.s")
	src := "main:\n callr r25,f\n stl r9,(r0)#-252\n ret r25,#8\n nop\nf:\n ret r25,#0\n nop\n"
	if err := os.WriteFile(hazard, []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	out := runTool(t, "./cmd/risclint", hazard) // warning only: exit 0
	if !strings.Contains(out, "hazard.s:3") || !strings.Contains(out, "[delay-slot]") {
		t.Errorf("warning not reported with file:line and pass:\n%s", out)
	}
	stdout, _, code := runToolErr(t, "./cmd/risclint", "-Werror", hazard)
	if code != 1 {
		t.Errorf("-Werror on a warning: exit %d, want 1\n%s", code, stdout)
	}

	jsonOut := runTool(t, "./cmd/risclint", "-json", hazard)
	var reports []struct {
		File        string `json:"file"`
		Diagnostics []struct {
			Severity string `json:"severity"`
			Pass     string `json:"pass"`
			Line     int    `json:"line"`
		} `json:"diagnostics"`
	}
	if err := json.Unmarshal([]byte(jsonOut), &reports); err != nil {
		t.Fatalf("-json output is not JSON: %v\n%s", err, jsonOut)
	}
	if len(reports) != 1 || len(reports[0].Diagnostics) != 1 {
		t.Fatalf("unexpected report shape: %s", jsonOut)
	}
	if d := reports[0].Diagnostics[0]; d.Severity != "warning" || d.Pass != "delay-slot" || d.Line != 3 {
		t.Errorf("JSON diagnostic = %+v", d)
	}

	// Source that does not assemble is exit 2, not a finding. `go run`
	// reports the child's code on stderr while exiting 1 itself.
	broken := filepath.Join(dir, "broken.s")
	if err := os.WriteFile(broken, []byte("main: bogus r1\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	_, stderr, code := runToolErr(t, "./cmd/risclint", broken)
	if code == 0 || !strings.Contains(stderr, "exit status 2") ||
		!strings.Contains(stderr, "unknown mnemonic") {
		t.Errorf("unassemblable source: exit %d\n%s", code, stderr)
	}
}

// TestRisclintSMPTarget drives the concurrency passes from the CLI: -target
// smp lints Cm for the windowed machine with the SMP passes forced, the racy
// corpus program is flagged with its Cm source line, and -Werror gates it.
func TestRisclintSMPTarget(t *testing.T) {
	if testing.Short() {
		t.Skip("CLI smoke tests compile the tools")
	}
	racy := filepath.Join("internal", "lint", "testdata", "smp", "race_counter.cm")
	out := runTool(t, "./cmd/risclint", "-target", "smp", racy) // warning only: exit 0
	if !strings.Contains(out, "[smp-race]") {
		t.Errorf("racy corpus program not flagged:\n%s", out)
	}
	if !strings.Contains(out, "race_counter.cm:11") {
		t.Errorf("race not attributed to the Cm statement:\n%s", out)
	}
	stdout, _, code := runToolErr(t, "./cmd/risclint", "-target", "smp", "-Werror", racy)
	if code != 1 {
		t.Errorf("-Werror on the racy corpus: exit %d, want 1\n%s", code, stdout)
	}

	// A sequential program lints clean under -target smp: the forced passes
	// change eagerness, not verdicts.
	clean := filepath.Join(t.TempDir(), "clean.cm")
	if err := os.WriteFile(clean, []byte("int main() { putint(42); return 0; }"), 0o644); err != nil {
		t.Fatal(err)
	}
	if out := runTool(t, "./cmd/risclint", "-target", "smp", clean); out != "" {
		t.Errorf("clean program produced output under -target smp:\n%s", out)
	}
}

// TestRiscrunRaceFlag drives the dynamic detector from the CLI: the racy
// corpus program exits 1 with the races on stderr, the clean parallel
// kernel exits 0 with its real answer, and .s sources are rejected.
func TestRiscrunRaceFlag(t *testing.T) {
	if testing.Short() {
		t.Skip("CLI smoke tests compile the tools")
	}
	racy := filepath.Join("internal", "lint", "testdata", "smp", "race_counter.cm")
	_, stderr, code := runToolErr(t, "./cmd/riscrun", "-race", "-cores", "4", racy)
	if code != 1 {
		t.Errorf("riscrun -race on the racy corpus: exit %d, want 1\n%s", code, stderr)
	}
	if !strings.Contains(stderr, "data race(s) detected") {
		t.Errorf("race summary missing from stderr:\n%s", stderr)
	}

	clean := filepath.Join(t.TempDir(), "clean.cm")
	src := `
int g;
void w(int k) { lock(0); g = g + k; unlock(0); }
int main() {
  int h1; int h2;
  h1 = spawn(w, 1); h2 = spawn(w, 2);
  join(h1); join(h2);
  putint(g);
  return 0;
}`
	if err := os.WriteFile(clean, []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	if out := runTool(t, "./cmd/riscrun", "-race", "-cores", "4", clean); out != "3\n" {
		t.Errorf("clean run under -race printed %q, want \"3\\n\"", out)
	}

	s := filepath.Join(t.TempDir(), "p.s")
	if err := os.WriteFile(s, []byte("main: ret r25,#8\n nop\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, code := runToolErr(t, "./cmd/riscrun", "-race", s); code == 0 {
		t.Error("riscrun -race accepted a .s source")
	}
}

// TestCompilerLintFlags checks the -lint pass-through on ccm and riscasm:
// ccm surfaces the analyzer's recursion info on stderr without failing the
// compile, and riscasm fails on an error-severity hazard.
func TestCompilerLintFlags(t *testing.T) {
	if testing.Short() {
		t.Skip("CLI smoke tests compile the tools")
	}
	dir := t.TempDir()

	cm := filepath.Join(dir, "rec.cm")
	rec := "int f(int n) { if (n < 2) return n; return f(n - 1); }\nint main() { putint(f(5)); return 0; }"
	if err := os.WriteFile(cm, []byte(rec), 0o644); err != nil {
		t.Fatal(err)
	}
	cmd := exec.Command("go", "run", "./cmd/ccm", "-lint", cm)
	var errBuf strings.Builder
	cmd.Stderr = &errBuf
	out, err := cmd.Output()
	if err != nil {
		t.Fatalf("ccm -lint on info-only source failed: %v\n%s", err, errBuf.String())
	}
	if !strings.Contains(string(out), "f:") {
		t.Errorf("assembly output suppressed by -lint:\n%s", out)
	}
	if !strings.Contains(errBuf.String(), "ccm: lint:") || !strings.Contains(errBuf.String(), "recursive") {
		t.Errorf("recursion info missing from stderr:\n%s", errBuf.String())
	}

	// A transfer in a delay slot is an error: riscasm -lint must exit 1.
	bad := filepath.Join(dir, "bad.s")
	src := "main:\n jmpr alw,main\n jmpr alw,main\n"
	if err := os.WriteFile(bad, []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	_, stderr, code := runToolErr(t, "./cmd/riscasm", "-lint", bad)
	if code != 1 {
		t.Errorf("riscasm -lint on an error: exit %d, want 1\n%s", code, stderr)
	}
	if !strings.Contains(stderr, "riscasm: lint:") {
		t.Errorf("lint finding missing from stderr:\n%s", stderr)
	}
}

// TestRiscdSmoke boots the riscd binary, hits /healthz and one /v1/run, and
// checks SIGINT produces a clean, graceful exit. The binary is built (not
// `go run`) so the signal reaches the server process directly.
func TestRiscdSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("CLI smoke tests compile the tools")
	}
	bin := filepath.Join(t.TempDir(), "riscd")
	if out, err := exec.Command("go", "build", "-o", bin, "./cmd/riscd").CombinedOutput(); err != nil {
		t.Fatalf("go build riscd: %v\n%s", err, out)
	}

	cmd := exec.Command(bin, "-addr", "127.0.0.1:0")
	stderr, err := cmd.StderrPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	defer cmd.Process.Kill()

	// riscd logs "listening on <addr>" once the socket is bound.
	var addr string
	var logTail strings.Builder
	sc := bufio.NewScanner(stderr)
	for sc.Scan() {
		line := sc.Text()
		logTail.WriteString(line + "\n")
		if i := strings.Index(line, "listening on "); i >= 0 {
			addr = strings.TrimSpace(line[i+len("listening on "):])
			break
		}
	}
	if addr == "" {
		t.Fatalf("riscd never reported its address:\n%s", logTail.String())
	}
	go func() { // keep draining so the child never blocks on stderr
		for sc.Scan() {
		}
	}()

	get := func(path string) (int, string) {
		resp, err := http.Get("http://" + addr + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		body, _ := io.ReadAll(resp.Body)
		return resp.StatusCode, string(body)
	}
	if code, body := get("/healthz"); code != 200 || body != "ok\n" {
		t.Fatalf("healthz: %d %q", code, body)
	}
	resp, err := http.Post("http://"+addr+"/v1/run", "application/json",
		strings.NewReader(`{"source":"int main() { putint(6 * 7); return 0; }"}`))
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != 200 || !strings.Contains(string(body), `"console":"42"`) {
		t.Fatalf("run: %d %s", resp.StatusCode, body)
	}
	if code, body := get("/metrics"); code != 200 || !strings.Contains(body, "riscd_requests_total") {
		t.Fatalf("metrics: %d\n%s", code, body)
	}

	if err := cmd.Process.Signal(os.Interrupt); err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- cmd.Wait() }()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("riscd did not exit cleanly on SIGINT: %v", err)
		}
	case <-time.After(15 * time.Second):
		t.Fatal("riscd did not shut down within 15s of SIGINT")
	}
}
