package risc1_test

import (
	"errors"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// runTool invokes one of the repository's commands via `go run` and returns
// its stdout (diagnostics and traces go to stderr).
func runTool(t *testing.T, args ...string) string {
	t.Helper()
	cmd := exec.Command("go", append([]string{"run"}, args...)...)
	var stderr strings.Builder
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		t.Fatalf("go run %v: %v\n%s", args, err, stderr.String())
	}
	return string(out)
}

// runToolErr is runTool for invocations expected to fail: it returns stdout,
// stderr and the exit code instead of failing the test.
func runToolErr(t *testing.T, args ...string) (stdout, stderr string, code int) {
	t.Helper()
	cmd := exec.Command("go", append([]string{"run"}, args...)...)
	var errBuf strings.Builder
	cmd.Stderr = &errBuf
	out, err := cmd.Output()
	if err != nil {
		var ee *exec.ExitError
		if !errors.As(err, &ee) {
			t.Fatalf("go run %v: %v\n%s", args, err, errBuf.String())
		}
		code = ee.ExitCode()
	}
	return string(out), errBuf.String(), code
}

// TestRiscbenchBadExperiment pins the CLI contract: an unknown experiment ID
// exits nonzero and names the valid ones.
func TestRiscbenchBadExperiment(t *testing.T) {
	if testing.Short() {
		t.Skip("CLI smoke tests compile the tools")
	}
	_, stderr, code := runToolErr(t, "./cmd/riscbench", "-exp", "BOGUS")
	if code == 0 {
		t.Fatal("riscbench -exp BOGUS exited 0")
	}
	if !strings.Contains(stderr, "E1") || !strings.Contains(stderr, "E10") {
		t.Fatalf("error does not list valid IDs:\n%s", stderr)
	}
}

// TestRiscbenchInjectDegrades runs one experiment with a fault-injected
// benchmark: the table must still render (ERR cell for the victim, real rows
// elsewhere) and the process must exit nonzero reporting the failure.
func TestRiscbenchInjectDegrades(t *testing.T) {
	if testing.Short() {
		t.Skip("CLI smoke tests compile the tools")
	}
	stdout, stderr, code := runToolErr(t, "./cmd/riscbench", "-exp", "E4", "-inject", "hanoi")
	if code == 0 {
		t.Fatal("riscbench with an injected fault exited 0")
	}
	if !strings.Contains(stdout, "ERR") || !strings.Contains(stdout, "sieve") {
		t.Fatalf("degraded table wrong:\n%s", stdout)
	}
	if !strings.Contains(stderr, "hanoi") {
		t.Fatalf("failure summary missing the victim:\n%s", stderr)
	}
}

func TestCLIPipeline(t *testing.T) {
	if testing.Short() {
		t.Skip("CLI smoke tests compile the tools")
	}
	dir := t.TempDir()

	// ccm: compile a Cm program for each target.
	cm := filepath.Join(dir, "p.cm")
	if err := os.WriteFile(cm, []byte(`
int twice(int x) { return x + x; }
int main() { putint(twice(21)); return 0; }`), 0o644); err != nil {
		t.Fatal(err)
	}
	asmText := runTool(t, "./cmd/ccm", "-target", "windowed", cm)
	if !strings.Contains(asmText, "twice:") {
		t.Fatalf("ccm output missing function label:\n%s", asmText)
	}
	if out := runTool(t, "./cmd/ccm", "-target", "cisc", cm); !strings.Contains(out, ".mask") {
		t.Fatalf("cisc output missing mask:\n%s", out)
	}

	// riscrun on the Cm source, all three targets.
	for _, target := range []string{"windowed", "flat", "cisc"} {
		out := runTool(t, "./cmd/riscrun", "-target", target, "-stats", cm)
		if !strings.HasPrefix(out, "42\n") {
			t.Fatalf("riscrun -target %s printed %q", target, out)
		}
		if !strings.Contains(out, "instructions:") {
			t.Fatalf("riscrun -stats missing statistics:\n%s", out)
		}
	}

	// riscasm: assemble the compiler's output; then riscdis round trip.
	s := filepath.Join(dir, "p.s")
	if err := os.WriteFile(s, []byte(asmText), 0o644); err != nil {
		t.Fatal(err)
	}
	listing := runTool(t, "./cmd/riscasm", s)
	if !strings.Contains(listing, "callr") {
		t.Fatalf("listing missing call:\n%s", listing)
	}
	bin := filepath.Join(dir, "p.bin")
	runTool(t, "./cmd/riscasm", "-o", bin, s)
	dis := runTool(t, "./cmd/riscdis", bin)
	if !strings.Contains(dis, "ret r25,#8") {
		t.Fatalf("riscdis output missing epilogue:\n%s", dis)
	}

	// riscrun on assembly with a trace.
	out := runTool(t, "./cmd/riscrun", "-trace", "3", "-stats", s)
	if !strings.HasPrefix(out, "42\n") {
		t.Fatalf("riscrun on .s printed %q", out)
	}

	// riscbench: one static experiment end to end.
	bench := runTool(t, "./cmd/riscbench", "-exp", "E2")
	if !strings.Contains(bench, "RISC I (this repo)") {
		t.Fatalf("riscbench E2 output:\n%s", bench)
	}
}
