// Benchmarks that regenerate every table and figure of the RISC I
// evaluation. Each BenchmarkE<n> reruns the corresponding experiment from a
// cold simulator and reports its headline number as a custom metric, so
//
//	go test -bench=. -benchmem
//
// reproduces the paper end to end. The rendered tables themselves come from
// `go run ./cmd/riscbench` (or risc1.Experiment); EXPERIMENTS.md records the
// paper-vs-measured comparison.
package risc1_test

import (
	"testing"

	"risc1"
	"risc1/internal/exp"
)

// BenchmarkE1InstructionMix regenerates the dynamic instruction-usage table
// (the paper's motivation: simple instructions dominate compiled C).
func BenchmarkE1InstructionMix(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := exp.E1InstructionMix(exp.NewLab())
		if err != nil {
			b.Fatal(err)
		}
		mix := res.Total.CategoryMix()
		b.ReportMetric(mix[0].Pct, "top-category-%")
		b.ReportMetric(float64(res.Total.Instructions), "instructions")
	}
}

// BenchmarkE2Characteristics regenerates the processor-comparison table.
func BenchmarkE2Characteristics(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if out := exp.E2Characteristics().Render(); out == "" {
			b.Fatal("empty table")
		}
	}
}

// BenchmarkE3ProgramSize regenerates the relative-program-size table
// (paper: RISC code ~0.9-1.5x the CISC's).
func BenchmarkE3ProgramSize(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := exp.E3ProgramSize(exp.NewLab())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.GeoMean, "size-ratio")
	}
}

// BenchmarkE4ExecutionTime regenerates the execution-time table
// (paper: RISC I beats the CISC despite executing more instructions).
func BenchmarkE4ExecutionTime(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := exp.E4ExecutionTime(exp.NewLab())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.GeoMean, "speedup-geomean")
	}
}

// BenchmarkE5CallTraffic regenerates the procedure-call traffic comparison
// (the register-window headline).
func BenchmarkE5CallTraffic(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := exp.E5CallTraffic(exp.NewLab())
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range res.Rows {
			if r.Name == "hanoi" {
				b.ReportMetric(r.WindowedPer, "win-B/call")
				b.ReportMetric(r.FlatPer, "flat-B/call")
				b.ReportMetric(r.CiscPer, "cisc-B/call")
			}
		}
	}
}

// BenchmarkE6WindowDepth regenerates the window-sizing study
// (paper: 8 windows make overflow rare).
func BenchmarkE6WindowDepth(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := exp.E6WindowDepth(exp.NewLab())
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range res.Rows {
			if r.Windows == 8 {
				b.ReportMetric(r.TrapPct, "trap-%-at-8win")
			}
		}
	}
}

// BenchmarkE7DelaySlots regenerates the delayed-jump optimization study.
func BenchmarkE7DelaySlots(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := exp.E7DelaySlots(exp.NewLab())
		if err != nil {
			b.Fatal(err)
		}
		saving := 0.0
		for _, r := range res.Rows {
			saving += r.SavingPct
		}
		b.ReportMetric(saving/float64(len(res.Rows)), "avg-cycle-saving-%")
	}
}

// BenchmarkE8AreaModel regenerates the transistor-budget figure
// (paper: control ~6% of RISC I vs ~half of a microcoded CISC).
func BenchmarkE8AreaModel(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := exp.E8AreaModel()
		b.ReportMetric(100*res.Risc.ControlFraction(), "risc-control-%")
		b.ReportMetric(100*res.Cisc.ControlFraction(), "cisc-control-%")
	}
}

// BenchmarkE9MemoryTraffic regenerates the memory-traffic comparison.
func BenchmarkE9MemoryTraffic(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := exp.E9MemoryTraffic(exp.NewLab())
		if err != nil {
			b.Fatal(err)
		}
		worst := 0.0
		for _, r := range res.Rows {
			if r.TotalRatio > worst && r.Name != "matmul" {
				worst = r.TotalRatio
			}
		}
		b.ReportMetric(worst, "worst-traffic-ratio")
	}
}

// BenchmarkE10PipelineModels regenerates the pipeline-organization ablation
// (this repository's extension: sequential vs squashing vs delayed jumps).
func BenchmarkE10PipelineModels(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := exp.E10PipelineModels(exp.NewLab())
		if err != nil {
			b.Fatal(err)
		}
		gain := 0.0
		for _, r := range res.Rows {
			gain += r.DlSpeed
		}
		b.ReportMetric(gain/float64(len(res.Rows)), "avg-overlap-gain-x")
	}
}

// BenchmarkE11MeasuredPipeline regenerates the cycle-accurate pipeline
// comparison: measured CPI under delayed jumps and the delayed policy's
// advantage over predict-not-taken squashing.
func BenchmarkE11MeasuredPipeline(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := exp.E11PipelinedCPI(exp.NewLab())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.CPIDelayed, "cpi-delayed")
		b.ReportMetric(res.DelayedAdvPct, "delayed-adv-%")
	}
}

// TestExperimentIDsAllRunnable checks that every advertised experiment ID
// renders without error through the public API (sharing one Lab so common
// configurations simulate once).
func TestExperimentIDsAllRunnable(t *testing.T) {
	lab := risc1.NewLab()
	for _, id := range risc1.ExperimentIDs() {
		out, err := lab.Experiment(id)
		if err != nil {
			t.Fatalf("Experiment(%q): %v", id, err)
		}
		if out == "" {
			t.Fatalf("Experiment(%q): empty output", id)
		}
	}
}
