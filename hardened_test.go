package risc1_test

import (
	"context"
	"errors"
	"strings"
	"testing"
	"time"

	"risc1"
	"risc1/internal/asm"
)

// bigGlobals is a Cm program whose data layout outruns the global pointer's
// 8 KiB window: the globals after the 12 KB pad array sit beyond the 13-bit
// gp displacement, so assembling the default narrow-addressing output fails
// with a range error and building it exercises the WideData retry.
const bigGlobals = `
int pad[3000];
int a;
int b;
int main() {
	a = 35;
	b = 7;
	putint(a + b);
	return 0;
}`

// TestWideDataRetryPreconditions proves bigGlobals actually needs the
// fallback: its narrow-addressing compilation must fail to assemble, and
// with a range error specifically.
func TestWideDataRetryPreconditions(t *testing.T) {
	text, err := risc1.CompileCm(bigGlobals, risc1.RISCWindowed, risc1.CompileOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := asm.Assemble(text); !asm.IsOutOfRange(err) {
		t.Fatalf("narrow compilation assembled anyway (err = %v); test program too small?", err)
	}
}

// TestBuildAndRunWideDataRetry checks the facade transparently recompiles
// with 32-bit addressing on both RISC targets.
func TestBuildAndRunWideDataRetry(t *testing.T) {
	for _, target := range []risc1.Target{risc1.RISCWindowed, risc1.RISCFlat} {
		out, err := risc1.BuildAndRun(bigGlobals, target)
		if err != nil {
			t.Fatalf("target %v: %v", target, err)
		}
		if out.Console != "42" {
			t.Errorf("target %v: console = %q, want \"42\"", target, out.Console)
		}
	}
}

// TestBuildAndRunRetryKeepsOriginalError checks the retry is gated on range
// errors: a program that fails for another reason reports that failure, not
// a second wide-addressing attempt's.
func TestBuildAndRunRetryKeepsOriginalError(t *testing.T) {
	if _, err := risc1.BuildAndRun("int main() { return x; }", risc1.RISCWindowed); err == nil {
		t.Error("undefined variable compiled")
	}
}

// TestCompileAndDisassembleWideData is the regression for the facade gap:
// CompileAndDisassemble used to lack BuildAndRun's fallback, so a program
// that ran fine refused to disassemble.
func TestCompileAndDisassembleWideData(t *testing.T) {
	listing, err := risc1.CompileAndDisassemble(bigGlobals, risc1.RISCWindowed)
	if err != nil {
		t.Fatalf("CompileAndDisassemble: %v", err)
	}
	if !strings.Contains(listing, "main:") {
		t.Errorf("listing missing main label:\n%s", listing[:min(len(listing), 400)])
	}
}

// TestBuildAndRunContextDeadline cancels a non-terminating guest on every
// target through the facade.
func TestBuildAndRunContextDeadline(t *testing.T) {
	const spin = "int main() { int i; i = 0; while (i < 1) { i = 0; } return 0; }"
	for _, target := range []risc1.Target{risc1.RISCWindowed, risc1.RISCFlat, risc1.CISC} {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
		_, err := risc1.BuildAndRunContext(ctx, spin, target)
		cancel()
		if !errors.Is(err, context.DeadlineExceeded) {
			t.Errorf("target %v: err = %v, want DeadlineExceeded", target, err)
		}
	}
}

// TestMachineRunContext covers the assembly-level facade path.
func TestMachineRunContext(t *testing.T) {
	m := risc1.NewMachine(risc1.MachineConfig{})
	if err := m.LoadAssembly("main: b main\n nop\n"); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
	defer cancel()
	if err := m.RunContext(ctx); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want DeadlineExceeded", err)
	}
}

// TestExactCycleLimitThroughFacade pins the exact MaxCycles abort at the
// public Machine level: a 1-cycle-per-instruction loop stops at precisely
// the configured budget.
func TestExactCycleLimitThroughFacade(t *testing.T) {
	m := risc1.NewMachine(risc1.MachineConfig{MaxCycles: 64 + 37}) // off a batch boundary
	if err := m.LoadAssembly("main: b main\n nop\n"); err != nil {
		t.Fatal(err)
	}
	err := m.Run()
	if err == nil {
		t.Fatal("infinite loop terminated")
	}
	if got := m.Info().Cycles; got != 64+37 {
		t.Fatalf("aborted at cycle %d, want exactly %d", got, 64+37)
	}
}
