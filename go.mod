module risc1

go 1.22
