package pipeline

import (
	"errors"
	"fmt"
	"testing"

	"risc1/internal/asm"
	"risc1/internal/cc"
	"risc1/internal/core"
	"risc1/internal/prog"
	"risc1/internal/timing"
)

// assemble builds an image from machine-level source.
func assemble(t *testing.T, src string) *asm.Image {
	t.Helper()
	img, err := asm.Assemble(src)
	if err != nil {
		t.Fatalf("assemble: %v", err)
	}
	return img
}

// runModel loads src into a fresh pipelined machine and runs it to halt.
func runModel(t *testing.T, src string, p Policy) (*Machine, Result) {
	t.Helper()
	m := New(core.Config{}, p)
	if err := m.Load(assemble(t, src)); err != nil {
		t.Fatalf("load: %v", err)
	}
	if err := m.Run(); err != nil {
		t.Fatalf("run: %v", err)
	}
	return m, m.Result()
}

// checkInvariant pins the structural identity of a completed run: every
// cycle is the instruction itself, pipeline fill/drain, or an attributed
// stall — nothing is charged twice and nothing leaks.
func checkInvariant(t *testing.T, r Result) {
	t.Helper()
	if want := r.Instructions + 4 + r.StallCycles(); r.Cycles != want {
		t.Errorf("%v: cycles = %d, want instructions+4+stalls = %d (%+v)",
			r.Policy, r.Cycles, want, r)
	}
}

func TestStraightLineCycles(t *testing.T) {
	// Three adds and the halting return: four retirements, no hazards.
	// The halting RET's delay slot is never executed. N+4 cycles exactly.
	src := `
	main:	add r0,#1,r1
		add r0,#2,r2
		add r0,#3,r3
		ret r25,#8
		nop
	`
	for _, p := range []Policy{PolicyDelayed, PolicySquash} {
		_, r := runModel(t, src, p)
		if r.Instructions != 4 {
			t.Fatalf("%v: instructions = %d, want 4", p, r.Instructions)
		}
		if r.Cycles != 8 {
			t.Errorf("%v: cycles = %d, want 8", p, r.Cycles)
		}
		if r.StallCycles() != 0 || r.Forwards() != 0 {
			t.Errorf("%v: unexpected stalls/forwards: %+v", p, r)
		}
		checkInvariant(t, r)
	}
}

func TestEXMEMForwardChain(t *testing.T) {
	// Each add consumes the previous one's result in the very next cycle:
	// two EX/MEM forwards, zero stalls.
	src := `
	main:	add r0,#1,r1
		add r1,#1,r1
		add r1,#1,r1
		ret r25,#8
		nop
	`
	_, r := runModel(t, src, PolicyDelayed)
	if r.Cycles != 8 || r.ForwardsEXMEM != 2 || r.LoadUseStallCycles != 0 {
		t.Errorf("cycles=%d fwdEXMEM=%d ldUse=%d, want 8/2/0",
			r.Cycles, r.ForwardsEXMEM, r.LoadUseStallCycles)
	}
	checkInvariant(t, r)
}

func TestLoadUseInterlock(t *testing.T) {
	// The add consumes the load in its shadow: one interlock cycle, then
	// the MEM/WB forward delivers the value.
	src := `
	main:	la data,r1
		ldl (r1)#0,r2
		add r2,#1,r3
		ret r25,#8
		nop
		.align 4
	data:	.word 41
	`
	_, r := runModel(t, src, PolicyDelayed)
	if r.LoadUseStallCycles != 1 {
		t.Errorf("load-use stalls = %d, want 1", r.LoadUseStallCycles)
	}
	// One interlock cycle, plus the load's MEM stage closing the memory
	// port to the final return's fetch.
	if r.MemPortStallCycles != 1 {
		t.Errorf("mem-port stalls = %d, want 1", r.MemPortStallCycles)
	}
	if want := r.Instructions + 4 + 2; r.Cycles != want {
		t.Errorf("cycles = %d, want %d", r.Cycles, want)
	}
	if r.ForwardsMEMWB == 0 {
		t.Error("stalled load consumer did not take the MEM/WB forward")
	}
	checkInvariant(t, r)
}

func TestLoadWithGapNoStall(t *testing.T) {
	// One independent instruction between the load and its consumer: the
	// MEM/WB path covers the distance with no interlock.
	src := `
	main:	la data,r1
		ldl (r1)#0,r2
		add r0,#5,r4
		add r2,#1,r3
		ret r25,#8
		nop
		.align 4
	data:	.word 41
	`
	_, r := runModel(t, src, PolicyDelayed)
	if r.LoadUseStallCycles != 0 {
		t.Errorf("load-use stalls = %d, want 0", r.LoadUseStallCycles)
	}
	// No interlock, but the load still closes the memory port to one
	// later fetch.
	if r.MemPortStallCycles != 1 {
		t.Errorf("mem-port stalls = %d, want 1", r.MemPortStallCycles)
	}
	if want := r.Instructions + 4 + 1; r.Cycles != want {
		t.Errorf("cycles = %d, want %d", r.Cycles, want)
	}
	checkInvariant(t, r)
}

func TestMemPortConflict(t *testing.T) {
	// Three back-to-back loads: in steady state each MEM stage collides
	// with the fetch of the instruction three behind it, so every load
	// costs the follower stream exactly one port cycle — the model's
	// version of the paper's two-cycle loads.
	src := `
	main:	la data,r1
		ldl (r1)#0,r2
		ldl (r1)#4,r3
		ldl (r1)#8,r4
		add r0,#1,r5
		add r0,#2,r6
		add r0,#3,r7
		ret r25,#8
		nop
		.align 4
	data:	.word 1
		.word 2
		.word 3
	`
	_, r := runModel(t, src, PolicyDelayed)
	if r.LoadUseStallCycles != 0 {
		t.Errorf("load-use stalls = %d, want 0", r.LoadUseStallCycles)
	}
	if r.MemPortStallCycles != 3 {
		t.Errorf("mem-port stalls = %d, want 3", r.MemPortStallCycles)
	}
	if want := r.Instructions + 4 + 3; r.Cycles != want {
		t.Errorf("cycles = %d, want %d", r.Cycles, want)
	}
	checkInvariant(t, r)
}

func TestStoreDataNeedsNoInterlock(t *testing.T) {
	// A load feeding the very next store's data register: the value is
	// needed at the store's MEM stage, one cycle after the load's, so it
	// forwards MEM-to-MEM without a stall.
	src := `
	main:	la data,r1
		ldl (r1)#0,r2
		stl r2,(r1)#4
		ret r25,#8
		nop
		.align 4
	data:	.word 7
		.word 0
	`
	_, r := runModel(t, src, PolicyDelayed)
	if r.LoadUseStallCycles != 0 {
		t.Errorf("load-use stalls = %d, want 0", r.LoadUseStallCycles)
	}
	if want := r.Instructions + 4; r.Cycles != want {
		t.Errorf("cycles = %d, want %d", r.Cycles, want)
	}
	checkInvariant(t, r)
}

func TestTakenTransferPolicies(t *testing.T) {
	// One taken branch with a useful delay slot. Delayed jumps cost
	// nothing beyond the slot; predict-not-taken squashes the one
	// wrong-path fetch past it.
	src := `
	main:	add r0,#1,r1
		b over
		add r0,#2,r2
		add r0,#3,r3
	over:	add r0,#4,r4
		ret r25,#8
		nop
	`
	_, dl := runModel(t, src, PolicyDelayed)
	_, sq := runModel(t, src, PolicySquash)
	if dl.FlushBubbleCycles != 0 {
		t.Errorf("delayed flush bubbles = %d, want 0", dl.FlushBubbleCycles)
	}
	if sq.FlushBubbleCycles != 1 {
		t.Errorf("squash flush bubbles = %d, want 1", sq.FlushBubbleCycles)
	}
	if sq.Cycles != dl.Cycles+1 {
		t.Errorf("cycles: squash %d, delayed %d, want exactly one apart",
			sq.Cycles, dl.Cycles)
	}
	if dl.DelaySlots != 1 || dl.DelaySlotsFilled != 1 {
		t.Errorf("delay slots = %d filled %d, want 1/1", dl.DelaySlots, dl.DelaySlotsFilled)
	}
	checkInvariant(t, dl)
	checkInvariant(t, sq)
}

func TestUntakenTransferCostsNothing(t *testing.T) {
	// An untaken conditional squashes nothing under either policy — the
	// fall-through fetch was the right one. The jump's flag read comes off
	// the EX/MEM bypass from the compare.
	src := `
	main:	cmp r0,#1
		beq over
		nop
		add r0,#2,r2
	over:	ret r25,#8
		nop
	`
	for _, p := range []Policy{PolicyDelayed, PolicySquash} {
		_, r := runModel(t, src, p)
		if r.FlushBubbleCycles != 0 {
			t.Errorf("%v: flush bubbles = %d, want 0", p, r.FlushBubbleCycles)
		}
		if r.TakenTransfers != 1 { // only the final taken... the halting ret is untaken
			t.Logf("%v: taken transfers = %d", p, r.TakenTransfers)
		}
		if r.DelaySlots != 1 || r.DelaySlotsFilled != 0 {
			t.Errorf("%v: delay slots = %d filled %d, want 1/0", p, r.DelaySlots, r.DelaySlotsFilled)
		}
		checkInvariant(t, r)
	}
}

func TestWindowTrapDrains(t *testing.T) {
	// Recursion deep enough to spill and refill the window file: every
	// overflow and underflow drains the pipeline for the trap handler's
	// cycles, and the count must match the oracle's trap count exactly.
	m, r := runModel(t, sumProgram(20), PolicyDelayed)
	st := m.CPU().Stats()
	if st.WindowOverflow == 0 || st.WindowUnderflow == 0 {
		t.Fatalf("recursion did not exercise the window traps: %d/%d",
			st.WindowOverflow, st.WindowUnderflow)
	}
	want := st.WindowOverflow*timing.RiscSpillCycles + st.WindowUnderflow*timing.RiscFillCycles
	if r.WindowStallCycles != want {
		t.Errorf("window stalls = %d, want %d (%d ovf, %d unf)",
			r.WindowStallCycles, want, st.WindowOverflow, st.WindowUnderflow)
	}
	checkInvariant(t, r)
}

// sumProgram is the windowed recursive summation from the core tests:
// sum(n) = n + sum(n-1), one window per activation.
func sumProgram(n int) string {
	return fmt.Sprintf(`
	main:	add r0,#%d,r10
		callr r25,sum
		nop
		ret r25,#8
		nop
	sum:	cmp r26,#0
		bgt rec
		nop
		add r0,#0,r26
		ret r25,#8
		nop
	rec:	sub r26,#1,r10
		callr r25,sum
		nop
		add r26,r10,r26
		ret r25,#8
		nop
	`, n)
}

func TestPartialRunResult(t *testing.T) {
	// A cycle-limited run still reports a consistent partial Result: the
	// cycle count can only trail the full attribution (a trailing trap
	// drain may be charged but never reached), never exceed it.
	src := `
	main:	b main
		add r1,#1,r1
	`
	m := New(core.Config{MaxCycles: 100}, PolicySquash)
	if err := m.Load(assemble(t, src)); err != nil {
		t.Fatal(err)
	}
	err := m.Run()
	if !errors.Is(err, core.ErrMaxCycles) {
		t.Fatalf("run = %v, want cycle limit", err)
	}
	r := m.Result()
	if r.Instructions == 0 || r.Cycles == 0 {
		t.Fatalf("empty partial result: %+v", r)
	}
	if r.Cycles > r.Instructions+4+r.StallCycles() {
		t.Errorf("partial cycles = %d exceed attribution %d",
			r.Cycles, r.Instructions+4+r.StallCycles())
	}
}

func TestFaultDifferential(t *testing.T) {
	// A faulting guest program must fault identically under the pipeline:
	// same error, same PC, same architectural cycle count.
	src := `
	main:	add r0,#2,r1
		ldl (r1)#0,r2       ; misaligned load faults
		ret r25,#8
		nop
	`
	img := assemble(t, src)

	oracle := core.New(core.Config{})
	if err := oracle.Load(img); err != nil {
		t.Fatal(err)
	}
	oerr := oracle.Run()
	if oerr == nil {
		t.Fatal("oracle did not fault")
	}

	m := New(core.Config{}, PolicyDelayed)
	if err := m.Load(img); err != nil {
		t.Fatal(err)
	}
	perr := m.Run()
	if perr == nil {
		t.Fatal("pipeline did not fault")
	}
	if oerr.Error() != perr.Error() {
		t.Errorf("fault mismatch:\noracle:   %v\npipeline: %v", oerr, perr)
	}
	var oe, pe *core.RunError
	if errors.As(oerr, &oe) && errors.As(perr, &pe) {
		if oe.PC != pe.PC || oe.Cycles != pe.Cycles {
			t.Errorf("fault site: oracle pc=%#x cyc=%d, pipeline pc=%#x cyc=%d",
				oe.PC, oe.Cycles, pe.PC, pe.Cycles)
		}
	} else {
		t.Errorf("faults are not RunErrors: %T / %T", oerr, perr)
	}
}

// compileBench compiles a suite benchmark to a RISC image, with the wide
// -data fallback the toolchain applies when a program's globals outgrow the
// 13-bit displacement window.
func compileBench(t *testing.T, b prog.Benchmark) *asm.Image {
	t.Helper()
	res, err := cc.Compile(b.Source, cc.Options{Target: cc.RISCPipelined})
	if err != nil {
		t.Fatalf("%s: compile: %v", b.Name, err)
	}
	img, err := asm.Assemble(res.Asm)
	if err != nil {
		if !asm.IsOutOfRange(err) {
			t.Fatalf("%s: assemble: %v", b.Name, err)
		}
		res, err = cc.Compile(b.Source, cc.Options{Target: cc.RISCPipelined, WideData: true})
		if err != nil {
			t.Fatalf("%s: recompile: %v", b.Name, err)
		}
		img, err = asm.Assemble(res.Asm)
		if err != nil {
			t.Fatalf("%s: reassemble: %v", b.Name, err)
		}
	}
	return img
}

// TestDifferentialRetirement is the pipeline's ground truth: across the
// whole benchmark suite and both control policies, the pipelined machine
// must be architecturally indistinguishable from the single-cycle oracle —
// same console, same final machine state, same statistics. Only timing may
// differ, and the timing must satisfy the attribution invariant.
func TestDifferentialRetirement(t *testing.T) {
	cfg := core.Config{SaveStackBytes: 64 << 10}
	for _, b := range prog.All() {
		b := b
		t.Run(b.Name, func(t *testing.T) {
			img := compileBench(t, b)

			oracle := core.New(cfg)
			if err := oracle.Load(img); err != nil {
				t.Fatal(err)
			}
			if err := oracle.Run(); err != nil {
				t.Fatal(err)
			}
			ost := oracle.Stats()

			var results [2]Result
			for _, p := range []Policy{PolicyDelayed, PolicySquash} {
				m := New(cfg, p)
				if err := m.Load(img); err != nil {
					t.Fatal(err)
				}
				if err := m.Run(); err != nil {
					t.Fatalf("%v: %v", p, err)
				}
				r := m.Result()
				results[p] = r
				cpu := m.CPU()

				if got, want := cpu.Console(), prog.Expected(b.Name); got != want {
					t.Errorf("%v: console = %q, want %q", p, got, want)
				}
				if cpu.Console() != oracle.Console() {
					t.Errorf("%v: console diverged from oracle", p)
				}
				if cpu.PC() != oracle.PC() || cpu.Halted() != oracle.Halted() {
					t.Errorf("%v: final pc/halt %#x/%v, oracle %#x/%v",
						p, cpu.PC(), cpu.Halted(), oracle.PC(), oracle.Halted())
				}
				if cpu.Flags() != oracle.Flags() {
					t.Errorf("%v: flags %+v, oracle %+v", p, cpu.Flags(), oracle.Flags())
				}
				if cpu.Regs.CWP() != oracle.Regs.CWP() {
					t.Errorf("%v: cwp %d, oracle %d", p, cpu.Regs.CWP(), oracle.Regs.CWP())
				}
				for reg := uint8(0); reg < 32; reg++ {
					if cpu.Reg(reg) != oracle.Reg(reg) {
						t.Errorf("%v: r%d = %#x, oracle %#x", p, reg, cpu.Reg(reg), oracle.Reg(reg))
					}
				}

				st := cpu.Stats()
				archEqual := st.Instructions == ost.Instructions &&
					st.Cycles == ost.Cycles &&
					st.FetchBytes == ost.FetchBytes &&
					st.DataReads == ost.DataReads &&
					st.DataWrites == ost.DataWrites &&
					st.Calls == ost.Calls &&
					st.Returns == ost.Returns &&
					st.MaxCallDepth == ost.MaxCallDepth &&
					st.WindowOverflow == ost.WindowOverflow &&
					st.WindowUnderflow == ost.WindowUnderflow &&
					st.Transfers == ost.Transfers &&
					st.TakenTransfers == ost.TakenTransfers &&
					st.DelaySlotNops == ost.DelaySlotNops &&
					st.DelaySlotUseful == ost.DelaySlotUseful
				if !archEqual {
					t.Errorf("%v: architectural stats diverged:\n pipeline %+v\n oracle   %+v", p, st, ost)
				}

				// The timing layer's own counters must agree with the
				// oracle's classification of the same stream.
				if r.Instructions != ost.Instructions {
					t.Errorf("%v: result instructions = %d, oracle %d", p, r.Instructions, ost.Instructions)
				}
				if r.Transfers != ost.Transfers || r.TakenTransfers != ost.TakenTransfers {
					t.Errorf("%v: transfers %d/%d taken, oracle %d/%d",
						p, r.Transfers, r.TakenTransfers, ost.Transfers, ost.TakenTransfers)
				}
				if r.DelaySlots != ost.DelaySlotNops+ost.DelaySlotUseful {
					t.Errorf("%v: delay slots = %d, oracle %d",
						p, r.DelaySlots, ost.DelaySlotNops+ost.DelaySlotUseful)
				}
				if r.DelaySlotsFilled != ost.DelaySlotUseful {
					t.Errorf("%v: filled slots = %d, oracle %d", p, r.DelaySlotsFilled, ost.DelaySlotUseful)
				}
				checkInvariant(t, r)
			}

			dl, sq := results[PolicyDelayed], results[PolicySquash]
			if dl.FlushBubbleCycles != 0 {
				t.Errorf("delayed policy charged %d flush bubbles", dl.FlushBubbleCycles)
			}
			// Every taken transfer's slot retires (the halting return is
			// untaken), so squash hardware eats exactly one bubble per.
			if sq.FlushBubbleCycles != sq.TakenTransfers {
				t.Errorf("squash bubbles = %d, taken transfers = %d",
					sq.FlushBubbleCycles, sq.TakenTransfers)
			}
			// Window-trap drains are architectural and policy-invariant.
			if sq.WindowStallCycles != dl.WindowStallCycles {
				t.Errorf("window stalls differ across policies: %d vs %d",
					sq.WindowStallCycles, dl.WindowStallCycles)
			}
			// The cycle gap between the policies is the squash bubbles
			// minus whatever interlock and memory-port stalls those
			// bubbles' fetch gaps absorbed — exactly, nothing leaks.
			hidden := int64(dl.LoadUseStallCycles+dl.MemPortStallCycles) -
				int64(sq.LoadUseStallCycles+sq.MemPortStallCycles)
			if int64(sq.Cycles-dl.Cycles) != int64(sq.FlushBubbleCycles)-hidden {
				t.Errorf("policy gap = %d cycles, flush bubbles = %d, hidden stalls = %d",
					sq.Cycles-dl.Cycles, sq.FlushBubbleCycles, hidden)
			}
			if dl.MemPortStallCycles == 0 {
				t.Error("suite benchmark charged no memory-port stalls")
			}
			if dl.CPI() < 1 {
				t.Errorf("delayed CPI = %.3f < 1", dl.CPI())
			}
		})
	}
}

func TestParsePolicy(t *testing.T) {
	for s, want := range map[string]Policy{
		"": PolicyDelayed, "delayed": PolicyDelayed,
		"squash": PolicySquash, "predict-not-taken": PolicySquash,
	} {
		got, err := ParsePolicy(s)
		if err != nil || got != want {
			t.Errorf("ParsePolicy(%q) = %v, %v", s, got, err)
		}
	}
	if _, err := ParsePolicy("oracle"); err == nil {
		t.Error("ParsePolicy accepted garbage")
	}
	if PolicyDelayed.String() != "delayed" || PolicySquash.String() != "squash" {
		t.Error("policy spellings drifted")
	}
}
