package pipeline

import (
	"testing"
	"testing/quick"

	"risc1/internal/stats"
)

func TestAnalyzeArithmetic(t *testing.T) {
	s := &stats.Stats{
		Instructions:   100,
		Cycles:         120,
		TakenTransfers: 10,
		DelaySlotNops:  6,
	}
	c := Analyze(s)
	if c.Sequential != 220 {
		t.Errorf("sequential = %d, want 220", c.Sequential)
	}
	if c.Squashing != 120-6+10 {
		t.Errorf("squashing = %d, want 124", c.Squashing)
	}
	if c.Delayed != 120 {
		t.Errorf("delayed = %d, want 120", c.Delayed)
	}
}

func TestOrderingProperties(t *testing.T) {
	// For any plausible run, the overlapped organizations beat sequential,
	// and the delayed organization beats squashing exactly when fewer
	// slot-NOPs were executed than transfers taken.
	f := func(instr, cyc, taken, nops uint16) bool {
		n := uint64(instr) + 1
		s := &stats.Stats{
			Instructions:   n,
			Cycles:         n + uint64(cyc), // at least one cycle each
			TakenTransfers: uint64(taken) % n,
			DelaySlotNops:  uint64(nops) % n,
		}
		if s.DelaySlotNops > s.Cycles {
			return true // not a plausible run
		}
		c := Analyze(s)
		if c.Sequential <= c.Delayed {
			return false
		}
		wantDelayedWins := s.DelaySlotNops < s.TakenTransfers
		return (c.Delayed < c.Squashing) == wantDelayedWins
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestSpeedups(t *testing.T) {
	c := Cycles{Sequential: 200, Squashing: 110, Delayed: 100}
	sq, dl := c.SpeedupOverSequential()
	if sq <= 1 || dl <= 1 || dl <= sq {
		t.Errorf("speedups: squash %.2f delayed %.2f", sq, dl)
	}
	if adv := c.DelayedAdvantage(); adv <= 0.0909 || adv >= 0.0910 {
		t.Errorf("advantage = %.4f, want ~0.0909", adv)
	}
}
