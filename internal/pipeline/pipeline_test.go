package pipeline

import (
	"math"
	"testing"
	"testing/quick"

	"risc1/internal/stats"
)

func TestAnalyzeArithmetic(t *testing.T) {
	s := &stats.Stats{
		Instructions:   100,
		Cycles:         120,
		TakenTransfers: 10,
		DelaySlotNops:  6,
	}
	c := Analyze(s)
	if c.Sequential != 220 {
		t.Errorf("sequential = %d, want 220", c.Sequential)
	}
	if c.Squashing != 120-6+10 {
		t.Errorf("squashing = %d, want 124", c.Squashing)
	}
	if c.Delayed != 120 {
		t.Errorf("delayed = %d, want 120", c.Delayed)
	}
}

func TestOrderingProperties(t *testing.T) {
	// For any plausible run, the overlapped organizations beat sequential,
	// and the delayed organization beats squashing exactly when fewer
	// slot-NOPs were executed than transfers taken.
	f := func(instr, cyc, taken, nops uint16) bool {
		n := uint64(instr) + 1
		s := &stats.Stats{
			Instructions:   n,
			Cycles:         n + uint64(cyc), // at least one cycle each
			TakenTransfers: uint64(taken) % n,
			DelaySlotNops:  uint64(nops) % n,
		}
		if s.DelaySlotNops > s.Cycles {
			return true // not a plausible run
		}
		c := Analyze(s)
		if c.Sequential <= c.Delayed {
			return false
		}
		wantDelayedWins := s.DelaySlotNops < s.TakenTransfers
		return (c.Delayed < c.Squashing) == wantDelayedWins
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

// TestAnalyzeUnderflowClamp is the regression for the squashing formula:
// merged or partial stats can carry more slot-NOPs than delayed+taken
// cycles, and the old nops-before-taken order wrapped the uint64 below
// zero. The clamped count must never exceed delayed+taken either.
func TestAnalyzeUnderflowClamp(t *testing.T) {
	s := &stats.Stats{
		Instructions:   10,
		Cycles:         5, // pathological merged stats
		TakenTransfers: 1,
		DelaySlotNops:  9, // > Cycles + TakenTransfers
	}
	c := Analyze(s)
	if c.Squashing != 0 {
		t.Errorf("squashing = %d, want clamped 0", c.Squashing)
	}

	f := func(cyc, taken, nops uint32) bool {
		s := &stats.Stats{
			Instructions:   uint64(cyc) + 1,
			Cycles:         uint64(cyc),
			TakenTransfers: uint64(taken),
			DelaySlotNops:  uint64(nops),
		}
		sq := Analyze(s).Squashing
		// No wraparound: the result stays within [0, delayed+taken].
		return sq <= s.Cycles+s.TakenTransfers
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 5000}); err != nil {
		t.Error(err)
	}
}

// TestZeroCycleRatios is the regression for the NaN/Inf guards: an empty
// or fully-clamped organization reports 0, never a non-finite float that
// would poison a table or JSON report.
func TestZeroCycleRatios(t *testing.T) {
	for _, c := range []Cycles{
		{},
		{Sequential: 10},
		{Sequential: 10, Squashing: 0, Delayed: 5},
		{Sequential: 10, Squashing: 5, Delayed: 0},
	} {
		sq, dl := c.SpeedupOverSequential()
		adv := c.DelayedAdvantage()
		for _, v := range []float64{sq, dl, adv} {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				t.Errorf("%+v: non-finite ratio %v", c, v)
			}
		}
		if c.Squashing == 0 && (sq != 0 || adv != 0) {
			t.Errorf("%+v: zero squashing reported sq=%v adv=%v", c, sq, adv)
		}
		if c.Delayed == 0 && dl != 0 {
			t.Errorf("%+v: zero delayed reported speedup %v", c, dl)
		}
	}
}

// TestAnalyzeAgainstCycleModel ties the analytical organization comparison
// to the measured five-stage machine: on a real execution, the analytical
// model's per-taken-transfer squash bubble is exactly what the cycle
// -accurate model charges when it runs the same image under PolicySquash.
func TestAnalyzeAgainstCycleModel(t *testing.T) {
	src := sumProgram(12)
	m, r := runModel(t, src, PolicySquash)
	c := Analyze(m.CPU().Stats())
	if c.Delayed != m.CPU().Stats().Cycles {
		t.Errorf("analytical delayed = %d, oracle cycles = %d", c.Delayed, m.CPU().Stats().Cycles)
	}
	// Both models charge one bubble per taken transfer; the analytical
	// squashing organization additionally deletes the slot NOPs, so the
	// counts relate through the same TakenTransfers term.
	if r.FlushBubbleCycles != r.TakenTransfers {
		t.Errorf("measured bubbles = %d, taken transfers = %d",
			r.FlushBubbleCycles, r.TakenTransfers)
	}
	if got := c.Squashing + m.CPU().Stats().DelaySlotNops - c.Delayed; got != r.TakenTransfers {
		t.Errorf("analytical bubble count = %d, measured = %d", got, r.TakenTransfers)
	}
}

func TestSpeedups(t *testing.T) {
	c := Cycles{Sequential: 200, Squashing: 110, Delayed: 100}
	sq, dl := c.SpeedupOverSequential()
	if sq <= 1 || dl <= 1 || dl <= sq {
		t.Errorf("speedups: squash %.2f delayed %.2f", sq, dl)
	}
	if adv := c.DelayedAdvantage(); adv <= 0.0909 || adv >= 0.0910 {
		t.Errorf("advantage = %.4f, want ~0.0909", adv)
	}
}
