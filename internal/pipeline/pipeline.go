// Package pipeline models the fetch/execute overlap that justifies the
// delayed-jump design. RISC I overlaps the fetch of the next instruction
// with the execution of the current one; a taken control transfer would
// waste the already-fetched instruction unless either (a) the hardware
// squashes it and eats a one-cycle bubble, or (b) the architecture declares
// it to execute anyway — the delayed jump — and lets the compiler put
// something useful there.
//
// Three machine organizations are compared over the same execution trace
// (summarized by its stats.Stats):
//
//   - Sequential: no overlap — every instruction pays an explicit fetch
//     cycle. This is the naive baseline.
//   - Squashing: overlapped fetch with taken transfers squashing the
//     prefetched instruction (a one-cycle bubble each). Delay slots do not
//     exist, so the NOPs the compiler emitted into them are not executed.
//   - Delayed: RISC I as built — overlapped fetch, transfers take effect
//     one instruction late, the slot always executes.
package pipeline

import "risc1/internal/stats"

// Cycles summarizes the cost of one run under the three organizations.
type Cycles struct {
	Sequential uint64
	Squashing  uint64
	Delayed    uint64
}

// Analyze computes the three organizations' cycle counts from a run's
// statistics. s.Cycles must be the delayed-organization count (which is
// what the core simulator produces).
func Analyze(s *stats.Stats) Cycles {
	delayed := s.Cycles
	// Sequential: every executed instruction pays one extra fetch cycle
	// that the overlap otherwise hides.
	sequential := delayed + s.Instructions
	// Squashing: delay slots do not exist, so the NOPs that the compiler
	// left in unfilled slots disappear (one cycle each) — but every taken
	// transfer squashes its prefetched instruction, a one-cycle bubble.
	squashing := delayed - s.DelaySlotNops + s.TakenTransfers
	return Cycles{Sequential: sequential, Squashing: squashing, Delayed: delayed}
}

// SpeedupOverSequential returns how much the overlapped organizations gain.
func (c Cycles) SpeedupOverSequential() (squash, delayed float64) {
	return float64(c.Sequential) / float64(c.Squashing),
		float64(c.Sequential) / float64(c.Delayed)
}

// DelayedAdvantage is the delayed organization's cycle advantage over
// squashing, as a fraction of the squashing count. Positive means delayed
// jumps (with the measured slot-fill rate) beat squashing hardware.
func (c Cycles) DelayedAdvantage() float64 {
	return 1 - float64(c.Delayed)/float64(c.Squashing)
}
