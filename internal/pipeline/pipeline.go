// Package pipeline models the fetch/execute overlap that justifies the
// delayed-jump design. RISC I overlaps the fetch of the next instruction
// with the execution of the current one; a taken control transfer would
// waste the already-fetched instruction unless either (a) the hardware
// squashes it and eats a one-cycle bubble, or (b) the architecture declares
// it to execute anyway — the delayed jump — and lets the compiler put
// something useful there.
//
// Three machine organizations are compared over the same execution trace
// (summarized by its stats.Stats):
//
//   - Sequential: no overlap — every instruction pays an explicit fetch
//     cycle. This is the naive baseline.
//   - Squashing: overlapped fetch with taken transfers squashing the
//     prefetched instruction (a one-cycle bubble each). Delay slots do not
//     exist, so the NOPs the compiler emitted into them are not executed.
//   - Delayed: RISC I as built — overlapped fetch, transfers take effect
//     one instruction late, the slot always executes.
package pipeline

import "risc1/internal/stats"

// Cycles summarizes the cost of one run under the three organizations.
type Cycles struct {
	Sequential uint64
	Squashing  uint64
	Delayed    uint64
}

// Analyze computes the three organizations' cycle counts from a run's
// statistics. s.Cycles must be the delayed-organization count (which is
// what the core simulator produces).
func Analyze(s *stats.Stats) Cycles {
	delayed := s.Cycles
	// Sequential: every executed instruction pays one extra fetch cycle
	// that the overlap otherwise hides.
	sequential := delayed + s.Instructions
	// Squashing: delay slots do not exist, so the NOPs that the compiler
	// left in unfilled slots disappear (one cycle each) — but every taken
	// transfer squashes its prefetched instruction, a one-cycle bubble.
	// The additions happen before the subtraction, and the subtraction is
	// clamped: on partial or merged stats (a faulted run folded in via
	// Stats.Add) the NOP count can exceed the cycle count, and the naive
	// delayed-nops+taken order would wrap below zero.
	squashing := delayed + s.TakenTransfers
	if s.DelaySlotNops < squashing {
		squashing -= s.DelaySlotNops
	} else {
		squashing = 0
	}
	return Cycles{Sequential: sequential, Squashing: squashing, Delayed: delayed}
}

// SpeedupOverSequential returns how much the overlapped organizations gain.
// A zero-cycle organization has no meaningful ratio; its speedup reports 0
// rather than NaN or Inf so the value can flow into tables safely.
func (c Cycles) SpeedupOverSequential() (squash, delayed float64) {
	if c.Squashing > 0 {
		squash = float64(c.Sequential) / float64(c.Squashing)
	}
	if c.Delayed > 0 {
		delayed = float64(c.Sequential) / float64(c.Delayed)
	}
	return squash, delayed
}

// DelayedAdvantage is the delayed organization's cycle advantage over
// squashing, as a fraction of the squashing count. Positive means delayed
// jumps (with the measured slot-fill rate) beat squashing hardware. An
// empty run (Squashing zero) has no advantage to report and returns 0.
func (c Cycles) DelayedAdvantage() float64 {
	if c.Squashing == 0 {
		return 0
	}
	return 1 - float64(c.Delayed)/float64(c.Squashing)
}
