// Cycle-accurate five-stage pipeline model. Where Analyze estimates cycle
// counts from aggregate statistics, Machine measures them: it drives the
// single-cycle core.Step oracle instruction by instruction (via the CPU's
// Trace hook) and replays each retirement through an IF/ID/EX/MEM/WB timing
// model with full operand forwarding, a load-use interlock, register-window
// trap drains, and one of two control-transfer policies. Architectural state
// is always exactly the oracle's — the pipeline layer only decides how many
// cycles the same execution takes.
//
// The timing model is event-driven rather than stage-by-stage: for an
// in-order single-issue pipeline the cycle an instruction enters EX
// determines every other stage (IF = EX-2, ID = EX-1, MEM = EX+1,
// WB = EX+2), so it suffices to track, per retired instruction, the EX
// cycle and the producers still in flight. The first instruction reaches
// EX at cycle 3; with no stalls each successor follows one cycle later and
// a program of N instructions drains after N+4 cycles.
//
// Hazards are resolved the way the classic five-stage datapath does:
//
//   - EX/MEM forward: an ALU result feeds the very next instruction's EX.
//   - MEM/WB forward: a result two ahead of its consumer, including a load
//     feeding the instruction after its shadow.
//   - Load-use interlock: a load's value does not exist until the end of
//     MEM, so a consumer in the next slot stalls one cycle and then takes
//     the MEM/WB forward.
//   - Store data is not needed until the store's own MEM stage, so a load
//     feeding the data register of the very next store forwards
//     MEM-to-MEM without stalling.
//   - Three or more instructions of distance read the register file
//     (write-first-half / read-second-half).
//   - Shared memory port: the machine has one port to memory, so a load
//     or store in MEM blocks instruction fetch that cycle. The delayed
//     fetch slides the follower's whole IF/ID/EX frame — this is the
//     structural hazard that makes loads and stores effectively
//     two-cycle instructions in the paper's timing tables.
//
// Producers and consumers are matched by physical register index, not
// architectural number: CALL and RET shift the window between an
// instruction's operand read and its successor's, and the same r26 names a
// different physical register on either side of a call. Condition codes are
// a scoreboarded pseudo-register with the same forwarding rules.
//
// Register-window overflow and underflow raise the spill/fill trap of the
// single-cycle model; the pipeline drains while the handler runs, charged
// at timing.RiscSpillCycles / RiscFillCycles per event.
package pipeline

import (
	"context"
	"fmt"

	"risc1/internal/asm"
	"risc1/internal/core"
	"risc1/internal/isa"
	"risc1/internal/stats"
	"risc1/internal/timing"
)

// Policy selects how the pipeline resolves control transfers.
type Policy uint8

const (
	// PolicyDelayed is RISC I as built: transfers resolve early enough
	// that the delay slot exactly covers the branch shadow — a taken
	// transfer costs no bubble beyond the slot the architecture already
	// exposes.
	PolicyDelayed Policy = iota
	// PolicySquash models predict-not-taken hardware on the same ISA:
	// the transfer resolves in EX, so by the time a taken transfer is
	// known the fetch unit has gone one instruction past the delay slot
	// down the fall-through path. That wrong-path fetch is squashed — a
	// one-cycle bubble per taken transfer. Architectural results are
	// identical to PolicyDelayed; only the cycle count differs.
	PolicySquash
)

// String returns the wire spelling of p.
func (p Policy) String() string {
	switch p {
	case PolicyDelayed:
		return "delayed"
	case PolicySquash:
		return "squash"
	}
	return "invalid"
}

// ParsePolicy maps a wire spelling to a Policy. The empty string selects
// PolicyDelayed, the machine the paper built.
func ParsePolicy(s string) (Policy, error) {
	switch s {
	case "", "delayed":
		return PolicyDelayed, nil
	case "squash", "predict-not-taken":
		return PolicySquash, nil
	}
	return PolicyDelayed, fmt.Errorf("pipeline: unknown policy %q (want delayed or squash)", s)
}

// Result is the timing outcome of one pipelined run.
type Result struct {
	Policy       Policy
	Instructions uint64
	// Cycles is the pipelined cycle count: Instructions + 4 fill/drain
	// cycles + every stall and bubble below.
	Cycles uint64

	// LoadUseStallCycles counts interlock cycles where EX waited for a
	// load (or a flag-setting load feeding a conditional jump).
	LoadUseStallCycles uint64
	// WindowStallCycles counts drain cycles spent in the register-window
	// spill/fill trap handler.
	WindowStallCycles uint64
	// FlushBubbleCycles counts wrong-path fetches squashed by taken
	// transfers; always zero under PolicyDelayed.
	FlushBubbleCycles uint64
	// MemPortStallCycles counts fetches delayed because a load or store
	// occupied the single shared memory port in its MEM stage. This is the
	// structural hazard that makes the paper's loads and stores two-cycle
	// instructions: the machine has one port, and a data access suspends
	// instruction fetch for a cycle.
	MemPortStallCycles uint64

	// ForwardsEXMEM and ForwardsMEMWB count operands delivered through
	// the two bypass paths rather than the register file.
	ForwardsEXMEM uint64
	ForwardsMEMWB uint64

	// DelaySlots counts retired delay-slot instructions;
	// DelaySlotsFilled is the subset doing useful work (not NOPs).
	DelaySlots       uint64
	DelaySlotsFilled uint64

	Transfers      uint64
	TakenTransfers uint64
}

// CPI is the effective cycles-per-instruction; 0 for an empty run.
func (r Result) CPI() float64 {
	if r.Instructions == 0 {
		return 0
	}
	return float64(r.Cycles) / float64(r.Instructions)
}

// Forwards is the total operand count delivered over bypass paths.
func (r Result) Forwards() uint64 { return r.ForwardsEXMEM + r.ForwardsMEMWB }

// FillRate is the fraction of retired delay slots holding useful work;
// 0 for a run that retired no slots.
func (r Result) FillRate() float64 {
	if r.DelaySlots == 0 {
		return 0
	}
	return float64(r.DelaySlotsFilled) / float64(r.DelaySlots)
}

// StallCycles is the total of every cycle lost to hazards.
func (r Result) StallCycles() uint64 {
	return r.LoadUseStallCycles + r.WindowStallCycles + r.FlushBubbleCycles +
		r.MemPortStallCycles
}

// Time is the simulated pipelined run time in seconds at the paper's clock.
func (r Result) Time() float64 {
	return float64(r.Cycles) * timing.RiscCycleNS * 1e-9
}

// writeRec scoreboards the in-flight producer of one physical register (or
// of the condition codes).
type writeRec struct {
	ex    uint64 // producer's EX cycle
	load  bool   // value exists at end of MEM, not end of EX
	valid bool
}

// Machine is a cycle-accurate pipelined RISC I. It embeds a single-cycle
// core as its architectural oracle: every instruction executes exactly as
// core.Step would, and the timing model observes the retirement stream to
// charge cycles.
type Machine struct {
	cpu    *core.CPU
	policy Policy
	flat   bool
	st     *stats.Stats

	res Result

	ex      uint64 // EX cycle of the last retired instruction
	pending uint64 // stall cycles already charged to the next issue

	regW  []writeRec // by physical register index
	flagW writeRec   // condition-code scoreboard

	slotPending bool // last retirement was a transfer owning a delay slot
	slotTaken   bool

	// memBusy holds the future MEM cycles of in-flight loads and stores —
	// the cycles the shared memory port is closed to instruction fetch.
	// Strictly increasing (MEM = EX+1 and EX is monotone), never more than
	// a few entries deep.
	memBusy []uint64

	// last-seen oracle counters, for per-retirement deltas
	lastOvf, lastUnf, lastNops, lastUseful uint64
}

// New builds a pipelined machine over a fresh core with the given
// configuration. The core's engine knob is forced to the step oracle: the
// pipeline observes individual retirements, which block and trace execution
// do not expose.
func New(cfg core.Config, policy Policy) *Machine {
	cfg.Engine = core.EngineStep
	m := &Machine{policy: policy, flat: cfg.Flat}
	m.cpu = core.New(cfg)
	m.cpu.Trace = m.retire
	m.st = m.cpu.Stats()
	m.resetTiming()
	return m
}

// CPU exposes the architectural oracle: registers, memory, console, stats.
func (m *Machine) CPU() *core.CPU { return m.cpu }

// Policy returns the machine's control-transfer policy.
func (m *Machine) Policy() Policy { return m.policy }

// Load places an image in memory, resets the processor and the timing model.
func (m *Machine) Load(img *asm.Image) error {
	if err := m.cpu.Load(img); err != nil {
		return err
	}
	m.st = m.cpu.Stats() // Load replaced the stats object
	m.resetTiming()
	return nil
}

func (m *Machine) resetTiming() {
	m.res = Result{Policy: m.policy}
	m.ex = 2 // the first instruction enters EX at cycle 3
	m.pending = 0
	n := m.cpu.Regs.TotalPhys()
	if cap(m.regW) < n {
		m.regW = make([]writeRec, n)
	} else {
		m.regW = m.regW[:n]
		clear(m.regW)
	}
	m.flagW = writeRec{}
	m.memBusy = m.memBusy[:0]
	m.slotPending, m.slotTaken = false, false
	m.lastOvf, m.lastUnf, m.lastNops, m.lastUseful = 0, 0, 0, 0
}

// Run executes until halt, fault or cycle budget.
func (m *Machine) Run() error { return m.cpu.Run() }

// RunContext is Run with cancellation.
func (m *Machine) RunContext(ctx context.Context) error { return m.cpu.RunContext(ctx) }

// Step retires a single instruction through both the oracle and the
// timing model.
func (m *Machine) Step() error { return m.cpu.Step() }

// Result returns the timing outcome so far. It is valid after a partial
// run (fault, cycle limit, cancellation): it describes the instructions
// that actually retired.
func (m *Machine) Result() Result {
	r := m.res
	if r.Instructions > 0 {
		// The last instruction still has MEM and WB to drain.
		r.Cycles = m.ex + 2
	}
	return r
}

// retire is the core's Trace hook: called once per executed instruction,
// after architectural effects (window shifts included) but before the PC
// advances. All timing happens here.
func (m *Machine) retire(pc uint32, inst isa.Inst) {
	m.res.Instructions++

	// Delay-slot bookkeeping: the oracle classified this instruction
	// before executing it; read the deltas.
	if n := m.st.DelaySlotNops; n != m.lastNops {
		m.lastNops = n
		m.res.DelaySlots++
	} else if u := m.st.DelaySlotUseful; u != m.lastUseful {
		m.lastUseful = u
		m.res.DelaySlots++
		m.res.DelaySlotsFilled++
	}

	// Issue: one cycle after the previous EX, plus any pending squash
	// bubble or window-trap drain charged by the previous retirement.
	issue := m.ex + 1 + m.pending
	m.pending = 0

	// The window has already shifted for calls and returns, so operand
	// reads and the link write land in different windows than CWP now
	// reports. A RET that halted the machine never popped.
	cwp := m.cpu.Regs.CWP()
	srcWin, dstWin := cwp, cwp
	if !m.flat {
		switch {
		case inst.IsCall():
			srcWin = cwp - 1 // operands read before the push
		case inst.IsReturn() && !m.cpu.Halted():
			srcWin = cwp + 1 // return address read before the pop
		}
	}

	// Scan EX operands for hazards. Store data is excluded here — it is
	// a MEM-stage operand, handled below.
	ex := issue
	var srcBuf [4]uint8
	srcs := inst.SourceRegs(srcBuf[:0])
	var memSrc uint8
	hasMemSrc := false
	if inst.Op.Cat() == isa.CatStore {
		memSrc, hasMemSrc = srcs[len(srcs)-1], true
		srcs = srcs[:len(srcs)-1]
	}
	for _, r := range srcs {
		if r == 0 {
			continue // r0 is hardwired zero
		}
		if w := m.regW[m.cpu.Regs.PhysIndex(srcWin, r)]; w.valid {
			if need := ready(w) + 1; ex < need {
				ex = need
			}
		}
	}
	// Conditional jumps consume the condition codes in EX; GETPSW reads
	// them too. CondALW/CondNEV never look at the flags.
	if m.flagW.valid && readsFlags(inst) {
		if need := ready(m.flagW) + 1; ex < need {
			ex = need
		}
	}
	m.res.LoadUseStallCycles += ex - issue

	// Shared memory port: this instruction's fetch (IF = EX-2) cannot use
	// the port in a cycle where an earlier access's MEM stage holds it, so
	// the fetch — and with it the whole rigid IF/ID/EX frame — slides
	// until the port is free.
	f := ex - 2
	for len(m.memBusy) > 0 && m.memBusy[0] < f {
		m.memBusy = m.memBusy[1:]
	}
	for _, b := range m.memBusy {
		if b == f {
			f++
		} else if b > f {
			break
		}
	}
	if min := f + 2; ex < min {
		m.res.MemPortStallCycles += min - ex
		ex = min
	}

	// With the EX cycle fixed, classify where each operand came from.
	for _, r := range srcs {
		if r == 0 {
			continue
		}
		if w := m.regW[m.cpu.Regs.PhysIndex(srcWin, r)]; w.valid {
			m.countForward(ex-w.ex, w.load)
		}
	}
	if m.flagW.valid && readsFlags(inst) {
		m.countForward(ex-m.flagW.ex, m.flagW.load)
	}
	// Store data is needed at the store's MEM stage, one cycle later, so
	// even a load feeding the very next store forwards MEM-to-MEM
	// without a stall.
	if hasMemSrc && memSrc != 0 {
		if w := m.regW[m.cpu.Regs.PhysIndex(srcWin, memSrc)]; w.valid {
			switch d := ex - w.ex; {
			case d == 1 && !w.load:
				m.res.ForwardsEXMEM++
			case d <= 2:
				m.res.ForwardsMEMWB++
			}
		}
	}
	m.ex = ex

	// A load or store owns the memory port for its MEM cycle.
	if c := inst.Op.Cat(); c == isa.CatLoad || c == isa.CatStore {
		m.memBusy = append(m.memBusy, ex+1)
	}

	// Scoreboard this instruction's writes for its successors.
	isLoad := inst.Op.Cat() == isa.CatLoad
	if d, ok := inst.DestReg(); ok && d != 0 {
		m.regW[m.cpu.Regs.PhysIndex(dstWin, d)] = writeRec{ex: ex, load: isLoad, valid: true}
	}
	if inst.SCC || inst.Op == isa.OpPUTPSW {
		m.flagW = writeRec{ex: ex, load: isLoad, valid: true}
	}

	// This retirement fills the previous transfer's delay slot: under
	// predict-not-taken hardware a taken transfer is only resolved now,
	// and the fetch that went one past this slot is squashed.
	if m.slotPending {
		m.slotPending = false
		if m.slotTaken && m.policy == PolicySquash {
			m.pending++
			m.res.FlushBubbleCycles++
		}
	}
	// ... and may itself open a slot (CALLINT is slotless).
	if inst.Op.Transfers() && inst.Op != isa.OpCALLINT {
		m.res.Transfers++
		taken := m.taken(inst)
		if taken {
			m.res.TakenTransfers++
		}
		m.slotPending, m.slotTaken = true, taken
	}

	// A window overflow or underflow during this instruction ran the
	// spill/fill trap handler; the pipeline drains behind it.
	if d := m.st.WindowOverflow - m.lastOvf; d != 0 {
		m.lastOvf = m.st.WindowOverflow
		m.pending += d * timing.RiscSpillCycles
		m.res.WindowStallCycles += d * timing.RiscSpillCycles
	}
	if d := m.st.WindowUnderflow - m.lastUnf; d != 0 {
		m.lastUnf = m.st.WindowUnderflow
		m.pending += d * timing.RiscFillCycles
		m.res.WindowStallCycles += d * timing.RiscFillCycles
	}
}

// ready returns the cycle at the end of which w's value exists: end of EX
// for ALU results, end of MEM for loads. A consumer's EX must start strictly
// later.
func ready(w writeRec) uint64 {
	if w.load {
		return w.ex + 1
	}
	return w.ex
}

// countForward attributes one EX operand to its delivery path given the
// producer-consumer EX distance.
func (m *Machine) countForward(d uint64, load bool) {
	switch {
	case d == 1 && !load:
		m.res.ForwardsEXMEM++
	case d == 2:
		m.res.ForwardsMEMWB++
	}
	// d >= 3: plain register-file read, no bypass involved.
}

// readsFlags reports whether inst consumes the condition codes in EX.
func readsFlags(inst isa.Inst) bool {
	if inst.Op == isa.OpGETPSW {
		return true
	}
	if !inst.Op.IsConditional() {
		return false
	}
	c := inst.Cond()
	return c != isa.CondALW && c != isa.CondNEV
}

// taken mirrors the oracle's transfer decision at retirement time: the
// flags a conditional jump tested are still current (jumps do not write
// them), calls always transfer, and a RET transfers unless it halted the
// machine (the entry-procedure return).
func (m *Machine) taken(inst isa.Inst) bool {
	switch inst.Op {
	case isa.OpJMP, isa.OpJMPR:
		return inst.Cond().Holds(m.cpu.Flags())
	case isa.OpRET, isa.OpRETINT:
		return !m.cpu.Halted()
	}
	return true // CALL, CALLR
}
