package prog_test

import (
	"testing"

	"risc1/internal/asm"
	"risc1/internal/cc"
	"risc1/internal/cisc"
	"risc1/internal/core"
	"risc1/internal/prog"
)

// TestSuiteOnAllTargets is the central integration test of the repository:
// every benchmark must compile, assemble and run on RISC I (windowed), the
// flat-register ablation and the CX CISC machine, producing exactly the
// output of its Go reference implementation.
func TestSuiteOnAllTargets(t *testing.T) {
	for _, b := range prog.All() {
		b := b
		t.Run(b.Name, func(t *testing.T) {
			t.Parallel()
			want := prog.Expected(b.Name)
			if want == "" {
				t.Fatal("empty expected output")
			}
			for _, target := range []cc.Target{cc.RISCWindowed, cc.RISCFlat, cc.CISC} {
				res, err := cc.Compile(b.Source, cc.Options{Target: target})
				if err != nil {
					t.Fatalf("%v: compile: %v", target, err)
				}
				var console string
				if target == cc.CISC {
					img, err := cisc.Assemble(res.Asm)
					if err != nil {
						t.Fatalf("%v: assemble: %v", target, err)
					}
					m := cisc.New(cisc.Config{})
					if err := m.Load(img); err != nil {
						t.Fatal(err)
					}
					if err := m.Run(); err != nil {
						t.Fatalf("%v: run: %v", target, err)
					}
					console = m.Console()
				} else {
					img, err := asm.Assemble(res.Asm)
					if err != nil {
						t.Fatalf("%v: assemble: %v", target, err)
					}
					m := core.New(core.Config{
						Flat:           target == cc.RISCFlat,
						SaveStackBytes: 64 << 10,
					})
					if err := m.Load(img); err != nil {
						t.Fatal(err)
					}
					if err := m.Run(); err != nil {
						t.Fatalf("%v: run: %v", target, err)
					}
					console = m.Console()
				}
				if console != want {
					t.Errorf("%v: output %q, want %q", target, console, want)
				}
			}
		})
	}
}

func TestByName(t *testing.T) {
	if _, ok := prog.ByName("acker"); !ok {
		t.Error("acker missing")
	}
	if _, ok := prog.ByName("nope"); ok {
		t.Error("found nonexistent benchmark")
	}
	if len(prog.All()) < 10 {
		t.Errorf("suite has only %d benchmarks", len(prog.All()))
	}
}

func TestCallHeavyMarked(t *testing.T) {
	heavy := 0
	for _, b := range prog.All() {
		if b.CallHeavy {
			heavy++
		}
	}
	if heavy < 3 {
		t.Errorf("only %d call-heavy benchmarks; the window experiments need several", heavy)
	}
}
