package prog

// Parallel-kernel registry: the suite kernels ported to spawn/join form for
// the SMP experiments (E12). These live outside the sequential suite on
// purpose — All()'s canonical order and tables must stay byte-identical —
// and each kernel's console output is independent of the core count: with
// one core (or no SMP controller at all) every spawn falls back to an
// inline call and the same answer comes out sequentially.

import "fmt"

// Parallel returns the parallel kernels in canonical order.
func Parallel() []Benchmark { return parallel }

// ParallelByName finds one parallel kernel.
func ParallelByName(name string) (Benchmark, bool) {
	for _, b := range parallel {
		if b.Name == name {
			return b, true
		}
	}
	return Benchmark{}, false
}

func init() {
	references["psum"] = refPsum
	references["pcrunch"] = refPcrunch
	references["pqsort"] = refPqsort
}

var parallel = []Benchmark{
	{
		Name: "psum",
		Desc: "data-parallel array sum, spinlock-guarded accumulator",
		Source: `
int data[4096];
int total;
int chunk;
int nw;
void worker(int k) {
	int i; int end; int s; int v;
	s = 0;
	i = k * chunk;
	end = i + chunk;
	if (k == nw - 1) end = 4096;
	while (i < end) {
		v = (i * 7 + 3) % 101;
		data[i] = v;
		s += v;
		i++;
	}
	lock(0);
	total += s;
	unlock(0);
}
int main() {
	int i; int h[16];
	nw = ncores();
	if (nw > 8) nw = 8;
	chunk = 4096 / nw;
	total = 0;
	for (i = 1; i < nw; i++) h[i] = spawn(worker, i);
	worker(0);
	for (i = 1; i < nw; i++) join(h[i]);
	putint(total);
	return 0;
}
`,
	},
	{
		Name: "pcrunch",
		Desc: "data-parallel ALU/multiply crunch over an array",
		Source: `
int data[2048];
int chunk;
int nw;
int crunch(int x) {
	int j;
	for (j = 0; j < 10; j++) {
		x = x * 3 + 1;
		x = x ^ (x >> 5);
		x = x & 1048575;
	}
	return x;
}
void worker(int k) {
	int i; int end;
	i = k * chunk;
	end = i + chunk;
	if (k == nw - 1) end = 2048;
	while (i < end) { data[i] = crunch(data[i]); i++; }
}
int main() {
	int i; int s; int h[16];
	for (i = 0; i < 2048; i++) data[i] = i * 13 + 7;
	nw = ncores();
	if (nw > 8) nw = 8;
	chunk = 2048 / nw;
	for (i = 1; i < nw; i++) h[i] = spawn(worker, i);
	worker(0);
	for (i = 1; i < nw; i++) join(h[i]);
	s = 0;
	for (i = 0; i < 2048; i++) s = (s + data[i]) & 16777215;
	putint(s);
	return 0;
}
`,
	},
	{
		Name:      "pqsort",
		CallHeavy: true,
		Desc:      "parallel quicksort: chunk sorts on workers, k-way merge on core 0",
		Source: `
int data[2048];
int out[2048];
int head[8];
int lim[8];
int chunk;
int nw;
void qs(int lo, int hi) {
	int i; int j; int p; int t;
	if (lo >= hi) return;
	p = data[(lo + hi) >> 1];
	i = lo; j = hi;
	while (i <= j) {
		while (data[i] < p) i++;
		while (data[j] > p) j--;
		if (i <= j) {
			t = data[i]; data[i] = data[j]; data[j] = t;
			i++; j--;
		}
	}
	qs(lo, j);
	qs(i, hi);
}
void worker(int k) {
	int lo; int hi; int i; int seed;
	lo = k * chunk;
	hi = lo + chunk - 1;
	if (k == nw - 1) hi = 2047;
	for (i = lo; i <= hi; i++) {
		seed = (i * 2654435 + 12345) & 65535;
		seed = seed ^ (seed >> 7);
		data[i] = seed & 8191;
	}
	qs(lo, hi);
}
int main() {
	int i; int k; int h[16];
	int best; int bk; int v; int s;
	nw = ncores();
	if (nw > 8) nw = 8;
	chunk = 2048 / nw;
	for (i = 1; i < nw; i++) h[i] = spawn(worker, i);
	worker(0);
	for (i = 1; i < nw; i++) join(h[i]);
	for (k = 0; k < nw; k++) {
		head[k] = k * chunk;
		lim[k] = head[k] + chunk;
	}
	lim[nw - 1] = 2048;
	for (i = 0; i < 2048; i++) {
		bk = -1; best = 0;
		for (k = 0; k < nw; k++) {
			if (head[k] < lim[k]) {
				v = data[head[k]];
				if (bk < 0 || v < best) { best = v; bk = k; }
			}
		}
		out[i] = best;
		head[bk] = head[bk] + 1;
	}
	s = 0;
	for (i = 0; i < 2048; i++) s = ((s << 1) + out[i]) & 16777215;
	putint(s);
	return 0;
}
`,
	},
}

// References. The merge in pqsort reconstructs the globally sorted array
// from any chunk partition, and psum/pcrunch reduce over the whole array,
// so every expected answer is independent of the core count.

func refPsum() string {
	var total int32
	for i := int32(0); i < 4096; i++ {
		total += (i*7 + 3) % 101
	}
	return fmt.Sprintf("%d", total)
}

func refPcrunch() string {
	var s int32
	for i := int32(0); i < 2048; i++ {
		x := i*13 + 7
		for j := 0; j < 10; j++ {
			x = x*3 + 1
			x = x ^ (x >> 5)
			x = x & 1048575
		}
		s = (s + x) & 16777215
	}
	return fmt.Sprintf("%d", s)
}

func refPqsort() string {
	var data [2048]int32
	for i := int32(0); i < 2048; i++ {
		seed := (i*2654435 + 12345) & 65535
		seed = seed ^ (seed >> 7)
		data[i] = seed & 8191
	}
	// The merge of sorted chunks is the sorted array, however it was cut.
	for i := 1; i < len(data); i++ {
		for j := i; j > 0 && data[j] < data[j-1]; j-- {
			data[j], data[j-1] = data[j-1], data[j]
		}
	}
	var s int32
	for i := 0; i < 2048; i++ {
		s = ((s << 1) + data[i]) & 16777215
	}
	return fmt.Sprintf("%d", s)
}
