package prog

import "fmt"

// Go reference implementations. Each mirrors its Cm source exactly (int32
// arithmetic, same seeds) and produces the expected console output.

var references = map[string]func() string{
	"search":   refSearch,
	"bittest":  refBittest,
	"linklist": refLinklist,
	"bitmat":   refBitmat,
	"acker":    refAcker,
	"qsort":    refQsort,
	"puzzle":   refPuzzle,
	"hanoi":    refHanoi,
	"sieve":    refSieve,
	"fib":      refFib,
	"queens":   refQueens,
	"bubble":   refBubble,
	"matmul":   refMatmul,
}

func refQueens() string {
	var rowok [8]bool
	var diag1, diag2 [15]bool
	solutions := 0
	var place func(col int)
	place = func(col int) {
		if col == 8 {
			solutions++
			return
		}
		for row := 0; row < 8; row++ {
			if !rowok[row] && !diag1[row+col] && !diag2[row-col+7] {
				rowok[row], diag1[row+col], diag2[row-col+7] = true, true, true
				place(col + 1)
				rowok[row], diag1[row+col], diag2[row-col+7] = false, false, false
			}
		}
	}
	place(0)
	return fmt.Sprintf("%d", solutions)
}

func refBubble() string {
	var a [200]int32
	seed := int32(31415)
	for i := range a {
		a[i] = xorshift(&seed) & 4095
	}
	for i := 0; i < 199; i++ {
		for j := 0; j < 199-i; j++ {
			if a[j] > a[j+1] {
				a[j], a[j+1] = a[j+1], a[j]
			}
		}
	}
	sum := int32(0)
	for i := int32(0); i < 200; i++ {
		if i > 0 && a[i-1] > a[i] {
			return "-1"
		}
		sum += a[i] * (i & 3)
	}
	return fmt.Sprintf("%d %d %d", a[0], a[199], sum)
}

func refSearch() string {
	text := "here is a sample text with several sample patterns inside; the sample text sample ends here with one last sample"
	pat := "sample"
	search := func(start int) int {
		for i := start; i < len(text); i++ {
			j := 0
			for j < len(pat) && i+j < len(text) && text[i+j] == pat[j] {
				j++
			}
			if j == len(pat) {
				return i
			}
		}
		return -1
	}
	count, possum := int32(0), int32(0)
	for iter := 0; iter < 100; iter++ {
		at := 0
		for {
			at = search(at)
			if at < 0 {
				break
			}
			count++
			possum += int32(at)
			at++
		}
	}
	return fmt.Sprintf("%d %d", count, possum)
}

func lcg(seed *int32) int32 {
	*seed = (*seed*1103515245 + 12345) & 0x7fffffff
	return *seed
}

// xorshift mirrors the Cm rnd() used by most kernels: no multiplies, so the
// generator itself does not dominate a machine without multiply hardware.
func xorshift(seed *int32) int32 {
	*seed ^= *seed << 13
	*seed ^= *seed >> 17
	*seed ^= *seed << 5
	return *seed
}

func refBittest() string {
	var bits [64]int32
	seed := int32(99)
	rnd := func() int32 { return (xorshift(&seed) >> 7) & 2047 }
	hits := int32(0)
	for i := 0; i < 5000; i++ {
		n := rnd()
		if bits[n>>5]>>(n&31)&1 != 0 {
			bits[n>>5] &^= 1 << (n & 31)
		} else {
			bits[n>>5] |= 1 << (n & 31)
			hits++
		}
	}
	n := int32(0)
	for i := int32(0); i < 2048; i++ {
		if bits[i>>5]>>(i&31)&1 != 0 {
			n++
		}
	}
	return fmt.Sprintf("%d %d", hits, n)
}

func refLinklist() string {
	var nextp, value [600]int32
	head := int32(0)
	for i := int32(0); i < 400; i++ {
		value[i] = 2 * i
		nextp[i] = i + 1
	}
	nextp[399] = -1
	free := int32(400)
	for n := int32(0); n < 150; n++ {
		value[free] = 2*n + 1
		p, q := head, int32(-1)
		for p >= 0 && value[p] < value[free] {
			q, p = p, nextp[p]
		}
		nextp[free] = p
		if q < 0 {
			head = free
		} else {
			nextp[q] = free
		}
		free++
	}
	p, q, i := head, int32(-1), int32(0)
	for p >= 0 {
		if i == 2 {
			nextp[q] = nextp[p]
			p = nextp[p]
			i = 0
		} else {
			q, p = p, nextp[p]
			i++
		}
	}
	sum, n := int32(0), int32(0)
	for p := head; p >= 0; p = nextp[p] {
		sum += value[p]
		n++
	}
	return fmt.Sprintf("%d %d", n, sum)
}

func refBitmat() string {
	var m, t [32]int32
	seed := int32(7)
	for i := range m {
		m[i] = xorshift(&seed)
	}
	check := int32(0)
	for iter := int32(0); iter < 20; iter++ {
		for i := range t {
			t[i] = 0
		}
		for i := 0; i < 32; i++ {
			for j := 0; j < 32; j++ {
				if m[i]>>j&1 != 0 {
					t[j] |= 1 << i
				}
			}
		}
		for i := range m {
			m[i] = t[i] ^ (m[i] >> 1)
		}
		check ^= m[iter&31]
	}
	return fmt.Sprintf("%d", check)
}

func refAcker() string {
	var acker func(m, n int32) int32
	acker = func(m, n int32) int32 {
		if m == 0 {
			return n + 1
		}
		if n == 0 {
			return acker(m-1, 1)
		}
		return acker(m-1, acker(m, n-1))
	}
	return fmt.Sprintf("%d", acker(3, 4))
}

func refQsort() string {
	var a [300]int32
	seed := int32(12345)
	for i := range a {
		a[i] = xorshift(&seed) & 8191
	}
	var quick func(lo, hi int32)
	quick = func(lo, hi int32) {
		if lo >= hi {
			return
		}
		i, j := lo, hi
		pivot := a[(lo+hi)/2]
		for i <= j {
			for a[i] < pivot {
				i++
			}
			for a[j] > pivot {
				j--
			}
			if i <= j {
				a[i], a[j] = a[j], a[i]
				i++
				j--
			}
		}
		quick(lo, j)
		quick(i, hi)
	}
	quick(0, 299)
	ok, sum := int32(1), int32(0)
	for i := int32(0); i < 300; i++ {
		if i > 0 && a[i-1] > a[i] {
			ok = 0
		}
		sum += a[i] * (i & 7)
	}
	return fmt.Sprintf("%d %d %d %d", ok, a[0], a[299], sum)
}

func refPuzzle() string {
	var board [512]int32
	piece := [8]int32{255, 15, 51, 85, 165, 195, 60, 90}
	count := int32(0)
	fit := func(p, pos int32) bool {
		for k := int32(0); k < 8; k++ {
			if piece[p]>>k&1 != 0 && board[pos+k] != 0 {
				return false
			}
		}
		return true
	}
	setAll := func(p, pos, v int32) {
		for k := int32(0); k < 8; k++ {
			if piece[p]>>k&1 != 0 {
				board[pos+k] = v
			}
		}
	}
	for round := int32(0); round < 5; round++ {
		for p := int32(0); p < 8; p++ {
			for pos := int32(0); pos+8 <= 512; pos++ {
				if fit(p, pos) {
					setAll(p, pos, 1)
					count++
					if count&7 == 0 {
						setAll(p, pos, 0)
					}
				}
			}
		}
		for pos := int32(0); pos < 512; pos++ {
			if pos&15 == round {
				board[pos] = 0
			}
		}
	}
	return fmt.Sprintf("%d", count)
}

func refHanoi() string {
	moves := int32(0)
	var hanoi func(n, from, to, via int32)
	hanoi = func(n, from, to, via int32) {
		if n == 0 {
			return
		}
		hanoi(n-1, from, via, to)
		moves++
		hanoi(n-1, via, to, from)
	}
	hanoi(14, 1, 3, 2)
	return fmt.Sprintf("%d", moves)
}

func refSieve() string {
	var flags [8191]byte
	count := int32(0)
	for iter := 0; iter < 10; iter++ {
		count = 0
		for i := range flags {
			flags[i] = 1
		}
		for i := int32(0); i < 8191; i++ {
			if flags[i] != 0 {
				k := i + i + 3
				for j := i + k; j < 8191; j += k {
					flags[j] = 0
				}
				count++
			}
		}
	}
	return fmt.Sprintf("%d", count)
}

func refFib() string {
	var fib func(n int32) int32
	fib = func(n int32) int32 {
		if n < 2 {
			return n
		}
		return fib(n-1) + fib(n-2)
	}
	return fmt.Sprintf("%d", fib(18))
}

func refMatmul() string {
	var A, B, C [256]int32
	seed := int32(3)
	for i := range A {
		A[i] = lcg(&seed) % 50
	}
	for i := range B {
		B[i] = lcg(&seed) % 50
	}
	for i := 0; i < 16; i++ {
		for j := 0; j < 16; j++ {
			s := int32(0)
			for k := 0; k < 16; k++ {
				s += A[i*16+k] * B[k*16+j]
			}
			C[i*16+j] = s
		}
	}
	check := int32(0)
	for i := int32(0); i < 256; i++ {
		check += C[i] * ((i & 3) + 1)
	}
	return fmt.Sprintf("%d", check)
}
