// Package prog holds the benchmark suite: the classic kernels the RISC I
// evaluation used (the EDN benchmarks E, F, H and K, Ackermann, recursive
// quicksort, a puzzle-style subscript kernel, towers of Hanoi) plus sieve,
// recursive Fibonacci and a matrix multiply, all written in Cm so the same
// source compiles for every machine under comparison.
//
// Each benchmark carries a reference implementation in Go (reference.go)
// that computes the expected console output; the integration tests require
// all three compilation targets to reproduce it exactly.
package prog

import "fmt"

// Benchmark is one suite entry.
type Benchmark struct {
	Name string
	EDN  string // the paper-era EDN benchmark tag, when applicable
	Desc string
	// CallHeavy marks the recursion-dominated kernels used by the
	// register-window experiments.
	CallHeavy bool
	Source    string
}

// All returns the suite in its canonical order.
func All() []Benchmark { return suite }

// ByName finds one benchmark.
func ByName(name string) (Benchmark, bool) {
	for _, b := range suite {
		if b.Name == name {
			return b, true
		}
	}
	return Benchmark{}, false
}

// Expected returns the console output the benchmark must produce, computed
// by the Go reference implementation.
func Expected(name string) string {
	ref, ok := references[name]
	if !ok {
		panic(fmt.Sprintf("prog: no reference for %q", name))
	}
	return ref()
}

var suite = []Benchmark{
	{
		Name: "search", EDN: "E",
		Desc: "string search (EDN benchmark E)",
		Source: `
char text[] = "here is a sample text with several sample patterns inside; the sample text sample ends here with one last sample";
char pat[] = "sample";
int search(char *s, char *p, int start) {
	int i; int j;
	i = start;
	while (s[i]) {
		j = 0;
		while (p[j] && s[i + j] == p[j]) j++;
		if (!p[j]) return i;
		i++;
	}
	return -1;
}
int main() {
	int iter; int count; int possum; int at;
	count = 0; possum = 0;
	for (iter = 0; iter < 100; iter++) {
		at = 0;
		for (;;) {
			at = search(text, pat, at);
			if (at < 0) break;
			count++;
			possum += at;
			at++;
		}
	}
	putint(count); putchar(' '); putint(possum);
	return 0;
}`,
	},
	{
		Name: "bittest", EDN: "F",
		Desc: "bit set/clear/test over a bitmap (EDN benchmark F)",
		Source: `
int bits[64];
int seed;
int rnd() {
	seed ^= seed << 13;
	seed ^= seed >> 17;
	seed ^= seed << 5;
	return (seed >> 7) & 2047;
}
int main() {
	int i; int n; int hits;
	seed = 99;
	for (i = 0; i < 64; i++) bits[i] = 0;
	hits = 0;
	for (i = 0; i < 5000; i++) {
		n = rnd();
		if ((bits[n >> 5] >> (n & 31)) & 1) {
			bits[n >> 5] &= ~(1 << (n & 31));
		} else {
			bits[n >> 5] |= 1 << (n & 31);
			hits++;
		}
	}
	n = 0;
	for (i = 0; i < 2048; i++)
		if ((bits[i >> 5] >> (i & 31)) & 1) n++;
	putint(hits); putchar(' '); putint(n);
	return 0;
}`,
	},
	{
		Name: "linklist", EDN: "H",
		Desc: "linked-list insertion and deletion (EDN benchmark H)",
		Source: `
int nextp[600];
int value[600];
int main() {
	int i; int head; int free; int n; int p; int q; int sum;
	// Build an initial chain of 400 nodes, values 0,2,4,...
	head = 0;
	for (i = 0; i < 400; i++) { value[i] = 2 * i; nextp[i] = i + 1; }
	nextp[399] = -1;
	free = 400;
	// Insert 150 odd values in sorted position.
	for (n = 0; n < 150; n++) {
		value[free] = 2 * n + 1;
		p = head; q = -1;
		while (p >= 0 && value[p] < value[free]) { q = p; p = nextp[p]; }
		nextp[free] = p;
		if (q < 0) head = free; else nextp[q] = free;
		free++;
	}
	// Delete every third node.
	p = head; q = -1; i = 0;
	while (p >= 0) {
		if (i == 2) {
			nextp[q] = nextp[p];
			p = nextp[p];
			i = 0;
		} else {
			q = p; p = nextp[p];
			i++;
		}
	}
	sum = 0; n = 0;
	p = head;
	while (p >= 0) { sum += value[p]; n++; p = nextp[p]; }
	putint(n); putchar(' '); putint(sum);
	return 0;
}`,
	},
	{
		Name: "bitmat", EDN: "K",
		Desc: "32x32 bit-matrix transpose and row logic (EDN benchmark K)",
		Source: `
int m[32];
int t[32];
int seed;
int rnd() {
	seed ^= seed << 13;
	seed ^= seed >> 17;
	seed ^= seed << 5;
	return seed;
}
int main() {
	int i; int j; int iter; int check;
	seed = 7;
	for (i = 0; i < 32; i++) m[i] = rnd();
	check = 0;
	for (iter = 0; iter < 20; iter++) {
		for (i = 0; i < 32; i++) t[i] = 0;
		for (i = 0; i < 32; i++)
			for (j = 0; j < 32; j++)
				if ((m[i] >> j) & 1) t[j] |= 1 << i;
		for (i = 0; i < 32; i++) m[i] = t[i] ^ (m[i] >> 1);
		check ^= m[iter & 31];
	}
	putint(check);
	return 0;
}`,
	},
	{
		Name: "acker", CallHeavy: true,
		Desc: "Ackermann(3,4): the procedure-call stress test",
		Source: `
int acker(int m, int n) {
	if (m == 0) return n + 1;
	if (n == 0) return acker(m - 1, 1);
	return acker(m - 1, acker(m, n - 1));
}
int main() { putint(acker(3, 4)); return 0; }`,
	},
	{
		Name: "qsort", CallHeavy: true,
		Desc: "recursive quicksort of 300 pseudo-random integers",
		Source: `
int a[300];
int seed;
int rnd() {
	seed ^= seed << 13;
	seed ^= seed >> 17;
	seed ^= seed << 5;
	return seed & 8191;
}
void quick(int lo, int hi) {
	int i; int j; int pivot; int tmp;
	if (lo >= hi) return;
	i = lo; j = hi;
	pivot = a[(lo + hi) / 2];
	while (i <= j) {
		while (a[i] < pivot) i++;
		while (a[j] > pivot) j--;
		if (i <= j) {
			tmp = a[i]; a[i] = a[j]; a[j] = tmp;
			i++; j--;
		}
	}
	quick(lo, j);
	quick(i, hi);
}
int main() {
	int i; int ok; int sum;
	seed = 12345;
	for (i = 0; i < 300; i++) a[i] = rnd();
	quick(0, 299);
	ok = 1; sum = 0;
	for (i = 0; i < 300; i++) {
		if (i > 0 && a[i - 1] > a[i]) ok = 0;
		sum += a[i] * (i & 7);
	}
	putint(ok); putchar(' '); putint(a[0]); putchar(' ');
	putint(a[299]); putchar(' '); putint(sum);
	return 0;
}`,
	},
	{
		Name: "puzzle",
		Desc: "subscript-heavy piece-fitting kernel (reduced Puzzle variant)",
		Source: `
int board[512];
int piece[8];
int count;
int fit(int p, int pos) {
	int k;
	for (k = 0; k < 8; k++)
		if (((piece[p] >> k) & 1) && board[pos + k]) return 0;
	return 1;
}
void place(int p, int pos) {
	int k;
	for (k = 0; k < 8; k++)
		if ((piece[p] >> k) & 1) board[pos + k] = 1;
}
void remove_(int p, int pos) {
	int k;
	for (k = 0; k < 8; k++)
		if ((piece[p] >> k) & 1) board[pos + k] = 0;
}
int main() {
	int p; int pos; int round;
	piece[0] = 255; piece[1] = 15; piece[2] = 51; piece[3] = 85;
	piece[4] = 165; piece[5] = 195; piece[6] = 60; piece[7] = 90;
	count = 0;
	for (round = 0; round < 5; round++) {
		for (p = 0; p < 8; p++) {
			for (pos = 0; pos + 8 <= 512; pos++) {
				if (fit(p, pos)) {
					place(p, pos);
					count++;
					if ((count & 7) == 0) remove_(p, pos);
				}
			}
		}
		for (pos = 0; pos < 512; pos++)
			if ((pos & 15) == round) board[pos] = 0;
	}
	putint(count);
	return 0;
}`,
	},
	{
		Name: "hanoi", CallHeavy: true,
		Desc: "towers of Hanoi, 14 discs",
		Source: `
int moves;
void hanoi(int n, int from, int to, int via) {
	if (n == 0) return;
	hanoi(n - 1, from, via, to);
	moves++;
	hanoi(n - 1, via, to, from);
}
int main() {
	moves = 0;
	hanoi(14, 1, 3, 2);
	putint(moves);
	return 0;
}`,
	},
	{
		Name: "sieve",
		Desc: "sieve of Eratosthenes (the classic BYTE benchmark), 10 passes",
		Source: `
char flags[8191];
int main() {
	int i; int j; int k; int count; int iter;
	count = 0;
	for (iter = 0; iter < 10; iter++) {
		count = 0;
		for (i = 0; i < 8191; i++) flags[i] = 1;
		for (i = 0; i < 8191; i++) {
			if (flags[i]) {
				k = i + i + 3;
				j = i + k;
				while (j < 8191) { flags[j] = 0; j += k; }
				count++;
			}
		}
	}
	putint(count);
	return 0;
}`,
	},
	{
		Name: "fib", CallHeavy: true,
		Desc: "naive recursive Fibonacci, fib(18)",
		Source: `
int fib(int n) {
	if (n < 2) return n;
	return fib(n - 1) + fib(n - 2);
}
int main() { putint(fib(18)); return 0; }`,
	},
	{
		Name: "queens", CallHeavy: true,
		Desc: "eight queens, all solutions (Stanford suite)",
		Source: `
int rowok[8];
int diag1[15];
int diag2[15];
int solutions;
void place(int col) {
	int row;
	if (col == 8) { solutions++; return; }
	for (row = 0; row < 8; row++) {
		if (!rowok[row] && !diag1[row + col] && !diag2[row - col + 7]) {
			rowok[row] = 1; diag1[row + col] = 1; diag2[row - col + 7] = 1;
			place(col + 1);
			rowok[row] = 0; diag1[row + col] = 0; diag2[row - col + 7] = 0;
		}
	}
}
int main() {
	solutions = 0;
	place(0);
	putint(solutions);
	return 0;
}`,
	},
	{
		Name: "bubble",
		Desc: "bubble sort of 200 pseudo-random integers (Stanford suite)",
		Source: `
int a[200];
int seed;
int rnd() {
	seed ^= seed << 13;
	seed ^= seed >> 17;
	seed ^= seed << 5;
	return seed & 4095;
}
int main() {
	int i; int j; int tmp; int sum;
	seed = 31415;
	for (i = 0; i < 200; i++) a[i] = rnd();
	for (i = 0; i < 199; i++) {
		for (j = 0; j < 199 - i; j++) {
			if (a[j] > a[j + 1]) {
				tmp = a[j]; a[j] = a[j + 1]; a[j + 1] = tmp;
			}
		}
	}
	sum = 0;
	for (i = 0; i < 200; i++) {
		if (i > 0 && a[i - 1] > a[i]) { putint(-1); return 0; }
		sum += a[i] * (i & 3);
	}
	putint(a[0]); putchar(' '); putint(a[199]); putchar(' '); putint(sum);
	return 0;
}`,
	},
	{
		Name: "matmul",
		Desc: "16x16 integer matrix multiply (software multiply on RISC I)",
		Source: `
int A[256];
int B[256];
int C[256];
int seed;
int rnd() {
	seed = (seed * 1103515245 + 12345) & 0x7fffffff;
	return seed % 50;
}
int main() {
	int i; int j; int k; int s; int check;
	seed = 3;
	for (i = 0; i < 256; i++) A[i] = rnd();
	for (i = 0; i < 256; i++) B[i] = rnd();
	for (i = 0; i < 16; i++) {
		for (j = 0; j < 16; j++) {
			s = 0;
			for (k = 0; k < 16; k++)
				s += A[i * 16 + k] * B[k * 16 + j];
			C[i * 16 + j] = s;
		}
	}
	check = 0;
	for (i = 0; i < 256; i++) check += C[i] * ((i & 3) + 1);
	putint(check);
	return 0;
}`,
	},
}
