package regwin

import (
	"math/rand"
	"testing"

	"risc1/internal/isa"
)

func TestPaperConfiguration(t *testing.T) {
	f := New(DefaultWindows)
	if f.TotalPhys() != 138 {
		t.Fatalf("8 windows give %d physical registers, want the paper's 138", f.TotalPhys())
	}
	if f.Windows() != 8 {
		t.Fatalf("Windows() = %d", f.Windows())
	}
}

func TestMinimumWindows(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("New(2) did not panic")
		}
	}()
	New(2)
}

func TestR0ReadsZero(t *testing.T) {
	f := New(4)
	f.Set(0, 123)
	if f.Get(0) != 0 {
		t.Error("r0 did not read as zero after write")
	}
	f.Set(5, 7)
	if f.Get(5) != 7 {
		t.Error("global write lost")
	}
}

func TestPhysIndexPanicsOnR0(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("PhysIndex(_, 0) did not panic")
		}
	}()
	New(4).PhysIndex(0, 0)
}

// TestOverlap verifies the paper's central mechanism: the caller's LOW
// registers are physically the callee's HIGH registers.
func TestOverlap(t *testing.T) {
	f := New(8)
	for i := 0; i < 6; i++ {
		f.Set(uint8(isa.FirstLow+i), uint32(100+i)) // caller outgoing args
	}
	f.PushWindow()
	for i := 0; i < 6; i++ {
		r := uint8(isa.FirstHigh + i)
		if got := f.Get(r); got != uint32(100+i) {
			t.Errorf("callee r%d = %d, want %d (caller's r%d)", r, got, 100+i, isa.FirstLow+i)
		}
	}
	// Callee's reply travels back the same way.
	f.Set(isa.FirstHigh, 999)
	f.PopWindow()
	if got := f.Get(isa.FirstLow); got != 999 {
		t.Errorf("caller r10 after return = %d, want 999", got)
	}
}

func TestOverlapPhysIndices(t *testing.T) {
	f := New(8)
	for w := 0; w < 20; w++ {
		for i := 0; i < isa.OverlapRegs; i++ {
			callerLow := f.PhysIndex(w, uint8(isa.FirstLow+i))
			calleeHigh := f.PhysIndex(w+1, uint8(isa.FirstHigh+i))
			if callerLow != calleeHigh {
				t.Fatalf("window %d: phys(LOW+%d)=%d but callee phys(HIGH+%d)=%d",
					w, i, callerLow, i, calleeHigh)
			}
		}
		// LOCAL registers are private: no sharing with either neighbour.
		for i := 0; i < 10; i++ {
			p := f.PhysIndex(w, uint8(isa.FirstLocal+i))
			for j := 0; j < isa.OverlapRegs; j++ {
				if p == f.PhysIndex(w+1, uint8(isa.FirstHigh+j)) ||
					p == f.PhysIndex(w-1, uint8(isa.FirstLow+j)) {
					t.Fatalf("window %d LOCAL+%d shared with a neighbour", w, i)
				}
			}
		}
	}
}

func TestGlobalsSharedAcrossWindows(t *testing.T) {
	f := New(4)
	f.Set(3, 42)
	f.PushWindow()
	if f.Get(3) != 42 {
		t.Error("global not visible in callee window")
	}
	f.Set(3, 43)
	f.PopWindow()
	if f.Get(3) != 43 {
		t.Error("global write in callee not visible to caller")
	}
}

func TestSpillThreshold(t *testing.T) {
	const n = 5
	f := New(n)
	// N windows support N-1 resident activations: pushes 1..N-2 are free.
	for i := 0; i < n-2; i++ {
		if f.NeedSpill() {
			t.Fatalf("NeedSpill at depth %d of %d windows", i, n)
		}
		f.PushWindow()
	}
	if !f.NeedSpill() {
		t.Fatalf("no NeedSpill at depth %d of %d windows", n-2, n)
	}
	if f.Resident() != n-1 {
		t.Fatalf("Resident() = %d, want %d", f.Resident(), n-1)
	}
}

func TestPushWithoutSpillPanics(t *testing.T) {
	f := New(3)
	f.PushWindow()
	defer func() {
		if recover() == nil {
			t.Error("PushWindow past capacity did not panic")
		}
	}()
	f.PushWindow()
}

func TestPopWithoutFillPanics(t *testing.T) {
	f := New(3)
	defer func() {
		if recover() == nil {
			t.Error("PopWindow below window 0 did not panic")
		}
	}()
	f.PopWindow()
}

func TestSpillFillPanics(t *testing.T) {
	f := New(3)
	func() {
		defer func() { recover() }()
		f.SpillOldest()
		t.Error("SpillOldest with one resident window did not panic")
	}()
	func() {
		defer func() { recover() }()
		f.FillNewest(WindowSave{})
		t.Error("FillNewest with nothing spilled did not panic")
	}()
}

// driver wraps File with the software save-stack discipline the CPU's trap
// handler uses, so tests can run unbounded call depth.
type driver struct {
	f     *File
	stack []WindowSave
}

func (d *driver) call() {
	if d.f.NeedSpill() {
		d.stack = append(d.stack, d.f.SpillOldest())
	}
	d.f.PushWindow()
}

func (d *driver) ret() {
	if d.f.NeedFill() {
		d.f.FillNewest(d.stack[len(d.stack)-1])
		d.stack = d.stack[:len(d.stack)-1]
	}
	d.f.PopWindow()
}

// TestDeepRecursionPreservesFrames is the core correctness property: under a
// random call/return walk with random register writes, every window's
// private registers and the caller/callee shared registers behave exactly
// like an infinite stack of frames.
func TestDeepRecursionPreservesFrames(t *testing.T) {
	for _, n := range []int{3, 4, 5, 8, 16} {
		r := rand.New(rand.NewSource(int64(n)))
		f := New(n)
		d := &driver{f: f}

		// frame models the visible r10..r31 of one activation. A register
		// only has a modelled value once written (or inherited through the
		// overlap): hardware does not clear fresh windows, so unwritten
		// locals legitimately read stale values.
		type frame struct {
			val     [22]uint32
			defined [22]bool
		}
		frames := []*frame{{}}
		globals := [10]uint32{}

		writeVisible := func(reg uint8, v uint32) {
			f.Set(reg, v)
			cur := frames[len(frames)-1]
			switch {
			case reg == 0:
			case reg < 10:
				globals[reg] = v
			default:
				cur.val[reg-10] = v
				cur.defined[reg-10] = true
				if reg >= uint8(isa.FirstHigh) && len(frames) > 1 {
					// HIGH aliases the caller's LOW.
					parent := frames[len(frames)-2]
					parent.val[reg-uint8(isa.FirstHigh)] = v
					parent.defined[reg-uint8(isa.FirstHigh)] = true
				}
			}
		}
		checkAll := func(step int) {
			cur := frames[len(frames)-1]
			for reg := uint8(1); reg < 32; reg++ {
				var want uint32
				if reg < 10 {
					want = globals[reg]
				} else if cur.defined[reg-10] {
					want = cur.val[reg-10]
				} else {
					continue // unwritten: value is unspecified
				}
				if got := f.Get(reg); got != want {
					t.Fatalf("n=%d step %d depth %d: r%d = %d, want %d",
						n, step, len(frames)-1, reg, got, want)
				}
			}
		}

		for step := 0; step < 4000; step++ {
			switch op := r.Intn(10); {
			case op < 4: // call
				// Model: push child frame; child HIGH := parent LOW.
				parent := frames[len(frames)-1]
				child := &frame{}
				copy(child.val[isa.FirstHigh-10:], parent.val[:isa.OverlapRegs])
				copy(child.defined[isa.FirstHigh-10:], parent.defined[:isa.OverlapRegs])
				frames = append(frames, child)
				d.call()
			case op < 7 && len(frames) > 1: // return
				// Model: pop; parent LOW := child HIGH.
				child := frames[len(frames)-1]
				frames = frames[:len(frames)-1]
				parent := frames[len(frames)-1]
				copy(parent.val[:isa.OverlapRegs], child.val[isa.FirstHigh-10:])
				copy(parent.defined[:isa.OverlapRegs], child.defined[isa.FirstHigh-10:])
				d.ret()
			default: // random write
				writeVisible(uint8(r.Intn(32)), r.Uint32())
			}
			checkAll(step)
		}
	}
}

func TestSpillRateMatchesDepthWalk(t *testing.T) {
	// A straight descent of depth D with N windows spills exactly
	// D - (N-2) windows and fills the same number on the way back.
	const n, depth = 8, 20
	f := New(n)
	d := &driver{f: f}
	for i := 0; i < depth; i++ {
		d.call()
	}
	wantSpills := depth - (n - 2)
	if len(d.stack) != wantSpills {
		t.Fatalf("spilled %d windows, want %d", len(d.stack), wantSpills)
	}
	for i := 0; i < depth; i++ {
		d.ret()
	}
	if len(d.stack) != 0 {
		t.Fatalf("%d windows still spilled after full unwind", len(d.stack))
	}
	if f.CWP() != 0 {
		t.Fatalf("CWP = %d after unwind", f.CWP())
	}
}

func TestGetInInspectsOtherWindows(t *testing.T) {
	f := New(8)
	f.Set(16, 111) // caller local
	f.PushWindow()
	f.Set(16, 222) // callee local, same visible name
	if got := f.GetIn(f.CWP()-1, 16); got != 111 {
		t.Errorf("caller's r16 via GetIn = %d, want 111", got)
	}
	if got := f.GetIn(f.CWP(), 16); got != 222 {
		t.Errorf("current r16 via GetIn = %d, want 222", got)
	}
	if f.GetIn(f.CWP(), 0) != 0 {
		t.Error("GetIn r0 not zero")
	}
	f.Set(4, 9)
	if f.GetIn(f.CWP()-1, 4) != 9 {
		t.Error("globals must be visible from every window")
	}
}

func TestReset(t *testing.T) {
	f := New(4)
	f.Set(17, 9)
	f.PushWindow()
	f.Reset()
	if f.CWP() != 0 || f.Get(17) != 0 || f.Spilled() != 0 {
		t.Error("Reset did not restore power-on state")
	}
}

func TestSaveBytes(t *testing.T) {
	if SaveBytes != 64 {
		t.Fatalf("SaveBytes = %d, want 64 (16 registers)", SaveBytes)
	}
}
