// Package regwin implements the overlapping register windows that are the
// architectural heart of RISC I.
//
// A procedure sees 32 registers: r0–r9 are global (r0 reads as zero), and
// r10–r31 are a window into a large physical file. On CALL the window slides
// down by 16 registers so that the caller's outgoing-parameter registers
// (LOW, r10–r15) become the callee's incoming-parameter registers (HIGH,
// r26–r31) with no data movement. With N hardware windows the file holds
// 10 + 16·N physical registers — the paper's configuration is N = 8, giving
// the famous 138 — and N−1 procedure activations can be resident at once.
// Deeper call chains spill the oldest window to memory (overflow trap) and
// reload it on the way back up (underflow trap); packages core and exp count
// those events for the window-sizing experiment.
package regwin

import (
	"fmt"

	"risc1/internal/isa"
)

// DefaultWindows is the paper's hardware configuration: 8 windows,
// 138 physical registers.
const DefaultWindows = 8

// WindowSave is the register image moved by one spill or fill: the LOCAL
// registers (r16–r25) and HIGH registers (r26–r31) of one window — 16 words.
// A window's LOW registers are its callee's HIGH and travel with the
// callee's save image; this is exactly the discipline later adopted by
// SPARC, RISC I's direct descendant. Saving LOW+LOCAL instead would let an
// overflowing call overwrite the oldest window's incoming parameters before
// they reach memory.
type WindowSave [isa.WindowRegs]uint32

// SaveBytes is the memory cost of one spill or fill in bytes.
const SaveBytes = isa.WindowRegs * 4

// File is a windowed register file. The zero value is not usable; call New.
//
// Window positions are tracked as unbounded logical indices (0 at reset,
// +1 per call, −1 per return); the physical slot of logical window w is
// w mod N. The invariant maintained between spilled and cwp is
// cwp − spilled ≤ N−2: trying to push past that must first SpillOldest, and
// popping below spilled must first FillNewest.
type File struct {
	n       int
	phys    []uint32
	cwp     int // logical index of the current window
	spilled int // logical index of the oldest resident window

	// curBase and prevBase cache physBase(cwp) and physBase(cwp-1). Get and
	// Set sit on the simulator's hot path, and physBase needs a modulo; the
	// bases only change on push/pop/reset, so they are maintained there.
	curBase  int
	prevBase int
}

// New returns a register file with the given number of hardware windows.
// The minimum is 3: the current window, one window of overlap slack, and one
// window that can be spilled while the other two stay addressable.
func New(windows int) *File {
	if windows < 3 {
		panic(fmt.Sprintf("regwin: need at least 3 windows, got %d", windows))
	}
	f := &File{
		n:    windows,
		phys: make([]uint32, isa.NumGlobalRegs+isa.WindowRegs*windows),
	}
	f.rebase()
	return f
}

// rebase recomputes the cached window bases after cwp changes.
func (f *File) rebase() {
	f.curBase = f.physBase(f.cwp)
	f.prevBase = f.physBase(f.cwp - 1)
}

// Windows returns the number of hardware windows N.
func (f *File) Windows() int { return f.n }

// TotalPhys returns the number of physical registers (10 + 16·N).
func (f *File) TotalPhys() int { return len(f.phys) }

// CWP returns the logical index of the current window.
func (f *File) CWP() int { return f.cwp }

// Resident returns how many windows are currently held in hardware.
func (f *File) Resident() int { return f.cwp - f.spilled + 1 }

// Spilled returns the logical index of the oldest resident window.
func (f *File) Spilled() int { return f.spilled }

func floorMod(a, n int) int {
	m := a % n
	if m < 0 {
		m += n
	}
	return m
}

// physBase returns the physical index of logical window w's r10 slot.
func (f *File) physBase(w int) int {
	return isa.NumGlobalRegs + isa.WindowRegs*floorMod(w, f.n)
}

// PhysIndex maps (logical window, visible register) to a physical register
// index. Exposed for tests and visualization; r must be 1..31 (r0 has no
// physical home).
func (f *File) PhysIndex(window int, r uint8) int {
	switch {
	case r == 0 || r > 31:
		panic(fmt.Sprintf("regwin: r%d has no physical index", r))
	case r < isa.NumGlobalRegs:
		return int(r)
	case r < isa.FirstHigh: // LOW and LOCAL
		return f.physBase(window) + int(r) - isa.FirstLow
	default: // HIGH: shared with the caller's LOW
		return f.physBase(window-1) + int(r) - isa.FirstHigh
	}
}

// Get reads visible register r in the current window. r0 reads as zero.
// This is the simulator's single hottest function, so it indexes through
// the cached bases rather than PhysIndex.
func (f *File) Get(r uint8) uint32 {
	switch {
	case r == 0:
		return 0
	case r < isa.NumGlobalRegs:
		return f.phys[r]
	case r < isa.FirstHigh: // LOW and LOCAL
		return f.phys[f.curBase+int(r)-isa.FirstLow]
	default: // HIGH: shared with the caller's LOW
		return f.phys[f.prevBase+int(r)-isa.FirstHigh]
	}
}

// Set writes visible register r in the current window. Writes to r0 are
// discarded, as on the hardware.
func (f *File) Set(r uint8, v uint32) {
	switch {
	case r == 0:
	case r < isa.NumGlobalRegs:
		f.phys[r] = v
	case r < isa.FirstHigh:
		f.phys[f.curBase+int(r)-isa.FirstLow] = v
	default:
		f.phys[f.prevBase+int(r)-isa.FirstHigh] = v
	}
}

// GetIn reads register r as seen from an explicit logical window. Used by
// trap handlers and debuggers to inspect callers.
func (f *File) GetIn(window int, r uint8) uint32 {
	if r == 0 {
		return 0
	}
	return f.phys[f.PhysIndex(window, r)]
}

// NeedSpill reports whether a call (PushWindow) would exceed hardware
// capacity and therefore must SpillOldest first.
func (f *File) NeedSpill() bool { return f.cwp+1-f.spilled > f.n-2 }

// PushWindow slides into a new window (procedure call). The caller must
// resolve NeedSpill first; pushing into occupied hardware panics because it
// would silently corrupt a resident window.
func (f *File) PushWindow() {
	if f.NeedSpill() {
		panic("regwin: window overflow not handled before PushWindow")
	}
	f.cwp++
	f.prevBase = f.curBase
	f.curBase = f.physBase(f.cwp)
}

// NeedFill reports whether a return (PopWindow) would land in a window that
// has been spilled to memory and therefore must FillNewest first.
func (f *File) NeedFill() bool { return f.cwp-1 < f.spilled }

// PopWindow slides back to the caller's window (procedure return).
func (f *File) PopWindow() {
	if f.NeedFill() {
		panic("regwin: window underflow not handled before PopWindow")
	}
	f.cwp--
	f.curBase = f.prevBase
	f.prevBase = f.physBase(f.cwp - 1)
}

// numLocal is the count of LOCAL registers (r16–r25) in a save image.
const numLocal = isa.FirstHigh - isa.FirstLocal

// SpillOldest removes the oldest resident window from hardware and returns
// its 16-register image (LOCALs then HIGHs) for the trap handler to write to
// the register-save stack.
func (f *File) SpillOldest() WindowSave {
	if f.spilled >= f.cwp {
		panic("regwin: nothing to spill")
	}
	var save WindowSave
	w := f.spilled
	localBase := f.physBase(w) + (isa.FirstLocal - isa.FirstLow)
	copy(save[:numLocal], f.phys[localBase:localBase+numLocal])
	highBase := f.physBase(w - 1)
	copy(save[numLocal:], f.phys[highBase:highBase+isa.OverlapRegs])
	f.spilled++
	return save
}

// FillNewest restores the most recently spilled window image into hardware;
// the inverse of SpillOldest.
func (f *File) FillNewest(save WindowSave) {
	if f.spilled == 0 {
		panic("regwin: nothing to fill")
	}
	if f.cwp-f.spilled+2 > f.n-1 {
		panic("regwin: no hardware room to fill into")
	}
	f.spilled--
	w := f.spilled
	localBase := f.physBase(w) + (isa.FirstLocal - isa.FirstLow)
	copy(f.phys[localBase:localBase+numLocal], save[:numLocal])
	highBase := f.physBase(w - 1)
	copy(f.phys[highBase:highBase+isa.OverlapRegs], save[numLocal:])
}

// Reset returns the file to power-on state: window 0 current, all registers
// zero.
func (f *File) Reset() {
	for i := range f.phys {
		f.phys[i] = 0
	}
	f.cwp, f.spilled = 0, 0
	f.rebase()
}
