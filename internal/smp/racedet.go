package smp

import (
	"fmt"

	"risc1/internal/mem"
)

// Race detection. The detector is a hybrid of Eraser's lockset discipline
// and a fork/join happens-before order, both at the granularity this
// machine actually has:
//
//   - Lockset: every shadow word remembers the set of lock-page locks held
//     at its last write (and last read). Two conflicting accesses from
//     different cores race only if the intersection of their locksets is
//     empty — accesses serialized by a common lock never race, no matter
//     how the scheduler interleaves them.
//   - Happens-before: a core is a serial execution resource, so "thread" =
//     (core, launch epoch). spawn hands the child everything the spawner
//     has done; a join-page poll that observes completion hands the joiner
//     everything the worker did. This kills Eraser's classic false
//     positive — the unlocked read of a result after join() — without
//     giving up the lockset's schedule-independence for the rest.
//
// An access pair is reported as a race when the accesses come from
// different cores, at least one is a write, neither happens-before the
// other, and their locksets are disjoint. Because the lockset test is
// schedule-independent, a racy kernel is flagged even when this run's
// deterministic interleaving happened to dodge the bad outcome.
//
// The detector runs with the step engine forced (Config.Race does this), so
// every access is attributed to the exact program counter executing it; the
// engines are observationally identical per instruction retired, so forcing
// step changes nothing about the interleaving being checked.

// RaceAccess is one side of a reported race.
type RaceAccess struct {
	Core  int    `json:"core"`
	PC    uint32 `json:"pc"`
	Line  int    `json:"line,omitempty"` // source line via the image line table
	Write bool   `json:"write"`
}

func (a RaceAccess) String() string {
	kind := "read"
	if a.Write {
		kind = "write"
	}
	if a.Line > 0 {
		return fmt.Sprintf("%s by core %d at %#08x (line %d)", kind, a.Core, a.PC, a.Line)
	}
	return fmt.Sprintf("%s by core %d at %#08x", kind, a.Core, a.PC)
}

// Race is a pair of unsynchronized conflicting accesses to one word.
type Race struct {
	Addr uint32     `json:"addr"` // word address (4-byte aligned)
	Prev RaceAccess `json:"prev"`
	Curr RaceAccess `json:"curr"`
}

func (r Race) String() string {
	return fmt.Sprintf("data race at %#08x: %s vs %s", r.Addr, r.Prev, r.Curr)
}

// raceLimit caps reported races; one report per word keeps the list useful,
// the cap keeps a pathological guest from growing it without bound.
const raceLimit = 64

// shadowWord is the per-word shadow state.
type shadowWord struct {
	wCore  int32  // last writer core (-1: never written)
	wPC    uint32 // last write PC
	wClock uint32 // writer's epoch at the write
	wLocks uint64 // locks held at the write
	rCore  int32  // last reader core since the last write (-1: none)
	rPC    uint32
	rClock uint32
	rLocks uint64
	done   bool // a race was already reported for this word
}

// raceDetector implements mem.AccessObserver over the machine's shared
// memory. It is single-goroutine by construction, like the machine itself.
type raceDetector struct {
	m     *Machine
	cur   int // core currently executing a quantum
	held  []uint64
	clock []uint32   // epoch of the thread currently on each core
	vc    [][]uint32 // vc[c][j]: epoch of core j whose effects core c has observed
	words map[uint32]*shadowWord
	races []Race
}

var _ mem.AccessObserver = (*raceDetector)(nil)

func newRaceDetector(m *Machine) *raceDetector {
	n := len(m.cores)
	d := &raceDetector{
		m:     m,
		held:  make([]uint64, n),
		clock: make([]uint32, n),
		vc:    make([][]uint32, n),
		words: make(map[uint32]*shadowWord),
	}
	for i := range d.vc {
		d.vc[i] = make([]uint32, n)
		// Epochs start at 1 so a pre-spawn write by the boot core is not
		// vacuously ordered before everything (vc entries start at 0).
		d.clock[i] = 1
		d.vc[i][i] = 1
	}
	return d
}

// onSpawn records the fork edge spawner→worker: the worker starts a new
// epoch knowing everything the spawner knew, and the spawner's subsequent
// accesses become concurrent with the child.
func (d *raceDetector) onSpawn(spawner, worker int) {
	d.clock[worker]++
	copy(d.vc[worker], d.vc[spawner])
	d.vc[worker][worker] = d.clock[worker]
	d.vc[worker][spawner] = d.clock[spawner]
	d.clock[spawner]++
	d.vc[spawner][spawner] = d.clock[spawner]
	d.held[worker] = 0
}

// ObserveJoinDone records the join edge worker→joiner when a join poll
// observes completion. Polls are idempotent, so re-observing is free.
func (d *raceDetector) ObserveJoinDone(h uint32) {
	w := int(h)
	if w >= len(d.clock) || w == d.cur {
		return
	}
	c := d.cur
	for j := range d.vc[c] {
		if d.vc[w][j] > d.vc[c][j] {
			d.vc[c][j] = d.vc[w][j]
		}
	}
	if d.clock[w] > d.vc[c][w] {
		d.vc[c][w] = d.clock[w]
	}
}

// ObserveLock tracks the current core's held set. A release clears the bit
// on every core: a guest that unlocks another core's lock is broken, but
// the shadow set should still follow the architectural lock word.
func (d *raceDetector) ObserveLock(idx int, acquired bool) {
	bit := uint64(1) << uint(idx)
	if acquired {
		d.held[d.cur] |= bit
		return
	}
	for i := range d.held {
		d.held[i] &^= bit
	}
}

// ordered reports whether everything core w did up to epoch wClock
// happens-before the current point on core c.
func (d *raceDetector) ordered(c, w int, wClock uint32) bool {
	return d.vc[c][w] >= wClock
}

func (d *raceDetector) access(addr uint32, size int, write bool) {
	c := d.cur
	pc := d.m.cores[c].PC()
	locks := d.held[c]
	// Word granularity: narrower accesses shadow the word they live in; an
	// aligned access never straddles words.
	w := addr &^ 3
	sw := d.words[w]
	if sw == nil {
		sw = &shadowWord{wCore: -1, rCore: -1}
		d.words[w] = sw
	}
	if !sw.done {
		if sw.wCore >= 0 && int(sw.wCore) != c &&
			!d.ordered(c, int(sw.wCore), sw.wClock) && sw.wLocks&locks == 0 {
			d.report(w, RaceAccess{Core: int(sw.wCore), PC: sw.wPC, Write: true},
				RaceAccess{Core: c, PC: pc, Write: write}, sw)
		} else if write && sw.rCore >= 0 && int(sw.rCore) != c &&
			!d.ordered(c, int(sw.rCore), sw.rClock) && sw.rLocks&locks == 0 {
			d.report(w, RaceAccess{Core: int(sw.rCore), PC: sw.rPC, Write: false},
				RaceAccess{Core: c, PC: pc, Write: write}, sw)
		}
	}
	if write {
		sw.wCore, sw.wPC, sw.wClock, sw.wLocks = int32(c), pc, d.clock[c], locks
		sw.rCore = -1
	} else {
		sw.rCore, sw.rPC, sw.rClock, sw.rLocks = int32(c), pc, d.clock[c], locks
	}
}

func (d *raceDetector) report(addr uint32, prev, curr RaceAccess, sw *shadowWord) {
	sw.done = true
	if len(d.races) >= raceLimit {
		return
	}
	if img := d.m.img; img != nil {
		prev.Line = img.LineFor(prev.PC)
		curr.Line = img.LineFor(curr.PC)
	}
	d.races = append(d.races, Race{Addr: addr, Prev: prev, Curr: curr})
}

func (d *raceDetector) ObserveLoad(addr uint32, size int)  { d.access(addr, size, false) }
func (d *raceDetector) ObserveStore(addr uint32, size int) { d.access(addr, size, true) }
