// Package smp simulates a shared-memory multiprocessor of RISC I cores: N
// windowed cores executing one program image against a single mem image,
// scheduled round-robin in fixed instruction quanta on one goroutine.
//
// Determinism is the organizing principle. The engines (step, block, trace)
// are observationally identical per instruction retired, so slicing each
// core's execution into quanta and interleaving the slices yields one
// canonical global instruction order — the same order every run, under every
// engine tier. Atomicity of the test-and-set lock page (mem.LockBase) falls
// out of the same property: cores never interleave mid-instruction.
//
// The interconnect cost model is deliberately simple, in the spirit of the
// paper's memory-traffic accounting (E5): every core has a private
// instruction path (the shared predecode cache standing in for a per-core
// instruction cache), but data accesses arbitrate for one shared port.
// Within a scheduling round where m > 1 cores are active, each active core
// is charged one arbitration cycle per data word the *other* active cores
// moved. Contention cycles are tracked beside the architectural cycle
// counters — never added to them — so a core's stats stay bit-identical to a
// single-core run of the same instruction stream; the machine's elapsed time
// is max over cores of (cycles + contention).
package smp

import (
	"context"
	"errors"
	"fmt"

	"risc1/internal/asm"
	"risc1/internal/core"
)

// Limits and defaults.
const (
	// MaxCores bounds a machine: join handles live in a 16-word device
	// page, and the experiments stop at 8.
	MaxCores = 16

	// DefaultWorkerStackBytes is each worker core's private data stack.
	DefaultWorkerStackBytes = 64 << 10
)

// Typed configuration errors, mirroring the core.EngineInvalid pattern:
// parse/API boundaries reject bad values outright rather than coercing.
var (
	// ErrBadCores rejects a core count outside [1, MaxCores].
	ErrBadCores = errors.New("smp: cores must be between 1 and 16")
	// ErrWindowedOnly rejects a multi-core machine on a non-windowed
	// target: the spawn/join runtime is compiled for register windows.
	ErrWindowedOnly = errors.New("smp: multi-core requires the windowed risc target")
)

// ValidCores reports whether n is a legal core count.
func ValidCores(n int) bool { return n >= 1 && n <= MaxCores }

// Config describes an SMP machine.
type Config struct {
	// Cores is the number of cores N (1..MaxCores).
	Cores int
	// Quantum is the instructions each core runs per scheduling round
	// (default core.RunBatchSize, which preserves single-core engine
	// batching exactly).
	Quantum int
	// WorkerStackBytes sizes each worker core's private data stack
	// (default 64 KiB).
	WorkerStackBytes int
	// Core configures every core (engine, windows, MaxCycles...). Flat
	// must be false when Cores > 1. When Core.MemSize is zero and
	// Cores > 1, memory is sized so core 0 keeps the same stack and heap
	// room a single-core machine would have.
	Core core.Config
	// Race enables the dynamic race detector (see racedet.go). It forces
	// the step engine so every access is attributed to its exact PC; the
	// engines are observationally identical per instruction retired, so
	// the interleaving being checked is unchanged.
	Race bool
}

// CoreStats is one core's share of a run.
type CoreStats struct {
	Instructions     uint64 `json:"instructions"`
	Cycles           uint64 `json:"cycles"`
	ContentionCycles uint64 `json:"contention_cycles"`
	DataReadBytes    uint64 `json:"data_read_bytes"`
	DataWriteBytes   uint64 `json:"data_write_bytes"`
	Launches         uint64 `json:"launches"` // times this core was (re)launched
}

// CoreError is a fault attributed to one core of an SMP run.
type CoreError struct {
	Core int
	Err  error
}

func (e *CoreError) Error() string { return fmt.Sprintf("smp: core %d: %v", e.Core, e.Err) }
func (e *CoreError) Unwrap() error { return e.Err }

// Machine is an N-core shared-memory RISC I multiprocessor.
type Machine struct {
	cfg   Config
	cores []*core.CPU
	views []*coreView

	launches   []uint64
	contention []uint64
	readBytes  []uint64
	writeBytes []uint64
	rounds     uint64
	spawns     uint64
	spawnFails uint64

	// img and race back the dynamic race detector when Config.Race is set;
	// the image's line table maps racy PCs back to source lines.
	img  *asm.Image
	race *raceDetector

	// Progress, when non-nil, is called after every scheduling round with
	// the machine-wide instruction total and makespan cycles so far. It
	// runs on the scheduler goroutine; keep it cheap.
	Progress func(instructions, cycles uint64)
}

// coreView is the per-core face the mem SMP control page talks to. Spawn
// state is per-core because a scheduling quantum may split the store-arg/
// store-fn/load-handle sequence across rounds.
type coreView struct {
	m         *Machine
	id        uint32
	spawnArg  uint32
	lastSpawn uint32
}

func (v *coreView) CoreID() uint32      { return v.id }
func (v *coreView) NumCores() uint32    { return uint32(len(v.m.cores)) }
func (v *coreView) SpawnArg(arg uint32) { v.spawnArg = arg }
func (v *coreView) LastSpawn() uint32   { return v.lastSpawn }

func (v *coreView) Spawn(fn uint32) {
	v.lastSpawn = v.m.spawn(fn, v.spawnArg, int(v.id))
}

func (v *coreView) Running(h uint32) uint32 {
	if int(h) >= len(v.m.cores) {
		return 0
	}
	if v.m.cores[h].Halted() {
		return 0
	}
	return 1
}

// New builds an N-core machine executing img. The image loads once into the
// shared memory through core 0; workers share core 0's decoded-code caches,
// so code compiled by any core (and write-watch invalidation) is visible to
// all of them.
func New(img *asm.Image, cfg Config) (*Machine, error) {
	if !ValidCores(cfg.Cores) {
		return nil, ErrBadCores
	}
	if cfg.Cores > 1 && cfg.Core.Flat {
		return nil, ErrWindowedOnly
	}
	if cfg.Quantum <= 0 {
		cfg.Quantum = core.RunBatchSize
	}
	if cfg.WorkerStackBytes <= 0 {
		cfg.WorkerStackBytes = DefaultWorkerStackBytes
	}
	if cfg.Race {
		cfg.Core.Engine = core.EngineStep
	}
	n := cfg.Cores
	saveBytes := cfg.Core.SaveStackBytes
	if saveBytes == 0 {
		saveBytes = 16 << 10 // core.Config's own default
	}
	if n > 1 && cfg.Core.MemSize == 0 {
		// Give core 0 the stack/heap room a single-core machine would
		// have after the extra save regions and worker stacks are carved.
		cfg.Core.MemSize = 1<<20 + (n-1)*(saveBytes+cfg.WorkerStackBytes)
	}

	leader := core.New(cfg.Core)
	if err := leader.Load(img); err != nil {
		return nil, err
	}
	m := &Machine{
		cfg:        cfg,
		cores:      make([]*core.CPU, n),
		views:      make([]*coreView, n),
		launches:   make([]uint64, n),
		contention: make([]uint64, n),
		readBytes:  make([]uint64, n),
		writeBytes: make([]uint64, n),
	}
	m.cores[0] = leader
	for i := range m.views {
		m.views[i] = &coreView{m: m, id: uint32(i), lastSpawn: 0xFFFF_FFFF}
	}
	m.launches[0] = 1
	if cfg.Race {
		m.img = img
		m.race = newRaceDetector(m)
	}
	if n == 1 {
		// Single core: identical layout and (nil-controller) device
		// behavior to a plain core.RunContext run, by construction.
		return m, nil
	}

	// Memory layout, carved from the top of RAM down:
	//   [M-N*S, M)          save-stack regions, core 0 topmost
	//   below, N-1 stacks   worker data stacks, worker 1 topmost
	//   core 0's stack      grows down from below the worker stacks
	top := uint32(leader.Mem.Size())
	s, t := uint32(saveBytes), uint32(cfg.WorkerStackBytes)
	saveFloor := top - uint32(n)*s
	need := uint64(n)*uint64(s) + uint64(n-1)*uint64(t) + 64<<10
	if uint64(leader.Mem.Size()) < need {
		return nil, fmt.Errorf("smp: %d cores need at least %d bytes of memory, have %d",
			n, need, leader.Mem.Size())
	}
	for k := 1; k < n; k++ {
		w := leader.NewWorker()
		w.Partition(top-uint32(k+1)*s, top-uint32(k)*s)
		m.cores[k] = w
	}
	// Core 0 keeps its default save region [M-S, M); its data stack moves
	// below the worker stacks.
	leader.SetReg(core.SPReg, (saveFloor-uint32(n-1)*t)&^7)
	return m, nil
}

// workerSP is worker k's data-stack top.
func (m *Machine) workerSP(k int) uint32 {
	top := uint32(m.cores[0].Mem.Size())
	s := uint32(m.cfg.Core.SaveStackBytes)
	if s == 0 {
		s = 16 << 10
	}
	saveFloor := top - uint32(len(m.cores))*s
	return (saveFloor - uint32(k-1)*uint32(m.cfg.WorkerStackBytes)) &^ 7
}

// spawn launches fn on a parked worker core, returning its index as the
// join handle, or 0xFFFF_FFFF when every worker is busy (the Cm runtime
// then runs fn inline on the calling core).
func (m *Machine) spawn(fn, arg uint32, caller int) uint32 {
	for k := 1; k < len(m.cores); k++ {
		if k == caller || !m.cores[k].Halted() {
			continue
		}
		m.cores[k].Launch(fn, m.workerSP(k), arg)
		// The worker inherits the spawning core's global registers
		// (r1..r8): the ABI anchors established by the startup stub — the
		// Cm global pointer in particular — live only on the boot core
		// otherwise. r9 is the stack pointer, which Launch just aimed at
		// the worker's own stack.
		for r := uint8(1); r < core.SPReg; r++ {
			m.cores[k].Regs.Set(r, m.cores[caller].Regs.Get(r))
		}
		m.launches[k]++
		m.spawns++
		if m.race != nil {
			m.race.onSpawn(caller, k)
		}
		return uint32(k)
	}
	m.spawnFails++
	return 0xFFFF_FFFF
}

// Run executes the machine until core 0 halts, any core faults, or ctx is
// canceled. Workers still running when core 0 halts are abandoned, exactly
// as a real kernel's exit abandons its threads; a program that wants their
// results joins them first. Faults are returned as a *CoreError naming the
// faulting core and wrapping its *core.RunError.
func (m *Machine) Run(ctx context.Context) error {
	mmem := m.cores[0].Mem
	done := ctx.Done()
	if m.race != nil {
		mmem.SetObserver(m.race)
		defer mmem.SetObserver(nil)
	}
	roundData := make([]uint64, len(m.cores))
	for !m.cores[0].Halted() {
		if done != nil {
			select {
			case <-done:
				return &CoreError{Core: 0, Err: ctx.Err()}
			default:
			}
		}
		m.rounds++
		touched := 0
		for i, c := range m.cores {
			roundData[i] = 0
			if c.Halted() {
				continue
			}
			if len(m.cores) > 1 {
				mmem.SetSMP(m.views[i])
			}
			if m.race != nil {
				m.race.cur = i
			}
			r0, w0 := mmem.Reads, mmem.Writes
			_, err := c.RunFor(m.cfg.Quantum)
			dr, dw := mmem.Reads-r0, mmem.Writes-w0
			m.readBytes[i] += dr
			m.writeBytes[i] += dw
			roundData[i] = (dr + dw) / 4
			if roundData[i] > 0 {
				touched++
			}
			if err != nil {
				if len(m.cores) > 1 {
					mmem.SetSMP(nil)
				}
				return &CoreError{Core: i, Err: err}
			}
		}
		if touched > 1 {
			// Arbitration: when more than one core touched memory this
			// round, each of them waits one cycle per data word the other
			// touching cores moved through the shared port.
			var total uint64
			for _, d := range roundData {
				total += d
			}
			for i, d := range roundData {
				if d > 0 {
					m.contention[i] += total - d
				}
			}
		}
		if m.Progress != nil {
			var instrs uint64
			for _, c := range m.cores {
				instrs += c.Instructions()
			}
			m.Progress(instrs, m.Elapsed())
		}
	}
	if len(m.cores) > 1 {
		mmem.SetSMP(nil)
	}
	return nil
}

// Cores returns the number of cores.
func (m *Machine) Cores() int { return len(m.cores) }

// Core exposes core i for inspection (tests, stats).
func (m *Machine) Core(i int) *core.CPU { return m.cores[i] }

// Console returns the shared console output.
func (m *Machine) Console() string { return m.cores[0].Console() }

// Rounds returns how many scheduling rounds the run took.
func (m *Machine) Rounds() uint64 { return m.rounds }

// Spawns returns successful worker launches; SpawnFails the spawns that
// found no parked worker and fell back to an inline call.
func (m *Machine) Spawns() uint64     { return m.spawns }
func (m *Machine) SpawnFails() uint64 { return m.spawnFails }

// Races returns the data races the detector recorded, in discovery order
// (at most one per word, capped at raceLimit). Empty without Config.Race.
func (m *Machine) Races() []Race {
	if m.race == nil {
		return nil
	}
	return m.race.races
}

// CoreStats returns each core's share of the run. On a multi-core machine
// the per-core data-traffic attribution replaces the shared counters a lone
// CPU would report; a single-core machine's stats are untouched.
func (m *Machine) CoreStats() []CoreStats {
	out := make([]CoreStats, len(m.cores))
	for i, c := range m.cores {
		out[i] = CoreStats{
			Instructions:     c.Instructions(),
			Cycles:           c.Cycles(),
			ContentionCycles: m.contention[i],
			DataReadBytes:    m.readBytes[i],
			DataWriteBytes:   m.writeBytes[i],
			Launches:         m.launches[i],
		}
	}
	return out
}

// ContentionCycles sums the arbitration cycles charged across cores.
func (m *Machine) ContentionCycles() uint64 {
	var total uint64
	for _, c := range m.contention {
		total += c
	}
	return total
}

// Elapsed is the machine's wall-clock in cycles: the slowest core's
// architectural cycles plus its arbitration charges.
func (m *Machine) Elapsed() uint64 {
	var max uint64
	for i, c := range m.cores {
		if e := c.Cycles() + m.contention[i]; e > max {
			max = e
		}
	}
	return max
}
