package smp

import (
	"context"
	"reflect"
	"testing"

	"risc1/internal/asm"
	"risc1/internal/cc"
	"risc1/internal/core"
	"risc1/internal/isa"
	"risc1/internal/prog"
)

// A single-core SMP machine must be the single-core machine: quantum
// slicing through RunFor has to retire bit-identical architectural state
// and stats versus one uninterrupted RunContext, for every engine tier,
// across the whole benchmark suite. This is the contract that lets the
// facade route Cores=1 through either path without anyone noticing.
func TestSingleCoreDifferential(t *testing.T) {
	engines := []struct {
		name string
		e    core.Engine
	}{
		{"step", core.EngineStep},
		{"block", core.EngineBlock},
		{"trace", core.EngineTrace},
	}
	for _, b := range prog.All() {
		res, err := cc.Compile(b.Source, cc.Options{Target: cc.RISCWindowed})
		if err != nil {
			t.Fatalf("compile %s: %v", b.Name, err)
		}
		img, err := asm.Assemble(res.Asm)
		if err != nil {
			t.Fatalf("assemble %s: %v", b.Name, err)
		}
		for _, eng := range engines {
			cfg := core.Config{Engine: eng.e}

			oracle := core.New(cfg)
			if err := oracle.Load(img); err != nil {
				t.Fatalf("%s/%s: oracle load: %v", b.Name, eng.name, err)
			}
			oracleErr := oracle.Run()

			m, err := New(img, Config{Cores: 1, Core: cfg})
			if err != nil {
				t.Fatalf("%s/%s: smp new: %v", b.Name, eng.name, err)
			}
			smpErr := m.Run(context.Background())

			if (oracleErr == nil) != (smpErr == nil) {
				t.Fatalf("%s/%s: error mismatch: oracle %v, smp %v",
					b.Name, eng.name, oracleErr, smpErr)
			}
			compareState(t, b.Name+"/"+eng.name, oracle, m.Core(0))
		}
	}
}

// compareState requires identical visible architectural state between two
// cores: PC, halt, flags, window position, all visible registers, console
// output, and the complete statistics block.
func compareState(t *testing.T, label string, want, got *core.CPU) {
	t.Helper()
	if want.PC() != got.PC() {
		t.Fatalf("%s: pc mismatch: %#x vs %#x", label, want.PC(), got.PC())
	}
	if want.Halted() != got.Halted() {
		t.Fatalf("%s: halted mismatch: %v vs %v", label, want.Halted(), got.Halted())
	}
	if want.Flags() != got.Flags() {
		t.Fatalf("%s: flags mismatch: %+v vs %+v", label, want.Flags(), got.Flags())
	}
	if want.CallDepth() != got.CallDepth() {
		t.Fatalf("%s: call depth mismatch: %d vs %d", label, want.CallDepth(), got.CallDepth())
	}
	if want.Regs.CWP() != got.Regs.CWP() {
		t.Fatalf("%s: cwp mismatch: %d vs %d", label, want.Regs.CWP(), got.Regs.CWP())
	}
	for r := 0; r < isa.NumVisibleRegs; r++ {
		if a, b := want.Reg(uint8(r)), got.Reg(uint8(r)); a != b {
			t.Fatalf("%s: r%d mismatch: %#x vs %#x", label, r, a, b)
		}
	}
	if a, b := want.Console(), got.Console(); a != b {
		t.Fatalf("%s: console mismatch: %q vs %q", label, a, b)
	}
	if a, b := want.Stats(), got.Stats(); !reflect.DeepEqual(*a, *b) {
		t.Fatalf("%s: stats mismatch:\noracle: %+v\nsmp:    %+v", label, *a, *b)
	}
}

func TestConfigValidation(t *testing.T) {
	img := compileKernel(t, "psum")
	for _, n := range []int{0, -1, MaxCores + 1} {
		if _, err := New(img, Config{Cores: n}); err != ErrBadCores {
			t.Errorf("Cores=%d: err = %v, want ErrBadCores", n, err)
		}
	}
	flat, err := cc.Compile("int main() { putint(1); return 0; }",
		cc.Options{Target: cc.RISCFlat})
	if err != nil {
		t.Fatal(err)
	}
	fimg, err := asm.Assemble(flat.Asm)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := New(fimg, Config{Cores: 2, Core: core.Config{Flat: true}}); err != ErrWindowedOnly {
		t.Errorf("flat target: err = %v, want ErrWindowedOnly", err)
	}
	if !ValidCores(1) || !ValidCores(MaxCores) || ValidCores(0) || ValidCores(MaxCores+1) {
		t.Error("ValidCores bounds wrong")
	}
}

// The SMP builtins are windowed-only; both other backends must reject them
// with a typed compile error, not generate silently broken code.
func TestBuiltinsRejectedOffTarget(t *testing.T) {
	src := "int main() { int h; h = spawn(main, 0); join(h); return 0; }"
	for _, tgt := range []cc.Target{cc.RISCFlat, cc.CISC} {
		_, err := cc.Compile("void w(int k) {} int main() { join(spawn(w, 0)); return 0; }", cc.Options{Target: tgt})
		var cerr *cc.CompileError
		if err == nil {
			t.Errorf("%v: compile succeeded, want windowed-only error (src %q)", tgt, src)
		} else if !asCompileError(err, &cerr) {
			t.Errorf("%v: err = %T %v, want *cc.CompileError", tgt, err, err)
		}
	}
}

func asCompileError(err error, out **cc.CompileError) bool {
	if e, ok := err.(*cc.CompileError); ok {
		*out = e
		return true
	}
	return false
}
