package smp

import (
	"context"
	"errors"
	"testing"

	"risc1/internal/asm"
	"risc1/internal/cc"
	"risc1/internal/core"
	"risc1/internal/mem"
	"risc1/internal/prog"
)

func compileCm(t *testing.T, src string) *asm.Image {
	t.Helper()
	res, err := cc.Compile(src, cc.Options{Target: cc.RISCWindowed, WideData: true})
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	img, err := asm.Assemble(res.Asm)
	if err != nil {
		t.Fatalf("assemble: %v", err)
	}
	return img
}

// racyCounter increments a shared global from two workers with no lock: the
// canonical data race. Each worker loops long enough that it cannot finish
// inside one scheduling quantum, so the two instances always overlap in
// time — on two cores, or as worker-versus-inline-fallback on the spawning
// core — and the detector must flag the race under every schedule. (A
// single-statement worker can complete before the second spawn fires; the
// second instance then reuses the same core and the two genuinely
// serialize, which is not a race in that execution.)
const racyCounter = `
int counter;
void w(int k) {
  int i;
  i = 0;
  while (i < 200) {
    counter = counter + k;
    i = i + 1;
  }
}
int main() {
  int h1; int h2;
  h1 = spawn(w, 1);
  h2 = spawn(w, 2);
  join(h1);
  join(h2);
  putint(counter);
  return 0;
}
`

func TestRaceDetectorFlagsRacyCounter(t *testing.T) {
	m, err := New(compileCm(t, racyCounter), Config{
		Cores: 4,
		Core:  core.Config{SaveStackBytes: 64 << 10},
		Race:  true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Run(context.Background()); err != nil {
		t.Fatalf("run: %v", err)
	}
	races := m.Races()
	if len(races) == 0 {
		t.Fatal("racy counter kernel reported no races")
	}
	for _, r := range races {
		if r.Prev.Core == r.Curr.Core {
			t.Errorf("race %v pairs two accesses from the same core", r)
		}
		if !r.Prev.Write && !r.Curr.Write {
			t.Errorf("race %v has no write side", r)
		}
		if r.Prev.Line == 0 || r.Curr.Line == 0 {
			t.Errorf("race %v lacks line attribution", r)
		}
	}
}

// TestRaceDetectorCleanKernels is the dynamic half of the two-sided
// contract at this layer: the shipped parallel kernels run race-free, and
// the detector's forced step engine does not disturb their results.
func TestRaceDetectorCleanKernels(t *testing.T) {
	for _, name := range []string{"psum", "pcrunch", "pqsort"} {
		for _, n := range []int{2, 4} {
			img := compileKernel(t, name)
			m, err := New(img, Config{
				Cores: n,
				Core:  core.Config{SaveStackBytes: 64 << 10},
				Race:  true,
			})
			if err != nil {
				t.Fatal(err)
			}
			if err := m.Run(context.Background()); err != nil {
				t.Fatalf("%s on %d cores under race mode: %v", name, n, err)
			}
			if got, want := m.Console(), prog.Expected(name); got != want {
				t.Errorf("%s on %d cores under race mode: console %q, want %q",
					name, n, got, want)
			}
			if races := m.Races(); len(races) != 0 {
				t.Errorf("%s on %d cores: unexpected races: %v", name, n, races)
			}
		}
	}
}

// TestLockReleaseWithoutHoldFaults pins the lock-page semantics: storing 0
// to a lock word that is not held is a defined runtime fault, not a silent
// no-op.
func TestLockReleaseWithoutHoldFaults(t *testing.T) {
	const src = `
int main() {
  unlock(3);
  return 0;
}
`
	m, err := New(compileCm(t, src), Config{
		Cores: 2,
		Core:  core.Config{SaveStackBytes: 64 << 10},
	})
	if err != nil {
		t.Fatal(err)
	}
	err = m.Run(context.Background())
	if err == nil {
		t.Fatal("unlock of an unheld lock did not fault")
	}
	var ce *CoreError
	if !errors.As(err, &ce) || ce.Core != 0 {
		t.Fatalf("fault not attributed to core 0: %v", err)
	}
	var lf *mem.LockFault
	if !errors.As(err, &lf) {
		t.Fatalf("error chain lacks *mem.LockFault: %v", err)
	}
	if lf.Lock != 3 {
		t.Errorf("faulting lock = %d, want 3", lf.Lock)
	}
	// The legal sequence still works: lock then unlock.
	m2, err := New(compileCm(t, "int main() { lock(3); unlock(3); return 0; }"),
		Config{Cores: 2, Core: core.Config{SaveStackBytes: 64 << 10}})
	if err != nil {
		t.Fatal(err)
	}
	if err := m2.Run(context.Background()); err != nil {
		t.Fatalf("lock/unlock pair faulted: %v", err)
	}
}

// spawnFallback exercises the inline-call path: on a two-core machine the
// second spawn finds no parked worker and the runtime calls the fn inline
// on the spawning core. Arguments are skewed so the spawned worker (20
// iterations) finishes quickly while the inlined call (2000 iterations)
// dominates core 0's execution.
const spawnFallback = `
int total;
void w(int n) {
  int i;
  i = 0;
  while (i < n) {
    lock(0);
    total = total + 1;
    unlock(0);
    i = i + 1;
  }
}
int main() {
  int h1; int h2;
  h1 = spawn(w, 20);
  h2 = spawn(w, 2000);
  join(h1);
  join(h2);
  putint(total);
  return 0;
}
`

func TestSpawnFallbackUnderRaceDetector(t *testing.T) {
	m, err := New(compileCm(t, spawnFallback), Config{
		Cores: 2,
		Core:  core.Config{SaveStackBytes: 64 << 10},
		Race:  true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Run(context.Background()); err != nil {
		t.Fatalf("run: %v", err)
	}
	if got := m.Console(); got != "2020" {
		t.Errorf("console = %q, want %q", got, "2020")
	}
	if m.Spawns() != 1 || m.SpawnFails() != 1 {
		t.Errorf("spawns = %d, fails = %d; want 1 and 1", m.Spawns(), m.SpawnFails())
	}
	if races := m.Races(); len(races) != 0 {
		t.Errorf("lock-disciplined fallback kernel reported races: %v", races)
	}
}

// TestSpawnFallbackMaxCyclesMidInline pins MaxCycles accounting across the
// inline fallback: the budget keeps ticking through the inlined body, so a
// limit sized to land inside it aborts there, attributed to the spawning
// core.
func TestSpawnFallbackMaxCyclesMidInline(t *testing.T) {
	m, err := New(compileCm(t, spawnFallback), Config{
		Cores: 2,
		Core:  core.Config{SaveStackBytes: 64 << 10, MaxCycles: 5000},
	})
	if err != nil {
		t.Fatal(err)
	}
	err = m.Run(context.Background())
	if !errors.Is(err, core.ErrMaxCycles) {
		t.Fatalf("err = %v, want cycle-limit fault", err)
	}
	var ce *CoreError
	if !errors.As(err, &ce) || ce.Core != 0 {
		t.Fatalf("cycle limit not attributed to core 0 (the inlining core): %v", err)
	}
	// The spawned worker's 20 iterations finish well under the limit; the
	// only way core 0 can burn 5000 cycles is inside the inlined body.
	if instr := m.Core(0).Instructions(); instr < 1000 {
		t.Errorf("core 0 retired only %d instructions before the limit", instr)
	}
	if m.SpawnFails() != 1 {
		t.Errorf("spawn fallback did not happen: fails = %d", m.SpawnFails())
	}
}

// FuzzRaceDetector drives the detector across schedules: any core count and
// quantum must leave the clean kernels race-free with correct output, and
// must still flag the racy counter on a multi-core machine — the lockset
// verdict is schedule-independent.
func FuzzRaceDetector(f *testing.F) {
	f.Add(uint8(0), uint8(2), uint16(7))
	f.Add(uint8(1), uint8(4), uint16(64))
	f.Add(uint8(2), uint8(3), uint16(1))
	f.Add(uint8(3), uint8(2), uint16(13))
	f.Fuzz(func(t *testing.T, pick, cores uint8, quantum uint16) {
		names := []string{"psum", "pcrunch", "pqsort", "racy"}
		name := names[int(pick)%len(names)]
		n := 1 + int(cores)%8
		q := 1 + int(quantum)%256
		var img *asm.Image
		var want string
		if name == "racy" {
			img = compileCm(t, racyCounter)
		} else {
			img = compileKernel(t, name)
			want = prog.Expected(name)
		}
		m, err := New(img, Config{
			Cores:   n,
			Quantum: q,
			Core:    core.Config{SaveStackBytes: 64 << 10},
			Race:    true,
		})
		if err != nil {
			t.Fatal(err)
		}
		if err := m.Run(context.Background()); err != nil {
			t.Fatalf("%s on %d cores, quantum %d: %v", name, n, q, err)
		}
		if name == "racy" {
			if n > 1 && m.Spawns() > 0 && len(m.Races()) == 0 {
				t.Errorf("racy kernel on %d cores, quantum %d: no races", n, q)
			}
			return
		}
		if got := m.Console(); got != want {
			t.Errorf("%s on %d cores, quantum %d: console %q, want %q", name, n, q, got, want)
		}
		if races := m.Races(); len(races) != 0 {
			t.Errorf("%s on %d cores, quantum %d: races %v", name, n, q, races)
		}
	})
}
