package smp

import (
	"context"
	"errors"
	"runtime"
	"strconv"
	"sync"
	"testing"
	"time"

	"risc1/internal/asm"
	"risc1/internal/core"
	"risc1/internal/prog"
)

// selfModSrc is a cross-core self-modification scenario: the worker spins
// in a tight loop whose body both compiled engines will have cached as a
// block (and the trace tier as a superblock) long before core 0 finishes
// its delay loop and stores a new instruction word over `patchme`. The
// worker's accumulator then tells us exactly which mix of old and new code
// retired. Slices end early at compiled-region boundaries (a trace
// iteration that no longer fits the quantum restarts on a fresh slice), so
// the interleaving — though fully deterministic per tier — is not
// identical across tiers; the accumulator is instead pinned per tier and
// bounded: a stale cached block would leave it at exactly 10000 (all old
// code) and a patch that never raced the loop at exactly 20000.
const selfModSrc = `
main:	add r0,#7,r2
	stl r2,(r0)#-504	; SPAWNARG
	la wloop,r1
	stl r1,(r0)#-500	; SPAWNFN: fires the spawn
	ldl (r0)#-500,r5	; handle
	li #1000,r3
	add r0,#0,r2
delay:	add r2,#1,r2
	cmp r2,r3
	blt delay
	nop
	la newcode,r7		; patch: overwrite the worker's loop body
	ldl (r7)#0,r8
	la patchme,r6
	stl r8,(r6)#0
	sll r5,#2,r6
join:	ldl (r6)#-448,r7	; spin until the worker halts
	cmp r7,#0
	bne join
	nop
	la result,r4
	ldl (r4)#0,r1
	stl r1,(r0)#-252	; putint
	ret r25,#8
	nop

wloop:	add r0,#0,r1		; acc
	add r0,#0,r2		; i
	li #10000,r3
wbody:
patchme:
	add r1,#1,r1		; becomes add r1,#2,r1 when patched
	add r2,#1,r2
	cmp r2,r3
	blt wbody
	nop
	la result,r4
	stl r1,(r4)#0
	ret r25,#8		; link is the halt address
	nop

newcode:
	add r1,#2,r1		; never executed here; core 0 copies the word

	.align 4
result:	.word 0
`

func runSelfMod(t *testing.T, e core.Engine) string {
	t.Helper()
	img := asm.MustAssemble(selfModSrc)
	m, err := New(img, Config{Cores: 2, Core: core.Config{Engine: e}})
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Run(context.Background()); err != nil {
		t.Fatalf("engine %v: %v", e, err)
	}
	return m.Console()
}

// TestSelfModifyingCrossCore drives a store from core 0 into code another
// core has hot in its (shared) block and trace caches. The write-watch
// must invalidate the shared caches so the worker picks up the new
// instruction at the same architectural point the step oracle would.
func TestSelfModifyingCrossCore(t *testing.T) {
	for _, e := range []core.Engine{core.EngineStep, core.EngineBlock, core.EngineTrace} {
		got := runSelfMod(t, e)
		// Both generations of the loop body must actually have run:
		// all-old would read 10000, all-new 20000.
		v, err := strconv.Atoi(got)
		if err != nil {
			t.Fatalf("engine %v: console %q not an int: %v", e, got, err)
		}
		if v <= 10000 || v >= 20000 {
			t.Fatalf("engine %v: accumulator %d: patch did not land mid-run (want 10000 < v < 20000)", e, v)
		}
		// And the interleaving is deterministic: a rerun retires the
		// identical mix.
		if again := runSelfMod(t, e); again != got {
			t.Fatalf("engine %v: nondeterministic: %s then %s", e, got, again)
		}
	}
}

// TestRaceHammer runs many SMP machines concurrently — spawning workers,
// taking locks, and cross-core-patching code — so `go test -race` can
// vet that machines share no hidden mutable state and that the
// single-goroutine scheduler really is single-goroutine.
func TestRaceHammer(t *testing.T) {
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			if g%2 == 0 {
				img := asm.MustAssemble(selfModSrc)
				m, err := New(img, Config{Cores: 2, Core: core.Config{Engine: core.EngineAuto}})
				if err != nil {
					t.Error(err)
					return
				}
				if err := m.Run(context.Background()); err != nil {
					t.Error(err)
				}
				return
			}
			img := compileKernel(t, "psum")
			m, err := New(img, Config{Cores: 4, Core: core.Config{Engine: core.EngineAuto}})
			if err != nil {
				t.Error(err)
				return
			}
			if err := m.Run(context.Background()); err != nil {
				t.Error(err)
				return
			}
			if got, want := m.Console(), prog.Expected("psum"); got != want {
				t.Errorf("psum under hammer: %q, want %q", got, want)
			}
		}(g)
	}
	wg.Wait()
}

// spinSrc never halts: core 0 parks in a branch-to-self while a worker
// spins too, so cancellation is the only way out.
const spinSrc = `
main:	add r0,#7,r2
	stl r2,(r0)#-504
	la wspin,r1
	stl r1,(r0)#-500
	cmp r0,#0
spin:	beq spin
	nop

wspin:	cmp r0,#0
wspin2:	beq wspin2
	nop
`

// TestCancellationNoLeak cancels a run mid-flight and checks both the
// error contract (a CoreError wrapping context.Canceled) and that the
// scheduler leaves no goroutines behind.
func TestCancellationNoLeak(t *testing.T) {
	before := runtime.NumGoroutine()
	img := asm.MustAssemble(spinSrc)
	m, err := New(img, Config{Cores: 2, Core: core.Config{Engine: core.EngineAuto}})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	timer := time.AfterFunc(5*time.Millisecond, cancel)
	defer timer.Stop()
	err = m.Run(ctx)
	var ce *CoreError
	if !errors.As(err, &ce) {
		t.Fatalf("err = %v (%T), want *CoreError", err, err)
	}
	if ce.Core != 0 || !errors.Is(ce.Err, context.Canceled) {
		t.Fatalf("CoreError = %+v, want core 0 / context.Canceled", ce)
	}
	// The run was mid-flight, not a no-op: rounds were executed.
	if m.Rounds() == 0 {
		t.Fatal("cancelled before any rounds ran")
	}
	// Give the AfterFunc goroutine a moment to retire, then compare.
	deadline := time.Now().Add(time.Second)
	for runtime.NumGoroutine() > before && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if after := runtime.NumGoroutine(); after > before {
		t.Fatalf("goroutine leak: %d before, %d after", before, after)
	}
}
