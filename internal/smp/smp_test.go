package smp

import (
	"context"
	"testing"

	"risc1/internal/asm"
	"risc1/internal/cc"
	"risc1/internal/core"
	"risc1/internal/prog"
)

func compileKernel(t *testing.T, name string) *asm.Image {
	t.Helper()
	b, ok := prog.ParallelByName(name)
	if !ok {
		t.Fatalf("no parallel kernel %q", name)
	}
	// WideData: the kernels' arrays push globals past gp-relative range.
	res, err := cc.Compile(b.Source, cc.Options{Target: cc.RISCWindowed, WideData: true})
	if err != nil {
		t.Fatalf("compile %s: %v", name, err)
	}
	img, err := asm.Assemble(res.Asm)
	if err != nil {
		t.Fatalf("assemble %s: %v", name, err)
	}
	return img
}

func runKernel(t *testing.T, name string, cores int, engine core.Engine) *Machine {
	t.Helper()
	img := compileKernel(t, name)
	m, err := New(img, Config{
		Cores: cores,
		Core:  core.Config{SaveStackBytes: 64 << 10, Engine: engine},
	})
	if err != nil {
		t.Fatalf("New(%s, %d cores): %v", name, cores, err)
	}
	if err := m.Run(context.Background()); err != nil {
		t.Fatalf("run %s on %d cores: %v", name, cores, err)
	}
	return m
}

func TestParallelKernels(t *testing.T) {
	for _, name := range []string{"psum", "pcrunch", "pqsort"} {
		want := prog.Expected(name)
		for _, n := range []int{1, 2, 4, 8} {
			m := runKernel(t, name, n, core.EngineAuto)
			if got := m.Console(); got != want {
				t.Errorf("%s on %d cores: console %q, want %q", name, n, got, want)
			}
			if n > 1 && m.Spawns() == 0 {
				t.Errorf("%s on %d cores: no workers spawned", name, n)
			}
		}
	}
}
