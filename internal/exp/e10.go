package exp

import (
	"fmt"

	"risc1/internal/cc"
	"risc1/internal/pipeline"
	"risc1/internal/report"
)

// E10Row compares pipeline organizations for one benchmark.
type E10Row struct {
	Name    string
	Cycles  pipeline.Cycles
	SqSpeed float64 // squashing speedup over sequential
	DlSpeed float64 // delayed speedup over sequential
	DlAdv   float64 // delayed advantage over squashing (fraction)
}

// E10Result is the pipeline-organization ablation.
type E10Result struct {
	Rows  []E10Row
	Table *report.Table
}

// E10PipelineModels reproduces the design argument for delayed jumps: the
// fetch/execute overlap roughly doubles throughput, and resolving the
// branch problem with delayed slots performs within a few percent of
// squashing hardware (either way, depending on the fill rate) — while
// requiring no squash logic at all, which on a 44k-transistor chip is the
// decisive argument.
func E10PipelineModels(l *Lab) (*E10Result, error) {
	res := &E10Result{Table: &report.Table{
		Title: "E10. Pipeline-organization ablation (cycles under three machines)",
		Note:  "(sequential: no overlap; squashing: overlap + bubble per taken branch; delayed: RISC I)",
		Headers: []string{"benchmark", "sequential", "squashing", "delayed",
			"overlap gain", "delayed vs squash"},
	}}
	runs, _ := l.SuiteParallel(cc.RISCWindowed, Options{})
	for _, r := range runs {
		if r.Failed() {
			res.Table.AddRow(r.Bench.Name, "ERR", "ERR", "ERR", "ERR", "ERR")
			continue
		}
		c := pipeline.Analyze(r.Stats)
		sq, dl := c.SpeedupOverSequential()
		row := E10Row{Name: r.Bench.Name, Cycles: c, SqSpeed: sq, DlSpeed: dl,
			DlAdv: c.DelayedAdvantage()}
		res.Rows = append(res.Rows, row)
		res.Table.AddRow(row.Name,
			report.Num(c.Sequential), report.Num(c.Squashing), report.Num(c.Delayed),
			fmt.Sprintf("%.2fx", dl),
			fmt.Sprintf("%+.1f%%", 100*row.DlAdv))
	}
	return res, nil
}
