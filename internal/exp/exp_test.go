package exp

import (
	"strings"
	"testing"

	"risc1/internal/cc"
	"risc1/internal/prog"
)

// sharedLab amortizes simulation across the experiment tests.
var sharedLab = NewLab()

func TestExecuteVerifiesOutput(t *testing.T) {
	b, _ := prog.ByName("fib")
	r, err := Execute(b, cc.RISCWindowed, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if r.Console != prog.Expected("fib") {
		t.Errorf("console %q", r.Console)
	}
	if r.CodeBytes <= 0 || r.Stats.Instructions == 0 || r.Seconds <= 0 {
		t.Errorf("run not populated: %+v", r)
	}
}

func TestLabCaches(t *testing.T) {
	l := NewLab()
	b, _ := prog.ByName("fib")
	r1, err := l.Run(b, cc.RISCWindowed, Options{})
	if err != nil {
		t.Fatal(err)
	}
	r2, err := l.Run(b, cc.RISCWindowed, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if r1 != r2 {
		t.Error("lab did not cache the run")
	}
}

func TestE1MixShape(t *testing.T) {
	res, err := E1InstructionMix(sharedLab)
	if err != nil {
		t.Fatal(err)
	}
	// The paper's motivating observation: ALU + load/store + control
	// covers essentially everything, with plain ADD/loads near the top.
	cats := res.Total.ByCategory
	if cats["alu"] == 0 || cats["load"] == 0 || cats["control"] == 0 {
		t.Fatalf("category mix incomplete: %v", cats)
	}
	mix := res.Total.Mix()
	if len(mix) < 8 {
		t.Fatalf("suspiciously small mix: %d mnemonics", len(mix))
	}
	if mix[0].Pct < 10 {
		t.Errorf("top instruction only %.1f%% — expected a dominant simple op", mix[0].Pct)
	}
	if !strings.Contains(res.Table.Render(), "%") {
		t.Error("table did not render")
	}
}

func TestE2Table(t *testing.T) {
	out := E2Characteristics().Render()
	for _, want := range []string{"RISC I", "CX", "VAX-11/780", "31", "none"} {
		if !strings.Contains(out, want) {
			t.Errorf("E2 table missing %q:\n%s", want, out)
		}
	}
}

func TestE3SizeShape(t *testing.T) {
	res, err := E3ProgramSize(sharedLab)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != len(prog.All()) {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	// Paper: RISC code is larger but by less than ~2x on average.
	if res.GeoMean < 0.8 || res.GeoMean > 2.2 {
		t.Errorf("size ratio geomean = %.2f, expected the paper's ~0.9-1.5 band", res.GeoMean)
	}
	for _, r := range res.Rows {
		if r.RiscBytes <= 0 || r.CiscBytes <= 0 {
			t.Errorf("%s: missing sizes %+v", r.Name, r)
		}
	}
}

func TestE4SpeedShape(t *testing.T) {
	res, err := E4ExecutionTime(sharedLab)
	if err != nil {
		t.Fatal(err)
	}
	// The headline: RISC I wins despite executing more instructions.
	// (Our CX cost model is generous to the CISC — see EXPERIMENTS.md —
	// so the margin is smaller than the paper's 2-4x, but the winner and
	// the shape hold: RISC wins broadly, loses only on its two known
	// worst cases: software multiply and window-thrashing Ackermann.)
	if res.GeoMean < 1.15 {
		t.Errorf("speedup geomean = %.2f; RISC should win overall", res.GeoMean)
	}
	wins := 0
	for _, r := range res.Rows {
		if r.Speedup > 1 {
			wins++
		}
	}
	if wins < len(res.Rows)*2/3 {
		t.Errorf("RISC wins only %d/%d benchmarks", wins, len(res.Rows))
	}
	for _, r := range res.Rows {
		if r.Name == "hanoi" && r.Speedup < 2 {
			t.Errorf("hanoi (call-dominated) speedup %.2f, want the paper's 2x+", r.Speedup)
		}
	}
}

func TestE5WindowsCutCallTraffic(t *testing.T) {
	res, err := E5CallTraffic(sharedLab)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) < 3 {
		t.Fatalf("too few call-heavy rows: %d", len(res.Rows))
	}
	winsVsFlat := 0
	for _, r := range res.Rows {
		// The core claim: windows move far fewer data bytes per call
		// than either software convention. Ackermann is the documented
		// exception for the flat comparison: its call depth oscillates
		// across the window boundary, thrashing the overflow handler —
		// the worst case the paper's critics cited.
		if r.WindowedPer < r.FlatPer {
			winsVsFlat++
		} else if r.Name != "acker" {
			t.Errorf("%s: windowed %.1f B/call not below flat %.1f",
				r.Name, r.WindowedPer, r.FlatPer)
		}
		if r.WindowedPer >= r.CiscPer {
			t.Errorf("%s: windowed %.1f B/call not below CX %.1f",
				r.Name, r.WindowedPer, r.CiscPer)
		}
	}
	if winsVsFlat < len(res.Rows)-1 {
		t.Errorf("windows beat the flat convention on only %d/%d call-heavy kernels",
			winsVsFlat, len(res.Rows))
	}
}

func TestE6TrapRateFallsWithWindows(t *testing.T) {
	res, err := E6WindowDepth(sharedLab)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) < 4 {
		t.Fatal("too few window configurations")
	}
	for i := 1; i < len(res.Rows); i++ {
		if res.Rows[i].Overflows > res.Rows[i-1].Overflows {
			t.Errorf("overflows rose from %d windows (%d) to %d windows (%d)",
				res.Rows[i-1].Windows, res.Rows[i-1].Overflows,
				res.Rows[i].Windows, res.Rows[i].Overflows)
		}
	}
	// With only 3 windows the trap rate must be substantial; by the
	// paper's 8 it should have collapsed.
	first, eight := res.Rows[0], res.Rows[3]
	if eight.Windows != 8 {
		t.Fatalf("row 3 is %d windows", eight.Windows)
	}
	if first.TrapPct < 2*eight.TrapPct && first.TrapPct > 0.1 {
		t.Errorf("trap rate barely falls: %.2f%% at 3 vs %.2f%% at 8",
			first.TrapPct, eight.TrapPct)
	}
}

func TestE7OptimizerSavesCycles(t *testing.T) {
	res, err := E7DelaySlots(sharedLab)
	if err != nil {
		t.Fatal(err)
	}
	saved := 0
	for _, r := range res.Rows {
		if r.CyclesFilled > r.CyclesNop {
			t.Errorf("%s: optimization made it slower (%d vs %d)",
				r.Name, r.CyclesFilled, r.CyclesNop)
		}
		if r.CyclesFilled < r.CyclesNop {
			saved++
		}
	}
	if saved < len(res.Rows)/2 {
		t.Errorf("optimizer saved cycles on only %d/%d benchmarks", saved, len(res.Rows))
	}
}

func TestE6TypicalProgramsBarelyTrap(t *testing.T) {
	res, err := E6WindowDepth(sharedLab)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.TypicalRows) == 0 {
		t.Fatal("no typical-program rows")
	}
	// Depth quantiles must be ordered and shallow at the median: most
	// calls happen near the surface even in a recursion-laden suite.
	if res.DepthP50 > res.DepthP90 || res.DepthP90 > res.DepthP99 {
		t.Errorf("depth quantiles unordered: %d/%d/%d",
			res.DepthP50, res.DepthP90, res.DepthP99)
	}
	if res.DepthP99 == 0 {
		t.Error("no depth distribution recorded")
	}
	// Spill-batch policy: bigger batches must take strictly fewer traps
	// on the thrashing workload (each trap evicts more).
	if len(res.BatchRows) < 3 {
		t.Fatal("no spill-batch rows")
	}
	for i := 1; i < len(res.BatchRows); i++ {
		if res.BatchRows[i].Traps >= res.BatchRows[i-1].Traps {
			t.Errorf("batch=%d traps %d not below batch=%d traps %d",
				res.BatchRows[i].Batch, res.BatchRows[i].Traps,
				res.BatchRows[i-1].Batch, res.BatchRows[i-1].Traps)
		}
	}
	for _, r := range res.TypicalRows {
		if r.Windows >= 8 && r.TrapPct > 1.0 {
			t.Errorf("typical programs trap %.2f%% at %d windows; the paper's locality claim needs ~0",
				r.TrapPct, r.Windows)
		}
	}
}

func TestE10PipelineAblation(t *testing.T) {
	res, err := E10PipelineModels(sharedLab)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != len(prog.All()) {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	for _, r := range res.Rows {
		// Overlap must be a big win over sequential on every benchmark.
		if r.DlSpeed < 1.3 {
			t.Errorf("%s: delayed overlap only %.2fx over sequential", r.Name, r.DlSpeed)
		}
		if r.Cycles.Delayed >= r.Cycles.Sequential ||
			r.Cycles.Squashing >= r.Cycles.Sequential {
			t.Errorf("%s: overlap lost to sequential: %+v", r.Name, r.Cycles)
		}
	}
	// The design argument: delayed jumps must match squashing hardware
	// (within a few percent either way) while costing zero transistors.
	for _, r := range res.Rows {
		if r.DlAdv < -0.08 {
			t.Errorf("%s: delayed loses %.1f%% to squashing — more than the 'free' argument tolerates",
				r.Name, -100*r.DlAdv)
		}
	}
}

func TestE11MeasuredPipeline(t *testing.T) {
	res, err := E11PipelinedCPI(sharedLab)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != len(prog.All()) {
		t.Fatalf("rows = %d, want %d (a benchmark failed on the pipeline)",
			len(res.Rows), len(prog.All()))
	}
	for _, r := range res.Rows {
		d, s := r.Delayed, r.Squash
		if d.Instructions != s.Instructions {
			t.Errorf("%s: policies retired different streams: %d vs %d",
				r.Name, d.Instructions, s.Instructions)
		}
		if d.CPI() < 1 {
			t.Errorf("%s: CPI %.3f < 1 on a single-issue machine", r.Name, d.CPI())
		}
		if d.FlushBubbleCycles != 0 {
			t.Errorf("%s: delayed policy charged flush bubbles", r.Name)
		}
		// The policy gap decomposes exactly into the squash policy's
		// flush bubbles minus the interlock and memory-port stalls those
		// bubbles' fetch gaps absorb (a bubble after a taken transfer
		// delays the next fetch past the very conflicts the delayed
		// policy must stall for).
		hidden := int64(d.LoadUseStallCycles+d.MemPortStallCycles) -
			int64(s.LoadUseStallCycles+s.MemPortStallCycles)
		if int64(s.Cycles-d.Cycles) != int64(s.FlushBubbleCycles)-hidden {
			t.Errorf("%s: policy gap %d, flush bubbles %d, hidden stalls %d",
				r.Name, s.Cycles-d.Cycles, s.FlushBubbleCycles, hidden)
		}
		// E10's analytical claim, now measured: delayed jumps never lose
		// to squashing hardware (the slot is covered either way, and
		// squash adds bubbles on top).
		if r.AdvantagePct() < 0 {
			t.Errorf("%s: delayed measured %+.2f%% vs squashing", r.Name, r.AdvantagePct())
		}
	}
	if res.CPIDelayed > res.CPISquash {
		t.Errorf("suite CPI: delayed %.3f > squash %.3f", res.CPIDelayed, res.CPISquash)
	}
	tbl := res.Table.Render()
	for _, want := range []string{"E11.", "(total)", "CPI dly", "slot fill"} {
		if !strings.Contains(tbl, want) {
			t.Errorf("table missing %q:\n%s", want, tbl)
		}
	}
}

func TestE8AreaStory(t *testing.T) {
	res := E8AreaModel()
	if res.Risc.ControlFraction() >= res.Cisc.ControlFraction() {
		t.Error("RISC control fraction not below CISC")
	}
	out := res.Table.Render()
	if !strings.Contains(out, "register file") || !strings.Contains(out, "microcode ROM") {
		t.Errorf("area table incomplete:\n%s", out)
	}
}

func TestE9TrafficComparable(t *testing.T) {
	res, err := E9MemoryTraffic(sharedLab)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range res.Rows {
		if r.RiscFetch <= r.CiscFetch {
			// RISC should fetch MORE instruction bytes (more, simpler
			// instructions) — that's the objection E9 answers.
			t.Logf("note: %s fetched less on RISC (%d vs %d)",
				r.Name, r.RiscFetch, r.CiscFetch)
		}
		// matmul is the documented outlier: software multiply executes
		// ~20 instructions per MULL, so its fetch traffic balloons.
		if r.TotalRatio > 4 && r.Name != "matmul" {
			t.Errorf("%s: RISC total traffic %.2fx CX — 'comparable' claim broken",
				r.Name, r.TotalRatio)
		}
	}
}
