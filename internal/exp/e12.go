package exp

import (
	"context"
	"fmt"

	"risc1/internal/asm"
	"risc1/internal/cc"
	"risc1/internal/core"
	"risc1/internal/prog"
	"risc1/internal/report"
	"risc1/internal/smp"
)

// E12CoreCounts are the machine sizes the scalability sweep measures.
var E12CoreCounts = []int{1, 2, 4, 8}

// E12Cell is one (kernel, core-count) measurement.
type E12Cell struct {
	Cores int
	// Elapsed is the machine's makespan: the maximum over cores of
	// executed plus contention cycles.
	Elapsed uint64
	// Speedup is the single-core elapsed time over this cell's.
	Speedup float64
	// Instructions totals retirements across every core.
	Instructions uint64
	// ContentionCycles totals the interconnect-arbitration penalty charged
	// across cores (zero on one core by construction).
	ContentionCycles uint64
	// TrafficBytes totals data reads and writes across cores — E5's
	// memory-traffic lens re-examined under sharing.
	TrafficBytes uint64
	Spawns       uint64
}

// E12Row is one parallel kernel's scalability curve.
type E12Row struct {
	Name  string
	Cells []E12Cell
}

// E12Result is the SMP scalability experiment: speedup and memory-traffic
// curves for the parallel kernels over 1..8 cores.
type E12Result struct {
	Rows  []E12Row
	Table *report.Table
}

// E12SMPScalability runs every parallel kernel on 1, 2, 4 and 8 cores of
// the shared-memory machine and reports the scalability curve: elapsed
// cycles (with the interconnect contention model engaged), speedup over one
// core, total retirements, contention charges, and the E5 memory-traffic
// totals under sharing. Each run's console output is checked against the
// kernel's reference answer, so the table only ever shows correct
// executions. The lab is unused — SMP machines are built directly — but
// the signature matches the other experiments for Render.
func E12SMPScalability(_ *Lab) (*E12Result, error) {
	res := &E12Result{Table: &report.Table{
		Title: "E12. Shared-memory SMP scalability: parallel kernels on 1..8 cores",
		Note: "(elapsed = max over cores of executed+contention cycles; traffic = data bytes " +
			"moved by all cores, the E5 lens under sharing; psum/pcrunch are data-parallel, " +
			"pqsort serializes its merge on core 0)",
		Headers: []string{"benchmark", "cores", "elapsed", "speedup", "instr",
			"contention", "data traffic", "spawns"},
	}}

	for _, b := range prog.Parallel() {
		ccRes, err := cc.Compile(b.Source, cc.Options{Target: cc.RISCWindowed, WideData: true})
		if err != nil {
			return nil, fmt.Errorf("E12: compile %s: %w", b.Name, err)
		}
		img, err := asm.Assemble(ccRes.Asm)
		if err != nil {
			return nil, fmt.Errorf("E12: assemble %s: %w", b.Name, err)
		}
		row := E12Row{Name: b.Name}
		var base uint64
		for _, n := range E12CoreCounts {
			m, err := smp.New(img, smp.Config{
				Cores: n,
				Core:  core.Config{SaveStackBytes: 64 << 10, Engine: core.EngineAuto},
			})
			if err != nil {
				return nil, fmt.Errorf("E12: %s on %d cores: %w", b.Name, n, err)
			}
			if err := m.Run(context.Background()); err != nil {
				return nil, fmt.Errorf("E12: %s on %d cores: %w", b.Name, n, err)
			}
			if got, want := m.Console(), prog.Expected(b.Name); got != want {
				return nil, fmt.Errorf("E12: %s on %d cores: console %q, want %q",
					b.Name, n, got, want)
			}
			cell := E12Cell{
				Cores:            n,
				Elapsed:          m.Elapsed(),
				ContentionCycles: m.ContentionCycles(),
				Spawns:           m.Spawns(),
			}
			for _, cs := range m.CoreStats() {
				cell.Instructions += cs.Instructions
				cell.TrafficBytes += cs.DataReadBytes + cs.DataWriteBytes
			}
			if n == 1 {
				base = cell.Elapsed
			}
			if cell.Elapsed > 0 {
				cell.Speedup = float64(base) / float64(cell.Elapsed)
			}
			row.Cells = append(row.Cells, cell)
			res.Table.AddRow(b.Name,
				fmt.Sprintf("%d", n),
				report.Num(cell.Elapsed),
				fmt.Sprintf("%.2fx", cell.Speedup),
				report.Num(cell.Instructions),
				report.Num(cell.ContentionCycles),
				report.Num(cell.TrafficBytes),
				report.Num(cell.Spawns))
		}
		// Validation: the widest machine re-runs under the dynamic race
		// detector, so the table only ever describes executions that were
		// also checked race-free. (The detector forces the step engine; its
		// timings are not comparable, so this run is not measured.)
		widest := E12CoreCounts[len(E12CoreCounts)-1]
		rm, err := smp.New(img, smp.Config{
			Cores: widest,
			Core:  core.Config{SaveStackBytes: 64 << 10},
			Race:  true,
		})
		if err != nil {
			return nil, fmt.Errorf("E12: %s race check: %w", b.Name, err)
		}
		if err := rm.Run(context.Background()); err != nil {
			return nil, fmt.Errorf("E12: %s race check on %d cores: %w", b.Name, widest, err)
		}
		if races := rm.Races(); len(races) != 0 {
			return nil, fmt.Errorf("E12: %s on %d cores is racy: %v", b.Name, widest, races)
		}
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}
