// Package exp implements the experiment harnesses that regenerate every
// table and figure of the RISC I evaluation: instruction mix (E1), machine
// characteristics (E2), program size (E3), execution time (E4), procedure
// call traffic (E5), register-window sizing with the spill-policy ablation
// (E6/E6b), delayed-jump optimization (E7), silicon area (E8), memory
// traffic (E9) and the pipeline-organization ablation (E10). Each
// experiment returns structured results plus a rendered table;
// cmd/riscbench prints them and bench_test.go regenerates them under
// `go test -bench`.
package exp

import (
	"fmt"
	"runtime"
	"sync"

	"risc1/internal/asm"
	"risc1/internal/cc"
	"risc1/internal/cisc"
	"risc1/internal/core"
	"risc1/internal/prog"
	"risc1/internal/stats"
	"risc1/internal/timing"
)

// Run is one benchmark execution on one machine configuration.
type Run struct {
	Bench       prog.Benchmark
	Target      cc.Target
	CodeBytes   int // instruction bytes (excludes data)
	DataBytes   int
	Stats       *stats.Stats
	Seconds     float64 // simulated wall time at the machine's clock
	Console     string
	SlotsFilled int
}

// Options configures a run.
type Options struct {
	Windows     int  // register windows (0 = the paper's 8)
	SpillBatch  int  // windows spilled per overflow trap (0 = 1)
	NoDelayFill bool // leave NOPs in delay slots
}

// Execute compiles, assembles and runs one benchmark on one target.
// The console output is verified against the Go reference: an experiment
// on a miscomputing simulator would be worthless.
func Execute(b prog.Benchmark, target cc.Target, opt Options) (*Run, error) {
	res, err := cc.Compile(b.Source, cc.Options{Target: target, NoDelaySlotFill: opt.NoDelayFill})
	if err != nil {
		return nil, fmt.Errorf("%s on %v: %w", b.Name, target, err)
	}
	run := &Run{Bench: b, Target: target, SlotsFilled: res.SlotsFilled}

	switch target {
	case cc.CISC:
		img, err := cisc.Assemble(res.Asm)
		if err != nil {
			return nil, fmt.Errorf("%s on %v: %w", b.Name, target, err)
		}
		run.CodeBytes, run.DataBytes = split(img.Symbols, img.Org, len(img.Bytes))
		m := cisc.New(cisc.Config{})
		if err := m.Load(img); err != nil {
			return nil, err
		}
		if err := m.Run(); err != nil {
			return nil, fmt.Errorf("%s on %v: %w", b.Name, target, err)
		}
		run.Stats = m.Stats()
		run.Seconds = m.Time()
		run.Console = m.Console()
	default:
		img, err := asm.Assemble(res.Asm)
		if err != nil {
			// Programs whose data exceeds the global pointer's 8 KiB
			// window fail the 13-bit range check; recompile with full
			// 32-bit addressing.
			res, err = cc.Compile(b.Source, cc.Options{
				Target: target, NoDelaySlotFill: opt.NoDelayFill, WideData: true})
			if err != nil {
				return nil, fmt.Errorf("%s on %v: %w", b.Name, target, err)
			}
			run.SlotsFilled = res.SlotsFilled
			img, err = asm.Assemble(res.Asm)
			if err != nil {
				return nil, fmt.Errorf("%s on %v: %w", b.Name, target, err)
			}
		}
		run.CodeBytes, run.DataBytes = split(img.Symbols, img.Org, len(img.Bytes))
		m := core.New(core.Config{
			Flat:           target == cc.RISCFlat,
			Windows:        opt.Windows,
			SpillBatch:     opt.SpillBatch,
			SaveStackBytes: 64 << 10,
		})
		if err := m.Load(img); err != nil {
			return nil, err
		}
		if err := m.Run(); err != nil {
			return nil, fmt.Errorf("%s on %v: %w", b.Name, target, err)
		}
		run.Stats = m.Stats()
		run.Seconds = m.Time()
		run.Console = m.Console()
	}
	if want := prog.Expected(b.Name); run.Console != want {
		return nil, fmt.Errorf("%s on %v: produced %q, want %q",
			b.Name, target, run.Console, want)
	}
	return run, nil
}

func split(symbols map[string]uint32, org uint32, size int) (code, data int) {
	if ds, ok := symbols["__data_start"]; ok {
		code = int(ds - org)
		return code, size - code
	}
	return size, 0
}

// Lab caches benchmark runs so experiments sharing a configuration do not
// re-simulate. A Lab is safe for concurrent use: concurrent requests for the
// same configuration share a single execution (singleflight), and the
// parallel helpers below fan independent runs out over a bounded worker pool.
type Lab struct {
	mu       sync.Mutex
	cache    map[labKey]*Run
	inflight map[labKey]*labCall
}

type labKey struct {
	bench  string
	target cc.Target
	opt    Options
}

// labCall tracks one in-flight execution so duplicate requests can wait on
// it instead of re-simulating.
type labCall struct {
	done chan struct{}
	r    *Run
	err  error
}

// NewLab builds an empty lab.
func NewLab() *Lab {
	return &Lab{cache: map[labKey]*Run{}, inflight: map[labKey]*labCall{}}
}

// Run executes (or recalls) one benchmark run.
func (l *Lab) Run(b prog.Benchmark, target cc.Target, opt Options) (*Run, error) {
	k := labKey{b.Name, target, opt}
	l.mu.Lock()
	if r, ok := l.cache[k]; ok {
		l.mu.Unlock()
		return r, nil
	}
	if c, ok := l.inflight[k]; ok {
		l.mu.Unlock()
		<-c.done
		return c.r, c.err
	}
	c := &labCall{done: make(chan struct{})}
	l.inflight[k] = c
	l.mu.Unlock()

	c.r, c.err = Execute(b, target, opt)

	l.mu.Lock()
	if c.err == nil {
		l.cache[k] = c.r
	}
	delete(l.inflight, k)
	l.mu.Unlock()
	close(c.done)
	return c.r, c.err
}

// Job names one run for RunParallel.
type Job struct {
	Bench  prog.Benchmark
	Target cc.Target
	Opt    Options
}

// RunParallel executes the jobs on a worker pool bounded by GOMAXPROCS and
// returns the results in job order. If any job fails, the error of the
// earliest failing job is returned.
func (l *Lab) RunParallel(jobs []Job) ([]*Run, error) {
	out := make([]*Run, len(jobs))
	errs := make([]error, len(jobs))
	workers := runtime.GOMAXPROCS(0)
	if workers > len(jobs) {
		workers = len(jobs)
	}
	idx := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idx {
				out[i], errs[i] = l.Run(jobs[i].Bench, jobs[i].Target, jobs[i].Opt)
			}
		}()
	}
	for i := range jobs {
		idx <- i
	}
	close(idx)
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return out, nil
}

// Suite runs every benchmark on one target, serially.
func (l *Lab) Suite(target cc.Target, opt Options) ([]*Run, error) {
	var out []*Run
	for _, b := range prog.All() {
		r, err := l.Run(b, target, opt)
		if err != nil {
			return nil, err
		}
		out = append(out, r)
	}
	return out, nil
}

// SuiteParallel is Suite with the benchmark runs executing concurrently.
// Results keep prog.All() order, so tables built from them are identical to
// the serial ones.
func (l *Lab) SuiteParallel(target cc.Target, opt Options) ([]*Run, error) {
	all := prog.All()
	jobs := make([]Job, 0, len(all))
	for _, b := range all {
		jobs = append(jobs, Job{Bench: b, Target: target, Opt: opt})
	}
	return l.RunParallel(jobs)
}

// RiscCycleNS re-exports the clock for callers assembling their own tables.
const RiscCycleNS = timing.RiscCycleNS
