// Package exp implements the experiment harnesses that regenerate every
// table and figure of the RISC I evaluation: instruction mix (E1), machine
// characteristics (E2), program size (E3), execution time (E4), procedure
// call traffic (E5), register-window sizing with the spill-policy ablation
// (E6/E6b), delayed-jump optimization (E7), silicon area (E8), memory
// traffic (E9), the analytical pipeline-organization ablation (E10) and
// its cycle-accurate delayed-vs-squashing measurement (E11). Each
// experiment returns structured results plus a rendered table;
// cmd/riscbench prints them and bench_test.go regenerates them under
// `go test -bench`.
package exp

import (
	"context"
	"fmt"
	"runtime"
	"sort"
	"sync"
	"time"

	"risc1/internal/asm"
	"risc1/internal/cc"
	"risc1/internal/cisc"
	"risc1/internal/core"
	"risc1/internal/mem"
	"risc1/internal/pipeline"
	"risc1/internal/prog"
	"risc1/internal/stats"
	"risc1/internal/timing"
)

// Run is one benchmark execution on one machine configuration. A Run with a
// non-nil Err is the placeholder for a failed or timed-out execution: Stats
// is a fresh zero value so aggregations stay total, and table builders
// render ERR cells for it instead of numbers.
type Run struct {
	Bench       prog.Benchmark
	Target      cc.Target
	CodeBytes   int // instruction bytes (excludes data)
	DataBytes   int
	Stats       *stats.Stats
	Seconds     float64 // simulated wall time at the machine's clock
	Console     string
	SlotsFilled int
	// Engine records the execution engine the run was simulated under
	// (RISC targets only; the CX machine has a single interpreter).
	Engine core.Engine
	// Pipeline carries the cycle-accurate timing result for runs on the
	// RISCPipelined target; nil for every other target.
	Pipeline *pipeline.Result
	Err      error // non-nil: this configuration failed to execute
}

// Failed reports whether this run is a failure placeholder.
func (r *Run) Failed() bool { return r != nil && r.Err != nil }

// failedRun builds the placeholder cached and returned for a failed
// execution.
func failedRun(b prog.Benchmark, target cc.Target, err error) *Run {
	return &Run{Bench: b, Target: target, Stats: stats.New(), Err: err}
}

// Options configures a run.
type Options struct {
	Windows     int  // register windows (0 = the paper's 8)
	SpillBatch  int  // windows spilled per overflow trap (0 = 1)
	NoDelayFill bool // leave NOPs in delay slots
	// Engine selects the core execution engine (auto, block, step, trace)
	// for RISC targets; the CX machine ignores it. Engine is part of the
	// lab cache key, so runs simulated under different engines never share
	// a cached result.
	Engine core.Engine
	// Policy selects the control-transfer policy for runs on the
	// RISCPipelined target (delayed or squash); other targets ignore it.
	// Like Engine it is part of the lab cache key.
	Policy pipeline.Policy
	// Fault, when non-nil, injects memory failures into the run (the plan
	// is copied per execution, so one plan can safely serve many runs).
	Fault *mem.FaultPlan
}

// Execute compiles, assembles and runs one benchmark on one target.
// The console output is verified against the Go reference: an experiment
// on a miscomputing simulator would be worthless.
func Execute(b prog.Benchmark, target cc.Target, opt Options) (*Run, error) {
	return ExecuteContext(context.Background(), b, target, opt)
}

// armFault installs a private copy of the plan so concurrent runs sharing
// one Options value keep independent access counters.
func armFault(m *mem.Memory, plan *mem.FaultPlan) {
	if plan != nil {
		p := *plan
		m.SetFaultPlan(&p)
	}
}

// ExecuteContext is Execute honoring ctx: cancellation or deadline expiry
// aborts the simulation at the next run-batch boundary.
func ExecuteContext(ctx context.Context, b prog.Benchmark, target cc.Target, opt Options) (*Run, error) {
	res, err := cc.Compile(b.Source, cc.Options{Target: target, NoDelaySlotFill: opt.NoDelayFill})
	if err != nil {
		return nil, fmt.Errorf("%s on %v: %w", b.Name, target, err)
	}
	run := &Run{Bench: b, Target: target, SlotsFilled: res.SlotsFilled, Engine: opt.Engine}

	switch target {
	case cc.CISC:
		img, err := cisc.Assemble(res.Asm)
		if err != nil {
			return nil, fmt.Errorf("%s on %v: %w", b.Name, target, err)
		}
		run.CodeBytes, run.DataBytes = split(img.Symbols, img.Org, len(img.Bytes))
		m := cisc.New(cisc.Config{})
		if err := m.Load(img); err != nil {
			return nil, err
		}
		armFault(m.Mem, opt.Fault)
		if err := m.RunContext(ctx); err != nil {
			return nil, fmt.Errorf("%s on %v: %w", b.Name, target, err)
		}
		run.Stats = m.Stats()
		run.Seconds = m.Time()
		run.Console = m.Console()
	default:
		img, err := asm.Assemble(res.Asm)
		if err != nil {
			// Programs whose data exceeds the global pointer's 8 KiB
			// window fail the 13-bit range check; recompile with full
			// 32-bit addressing. Any other assembly error is genuine
			// and reported as-is.
			if !asm.IsOutOfRange(err) {
				return nil, fmt.Errorf("%s on %v: %w", b.Name, target, err)
			}
			res, err = cc.Compile(b.Source, cc.Options{
				Target: target, NoDelaySlotFill: opt.NoDelayFill, WideData: true})
			if err != nil {
				return nil, fmt.Errorf("%s on %v: %w", b.Name, target, err)
			}
			run.SlotsFilled = res.SlotsFilled
			img, err = asm.Assemble(res.Asm)
			if err != nil {
				return nil, fmt.Errorf("%s on %v: %w", b.Name, target, err)
			}
		}
		run.CodeBytes, run.DataBytes = split(img.Symbols, img.Org, len(img.Bytes))
		cfg := core.Config{
			Flat:           target == cc.RISCFlat,
			Windows:        opt.Windows,
			SpillBatch:     opt.SpillBatch,
			SaveStackBytes: 64 << 10,
			Engine:         opt.Engine,
		}
		if target == cc.RISCPipelined {
			// The pipelined target measures cycles on the five-stage
			// model; architectural execution is still the step oracle.
			m := pipeline.New(cfg, opt.Policy)
			if err := m.Load(img); err != nil {
				return nil, err
			}
			armFault(m.CPU().Mem, opt.Fault)
			if err := m.RunContext(ctx); err != nil {
				return nil, fmt.Errorf("%s on %v: %w", b.Name, target, err)
			}
			res := m.Result()
			run.Pipeline = &res
			run.Stats = m.CPU().Stats()
			run.Seconds = res.Time()
			run.Console = m.CPU().Console()
		} else {
			m := core.New(cfg)
			if err := m.Load(img); err != nil {
				return nil, err
			}
			armFault(m.Mem, opt.Fault)
			if err := m.RunContext(ctx); err != nil {
				return nil, fmt.Errorf("%s on %v: %w", b.Name, target, err)
			}
			run.Stats = m.Stats()
			run.Seconds = m.Time()
			run.Console = m.Console()
		}
	}
	if want := prog.Expected(b.Name); run.Console != want {
		return nil, fmt.Errorf("%s on %v: produced %q, want %q",
			b.Name, target, run.Console, want)
	}
	return run, nil
}

func split(symbols map[string]uint32, org uint32, size int) (code, data int) {
	if ds, ok := symbols["__data_start"]; ok {
		code = int(ds - org)
		return code, size - code
	}
	return size, 0
}

// Lab caches benchmark runs so experiments sharing a configuration do not
// re-simulate. A Lab is safe for concurrent use: concurrent requests for the
// same configuration share a single execution (singleflight), and the
// parallel helpers below fan independent runs out over a bounded worker pool.
//
// The lab degrades gracefully: a failing or timed-out configuration is
// cached as a failure placeholder (so it is not re-simulated by every
// experiment that needs it), recorded for Failures, and returned alongside
// its error so table builders can render an ERR cell and keep going.
type Lab struct {
	mu       sync.Mutex
	cache    map[labKey]*Run
	inflight map[labKey]*labCall
	timeout  time.Duration
	engine   core.Engine
	inject   map[string]*mem.FaultPlan
	failures map[labKey]Failure
}

type labKey struct {
	bench  string
	target cc.Target
	opt    Options
}

// labCall tracks one in-flight execution so duplicate requests can wait on
// it instead of re-simulating.
type labCall struct {
	done chan struct{}
	r    *Run
	err  error
}

// NewLab builds an empty lab.
func NewLab() *Lab {
	return &Lab{
		cache:    map[labKey]*Run{},
		inflight: map[labKey]*labCall{},
		inject:   map[string]*mem.FaultPlan{},
		failures: map[labKey]Failure{},
	}
}

// SetTimeout bounds every subsequent execution's wall time: a configuration
// that exceeds d is aborted (within one run batch) and degraded to an ERR
// placeholder. Zero restores the default of no limit.
func (l *Lab) SetTimeout(d time.Duration) {
	l.mu.Lock()
	l.timeout = d
	l.mu.Unlock()
}

// SetEngine sets the default execution engine for every subsequent run
// that does not pick one explicitly (Options.Engine left at EngineAuto).
// The resolved engine participates in the cache key, so switching engines
// never reuses results simulated under the other one.
func (l *Lab) SetEngine(e core.Engine) {
	l.mu.Lock()
	l.engine = e
	l.mu.Unlock()
}

// InjectFault arranges for every subsequent run of the named benchmark to
// execute under the given memory-fault plan — the failure-injection hook
// behind the degradation tests and riscbench's -inject flag. Runs that
// already passed Options.Fault explicitly keep their own plan.
func (l *Lab) InjectFault(bench string, plan *mem.FaultPlan) {
	l.mu.Lock()
	l.inject[bench] = plan
	l.mu.Unlock()
}

// Failure records one configuration that could not execute.
type Failure struct {
	Bench  string
	Target cc.Target
	Opt    Options
	Err    error
}

// Failures returns every failed configuration observed so far, in a
// deterministic order.
func (l *Lab) Failures() []Failure {
	l.mu.Lock()
	out := make([]Failure, 0, len(l.failures))
	for _, f := range l.failures {
		out = append(out, f)
	}
	l.mu.Unlock()
	sort.Slice(out, func(i, j int) bool {
		if out[i].Bench != out[j].Bench {
			return out[i].Bench < out[j].Bench
		}
		if out[i].Target != out[j].Target {
			return out[i].Target < out[j].Target
		}
		return fmt.Sprint(out[i].Opt) < fmt.Sprint(out[j].Opt)
	})
	return out
}

// Run executes (or recalls) one benchmark run. On failure it returns both
// the cached ERR placeholder and the error: callers building tables use the
// placeholder, callers that must stop use the error.
func (l *Lab) Run(b prog.Benchmark, target cc.Target, opt Options) (*Run, error) {
	l.mu.Lock()
	if p, ok := l.inject[b.Name]; ok && opt.Fault == nil {
		opt.Fault = p
	}
	if opt.Engine == core.EngineAuto {
		opt.Engine = l.engine
	}
	timeout := l.timeout
	k := labKey{b.Name, target, opt}
	if r, ok := l.cache[k]; ok {
		l.mu.Unlock()
		return r, r.Err
	}
	if c, ok := l.inflight[k]; ok {
		l.mu.Unlock()
		<-c.done
		return c.r, c.err
	}
	c := &labCall{done: make(chan struct{})}
	l.inflight[k] = c
	l.mu.Unlock()

	ctx := context.Background()
	if timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, timeout)
		defer cancel()
	}
	c.r, c.err = ExecuteContext(ctx, b, target, opt)
	if c.err != nil {
		c.r = failedRun(b, target, c.err)
	}

	l.mu.Lock()
	l.cache[k] = c.r
	if c.err != nil {
		l.failures[k] = Failure{Bench: b.Name, Target: target, Opt: opt, Err: c.err}
	}
	delete(l.inflight, k)
	l.mu.Unlock()
	close(c.done)
	return c.r, c.err
}

// Job names one run for RunParallel.
type Job struct {
	Bench  prog.Benchmark
	Target cc.Target
	Opt    Options
}

// RunParallel executes the jobs on a worker pool bounded by GOMAXPROCS and
// returns the results in job order. Every slot is populated — failed jobs
// yield ERR placeholders — and the error of the earliest failing job is
// returned alongside, so callers choose between degrading and stopping.
func (l *Lab) RunParallel(jobs []Job) ([]*Run, error) {
	out := make([]*Run, len(jobs))
	errs := make([]error, len(jobs))
	workers := runtime.GOMAXPROCS(0)
	if workers > len(jobs) {
		workers = len(jobs)
	}
	idx := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idx {
				out[i], errs[i] = l.Run(jobs[i].Bench, jobs[i].Target, jobs[i].Opt)
			}
		}()
	}
	for i := range jobs {
		idx <- i
	}
	close(idx)
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return out, err
		}
	}
	return out, nil
}

// Suite runs every benchmark on one target, serially. Failed benchmarks
// yield ERR placeholders; the earliest failure is also returned.
func (l *Lab) Suite(target cc.Target, opt Options) ([]*Run, error) {
	var out []*Run
	var firstErr error
	for _, b := range prog.All() {
		r, err := l.Run(b, target, opt)
		if err != nil && firstErr == nil {
			firstErr = err
		}
		out = append(out, r)
	}
	return out, firstErr
}

// SuiteParallel is Suite with the benchmark runs executing concurrently.
// Results keep prog.All() order, so tables built from them are identical to
// the serial ones.
func (l *Lab) SuiteParallel(target cc.Target, opt Options) ([]*Run, error) {
	all := prog.All()
	jobs := make([]Job, 0, len(all))
	for _, b := range all {
		jobs = append(jobs, Job{Bench: b, Target: target, Opt: opt})
	}
	return l.RunParallel(jobs)
}

// RiscCycleNS re-exports the clock for callers assembling their own tables.
const RiscCycleNS = timing.RiscCycleNS
