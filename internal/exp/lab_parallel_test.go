package exp

import (
	"sync"
	"testing"

	"risc1/internal/cc"
)

// TestLabConcurrentSuiteParallel hammers one Lab from several goroutines
// (each itself fanning out over the worker pool) and checks that every
// caller observes the same cached runs — the singleflight guarantee. Run
// under -race this is the data-race regression test for the parallel lab.
func TestLabConcurrentSuiteParallel(t *testing.T) {
	l := NewLab()
	targets := []cc.Target{cc.RISCWindowed, cc.CISC, cc.RISCWindowed, cc.CISC}
	outs := make([][]*Run, len(targets))
	var wg sync.WaitGroup
	for i, target := range targets {
		wg.Add(1)
		go func(i int, target cc.Target) {
			defer wg.Done()
			runs, err := l.SuiteParallel(target, Options{})
			if err != nil {
				t.Errorf("SuiteParallel(%v): %v", target, err)
				return
			}
			outs[i] = runs
		}(i, target)
	}
	wg.Wait()
	if t.Failed() {
		return
	}
	// Goroutines 0/2 and 1/3 asked for the same configurations, so they
	// must share the exact cached *Run values, not re-simulations.
	for _, pair := range [][2]int{{0, 2}, {1, 3}} {
		a, b := outs[pair[0]], outs[pair[1]]
		if len(a) != len(b) {
			t.Fatalf("suite lengths differ: %d vs %d", len(a), len(b))
		}
		for j := range a {
			if a[j] != b[j] {
				t.Errorf("run %d (%s): duplicate simulation instead of cache hit",
					j, a[j].Bench.Name)
			}
		}
	}
}
