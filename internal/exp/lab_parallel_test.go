package exp

import (
	"reflect"
	"sync"
	"testing"

	"risc1/internal/cc"
	"risc1/internal/core"
	"risc1/internal/prog"
)

// TestLabConcurrentSuiteParallel hammers one Lab from several goroutines
// (each itself fanning out over the worker pool) and checks that every
// caller observes the same cached runs — the singleflight guarantee. Run
// under -race this is the data-race regression test for the parallel lab.
func TestLabConcurrentSuiteParallel(t *testing.T) {
	l := NewLab()
	targets := []cc.Target{cc.RISCWindowed, cc.CISC, cc.RISCWindowed, cc.CISC}
	outs := make([][]*Run, len(targets))
	var wg sync.WaitGroup
	for i, target := range targets {
		wg.Add(1)
		go func(i int, target cc.Target) {
			defer wg.Done()
			runs, err := l.SuiteParallel(target, Options{})
			if err != nil {
				t.Errorf("SuiteParallel(%v): %v", target, err)
				return
			}
			outs[i] = runs
		}(i, target)
	}
	wg.Wait()
	if t.Failed() {
		return
	}
	// Goroutines 0/2 and 1/3 asked for the same configurations, so they
	// must share the exact cached *Run values, not re-simulations.
	for _, pair := range [][2]int{{0, 2}, {1, 3}} {
		a, b := outs[pair[0]], outs[pair[1]]
		if len(a) != len(b) {
			t.Fatalf("suite lengths differ: %d vs %d", len(a), len(b))
		}
		for j := range a {
			if a[j] != b[j] {
				t.Errorf("run %d (%s): duplicate simulation instead of cache hit",
					j, a[j].Bench.Name)
			}
		}
	}
}

// TestLabMixedEngineHammer mixes execution engines across concurrent
// RunParallel waves on one Lab. The engine is part of the cache key, so the
// singleflight cache must never serve a result computed under a different
// engine than the job requested — and since the engines are observationally
// equivalent, the runs that DO differ only by engine must agree on every
// statistic. Run under -race this also exercises the lab's locking across
// engine-keyed entries.
func TestLabMixedEngineHammer(t *testing.T) {
	l := NewLab()
	benches := prog.All()
	if len(benches) > 3 {
		benches = benches[:3]
	}
	engines := []core.Engine{core.EngineStep, core.EngineBlock, core.EngineAuto}
	var jobs []Job
	for _, b := range benches {
		for _, e := range engines {
			jobs = append(jobs, Job{Bench: b, Target: cc.RISCWindowed, Opt: Options{Engine: e}})
		}
	}
	jobs = append(jobs, jobs...) // duplicates stress the singleflight path

	const waves = 3
	outs := make([][]*Run, waves)
	var wg sync.WaitGroup
	for g := 0; g < waves; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			runs, err := l.RunParallel(jobs)
			if err != nil {
				t.Errorf("wave %d: %v", g, err)
				return
			}
			outs[g] = runs
		}(g)
	}
	wg.Wait()
	if t.Failed() {
		return
	}
	for g, runs := range outs {
		for i, r := range runs {
			if want := jobs[i].Opt.Engine; r.Engine != want {
				t.Fatalf("wave %d job %d (%s): cache served a %v-engine run for a %v request",
					g, i, jobs[i].Bench.Name, r.Engine, want)
			}
		}
	}
	// Same bench, different engine: distinct cache entries with identical
	// observable results (the differential-equivalence contract, at suite
	// level). Same bench, same engine: the identical cached pointer.
	runs := outs[0]
	per := len(engines)
	for bi := range benches {
		step, block := runs[bi*per], runs[bi*per+1]
		if step == block {
			t.Fatalf("%s: step and block requests shared one cache entry", benches[bi].Name)
		}
		if !reflect.DeepEqual(step.Stats, block.Stats) || step.Console != block.Console {
			t.Errorf("%s: engines disagree:\nstep:  %+v\nblock: %+v",
				benches[bi].Name, step.Stats, block.Stats)
		}
		if dup := runs[len(jobs)/2+bi*per]; dup != step {
			t.Errorf("%s: duplicate step job re-simulated instead of cache hit", benches[bi].Name)
		}
	}
}
