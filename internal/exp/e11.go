package exp

import (
	"fmt"

	"risc1/internal/cc"
	"risc1/internal/pipeline"
	"risc1/internal/prog"
	"risc1/internal/report"
)

// E11Row holds one benchmark measured on the cycle-accurate pipeline under
// both control-transfer policies. The two runs retire identical instruction
// streams — they differ only in stall and bubble cycles.
type E11Row struct {
	Name    string
	Delayed pipeline.Result
	Squash  pipeline.Result
}

// AdvantagePct is the delayed policy's measured cycle advantage over
// predict-not-taken squashing, as a percentage of the squashing count.
func (r E11Row) AdvantagePct() float64 {
	if r.Squash.Cycles == 0 {
		return 0
	}
	return 100 * (1 - float64(r.Delayed.Cycles)/float64(r.Squash.Cycles))
}

// E11Result is the measured delayed-vs-squashing comparison, with
// suite-wide aggregates for the benchmark report.
type E11Result struct {
	Rows  []E11Row
	Table *report.Table

	// Aggregates over the whole suite (totals, not means).
	Instructions  uint64
	CyclesDelayed uint64
	CyclesSquash  uint64
	CPIDelayed    float64
	CPISquash     float64
	LoadUseStalls uint64
	WindowStalls  uint64
	MemPortStalls uint64
	FlushBubbles  uint64
	ForwardsEXMEM uint64
	ForwardsMEMWB uint64
	SlotsRetired  uint64
	SlotsFilled   uint64
	FillRatePct   float64
	DelayedAdvPct float64
}

// E11PipelinedCPI measures what E10 only estimates: every benchmark runs on
// the cycle-accurate five-stage pipeline twice — once with the paper's
// delayed jumps (transfers resolve early, the delay slot exactly covers the
// shadow) and once as predict-not-taken hardware (transfers resolve in EX,
// each taken transfer squashes one wrong-path fetch). Both runs retire the
// same instructions with the same results; the cycle difference is the
// delayed jump's measured advantage.
func E11PipelinedCPI(l *Lab) (*E11Result, error) {
	res := &E11Result{Table: &report.Table{
		Title: "E11. Cycle-accurate 5-stage pipeline: delayed jumps vs squashing hardware",
		Note:  "(measured cycles; dly = delayed slots, sq = predict-not-taken with flush on taken transfers)",
		Headers: []string{"benchmark", "instr", "CPI dly", "CPI sq", "ld-use", "window",
			"mem-port", "flush", "fwd", "slot fill", "dly adv"},
	}}

	all := prog.All()
	jobs := make([]Job, 0, 2*len(all))
	for _, b := range all {
		jobs = append(jobs,
			Job{Bench: b, Target: cc.RISCPipelined, Opt: Options{Policy: pipeline.PolicyDelayed}},
			Job{Bench: b, Target: cc.RISCPipelined, Opt: Options{Policy: pipeline.PolicySquash}})
	}
	runs, _ := l.RunParallel(jobs)

	for i := 0; i < len(runs); i += 2 {
		dl, sq := runs[i], runs[i+1]
		name := all[i/2].Name
		if dl.Failed() || sq.Failed() || dl.Pipeline == nil || sq.Pipeline == nil {
			res.Table.AddRow(name, errCell, errCell, errCell, errCell, errCell,
				errCell, errCell, errCell, errCell, errCell)
			continue
		}
		row := E11Row{Name: name, Delayed: *dl.Pipeline, Squash: *sq.Pipeline}
		res.Rows = append(res.Rows, row)
		d, s := row.Delayed, row.Squash
		res.Table.AddRow(name,
			report.Num(d.Instructions),
			fmt.Sprintf("%.3f", d.CPI()),
			fmt.Sprintf("%.3f", s.CPI()),
			report.Num(d.LoadUseStallCycles),
			report.Num(d.WindowStallCycles),
			report.Num(d.MemPortStallCycles),
			report.Num(s.FlushBubbleCycles),
			report.Num(d.Forwards()),
			fmt.Sprintf("%.1f%%", 100*d.FillRate()),
			fmt.Sprintf("%+.2f%%", row.AdvantagePct()))

		res.Instructions += d.Instructions
		res.CyclesDelayed += d.Cycles
		res.CyclesSquash += s.Cycles
		res.LoadUseStalls += d.LoadUseStallCycles
		res.WindowStalls += d.WindowStallCycles
		res.MemPortStalls += d.MemPortStallCycles
		res.FlushBubbles += s.FlushBubbleCycles
		res.ForwardsEXMEM += d.ForwardsEXMEM
		res.ForwardsMEMWB += d.ForwardsMEMWB
		res.SlotsRetired += d.DelaySlots
		res.SlotsFilled += d.DelaySlotsFilled
	}

	if res.Instructions > 0 {
		res.CPIDelayed = float64(res.CyclesDelayed) / float64(res.Instructions)
		res.CPISquash = float64(res.CyclesSquash) / float64(res.Instructions)
	}
	if res.SlotsRetired > 0 {
		res.FillRatePct = 100 * float64(res.SlotsFilled) / float64(res.SlotsRetired)
	}
	if res.CyclesSquash > 0 {
		res.DelayedAdvPct = 100 * (1 - float64(res.CyclesDelayed)/float64(res.CyclesSquash))
	}
	res.Table.AddRow("(total)",
		report.Num(res.Instructions),
		fmt.Sprintf("%.3f", res.CPIDelayed),
		fmt.Sprintf("%.3f", res.CPISquash),
		report.Num(res.LoadUseStalls),
		report.Num(res.WindowStalls),
		report.Num(res.MemPortStalls),
		report.Num(res.FlushBubbles),
		report.Num(res.ForwardsEXMEM+res.ForwardsMEMWB),
		fmt.Sprintf("%.1f%%", res.FillRatePct),
		fmt.Sprintf("%+.2f%%", res.DelayedAdvPct))
	return res, nil
}
