package exp

import "fmt"

// IDs lists the experiments in presentation order. E10, E11 and E12 are
// this repository's extensions: the analytical pipeline-organization
// ablation behind the delayed-jump design decision, its cycle-accurate
// measurement on the five-stage pipeline model, and the shared-memory SMP
// scalability sweep.
func IDs() []string {
	return []string{"E1", "E2", "E3", "E4", "E5", "E6", "E7", "E8", "E9", "E10", "E11", "E12"}
}

// Render runs one experiment against the lab and returns its rendered
// table(s). This is the single source of the table text shown by both the
// risc1.Experiment API and cmd/riscbench.
func Render(l *Lab, id string) (string, error) {
	switch id {
	case "E1":
		r, err := E1InstructionMix(l)
		if err != nil {
			return "", err
		}
		return r.Table.Render() + "\n" + r.CatTable.Render(), nil
	case "E2":
		return E2Characteristics().Render(), nil
	case "E3":
		r, err := E3ProgramSize(l)
		if err != nil {
			return "", err
		}
		return r.Table.Render(), nil
	case "E4":
		r, err := E4ExecutionTime(l)
		if err != nil {
			return "", err
		}
		return r.Table.Render(), nil
	case "E5":
		r, err := E5CallTraffic(l)
		if err != nil {
			return "", err
		}
		return r.Table.Render(), nil
	case "E6":
		r, err := E6WindowDepth(l)
		if err != nil {
			return "", err
		}
		return r.Table.Render(), nil
	case "E7":
		r, err := E7DelaySlots(l)
		if err != nil {
			return "", err
		}
		return r.Table.Render(), nil
	case "E8":
		return E8AreaModel().Table.Render(), nil
	case "E9":
		r, err := E9MemoryTraffic(l)
		if err != nil {
			return "", err
		}
		return r.Table.Render(), nil
	case "E10":
		r, err := E10PipelineModels(l)
		if err != nil {
			return "", err
		}
		return r.Table.Render(), nil
	case "E11":
		r, err := E11PipelinedCPI(l)
		if err != nil {
			return "", err
		}
		return r.Table.Render(), nil
	case "E12":
		r, err := E12SMPScalability(l)
		if err != nil {
			return "", err
		}
		return r.Table.Render(), nil
	}
	return "", fmt.Errorf("risc1: unknown experiment %q (want E1..E12)", id)
}
