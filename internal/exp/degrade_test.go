package exp

import (
	"context"
	"errors"
	"strings"
	"testing"
	"time"

	"risc1/internal/cc"
	"risc1/internal/mem"
	"risc1/internal/prog"
)

// TestLabDegradationOnInjectedFault poisons one benchmark and regenerates a
// table: the poisoned kernel must render as ERR cells while every other row
// survives with real numbers, and the failure must be reported for the exit
// status / JSON aggregation.
func TestLabDegradationOnInjectedFault(t *testing.T) {
	l := NewLab()
	l.InjectFault("hanoi", &mem.FaultPlan{FailNthWrite: 1})
	out, err := Render(l, "E4")
	if err != nil {
		t.Fatalf("Render(E4) must survive an injected fault, got %v", err)
	}
	var hanoiRow string
	okRows := 0
	for _, line := range strings.Split(out, "\n") {
		switch {
		case strings.Contains(line, "hanoi"):
			hanoiRow = line
		case strings.Contains(line, "sieve") || strings.Contains(line, "fibonacci"):
			okRows++
		}
	}
	if !strings.Contains(hanoiRow, errCell) {
		t.Errorf("hanoi row missing %s cell:\n%s", errCell, out)
	}
	if okRows == 0 {
		t.Errorf("healthy rows missing from degraded table:\n%s", out)
	}
	if strings.Count(out, errCell) > strings.Count(hanoiRow, errCell) {
		t.Errorf("ERR leaked beyond the poisoned row:\n%s", out)
	}

	fails := l.Failures()
	if len(fails) == 0 {
		t.Fatal("Failures() empty after injected fault")
	}
	for _, f := range fails {
		if f.Bench != "hanoi" {
			t.Errorf("unexpected failure for %s [%v]: %v", f.Bench, f.Target, f.Err)
		}
		var mf *mem.Fault
		if !errors.As(f.Err, &mf) || !mf.Injected {
			t.Errorf("failure cause = %v, want injected mem.Fault", f.Err)
		}
	}
}

// TestLabNegativeCaching checks a failed configuration is cached like a
// successful one: the second Run returns the same placeholder without
// re-simulating.
func TestLabNegativeCaching(t *testing.T) {
	l := NewLab()
	l.InjectFault("sieve", &mem.FaultPlan{FailNthWrite: 1})
	b, ok := prog.ByName("sieve")
	if !ok {
		t.Fatal("sieve missing from suite")
	}
	r1, err1 := l.Run(b, cc.RISCWindowed, Options{})
	if err1 == nil || !r1.Failed() {
		t.Fatalf("poisoned run succeeded: %v", err1)
	}
	r2, err2 := l.Run(b, cc.RISCWindowed, Options{})
	if r2 != r1 {
		t.Error("failed run not served from cache")
	}
	if err2 == nil {
		t.Error("cached failure lost its error")
	}
}

// TestLabTimeout bounds a configuration by wall clock: an expired per-run
// deadline degrades exactly like any other failure.
func TestLabTimeout(t *testing.T) {
	l := NewLab()
	l.SetTimeout(time.Nanosecond)
	b, ok := prog.ByName("hanoi")
	if !ok {
		t.Fatal("hanoi missing from suite")
	}
	r, err := l.Run(b, cc.RISCWindowed, Options{})
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want DeadlineExceeded", err)
	}
	if !r.Failed() {
		t.Error("timed-out run not marked failed")
	}
	if len(l.Failures()) != 1 {
		t.Errorf("Failures() = %v, want the one timeout", l.Failures())
	}
}

// TestLabFaultIsolation checks the poison stays scoped: a lab with an
// injected fault for one benchmark runs every other benchmark cleanly, and a
// fresh lab runs the poisoned one cleanly.
func TestLabFaultIsolation(t *testing.T) {
	l := NewLab()
	l.InjectFault("hanoi", &mem.FaultPlan{FailNthWrite: 1})
	b, ok := prog.ByName("sieve")
	if !ok {
		t.Fatal("sieve missing from suite")
	}
	if _, err := l.Run(b, cc.RISCWindowed, Options{}); err != nil {
		t.Errorf("unpoisoned benchmark failed: %v", err)
	}

	clean := NewLab()
	h, _ := prog.ByName("hanoi")
	if _, err := clean.Run(h, cc.RISCWindowed, Options{}); err != nil {
		t.Errorf("hanoi failed on a clean lab: %v", err)
	}
}
