package exp

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"risc1/internal/area"
	"risc1/internal/cc"
	"risc1/internal/cisc"
	"risc1/internal/isa"
	"risc1/internal/prog"
	"risc1/internal/report"
	"risc1/internal/stats"
	"risc1/internal/timing"
)

// errCell is what a failed configuration renders as in a table: the row
// survives, the numbers don't pretend to exist, and the failure itself is
// recorded in the lab (Lab.Failures) for the caller's exit status.
const errCell = "ERR"

// geomean of ratios, the paper's preferred aggregate for relative numbers.
func geomean(vals []float64) float64 {
	if len(vals) == 0 {
		return 0
	}
	s := 0.0
	for _, v := range vals {
		s += math.Log(v)
	}
	return math.Exp(s / float64(len(vals)))
}

// suitePair warms and returns the full suite on two targets, with all the
// simulations for both targets sharing one parallel worker pool. Failed
// benchmarks come back as ERR placeholders.
func suitePair(l *Lab, a, b cc.Target, opt Options) ([]*Run, []*Run) {
	all := prog.All()
	jobs := make([]Job, 0, 2*len(all))
	for _, bench := range all {
		jobs = append(jobs, Job{Bench: bench, Target: a, Opt: opt})
	}
	for _, bench := range all {
		jobs = append(jobs, Job{Bench: bench, Target: b, Opt: opt})
	}
	runs, _ := l.RunParallel(jobs)
	return runs[:len(all)], runs[len(all):]
}

// ---------- E1: dynamic instruction mix ----------

// E1Result aggregates the dynamic instruction mix of the whole suite on
// RISC I, reproducing the motivation table: simple register operations,
// loads/stores and transfers dominate compiled C code.
type E1Result struct {
	Total    *stats.Stats
	Table    *report.Table
	CatTable *report.Table
}

// E1InstructionMix runs the suite on windowed RISC I and aggregates.
// Failed benchmarks are excluded from the mix and listed as ERR rows.
func E1InstructionMix(l *Lab) (*E1Result, error) {
	runs, _ := l.SuiteParallel(cc.RISCWindowed, Options{})
	total := stats.New()
	var failed []string
	for _, r := range runs {
		if r.Failed() {
			failed = append(failed, r.Bench.Name)
			continue
		}
		total.Add(r.Stats)
	}
	t := &report.Table{
		Title:   "E1. Dynamic instruction mix, RISC I, whole benchmark suite",
		Note:    "(reproduces the paper's motivation: a handful of simple instructions do all the work)",
		Headers: []string{"instruction", "executed", "% of all"},
	}
	for i, e := range total.Mix() {
		if i >= 12 {
			break
		}
		t.AddRow(e.Name, report.Num(e.Count), fmt.Sprintf("%.1f%%", e.Pct))
	}
	ct := &report.Table{
		Title:   "E1b. By category",
		Headers: []string{"category", "executed", "% of all"},
	}
	for _, e := range total.CategoryMix() {
		ct.AddRow(e.Name, report.Num(e.Count), fmt.Sprintf("%.1f%%", e.Pct))
	}
	for _, name := range failed {
		t.AddRow(errCell+" "+name, "-", "-")
	}
	return &E1Result{Total: total, Table: t, CatTable: ct}, nil
}

// ---------- E2: machine characteristics ----------

// E2Characteristics builds the paper's processor-comparison table from the
// two machine definitions plus published reference points.
func E2Characteristics() *report.Table {
	t := &report.Table{
		Title: "E2. Characteristics of the compared processors",
		Note:  "(as-built rows from this repository's machines; reference rows from the literature)",
		Headers: []string{"machine", "instructions", "formats",
			"instr bytes", "addr modes", "gp registers", "microcode", "cycle"},
	}
	t.AddRow("RISC I (this repo)",
		fmt.Sprintf("%d", isa.NumInstructions), "2", "4",
		"2", fmt.Sprintf("32 of %d", 10+16*8), "none",
		fmt.Sprintf("%dns", timing.RiscCycleNS))
	t.AddRow("CX (this repo)",
		fmt.Sprintf("%d", cisc.NumInstructions()), "var", "1-16",
		"9", "15", "yes",
		fmt.Sprintf("%dns u-cycle", timing.CXMicrocycleNS))
	t.AddRow("VAX-11/780 (ref)", "303", "var", "2-57", "18", "16", "456Kb", "200ns")
	t.AddRow("M68000 (ref)", "~100", "var", "2-22", "14", "16", "~34Kb", "250ns")
	t.AddRow("Z8002 (ref)", "110", "var", "2-8", "12", "16", "none", "250ns")
	return t
}

// ---------- E3: program size ----------

// E3Row is one benchmark's code-size comparison.
type E3Row struct {
	Name      string
	RiscBytes int
	CiscBytes int
	Ratio     float64 // RISC / CISC: the paper reports ~0.9-1.5
}

// E3Result is the program-size table.
type E3Result struct {
	Rows    []E3Row
	GeoMean float64
	Table   *report.Table
}

// E3ProgramSize compares compiled code bytes, RISC I vs CX.
func E3ProgramSize(l *Lab) (*E3Result, error) {
	rw, cx := suitePair(l, cc.RISCWindowed, cc.CISC, Options{})
	res := &E3Result{Table: &report.Table{
		Title:   "E3. Program size (code bytes)",
		Note:    "(paper: RISC programs are only modestly larger, ~0.9-1.5x a VAX)",
		Headers: []string{"benchmark", "RISC I", "CX", "RISC/CX"},
	}}
	var ratios []float64
	for i := range rw {
		if rw[i].Failed() || cx[i].Failed() {
			res.Table.AddRow(rw[i].Bench.Name, errCell, errCell, errCell)
			continue
		}
		row := E3Row{
			Name:      rw[i].Bench.Name,
			RiscBytes: rw[i].CodeBytes,
			CiscBytes: cx[i].CodeBytes,
		}
		row.Ratio = float64(row.RiscBytes) / float64(row.CiscBytes)
		ratios = append(ratios, row.Ratio)
		res.Rows = append(res.Rows, row)
		res.Table.AddRow(row.Name, report.Num(uint64(row.RiscBytes)),
			report.Num(uint64(row.CiscBytes)), fmt.Sprintf("%.2f", row.Ratio))
	}
	res.GeoMean = geomean(ratios)
	res.Table.AddRow("geometric mean", "", "", fmt.Sprintf("%.2f", res.GeoMean))
	return res, nil
}

// ---------- E4: execution time ----------

// E4Row is one benchmark's simulated-time comparison.
type E4Row struct {
	Name        string
	RiscSeconds float64
	CiscSeconds float64
	Speedup     float64 // CX time / RISC time: the paper reports ~2-4
}

// E4Result is the execution-time table.
type E4Result struct {
	Rows    []E4Row
	GeoMean float64
	Table   *report.Table
}

// E4ExecutionTime compares simulated wall time at each machine's clock.
func E4ExecutionTime(l *Lab) (*E4Result, error) {
	rw, cx := suitePair(l, cc.RISCWindowed, cc.CISC, Options{})
	res := &E4Result{Table: &report.Table{
		Title:   "E4. Execution time (simulated)",
		Note:    "(RISC I at a 400ns cycle vs CX at a 200ns microcycle; paper: RISC ~2-4x faster)",
		Headers: []string{"benchmark", "RISC I", "CX", "CX/RISC"},
	}}
	var ratios []float64
	for i := range rw {
		if rw[i].Failed() || cx[i].Failed() {
			res.Table.AddRow(rw[i].Bench.Name, errCell, errCell, errCell)
			continue
		}
		row := E4Row{
			Name:        rw[i].Bench.Name,
			RiscSeconds: rw[i].Seconds,
			CiscSeconds: cx[i].Seconds,
		}
		row.Speedup = row.CiscSeconds / row.RiscSeconds
		ratios = append(ratios, row.Speedup)
		res.Rows = append(res.Rows, row)
		res.Table.AddRow(row.Name, report.Seconds(row.RiscSeconds),
			report.Seconds(row.CiscSeconds), fmt.Sprintf("%.2f", row.Speedup))
	}
	res.GeoMean = geomean(ratios)
	res.Table.AddRow("geometric mean", "", "", fmt.Sprintf("%.2f", res.GeoMean))
	return res, nil
}

// ---------- E5: procedure-call traffic ----------

// E5Row compares data-memory traffic per procedure call.
type E5Row struct {
	Name          string
	Calls         uint64
	WindowedBytes uint64 // total data traffic, windowed RISC
	FlatBytes     uint64 // total data traffic, flat RISC
	CiscBytes     uint64 // total data traffic, CX
	WindowedPer   float64
	FlatPer       float64
	CiscPer       float64
}

// E5Result is the register-window headline table.
type E5Result struct {
	Rows  []E5Row
	Table *report.Table
}

// E5CallTraffic measures data-memory traffic on the call-heavy kernels
// under all three conventions: the register-window argument in one table.
func E5CallTraffic(l *Lab) (*E5Result, error) {
	res := &E5Result{Table: &report.Table{
		Title: "E5. Data-memory traffic and the cost of procedure calls",
		Note:  "(windows remove the save/restore traffic that flat RISC and CISC CALLS pay)",
		Headers: []string{"benchmark", "calls",
			"win bytes", "flat bytes", "CX bytes",
			"win B/call", "flat B/call", "CX B/call"},
	}}
	// Warm the cache in parallel; the table loop below then hits it in order.
	var jobs []Job
	for _, b := range prog.All() {
		if !b.CallHeavy {
			continue
		}
		for _, t := range []cc.Target{cc.RISCWindowed, cc.RISCFlat, cc.CISC} {
			jobs = append(jobs, Job{Bench: b, Target: t})
		}
	}
	l.RunParallel(jobs) // warm the cache; failures degrade per row below
	for _, b := range prog.All() {
		if !b.CallHeavy {
			continue
		}
		w, _ := l.Run(b, cc.RISCWindowed, Options{})
		f, _ := l.Run(b, cc.RISCFlat, Options{})
		x, _ := l.Run(b, cc.CISC, Options{})
		if w.Failed() || f.Failed() || x.Failed() {
			res.Table.AddRow(b.Name, errCell, errCell, errCell, errCell,
				errCell, errCell, errCell)
			continue
		}
		row := E5Row{
			Name:          b.Name,
			Calls:         w.Stats.Calls,
			WindowedBytes: w.Stats.DataBytes(),
			FlatBytes:     f.Stats.DataBytes(),
			CiscBytes:     x.Stats.DataBytes(),
		}
		calls := float64(row.Calls)
		row.WindowedPer = float64(row.WindowedBytes) / calls
		row.FlatPer = float64(row.FlatBytes) / calls
		row.CiscPer = float64(row.CiscBytes) / calls
		res.Rows = append(res.Rows, row)
		res.Table.AddRow(b.Name, report.Num(row.Calls),
			report.Num(row.WindowedBytes), report.Num(row.FlatBytes),
			report.Num(row.CiscBytes),
			fmt.Sprintf("%.1f", row.WindowedPer),
			fmt.Sprintf("%.1f", row.FlatPer),
			fmt.Sprintf("%.1f", row.CiscPer))
	}
	return res, nil
}

// ---------- E6: how many windows are enough ----------

// E6Row is one window-count configuration.
type E6Row struct {
	Windows      int
	Overflows    uint64
	Calls        uint64
	TrapPct      float64
	ExtraSeconds float64 // simulated time lost to spill/fill traps
}

// E6Result is the window-sizing study. Rows covers the recursion-heavy
// kernels; TypicalRows the rest of the suite; the depth quantiles aggregate
// the whole suite's call-depth distribution.
type E6Result struct {
	Rows        []E6Row
	TypicalRows []E6Row
	BatchRows   []E6BatchRow
	DepthP50    int
	DepthP90    int
	DepthP99    int
	Table       *report.Table
}

// E6WindowDepth sweeps the number of register windows over the call-heavy
// kernels; the paper's design point (8) should put the overflow rate near
// zero for real programs while deep recursion still degrades gracefully.
// TypicalRows measures the same sweep over the *non*-recursive kernels —
// the paper's "real C programs show call-depth locality" claim.
func E6WindowDepth(l *Lab) (*E6Result, error) {
	res := &E6Result{Table: &report.Table{
		Title:   "E6. Register-window sizing",
		Note:    "(the paper picked 8 windows; overflow traps should be rare by then)",
		Headers: []string{"windows", "calls", "overflows", "trap rate", "trap time"},
	}}
	// Warm every configuration the sweeps below will read, in parallel.
	var jobs []Job
	for _, n := range []int{3, 4, 6, 8, 12, 16} {
		for _, b := range prog.All() {
			jobs = append(jobs, Job{Bench: b, Target: cc.RISCWindowed, Opt: Options{Windows: n}})
		}
	}
	for _, b := range prog.All() {
		jobs = append(jobs, Job{Bench: b, Target: cc.RISCWindowed})
	}
	ackerBench, _ := prog.ByName("acker")
	for batch := 1; batch <= 4; batch++ {
		jobs = append(jobs, Job{Bench: ackerBench, Target: cc.RISCWindowed, Opt: Options{SpillBatch: batch}})
	}
	l.RunParallel(jobs) // warm the cache; failures degrade below
	failed := map[string]bool{}
	sweep := func(callHeavy bool) []E6Row {
		var rows []E6Row
		for _, n := range []int{3, 4, 6, 8, 12, 16} {
			var calls, ovf, trapCycles uint64
			for _, b := range prog.All() {
				if b.CallHeavy != callHeavy {
					continue
				}
				r, _ := l.Run(b, cc.RISCWindowed, Options{Windows: n})
				if r.Failed() {
					failed[b.Name] = true
					continue
				}
				calls += r.Stats.Calls
				ovf += r.Stats.WindowOverflow
				trapCycles += (r.Stats.WindowOverflow + r.Stats.WindowUnderflow) * timing.RiscSpillCycles
			}
			rows = append(rows, E6Row{
				Windows:      n,
				Overflows:    ovf,
				Calls:        calls,
				TrapPct:      100 * float64(ovf) / float64(calls),
				ExtraSeconds: float64(trapCycles) * timing.RiscCycleNS * 1e-9,
			})
		}
		return rows
	}
	res.Rows = sweep(true)
	res.TypicalRows = sweep(false)
	res.Table.AddRow("-- recursion-heavy kernels --", "", "", "", "")
	for _, row := range res.Rows {
		res.Table.AddRow(fmt.Sprintf("%d", row.Windows), report.Num(row.Calls),
			report.Num(row.Overflows), fmt.Sprintf("%.2f%%", row.TrapPct),
			report.Seconds(row.ExtraSeconds))
	}
	res.Table.AddRow("-- typical (non-recursive) kernels --", "", "", "", "")
	for _, row := range res.TypicalRows {
		res.Table.AddRow(fmt.Sprintf("%d", row.Windows), report.Num(row.Calls),
			report.Num(row.Overflows), fmt.Sprintf("%.2f%%", row.TrapPct),
			report.Seconds(row.ExtraSeconds))
	}

	// Call-depth distribution: the measurement (after Halbert & Kessler)
	// behind the window-count choice. Aggregate over the whole suite.
	agg := stats.New()
	for _, b := range prog.All() {
		r, _ := l.Run(b, cc.RISCWindowed, Options{})
		if r.Failed() {
			failed[b.Name] = true
			continue
		}
		agg.Add(r.Stats)
	}
	res.DepthP50 = agg.DepthQuantile(0.50)
	res.DepthP90 = agg.DepthQuantile(0.90)
	res.DepthP99 = agg.DepthQuantile(0.99)
	res.Table.AddRow("-- call-depth quantiles, whole suite --", "", "", "", "")
	res.Table.AddRow("p50 / p90 / p99 depth",
		fmt.Sprintf("%d", res.DepthP50),
		fmt.Sprintf("%d", res.DepthP90),
		fmt.Sprintf("%d", res.DepthP99), "")

	// E6b: overflow-handler policy — how many windows to spill per trap
	// (Halbert & Kessler's question). Ackermann, the thrashing worst case,
	// is where the policy matters.
	acker, _ := prog.ByName("acker")
	res.Table.AddRow("-- spill-batch policy on acker (8 windows) --", "", "", "", "")
	for batch := 1; batch <= 4; batch++ {
		r, _ := l.Run(acker, cc.RISCWindowed, Options{SpillBatch: batch})
		if r.Failed() {
			failed[acker.Name] = true
			res.Table.AddRow(fmt.Sprintf("batch=%d", batch), errCell, errCell, "", errCell)
			continue
		}
		row := E6BatchRow{
			Batch:   batch,
			Traps:   r.Stats.WindowOverflow,
			Cycles:  r.Stats.Cycles,
			Seconds: r.Seconds,
		}
		res.BatchRows = append(res.BatchRows, row)
		res.Table.AddRow(fmt.Sprintf("batch=%d", batch),
			report.Num(r.Stats.Calls), report.Num(row.Traps), "",
			report.Seconds(row.Seconds))
	}
	if len(failed) > 0 {
		names := make([]string, 0, len(failed))
		for n := range failed {
			names = append(names, n)
		}
		sort.Strings(names)
		res.Table.AddRow(errCell+" (excluded): "+strings.Join(names, ", "), "", "", "", "")
	}
	return res, nil
}

// E6BatchRow is one spill-batch policy measurement.
type E6BatchRow struct {
	Batch   int
	Traps   uint64
	Cycles  uint64
	Seconds float64
}

// ---------- E7: delayed jumps ----------

// E7Row compares optimized vs NOP-filled delay slots for one benchmark.
type E7Row struct {
	Name         string
	SlotsFilled  int
	Transfers    uint64
	UsefulPct    float64 // dynamic share of delay slots doing real work
	CyclesNop    uint64
	CyclesFilled uint64
	SavingPct    float64
}

// E7Result is the delayed-jump study.
type E7Result struct {
	Rows  []E7Row
	Table *report.Table
}

// E7DelaySlots measures what the instruction reorganizer buys: the paper's
// answer to branch latency was a compile-time pass, not hardware.
func E7DelaySlots(l *Lab) (*E7Result, error) {
	res := &E7Result{Table: &report.Table{
		Title: "E7. Delayed-jump slot filling",
		Note:  "(static slots filled by the reorganizer; dynamic useful-slot share; cycles saved)",
		Headers: []string{"benchmark", "filled(static)", "useful slots",
			"cycles (nop)", "cycles (opt)", "saved"},
	}}
	var jobs []Job
	for _, b := range prog.All() {
		jobs = append(jobs, Job{Bench: b, Target: cc.RISCWindowed, Opt: Options{NoDelayFill: true}})
		jobs = append(jobs, Job{Bench: b, Target: cc.RISCWindowed})
	}
	l.RunParallel(jobs) // warm the cache; failures degrade per row below
	for _, b := range prog.All() {
		nop, _ := l.Run(b, cc.RISCWindowed, Options{NoDelayFill: true})
		opt, _ := l.Run(b, cc.RISCWindowed, Options{})
		if nop.Failed() || opt.Failed() {
			res.Table.AddRow(b.Name, errCell, errCell, errCell, errCell, errCell)
			continue
		}
		slots := opt.Stats.DelaySlotUseful + opt.Stats.DelaySlotNops
		row := E7Row{
			Name:         b.Name,
			SlotsFilled:  opt.SlotsFilled,
			Transfers:    opt.Stats.Transfers,
			UsefulPct:    100 * float64(opt.Stats.DelaySlotUseful) / float64(slots),
			CyclesNop:    nop.Stats.Cycles,
			CyclesFilled: opt.Stats.Cycles,
		}
		row.SavingPct = 100 * (1 - float64(row.CyclesFilled)/float64(row.CyclesNop))
		res.Rows = append(res.Rows, row)
		res.Table.AddRow(b.Name, fmt.Sprintf("%d", row.SlotsFilled),
			fmt.Sprintf("%.1f%%", row.UsefulPct),
			report.Num(row.CyclesNop), report.Num(row.CyclesFilled),
			fmt.Sprintf("%.1f%%", row.SavingPct))
	}
	return res, nil
}

// ---------- E8: silicon area ----------

// E8Result is the area-model comparison.
type E8Result struct {
	Risc, Cisc area.Model
	Table      *report.Table
}

// E8AreaModel renders the floorplan argument: control is a sliver of RISC I
// and half of a microcoded CISC.
func E8AreaModel() *E8Result {
	r, c := area.RISC1(8), area.CX()
	t := &report.Table{
		Title:   "E8. Transistor budget (floorplan model)",
		Note:    "(paper: RISC I control ~6%, register file dominant; microcoded CISC control ~50%)",
		Headers: []string{"block", "RISC I", "CX"},
	}
	names := map[string]bool{}
	for _, b := range r.Blocks {
		names[b.Name] = true
	}
	for _, b := range c.Blocks {
		names[b.Name] = true
	}
	ordered := make([]string, 0, len(names))
	for n := range names {
		ordered = append(ordered, n)
	}
	sort.Strings(ordered)
	get := func(m area.Model, name string) string {
		for _, b := range m.Blocks {
			if b.Name == name {
				return report.Num(uint64(b.Transistors))
			}
		}
		return "-"
	}
	for _, n := range ordered {
		t.AddRow(n, get(r, n), get(c, n))
	}
	t.AddRow("TOTAL", report.Num(uint64(r.Total())), report.Num(uint64(c.Total())))
	t.AddRow("control fraction",
		fmt.Sprintf("%.1f%%", 100*r.ControlFraction()),
		fmt.Sprintf("%.1f%%", 100*c.ControlFraction()))
	t.AddRow("register-file fraction",
		fmt.Sprintf("%.1f%%", 100*r.RegisterFileFraction()),
		fmt.Sprintf("%.1f%%", 100*c.RegisterFileFraction()))
	return &E8Result{Risc: r, Cisc: c, Table: t}
}

// ---------- E9: memory traffic ----------

// E9Row is one benchmark's total memory traffic.
type E9Row struct {
	Name                 string
	RiscFetch, CiscFetch uint64
	RiscData, CiscData   uint64
	TotalRatio           float64 // RISC total / CX total
}

// E9Result is the memory-traffic comparison.
type E9Result struct {
	Rows  []E9Row
	Table *report.Table
}

// E9MemoryTraffic answers the classic objection to RISC: yes, it executes
// more instructions, but total memory traffic stays comparable because each
// fetch is simple and the windows remove data traffic.
func E9MemoryTraffic(l *Lab) (*E9Result, error) {
	rw, cx := suitePair(l, cc.RISCWindowed, cc.CISC, Options{})
	res := &E9Result{Table: &report.Table{
		Title: "E9. Memory traffic (bytes moved)",
		Note:  "(instruction fetch + data; RISC fetches more instruction bytes, moves less data)",
		Headers: []string{"benchmark", "RISC fetch", "CX fetch",
			"RISC data", "CX data", "RISC/CX total"},
	}}
	for i := range rw {
		r, c := rw[i], cx[i]
		if r.Failed() || c.Failed() {
			res.Table.AddRow(r.Bench.Name, errCell, errCell, errCell, errCell, errCell)
			continue
		}
		row := E9Row{
			Name:      r.Bench.Name,
			RiscFetch: r.Stats.FetchBytes, CiscFetch: c.Stats.FetchBytes,
			RiscData: r.Stats.DataBytes(), CiscData: c.Stats.DataBytes(),
		}
		row.TotalRatio = float64(row.RiscFetch+row.RiscData) /
			float64(row.CiscFetch+row.CiscData)
		res.Rows = append(res.Rows, row)
		res.Table.AddRow(row.Name,
			report.Num(row.RiscFetch), report.Num(row.CiscFetch),
			report.Num(row.RiscData), report.Num(row.CiscData),
			fmt.Sprintf("%.2f", row.TotalRatio))
	}
	return res, nil
}
