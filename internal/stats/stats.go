// Package stats accumulates the execution statistics that the RISC I
// evaluation is built from: dynamic instruction mix, cycle counts, memory
// traffic, procedure-call behaviour, register-window events and delay-slot
// usage.
package stats

import (
	"fmt"
	"sort"
	"strings"
)

// Stats is a bag of counters filled in by a simulated machine while it runs.
// The zero value is ready to use.
type Stats struct {
	// Dynamic instruction counts.
	Instructions uint64
	ByName       map[string]uint64 // mnemonic -> count
	ByCategory   map[string]uint64 // category -> count

	// Timing.
	Cycles uint64

	// Memory traffic in bytes (data side counted by mem.Memory; these are
	// the machine-visible aggregates copied out after a run).
	DataReads  uint64
	DataWrites uint64
	FetchBytes uint64

	// Procedure-call behaviour.
	Calls           uint64
	Returns         uint64
	MaxCallDepth    int
	WindowOverflow  uint64 // register-window spill traps
	WindowUnderflow uint64 // register-window fill traps
	// DepthHist[d] counts calls entered at nesting depth d (clamped to
	// the last bucket): the call-depth distribution behind the paper's
	// register-window sizing argument.
	DepthHist [64]uint64

	// Delayed-transfer accounting.
	Transfers       uint64 // executed control transfers
	TakenTransfers  uint64 // transfers that actually redirected control
	DelaySlotNops   uint64 // delay slots occupied by a NOP
	DelaySlotUseful uint64 // delay slots doing real work
}

// New returns an empty Stats with its maps allocated.
func New() *Stats {
	return &Stats{ByName: map[string]uint64{}, ByCategory: map[string]uint64{}}
}

// Count records one executed instruction of the given mnemonic and category.
func (s *Stats) Count(name, category string) {
	s.Instructions++
	s.ByName[name]++
	s.ByCategory[category]++
}

// DataBytes returns total data-memory traffic.
func (s *Stats) DataBytes() uint64 { return s.DataReads + s.DataWrites }

// MixEntry is one row of an instruction-mix table.
type MixEntry struct {
	Name  string
	Count uint64
	Pct   float64
}

// Mix returns the dynamic instruction mix sorted by descending frequency.
func (s *Stats) Mix() []MixEntry {
	return mixOf(s.ByName, s.Instructions)
}

// CategoryMix returns the per-category mix sorted by descending frequency.
func (s *Stats) CategoryMix() []MixEntry {
	return mixOf(s.ByCategory, s.Instructions)
}

func mixOf(m map[string]uint64, total uint64) []MixEntry {
	out := make([]MixEntry, 0, len(m))
	for name, n := range m {
		e := MixEntry{Name: name, Count: n}
		if total > 0 {
			e.Pct = 100 * float64(n) / float64(total)
		}
		out = append(out, e)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Count != out[j].Count {
			return out[i].Count > out[j].Count
		}
		return out[i].Name < out[j].Name
	})
	return out
}

// Add accumulates o into s (used to aggregate a whole benchmark suite).
func (s *Stats) Add(o *Stats) {
	s.Instructions += o.Instructions
	s.Cycles += o.Cycles
	s.DataReads += o.DataReads
	s.DataWrites += o.DataWrites
	s.FetchBytes += o.FetchBytes
	s.Calls += o.Calls
	s.Returns += o.Returns
	if o.MaxCallDepth > s.MaxCallDepth {
		s.MaxCallDepth = o.MaxCallDepth
	}
	s.WindowOverflow += o.WindowOverflow
	s.WindowUnderflow += o.WindowUnderflow
	for i := range o.DepthHist {
		s.DepthHist[i] += o.DepthHist[i]
	}
	s.Transfers += o.Transfers
	s.TakenTransfers += o.TakenTransfers
	s.DelaySlotNops += o.DelaySlotNops
	s.DelaySlotUseful += o.DelaySlotUseful
	if s.ByName == nil {
		s.ByName = map[string]uint64{}
	}
	if s.ByCategory == nil {
		s.ByCategory = map[string]uint64{}
	}
	for k, v := range o.ByName {
		s.ByName[k] += v
	}
	for k, v := range o.ByCategory {
		s.ByCategory[k] += v
	}
}

// RecordDepth counts one call entered at nesting depth d.
func (s *Stats) RecordDepth(d int) {
	if d < 0 {
		d = 0
	}
	if d >= len(s.DepthHist) {
		d = len(s.DepthHist) - 1
	}
	s.DepthHist[d]++
}

// DepthQuantile returns the smallest depth containing at least frac of all
// recorded calls (frac in (0,1]).
func (s *Stats) DepthQuantile(frac float64) int {
	var total uint64
	for _, n := range s.DepthHist {
		total += n
	}
	if total == 0 {
		return 0
	}
	want := uint64(frac * float64(total))
	if want == 0 {
		want = 1
	}
	var cum uint64
	for d, n := range s.DepthHist {
		cum += n
		if cum >= want {
			return d
		}
	}
	return len(s.DepthHist) - 1
}

// String renders a compact human-readable summary.
func (s *Stats) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "instructions=%d cycles=%d", s.Instructions, s.Cycles)
	if s.Instructions > 0 {
		fmt.Fprintf(&b, " cpi=%.2f", float64(s.Cycles)/float64(s.Instructions))
	}
	fmt.Fprintf(&b, " dataR=%dB dataW=%dB fetch=%dB calls=%d depth=%d ovf=%d unf=%d",
		s.DataReads, s.DataWrites, s.FetchBytes, s.Calls, s.MaxCallDepth,
		s.WindowOverflow, s.WindowUnderflow)
	return b.String()
}
