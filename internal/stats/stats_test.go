package stats

import (
	"strings"
	"testing"
)

func TestCountAndMix(t *testing.T) {
	s := New()
	s.Count("add", "alu")
	s.Count("add", "alu")
	s.Count("ldl", "load")
	s.Count("callr", "control")

	if s.Instructions != 4 {
		t.Fatalf("Instructions = %d", s.Instructions)
	}
	mix := s.Mix()
	if mix[0].Name != "add" || mix[0].Count != 2 || mix[0].Pct != 50 {
		t.Errorf("top of mix = %+v, want add/2/50%%", mix[0])
	}
	// Ties break alphabetically for stable tables.
	if mix[1].Name != "callr" || mix[2].Name != "ldl" {
		t.Errorf("tie order = %s, %s; want callr, ldl", mix[1].Name, mix[2].Name)
	}
	cat := s.CategoryMix()
	if cat[0].Name != "alu" || cat[0].Count != 2 {
		t.Errorf("category mix top = %+v", cat[0])
	}
}

func TestMixEmpty(t *testing.T) {
	s := New()
	if len(s.Mix()) != 0 {
		t.Error("empty stats produced mix entries")
	}
}

func TestAdd(t *testing.T) {
	a, b := New(), New()
	a.Count("add", "alu")
	a.Cycles, a.MaxCallDepth, a.DataReads = 10, 3, 8
	b.Count("sub", "alu")
	b.Count("add", "alu")
	b.Cycles, b.MaxCallDepth, b.DataWrites = 5, 7, 4
	b.WindowOverflow, b.DelaySlotNops = 2, 1

	a.Add(b)
	if a.Instructions != 3 || a.Cycles != 15 || a.MaxCallDepth != 7 {
		t.Errorf("aggregate wrong: %+v", a)
	}
	if a.ByName["add"] != 2 || a.ByName["sub"] != 1 {
		t.Errorf("ByName aggregate wrong: %v", a.ByName)
	}
	if a.DataBytes() != 12 || a.WindowOverflow != 2 || a.DelaySlotNops != 1 {
		t.Errorf("counter aggregate wrong: %+v", a)
	}
}

func TestAddIntoZeroValue(t *testing.T) {
	var a Stats // zero value, nil maps
	b := New()
	b.Count("add", "alu")
	a.Add(b)
	if a.ByName["add"] != 1 {
		t.Error("Add into zero-value Stats lost counts")
	}
}

func TestString(t *testing.T) {
	s := New()
	s.Count("add", "alu")
	s.Cycles = 2
	out := s.String()
	for _, want := range []string{"instructions=1", "cycles=2", "cpi=2.00"} {
		if !strings.Contains(out, want) {
			t.Errorf("String() = %q missing %q", out, want)
		}
	}
}
