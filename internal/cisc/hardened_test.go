package cisc

import (
	"context"
	"errors"
	"testing"
	"time"

	"risc1/internal/mem"
)

// TestCXRunContextDeadline cancels an unbounded CX run by deadline.
func TestCXRunContextDeadline(t *testing.T) {
	c := New(Config{})
	if err := c.Load(MustAssemble(cxInfiniteLoop)); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
	defer cancel()
	err := c.RunContext(ctx)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want DeadlineExceeded", err)
	}
	var re *RunError
	if !errors.As(err, &re) {
		t.Fatalf("err = %T, want *RunError", err)
	}
	if re.Inst == "" {
		t.Error("Inst empty, want disassembly of the interrupted instruction")
	}
	if len(re.Regs) == 0 {
		t.Error("Regs empty, want a register snapshot")
	}
}

// TestCXInjectedFaultSurfacesAsRunError checks the mem fault-injection hook
// reaches CX run errors with the machine state attached.
func TestCXInjectedFaultSurfacesAsRunError(t *testing.T) {
	c := New(Config{})
	img := MustAssemble("main: .mask\n movl #7, @0xFFFFFF04\n ret\n")
	if err := c.Load(img); err != nil {
		t.Fatal(err)
	}
	c.Mem.SetFaultPlan(&mem.FaultPlan{FailNthWrite: 1})
	err := c.Run()
	var mf *mem.Fault
	if !errors.As(err, &mf) || !mf.Injected {
		t.Fatalf("err = %v, want injected mem.Fault", err)
	}
	var re *RunError
	if !errors.As(err, &re) {
		t.Fatalf("err = %T, want *RunError", err)
	}
	if c.Console() != "" {
		t.Fatalf("faulted store still printed %q", c.Console())
	}
}
