package cisc

import (
	"errors"
	"strings"
	"testing"

	"risc1/internal/mem"
)

func runProgram(t *testing.T, src string) *CPU {
	t.Helper()
	img, err := Assemble(src)
	if err != nil {
		t.Fatalf("assemble: %v", err)
	}
	c := New(Config{})
	if err := c.Load(img); err != nil {
		t.Fatalf("load: %v", err)
	}
	if err := c.Run(); err != nil {
		t.Fatalf("run: %v", err)
	}
	return c
}

// Every CX procedure starts with a save mask; main included.
func TestBasicALU(t *testing.T) {
	c := runProgram(t, `
	main:	.mask
		movl #10, r1
		addl3 r1, r1, r2        ; 20
		subl3 r2, #5, r3        ; 20-5 = 15? no: subl3 a,b -> a-b = 15
		mull3 r2, #3, r4        ; 60
		divl3 r4, #7, r5        ; 8
		ashl #3, r1, r6         ; 80
		ashl #-2, r6, r7        ; 20
		andl3 r4, #0x3C, r8     ; 60 & 0x3c = 0x3c
		orl3 r8, #1, r9
		xorl3 r9, r9, r10       ; 0
		incl r1                 ; 11
		decl r2                 ; 19
		ret
	`)
	want := map[uint8]uint32{
		1: 11, 2: 19, 3: 15, 4: 60, 5: 8, 6: 80, 7: 20,
		8: 0x3C, 9: 0x3D, 10: 0,
	}
	for r, v := range want {
		if got := c.Reg(r); got != v {
			t.Errorf("r%d = %d, want %d", r, got, v)
		}
	}
	if !c.Halted() {
		t.Error("did not halt")
	}
}

func TestMemoryOperands(t *testing.T) {
	c := runProgram(t, `
	main:	.mask
		movl #7, @cell
		addl2 #5, @cell         ; memory is a first-class ALU operand
		movl @cell, r1
		moval cell, r2
		movl (r2), r3
		movl #1, 4(r2)
		movl 4(r2), r4
		ret
		.align 4
	cell:	.word 0, 0
	`)
	if c.Reg(1) != 12 || c.Reg(3) != 12 || c.Reg(4) != 1 {
		t.Errorf("r1=%d r3=%d r4=%d; want 12 12 1", c.Reg(1), c.Reg(3), c.Reg(4))
	}
}

func TestIndexedAddressing(t *testing.T) {
	c := runProgram(t, `
	main:	.mask
		moval tab, r1
		movl #2, r2
		movl (r1)[r2], r3       ; longword scale: tab[2] = 30
		moval bytes, r4
		movl #1, r5
		movzbl (r4)[r5.b], r6   ; byte scale: bytes[1] = 9
		ret
		.align 4
	tab:	.word 10, 20, 30, 40
	bytes:	.byte 8, 9, 10
	`)
	if c.Reg(3) != 30 || c.Reg(6) != 9 {
		t.Errorf("indexed reads: r3=%d r6=%d; want 30 9", c.Reg(3), c.Reg(6))
	}
}

func TestByteOps(t *testing.T) {
	c := runProgram(t, `
	main:	.mask
		movl #0xAABBCCFF, r1
		cvtbl r1, r2            ; sign-extend 0xFF = -1
		movzbl r1, r3           ; 255
		movb #7, @buf
		movzbl @buf, r4
		ret
	buf:	.byte 0
	`)
	if c.Reg(2) != 0xFFFFFFFF || c.Reg(3) != 255 || c.Reg(4) != 7 {
		t.Errorf("r2=%#x r3=%d r4=%d", c.Reg(2), c.Reg(3), c.Reg(4))
	}
}

func TestBranchesAndLoops(t *testing.T) {
	// sum 1..10 with a loop.
	c := runProgram(t, `
	main:	.mask
		clrl r1
		movl #1, r2
	loop:	cmpl r2, #10
		bgt done
		addl2 r2, r1
		incl r2
		br loop
	done:	ret
	`)
	if c.Reg(1) != 55 {
		t.Errorf("sum = %d, want 55", c.Reg(1))
	}
}

func TestUnsignedConditions(t *testing.T) {
	c := runProgram(t, `
	main:	.mask
		clrl r1
		movl #-3, r2            ; 0xFFFFFFFD
		cmpl r2, #5
		bhi big                 ; unsigned: 0xFFFFFFFD > 5
		br out
	big:	movl #1, r1
	out:	cmpl r2, #5
		blt neg                 ; signed: -3 < 5
		br fin
	neg:	addl2 #2, r1
	fin:	ret
	`)
	if c.Reg(1) != 3 {
		t.Errorf("condition bits = %d, want 3", c.Reg(1))
	}
}

func TestCallsRetWithMaskAndArgs(t *testing.T) {
	// add3(a, b, c) = a+b+c, args via AP, saved regs restored.
	c := runProgram(t, `
	main:	.mask r2
		movl #111, r2           ; must survive the call
		pushl #30
		pushl #20
		pushl #10               ; arg0 pushed last
		calls #3, add3
		addl3 r0, r2, r1        ; r2 must still be 111 here
		ret
	add3:	.mask r2, r3
		movl 4(ap), r0          ; arg0
		movl #0, r2             ; clobber callee-saved; mask restores
		movl #0, r3
		addl2 8(ap), r0
		addl2 12(ap), r0
		ret
	`)
	// r1 = add3(10,20,30) + r2; r2 still 111 after the call only if
	// add3's RET restored it from the mask save area. (After main's own
	// RET, r2 reverts to its entry-time value — so check via r1.)
	if c.Reg(1) != 171 {
		t.Errorf("r0+r2 = %d, want 171 (mask restore failed?)", c.Reg(1))
	}
	s := c.Stats()
	if s.Calls != 1 || s.Returns != 2 { // add3's ret + main's ret
		t.Errorf("calls=%d returns=%d", s.Calls, s.Returns)
	}
}

func TestRecursionDepth(t *testing.T) {
	// sum(n) = n + sum(n-1) recursively; exercises frames + arg pop.
	c := runProgram(t, `
	main:	.mask
		pushl #30
		calls #1, sum
		movl r0, @0xFFFFFF04    ; console putint
		ret
	sum:	.mask r2
		movl 4(ap), r2
		tstl r2
		bgt rec
		clrl r0
		ret
	rec:	subl3 r2, #1, r0
		pushl r0
		calls #1, sum
		addl2 r2, r0
		ret
	`)
	if c.Console() != "465" {
		t.Errorf("sum(30) printed %q, want 465", c.Console())
	}
	// The entry call into main is not counted, so depth is the explicit
	// calls: sum(30)..sum(0).
	if d := c.Stats().MaxCallDepth; d != 31 {
		t.Errorf("max depth = %d, want 31", d)
	}
}

func TestSubl3Order(t *testing.T) {
	c := runProgram(t, `
	main:	.mask
		movl #7, r1
		subl3 r1, #2, r2        ; r2 = 7 - 2
		subl3 #2, r1, r3        ; r3 = 2 - 7
		movl #10, r4
		subl2 #3, r4            ; r4 -= 3
		ret
	`)
	if c.Reg(2) != 5 || c.Reg(3) != uint32(0xFFFFFFFB) || c.Reg(4) != 7 {
		t.Errorf("r2=%d r3=%#x r4=%d", c.Reg(2), c.Reg(3), c.Reg(4))
	}
}

func TestConsoleOutput(t *testing.T) {
	c := runProgram(t, `
	main:	.mask
		movl #'h', @0xFFFFFF00
		movl #'i', @0xFFFFFF00
		movl #-5, @0xFFFFFF04
		ret
	`)
	if c.Console() != "hi-5" {
		t.Errorf("console = %q", c.Console())
	}
}

func TestVariableLengthSizes(t *testing.T) {
	// Density check: register ops are tiny, memory/immediate ops longer.
	img := MustAssemble(`
	main:	.mask
		movl r1, r2             ; 1 + 1 + 1 = 3 bytes
		movl #5, r1             ; 1 + 2 + 1 = 4 bytes
		movl #100000, r1        ; 1 + 5 + 1 = 7 bytes
		movl @cell, r1          ; 1 + 5 + 1 = 7 bytes
		incl r1                 ; 2 bytes
		ret                     ; 1 byte
	cell:	.word 0
	`)
	// 2 (mask) + 3 + 4 + 7 + 7 + 2 + 1 = 26, then the word (aligned at 26).
	if img.Size() != 30 {
		t.Errorf("image size = %d, want 30", img.Size())
	}
}

func TestHaltOpcode(t *testing.T) {
	c := runProgram(t, `
	main:	.mask
		movl #1, r1
		halt
		movl #2, r1
	`)
	if c.Reg(1) != 1 {
		t.Error("halt did not stop execution")
	}
}

func TestDivideByZeroFaults(t *testing.T) {
	img := MustAssemble(`
	main:	.mask
		clrl r1
		divl3 #4, r1, r2
		ret
	`)
	c := New(Config{})
	c.Load(img)
	err := c.Run()
	if err == nil || !strings.Contains(err.Error(), "divide by zero") {
		t.Errorf("err = %v", err)
	}
}

func TestUndefinedOpcodeFaults(t *testing.T) {
	img := MustAssemble("main: .mask\n .byte 0xEE\n")
	c := New(Config{})
	c.Load(img)
	err := c.Run()
	if err == nil || !strings.Contains(err.Error(), "undefined opcode") {
		t.Errorf("err = %v", err)
	}
	var ce *Error
	if !errors.As(err, &ce) {
		t.Error("error is not a *cisc.Error")
	}
}

func TestRunawayHitsCycleLimit(t *testing.T) {
	img := MustAssemble("main: .mask\nloop: br loop\n")
	c := New(Config{MaxCycles: 500})
	c.Load(img)
	if err := c.Run(); !errors.Is(err, ErrMaxCycles) {
		t.Errorf("err = %v, want ErrMaxCycles", err)
	}
}

func TestStepAfterHalt(t *testing.T) {
	c := runProgram(t, "main: .mask\n ret\n")
	if err := c.Step(); !errors.Is(err, ErrHalted) {
		t.Errorf("err = %v, want ErrHalted", err)
	}
}

func TestMemoryFaultPropagates(t *testing.T) {
	img := MustAssemble(`
	main:	.mask
		movl @0x00F00000, r1    ; far outside 1MiB RAM, below console
		ret
	`)
	c := New(Config{})
	c.Load(img)
	err := c.Run()
	var f *mem.Fault
	if !errors.As(err, &f) {
		t.Errorf("err = %v, want memory fault", err)
	}
}

func TestAssemblerErrors(t *testing.T) {
	cases := map[string]string{
		"unknown mnemonic": "main: frob r1",
		"operand count":    "main: movl r1",
		"imm dest":         "main: movl r1, #5",
		"bad mask reg":     "main: .mask sp",
		"undefined label":  "main: .mask\n br nowhere",
		"redefined label":  "x: .mask\nx: ret",
		"bad count":        "main: calls #999, main",
	}
	for what, src := range cases {
		if _, err := Assemble(src); err == nil {
			t.Errorf("%s assembled without error", what)
		}
	}
}

func TestCyclesAccumulate(t *testing.T) {
	c := runProgram(t, `
	main:	.mask
		movl #1, r1
		addl2 #1, r1
		ret
	`)
	s := c.Stats()
	if s.Cycles == 0 || s.Instructions != 3 {
		t.Errorf("cycles=%d instructions=%d", s.Cycles, s.Instructions)
	}
	if s.FetchBytes == 0 {
		t.Error("no fetch bytes recorded")
	}
	if c.Time() <= 0 {
		t.Error("Time() not positive")
	}
}

func TestMixCategories(t *testing.T) {
	c := runProgram(t, `
	main:	.mask
		movl #3, r1
		cmpl r1, #3
		beq ok
	ok:	pushl r1
		calls #1, f
		ret
	f:	.mask
		ret
	`)
	s := c.Stats()
	for _, cat := range []string{"move", "compare", "control", "call"} {
		if s.ByCategory[cat] == 0 {
			t.Errorf("category %q missing from mix: %v", cat, s.ByCategory)
		}
	}
}
