package cisc

import "testing"

// TestSelfModifyingCode overwrites the immediate byte of an instruction the
// CPU has already executed (and therefore memoized), re-executes it, and
// checks the new value is used. Without write-watch invalidation the memo
// would replay the stale "addl2 #7, r1" forever.
func TestSelfModifyingCode(t *testing.T) {
	c := runProgram(t, `
	main:	.mask
		clrl r1
		moval patch, r3
	patch:	addl2 #7, r1        ; encoded [op][imm8 spec][07][r1 spec]
		cmpl r1, #7
		bne done            ; after the patch r1 jumps past 7
		movb #99, 2(r3)     ; overwrite the immediate byte
		br patch            ; re-execute the patched instruction
	done:	ret
	`)
	if got := c.Reg(1); got != 7+99 {
		t.Errorf("r1 = %d, want 106 (patched immediate was not used)", got)
	}
}
