package cisc

import "testing"

// TestSelfModifyingCode overwrites the immediate byte of an instruction the
// CPU has already executed (and therefore memoized), re-executes it, and
// checks the new value is used. Without write-watch invalidation the memo
// would replay the stale "addl2 #7, r1" forever.
func TestSelfModifyingCode(t *testing.T) {
	c := runProgram(t, `
	main:	.mask
		clrl r1
		moval patch, r3
	patch:	addl2 #7, r1        ; encoded [op][imm8 spec][07][r1 spec]
		cmpl r1, #7
		bne done            ; after the patch r1 jumps past 7
		movb #99, 2(r3)     ; overwrite the immediate byte
		br patch            ; re-execute the patched instruction
	done:	ret
	`)
	if got := c.Reg(1); got != 7+99 {
		t.Errorf("r1 = %d, want 106 (patched immediate was not used)", got)
	}
}

// TestMemoInvalidationLastByte pins the write-watch window's boundary: a
// store landing exactly on the LAST byte of a memoized maximum-length
// (maxInstBytes) instruction. The suspect window reaches back
// maxInstBytes-1 bytes before the store, so the entry at the instruction's
// start is the very first index it covers — an off-by-one there would
// replay the stale bytes forever. The 16-byte instruction is addl3 with
// two 32-bit immediates and an absolute destination; the patch rewrites
// the final byte (the low byte of the big-endian @res1 extension) to
// redirect the result into res2.
func TestMemoInvalidationLastByte(t *testing.T) {
	const src = `
	main:	.mask
		clrl r5
		moval patch, r3
		moval res2, r4
	patch:	addl3 #1000000, #2000000, @res1
	after:	cmpl r5, #1
		beq done
		movl #1, r5
		movb r4, 15(r3)
		br patch
	done:	movl @res1, r6
		movl @res2, r7
		ret
		.align 4
	res1:	.word 0
	res2:	.word 0
	`
	img, err := Assemble(src)
	if err != nil {
		t.Fatalf("assemble: %v", err)
	}
	patch, after := img.Symbols["patch"], img.Symbols["after"]
	if got := after - patch; got != maxInstBytes {
		t.Fatalf("patched instruction spans %d bytes, want maxInstBytes (%d)", got, maxInstBytes)
	}
	res1, res2 := img.Symbols["res1"], img.Symbols["res2"]
	if (res1^res2)&^uint32(0xFF) != 0 {
		t.Fatalf("res1 (%#x) and res2 (%#x) must differ only in the low byte", res1, res2)
	}

	c := New(Config{})
	if err := c.Load(img); err != nil {
		t.Fatalf("load: %v", err)
	}
	if err := c.Run(); err != nil {
		t.Fatalf("run: %v", err)
	}
	const want = 1000000 + 2000000
	if got := c.Reg(6); got != want {
		t.Errorf("res1 = %d, want %d (first, unpatched execution)", got, want)
	}
	if got := c.Reg(7); got != want {
		t.Errorf("res2 = %d, want %d (stale memo replayed after a last-byte store)", got, want)
	}
}
