package cisc

import (
	"math/rand"
	"testing"
)

// TestRandomBytesNeverPanic feeds CX random byte streams as code. The
// variable-length decoder must reject or execute every byte sequence
// without ever panicking — wild specifiers, truncated instructions,
// corrupted CALLS frames included.
func TestRandomBytesNeverPanic(t *testing.T) {
	r := rand.New(rand.NewSource(17))
	for trial := 0; trial < 400; trial++ {
		c := New(Config{MemSize: 1 << 16, MaxCycles: 20000})
		code := make([]byte, 512)
		r.Read(code)
		// A plausible entry: mask word then random bytes.
		code[0], code[1] = 0, 0
		if err := c.Mem.LoadProgram(0, code); err != nil {
			t.Fatal(err)
		}
		img := &Image{Org: 0, Bytes: nil, Entry: 0, Symbols: map[string]uint32{}}
		if err := c.Load(img); err != nil {
			t.Fatal(err)
		}
		// Load cleared memory contents? No: Load only copies img.Bytes
		// (empty) — re-place the random code afterwards.
		if err := c.Mem.LoadProgram(0, code); err != nil {
			t.Fatal(err)
		}
		func() {
			defer func() {
				if p := recover(); p != nil {
					t.Fatalf("trial %d: panic: %v\ncode: % x", trial, p, code[:32])
				}
			}()
			_ = c.Run() // faults fine; panics not
		}()
	}
}

// FuzzExec is the native-fuzzing form of TestRandomBytesNeverPanic: the
// fuzzer mutates raw CX code bytes and the variable-length decoder must
// reject or execute every stream without panicking. Run continuously with
// `go test -fuzz=FuzzExec ./internal/cisc`.
func FuzzExec(f *testing.F) {
	f.Add([]byte{0x00, 0x00})
	seed := make([]byte, 64)
	rand.New(rand.NewSource(11)).Read(seed)
	seed[0], seed[1] = 0, 0 // mask word entry
	f.Add(seed)
	f.Fuzz(func(t *testing.T, code []byte) {
		if len(code) < 2 || len(code) > 4096 {
			return
		}
		c := New(Config{MemSize: 1 << 16, MaxCycles: 20000})
		img := &Image{Org: 0, Bytes: nil, Entry: 0, Symbols: map[string]uint32{}}
		if err := c.Load(img); err != nil {
			t.Fatal(err)
		}
		if err := c.Mem.LoadProgram(0, code); err != nil {
			return
		}
		defer func() {
			if p := recover(); p != nil {
				t.Fatalf("panic: %v\ncode: % x", p, code)
			}
		}()
		_ = c.Run() // faults fine; panics not
	})
}

// TestRandomFramePointerRET corrupts FP before a RET: the unwinder walks
// attacker-controlled memory and must fault cleanly.
func TestRandomFramePointerRET(t *testing.T) {
	r := rand.New(rand.NewSource(5))
	for trial := 0; trial < 100; trial++ {
		img := MustAssemble("main: .mask\n ret\n")
		c := New(Config{MemSize: 1 << 16})
		if err := c.Load(img); err != nil {
			t.Fatal(err)
		}
		c.SetReg(FP, r.Uint32())
		func() {
			defer func() {
				if p := recover(); p != nil {
					t.Fatalf("trial %d: panic on corrupted FP: %v", trial, p)
				}
			}()
			_ = c.Run()
		}()
	}
}
