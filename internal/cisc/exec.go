package cisc

import (
	"fmt"
)

// category buckets for the instruction-mix statistics, chosen to be
// comparable with the RISC I categories.
func category(op Op) string {
	switch {
	case op == OpHALT:
		return "misc"
	case op >= OpMOVL && op <= OpCLRL:
		return "move"
	case op >= OpADDL2 && op <= OpDECL:
		return "alu"
	case op >= OpCMPL && op <= OpTSTL:
		return "compare"
	case op == OpCALLS || op == OpRET:
		return "call"
	default:
		return "control"
	}
}

// Step executes one CX instruction. The MaxCycles budget is exact: a step
// that would begin at or beyond the limit does not execute, so both Run
// loops and external Step callers observe the abort at the same
// deterministic microcycle.
func (c *CPU) Step() error {
	if c.halted {
		return ErrHalted
	}
	if c.stat.Cycles >= c.cfg.MaxCycles {
		return c.runError(c.pc, ErrMaxCycles)
	}
	start := c.pc
	c.cursor = c.pc
	c.instStart = start
	c.replay = nil
	c.rec = false
	if off := start - c.codeOrg; off < uint32(len(c.memo)) {
		if e := &c.memo[off]; e.n > 0 {
			c.replay = e.b[:e.n]
		} else {
			c.rec, c.recN = true, 0
		}
	}
	opByte, err := c.fetchByte()
	if err != nil {
		return c.runError(start, err)
	}
	op := Op(opByte)
	info := &opDense[opByte]
	if info.name == "" {
		return c.runError(start, fmt.Errorf("undefined opcode %#02x", opByte))
	}
	c.stat.Instructions++
	c.opCounts[op]++
	c.stat.Cycles += info.base

	if err := c.exec(op); err != nil {
		return c.runError(start, err)
	}
	if c.rec {
		// The whole instruction fetched contiguously from inside the code
		// segment: memoize it (unless it straddles the segment end).
		if idx := start - c.codeOrg; idx+uint32(c.recN) <= uint32(len(c.memo)) {
			e := &c.memo[idx]
			e.n = c.recN
			e.b = c.recBuf
		}
	}
	if !c.halted {
		// Control transfers set pc themselves by moving the cursor.
		c.pc = c.cursor
	}
	return nil
}

func (c *CPU) exec(op Op) error {
	switch op {
	case OpHALT:
		c.halted = true
		return nil

	case OpMOVL, OpMOVAL, OpPUSHL, OpPOPL, OpCLRL, OpTSTL:
		return c.execMove(op)

	case OpMOVB, OpCVTBL, OpMOVZBL, OpCMPB:
		return c.execByte(op)

	case OpADDL2, OpADDL3, OpSUBL2, OpSUBL3, OpMULL2, OpMULL3,
		OpDIVL2, OpDIVL3, OpANDL3, OpORL3, OpXORL3, OpASHL,
		OpINCL, OpDECL, OpCMPL:
		return c.execALU(op)

	case OpBR, OpBEQ, OpBNE, OpBGT, OpBLE, OpBGE, OpBLT,
		OpBHI, OpBLOS, OpBHIS, OpBLO, OpJMP:
		return c.execBranch(op)

	case OpCALLS:
		return c.execCalls()
	case OpRET:
		return c.execRet()
	}
	return fmt.Errorf("unimplemented opcode %v", op)
}

func (c *CPU) execMove(op Op) error {
	switch op {
	case OpMOVL:
		src, err := c.decodeSpec()
		if err != nil {
			return err
		}
		v, err := c.read32(src)
		if err != nil {
			return err
		}
		dst, err := c.decodeSpec()
		if err != nil {
			return err
		}
		c.setNZ(v)
		return c.write32(dst, v)
	case OpMOVAL:
		src, err := c.decodeSpec()
		if err != nil {
			return err
		}
		if src.isReg || src.isImm {
			return fmt.Errorf("moval needs a memory operand")
		}
		dst, err := c.decodeSpec()
		if err != nil {
			return err
		}
		return c.write32(dst, src.addr)
	case OpPUSHL:
		src, err := c.decodeSpec()
		if err != nil {
			return err
		}
		v, err := c.read32(src)
		if err != nil {
			return err
		}
		return c.push(v)
	case OpPOPL:
		dst, err := c.decodeSpec()
		if err != nil {
			return err
		}
		v, err := c.pop()
		if err != nil {
			return err
		}
		return c.write32(dst, v)
	case OpCLRL:
		dst, err := c.decodeSpec()
		if err != nil {
			return err
		}
		c.setNZ(0)
		return c.write32(dst, 0)
	case OpTSTL:
		src, err := c.decodeSpec()
		if err != nil {
			return err
		}
		v, err := c.read32(src)
		if err != nil {
			return err
		}
		c.setNZ(v)
		return nil
	}
	return fmt.Errorf("bad move op %v", op)
}

func (c *CPU) execByte(op Op) error {
	src, err := c.decodeSpec()
	if err != nil {
		return err
	}
	b, err := c.read8(src)
	if err != nil {
		return err
	}
	switch op {
	case OpCMPB:
		src2, err := c.decodeSpec()
		if err != nil {
			return err
		}
		b2, err := c.read8(src2)
		if err != nil {
			return err
		}
		c.subFlags(uint32(int32(int8(b))), uint32(int32(int8(b2))))
		return nil
	}
	dst, err := c.decodeSpec()
	if err != nil {
		return err
	}
	switch op {
	case OpMOVB:
		c.setNZ(uint32(b))
		return c.write8(dst, b)
	case OpCVTBL:
		v := uint32(int32(int8(b)))
		c.setNZ(v)
		return c.write32(dst, v)
	default: // MOVZBL
		v := uint32(b)
		c.setNZ(v)
		return c.write32(dst, v)
	}
}

func (c *CPU) execALU(op Op) error {
	switch op {
	case OpINCL, OpDECL:
		dst, err := c.decodeSpec()
		if err != nil {
			return err
		}
		v, err := c.read32(dst)
		if err != nil {
			return err
		}
		var r uint32
		if op == OpINCL {
			r = c.addFlags(v, 1)
		} else {
			r = c.subFlags(v, 1)
		}
		return c.write32(dst, r)
	case OpCMPL:
		a, err := c.readOperand()
		if err != nil {
			return err
		}
		b, err := c.readOperand()
		if err != nil {
			return err
		}
		c.subFlags(a, b)
		return nil
	}

	// Binary ops: 2-operand forms read+write their second operand,
	// 3-operand forms have a separate destination.
	a, err := c.readOperand()
	if err != nil {
		return err
	}
	two := op == OpADDL2 || op == OpSUBL2 || op == OpMULL2 || op == OpDIVL2
	var b uint32
	var dst loc
	if two {
		dst, err = c.decodeSpec()
		if err != nil {
			return err
		}
		b, err = c.read32(dst)
		if err != nil {
			return err
		}
	} else {
		b, err = c.readOperand()
		if err != nil {
			return err
		}
		dst, err = c.decodeSpec()
		if err != nil {
			return err
		}
	}

	var r uint32
	switch op {
	case OpADDL2, OpADDL3:
		r = c.addFlags(b, a)
	case OpSUBL2:
		r = c.subFlags(b, a) // subl2 src,dst: dst -= src
	case OpSUBL3:
		r = c.subFlags(a, b) // subl3 a,b,dst: dst = a - b
	case OpMULL2, OpMULL3:
		r = uint32(int32(a) * int32(b))
		c.setNZ(r)
	case OpDIVL2, OpDIVL3:
		// divl2 src,dst: dst /= src.  divl3 a,b,dst: dst = a / b.
		num, den := int32(b), int32(a)
		if !two {
			num, den = int32(a), int32(b)
		}
		if den == 0 {
			return fmt.Errorf("divide by zero")
		}
		r = uint32(num / den)
		c.setNZ(r)
	case OpANDL3:
		r = a & b
		c.setNZ(r)
	case OpORL3:
		r = a | b
		c.setNZ(r)
	case OpXORL3:
		r = a ^ b
		c.setNZ(r)
	case OpASHL:
		// ashl count,src,dst: positive count shifts left, negative right
		// (arithmetic). a = count, b = src.
		cnt := int32(a)
		switch {
		case cnt >= 0:
			r = b << (uint32(cnt) & 31)
		default:
			r = uint32(int32(b) >> (uint32(-cnt) & 31))
		}
		c.setNZ(r)
	}
	return c.write32(dst, r)
}

func (c *CPU) readOperand() (uint32, error) {
	l, err := c.decodeSpec()
	if err != nil {
		return 0, err
	}
	return c.read32(l)
}

func (c *CPU) addFlags(a, b uint32) uint32 {
	full := uint64(a) + uint64(b)
	r := uint32(full)
	c.flags.Z = r == 0
	c.flags.N = int32(r) < 0
	c.flags.C = full > 0xFFFFFFFF
	c.flags.V = (a^b)&0x80000000 == 0 && (a^r)&0x80000000 != 0
	return r
}

// subFlags computes a-b with the same carry convention as the RISC side:
// C set means no borrow (a >= b unsigned).
func (c *CPU) subFlags(a, b uint32) uint32 {
	full := uint64(a) - uint64(b)
	r := uint32(full)
	c.flags.Z = r == 0
	c.flags.N = int32(r) < 0
	c.flags.C = full <= 0xFFFFFFFF
	c.flags.V = (a^b)&0x80000000 != 0 && (a^r)&0x80000000 != 0
	return r
}

func (c *CPU) execBranch(op Op) error {
	if op == OpJMP {
		dst, err := c.decodeSpec()
		if err != nil {
			return err
		}
		if dst.isReg || dst.isImm {
			return fmt.Errorf("jmp needs an address operand")
		}
		c.cursor = dst.addr
		c.stat.Transfers++
		return nil
	}
	d, err := c.fetch16()
	if err != nil {
		return err
	}
	taken := false
	f := c.flags
	switch op {
	case OpBR:
		taken = true
	case OpBEQ:
		taken = f.Z
	case OpBNE:
		taken = !f.Z
	case OpBGT:
		taken = !f.Z && f.N == f.V
	case OpBLE:
		taken = f.Z || f.N != f.V
	case OpBGE:
		taken = f.N == f.V
	case OpBLT:
		taken = f.N != f.V
	case OpBHI:
		taken = f.C && !f.Z
	case OpBLOS:
		taken = !f.C || f.Z
	case OpBHIS:
		taken = f.C
	case OpBLO:
		taken = !f.C
	}
	c.stat.Transfers++
	if taken {
		c.cursor += uint32(int32(int16(d)))
		c.stat.Cycles++ // taken branches refill the microsequencer
	}
	return nil
}

// execCalls implements the heavyweight CISC procedure call: push the
// argument count, linkage (return PC, FP, AP), the callee's masked
// registers and the mask word itself, then enter the callee past its mask.
func (c *CPU) execCalls() error {
	n, err := c.fetchByte()
	if err != nil {
		return err
	}
	dst, err := c.decodeSpec()
	if err != nil {
		return err
	}
	if dst.isReg || dst.isImm {
		return fmt.Errorf("calls needs an address operand")
	}
	return c.callTo(uint32(n), dst.addr, c.cursor)
}

// callTo performs the CALLS stack build; retPC is where RET will resume.
func (c *CPU) callTo(n, target, retPC uint32) error {
	return c.doCallsCounted(n, target, retPC, true)
}

// doCalls is the uncounted variant used by Load to enter the program.
func (c *CPU) doCalls(n, target, retPC uint32) error {
	return c.doCallsCounted(n, target, retPC, false)
}

func (c *CPU) doCallsCounted(n, target, retPC uint32, counted bool) error {
	if err := c.push(n); err != nil {
		return err
	}
	apNew := c.regs[SP]
	for _, v := range []uint32{retPC, c.regs[FP], c.regs[AP]} {
		if err := c.push(v); err != nil {
			return err
		}
	}
	// The register-save mask is the first two bytes of the procedure.
	hi, err := c.Mem.FetchByte(target)
	if err != nil {
		return err
	}
	lo, err := c.Mem.FetchByte(target + 1)
	if err != nil {
		return err
	}
	mask := uint32(hi)<<8 | uint32(lo)
	for r := uint8(0); r < 12; r++ {
		if mask&(1<<r) != 0 {
			if err := c.push(c.regs[r]); err != nil {
				return err
			}
		}
	}
	if err := c.push(mask); err != nil {
		return err
	}
	c.regs[FP] = c.regs[SP]
	c.regs[AP] = apNew
	c.cursor = target + 2
	c.pc = target + 2
	if counted {
		c.stat.Calls++
		c.stat.Transfers++
		c.callDepth++
		if c.callDepth > c.stat.MaxCallDepth {
			c.stat.MaxCallDepth = c.callDepth
		}
	}
	return nil
}

// execRet unwinds the CALLS frame: restore masked registers, AP, FP, resume
// PC, and pop the arguments.
func (c *CPU) execRet() error {
	fp := c.regs[FP]
	mask, err := c.dataRead32(fp)
	if err != nil {
		return err
	}
	off := uint32(4)
	for r := 11; r >= 0; r-- {
		if mask&(1<<uint(r)) != 0 {
			v, err := c.dataRead32(fp + off)
			if err != nil {
				return err
			}
			c.regs[r] = v
			off += 4
		}
	}
	ap, err := c.dataRead32(fp + off)
	if err != nil {
		return err
	}
	oldFP, err := c.dataRead32(fp + off + 4)
	if err != nil {
		return err
	}
	retPC, err := c.dataRead32(fp + off + 8)
	if err != nil {
		return err
	}
	n, err := c.dataRead32(fp + off + 12)
	if err != nil {
		return err
	}
	c.regs[SP] = fp + off + 16 + 4*n
	c.regs[FP] = oldFP
	c.regs[AP] = ap
	c.stat.Returns++
	c.stat.Transfers++
	c.callDepth--
	if retPC == HaltPC {
		c.halted = true
		return nil
	}
	c.cursor = retPC
	return nil
}
