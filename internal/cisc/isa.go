// Package cisc implements "CX", the synthetic microcoded CISC comparator the
// evaluation measures RISC I against. CX stands in for the VAX-11/780 class
// of machine the paper compared with: variable-length instructions built
// from an opcode byte plus general operand specifiers, arithmetic directly
// on memory operands, a rich procedure CALLS/RET that saves registers
// through a callee entry mask, and a microcoded execution engine at a 200 ns
// microcycle.
//
// CX is deliberately not binary-compatible with any real VAX; what matters
// for the reproduction is that it embodies the CISC design point — dense
// code, few registers, multi-cycle microcoded instructions, expensive
// procedure calls — with a documented, inspectable cost model (timing.go).
package cisc

import "fmt"

// General registers. r0..r11 are general purpose; AP, FP and SP have the
// VAX roles (argument pointer, frame pointer, stack pointer). PC is not a
// general register.
const (
	NumRegs = 15
	AP      = 12
	FP      = 13
	SP      = 14
)

// Op is a CX opcode byte.
type Op uint8

// The CX instruction set.
const (
	OpHALT Op = 0x00

	// Data movement.
	OpMOVL   Op = 0x10 // move longword
	OpMOVB   Op = 0x11 // move byte (low 8 bits)
	OpCVTBL  Op = 0x12 // byte -> long, sign-extended
	OpMOVZBL Op = 0x13 // byte -> long, zero-extended
	OpMOVAL  Op = 0x14 // move address of operand
	OpPUSHL  Op = 0x15 // push longword
	OpPOPL   Op = 0x16 // pop longword
	OpCLRL   Op = 0x17 // clear longword

	// Arithmetic and logic. The 2-operand forms overwrite their second
	// operand; 3-operand forms write a separate destination. Any operand
	// may be a memory reference.
	OpADDL2 Op = 0x20
	OpADDL3 Op = 0x21
	OpSUBL2 Op = 0x22
	OpSUBL3 Op = 0x23
	OpMULL2 Op = 0x24
	OpMULL3 Op = 0x25
	OpDIVL2 Op = 0x26
	OpDIVL3 Op = 0x27
	OpANDL3 Op = 0x28
	OpORL3  Op = 0x29
	OpXORL3 Op = 0x2A
	OpASHL  Op = 0x2B // arithmetic shift: negative count shifts right
	OpINCL  Op = 0x2C
	OpDECL  Op = 0x2D

	// Compare and test.
	OpCMPL Op = 0x30
	OpCMPB Op = 0x31
	OpTSTL Op = 0x32

	// Control transfer. BR and the conditional branches carry a 16-bit
	// PC-relative displacement; JMP takes a general operand specifier.
	OpBR   Op = 0x40
	OpJMP  Op = 0x41
	OpBEQ  Op = 0x50
	OpBNE  Op = 0x51
	OpBGT  Op = 0x52
	OpBLE  Op = 0x53
	OpBGE  Op = 0x54
	OpBLT  Op = 0x55
	OpBHI  Op = 0x56 // unsigned >
	OpBLOS Op = 0x57 // unsigned <=
	OpBHIS Op = 0x58 // unsigned >=
	OpBLO  Op = 0x59 // unsigned <

	// Procedures. CALLS pushes the argument count, linkage and the
	// callee's masked registers; RET undoes all of it and pops the
	// arguments.
	OpCALLS Op = 0x60
	OpRET   Op = 0x61
)

// operand shapes for the decoder/assembler tables.
type operandKind uint8

const (
	opdNone  operandKind = iota
	opdRead              // general specifier, read
	opdWrite             // general specifier, write
	opdRW                // general specifier, read-modify-write
	opdAddr              // general specifier, address only (MOVAL, JMP)
	opdDisp              // 16-bit branch displacement
	opdCount             // 8-bit literal (CALLS argument count)
)

type opInfo struct {
	name     string
	operands []operandKind
	// base microcycle cost; see timing.go for the full model.
	base uint64
}

var opTable = map[Op]opInfo{
	OpHALT:   {"halt", nil, 2},
	OpMOVL:   {"movl", []operandKind{opdRead, opdWrite}, 2},
	OpMOVB:   {"movb", []operandKind{opdRead, opdWrite}, 2},
	OpCVTBL:  {"cvtbl", []operandKind{opdRead, opdWrite}, 3},
	OpMOVZBL: {"movzbl", []operandKind{opdRead, opdWrite}, 3},
	OpMOVAL:  {"moval", []operandKind{opdAddr, opdWrite}, 2},
	OpPUSHL:  {"pushl", []operandKind{opdRead}, 3},
	OpPOPL:   {"popl", []operandKind{opdWrite}, 3},
	OpCLRL:   {"clrl", []operandKind{opdWrite}, 2},
	OpADDL2:  {"addl2", []operandKind{opdRead, opdRW}, 2},
	OpADDL3:  {"addl3", []operandKind{opdRead, opdRead, opdWrite}, 2},
	OpSUBL2:  {"subl2", []operandKind{opdRead, opdRW}, 2},
	OpSUBL3:  {"subl3", []operandKind{opdRead, opdRead, opdWrite}, 2},
	OpMULL2:  {"mull2", []operandKind{opdRead, opdRW}, 16},
	OpMULL3:  {"mull3", []operandKind{opdRead, opdRead, opdWrite}, 16},
	OpDIVL2:  {"divl2", []operandKind{opdRead, opdRW}, 40},
	OpDIVL3:  {"divl3", []operandKind{opdRead, opdRead, opdWrite}, 40},
	OpANDL3:  {"andl3", []operandKind{opdRead, opdRead, opdWrite}, 2},
	OpORL3:   {"orl3", []operandKind{opdRead, opdRead, opdWrite}, 2},
	OpXORL3:  {"xorl3", []operandKind{opdRead, opdRead, opdWrite}, 2},
	OpASHL:   {"ashl", []operandKind{opdRead, opdRead, opdWrite}, 4},
	OpINCL:   {"incl", []operandKind{opdRW}, 2},
	OpDECL:   {"decl", []operandKind{opdRW}, 2},
	OpCMPL:   {"cmpl", []operandKind{opdRead, opdRead}, 2},
	OpCMPB:   {"cmpb", []operandKind{opdRead, opdRead}, 2},
	OpTSTL:   {"tstl", []operandKind{opdRead}, 2},
	OpBR:     {"br", []operandKind{opdDisp}, 3},
	OpJMP:    {"jmp", []operandKind{opdAddr}, 4},
	OpBEQ:    {"beq", []operandKind{opdDisp}, 3},
	OpBNE:    {"bne", []operandKind{opdDisp}, 3},
	OpBGT:    {"bgt", []operandKind{opdDisp}, 3},
	OpBLE:    {"ble", []operandKind{opdDisp}, 3},
	OpBGE:    {"bge", []operandKind{opdDisp}, 3},
	OpBLT:    {"blt", []operandKind{opdDisp}, 3},
	OpBHI:    {"bhi", []operandKind{opdDisp}, 3},
	OpBLOS:   {"blos", []operandKind{opdDisp}, 3},
	OpBHIS:   {"bhis", []operandKind{opdDisp}, 3},
	OpBLO:    {"blo", []operandKind{opdDisp}, 3},
	OpCALLS:  {"calls", []operandKind{opdCount, opdAddr}, 12},
	OpRET:    {"ret", nil, 12},
}

// opDense mirrors opTable as a dense array for the interpreter hot path;
// an empty name marks an undefined opcode.
var opDense = func() (t [256]opInfo) {
	for op, info := range opTable {
		t[op] = info
	}
	return
}()

// NumInstructions is the size of the CX instruction set.
func NumInstructions() int { return len(opTable) }

// Valid reports whether op is defined.
func (op Op) Valid() bool { return opDense[op].name != "" }

// Name returns the assembler mnemonic.
func (op Op) Name() string {
	if info, ok := opTable[op]; ok {
		return info.name
	}
	return fmt.Sprintf("op%#02x", uint8(op))
}

func (op Op) String() string { return op.Name() }

// ByName maps a mnemonic to its opcode.
func ByName(name string) (Op, bool) {
	op, ok := nameTable[name]
	return op, ok
}

var nameTable = func() map[string]Op {
	m := make(map[string]Op, len(opTable))
	for op, info := range opTable {
		m[info.name] = op
	}
	return m
}()

// Operand specifier modes. A specifier is one byte, mode in the high
// nibble and register in the low nibble, followed by the mode's extension
// bytes. This is the VAX scheme reduced to the modes our compiler emits.
type addrMode uint8

const (
	modeReg    addrMode = 0x0 // Rn            (1 byte)
	modeDeref  addrMode = 0x1 // (Rn)          (1 byte)
	modeDisp8  addrMode = 0x2 // d8(Rn)        (2 bytes)
	modeDisp32 addrMode = 0x3 // d32(Rn)       (5 bytes)
	modeImm8   addrMode = 0x4 // #imm8         (2 bytes, sign-extended)
	modeImm32  addrMode = 0x5 // #imm32        (5 bytes)
	modeAbs    addrMode = 0x6 // @addr         (5 bytes)
	modeIndex  addrMode = 0x7 // (Rn)[Rx]      (2 bytes; Rx scaled by 4)
	modeIndexB addrMode = 0x8 // b(Rn)[Rx]     byte-scaled index (2 bytes)
)

// specSize returns the encoded size of a specifier in bytes.
func specSize(mode addrMode) int {
	switch mode {
	case modeReg, modeDeref:
		return 1
	case modeDisp8, modeImm8, modeIndex, modeIndexB:
		return 2
	case modeDisp32, modeImm32, modeAbs:
		return 5
	}
	return 0
}

// specCycles is the microcode cost of evaluating a specifier (address
// formation only; data access cycles are added separately).
func specCycles(mode addrMode) uint64 {
	switch mode {
	case modeReg:
		return 0
	case modeDeref, modeImm8:
		return 1
	case modeDisp8:
		return 1
	case modeDisp32, modeImm32, modeAbs:
		return 2
	case modeIndex, modeIndexB:
		return 2
	}
	return 0
}
