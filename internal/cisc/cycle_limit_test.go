package cisc

import (
	"errors"
	"testing"
)

const cxInfiniteLoop = "main: .mask\nloop: br loop\n"

// TestCXMaxCyclesDeterministicAbort pins the hardened limit on the CX side:
// Step refuses to start an instruction at or past the budget, so the abort
// cycle is deterministic and overshoots the limit by less than one
// instruction's microcycles — never by a whole run batch.
func TestCXMaxCyclesDeterministicAbort(t *testing.T) {
	const limit = 100
	abortAt := func() uint64 {
		c := New(Config{MaxCycles: limit})
		if err := c.Load(MustAssemble(cxInfiniteLoop)); err != nil {
			t.Fatal(err)
		}
		if err := c.Run(); !errors.Is(err, ErrMaxCycles) {
			t.Fatalf("err = %v, want ErrMaxCycles", err)
		}
		return c.Stats().Cycles
	}
	first, second := abortAt(), abortAt()
	if first != second {
		t.Fatalf("abort cycle not deterministic: %d then %d", first, second)
	}
	if first < limit || first >= limit+16 {
		t.Fatalf("aborted at cycle %d, want within one instruction of %d", first, limit)
	}
}

// TestCXStepEnforcesMaxCycles gives external Step callers the same guard.
func TestCXStepEnforcesMaxCycles(t *testing.T) {
	c := New(Config{MaxCycles: 50})
	if err := c.Load(MustAssemble(cxInfiniteLoop)); err != nil {
		t.Fatal(err)
	}
	var err error
	for i := 0; i < 1000; i++ {
		if err = c.Step(); err != nil {
			break
		}
	}
	if !errors.Is(err, ErrMaxCycles) {
		t.Fatalf("err = %v, want ErrMaxCycles", err)
	}
	if err := c.Step(); !errors.Is(err, ErrMaxCycles) {
		t.Fatalf("refusal not sticky: %v", err)
	}
}
