package cisc

import (
	"fmt"
	"strings"
)

// Disassemble renders a CX image as assembly with addresses. Decoding a
// variable-length stream needs to know where procedures start (their first
// two bytes are a register-save mask, not an opcode); entries are
// discovered iteratively from the image entry point and the targets of
// decoded CALLS instructions. Undecodable bytes print as .byte directives.
func Disassemble(img *Image) string {
	labels := map[uint32][]string{}
	for name, addr := range img.Symbols {
		labels[addr] = append(labels[addr], name)
	}
	starts := map[uint32]bool{img.Entry: true}
	var out string
	for pass := 0; pass < 3; pass++ {
		text, targets := decodeImage(img, labels, starts)
		out = text
		grew := false
		for t := range targets {
			if !starts[t] {
				starts[t] = true
				grew = true
			}
		}
		if !grew {
			break
		}
	}
	return out
}

// decodeImage renders one decoding pass and collects CALLS target addresses.
func decodeImage(img *Image, labels map[uint32][]string, starts map[uint32]bool) (string, map[uint32]bool) {
	targets := map[uint32]bool{}
	var b strings.Builder
	pos := 0
	for pos < len(img.Bytes) {
		addr := img.Org + uint32(pos)
		for _, l := range labels[addr] {
			fmt.Fprintf(&b, "%s:\n", l)
		}
		if starts[addr] && pos+2 <= len(img.Bytes) {
			mask := uint16(img.Bytes[pos])<<8 | uint16(img.Bytes[pos+1])
			fmt.Fprintf(&b, "  %08x:  %-18s %s\n", addr, hexBytes(img.Bytes[pos:pos+2]), maskString(mask))
			pos += 2
			continue
		}
		text, size := decodeAt(img.Bytes, pos, addr)
		if Op(img.Bytes[pos]) == OpCALLS && size > 3 {
			// calls #n, @addr: collect the absolute target.
			spec := img.Bytes[pos+2]
			if addrMode(spec>>4) == modeAbs && pos+7 <= len(img.Bytes) {
				t := uint32(img.Bytes[pos+3])<<24 | uint32(img.Bytes[pos+4])<<16 |
					uint32(img.Bytes[pos+5])<<8 | uint32(img.Bytes[pos+6])
				if t >= img.Org && t < img.Org+uint32(len(img.Bytes)) {
					targets[t] = true
				}
			}
		}
		fmt.Fprintf(&b, "  %08x:  %-18s %s\n", addr, hexBytes(img.Bytes[pos:pos+size]), text)
		pos += size
	}
	return b.String(), targets
}

func hexBytes(bs []byte) string {
	var b strings.Builder
	for _, x := range bs {
		fmt.Fprintf(&b, "%02x", x)
	}
	return b.String()
}

func maskString(mask uint16) string {
	var regs []string
	for r := 0; r < 12; r++ {
		if mask&(1<<r) != 0 {
			regs = append(regs, fmt.Sprintf("r%d", r))
		}
	}
	return ".mask " + strings.Join(regs, ", ")
}

// decodeAt decodes one instruction, returning its text and byte size;
// undecodable positions yield a one-byte .byte line.
func decodeAt(code []byte, pos int, addr uint32) (string, int) {
	op := Op(code[pos])
	info, ok := opTable[op]
	if !ok {
		return fmt.Sprintf(".byte %#02x", code[pos]), 1
	}
	n := pos + 1
	var operands []string
	for _, kind := range info.operands {
		switch kind {
		case opdDisp:
			if n+2 > len(code) {
				return fmt.Sprintf(".byte %#02x", code[pos]), 1
			}
			d := int16(uint16(code[n])<<8 | uint16(code[n+1]))
			target := addr + uint32(n-pos) + 2 + uint32(int32(d))
			operands = append(operands, fmt.Sprintf("%#x", target))
			n += 2
		case opdCount:
			if n >= len(code) {
				return fmt.Sprintf(".byte %#02x", code[pos]), 1
			}
			operands = append(operands, fmt.Sprintf("#%d", code[n]))
			n++
		default:
			text, size := decodeSpecAt(code, n)
			if size == 0 {
				return fmt.Sprintf(".byte %#02x", code[pos]), 1
			}
			operands = append(operands, text)
			n += size
		}
	}
	return strings.TrimSpace(op.Name() + " " + strings.Join(operands, ", ")), n - pos
}

func decodeSpecAt(code []byte, pos int) (string, int) {
	if pos >= len(code) {
		return "", 0
	}
	b := code[pos]
	mode := addrMode(b >> 4)
	reg := b & 0xF
	size := specSize(mode)
	if size == 0 || pos+size > len(code) {
		return "", 0
	}
	regName := func(r uint8) string {
		switch r {
		case AP:
			return "ap"
		case FP:
			return "fp"
		case SP:
			return "sp"
		}
		return fmt.Sprintf("r%d", r)
	}
	ext32 := func() uint32 {
		return uint32(code[pos+1])<<24 | uint32(code[pos+2])<<16 |
			uint32(code[pos+3])<<8 | uint32(code[pos+4])
	}
	switch mode {
	case modeReg:
		return regName(reg), size
	case modeDeref:
		return "(" + regName(reg) + ")", size
	case modeDisp8:
		return fmt.Sprintf("%d(%s)", int8(code[pos+1]), regName(reg)), size
	case modeDisp32:
		return fmt.Sprintf("%d(%s)", int32(ext32()), regName(reg)), size
	case modeImm8:
		return fmt.Sprintf("#%d", int8(code[pos+1])), size
	case modeImm32:
		return fmt.Sprintf("#%d", int32(ext32())), size
	case modeAbs:
		return fmt.Sprintf("@%#x", ext32()), size
	case modeIndex:
		return fmt.Sprintf("(%s)[%s]", regName(reg), regName(code[pos+1]&0xF)), size
	case modeIndexB:
		return fmt.Sprintf("(%s)[%s.b]", regName(reg), regName(code[pos+1]&0xF)), size
	}
	return "", 0
}
