package cisc

// FlowInfo summarizes one decoded CX instruction for static analysis: its
// size, how control leaves it, and any absolute addresses its operand
// specifiers reference. It is the decode hook package lint walks a CX image
// with — decoding only, no execution.
type FlowInfo struct {
	Op   Op
	Size int
	// Target is a statically-known transfer target: the PC-relative
	// destination of BR/Bcc, or the absolute operand of JMP/CALLS.
	Target    uint32
	HasTarget bool
	// Conditional marks the Bcc family: the branch may fall through.
	Conditional bool
	// Call marks CALLS: Target (when known) is a procedure start whose
	// first two bytes are a register-save mask, and execution resumes
	// after the instruction when the callee returns.
	Call bool
	// Stops marks instructions control never falls out of: HALT, RET,
	// BR, and JMP.
	Stops bool
	// AbsRefs lists the absolute-mode addresses the operand specifiers
	// reference (data operands; JMP/CALLS targets are reported via
	// Target instead).
	AbsRefs []uint32
}

// DecodeFlow decodes the instruction at code[pos] (loaded at address addr).
// ok is false when the byte stream there does not decode — an undefined
// opcode or an operand running off the end of code.
func DecodeFlow(code []byte, pos int, addr uint32) (FlowInfo, bool) {
	if pos >= len(code) {
		return FlowInfo{}, false
	}
	op := Op(code[pos])
	info, ok := opTable[op]
	if !ok {
		return FlowInfo{}, false
	}
	f := FlowInfo{Op: op}
	n := pos + 1
	for _, kind := range info.operands {
		switch kind {
		case opdDisp:
			if n+2 > len(code) {
				return FlowInfo{}, false
			}
			d := int16(uint16(code[n])<<8 | uint16(code[n+1]))
			f.Target = addr + uint32(n-pos) + 2 + uint32(int32(d))
			f.HasTarget = true
			n += 2
		case opdCount:
			if n >= len(code) {
				return FlowInfo{}, false
			}
			n++
		default:
			if n >= len(code) {
				return FlowInfo{}, false
			}
			mode := addrMode(code[n] >> 4)
			size := specSize(mode)
			if size == 0 || n+size > len(code) {
				return FlowInfo{}, false
			}
			if mode == modeAbs {
				v := uint32(code[n+1])<<24 | uint32(code[n+2])<<16 |
					uint32(code[n+3])<<8 | uint32(code[n+4])
				if op == OpJMP || op == OpCALLS {
					f.Target, f.HasTarget = v, true
				} else {
					f.AbsRefs = append(f.AbsRefs, v)
				}
			}
			n += size
		}
	}
	f.Size = n - pos
	switch op {
	case OpCALLS:
		f.Call = true
	case OpHALT, OpRET, OpBR, OpJMP:
		f.Stops = true
	case OpBEQ, OpBNE, OpBGT, OpBLE, OpBGE, OpBLT, OpBHI, OpBLOS, OpBHIS, OpBLO:
		f.Conditional = true
	}
	return f, true
}
