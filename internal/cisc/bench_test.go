package cisc

import "testing"

// BenchmarkSimulatorThroughput measures host performance of the CX
// interpreter on a tight loop (decode dominates: every instruction is
// re-decoded from the byte stream, as on the microcoded original).
func BenchmarkSimulatorThroughput(b *testing.B) {
	img := MustAssemble(`
	main:	.mask
		clrl r1
		movl #1000000, r2
	loop:	incl r1
		cmpl r1, r2
		blt loop
		ret
	`)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c := New(Config{})
		if err := c.Load(img); err != nil {
			b.Fatal(err)
		}
		if err := c.Run(); err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(c.Stats().Instructions), "sim-instructions/op")
	}
}
