package cisc

import (
	"context"
	"errors"
	"fmt"
	"strings"

	"risc1/internal/mem"
	"risc1/internal/stats"
	"risc1/internal/timing"
)

// HaltPC is the sentinel return address planted under the entry procedure:
// a RET that lands here stops the machine (the CX counterpart of the RISC I
// halt convention).
const HaltPC = 0xFFFF0000

// Config sizes a CX machine.
type Config struct {
	MemSize   int    // RAM bytes (default 1 MiB)
	MaxCycles uint64 // microcycle budget (default 4e9, ≈13 min at 200ns)
}

func (c Config) withDefaults() Config {
	if c.MemSize == 0 {
		c.MemSize = 1 << 20
	}
	if c.MaxCycles == 0 {
		c.MaxCycles = 4e9
	}
	return c
}

// Sentinel errors.
var (
	ErrMaxCycles = errors.New("cisc: microcycle limit exceeded")
	ErrHalted    = errors.New("cisc: machine is halted")
)

// RunError is a structured execution fault: the wrapped cause plus the
// faulting PC, the disassembly of the instruction there (when it decodes),
// the microcycle count, and a snapshot of the register file.
type RunError struct {
	PC     uint32
	Inst   string   // disassembly of the faulting instruction ("" if undecodable)
	Cycles uint64   // microcycle count when the fault was raised
	Regs   []uint32 // r0..r14 (including ap/fp/sp) at the fault
	Err    error
}

// Error is the pre-hardening name for RunError, kept for callers that match
// on *cisc.Error.
type Error = RunError

func (e *RunError) Error() string {
	var b strings.Builder
	fmt.Fprintf(&b, "cisc: at pc %#08x", e.PC)
	if e.Inst != "" {
		fmt.Fprintf(&b, " (%s)", e.Inst)
	}
	if e.Cycles > 0 {
		fmt.Fprintf(&b, " cycle %d", e.Cycles)
	}
	fmt.Fprintf(&b, ": %v", e.Err)
	return b.String()
}

func (e *RunError) Unwrap() error { return e.Err }

// runError builds a RunError for a fault at pc, snapshotting machine state.
func (c *CPU) runError(pc uint32, err error) *RunError {
	e := &RunError{
		PC:     pc,
		Cycles: c.stat.Cycles,
		Regs:   append([]uint32(nil), c.regs[:]...),
		Err:    err,
	}
	// Disassemble the faulting instruction from memory; a variable-length
	// instruction spans at most maxInstBytes, and any fetch failure just
	// truncates the window (decodeAt then falls back to a .byte line).
	var buf [maxInstBytes]byte
	n := 0
	for ; n < maxInstBytes; n++ {
		b, ferr := c.Mem.FetchByte(pc + uint32(n))
		if ferr != nil {
			break
		}
		buf[n] = b
	}
	if n > 0 {
		if text, _ := decodeAt(buf[:n], 0, pc); !strings.HasPrefix(text, ".byte") {
			e.Inst = text
		}
	}
	return e
}

type flags struct{ Z, N, V, C bool }

// CPU is one CX processor with its memory.
type CPU struct {
	cfg    Config
	Mem    *mem.Memory
	regs   [NumRegs]uint32
	pc     uint32
	flags  flags
	halted bool
	stat   *stats.Stats

	cursor    uint32 // decode position within the current instruction
	callDepth int
	opCounts  [256]uint64 // per-opcode execution counts (hot path)

	// Instruction-byte memo: the variable-length decoder re-reads its byte
	// stream on every execution, so Load arms a per-PC memo of each
	// instruction's raw bytes. Replaying from the memo skips the per-byte
	// bounds-checked memory fetches; operand specifiers are still decoded
	// each time because their effective addresses depend on register state.
	// A write watch over the code range invalidates overwritten entries.
	codeOrg   uint32
	memo      []memoEntry
	instStart uint32  // PC of the instruction being executed
	replay    []uint8 // instruction bytes being replayed (nil on a miss)
	rec       bool    // recording a missed instruction's bytes
	recN      uint8
	recBuf    [maxInstBytes]uint8

	// Progress, when non-nil, is called at RunContext batch boundaries —
	// at most once per runBatch instructions — with the instruction and
	// microcycle counters retired so far. It runs on the simulation
	// goroutine; keep it cheap.
	Progress func(instructions, cycles uint64)
}

// maxInstBytes bounds one CX instruction: opcode plus three operand
// specifiers of at most five bytes each (specifier byte + 32-bit extension).
const maxInstBytes = 16

// memoEntry caches one decoded instruction's raw bytes; n == 0 means empty.
type memoEntry struct {
	n uint8
	b [maxInstBytes]uint8
}

// New builds a CX machine. Call Load before stepping.
func New(cfg Config) *CPU {
	cfg = cfg.withDefaults()
	return &CPU{cfg: cfg, Mem: mem.New(cfg.MemSize), stat: stats.New()}
}

// Load places an image in memory and performs the initial call into the
// entry procedure (so the entry's .mask and RET work like any other
// procedure). Statistics start from zero afterwards.
func (c *CPU) Load(img *Image) error {
	c.regs = [NumRegs]uint32{}
	c.flags = flags{}
	c.halted = false
	c.callDepth = 0
	if err := c.Mem.LoadProgram(img.Org, img.Bytes); err != nil {
		return err
	}
	c.armMemo(img)
	c.regs[SP] = uint32(c.cfg.MemSize) &^ 7
	if err := c.doCalls(0, img.Entry, HaltPC); err != nil {
		return err
	}
	c.stat = stats.New()
	c.opCounts = [256]uint64{}
	c.Mem.ResetCounters()
	return nil
}

// Accessors.

// PC returns the current program counter.
func (c *CPU) PC() uint32 { return c.pc }

// Halted reports whether the machine has stopped.
func (c *CPU) Halted() bool { return c.halted }

// Reg reads a general register.
func (c *CPU) Reg(r uint8) uint32 { return c.regs[r] }

// SetReg writes a general register (test harness use).
func (c *CPU) SetReg(r uint8, v uint32) { c.regs[r] = v }

// Console returns console output so far.
func (c *CPU) Console() string { return c.Mem.Console() }

// Stats returns execution statistics with memory traffic synced and the
// instruction-mix maps materialized from the hot-path counters.
func (c *CPU) Stats() *stats.Stats {
	c.stat.DataReads = c.Mem.Reads
	c.stat.DataWrites = c.Mem.Writes
	c.stat.ByName = map[string]uint64{}
	c.stat.ByCategory = map[string]uint64{}
	for opv, n := range c.opCounts {
		if n == 0 {
			continue
		}
		op := Op(opv)
		c.stat.ByName[op.Name()] = n
		c.stat.ByCategory[category(op)] += n
	}
	return c.stat
}

// Time returns simulated elapsed seconds at the 200 ns microcycle.
func (c *CPU) Time() float64 {
	return float64(c.stat.Cycles) * timing.CXMicrocycleNS * 1e-9
}

// runBatch is how many instructions RunContext executes between checks of
// the context, mirroring the core simulator's batch size.
const runBatch = 64

// Run executes until halt, fault or the microcycle budget runs out.
func (c *CPU) Run() error { return c.RunContext(context.Background()) }

// RunContext is Run honoring ctx: cancellation or deadline expiry aborts the
// run at the next batch boundary (within runBatch instructions) with a
// RunError wrapping ctx.Err(). The microcycle budget itself is enforced
// exactly, per instruction, inside Step.
func (c *CPU) RunContext(ctx context.Context) error {
	done := ctx.Done()
	for !c.halted {
		if done != nil {
			select {
			case <-done:
				return c.runError(c.pc, ctx.Err())
			default:
			}
		}
		for i := 0; i < runBatch && !c.halted; i++ {
			if err := c.Step(); err != nil {
				return err
			}
		}
		if c.Progress != nil {
			c.Progress(c.stat.Instructions, c.stat.Cycles)
		}
	}
	return nil
}

// dataRead / dataWrite funnel every operand memory access through the cost
// model: each access costs two microcycles on top of the instruction base.
const accessCycles = 2

func (c *CPU) dataRead32(addr uint32) (uint32, error) {
	c.stat.Cycles += accessCycles
	return c.Mem.Load32(addr)
}

func (c *CPU) dataRead8(addr uint32) (uint8, error) {
	c.stat.Cycles += accessCycles
	return c.Mem.Load8(addr)
}

func (c *CPU) dataWrite32(addr uint32, v uint32) error {
	c.stat.Cycles += accessCycles
	return c.Mem.Store32(addr, v)
}

func (c *CPU) dataWrite8(addr uint32, v uint8) error {
	c.stat.Cycles += accessCycles
	return c.Mem.Store8(addr, v)
}

func (c *CPU) push(v uint32) error {
	c.regs[SP] -= 4
	return c.dataWrite32(c.regs[SP], v)
}

func (c *CPU) pop() (uint32, error) {
	v, err := c.dataRead32(c.regs[SP])
	c.regs[SP] += 4
	return v, err
}

// armMemo sizes the instruction memo to the image's code segment and arms
// the write watch that keeps it coherent with self-modifying stores. Compiled
// images mark the code/data boundary with __data_start; hand-written images
// are treated as all code.
func (c *CPU) armMemo(img *Image) {
	code := img.Bytes
	if ds, ok := img.Symbols["__data_start"]; ok &&
		ds >= img.Org && ds <= img.Org+uint32(len(img.Bytes)) {
		code = img.Bytes[:ds-img.Org]
	}
	c.codeOrg = img.Org
	c.memo = make([]memoEntry, len(code))
	c.replay, c.rec = nil, false
	c.Mem.SetWriteWatch(img.Org, img.Org+uint32(len(code)), c.invalidateCode)
}

// invalidateCode drops memo entries that could overlap a store at addr. An
// entry starting at index i spans at most maxInstBytes, so every entry from
// maxInstBytes-1 before the store through its last byte is suspect.
func (c *CPU) invalidateCode(addr uint32, size int) {
	lo := c.codeOrg
	if addr > c.codeOrg+maxInstBytes-1 {
		lo = addr - (maxInstBytes - 1)
	}
	hi := addr + uint32(size)
	if end := c.codeOrg + uint32(len(c.memo)); hi > end {
		hi = end
	}
	for i := lo - c.codeOrg; i < hi-c.codeOrg; i++ {
		c.memo[i].n = 0
	}
}

// fetchByte consumes one instruction-stream byte: from the replay buffer when
// the current instruction's bytes are memoized, from memory otherwise. Misses
// inside the code segment are recorded for the memo as long as the fetches
// stay contiguous from the instruction start.
func (c *CPU) fetchByte() (uint8, error) {
	if off := c.cursor - c.instStart; off < uint32(len(c.replay)) {
		b := c.replay[off]
		c.cursor++
		c.stat.FetchBytes++
		return b, nil
	}
	b, err := c.Mem.FetchByte(c.cursor)
	if err != nil {
		return 0, err
	}
	if c.rec {
		if off := c.cursor - c.instStart; off == uint32(c.recN) && c.recN < maxInstBytes {
			c.recBuf[c.recN] = b
			c.recN++
		} else {
			c.rec = false
		}
	}
	c.cursor++
	c.stat.FetchBytes++
	return b, nil
}

func (c *CPU) fetch16() (uint16, error) {
	hi, err := c.fetchByte()
	if err != nil {
		return 0, err
	}
	lo, err := c.fetchByte()
	if err != nil {
		return 0, err
	}
	return uint16(hi)<<8 | uint16(lo), nil
}

func (c *CPU) fetch32() (uint32, error) {
	hi, err := c.fetch16()
	if err != nil {
		return 0, err
	}
	lo, err := c.fetch16()
	if err != nil {
		return 0, err
	}
	return uint32(hi)<<16 | uint32(lo), nil
}

// loc is a decoded operand location.
type loc struct {
	isReg bool
	reg   uint8
	isImm bool
	imm   uint32
	addr  uint32
}

// decodeSpec consumes one operand specifier and computes its location,
// charging the address-formation microcycles.
func (c *CPU) decodeSpec() (loc, error) {
	b, err := c.fetchByte()
	if err != nil {
		return loc{}, err
	}
	mode := addrMode(b >> 4)
	reg := b & 0xF
	// The 4-bit register field can encode 15, but the file has r0..r14.
	if reg >= NumRegs && mode != modeImm8 && mode != modeImm32 && mode != modeAbs {
		return loc{}, fmt.Errorf("cisc: undefined register r%d in specifier %#02x", reg, b)
	}
	c.stat.Cycles += specCycles(mode)
	switch mode {
	case modeReg:
		return loc{isReg: true, reg: reg}, nil
	case modeDeref:
		return loc{addr: c.regs[reg]}, nil
	case modeDisp8:
		d, err := c.fetchByte()
		if err != nil {
			return loc{}, err
		}
		return loc{addr: c.regs[reg] + uint32(int32(int8(d)))}, nil
	case modeDisp32:
		d, err := c.fetch32()
		if err != nil {
			return loc{}, err
		}
		return loc{addr: c.regs[reg] + d}, nil
	case modeImm8:
		d, err := c.fetchByte()
		if err != nil {
			return loc{}, err
		}
		return loc{isImm: true, imm: uint32(int32(int8(d)))}, nil
	case modeImm32:
		d, err := c.fetch32()
		if err != nil {
			return loc{}, err
		}
		return loc{isImm: true, imm: d}, nil
	case modeAbs:
		d, err := c.fetch32()
		if err != nil {
			return loc{}, err
		}
		return loc{addr: d}, nil
	case modeIndex, modeIndexB:
		idx, err := c.fetchByte()
		if err != nil {
			return loc{}, err
		}
		if idx&0xF >= NumRegs {
			return loc{}, fmt.Errorf("cisc: undefined index register r%d", idx&0xF)
		}
		scale := uint32(4)
		if mode == modeIndexB {
			scale = 1
		}
		return loc{addr: c.regs[reg] + c.regs[idx&0xF]*scale}, nil
	}
	return loc{}, fmt.Errorf("cisc: undefined addressing mode %#x", uint8(mode))
}

// read32/read8 load the operand value; write32/write8 store the result.

func (c *CPU) read32(l loc) (uint32, error) {
	switch {
	case l.isReg:
		return c.regs[l.reg], nil
	case l.isImm:
		return l.imm, nil
	default:
		return c.dataRead32(l.addr)
	}
}

func (c *CPU) read8(l loc) (uint8, error) {
	switch {
	case l.isReg:
		return uint8(c.regs[l.reg]), nil
	case l.isImm:
		return uint8(l.imm), nil
	default:
		return c.dataRead8(l.addr)
	}
}

func (c *CPU) write32(l loc, v uint32) error {
	if l.isReg {
		c.regs[l.reg] = v
		return nil
	}
	return c.dataWrite32(l.addr, v)
}

func (c *CPU) write8(l loc, v uint8) error {
	if l.isReg {
		c.regs[l.reg] = c.regs[l.reg]&^0xFF | uint32(v)
		return nil
	}
	return c.dataWrite8(l.addr, v)
}

func (c *CPU) setNZ(v uint32) {
	c.flags.Z = v == 0
	c.flags.N = int32(v) < 0
	c.flags.V = false
	c.flags.C = false
}
