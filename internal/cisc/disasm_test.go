package cisc

import (
	"strings"
	"testing"
)

func TestDisassembleListing(t *testing.T) {
	img := MustAssemble(`
	main:	.mask r2, r3
		movl #5, r1
		movl #100000, r2
		addl3 r1, 4(fp), r3
		movl (r1)[r2], r4
		movzbl (r1)[r2.b], r5
		cmpl r1, @cell
		beq done
		pushl r1
		calls #1, main
	done:	ret
		.align 4
	cell:	.word 7
	`)
	out := Disassemble(img)
	for _, want := range []string{
		"main:", ".mask r2, r3",
		"movl #5, r1", "movl #100000, r2",
		"addl3 r1, 4(fp), r3",
		"movl (r1)[r2], r4",
		"movzbl (r1)[r2.b], r5",
		"beq", "calls #1,", "ret",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("listing missing %q:\n%s", want, out)
		}
	}
}

func TestDisassembleUnknownBytes(t *testing.T) {
	// Entry mask, then an undefined opcode, then RET.
	img := &Image{Org: 0, Bytes: []byte{0, 0, 0xEE, 0x61}, Symbols: map[string]uint32{}}
	out := Disassemble(img)
	if !strings.Contains(out, ".byte 0xee") || !strings.Contains(out, "ret") {
		t.Errorf("listing: %s", out)
	}
}

func TestDisassembleTruncated(t *testing.T) {
	// MOVL opcode with no operand bytes must not panic.
	img := &Image{Org: 0, Bytes: []byte{byte(OpMOVL)}, Symbols: map[string]uint32{}}
	out := Disassemble(img)
	if !strings.Contains(out, ".byte") {
		t.Errorf("listing: %s", out)
	}
}
