package cisc

import (
	"fmt"
	"strings"
)

// directive handles the CX assembler's dot-directives (a subset shared with
// the RISC assembler, plus .mask for CALLS register-save masks).
func (a *casm) directive(name, rest string) {
	switch name {
	case ".org":
		v, err := parseNum(rest)
		if err != nil || v < 0 {
			a.errorf(".org: bad address %q", rest)
			return
		}
		if a.orgSet || len(a.items) > 0 {
			a.errorf(".org must appear once, before code")
			return
		}
		a.org, a.orgSet = uint32(v), true
		a.pc = uint32(v)
	case ".entry":
		a.entry = strings.TrimSpace(rest)
		if !isIdent(a.entry) {
			a.errorf(".entry: bad symbol %q", rest)
		}
	case ".equ":
		parts := splitTop(rest)
		if len(parts) != 2 || !isIdent(strings.TrimSpace(parts[0])) {
			a.errorf(".equ needs name, value")
			return
		}
		v, err := parseNum(strings.TrimSpace(parts[1]))
		if err != nil {
			a.errorf(".equ: bad value")
			return
		}
		a.equs[strings.TrimSpace(parts[0])] = v
	case ".word":
		var words []expr
		for _, p := range splitTop(rest) {
			e, err := a.parseExpr(strings.TrimSpace(strings.TrimPrefix(strings.TrimSpace(p), "#")))
			if err != nil {
				a.errorf(".word: %v", err)
				return
			}
			words = append(words, e)
		}
		a.add(item{words: words})
	case ".byte":
		var data []byte
		for _, p := range splitTop(rest) {
			e, err := a.parseExpr(strings.TrimSpace(p))
			if err != nil || !e.isNum() {
				a.errorf(".byte: bad value %q", p)
				return
			}
			data = append(data, byte(e.off))
		}
		a.add(item{data: data})
	case ".ascii", ".asciz":
		s, err := stringLit(strings.TrimSpace(rest))
		if err != nil {
			a.errorf("%s: %v", name, err)
			return
		}
		data := []byte(s)
		if name == ".asciz" {
			data = append(data, 0)
		}
		a.add(item{data: data})
	case ".space":
		v, err := parseNum(rest)
		if err != nil || v < 0 || v > 1<<24 {
			a.errorf(".space: bad size %q", rest)
			return
		}
		a.add(item{space: int(v)})
	case ".align":
		v, err := parseNum(rest)
		if err != nil || v <= 0 || v&(v-1) != 0 {
			a.errorf(".align: need a power of two")
			return
		}
		if pad := (uint32(v) - a.pc%uint32(v)) % uint32(v); pad > 0 {
			a.add(item{space: int(pad)})
		}
	case ".mask":
		// Register-save mask at a procedure entry: 2 bytes, bit n set
		// for each rN the procedure preserves. ".mask" alone saves none.
		var mask uint16
		if strings.TrimSpace(rest) != "" {
			for _, p := range splitTop(rest) {
				r, ok := regName(strings.TrimSpace(p))
				if !ok || r >= 12 {
					a.errorf(".mask: bad register %q (r0..r11 only)", p)
					return
				}
				mask |= 1 << r
			}
		}
		a.add(item{data: []byte{byte(mask >> 8), byte(mask)}})
	default:
		a.errorf("unknown directive %q", name)
	}
}

func stringLit(s string) (string, error) {
	if len(s) < 2 || s[0] != '"' || s[len(s)-1] != '"' {
		return "", fmt.Errorf("expected quoted string, got %q", s)
	}
	body := s[1 : len(s)-1]
	var b strings.Builder
	for i := 0; i < len(body); i++ {
		c := body[i]
		if c != '\\' {
			b.WriteByte(c)
			continue
		}
		i++
		if i >= len(body) {
			return "", fmt.Errorf("trailing backslash")
		}
		switch body[i] {
		case 'n':
			b.WriteByte('\n')
		case 't':
			b.WriteByte('\t')
		case '0':
			b.WriteByte(0)
		case '\\', '"':
			b.WriteByte(body[i])
		default:
			return "", fmt.Errorf("unknown escape \\%c", body[i])
		}
	}
	return b.String(), nil
}

// ---------- pass 2 ----------

func (a *casm) resolve(e expr, line int) (uint32, error) {
	if e.isNum() {
		return uint32(e.off), nil
	}
	v, ok := a.symbols[e.sym]
	if !ok {
		return 0, &AsmError{Line: line, Msg: fmt.Sprintf("undefined symbol %q", e.sym)}
	}
	return v + uint32(e.off), nil
}

func (a *casm) encode() (*Image, error) {
	img := &Image{Org: a.org, Bytes: make([]byte, a.pc-a.org), Symbols: a.symbols}
	for _, it := range a.items {
		buf := img.Bytes[it.addr-a.org:]
		switch {
		case it.isInst:
			if err := a.encodeInst(&it, buf); err != nil {
				return nil, err
			}
		case it.words != nil:
			for i, e := range it.words {
				v, err := a.resolve(e, it.line)
				if err != nil {
					return nil, err
				}
				be32(buf[4*i:], v)
			}
		case it.data != nil:
			copy(buf, it.data)
		}
	}
	img.Entry = a.org
	if a.entry != "" {
		v, ok := a.symbols[a.entry]
		if !ok {
			return nil, &AsmError{Msg: fmt.Sprintf(".entry symbol %q undefined", a.entry)}
		}
		img.Entry = v
	} else if v, ok := a.symbols["main"]; ok {
		img.Entry = v
	} else if v, ok := a.symbols["start"]; ok {
		img.Entry = v
	}
	return img, nil
}

func (a *casm) encodeInst(it *item, buf []byte) error {
	n := 0
	buf[n] = byte(it.op)
	n++
	info := opTable[it.op]
	for pos, kind := range info.operands {
		switch kind {
		case opdDisp:
			target, err := a.resolve(it.disp, it.line)
			if err != nil {
				return err
			}
			// Displacement is relative to the next instruction; branch
			// instructions are always exactly 3 bytes.
			next := it.addr + 3
			delta := int64(int32(target)) - int64(int32(next))
			if delta < -32768 || delta > 32767 {
				return &AsmError{Line: it.line,
					Msg: fmt.Sprintf("branch target out of 16-bit range: %d", delta)}
			}
			buf[n] = byte(uint16(delta) >> 8)
			buf[n+1] = byte(uint16(delta))
			n += 2
		case opdCount:
			buf[n] = byte(it.count)
			n++
		default:
			s := it.specs[specIndex(info, pos)]
			buf[n] = byte(s.mode)<<4 | s.reg&0xF
			n++
			switch s.mode {
			case modeReg, modeDeref:
			case modeIndex, modeIndexB:
				buf[n] = s.index
				n++
			case modeDisp8, modeImm8:
				v, err := a.resolve(s.ext, it.line)
				if err != nil {
					return err
				}
				buf[n] = byte(v)
				n++
			default: // disp32, imm32, abs
				v, err := a.resolve(s.ext, it.line)
				if err != nil {
					return err
				}
				be32(buf[n:], v)
				n += 4
			}
		}
	}
	return nil
}

func be32(b []byte, v uint32) {
	b[0] = byte(v >> 24)
	b[1] = byte(v >> 16)
	b[2] = byte(v >> 8)
	b[3] = byte(v)
}
