package cisc

import (
	"fmt"
	"strconv"
	"strings"
)

// Image is an assembled CX program.
type Image struct {
	Org     uint32
	Bytes   []byte
	Entry   uint32
	Symbols map[string]uint32
}

// Size returns the image size in bytes.
func (img *Image) Size() int { return len(img.Bytes) }

// Symbol looks up a label.
func (img *Image) Symbol(name string) (uint32, bool) {
	v, ok := img.Symbols[name]
	return v, ok
}

// AsmError is an assembly diagnostic.
type AsmError struct {
	Line int
	Msg  string
}

func (e *AsmError) Error() string { return fmt.Sprintf("cisc/asm: line %d: %s", e.Line, e.Msg) }

// expr is a possibly-symbolic constant.
type expr struct {
	sym string
	off int64
}

func (e expr) isNum() bool { return e.sym == "" }

// spec is a parsed operand specifier.
type spec struct {
	mode  addrMode
	reg   uint8
	index uint8 // modeIndex*, the [Rx] register
	ext   expr  // displacement / immediate / absolute address
}

type item struct {
	line   int
	addr   uint32
	op     Op
	specs  []spec
	disp   expr // branch target (opdDisp)
	count  int64
	isInst bool
	data   []byte
	words  []expr
	space  int
}

type casm struct {
	items   []item
	symbols map[string]uint32
	equs    map[string]int64
	entry   string
	org     uint32
	orgSet  bool
	pc      uint32
	errs    []error
	line    int
}

// Assemble builds a CX image from source.
func Assemble(src string) (*Image, error) {
	a := &casm{symbols: map[string]uint32{}, equs: map[string]int64{}}
	a.parse(src)
	if len(a.errs) > 0 {
		return nil, a.joined()
	}
	return a.encode()
}

// MustAssemble is Assemble for tests and fixed programs.
func MustAssemble(src string) *Image {
	img, err := Assemble(src)
	if err != nil {
		panic(err)
	}
	return img
}

func (a *casm) joined() error {
	if len(a.errs) == 1 {
		return a.errs[0]
	}
	msgs := make([]string, len(a.errs))
	for i, e := range a.errs {
		msgs[i] = e.Error()
	}
	return fmt.Errorf("%d assembly errors:\n%s", len(a.errs), strings.Join(msgs, "\n"))
}

func (a *casm) errorf(format string, args ...any) {
	a.errs = append(a.errs, &AsmError{Line: a.line, Msg: fmt.Sprintf(format, args...)})
}

func (a *casm) parse(src string) {
	for n, raw := range strings.Split(src, "\n") {
		a.line = n + 1
		line := raw
		if i := indexOutsideQuotes(line, ';'); i >= 0 {
			line = line[:i]
		}
		line = strings.TrimSpace(line)
		for line != "" {
			if i := strings.IndexByte(line, ':'); i >= 0 && isIdent(strings.TrimSpace(line[:i])) {
				name := strings.TrimSpace(line[:i])
				if _, dup := a.symbols[name]; dup {
					a.errorf("label %q redefined", name)
				} else {
					a.symbols[name] = a.pc
				}
				line = strings.TrimSpace(line[i+1:])
				continue
			}
			a.statement(line)
			break
		}
	}
}

func (a *casm) add(it item) {
	it.line = a.line
	it.addr = a.pc
	a.pc += uint32(itemSize(&it))
	a.items = append(a.items, it)
}

func itemSize(it *item) int {
	switch {
	case it.isInst:
		n := 1
		info := opTable[it.op]
		for i, kind := range info.operands {
			switch kind {
			case opdDisp:
				n += 2
			case opdCount:
				n++
			default:
				n += specSize(it.specs[specIndex(info, i)].mode)
			}
		}
		return n
	case it.words != nil:
		return 4 * len(it.words)
	case it.data != nil:
		return len(it.data)
	default:
		return it.space
	}
}

// specIndex maps operand position to index within item.specs (skipping
// disp/count operands, which are stored separately).
func specIndex(info opInfo, pos int) int {
	idx := 0
	for i := 0; i < pos; i++ {
		if info.operands[i] != opdDisp && info.operands[i] != opdCount {
			idx++
		}
	}
	return idx
}

func (a *casm) statement(line string) {
	mnemonic, rest := splitFirst(line)
	if strings.HasPrefix(mnemonic, ".") {
		a.directive(mnemonic, rest)
		return
	}
	op, ok := ByName(mnemonic)
	if !ok {
		a.errorf("unknown mnemonic %q", mnemonic)
		return
	}
	info := opTable[op]
	var parts []string
	if rest != "" {
		parts = splitTop(rest)
	}
	if len(parts) != len(info.operands) {
		a.errorf("%s takes %d operands, got %d", op, len(info.operands), len(parts))
		return
	}
	it := item{op: op, isInst: true}
	for i, kind := range info.operands {
		text := strings.TrimSpace(parts[i])
		switch kind {
		case opdDisp:
			e, err := a.parseExpr(strings.TrimPrefix(text, "#"))
			if err != nil {
				a.errorf("%s: %v", op, err)
				return
			}
			it.disp = e
		case opdCount:
			e, err := a.parseExpr(strings.TrimPrefix(text, "#"))
			if err != nil || !e.isNum() || e.off < 0 || e.off > 255 {
				a.errorf("%s: bad count %q", op, text)
				return
			}
			it.count = e.off
		default:
			s, err := a.parseSpec(text)
			if err != nil {
				a.errorf("%s: %v", op, err)
				return
			}
			if (kind == opdWrite || kind == opdRW) &&
				(s.mode == modeImm8 || s.mode == modeImm32) {
				a.errorf("%s: immediate used as destination", op)
				return
			}
			it.specs = append(it.specs, s)
		}
	}
	a.add(it)
}

// parseSpec parses one operand specifier:
//
//	rN / ap / fp / sp      register
//	(rN)                   register deferred
//	d(rN)                  displacement (8- or 32-bit chosen by value)
//	#expr                  immediate
//	@expr                  absolute
//	(rN)[rX]               indexed, longword scale
//	(rN)[rX.b]             indexed, byte scale
//	symbol                 absolute (same as @symbol)
func (a *casm) parseSpec(s string) (spec, error) {
	s = strings.TrimSpace(s)
	if s == "" {
		return spec{}, fmt.Errorf("empty operand")
	}
	if r, ok := regName(s); ok {
		return spec{mode: modeReg, reg: r}, nil
	}
	if s[0] == '#' {
		e, err := a.parseExpr(s[1:])
		if err != nil {
			return spec{}, err
		}
		if e.isNum() && e.off >= -128 && e.off <= 127 {
			return spec{mode: modeImm8, ext: e}, nil
		}
		return spec{mode: modeImm32, ext: e}, nil
	}
	if s[0] == '@' {
		e, err := a.parseExpr(s[1:])
		if err != nil {
			return spec{}, err
		}
		return spec{mode: modeAbs, ext: e}, nil
	}
	// Indexed: (rN)[rX] or (rN)[rX.b]
	if strings.HasSuffix(s, "]") {
		open := strings.LastIndexByte(s, '[')
		if open < 0 {
			return spec{}, fmt.Errorf("bad indexed operand %q", s)
		}
		idxName := strings.TrimSpace(s[open+1 : len(s)-1])
		mode := modeIndex
		if strings.HasSuffix(idxName, ".b") {
			mode = modeIndexB
			idxName = strings.TrimSuffix(idxName, ".b")
		}
		idx, ok := regName(idxName)
		if !ok {
			return spec{}, fmt.Errorf("bad index register in %q", s)
		}
		base := strings.TrimSpace(s[:open])
		if !strings.HasPrefix(base, "(") || !strings.HasSuffix(base, ")") {
			return spec{}, fmt.Errorf("indexed operand needs (rN) base in %q", s)
		}
		r, ok := regName(strings.TrimSpace(base[1 : len(base)-1]))
		if !ok {
			return spec{}, fmt.Errorf("bad base register in %q", s)
		}
		return spec{mode: mode, reg: r, index: idx}, nil
	}
	// (rN) or d(rN)
	if strings.HasSuffix(s, ")") {
		open := strings.LastIndexByte(s, '(')
		if open < 0 {
			return spec{}, fmt.Errorf("bad operand %q", s)
		}
		r, ok := regName(strings.TrimSpace(s[open+1 : len(s)-1]))
		if !ok {
			return spec{}, fmt.Errorf("bad register in %q", s)
		}
		dispText := strings.TrimSpace(s[:open])
		if dispText == "" {
			return spec{mode: modeDeref, reg: r}, nil
		}
		e, err := a.parseExpr(dispText)
		if err != nil {
			return spec{}, err
		}
		if e.isNum() && e.off >= -128 && e.off <= 127 {
			return spec{mode: modeDisp8, reg: r, ext: e}, nil
		}
		return spec{mode: modeDisp32, reg: r, ext: e}, nil
	}
	// Bare symbol: absolute reference.
	if isIdent(s) || isIdentPlus(s) {
		e, err := a.parseExpr(s)
		if err != nil {
			return spec{}, err
		}
		return spec{mode: modeAbs, ext: e}, nil
	}
	return spec{}, fmt.Errorf("cannot parse operand %q", s)
}

func (a *casm) parseExpr(s string) (expr, error) {
	s = strings.TrimSpace(s)
	if s == "" {
		return expr{}, fmt.Errorf("empty expression")
	}
	if s[0] == '\'' {
		if len(s) == 3 && s[2] == '\'' {
			return expr{off: int64(s[1])}, nil
		}
		switch s {
		case `'\n'`:
			return expr{off: '\n'}, nil
		case `'\t'`:
			return expr{off: '\t'}, nil
		case `'\0'`:
			return expr{off: 0}, nil
		}
		return expr{}, fmt.Errorf("bad character literal %s", s)
	}
	if v, err := parseNum(s); err == nil {
		return expr{off: v}, nil
	}
	for _, sep := range []byte{'+', '-'} {
		if i := strings.LastIndexByte(s, sep); i > 0 {
			sym := strings.TrimSpace(s[:i])
			if !isIdent(sym) {
				continue
			}
			n, err := parseNum(strings.TrimSpace(s[i+1:]))
			if err != nil {
				return expr{}, fmt.Errorf("bad offset in %q", s)
			}
			if sep == '-' {
				n = -n
			}
			if v, ok := a.equs[sym]; ok {
				return expr{off: v + n}, nil
			}
			return expr{sym: sym, off: n}, nil
		}
	}
	if isIdent(s) {
		if v, ok := a.equs[s]; ok {
			return expr{off: v}, nil
		}
		return expr{sym: s}, nil
	}
	return expr{}, fmt.Errorf("cannot parse expression %q", s)
}

func parseNum(s string) (int64, error) {
	neg := false
	if strings.HasPrefix(s, "-") {
		neg = true
		s = strings.TrimSpace(s[1:])
	}
	v, err := strconv.ParseUint(s, 0, 32)
	if err != nil {
		return 0, err
	}
	n := int64(v)
	if neg {
		n = -n
	}
	return n, nil
}

func regName(s string) (uint8, bool) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "ap":
		return AP, true
	case "fp":
		return FP, true
	case "sp":
		return SP, true
	}
	s = strings.ToLower(strings.TrimSpace(s))
	if len(s) >= 2 && s[0] == 'r' {
		n, err := strconv.Atoi(s[1:])
		if err == nil && n >= 0 && n < NumRegs {
			return uint8(n), true
		}
	}
	return 0, false
}

func isIdent(s string) bool {
	if s == "" {
		return false
	}
	for i, c := range s {
		switch {
		case c == '_' || c == '.':
		case c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z':
		case c >= '0' && c <= '9':
			if i == 0 {
				return false
			}
		default:
			return false
		}
	}
	if _, isReg := regName(s); isReg {
		return false
	}
	return true
}

func isIdentPlus(s string) bool {
	for _, sep := range []byte{'+', '-'} {
		if i := strings.LastIndexByte(s, sep); i > 0 && isIdent(strings.TrimSpace(s[:i])) {
			return true
		}
	}
	return false
}

func splitFirst(line string) (string, string) {
	i := strings.IndexAny(line, " \t")
	if i < 0 {
		return strings.ToLower(line), ""
	}
	return strings.ToLower(line[:i]), strings.TrimSpace(line[i+1:])
}

// indexOutsideQuotes finds the first occurrence of c outside string or
// character literals (so ';' inside ".asciz" data is not a comment).
func indexOutsideQuotes(s string, c byte) int {
	inQuote := byte(0)
	for i := 0; i < len(s); i++ {
		ch := s[i]
		if inQuote != 0 {
			if ch == '\\' {
				i++
			} else if ch == inQuote {
				inQuote = 0
			}
			continue
		}
		if ch == '"' || ch == '\'' {
			inQuote = ch
			continue
		}
		if ch == c {
			return i
		}
	}
	return -1
}

// splitTop splits on commas outside brackets/parens/quotes.
func splitTop(s string) []string {
	var parts []string
	depth, start := 0, 0
	inQuote := byte(0)
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch {
		case inQuote != 0:
			if c == '\\' {
				i++
			} else if c == inQuote {
				inQuote = 0
			}
		case c == '"' || c == '\'':
			inQuote = c
		case c == '(' || c == '[':
			depth++
		case c == ')' || c == ']':
			depth--
		case c == ',' && depth == 0:
			parts = append(parts, s[start:i])
			start = i + 1
		}
	}
	parts = append(parts, s[start:])
	return parts
}
