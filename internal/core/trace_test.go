package core

import (
	"testing"

	"risc1/internal/asm"
)

// These tests pin the trace tier's own surface — heat counters, compile
// and invalidation bookkeeping, the profile API — on top of the
// observational equivalence that engine_test.go and the fuzzer already
// enforce for every program here.

// runTrace runs src under EngineTrace with an aggressive hot threshold so
// traces compile within small test workloads.
func runTrace(t *testing.T, src string) *CPU {
	t.Helper()
	c := New(Config{Engine: EngineTrace, HotThreshold: 2})
	if err := c.Load(asm.MustAssemble(src)); err != nil {
		t.Fatal(err)
	}
	if err := c.Run(); err != nil {
		t.Fatal(err)
	}
	return c
}

// TestTraceCompilesHotLoop: the canonical counting loop must get a trace,
// and once it has one the bulk of the dynamic instruction stream must
// retire inside it — this is what the batch-alignment protocol (ending a
// batch early rather than limping into a trace head) buys.
func TestTraceCompilesHotLoop(t *testing.T) {
	c := runTrace(t, loopSrc)
	ts := c.TraceStats()
	if ts.Compiled == 0 {
		t.Fatalf("no trace compiled: %+v", ts)
	}
	total := c.Stats().Instructions
	if ts.Instructions < total/2 {
		t.Fatalf("only %d of %d instructions retired in traces", ts.Instructions, total)
	}
	if c.HotThreshold() != 2 {
		t.Fatalf("HotThreshold() = %d, want 2", c.HotThreshold())
	}
}

// TestTraceSideExit: the loop branch is taken long past the threshold and
// then falls through, so the compiled superblock must take its guarded
// side exit at least once.
func TestTraceSideExit(t *testing.T) {
	c := runTrace(t, `
	main:	add r0,#0,r1
	loop:	add r1,#1,r1
		cmp r1,#40
		blt loop
		nop
		ret r25,#8
		nop
	`)
	ts := c.TraceStats()
	if ts.Compiled == 0 || ts.SideExits == 0 {
		t.Fatalf("expected a compiled trace with a side exit: %+v", ts)
	}
	if got := c.Reg(1); got != 40 {
		t.Fatalf("r1 = %d, want 40", got)
	}
}

// TestTraceInvalidationAndRewarm: a hot loop stores over its own body.
// The store must drop the trace (invalidation), and since the patched
// loop keeps spinning, the leader must re-warm and compile a fresh trace
// over the new bytes.
func TestTraceInvalidationAndRewarm(t *testing.T) {
	c := runTrace(t, `
	main:	li #donor,r3
		ldl (r3)#0,r1
		li #patch,r4
		add r0,#0,r2
	patch:	add r2,#1,r2
		cmp r2,#60
		bge done
		nop
		cmp r2,#30
		blt patch
		nop
		stl r1,(r4)#0
		b patch
		nop
	done:	ret r25,#8
		nop
	donor:	add r2,#3,r2
	`)
	ts := c.TraceStats()
	if ts.Invalidations == 0 {
		t.Fatalf("store into trace body did not invalidate: %+v", ts)
	}
	if ts.Compiled < 2 {
		t.Fatalf("patched loop did not re-warm into a fresh trace: %+v", ts)
	}
}

// TestTraceStatsZeroOffTier: the block and step engines never touch the
// trace tier, so its counters stay zero there.
func TestTraceStatsZeroOffTier(t *testing.T) {
	img := asm.MustAssemble(loopSrc)
	for _, e := range []Engine{EngineBlock, EngineStep} {
		c := New(Config{Engine: e, HotThreshold: 2})
		if err := c.Load(img); err != nil {
			t.Fatal(err)
		}
		if err := c.Run(); err != nil {
			t.Fatal(err)
		}
		if ts := c.TraceStats(); ts != (TraceStats{}) {
			t.Fatalf("%v engine has trace stats: %+v", e, ts)
		}
	}
}

// TestHeatProfile: the profile must rank the loop leader hottest, mark it
// as covered by a live trace, and come out sorted.
func TestHeatProfile(t *testing.T) {
	c := runTrace(t, loopSrc)
	prof := c.HeatProfile()
	if len(prof) == 0 {
		t.Fatal("empty heat profile after a hot loop")
	}
	for i := 1; i < len(prof); i++ {
		if prof[i].Count > prof[i-1].Count {
			t.Fatalf("profile not sorted: %+v", prof)
		}
	}
	hot := prof[0]
	if !hot.Trace {
		t.Fatalf("hottest block %#x not inside a live trace: %+v", hot.PC, prof)
	}
	// The loop leader is the third instruction (add r0 / li are the
	// prologue): word 2 of the image.
	if hot.PC != 8 {
		t.Fatalf("hottest PC = %#x, want 0x8 (loop leader)", hot.PC)
	}
}

// TestHotNGrams: the measured dynamic n-gram profile must surface the
// loop body's add/sub(cmp)/jmpr sequence with a dominant count.
func TestHotNGrams(t *testing.T) {
	c := runTrace(t, loopSrc)
	for _, n := range []int{2, 3} {
		grams := c.HotNGrams(n, 8)
		if len(grams) == 0 {
			t.Fatalf("no %d-grams measured", n)
		}
		for _, g := range grams {
			if len(g.Ops) != n {
				t.Fatalf("%d-gram with %d ops: %+v", n, len(g.Ops), g)
			}
			if g.Count == 0 {
				t.Fatalf("zero-count n-gram survived ranking: %+v", grams)
			}
		}
		for i := 1; i < len(grams); i++ {
			if grams[i].Count > grams[i-1].Count {
				t.Fatalf("%d-grams not sorted: %+v", n, grams)
			}
		}
	}
	// Clamping: out-of-range n snaps into [2, 3].
	if got := c.HotNGrams(7, 1); len(got) == 0 || len(got[0].Ops) != 3 {
		t.Fatalf("HotNGrams(7) did not clamp to trigrams: %+v", got)
	}
}

// TestTraceAcrossCall: a hot loop whose body calls a tiny leaf routine
// still traces (chain form), and the windowed state stays exact — the
// equivalence is checked by diffEngines, here we pin that the tier
// engages at all on call-bearing paths.
func TestTraceAcrossCall(t *testing.T) {
	src := `
	main:	add r0,#0,r16
		li #200,r17
	loop:	callr r25,leaf
		nop
		add r16,#1,r16
		cmp r16,r17
		blt loop
		nop
		ret r25,#8
		nop
	leaf:	add r16,#0,r16
		ret r25,#8
		nop
	`
	diffEngines(t, Config{HotThreshold: 2}, src)
	c := runTrace(t, src)
	if ts := c.TraceStats(); ts.Compiled == 0 || ts.Instructions == 0 {
		t.Fatalf("call-bearing loop never traced: %+v", ts)
	}
}
