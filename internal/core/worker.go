package core

import (
	"risc1/internal/isa"
	"risc1/internal/regwin"
	"risc1/internal/stats"
)

// SMP support: the smp package builds an N-core machine out of one loaded
// leader CPU plus N-1 workers that share its memory and decoded-code state.
// Everything here keeps Step the architectural oracle — a worker is an
// ordinary CPU whose register file and save-stack region are private and
// whose code caches are the leader's.

// NewWorker returns a parked core sharing this CPU's memory and decoded-code
// caches (predecode lines, compiled blocks, traces — including write-watch
// invalidation, which broadcasts through the shared tables). The worker has
// fresh registers, stats and control state, and is halted until Launch.
func (c *CPU) NewWorker() *CPU {
	w := &CPU{
		cfg:        c.cfg,
		Mem:        c.Mem,
		Regs:       regwin.New(c.cfg.Windows),
		stat:       stats.New(),
		sharedCode: c.sharedCode,
		ie:         true,
		halted:     true,
	}
	return w
}

// Partition assigns this core a private register-save stack region
// [saveLo, saveHi): window spills grow down from saveHi. The SMP machine
// carves one region per core out of the top of RAM; a single-core run never
// calls this, so its layout is untouched.
func (c *CPU) Partition(saveLo, saveHi uint32) {
	c.saveBase, c.savePtr = saveLo, saveHi
}

// Launch points a parked core at entry with stack pointer sp and a single
// word argument, as the scheduler's stand-in for a call: the argument lands
// where a windowed callee entered without a window slide reads it (the
// incoming-argument register), and the return linkage aims at HaltAddr so
// returning from entry halts the core cleanly — exactly how the main core's
// entry procedure stops. Stats accumulate across launches of the same core.
func (c *CPU) Launch(entry, sp, arg uint32) {
	c.pc, c.npc, c.lastPC = entry, entry+4, entry
	c.flags = isa.Flags{}
	c.ie = true
	c.halted = false
	c.inDelay = false
	c.callDepth = 0
	c.pendIRQ = nil
	c.Regs.Set(SPReg, sp&^7)
	c.Regs.Set(LinkReg, HaltAddr-8)
	c.Regs.Set(workerArgReg, arg)
}

// workerArgReg is where Launch deposits the worker's argument: the windowed
// convention's incoming-argument register (HIGH r26 of the entry window).
const workerArgReg = 26

// RunFor executes up to budget instructions — one scheduling quantum — and
// returns how many retired. Halting, faulting, or an engine batch boundary
// can end the quantum early; the caller distinguishes them via Halted and
// the error. Driving a core with RunFor(runBatch) until it halts retires
// the exact state sequence RunContext produces.
func (c *CPU) RunFor(budget int) (int, error) {
	useBlocks, useTraces := c.engineTiers()
	n, err := c.runSlice(budget, useBlocks, useTraces)
	if err != nil || n > 0 || c.halted {
		return n, err
	}
	// A hot trace is parked at the PC but the budget cannot fit one
	// iteration (only possible with a quantum below runBatch); single-step
	// once so a tiny quantum still makes progress.
	if err := c.Step(); err != nil {
		return 0, err
	}
	return 1, nil
}

// RunBatchSize is the engine's batch granularity, exported as the natural
// SMP scheduling quantum: quanta that are multiples of it preserve the
// single-core engines' batching exactly.
const RunBatchSize = runBatch

// Instructions returns the instructions retired so far (cheap accessor for
// schedulers; Stats materializes the full picture).
func (c *CPU) Instructions() uint64 { return c.stat.Instructions }

// Cycles returns the simulated cycles consumed so far.
func (c *CPU) Cycles() uint64 { return c.stat.Cycles }
