// Trace/superblock tier on top of the basic-block engine. Block leaders
// carry heat counters; when one crosses Config.HotThreshold, the hot path
// out of it — following taken delayed branches, static call bodies and
// fall-throughs picked by measured edge heat — is compiled into one trace.
// Loop traces whose every segment ends in a fast JMP/JMPR dispatch run in
// "turbo" mode: the whole per-iteration accounting (instructions, cycles,
// opcode mix, transfer and delay-slot counters) is hoisted out of the loop
// and charged in bulk on exit, and the segment bodies are re-fused with a
// repertoire grown from measured dynamic opcode trigrams rather than the
// hand-picked pairs of the block engine. Everything else runs in "chain"
// mode, which replays the planned block sequence through runBlock with a
// PC guard between segments.
//
// Exactness contract (same as the block engine): every exit — guarded
// side-exit off the hot path, fault, MaxCycles split, self-modifying
// store — lands on a machine state Step would produce, with only the
// executed instructions charged. Turbo pre-limits its iteration count so
// no instruction starts at or beyond MaxCycles, and faults charge the
// completed prefix before building the RunError (which snapshots the
// cycle counter).
package core

import (
	"sort"
	"strings"

	"risc1/internal/cfg"
	"risc1/internal/isa"
)

const (
	// maxTraceSegs caps how many basic blocks one trace may span.
	maxTraceSegs = 8
	// hotNGramCount is how many top-ranked dynamic opcode trigrams gate
	// triple fusion when a trace body is compiled.
	hotNGramCount = 16
)

// TraceStats are the trace tier's meta counters. They live outside
// stats.Stats on purpose: engines must agree on Stats exactly, and only
// the trace tier has traces to count.
type TraceStats struct {
	Compiled      uint64 // traces compiled (recompiles after invalidation included)
	SideExits     uint64 // guarded exits where execution left the hot path
	Invalidations uint64 // traces dropped by stores into their code
	Instructions  uint64 // dynamic instructions retired inside traces
}

// TraceStats returns the trace tier's counters (all zero unless the
// engine is EngineAuto or EngineTrace and something got hot).
func (c *CPU) TraceStats() TraceStats { return c.traceStat }

// HotThreshold reports the configured trace-compile threshold.
func (c *CPU) HotThreshold() uint64 { return c.cfg.HotThreshold }

// turboOp is one compiled trace-body operation: one instruction, a fused
// pair, or — when the opcode trigram measured hot — a fused triple whose
// leading instructions cannot fault.
type turboOp struct {
	fn    func(c *CPU) error
	fidx  uint16 // segment-relative index of the op's faultable (last) instruction
	store bool   // may write memory: re-check trace liveness after it runs
}

// turboSeg is one basic block of a turbo trace, re-fused for the trace
// tier, with the block's fixed accounting kept for partial charging.
type turboSeg struct {
	w        uint32 // leader word index
	startPC  uint32
	termPC   uint32
	slotPC   uint32
	ops      []turboOp
	term     func(c *CPU) (uint32, bool) // JMP/JMPR dispatch (cmp-branch may be fused in)
	slotFn   func(c *CPU) error          // nil when the slot is an effect-free nop
	slotNop  bool
	hotTaken bool   // direction that stays on the trace
	offPC    uint32 // where the off-trace direction lands (targets are static)
	costs    []instCost
	nInst    int
}

// turboTrace is a loop trace in bulk-accounting form: per-iteration
// totals charged k at a time on exit.
type turboTrace struct {
	segs       []turboSeg
	iterInsts  int
	iterCycles uint64
	counts     []opCount
	transfers  uint64
	taken      uint64
	slotNops   uint64
	slotUseful uint64
	// runSimple is the fully-fused loop runner of a fault-free,
	// store-free trace: it executes up to k iterations with no PC
	// maintenance and no guards beyond the branch directions (nothing
	// mid-iteration can fault, store, or observe the PC pair), returning
	// how many iterations completed and the segment whose branch left
	// the trace (-1 when all k stayed on it). The PC pair is
	// reconstructed only at exit.
	runSimple func(c *CPU, k int) (int, int)
}

// chainSeg is one planned block of a chain trace.
type chainSeg struct {
	w  uint32
	pc uint32
}

// trace is one compiled superblock: turbo or chain form, plus the code
// ranges it covers for write-watch invalidation.
type trace struct {
	head   uint32
	turbo  *turboTrace
	chain  []chainSeg
	ranges [][2]uint32 // covered word ranges [start, end)
}

// noTrace is the cached "tried, not worth a trace" answer.
var noTrace = &trace{}

// bumpHeat credits a block dispatch (or several self-loop trips) to its
// leader and compiles a trace the moment the leader crosses the
// threshold. Compilation triggers only on the crossing itself, so a
// refused leader (noTrace) is not retried until its heat is reset.
func (c *CPU) bumpHeat(w uint32, b *block, consumed int) {
	if b.nInst == 0 {
		return
	}
	trips := uint64((consumed + b.nInst - 1) / b.nInst)
	h0 := c.heat[w]
	c.heat[w] = h0 + trips
	if thr := c.cfg.HotThreshold; h0+trips >= thr && h0 < thr {
		c.compileTraceAt(w)
	}
}

// compileTraceAt compiles (or refuses) the trace headed at word w and
// records the result.
func (c *CPU) compileTraceAt(w uint32) {
	if c.traces == nil {
		c.traces = make([]*trace, len(c.predec))
	}
	tr := c.compileTrace(w)
	c.traces[w] = tr
	if tr != noTrace {
		c.liveTraces = append(c.liveTraces, tr)
		c.traceStat.Compiled++
	}
}

// segPlan is one block of a trace under construction, with the hot edge
// chosen out of it.
type segPlan struct {
	w        uint32
	b        *block
	fast     bool // JMP/JMPR terminator: turbo-eligible segment
	hotTaken bool
}

// compileTrace plans the hot path out of leader w using the shared cfg
// flow model, then compiles it: a turbo trace when the path closes a loop
// through fast terminators only, a chain trace when it spans at least two
// blocks, noTrace otherwise.
func (c *CPU) compileTrace(w uint32) *trace {
	p := cfg.New(c.codeOrg, c.predec, c.predecOK)
	var plans []segPlan
	var retStack []uint32
	seen := map[uint32]bool{}
	cur, total, loop := w, 0, false
	for len(plans) < maxTraceSegs {
		if seen[cur] || int(cur) >= len(c.blocks) {
			break
		}
		b := c.blockAt(cur)
		if b == nil || b.nInst == 0 || total+b.nInst > runBatch {
			break
		}
		seen[cur] = true
		pl := segPlan{w: cur, b: b}
		next, ok := c.traceSuccessor(p, &pl, &retStack)
		plans = append(plans, pl)
		total += b.nInst
		if !ok {
			break
		}
		if next == w && len(retStack) == 0 {
			loop = true
			break
		}
		cur = next
	}
	if len(plans) == 0 {
		return noTrace
	}
	turbo := loop
	for i := range plans {
		if !plans[i].fast {
			turbo = false
			break
		}
	}
	tr := &trace{head: w}
	for _, pl := range plans {
		tr.ranges = append(tr.ranges, [2]uint32{pl.w, pl.w + uint32(pl.b.nInst)})
	}
	if turbo {
		tr.turbo = c.compileTurbo(plans)
		return tr
	}
	if len(plans) < 2 {
		// A lone non-loop block gains nothing over the block engine.
		return noTrace
	}
	for _, pl := range plans {
		tr.chain = append(tr.chain, chainSeg{w: pl.w, pc: c.codeOrg + 4*pl.w})
	}
	return tr
}

// traceSuccessor picks the hot static successor of pl's block, filling in
// the plan's edge fields. ok is false when the successor is dynamic or
// unknown, ending the trace at this segment. Calls push the expected
// return point (the word after the call's slot — the compiler's `ret
// rd,#8` linkage) so a small call body folds into the trace; the chain
// guard catches a callee that returns anywhere else.
func (c *CPU) traceSuccessor(p *cfg.Program, pl *segPlan, retStack *[]uint32) (uint32, bool) {
	b := pl.b
	if !b.term {
		// Straight-line fall-off: the next word follows unconditionally.
		return pl.w + uint32(b.nInst), true
	}
	termIdx := int(pl.w) + b.termIdx
	in := b.termInst
	fallW := pl.w + uint32(b.termIdx) + 2
	switch in.Op {
	case isa.OpJMP, isa.OpJMPR:
		pl.fast = b.termFast != nil
		tw, known := p.StaticTarget(termIdx, in)
		switch in.Cond() {
		case isa.CondALW:
			if !known {
				return 0, false
			}
			pl.hotTaken = true
			return uint32(tw), true
		case isa.CondNEV:
			return fallW, true
		}
		// Conditional: follow the measured hotter edge, taken on ties.
		if known && c.heatAt(uint32(tw)) >= c.heatAt(fallW) {
			pl.hotTaken = true
			return uint32(tw), true
		}
		return fallW, true
	case isa.OpCALL, isa.OpCALLR:
		tw, known := p.StaticTarget(termIdx, in)
		if !known {
			return 0, false
		}
		*retStack = append(*retStack, fallW)
		return uint32(tw), true
	case isa.OpRET, isa.OpRETINT:
		if n := len(*retStack); n > 0 {
			next := (*retStack)[n-1]
			*retStack = (*retStack)[:n-1]
			return next, true
		}
	}
	return 0, false
}

func (c *CPU) heatAt(w uint32) uint64 {
	if w < uint32(len(c.heat)) {
		return c.heat[w]
	}
	return 0
}

// compileTurbo builds the bulk-accounting form of a fast loop trace.
func (c *CPU) compileTurbo(plans []segPlan) *turboTrace {
	hot := c.hotTrigrams()
	t := &turboTrace{}
	var agg [128]uint32
	simple := true
	for _, pl := range plans {
		b := pl.b
		start := int(pl.w)
		bodyN := b.termIdx
		termPC := b.blockPC(b.termIdx)
		term := compileJump(&b.termInst, termPC)
		if bodyN > 0 {
			if fused := fuseCmpBranch(&c.predec[start+bodyN-1], &b.termInst, termPC); fused != nil {
				term = fused
				bodyN--
			}
		}
		s := turboSeg{
			w:        pl.w,
			startPC:  b.startPC,
			termPC:   termPC,
			slotPC:   termPC + 4,
			ops:      c.compileTurboBody(start, bodyN, hot),
			term:     term,
			slotFn:   b.slotFn,
			slotNop:  b.slotNop,
			hotTaken: pl.hotTaken,
			costs:    b.costs,
			nInst:    b.nInst,
		}
		// The off-trace landing point, for exit-time PC reconstruction.
		// Off the fall-through edge that is the static branch target; a
		// dynamic target (register-form JMP) bars the simple form unless
		// that direction is unreachable (never-taken condition).
		if pl.hotTaken {
			s.offPC = s.slotPC + 4
		} else {
			switch {
			case b.termInst.Op == isa.OpJMPR:
				s.offPC = termPC + uint32(b.termInst.Imm19)
			case b.termInst.Op == isa.OpJMP && b.termInst.Rs1 == 0 && b.termInst.Imm:
				s.offPC = uint32(b.termInst.Imm13)
			case b.termInst.Cond() == isa.CondNEV:
				// No taken edge exists; the guard can never fire.
			default:
				simple = false
			}
		}
		// The simple form also requires a fault-free, store-free
		// iteration: no memory operations anywhere in the segment.
		for j, ic := range b.costs {
			if j == b.termIdx {
				continue
			}
			if cat := isa.Op(ic.op).Cat(); cat == isa.CatLoad || cat == isa.CatStore {
				simple = false
				break
			}
		}
		t.segs = append(t.segs, s)
		t.iterInsts += b.nInst
		t.iterCycles += b.fixedCycles
		for _, oc := range b.counts {
			agg[oc.op] += oc.n
		}
		t.transfers++
		if pl.hotTaken {
			t.taken++
		}
		if b.slotNop {
			t.slotNops++
		} else {
			t.slotUseful++
		}
	}
	for op, n := range agg {
		if n > 0 {
			t.counts = append(t.counts, opCount{op: uint8(op), n: n})
		}
	}
	if simple {
		t.runSimple = compileSimple(t.segs)
	}
	return t
}

// compileSimple fuses a fault-free trace into a loop runner: the
// iteration loop itself lives inside the closure, so the hot path pays
// only the compiled bodies and one direction check per segment.
func compileSimple(segs []turboSeg) func(*CPU, int) (int, int) {
	if len(segs) == 1 {
		return compileSimpleLoop(&segs[0])
	}
	fns := make([]func(*CPU) bool, len(segs))
	for i := range segs {
		fns[i] = compileSimpleSeg(&segs[i])
	}
	return func(c *CPU, k int) (int, int) {
		for j := 0; j < k; j++ {
			for i := range fns {
				if !fns[i](c) {
					return j, i
				}
			}
		}
		return k, -1
	}
}

// compileSimpleLoop specializes the single-segment loop — the hottest
// shape there is — with the common small bodies unrolled straight into
// the runner, two indirect calls per iteration.
func compileSimpleLoop(s *turboSeg) func(*CPU, int) (int, int) {
	term, hot := s.term, s.hotTaken
	if s.slotFn == nil {
		switch len(s.ops) {
		case 0:
			return func(c *CPU, k int) (int, int) {
				for j := 0; j < k; j++ {
					if _, taken := term(c); taken != hot {
						return j, 0
					}
				}
				return k, -1
			}
		case 1:
			f0 := s.ops[0].fn
			return func(c *CPU, k int) (int, int) {
				for j := 0; j < k; j++ {
					_ = f0(c)
					if _, taken := term(c); taken != hot {
						return j, 0
					}
				}
				return k, -1
			}
		case 2:
			f0, f1 := s.ops[0].fn, s.ops[1].fn
			return func(c *CPU, k int) (int, int) {
				for j := 0; j < k; j++ {
					_ = f0(c)
					_ = f1(c)
					if _, taken := term(c); taken != hot {
						return j, 0
					}
				}
				return k, -1
			}
		}
	}
	seg := compileSimpleSeg(s)
	return func(c *CPU, k int) (int, int) {
		for j := 0; j < k; j++ {
			if !seg(c) {
				return j, 0
			}
		}
		return k, -1
	}
}

// compileSimpleSeg builds one segment's fused iteration step, reporting
// whether execution stayed on the trace. The slot runs after the branch
// decides and before the guard reports it, like everywhere else.
func compileSimpleSeg(s *turboSeg) func(*CPU) bool {
	term, hot := s.term, s.hotTaken
	body := composeOps(s.ops)
	switch slot := s.slotFn; {
	case body == nil && slot == nil:
		return func(c *CPU) bool {
			_, taken := term(c)
			return taken == hot
		}
	case body == nil:
		return func(c *CPU) bool {
			_, taken := term(c)
			_ = slot(c)
			return taken == hot
		}
	case slot == nil:
		return func(c *CPU) bool {
			body(c)
			_, taken := term(c)
			return taken == hot
		}
	default:
		return func(c *CPU) bool {
			body(c)
			_, taken := term(c)
			_ = slot(c)
			return taken == hot
		}
	}
}

// composeOps flattens a fault-free op run into one call (nil when empty).
func composeOps(ops []turboOp) func(*CPU) {
	switch len(ops) {
	case 0:
		return nil
	case 1:
		f0 := ops[0].fn
		return func(c *CPU) { _ = f0(c) }
	case 2:
		f0, f1 := ops[0].fn, ops[1].fn
		return func(c *CPU) { _ = f0(c); _ = f1(c) }
	default:
		fns := make([]func(*CPU) error, len(ops))
		for i := range ops {
			fns[i] = ops[i].fn
		}
		return func(c *CPU) {
			for i := range fns {
				_ = fns[i](c)
			}
		}
	}
}

// compileTurboBody compiles the body words [start, start+n) with the
// profile-guided repertoire: opcode trigrams measured hot fuse three deep
// (the leading two instructions must be fault-free), everything else gets
// the block engine's pair fusion.
func (c *CPU) compileTurboBody(start, n int, hot map[uint32]bool) []turboOp {
	type comp struct {
		fn       func(*CPU) error
		canFault bool
		store    bool
	}
	cs := make([]comp, n)
	for j := 0; j < n; j++ {
		in := &c.predec[start+j]
		fn, cf := compileStraight(in)
		cs[j] = comp{fn, cf, in.Op.Cat() == isa.CatStore}
	}
	var ops []turboOp
	for j := 0; j < n; {
		if j+2 < n && !cs[j].canFault && !cs[j+1].canFault && hot[c.trigramKey(start+j)] {
			f1, f2, f3 := cs[j].fn, cs[j+1].fn, cs[j+2].fn
			ops = append(ops, turboOp{
				fn:    func(c *CPU) error { _ = f1(c); _ = f2(c); return f3(c) },
				fidx:  uint16(j + 2),
				store: cs[j+2].store,
			})
			j += 3
			continue
		}
		if j+1 < n && !cs[j].canFault {
			f1, f2 := cs[j].fn, cs[j+1].fn
			ops = append(ops, turboOp{
				fn:    func(c *CPU) error { _ = f1(c); return f2(c) },
				fidx:  uint16(j + 1),
				store: cs[j+1].store,
			})
			j += 2
			continue
		}
		ops = append(ops, turboOp{fn: cs[j].fn, fidx: uint16(j), store: cs[j].store})
		j++
	}
	return ops
}

// trigramKey packs the opcodes of the three instructions at word j.
func (c *CPU) trigramKey(j int) uint32 {
	return uint32(c.predec[j].Op&0x7F)<<16 |
		uint32(c.predec[j+1].Op&0x7F)<<8 |
		uint32(c.predec[j+2].Op&0x7F)
}

// runHotTrace dispatches the trace headed at the current PC, if one
// exists and the machine is at a clean boundary. It returns (0, nil) when
// no trace ran (the caller falls back to the block engine) and (-1, nil)
// when a trace is headed here but the batch remainder is too small to
// enter it — the caller should end the batch so the next one starts at
// the trace head with full budget.
func (c *CPU) runHotTrace(budget int) (int, error) {
	if c.traces == nil || c.inDelay || len(c.pendIRQ) > 0 {
		return 0, nil
	}
	off := c.pc - c.codeOrg
	if off&3 != 0 || off>>2 >= uint32(len(c.traces)) {
		return 0, nil
	}
	tr := c.traces[off>>2]
	if tr == nil || tr == noTrace {
		return 0, nil
	}
	if tr.turbo != nil {
		return c.runTurbo(tr, budget)
	}
	return c.runChain(tr, budget)
}

// runTurbo iterates a loop trace with all accounting hoisted out of the
// loop. The iteration count k is pre-limited so the whole run fits both
// the caller's budget and MaxCycles (every cost is fixed — turbo traces
// contain no window machinery — so k*iterCycles is exact, and with
// Cycles+k*iterCycles <= MaxCycles every instruction starts strictly
// below the limit, exactly the set Step would execute).
func (c *CPU) runTurbo(tr *trace, budget int) (int, error) {
	t := tr.turbo
	if c.stat.Cycles >= c.cfg.MaxCycles {
		return 0, nil
	}
	kc := (c.cfg.MaxCycles - c.stat.Cycles) / t.iterCycles
	if kc == 0 {
		return 0, nil
	}
	k := budget / t.iterInsts
	if k == 0 {
		// The batch remainder is smaller than one iteration. Stepping
		// into the loop body here would skew the next batch off the trace
		// head, so end the batch instead: a fresh one fits an iteration.
		return -1, nil
	}
	if uint64(k) > kc {
		k = int(kc)
	}
	if t.runSimple != nil {
		// Fault-free, store-free loop: nothing mid-iteration can trap,
		// write code, or observe the PC pair, so the machine state is
		// settled once at exit.
		j, si := t.runSimple(c, k)
		if si >= 0 {
			s := &t.segs[si]
			c.lastPC = s.slotPC
			c.pc = s.offPC
			c.npc = s.offPC + 4
			return c.turboSideExit(t, j, si, !s.hotTaken)
		}
		c.lastPC = t.segs[len(t.segs)-1].slotPC
		c.pc = t.segs[0].startPC
		c.npc = c.pc + 4
		c.chargeTurboIters(t, uint64(k))
		consumed := k * t.iterInsts
		c.traceStat.Instructions += uint64(consumed)
		for si := range t.segs {
			c.heat[t.segs[si].w] += uint64(k)
		}
		return consumed, nil
	}
	gen := c.traceGen
	for j := 0; j < k; j++ {
		for si := range t.segs {
			s := &t.segs[si]
			for oi := range s.ops {
				op := &s.ops[oi]
				if err := op.fn(c); err != nil {
					return 0, c.turboFault(t, j, si, int(op.fidx), err)
				}
				if op.store && c.traceGen != gen {
					// The store rewrote trace code somewhere; stop right
					// after it, exactly where the block engine would.
					return c.turboStoreExit(t, j, si, int(op.fidx))
				}
			}
			// Mirror runBlock's fast-terminator path: the slot runs
			// whichever way the branch went, then control moves.
			target, taken := s.term(c)
			c.lastPC = s.termPC
			if taken {
				c.npc = target
			} else {
				c.npc = s.slotPC + 4
			}
			if s.slotFn != nil {
				if err := s.slotFn(c); err != nil {
					return 0, c.turboSlotFault(t, j, si, taken, err)
				}
			}
			c.lastPC = s.slotPC
			c.pc = c.npc
			c.npc = c.pc + 4
			if taken != s.hotTaken {
				// The PC pair is already correct for the actual direction;
				// only the accounting needs settling.
				return c.turboSideExit(t, j, si, taken)
			}
		}
	}
	c.chargeTurboIters(t, uint64(k))
	consumed := k * t.iterInsts
	c.traceStat.Instructions += uint64(consumed)
	for si := range t.segs {
		c.heat[t.segs[si].w] += uint64(k)
	}
	return consumed, nil
}

// chargeTurboIters charges k complete trace iterations in bulk.
func (c *CPU) chargeTurboIters(t *turboTrace, k uint64) {
	c.stat.Instructions += k * uint64(t.iterInsts)
	c.stat.Cycles += k * t.iterCycles
	for _, oc := range t.counts {
		c.opCounts[oc.op] += k * uint64(oc.n)
	}
	c.stat.Transfers += k * t.transfers
	c.stat.TakenTransfers += k * t.taken
	c.stat.DelaySlotNops += k * t.slotNops
	c.stat.DelaySlotUseful += k * t.slotUseful
}

// chargeCosts charges a run of individually-accounted instructions.
func (c *CPU) chargeCosts(costs []instCost) {
	for _, ic := range costs {
		c.stat.Instructions++
		c.stat.Cycles += uint64(ic.cycles)
		c.opCounts[ic.op]++
	}
}

// chargeTurboSeg charges one fully-executed on-path segment.
func (c *CPU) chargeTurboSeg(s *turboSeg) {
	c.chargeCosts(s.costs)
	c.stat.Transfers++
	if s.hotTaken {
		c.stat.TakenTransfers++
	}
	if s.slotNop {
		c.stat.DelaySlotNops++
	} else {
		c.stat.DelaySlotUseful++
	}
}

// turboFault settles a body fault at segment si, instruction fidx: j full
// iterations plus the executed prefix stay charged (the faulting
// instruction included, as in Step), and the PC pair lands on the
// faulting instruction.
func (c *CPU) turboFault(t *turboTrace, j, si, fidx int, err error) error {
	c.chargeTurboIters(t, uint64(j))
	for sj := 0; sj < si; sj++ {
		c.chargeTurboSeg(&t.segs[sj])
	}
	s := &t.segs[si]
	c.chargeCosts(s.costs[:fidx+1])
	fpc := s.startPC + uint32(4*fidx)
	if fidx > 0 {
		c.lastPC = fpc - 4
	}
	c.pc = fpc
	c.npc = fpc + 4
	return c.runError(fpc, err)
}

// turboSlotFault settles a delay-slot fault: the whole segment (slot
// included) stays charged and npc keeps the branch's decision, exactly
// like the block engine's fast-terminator slot fault.
func (c *CPU) turboSlotFault(t *turboTrace, j, si int, taken bool, err error) error {
	c.chargeTurboIters(t, uint64(j))
	for sj := 0; sj < si; sj++ {
		c.chargeTurboSeg(&t.segs[sj])
	}
	s := &t.segs[si]
	c.chargeCosts(s.costs)
	c.stat.Transfers++
	if taken {
		c.stat.TakenTransfers++
	}
	c.stat.DelaySlotUseful++
	c.pc = s.slotPC
	return c.runError(s.slotPC, err)
}

// turboStoreExit settles a self-modifying-store exit right after the
// store at segment si, instruction fidx.
func (c *CPU) turboStoreExit(t *turboTrace, j, si, fidx int) (int, error) {
	c.chargeTurboIters(t, uint64(j))
	consumed := j * t.iterInsts
	for sj := 0; sj < si; sj++ {
		c.chargeTurboSeg(&t.segs[sj])
		consumed += t.segs[sj].nInst
	}
	s := &t.segs[si]
	c.chargeCosts(s.costs[:fidx+1])
	consumed += fidx + 1
	c.lastPC = s.startPC + uint32(4*fidx)
	c.pc = c.lastPC + 4
	c.npc = c.pc + 4
	c.traceStat.Instructions += uint64(consumed)
	for sj := range t.segs {
		c.heat[t.segs[sj].w] += uint64(j)
	}
	return consumed, nil
}

// turboSideExit settles a guarded exit at segment si: the segment ran to
// completion (slot included) but the branch went off-trace, and the PC
// pair already reflects the actual direction.
func (c *CPU) turboSideExit(t *turboTrace, j, si int, taken bool) (int, error) {
	c.chargeTurboIters(t, uint64(j))
	consumed := j * t.iterInsts
	for sj := 0; sj < si; sj++ {
		c.chargeTurboSeg(&t.segs[sj])
		consumed += t.segs[sj].nInst
	}
	s := &t.segs[si]
	c.chargeCosts(s.costs)
	c.stat.Transfers++
	if taken {
		c.stat.TakenTransfers++
	}
	if s.slotNop {
		c.stat.DelaySlotNops++
	} else {
		c.stat.DelaySlotUseful++
	}
	consumed += s.nInst
	c.traceStat.SideExits++
	c.traceStat.Instructions += uint64(consumed)
	for sj := range t.segs {
		c.heat[t.segs[sj].w] += uint64(j)
	}
	for sj := 0; sj <= si; sj++ {
		c.heat[t.segs[sj].w]++
	}
	return consumed, nil
}

// runChain replays a planned block sequence through runBlock, with a PC
// guard between segments: the moment execution leaves the planned path
// (side exit), the code changes underneath (generation bump), or a
// per-segment gate fails, the chain stops at a state the outer loop
// resumes from exactly.
func (c *CPU) runChain(tr *trace, budget int) (int, error) {
	consumed := 0
	gen := c.traceGen
	for i := range tr.chain {
		s := &tr.chain[i]
		if i > 0 {
			if c.halted || c.traceGen != gen {
				break
			}
			if c.pc != s.pc {
				c.traceStat.SideExits++
				break
			}
		}
		b := c.blockAt(s.w)
		if b == nil || b.nInst == 0 {
			break
		}
		if b.nInst > budget-consumed {
			if i == 0 && c.stat.Cycles+b.cyclesButLast < c.cfg.MaxCycles {
				// Same batch-alignment rule as turbo: don't step into the
				// trace head on fumes, restart it on a fresh batch.
				return -1, nil
			}
			break
		}
		if c.stat.Cycles+b.cyclesButLast >= c.cfg.MaxCycles {
			break
		}
		n, err := c.runBlock(s.w, b, budget-consumed)
		consumed += n
		c.heat[s.w] += uint64((n + b.nInst - 1) / b.nInst)
		if err != nil {
			c.traceStat.Instructions += uint64(consumed)
			return consumed, err
		}
	}
	c.traceStat.Instructions += uint64(consumed)
	return consumed, nil
}

// invalidateTraces drops every live trace overlapping the stored-to word
// range [first, last] and resets the head's heat so the rewritten path
// must re-warm before it is re-traced.
func (c *CPU) invalidateTraces(first, last uint32) {
	if len(c.liveTraces) == 0 {
		return
	}
	kept := c.liveTraces[:0]
	for _, tr := range c.liveTraces {
		hit := false
		for _, r := range tr.ranges {
			if r[0] <= last && first < r[1] {
				hit = true
				break
			}
		}
		if !hit {
			kept = append(kept, tr)
			continue
		}
		c.traces[tr.head] = nil
		if tr.head < uint32(len(c.heat)) {
			c.heat[tr.head] = 0
		}
		c.traceStat.Invalidations++
		c.traceGen++
	}
	c.liveTraces = kept
}

// Profile surface.

// HeatEntry is one row of the execution-heat profile: a block leader, how
// many times it dispatched, and whether it lies inside a live trace.
type HeatEntry struct {
	PC    uint32
	Count uint64
	Trace bool
}

// HeatProfile returns the non-zero block-heat table sorted hottest-first
// (ties by address). Heat is counted by the trace-capable engines only
// (EngineAuto, EngineTrace).
func (c *CPU) HeatProfile() []HeatEntry {
	var out []HeatEntry
	for w, h := range c.heat {
		if h == 0 {
			continue
		}
		out = append(out, HeatEntry{
			PC:    c.codeOrg + uint32(4*w),
			Count: h,
			Trace: c.inLiveTrace(uint32(w)),
		})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Count != out[j].Count {
			return out[i].Count > out[j].Count
		}
		return out[i].PC < out[j].PC
	})
	return out
}

func (c *CPU) inLiveTrace(w uint32) bool {
	for _, tr := range c.liveTraces {
		for _, r := range tr.ranges {
			if w >= r[0] && w < r[1] {
				return true
			}
		}
	}
	return false
}

// NGram is one measured dynamic opcode n-gram.
type NGram struct {
	Ops   []string
	Count uint64
}

// HotNGrams ranks the measured dynamic opcode n-grams (n clamped to 2 or
// 3) by estimated execution count and returns the top entries. This is
// the profile the trace tier's fusion repertoire grows from.
func (c *CPU) HotNGrams(n, top int) []NGram {
	if n < 2 {
		n = 2
	}
	if n > 3 {
		n = 3
	}
	counts := c.nGramCounts(n)
	out := make([]NGram, 0, len(counts))
	for key, cnt := range counts {
		ops := make([]string, n)
		for k := n - 1; k >= 0; k-- {
			ops[k] = isa.Op(key & 0x7F).Name()
			key >>= 8
		}
		out = append(out, NGram{Ops: ops, Count: cnt})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Count != out[j].Count {
			return out[i].Count > out[j].Count
		}
		return strings.Join(out[i].Ops, " ") < strings.Join(out[j].Ops, " ")
	})
	if top > 0 && len(out) > top {
		out = out[:top]
	}
	return out
}

// nGramCounts estimates dynamic opcode n-gram counts as block heat times
// each block's static opcode sequence — exact while execution stays on
// block boundaries, which is where all the heat is.
func (c *CPU) nGramCounts(n int) map[uint32]uint64 {
	out := map[uint32]uint64{}
	for w, b := range c.blocks {
		if b == nil || b.nInst == 0 {
			continue
		}
		h := c.heat[w]
		if h == 0 {
			continue
		}
		for j := 0; j+n <= len(b.costs); j++ {
			var key uint32
			for k := 0; k < n; k++ {
				key = key<<8 | uint32(b.costs[j+k].op)
			}
			out[key] += h
		}
	}
	return out
}

// hotTrigrams is the triple-fusion gate: the top hotNGramCount trigrams
// by measured dynamic count.
func (c *CPU) hotTrigrams() map[uint32]bool {
	counts := c.nGramCounts(3)
	type kv struct {
		key uint32
		n   uint64
	}
	all := make([]kv, 0, len(counts))
	for k, n := range counts {
		all = append(all, kv{k, n})
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].n != all[j].n {
			return all[i].n > all[j].n
		}
		return all[i].key < all[j].key
	})
	if len(all) > hotNGramCount {
		all = all[:hotNGramCount]
	}
	hot := make(map[uint32]bool, len(all))
	for _, e := range all {
		hot[e.key] = true
	}
	return hot
}
