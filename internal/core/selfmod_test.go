package core

import (
	"testing"

	"risc1/internal/asm"
)

// TestSelfModifyingCode stores a new instruction word over one the CPU has
// already executed (and therefore predecoded), re-executes it, and checks the
// new behavior takes effect. Without write-watch invalidation the stale
// predecoded "add r0,#7,r2" would run forever.
func TestSelfModifyingCode(t *testing.T) {
	c := run(t, Config{}, `
	main:	li #donor,r3
		ldl (r3)#0,r1       ; r1 = encoding of "add r0,#77,r2"
		li #patch,r4
	patch:	add r0,#7,r2        ; first execution: r2 = 7
		cmp r2,#7
		bne done            ; after the patch: r2 = 77, so skip the store
		nop
		stl r1,(r4)#0       ; overwrite the patch site
		b patch             ; re-execute the patched instruction
		nop
	done:	ret r25,#8
		nop
	donor:	add r0,#77,r2       ; never reached; exists for its encoding
	`)
	if got := c.Reg(2); got != 77 {
		t.Errorf("r2 = %d, want 77 (patched instruction did not take effect)", got)
	}
}

// TestExternalStoreInvalidatesPredecode covers the other writer: Load
// predecodes the whole code segment up front, so a store arriving through
// the CPU's exposed memory (a debugger, a DMA model) rather than a program
// store must also invalidate the predecoded line before it executes.
func TestExternalStoreInvalidatesPredecode(t *testing.T) {
	img, err := asm.Assemble(`
	main:	add r0,#7,r2
	patch:	add r0,#1,r3
		ret r25,#8
		nop
	donor:	add r0,#99,r3
	`)
	if err != nil {
		t.Fatalf("assemble: %v", err)
	}
	c := New(Config{})
	if err := c.Load(img); err != nil {
		t.Fatalf("load: %v", err)
	}
	patchAddr, _ := img.Symbol("patch")
	donorAddr, _ := img.Symbol("donor")
	word, err := c.Mem.Fetch32(donorAddr)
	if err != nil {
		t.Fatalf("fetch donor: %v", err)
	}
	if err := c.Mem.Store32(patchAddr, word); err != nil {
		t.Fatalf("patch store: %v", err)
	}
	if err := c.Run(); err != nil {
		t.Fatalf("run: %v", err)
	}
	if got := c.Reg(3); got != 99 {
		t.Errorf("r3 = %d, want 99 (external patch was not picked up)", got)
	}
}
