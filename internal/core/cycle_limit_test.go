package core

import (
	"errors"
	"testing"

	"risc1/internal/asm"
)

// infiniteLoop never halts: one 1-cycle delayed branch plus its 1-cycle NOP
// slot per trip, so cycles advance exactly one per step forever.
const infiniteLoop = "main: b main\n nop\n"

// TestMaxCyclesExactRun pins the hardened cycle-limit semantics: a run over
// budget aborts at exactly MaxCycles — not at the next multiple of the batch
// size, which the old per-batch check allowed to overshoot by up to ~128.
func TestMaxCyclesExactRun(t *testing.T) {
	const limit = 100 // deliberately off the 64-step batch boundary
	c := New(Config{MaxCycles: limit})
	if err := c.Load(asm.MustAssemble(infiniteLoop)); err != nil {
		t.Fatal(err)
	}
	err := c.Run()
	if !errors.Is(err, ErrMaxCycles) {
		t.Fatalf("err = %v, want ErrMaxCycles", err)
	}
	if got := c.Stats().Cycles; got != limit {
		t.Fatalf("aborted at cycle %d, want exactly %d", got, limit)
	}
}

// TestMaxCyclesExactStep checks that external Step callers get the same
// protection as Run: the step that would begin at the limit refuses to
// execute, leaving the cycle counter untouched.
func TestMaxCyclesExactStep(t *testing.T) {
	const limit = 7
	c := New(Config{MaxCycles: limit})
	if err := c.Load(asm.MustAssemble(infiniteLoop)); err != nil {
		t.Fatal(err)
	}
	steps := 0
	var err error
	for ; steps < 1000; steps++ {
		if err = c.Step(); err != nil {
			break
		}
	}
	if !errors.Is(err, ErrMaxCycles) {
		t.Fatalf("err = %v, want ErrMaxCycles", err)
	}
	if steps != limit {
		t.Fatalf("executed %d steps before abort, want %d", steps, limit)
	}
	if got := c.Stats().Cycles; got != limit {
		t.Fatalf("cycles after refused step = %d, want %d", got, limit)
	}
	// The refusal is sticky: further steps keep returning ErrMaxCycles.
	if err := c.Step(); !errors.Is(err, ErrMaxCycles) {
		t.Fatalf("second refused step: %v, want ErrMaxCycles", err)
	}
}
