package core

import (
	"math/rand"
	"testing"

	"risc1/internal/asm"
)

// TestRandomWordsNeverPanic feeds the CPU programs of random 32-bit words.
// Whatever garbage is fetched — undefined opcodes, wild jumps, misaligned
// accesses, runaway loops — execution must end in a clean error or halt,
// never a panic. This is the simulator's equivalent of a hardware machine
// never wedging its control unit.
func TestRandomWordsNeverPanic(t *testing.T) {
	r := rand.New(rand.NewSource(99))
	for trial := 0; trial < 300; trial++ {
		c := New(Config{MemSize: 1 << 16, MaxCycles: 20000})
		words := make([]byte, 256)
		r.Read(words)
		if err := c.Mem.LoadProgram(0, words); err != nil {
			t.Fatal(err)
		}
		// Hand-crafted reset (no assembler image): start at 0.
		c.pc, c.npc = 0, 4
		func() {
			defer func() {
				if p := recover(); p != nil {
					t.Fatalf("trial %d: panic: %v\nwords: % x", trial, p, words[:32])
				}
			}()
			for !c.Halted() {
				if err := c.Step(); err != nil {
					return // clean fault
				}
				if c.Stats().Cycles > 20000 {
					return
				}
			}
		}()
	}
}

// TestRandomValidInstructionsNeverPanic is the stronger variant: streams of
// structurally valid instructions with random fields, which reach deep into
// the execution paths (window slides, PSW writes, stores) rather than
// faulting at decode.
func TestRandomValidInstructionsNeverPanic(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	ops := []string{
		"add r%d,#%d,r%d", "sub! r%d,#%d,r%d", "xor r%d,#%d,r%d",
		"sll r%d,#%d,r%d", "ldl (r9)#%d,r%d", "stl r%d,(r9)#%d",
		"jmpr eq,#%d", "callr r25,#%d", "getpsw r%d", "putpsw r%d,#%d",
		"ldhi r%d,#%d",
	}
	for trial := 0; trial < 200; trial++ {
		var src []byte
		for i := 0; i < 40; i++ {
			line := ops[r.Intn(len(ops))]
			args := make([]any, 0, 3)
			for j := 0; j < countPct(line); j++ {
				args = append(args, r.Intn(32))
			}
			src = append(src, []byte("\t"+sprintfLine(line, args)+"\n")...)
		}
		img, err := asm.Assemble("main:\n" + string(src) + "\tret r25,#8\n\tnop\n")
		if err != nil {
			continue // out-of-range relative target etc: fine
		}
		c := New(Config{MemSize: 1 << 16, MaxCycles: 5000})
		if err := c.Load(img); err != nil {
			t.Fatal(err)
		}
		func() {
			defer func() {
				if p := recover(); p != nil {
					t.Fatalf("trial %d: panic: %v\nprogram:\n%s", trial, p, src)
				}
			}()
			_ = c.Run() // errors are acceptable; panics are not
		}()
	}
}

// FuzzExec is the native-fuzzing form of TestRandomWordsNeverPanic: the
// fuzzer mutates raw code bytes and the CPU must fault cleanly or halt,
// never panic. Run continuously with `go test -fuzz=FuzzExec ./internal/core`.
func FuzzExec(f *testing.F) {
	f.Add([]byte{0x00, 0x00, 0x00, 0x00})
	f.Add([]byte{0x22, 0x00, 0x00, 0x01, 0x88, 0x32, 0x00, 0x08}) // add + ret-ish
	seed := make([]byte, 64)
	rand.New(rand.NewSource(7)).Read(seed)
	f.Add(seed)
	f.Fuzz(func(t *testing.T, code []byte) {
		if len(code) == 0 || len(code) > 4096 {
			return
		}
		c := New(Config{MemSize: 1 << 16, MaxCycles: 20000})
		if err := c.Mem.LoadProgram(0, code); err != nil {
			return
		}
		c.pc, c.npc = 0, 4
		defer func() {
			if p := recover(); p != nil {
				t.Fatalf("panic: %v\ncode: % x", p, code)
			}
		}()
		for !c.Halted() {
			if err := c.Step(); err != nil {
				return // clean fault (including the exact MaxCycles abort)
			}
		}
	})
}

// FuzzEngineEquivalence is the three-way differential fuzzer for the
// compiled engines: the same code bytes run under the step oracle, the
// block engine and the trace tier, and the complete observable outcome —
// PC state at three mid-run checkpoints and at the end, Stats(), console
// output, and fault identity — must match exactly. The checkpoints come
// from truncating MaxCycles, which exercises the batched-accounting split
// at arbitrary block and trace offsets. Seeds deliberately include
// trace-hostile programs: a loop whose branch flips direction after
// warming up (forcing a superblock side exit), a loop that stores over
// its own compiled body (forcing trace invalidation mid-flight), and a
// hot loop that faults after the trace is compiled.
func FuzzEngineEquivalence(f *testing.F) {
	f.Add(asm.MustAssemble(loopSrc).Bytes, uint32(30000))
	f.Add(asm.MustAssemble(sumProgram(12)).Bytes, uint32(30000))
	f.Add([]byte{0x22, 0x00, 0x00, 0x01, 0x88, 0x32, 0x00, 0x08}, uint32(100))
	// Side exit: blt is taken for 40 trips — long past the hot threshold —
	// then falls through, so the compiled superblock's guard must bail.
	f.Add(asm.MustAssemble(`
	main:	add r0,#0,r1
	loop:	add r1,#1,r1
		cmp r1,#40
		blt loop
		sub r1,#1,r2
		ret r25,#8
		nop
	`).Bytes, uint32(20000))
	// Self-modifying store into a compiled trace: once hot, the loop
	// patches its own body, which must invalidate the trace exactly at
	// the store boundary.
	f.Add(asm.MustAssemble(`
	main:	li #donor,r3
		ldl (r3)#0,r1
		li #patch,r4
		add r0,#0,r2
	patch:	add r2,#1,r2
		cmp r2,#30
		bge done
		nop
		cmp r2,#20
		blt patch
		nop
		stl r1,(r4)#0
		b patch
		nop
	done:	ret r25,#8
		nop
	donor:	add r2,#3,r2
	`).Bytes, uint32(20000))
	// Mid-trace fault: the load's address register climbs until the
	// access leaves memory, long after the loop's trace compiled.
	f.Add(asm.MustAssemble(`
	main:	li #0x8000,r1
	loop:	add r1,#64,r1
		ldl (r1)#0,r2
		cmp r2,#1
		bne loop
		nop
		ret r25,#8
		nop
	`).Bytes, uint32(30000))
	seed := make([]byte, 128)
	rand.New(rand.NewSource(41)).Read(seed)
	f.Add(seed, uint32(5000))
	f.Fuzz(func(t *testing.T, code []byte, limit uint32) {
		if len(code) == 0 || len(code) > 4096 {
			return
		}
		budget := 1 + uint64(limit)%30000
		img := &asm.Image{Org: 0, Entry: 0, Bytes: code}
		for _, mc := range []uint64{budget/4 + 1, budget/2 + 1, budget} {
			cfg := Config{MemSize: 1 << 16, MaxCycles: mc}
			cs, errS := runEngine(t, cfg, EngineStep, img)
			cb, errB := runEngine(t, cfg, EngineBlock, img)
			compareEngines(t, "block", cs, cb, errS, errB)
			ct, errT := runEngine(t, cfg, EngineTrace, img)
			compareEngines(t, "trace", cs, ct, errS, errT)
		}
	})
}

func countPct(s string) int {
	n := 0
	for i := 0; i+1 < len(s); i++ {
		if s[i] == '%' && s[i+1] == 'd' {
			n++
		}
	}
	return n
}

func sprintfLine(format string, args []any) string {
	out := make([]byte, 0, len(format)+8)
	ai := 0
	for i := 0; i < len(format); i++ {
		if format[i] == '%' && i+1 < len(format) && format[i+1] == 'd' {
			v := args[ai].(int)
			ai++
			out = appendInt(out, v)
			i++
			continue
		}
		out = append(out, format[i])
	}
	return string(out)
}

func appendInt(b []byte, v int) []byte {
	if v == 0 {
		return append(b, '0')
	}
	var tmp [8]byte
	i := len(tmp)
	for v > 0 {
		i--
		tmp[i] = byte('0' + v%10)
		v /= 10
	}
	return append(b, tmp[i:]...)
}
