package core

import (
	"testing"

	"risc1/internal/asm"
)

// BenchmarkSimulatorThroughput measures host instructions/second of the
// RISC I simulator on a tight arithmetic loop — the number that bounds how
// much simulated work the experiment suite can afford.
func BenchmarkSimulatorThroughput(b *testing.B) {
	img := asm.MustAssemble(`
	main:	add r0,#0,r1
		li #1000000,r2
	loop:	add r1,#1,r1
		cmp r1,r2
		blt loop
		nop
		ret r25,#8
		nop
	`)
	for _, e := range []Engine{EngineStep, EngineBlock, EngineTrace} {
		b.Run(e.String(), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				c := New(Config{Engine: e})
				if err := c.Load(img); err != nil {
					b.Fatal(err)
				}
				if err := c.Run(); err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(float64(c.Stats().Instructions), "sim-instructions/op")
			}
		})
	}
}

// BenchmarkCallReturn measures the simulator on the windowed call path,
// including occasional spill traps.
func BenchmarkCallReturn(b *testing.B) {
	img := asm.MustAssemble(`
	main:	add r0,#0,r16
		li #100000,r17
	loop:	callr r25,f
		nop
		add r16,#1,r16
		cmp r16,r17
		blt loop
		nop
		ret r25,#8
		nop
	f:	ret r25,#8
		nop
	`)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c := New(Config{})
		if err := c.Load(img); err != nil {
			b.Fatal(err)
		}
		if err := c.Run(); err != nil {
			b.Fatal(err)
		}
	}
}
