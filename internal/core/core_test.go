package core

import (
	"errors"
	"strings"
	"testing"

	"risc1/internal/asm"
	"risc1/internal/mem"
)

// run assembles src, runs it to completion on cfg, and returns the CPU.
func run(t *testing.T, cfg Config, src string) *CPU {
	t.Helper()
	img, err := asm.Assemble(src)
	if err != nil {
		t.Fatalf("assemble: %v", err)
	}
	c := New(cfg)
	if err := c.Load(img); err != nil {
		t.Fatalf("load: %v", err)
	}
	if err := c.Run(); err != nil {
		t.Fatalf("run: %v", err)
	}
	return c
}

// The console's put-integer port is reachable with a negative 13-bit
// displacement off r0: 0xFFFFFF04 sign-extends from -252.
const putIntDisp = "-252"

func TestArithmeticProgram(t *testing.T) {
	c := run(t, Config{}, `
	main:	add r0,#10,r1
		add r1,r1,r2        ; 20
		sub r2,#5,r3        ; 15
		xor r3,#0xFF,r4
		and r4,#0xF0,r5
		or  r5,#0x01,r6
		sll r1,#3,r7        ; 80
		srl r7,#2,r16       ; 20
		add r0,#-8,r17
		sra r17,#1,r18      ; -4
		ret r25,#8
		nop
	`)
	want := map[uint8]uint32{
		1: 10, 2: 20, 3: 15, 4: 15 ^ 0xFF, 5: (15 ^ 0xFF) & 0xF0,
		6: (15^0xFF)&0xF0 | 1, 7: 80, 16: 20, 18: uint32(0xFFFFFFFC),
	}
	for r, v := range want {
		if got := c.Reg(r); got != v {
			t.Errorf("r%d = %d (%#x), want %d", r, got, got, v)
		}
	}
	if !c.Halted() {
		t.Error("machine did not halt")
	}
}

func TestDelayedBranch(t *testing.T) {
	c := run(t, Config{}, `
	main:	add r0,#1,r1
		b over
		add r0,#2,r2        ; delay slot: must execute
		add r0,#3,r3        ; skipped by the branch
	over:	add r0,#4,r4
		ret r25,#8
		nop
	`)
	if c.Reg(2) != 2 {
		t.Error("delay-slot instruction did not execute")
	}
	if c.Reg(3) != 0 {
		t.Error("branch target was not honored (skipped instruction ran)")
	}
	if c.Reg(4) != 4 {
		t.Error("instruction at branch target did not run")
	}
}

func TestUntakenConditionalFallsThrough(t *testing.T) {
	c := run(t, Config{}, `
	main:	cmp r0,#1
		beq never
		add r0,#7,r1        ; delay slot
		add r0,#9,r2        ; fall-through continues
		ret r25,#8
		nop
	never:	add r0,#99,r3
		ret r25,#8
		nop
	`)
	if c.Reg(1) != 7 || c.Reg(2) != 9 || c.Reg(3) != 0 {
		t.Errorf("r1=%d r2=%d r3=%d; want 7 9 0", c.Reg(1), c.Reg(2), c.Reg(3))
	}
	s := c.Stats()
	if s.Transfers < 2 { // beq (untaken) + ret
		t.Errorf("Transfers = %d, want >= 2", s.Transfers)
	}
}

func TestConditionSuite(t *testing.T) {
	// Each pair (a, b) is compared and one bit per true condition is OR-ed
	// into r1 so a single run checks all signed/unsigned conditions.
	c := run(t, Config{}, `
	main:	add r0,#0,r1
		add r0,#-3,r2       ; a = -3
		add r0,#5,r3        ; b = 5
		cmp r2,r3
		blt signed_lt
		nop
		b after1
		nop
	signed_lt: or r1,#1,r1
	after1:	cmp r2,r3
		bhis unsigned_ge    ; 0xFFFFFFFD >= 5 unsigned
		nop
		b after2
		nop
	unsigned_ge: or r1,#2,r1
	after2:	cmp r3,r3
		beq equal
		nop
		b after3
		nop
	equal:	or r1,#4,r1
	after3:	ret r25,#8
		nop
	`)
	if c.Reg(1) != 7 {
		t.Errorf("condition bits = %#x, want 0x7", c.Reg(1))
	}
}

// sumProgram computes sum(n) = n + sum(n-1) recursively through register
// windows: the canonical RISC I procedure-call exercise.
func sumProgram(n int) string {
	return `
	main:	add r0,#` + itoa(n) + `,r10
		callr r25,sum
		nop
		stl r10,(r0)#` + putIntDisp + `
		ret r25,#8
		nop
	sum:	cmp r26,#0
		bgt rec
		nop
		add r0,#0,r26
		ret r25,#8
		nop
	rec:	sub r26,#1,r10
		callr r25,sum
		nop
		add r26,r10,r26
		ret r25,#8
		nop
	`
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var b []byte
	for n > 0 {
		b = append([]byte{byte('0' + n%10)}, b...)
		n /= 10
	}
	return string(b)
}

func TestWindowedCallChain(t *testing.T) {
	c := run(t, Config{}, sumProgram(5))
	if got := c.Console(); got != "15" {
		t.Errorf("sum(5) printed %q, want 15", got)
	}
	s := c.Stats()
	if s.Calls != 6 || s.Returns != 6 {
		t.Errorf("calls=%d returns=%d, want 6 each", s.Calls, s.Returns)
	}
	if s.MaxCallDepth != 6 {
		t.Errorf("max depth = %d, want 6", s.MaxCallDepth)
	}
	if s.WindowOverflow != 0 || s.WindowUnderflow != 0 {
		t.Errorf("unexpected window traps: ovf=%d unf=%d", s.WindowOverflow, s.WindowUnderflow)
	}
}

func TestWindowOverflowUnderflow(t *testing.T) {
	c := run(t, Config{Windows: 8}, sumProgram(30))
	if got := c.Console(); got != "465" {
		t.Fatalf("sum(30) printed %q, want 465", got)
	}
	s := c.Stats()
	// Depth reaches 31 (main + sum(30)..sum(0)); with 8 windows the
	// pure descent spills depth-(N-2) = 25 windows... the first N-2
	// activations fit. Spills happen on calls 7..31.
	wantSpill := uint64(31 - (8 - 2))
	if s.WindowOverflow != wantSpill || s.WindowUnderflow != wantSpill {
		t.Errorf("ovf=%d unf=%d, want %d each", s.WindowOverflow, s.WindowUnderflow, wantSpill)
	}
}

func TestWindowCountChangesTrapRate(t *testing.T) {
	trapCount := func(windows int) uint64 {
		c := run(t, Config{Windows: windows}, sumProgram(30))
		if c.Console() != "465" {
			t.Fatalf("windows=%d: wrong result %q", windows, c.Console())
		}
		return c.Stats().WindowOverflow
	}
	small, large := trapCount(3), trapCount(16)
	if small <= large {
		t.Errorf("3 windows should trap more than 16: %d vs %d", small, large)
	}
	if huge := trapCount(40); huge != 0 {
		t.Errorf("40 windows still trapped %d times on depth 31", huge)
	}
}

func TestFlatModeCallsDontSlide(t *testing.T) {
	// Note the save/restore of r25 around the call: in flat mode the call
	// overwrites the caller's link register — the very overhead register
	// windows exist to remove.
	c := run(t, Config{Flat: true}, `
	main:	sub r9,#4,r9
		stl r25,(r9)#0
		add r0,#42,r10
		callr r25,f
		nop
		ldl (r9)#0,r25
		add r9,#4,r9
		ret r25,#8
		nop
	f:	add r10,#0,r11      ; flat: callee sees the same r10
		ret r25,#8
		nop
	`)
	if c.Reg(11) != 42 {
		t.Errorf("flat callee read r10 = %d, want 42", c.Reg(11))
	}
	if s := c.Stats(); s.WindowOverflow != 0 || s.WindowUnderflow != 0 {
		t.Error("flat mode took window traps")
	}
}

func TestFlatModeLinkClobbered(t *testing.T) {
	// In flat mode the nested call overwrites r25; the hand-written code
	// here saves it on the data stack, exactly what the flat compiler
	// backend must do.
	c := run(t, Config{Flat: true}, `
	main:	sub r9,#4,r9
		stl r25,(r9)#0
		add r0,#3,r10
		callr r25,outer
		nop
		stl r10,(r0)#`+putIntDisp+`
		ldl (r9)#0,r25
		add r9,#4,r9
		ret r25,#8
		nop
	outer:	sub r9,#4,r9
		stl r25,(r9)#0
		callr r25,leaf
		nop
		ldl (r9)#0,r25
		add r9,#4,r9
		ret r25,#8
		nop
	leaf:	add r10,#1,r10
		ret r25,#8
		nop
	`)
	if c.Console() != "4" {
		t.Errorf("printed %q, want 4", c.Console())
	}
}

func TestMemoryWidths(t *testing.T) {
	c := run(t, Config{}, `
	main:	la data,r1
		ldl (r1)#0,r2
		ldsu (r1)#4,r3
		ldss (r1)#4,r4
		ldbu (r1)#6,r5
		ldbs (r1)#6,r6
		add r0,#-1,r7
		sts r7,(r1)#8
		stb r7,(r1)#11
		ldl (r1)#8,r16
		ret r25,#8
		nop
		.align 4
	data:	.word 0x01020304
		.half 0x8001
		.byte 0xFF, 0
		.word 0
	`)
	checks := map[uint8]uint32{
		2:  0x01020304,
		3:  0x8001,             // zero-extended halfword
		4:  uint32(0xFFFF8001), // sign-extended halfword
		5:  0xFF,               // zero-extended byte
		6:  uint32(0xFFFFFFFF), // sign-extended byte
		16: 0xFFFF00FF,         // halfword + byte stores merged
	}
	for r, v := range checks {
		if got := c.Reg(r); got != v {
			t.Errorf("r%d = %#x, want %#x", r, got, v)
		}
	}
}

func TestLdhiMaterialization(t *testing.T) {
	c := run(t, Config{}, `
	main:	li #0xDEADBEEF,r1
		li #305419896,r2    ; 0x12345678
		ret r25,#8
		nop
	`)
	if c.Reg(1) != 0xDEADBEEF || c.Reg(2) != 0x12345678 {
		t.Errorf("li produced %#x, %#x", c.Reg(1), c.Reg(2))
	}
}

func TestPSWAccess(t *testing.T) {
	c := run(t, Config{}, `
	main:	cmp r0,#0           ; Z=1
		getpsw r1
		putpsw r0,#0        ; clear everything (incl. IE)
		getpsw r2
		putpsw r0,#0x105    ; C, N, IE
		getpsw r3
		ret r25,#8
		nop
	`)
	if c.Reg(1)&0x8 == 0 {
		t.Errorf("Z bit not visible in PSW: %#x", c.Reg(1))
	}
	if c.Reg(2) != 0 {
		t.Errorf("PSW after clear = %#x, want 0", c.Reg(2))
	}
	if c.Reg(3)&0x1FF != 0x105 {
		t.Errorf("PSW after set = %#x, want low bits 0x105", c.Reg(3))
	}
	if f := c.Flags(); !f.C || !f.N || f.Z || f.V {
		t.Errorf("flags after putpsw = %+v", f)
	}
}

func TestGTLPC(t *testing.T) {
	c := run(t, Config{}, `
	main:	nop                 ; pc 0
		gtlpc r1            ; pc 4: lastPC = 0
		ret r25,#8
		nop
	`)
	if c.Reg(1) != 0 {
		t.Errorf("gtlpc = %#x, want 0", c.Reg(1))
	}
}

func TestInterruptRoundTrip(t *testing.T) {
	img := asm.MustAssemble(`
	main:	add r0,#1,r1
		add r1,#1,r1
		add r1,#1,r1
		add r1,#1,r1
		ret r25,#8
		nop
		.align 4
	handler: callint r16        ; r16 := PC of the interrupted instruction
		add r0,#77,r2       ; handler work (r2 is per-window... use global)
		add r0,#77,r5       ; global survives the window slide
		retint r16,#0       ; resume exactly where the interrupt hit
		nop
	`)
	c := New(Config{})
	if err := c.Load(img); err != nil {
		t.Fatal(err)
	}
	// Step twice, then interrupt.
	for i := 0; i < 2; i++ {
		if err := c.Step(); err != nil {
			t.Fatal(err)
		}
	}
	vec, _ := img.Symbol("handler")
	c.Interrupt(vec)
	if err := c.Run(); err != nil {
		t.Fatal(err)
	}
	if c.Reg(1) != 4 {
		t.Errorf("r1 = %d after resume, want 4 (all increments ran)", c.Reg(1))
	}
	if c.Reg(5) != 77 {
		t.Error("handler did not run")
	}
}

// TestInterruptAtEveryBoundary interrupts a branch-heavy loop after every
// possible number of steps and requires the computation to finish with the
// same result regardless — the acid test for interrupt delivery around
// delayed branches (a resume address captured mid-branch would corrupt it).
func TestInterruptAtEveryBoundary(t *testing.T) {
	src := `
	main:	add r0,#0,r1
	loop:	add r1,#1,r1
		cmp r1,#50
		blt loop
		nop
		stl r1,(r0)#-252
		ret r25,#8
		nop
		.align 4
	handler: callint r16
		add r5,#1,r5        ; count interrupts in a global
		retint r16,#0
		nop
	`
	img := asm.MustAssemble(src)
	vec, _ := img.Symbol("handler")
	for steps := 1; steps < 60; steps++ {
		c := New(Config{})
		if err := c.Load(img); err != nil {
			t.Fatal(err)
		}
		for i := 0; i < steps && !c.Halted(); i++ {
			if err := c.Step(); err != nil {
				t.Fatalf("steps=%d: %v", steps, err)
			}
		}
		if !c.Halted() {
			c.Interrupt(vec)
		}
		if err := c.Run(); err != nil {
			t.Fatalf("steps=%d: %v", steps, err)
		}
		if got := c.Console(); got != "50" {
			t.Fatalf("interrupt after %d steps corrupted the loop: printed %q", steps, got)
		}
		if !c.Halted() {
			t.Fatalf("steps=%d: did not halt", steps)
		}
	}
}

func TestCWPVisibleInPSW(t *testing.T) {
	c := run(t, Config{}, `
	main:	getpsw r1
		callr r25,f
		nop
		ret r25,#8
		nop
	f:	getpsw r5           ; global: visible after return
		ret r25,#8
		nop
	`)
	cwpMain := c.Reg(1) >> 16 & 0xFF
	cwpCallee := c.Reg(5) >> 16 & 0xFF
	if cwpCallee != cwpMain+1 {
		t.Errorf("CWP in callee = %d, in main = %d; want +1", cwpCallee, cwpMain)
	}
}

func TestIllegalInstruction(t *testing.T) {
	img := asm.MustAssemble("main: .word 0\n")
	c := New(Config{})
	c.Load(img)
	err := c.Run()
	if err == nil || !strings.Contains(err.Error(), "undefined opcode") {
		t.Errorf("err = %v, want undefined opcode", err)
	}
	var ce *Error
	if !errors.As(err, &ce) || ce.PC != 0 {
		t.Errorf("fault PC = %v", err)
	}
}

func TestMisalignedLoadFaults(t *testing.T) {
	img := asm.MustAssemble("main: ldl (r0)#2,r1\n nop\n")
	c := New(Config{})
	c.Load(img)
	err := c.Run()
	var f *mem.Fault
	if !errors.As(err, &f) || !f.Misalign {
		t.Errorf("err = %v, want misalignment fault", err)
	}
}

func TestRunawayProgramHitsCycleLimit(t *testing.T) {
	img := asm.MustAssemble("main: b main\n nop\n")
	c := New(Config{MaxCycles: 1000})
	c.Load(img)
	err := c.Run()
	if !errors.Is(err, ErrMaxCycles) {
		t.Errorf("err = %v, want ErrMaxCycles", err)
	}
}

func TestSaveStackOverflow(t *testing.T) {
	// Recursion depth 200 with a save stack that only fits 4 windows.
	img := asm.MustAssemble(sumProgram(200))
	c := New(Config{Windows: 4, SaveStackBytes: 256})
	c.Load(img)
	err := c.Run()
	if !errors.Is(err, ErrSaveStackFull) {
		t.Errorf("err = %v, want ErrSaveStackFull", err)
	}
}

func TestStepAfterHalt(t *testing.T) {
	c := run(t, Config{}, "main: ret r25,#8\n nop\n")
	if err := c.Step(); !errors.Is(err, ErrHalted) {
		t.Errorf("Step after halt = %v, want ErrHalted", err)
	}
}

func TestReturnBelowInitialWindow(t *testing.T) {
	// A return whose target is a real address (not the halt sentinel)
	// from the initial window must fault, not panic.
	img := asm.MustAssemble(`
	main:	add r0,#16,r16
		ret r16,#0
		nop
		nop
		nop
	`)
	c := New(Config{})
	c.Load(img)
	err := c.Run()
	if err == nil || !strings.Contains(err.Error(), "below the initial window") {
		t.Errorf("err = %v", err)
	}
}

func TestCycleAccounting(t *testing.T) {
	c := run(t, Config{}, `
	main:	add r0,#1,r1        ; 1 cycle
		add r1,#2,r2        ; 1
		stl r2,(r9)#-4      ; 2
		ldl (r9)#-4,r3      ; 2
		ret r25,#8          ; 1
		nop                 ; not executed: halt short-circuits
	`)
	if got := c.Stats().Cycles; got != 7 {
		t.Errorf("cycles = %d, want 7", got)
	}
	if c.Time() <= 0 {
		t.Error("Time() not positive")
	}
}

func TestDelaySlotAccounting(t *testing.T) {
	c := run(t, Config{}, `
	main:	b one
		nop                 ; wasted slot
	one:	b two
		add r0,#1,r1        ; useful slot
	two:	ret r25,#8
		nop
	`)
	s := c.Stats()
	if s.DelaySlotNops != 1 || s.DelaySlotUseful != 1 {
		t.Errorf("slots: nop=%d useful=%d, want 1 and 1", s.DelaySlotNops, s.DelaySlotUseful)
	}
}

func TestStatsMix(t *testing.T) {
	c := run(t, Config{}, sumProgram(10))
	s := c.Stats()
	if s.ByCategory["control"] == 0 || s.ByCategory["alu"] == 0 {
		t.Errorf("category mix incomplete: %v", s.ByCategory)
	}
	if s.FetchBytes != s.Instructions*4 {
		t.Errorf("fetch bytes %d != 4 * %d instructions", s.FetchBytes, s.Instructions)
	}
	if s.DataBytes() == 0 {
		t.Error("no data traffic recorded despite console store")
	}
}

func TestJMPRegisterForm(t *testing.T) {
	c := run(t, Config{}, `
	main:	la target,r1
		jmp alw,(r1)#0
		nop
		add r0,#1,r2        ; skipped
	target:	add r0,#2,r3
		ret r25,#8
		nop
	`)
	if c.Reg(2) != 0 || c.Reg(3) != 2 {
		t.Errorf("register-indirect jump failed: r2=%d r3=%d", c.Reg(2), c.Reg(3))
	}
}
