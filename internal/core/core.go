// Package core implements the RISC I processor itself: the paper's primary
// contribution. It executes the 31-instruction ISA with delayed control
// transfers, optional condition-code setting, and the overlapping register
// windows of package regwin, including the window overflow/underflow traps
// that spill to a register-save stack in memory.
//
// The processor can also run in a "flat" configuration (Config.Flat) with
// the same ISA but no window sliding. That configuration is not part of the
// paper's hardware — it is the ablation the evaluation needs: a RISC without
// register windows whose compiler must save and restore registers around
// calls, exactly the comparison behind the paper's procedure-call argument.
package core

import (
	"context"
	"errors"
	"fmt"
	"strings"

	"risc1/internal/asm"
	"risc1/internal/isa"
	"risc1/internal/mem"
	"risc1/internal/regwin"
	"risc1/internal/stats"
	"risc1/internal/timing"
)

// Software conventions baked into Reset and the compiler.
const (
	// HaltAddr is the magic address whose fetch halts the machine. Reset
	// points the initial return linkage here, so a `ret r25,#8` from the
	// entry procedure stops the simulation cleanly.
	HaltAddr = 0xFFFF0000

	// LinkReg receives the return address on calls (a LOCAL register, so
	// each windowed activation keeps its own).
	LinkReg = 25

	// SPReg is the data stack pointer, a global so all windows share it.
	SPReg = 9
)

// Config selects a processor configuration.
type Config struct {
	// Windows is the number of register windows (default
	// regwin.DefaultWindows = 8, the paper's configuration).
	Windows int
	// Flat disables register-window sliding: calls and returns keep CWP
	// fixed, as on a conventional flat-register machine.
	Flat bool
	// MemSize is RAM size in bytes (default 1 MiB).
	MemSize int
	// SaveStackBytes reserves the top of RAM for spilled windows
	// (default 16 KiB; 64 bytes per spilled window).
	SaveStackBytes int
	// SpillBatch is how many windows one overflow trap spills (default 1,
	// clamped to 4). Spilling extra windows amortizes trap overhead and
	// adds hysteresis against call-depth oscillation — the policy question
	// studied by Halbert & Kessler and measured by experiment E6b.
	SpillBatch int
	// MaxCycles aborts runaway programs (default 1e9).
	MaxCycles uint64
	// Engine selects the execution engine Run uses (default EngineAuto:
	// trace-tier block execution, single-step when a Trace is installed).
	// Step is always the single-step oracle regardless of this knob.
	Engine Engine
	// HotThreshold is how many executions warm a block leader before the
	// trace tier (EngineAuto/EngineTrace) compiles a superblock there
	// (default 16). Lower values trade compile churn for earlier traces.
	HotThreshold uint64
}

func (c Config) withDefaults() Config {
	if c.Windows == 0 {
		c.Windows = regwin.DefaultWindows
	}
	if c.MemSize == 0 {
		c.MemSize = 1 << 20
	}
	if c.SaveStackBytes == 0 {
		c.SaveStackBytes = 16 << 10
	}
	if c.SpillBatch < 1 {
		c.SpillBatch = 1
	}
	if c.SpillBatch > 4 {
		c.SpillBatch = 4
	}
	if c.MaxCycles == 0 {
		c.MaxCycles = 1e9
	}
	if c.HotThreshold == 0 {
		c.HotThreshold = 16
	}
	if c.Engine > EngineTrace {
		// Defense in depth for a dropped ParseEngine error: an
		// out-of-range engine (EngineInvalid) degrades to auto rather
		// than selecting behavior by accident. Parse boundaries are
		// still required to reject the bad spelling outright.
		c.Engine = EngineAuto
	}
	return c
}

// Sentinel errors from Run and Step.
var (
	ErrMaxCycles     = errors.New("core: cycle limit exceeded")
	ErrSaveStackFull = errors.New("core: register save stack overflow")
	ErrHalted        = errors.New("core: machine is halted")
)

// RunError is a structured execution fault: beyond the wrapped cause it
// carries the faulting PC, the disassembly of the instruction there (when it
// decodes), the cycle count at the fault, and a snapshot of the visible
// registers of the current window — enough context to diagnose a failing
// guest program without re-running it under a tracer.
type RunError struct {
	PC     uint32
	Inst   string   // disassembly of the faulting instruction ("" if undecodable)
	Cycles uint64   // cycle count when the fault was raised
	CWP    int      // current window pointer at the fault
	Window []uint32 // visible registers r0..r31 of the current window
	Err    error
}

// Error is the pre-hardening name for RunError, kept for callers that match
// on *core.Error.
type Error = RunError

func (e *RunError) Error() string {
	var b strings.Builder
	fmt.Fprintf(&b, "core: at pc %#08x", e.PC)
	if e.Inst != "" {
		fmt.Fprintf(&b, " (%s)", e.Inst)
	}
	if e.Cycles > 0 {
		fmt.Fprintf(&b, " cycle %d", e.Cycles)
	}
	fmt.Fprintf(&b, ": %v", e.Err)
	return b.String()
}

func (e *RunError) Unwrap() error { return e.Err }

// runError builds a RunError for a fault at pc, snapshotting machine state.
func (c *CPU) runError(pc uint32, err error) *RunError {
	e := &RunError{
		PC:     pc,
		Cycles: c.stat.Cycles,
		CWP:    c.Regs.CWP(),
		Window: make([]uint32, isa.NumVisibleRegs),
		Err:    err,
	}
	for r := 0; r < isa.NumVisibleRegs; r++ {
		e.Window[r] = c.Regs.Get(uint8(r))
	}
	if word, ferr := c.Mem.Fetch32(pc); ferr == nil {
		if inst, derr := isa.Decode(word); derr == nil {
			e.Inst = inst.String()
		}
	}
	return e
}

// sharedCode is the per-image decoded-code state: the predecode lines, the
// compiled basic blocks and the trace tier's tables. A single-core CPU owns
// one privately; an SMP machine shares one across all cores (see NewWorker)
// so code compiled by any core serves every core, and a write-watch
// invalidation by the watching core is a broadcast — all cores dispatch
// through the same tables. Mutation is safe because cores in an SMP machine
// interleave only at instruction boundaries on one goroutine.
type sharedCode struct {
	// Predecode cache: the image's code segment decoded once at Load.
	// Step dispatches from predec[(pc-codeOrg)>>2] and falls back to a
	// live fetch+decode outside the cached range (or where predecOK is
	// false: data words, undefined opcodes, or invalidated lines). A
	// write watch on the code range keeps self-modifying code correct.
	codeOrg  uint32
	predec   []isa.Inst
	predecOK []bool

	// Block cache: blocks[w] is the compiled basic block leading at code
	// word w (nil = not compiled yet, noBlock = cannot lead a block). The
	// write watch drops blocks overlapping a store alongside the predecode
	// lines.
	blocks []*block

	// Trace tier (EngineAuto/EngineTrace): heat[w] counts executions of
	// the block leading at word w; traces[w] is the compiled superblock
	// headed there (noTrace = tried, not worth it; the slice is allocated
	// on first compile). The write watch drops any live trace overlapping
	// a store alongside the blocks, bumping traceGen so a running turbo
	// trace notices at its next store.
	heat       []uint64
	traces     []*trace
	liveTraces []*trace
	traceGen   uint64
}

// CPU is one RISC I processor with its memory.
type CPU struct {
	cfg  Config
	Mem  *mem.Memory
	Regs *regwin.File

	pc, npc uint32 // delayed-branch PC pair
	lastPC  uint32 // previously executed instruction (GTLPC)
	flags   isa.Flags
	ie      bool // interrupts enabled
	halted  bool

	savePtr  uint32 // register-save stack, grows down from top of RAM
	saveBase uint32

	stat      *stats.Stats
	opCounts  [128]uint64 // per-opcode execution counts (hot path)
	inDelay   bool        // next instruction occupies a delay slot
	callDepth int
	pendIRQ   []uint32 // pending interrupt vectors

	// Decoded-code state, shared across the cores of an SMP machine.
	*sharedCode

	// traceStat is per-core even though the traces themselves are shared:
	// compiles and invalidations land on the core that caused them.
	traceStat TraceStats

	// Trace, when non-nil, is called after every executed instruction
	// with its address and decoded form (before the PC advances).
	Trace func(pc uint32, inst isa.Inst)

	// Progress, when non-nil, is called at RunContext batch boundaries —
	// at most once per runBatch instructions — with the instruction and
	// cycle counters retired so far. Unlike Trace it does not force the
	// step oracle: the compiled engines surface at batch boundaries
	// anyway, so the hook costs one call per batch. It runs on the
	// simulation goroutine; keep it cheap.
	Progress func(instructions, cycles uint64)
}

// New builds a CPU. Call Load before stepping.
func New(cfg Config) *CPU {
	cfg = cfg.withDefaults()
	c := &CPU{
		cfg:        cfg,
		Mem:        mem.New(cfg.MemSize),
		Regs:       regwin.New(cfg.Windows),
		stat:       stats.New(),
		sharedCode: &sharedCode{},
	}
	c.reset()
	return c
}

func (c *CPU) reset() {
	c.Regs.Reset()
	c.stat = stats.New()
	c.opCounts = [128]uint64{}
	c.Mem.ResetCounters()
	c.flags = isa.Flags{}
	c.ie = true
	c.halted = false
	c.inDelay = false
	c.callDepth = 0
	c.pendIRQ = nil
	top := uint32(c.cfg.MemSize)
	c.savePtr = top
	c.saveBase = top - uint32(c.cfg.SaveStackBytes)
	// Data stack grows down from below the save area.
	c.Regs.Set(SPReg, c.saveBase&^7)
	// Entry linkage: returning from the entry procedure halts.
	c.Regs.Set(LinkReg, HaltAddr-8)
}

// Load places an assembled image in memory and resets the processor to its
// entry point.
func (c *CPU) Load(img *asm.Image) error {
	c.reset()
	if err := c.Mem.LoadProgram(img.Org, img.Bytes); err != nil {
		return err
	}
	c.predecode(img)
	c.pc = img.Entry
	c.npc = img.Entry + 4
	c.lastPC = img.Entry
	return nil
}

// predecode decodes the image's code segment once so Step can dispatch
// without re-fetching and re-decoding every executed instruction — the
// software analogue of the paper's fixed-format argument. The compiler
// marks where code ends with __data_start; images without the symbol are
// treated as all code (data words simply fail to decode and stay on the
// live-fetch path). The write watch invalidates overwritten lines.
func (c *CPU) predecode(img *asm.Image) {
	code := img.Bytes
	if ds, ok := img.Symbol("__data_start"); ok &&
		ds >= img.Org && ds <= img.Org+uint32(len(img.Bytes)) {
		code = img.Bytes[:ds-img.Org]
	}
	c.codeOrg = img.Org
	c.predec, c.predecOK = isa.DecodeBlock(code)
	c.blocks = make([]*block, len(c.predec))
	c.heat = make([]uint64, len(c.predec))
	c.traces = nil
	c.liveTraces = nil
	c.traceStat = TraceStats{}
	c.Mem.SetWriteWatch(img.Org, img.Org+uint32(len(code)), c.invalidateCode)
}

// invalidateCode drops the predecoded lines covered by a store into the
// code range; the next execution of those addresses re-fetches live.
func (c *CPU) invalidateCode(addr uint32, size int) {
	lo, hi := addr, addr+uint32(size) // [lo, hi), hi > codeOrg per the watch
	if lo < c.codeOrg {
		lo = c.codeOrg
	}
	first := (lo - c.codeOrg) >> 2
	last := (hi - 1 - c.codeOrg) >> 2
	for i := first; i <= last && i < uint32(len(c.predecOK)); i++ {
		c.predecOK[i] = false
		// Rewritten words carry new code: their heat profile is stale.
		c.heat[i] = 0
	}
	c.invalidateTraces(first, last)
	if len(c.blocks) == 0 {
		return
	}
	// A compiled block caches every word it covers and is at most runBatch
	// words long, so only leaders in the runBatch-1 words before the store
	// can reach into it.
	loW := int(first) - (runBatch - 1)
	if loW < 0 {
		loW = 0
	}
	for i := loW; i <= int(last) && i < len(c.blocks); i++ {
		b := c.blocks[i]
		if b == nil {
			continue
		}
		if uint32(i) >= first || i+b.nInst > int(first) {
			c.blocks[i] = nil
		}
	}
}

// Accessors.

// PC returns the address of the next instruction to execute.
func (c *CPU) PC() uint32 { return c.pc }

// Halted reports whether the machine has reached HaltAddr.
func (c *CPU) Halted() bool { return c.halted }

// Flags returns the current condition codes.
func (c *CPU) Flags() isa.Flags { return c.flags }

// Reg reads a visible register in the current window.
func (c *CPU) Reg(r uint8) uint32 { return c.Regs.Get(r) }

// SetReg writes a visible register in the current window (test harness use).
func (c *CPU) SetReg(r uint8, v uint32) { c.Regs.Set(r, v) }

// Console returns the program's console output so far.
func (c *CPU) Console() string { return c.Mem.Console() }

// CallDepth returns the current procedure nesting depth.
func (c *CPU) CallDepth() int { return c.callDepth }

// Stats returns the execution statistics, with memory traffic synced and
// the instruction-mix maps materialized from the hot-path counters.
func (c *CPU) Stats() *stats.Stats {
	c.stat.DataReads = c.Mem.Reads
	c.stat.DataWrites = c.Mem.Writes
	// Every RISC I fetch is exactly one 4-byte word, so fetch traffic is
	// derived here rather than counted per step.
	c.stat.FetchBytes = c.stat.Instructions * isa.InstBytes
	c.stat.ByName = map[string]uint64{}
	c.stat.ByCategory = map[string]uint64{}
	for opv, n := range c.opCounts {
		if n == 0 {
			continue
		}
		op := isa.Op(opv)
		c.stat.ByName[op.Name()] = n
		c.stat.ByCategory[op.Cat().String()] += n
	}
	return c.stat
}

// Time returns the simulated elapsed time at the paper's 400 ns cycle.
func (c *CPU) Time() float64 {
	return float64(c.stat.Cycles) * timing.RiscCycleNS * 1e-9
}

// Interrupt queues an external interrupt that will redirect execution to
// vector once interrupts are enabled and the processor is between
// instructions (never between a transfer and its delay slot).
func (c *CPU) Interrupt(vector uint32) {
	c.pendIRQ = append(c.pendIRQ, vector)
}

// runBatch is how many instructions RunContext executes between checks of
// the context: cancellation and deadlines are honored at batch boundaries,
// so a canceled run stops within one batch of the signal.
const runBatch = 64

// Run steps the processor until it halts, faults, or exceeds MaxCycles.
func (c *CPU) Run() error { return c.RunContext(context.Background()) }

// RunContext is Run honoring ctx: cancellation or deadline expiry aborts the
// run at the next batch boundary (within runBatch instructions) with a
// RunError wrapping ctx.Err(). The cycle limit itself is enforced exactly,
// per instruction, inside Step.
func (c *CPU) RunContext(ctx context.Context) error {
	useBlocks, useTraces := c.engineTiers()
	done := ctx.Done()
	for !c.halted {
		if done != nil {
			select {
			case <-done:
				return c.runError(c.pc, ctx.Err())
			default:
			}
		}
		if _, err := c.runSlice(runBatch, useBlocks, useTraces); err != nil {
			return err
		}
		if c.Progress != nil {
			c.Progress(c.stat.Instructions, c.stat.Cycles)
		}
	}
	return nil
}

// engineTiers resolves the configured engine to the tiers a run may use.
// The compiled engines are exact only without a per-instruction trace
// callback; the auto engine falls back to stepping there.
func (c *CPU) engineTiers() (useBlocks, useTraces bool) {
	useBlocks = c.cfg.Engine != EngineStep && c.Trace == nil
	useTraces = useBlocks && c.cfg.Engine != EngineBlock
	return
}

// runSlice executes up to budget instructions with the resolved engine
// tiers and returns how many retired. It is the one batch body behind both
// RunContext and the SMP scheduler's RunFor: driving it with budget =
// runBatch reproduces a single-core run's batching exactly, which is what
// makes a Cores=1 SMP run bit-identical to RunContext.
func (c *CPU) runSlice(budget int, useBlocks, useTraces bool) (int, error) {
	if !useBlocks {
		for i := 0; i < budget; i++ {
			if c.halted {
				return i, nil
			}
			if err := c.Step(); err != nil {
				return i, err
			}
		}
		return budget, nil
	}
	executed := 0
	for budget > 0 && !c.halted {
		if useTraces {
			n, err := c.runHotTrace(budget)
			if err != nil {
				return executed, err
			}
			if n > 0 {
				budget -= n
				executed += n
				continue
			}
			if n < 0 {
				// A trace is headed here but the batch remainder cannot
				// fit an iteration; restart on a fresh batch.
				break
			}
		}
		if b, w := c.nextBlock(budget); b != nil {
			n, err := c.runBlock(w, b, budget)
			if useTraces {
				c.bumpHeat(w, b, n)
			}
			executed += n
			if err != nil {
				return executed, err
			}
			budget -= n
			continue
		}
		if err := c.Step(); err != nil {
			return executed, err
		}
		budget--
		executed++
	}
	return executed, nil
}

// Step executes one instruction. The MaxCycles budget is exact: a step that
// would begin at or beyond the limit does not execute, so both Run loops and
// external Step callers observe the abort at the same deterministic cycle.
func (c *CPU) Step() error {
	if c.halted {
		return ErrHalted
	}
	if c.stat.Cycles >= c.cfg.MaxCycles {
		return c.runError(c.pc, ErrMaxCycles)
	}
	// Deliver a pending interrupt at an interruptible boundary. Never
	// between a transfer and its delay slot: there the PC pair is
	// discontinuous and a single restart address could not represent it.
	// Outside a delay slot npc == pc+4 always holds, so the PC of the
	// not-yet-executed instruction fully captures the resume point; the
	// hardware latches it where CALLINT reads it (the "last PC" latch —
	// this is why the chip carries multiple PCs).
	if len(c.pendIRQ) > 0 && c.ie && !c.inDelay {
		vec := c.pendIRQ[0]
		c.pendIRQ = c.pendIRQ[1:]
		c.lastPC = c.pc
		c.pc, c.npc = vec, vec+4
	}
	execPC := c.pc
	if execPC == HaltAddr {
		c.halted = true
		return nil
	}

	// Fast path: dispatch from the predecode cache. A miss (PC outside
	// the cached code range, misaligned, or an invalidated/undecodable
	// line) falls back to a live fetch+decode, which also raises the
	// appropriate fetch or illegal-instruction fault.
	var inst *isa.Inst
	if off := execPC - c.codeOrg; off&3 == 0 && off>>2 < uint32(len(c.predec)) && c.predecOK[off>>2] {
		inst = &c.predec[off>>2]
	} else {
		word, err := c.Mem.Fetch32(execPC)
		if err != nil {
			return c.runError(execPC, err)
		}
		live, err := isa.Decode(word)
		if err != nil {
			return c.runError(execPC, err)
		}
		inst = &live
	}
	// Hot path: bare counters here; Stats() materializes the mix maps
	// and fetch traffic.
	c.stat.Instructions++
	c.opCounts[inst.Op&0x7F]++

	// Delay-slot accounting: this instruction sits in the slot of the
	// previous transfer.
	if c.inDelay {
		if isNop(inst) {
			c.stat.DelaySlotNops++
		} else {
			c.stat.DelaySlotUseful++
		}
		c.inDelay = false
	}

	target, transferred, err := c.execute(inst, execPC)
	if err != nil {
		return c.runError(execPC, err)
	}
	if c.Trace != nil {
		c.Trace(execPC, *inst)
	}

	c.lastPC = execPC
	c.pc = c.npc
	if transferred {
		c.npc = target
		c.inDelay = true
		c.stat.Transfers++
		c.stat.TakenTransfers++
	} else {
		c.npc += isa.InstBytes
		if inst.Op.Transfers() && inst.Op != isa.OpCALLINT {
			// Untaken conditional jump still owns a delay slot.
			c.inDelay = true
			c.stat.Transfers++
		}
	}
	return nil
}

// isNop recognizes effect-free instructions for delay-slot accounting: any
// non-flag-setting ALU instruction writing r0.
func isNop(i *isa.Inst) bool {
	return i.Op.Cat() == isa.CatALU && i.Rd == 0 && !i.SCC
}

// s2 evaluates the second operand.
func (c *CPU) s2(i *isa.Inst) uint32 {
	if i.Imm {
		return uint32(i.Imm13)
	}
	return c.Regs.Get(i.Rs2)
}

// execute performs one decoded instruction at pc. It returns the transfer
// target if the instruction redirects control. The ALU body lives inline
// here rather than behind a call: register operations are the bulk of every
// instruction mix (the paper's own motivation), so this is the interpreter's
// innermost dispatch.
func (c *CPU) execute(i *isa.Inst, pc uint32) (target uint32, transferred bool, err error) {
	switch i.Op.Cat() {
	case isa.CatALU:
		c.stat.Cycles += timing.RiscALUCycles
		a := c.Regs.Get(i.Rs1)
		var b uint32
		if i.Imm {
			b = uint32(i.Imm13)
		} else {
			b = c.Regs.Get(i.Rs2)
		}
		var r uint32
		f := c.flags
		switch i.Op {
		case isa.OpADD, isa.OpADDC:
			carry := uint64(0)
			if i.Op == isa.OpADDC && c.flags.C {
				carry = 1
			}
			full := uint64(a) + uint64(b) + carry
			r = uint32(full)
			f.C = full > 0xFFFFFFFF
			f.V = (a^b)&0x80000000 == 0 && (a^r)&0x80000000 != 0
		case isa.OpSUB, isa.OpSUBC, isa.OpSUBR, isa.OpSUBCR:
			x, y := a, b
			if i.Op == isa.OpSUBR || i.Op == isa.OpSUBCR {
				x, y = b, a
			}
			borrow := uint64(0)
			if (i.Op == isa.OpSUBC || i.Op == isa.OpSUBCR) && !c.flags.C {
				borrow = 1
			}
			full := uint64(x) - uint64(y) - borrow
			r = uint32(full)
			f.C = full <= 0xFFFFFFFF // carry = no borrow
			f.V = (x^y)&0x80000000 != 0 && (x^r)&0x80000000 != 0
		case isa.OpAND:
			r = a & b
			f.C, f.V = false, false
		case isa.OpOR:
			r = a | b
			f.C, f.V = false, false
		case isa.OpXOR:
			r = a ^ b
			f.C, f.V = false, false
		case isa.OpSLL:
			r = a << (b & 31)
			f.C, f.V = false, false
		case isa.OpSRL:
			r = a >> (b & 31)
			f.C, f.V = false, false
		case isa.OpSRA:
			r = uint32(int32(a) >> (b & 31))
			f.C, f.V = false, false
		}
		c.Regs.Set(i.Rd, r)
		if i.SCC {
			f.Z = r == 0
			f.N = int32(r) < 0
			c.flags = f
		}
		return 0, false, nil
	case isa.CatLoad:
		c.stat.Cycles += timing.RiscLoadCycles
		return 0, false, c.load(i)
	case isa.CatStore:
		c.stat.Cycles += timing.RiscStoreCycles
		return 0, false, c.store(i)
	case isa.CatControl:
		c.stat.Cycles += timing.RiscTransferCycles
		return c.control(i, pc)
	default:
		c.stat.Cycles += timing.RiscMiscCycles
		return c.misc(i, pc)
	}
}

func (c *CPU) load(i *isa.Inst) error {
	addr := c.Regs.Get(i.Rs1) + c.s2(i)
	var v uint32
	var err error
	switch i.Op {
	case isa.OpLDL:
		v, err = c.Mem.Load32(addr)
	case isa.OpLDSU:
		var h uint16
		h, err = c.Mem.Load16(addr)
		v = uint32(h)
	case isa.OpLDSS:
		var h uint16
		h, err = c.Mem.Load16(addr)
		v = uint32(int32(int16(h)))
	case isa.OpLDBU:
		var b uint8
		b, err = c.Mem.Load8(addr)
		v = uint32(b)
	case isa.OpLDBS:
		var b uint8
		b, err = c.Mem.Load8(addr)
		v = uint32(int32(int8(b)))
	}
	if err != nil {
		return err
	}
	c.Regs.Set(i.Rd, v)
	if i.SCC {
		c.flags.Z = v == 0
		c.flags.N = int32(v) < 0
		c.flags.C, c.flags.V = false, false
	}
	return nil
}

func (c *CPU) store(i *isa.Inst) error {
	addr := c.Regs.Get(i.Rs1) + c.s2(i)
	v := c.Regs.Get(i.Rd)
	switch i.Op {
	case isa.OpSTL:
		return c.Mem.Store32(addr, v)
	case isa.OpSTS:
		return c.Mem.Store16(addr, uint16(v))
	default:
		return c.Mem.Store8(addr, uint8(v))
	}
}

func (c *CPU) control(i *isa.Inst, pc uint32) (uint32, bool, error) {
	switch i.Op {
	case isa.OpJMP:
		if !i.Cond().Holds(c.flags) {
			return 0, false, nil
		}
		return c.Regs.Get(i.Rs1) + c.s2(i), true, nil
	case isa.OpJMPR:
		if !i.Cond().Holds(c.flags) {
			return 0, false, nil
		}
		return pc + uint32(i.Imm19), true, nil
	case isa.OpCALL, isa.OpCALLR:
		var target uint32
		if i.Op == isa.OpCALL {
			target = c.Regs.Get(i.Rs1) + c.s2(i)
		} else {
			target = pc + uint32(i.Imm19)
		}
		if err := c.enterWindow(); err != nil {
			return 0, false, err
		}
		c.Regs.Set(i.Rd, pc) // return linkage, in the callee's window
		c.stat.Calls++
		c.callDepth++
		c.stat.RecordDepth(c.callDepth)
		if c.callDepth > c.stat.MaxCallDepth {
			c.stat.MaxCallDepth = c.callDepth
		}
		return target, true, nil
	case isa.OpRET, isa.OpRETINT:
		target := c.Regs.Get(i.Rd) + c.s2(i)
		if target == HaltAddr {
			// Returning from the entry procedure: stop cleanly
			// without unwinding below window 0.
			c.halted = true
			return 0, false, nil
		}
		if err := c.exitWindow(); err != nil {
			return 0, false, err
		}
		c.stat.Returns++
		c.callDepth--
		if i.Op == isa.OpRETINT {
			c.ie = true
		}
		return target, true, nil
	case isa.OpCALLINT:
		// Trap/interrupt entry: slide to a fresh window, capture the
		// restart PC, disable further interrupts. Not a transfer.
		if err := c.enterWindow(); err != nil {
			return 0, false, err
		}
		c.Regs.Set(i.Rd, c.lastPC)
		c.ie = false
		return 0, false, nil
	}
	return 0, false, fmt.Errorf("core: unhandled control op %v", i.Op)
}

// enterWindow slides the register window for a call, spilling the oldest
// window to the save stack if the hardware is full.
func (c *CPU) enterWindow() error {
	if c.cfg.Flat {
		return nil
	}
	if c.Regs.NeedSpill() {
		c.stat.WindowOverflow++
		c.stat.Cycles += timing.RiscSpillCycles
		// The trap handler spills at least one window; SpillBatch > 1
		// spills extras (while any remain) at the marginal cost of the
		// stores alone — the trap entry/exit overhead is already paid.
		for i := 0; i < c.cfg.SpillBatch; i++ {
			if i > 0 {
				if c.Regs.Spilled() >= c.Regs.CWP() {
					break // nothing older left to spill
				}
				c.stat.Cycles += 16 * timing.RiscStoreCycles
			}
			if c.savePtr-regwin.SaveBytes < c.saveBase {
				return ErrSaveStackFull
			}
			save := c.Regs.SpillOldest()
			c.savePtr -= regwin.SaveBytes
			for k, v := range save {
				if err := c.Mem.Store32(c.savePtr+uint32(4*k), v); err != nil {
					return err
				}
			}
		}
	}
	c.Regs.PushWindow()
	return nil
}

// exitWindow slides back for a return, refilling a spilled window if needed.
func (c *CPU) exitWindow() error {
	if c.cfg.Flat {
		return nil
	}
	if c.Regs.NeedFill() {
		if c.Regs.Spilled() == 0 {
			return errors.New("core: return below the initial window")
		}
		var save regwin.WindowSave
		for k := range save {
			v, err := c.Mem.Load32(c.savePtr + uint32(4*k))
			if err != nil {
				return err
			}
			save[k] = v
		}
		c.savePtr += regwin.SaveBytes
		c.Regs.FillNewest(save)
		c.stat.WindowUnderflow++
		c.stat.Cycles += timing.RiscFillCycles
	}
	c.Regs.PopWindow()
	return nil
}

// PSW layout for GETPSW/PUTPSW: C, V, N, Z in bits 0..3; interrupt-enable in
// bit 8; the current window pointer (read-only here: the simulator manages
// CWP through calls and returns) in bits 16..23.
const (
	pswC  = 1 << 0
	pswV  = 1 << 1
	pswN  = 1 << 2
	pswZ  = 1 << 3
	pswIE = 1 << 8
)

func (c *CPU) misc(i *isa.Inst, pc uint32) (uint32, bool, error) {
	switch i.Op {
	case isa.OpLDHI:
		c.Regs.Set(i.Rd, uint32(i.Imm19&0x7FFFF)<<13)
	case isa.OpGTLPC:
		c.Regs.Set(i.Rd, c.lastPC)
	case isa.OpGETPSW:
		var v uint32
		if c.flags.C {
			v |= pswC
		}
		if c.flags.V {
			v |= pswV
		}
		if c.flags.N {
			v |= pswN
		}
		if c.flags.Z {
			v |= pswZ
		}
		if c.ie {
			v |= pswIE
		}
		v |= uint32(c.Regs.CWP()&0xFF) << 16
		c.Regs.Set(i.Rd, v)
	case isa.OpPUTPSW:
		v := c.Regs.Get(i.Rs1) + c.s2(i)
		c.flags = isa.Flags{
			C: v&pswC != 0, V: v&pswV != 0,
			N: v&pswN != 0, Z: v&pswZ != 0,
		}
		c.ie = v&pswIE != 0
	}
	return 0, false, nil
}
