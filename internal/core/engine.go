package core

import "fmt"

// Engine selects how Run executes instructions. Step is the oracle the
// block engine is differentially tested against; the engines are
// observationally identical (Stats, console, faults, final machine state).
type Engine uint8

const (
	// EngineAuto picks block execution whenever it is exact — no
	// per-instruction Trace installed — and single-steps otherwise.
	EngineAuto Engine = iota
	// EngineBlock forces basic-block execution. Individual instructions
	// still single-step where a block cannot apply: delay slots entered
	// mid-flight, pending interrupts, invalidated or undecodable code.
	EngineBlock
	// EngineStep forces the single-step interpreter: Step in a loop, the
	// reference semantics.
	EngineStep
)

func (e Engine) String() string {
	switch e {
	case EngineBlock:
		return "block"
	case EngineStep:
		return "step"
	default:
		return "auto"
	}
}

// ParseEngine maps the flag/API spelling to an Engine. The empty string is
// EngineAuto.
func ParseEngine(s string) (Engine, error) {
	switch s {
	case "", "auto":
		return EngineAuto, nil
	case "block":
		return EngineBlock, nil
	case "step":
		return EngineStep, nil
	}
	return EngineAuto, fmt.Errorf("core: unknown engine %q (want auto, block or step)", s)
}
