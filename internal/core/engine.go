package core

import "fmt"

// Engine selects how Run executes instructions. Step is the oracle the
// compiled engines are differentially tested against; the engines are
// observationally identical (Stats, console, faults, final machine state).
type Engine uint8

const (
	// EngineAuto picks the fastest exact engine: the trace tier (block
	// execution plus profile-guided superblocks once a leader warms up)
	// whenever it is exact — no per-instruction Trace installed — and
	// single-steps otherwise.
	EngineAuto Engine = iota
	// EngineBlock forces basic-block execution without the trace tier.
	// Individual instructions still single-step where a block cannot
	// apply: delay slots entered mid-flight, pending interrupts,
	// invalidated or undecodable code.
	EngineBlock
	// EngineStep forces the single-step interpreter: Step in a loop, the
	// reference semantics.
	EngineStep
	// EngineTrace forces the trace/superblock tier: block execution with
	// heat counters, compiling hot paths that span taken delayed branches
	// into guarded superblocks. Cold code still runs on blocks and single
	// steps exactly like EngineBlock.
	EngineTrace
)

// EngineInvalid is the sentinel ParseEngine returns alongside its error. It
// deliberately does not alias EngineAuto: a caller that drops the error and
// runs anyway gets a visibly wrong engine ("invalid"), not a silent auto
// run. New carries it to EngineAuto as defense in depth, but every parse
// boundary (riscrun, riscbench, riscd) must treat the error as fatal.
const EngineInvalid Engine = 0xFF

func (e Engine) String() string {
	switch e {
	case EngineBlock:
		return "block"
	case EngineStep:
		return "step"
	case EngineTrace:
		return "trace"
	case EngineInvalid:
		return "invalid"
	default:
		return "auto"
	}
}

// ParseEngine maps the flag/API spelling to an Engine. The empty string is
// EngineAuto. On an unknown spelling it returns EngineInvalid, never a
// runnable engine value.
func ParseEngine(s string) (Engine, error) {
	switch s {
	case "", "auto":
		return EngineAuto, nil
	case "block":
		return EngineBlock, nil
	case "step":
		return EngineStep, nil
	case "trace":
		return EngineTrace, nil
	}
	return EngineInvalid, fmt.Errorf("core: unknown engine %q (want auto, block, step or trace)", s)
}
