package core

import (
	"errors"
	"reflect"
	"testing"

	"risc1/internal/asm"
	"risc1/internal/isa"
)

// The compiled engines' contract is observational equivalence with Step.
// Every test here runs the same image under the step oracle, the block
// engine and the trace tier, and requires the complete visible machine
// state — PC pair, lastPC, flags, windows, console, full Stats(), and
// fault identity — to match exactly.

// runEngine loads img into a fresh CPU with the given engine and runs it.
// The trace engine gets an aggressive HotThreshold (unless the test set
// one) so superblocks actually compile inside small test workloads.
func runEngine(t *testing.T, cfg Config, e Engine, img *asm.Image) (*CPU, error) {
	t.Helper()
	cfg.Engine = e
	if e == EngineTrace && cfg.HotThreshold == 0 {
		cfg.HotThreshold = 2
	}
	c := New(cfg)
	if err := c.Load(img); err != nil {
		t.Fatalf("load: %v", err)
	}
	return c, c.Run()
}

// diffEngines runs img under the step oracle and both compiled engines
// and requires all three to agree.
func diffEngines(t *testing.T, cfg Config, src string) (*CPU, *CPU) {
	t.Helper()
	img := asm.MustAssemble(src)
	cs, errS := runEngine(t, cfg, EngineStep, img)
	cb, errB := runEngine(t, cfg, EngineBlock, img)
	compareEngines(t, "block", cs, cb, errS, errB)
	ct, errT := runEngine(t, cfg, EngineTrace, img)
	compareEngines(t, "trace", cs, ct, errS, errT)
	return cs, cb
}

// compareEngines checks co (ran under the engine called name) against the
// step oracle cs.
func compareEngines(t *testing.T, name string, cs, co *CPU, errS, errO error) {
	t.Helper()
	if (errS == nil) != (errO == nil) {
		t.Fatalf("error mismatch:\nstep: %v\n%s: %v", errS, name, errO)
	}
	if errS != nil {
		var es, eo *RunError
		if errors.As(errS, &es) != errors.As(errO, &eo) {
			t.Fatalf("error type mismatch:\nstep: %v\n%s: %v", errS, name, errO)
		}
		if es != nil {
			if es.PC != eo.PC || es.Cycles != eo.Cycles || es.CWP != eo.CWP ||
				es.Inst != eo.Inst || es.Err.Error() != eo.Err.Error() ||
				!reflect.DeepEqual(es.Window, eo.Window) {
				t.Fatalf("fault identity mismatch:\nstep: %+v\n%s: %+v", es, name, eo)
			}
		} else if errS.Error() != errO.Error() {
			t.Fatalf("error mismatch:\nstep: %v\n%s: %v", errS, name, errO)
		}
	}
	if cs.pc != co.pc || cs.npc != co.npc || cs.lastPC != co.lastPC {
		t.Fatalf("PC state mismatch: step pc=%#x npc=%#x last=%#x; %s pc=%#x npc=%#x last=%#x",
			cs.pc, cs.npc, cs.lastPC, name, co.pc, co.npc, co.lastPC)
	}
	if cs.halted != co.halted || cs.inDelay != co.inDelay || cs.ie != co.ie {
		t.Fatalf("mode mismatch: step halted=%v inDelay=%v ie=%v; %s halted=%v inDelay=%v ie=%v",
			cs.halted, cs.inDelay, cs.ie, name, co.halted, co.inDelay, co.ie)
	}
	if cs.flags != co.flags {
		t.Fatalf("flags mismatch: step %+v, %s %+v", cs.flags, name, co.flags)
	}
	if cs.callDepth != co.callDepth || cs.savePtr != co.savePtr || cs.Regs.CWP() != co.Regs.CWP() {
		t.Fatalf("window state mismatch: step depth=%d save=%#x cwp=%d; %s depth=%d save=%#x cwp=%d",
			cs.callDepth, cs.savePtr, cs.Regs.CWP(), name, co.callDepth, co.savePtr, co.Regs.CWP())
	}
	for r := 0; r < isa.NumVisibleRegs; r++ {
		if a, b := cs.Regs.Get(uint8(r)), co.Regs.Get(uint8(r)); a != b {
			t.Fatalf("r%d mismatch: step %#x, %s %#x", r, a, name, b)
		}
	}
	if a, b := cs.Console(), co.Console(); a != b {
		t.Fatalf("console mismatch: step %q, %s %q", a, name, b)
	}
	ss, so := cs.Stats(), co.Stats()
	if !reflect.DeepEqual(*ss, *so) {
		t.Fatalf("stats mismatch:\nstep: %+v\n%s: %+v", *ss, name, *so)
	}
}

const loopSrc = `
	main:	add r0,#0,r1
		li #1000,r2
	loop:	add r1,#1,r1
		cmp r1,r2
		blt loop
		nop
		stl r1,(r0)#` + putIntDisp + `
		ret r25,#8
		nop
	`

// recurseSrc is the canonical windowed recursion (sum via register
// windows), deep enough to spill and refill.
var recurseSrc = sumProgram(30)

func TestEngineEquivalenceLoop(t *testing.T) {
	cs, _ := diffEngines(t, Config{}, loopSrc)
	if cs.Console() != "1000" {
		t.Fatalf("console = %q, want 1000", cs.Console())
	}
}

func TestEngineEquivalenceCallsAndSpills(t *testing.T) {
	cs, _ := diffEngines(t, Config{}, recurseSrc)
	if s := cs.Stats(); s.WindowOverflow == 0 || s.WindowUnderflow == 0 {
		t.Fatalf("recursion did not exercise spills: %+v", s)
	}
}

func TestEngineEquivalenceFlat(t *testing.T) {
	diffEngines(t, Config{Flat: true}, loopSrc)
	// Windowed recursion is wrong-by-construction on the flat machine
	// (shared link register): it runs away, so cap the budget — the
	// equivalence must hold on the capped divergence too.
	diffEngines(t, Config{Flat: true, MaxCycles: 100000}, recurseSrc)
}

func TestEngineEquivalenceMemoryAndMisc(t *testing.T) {
	diffEngines(t, Config{}, `
	main:	li #buf,r1
		li #0x1234,r2
		stl r2,(r1)#0
		sts r2,(r1)#4
		stb r2,(r1)#6
		ldl (r1)#0,r3
		ldsu (r1)#4,r4
		ldss (r1)#4,r5
		ldbu (r1)#6,r6
		ldbs (r1)#6,r7
		ldhi r8,#5
		getpsw r10
		add! r3,r4,r11
		sub! r0,r5,r12
		and r2,#255,r13
		or r2,#15,r14
		xor r2,r3,r15
		sll r2,#3,r16
		srl r2,#2,r17
		sra r12,#1,r18
		addc r2,r3,r19
		subc r2,#1,r20
		subr r2,#0,r21
		subcr r2,#0,r22
		ret r25,#8
		nop
	buf:	.word 0
		.word 0
	`)
}

func TestEngineEquivalenceUntakenBranch(t *testing.T) {
	diffEngines(t, Config{}, `
	main:	add r0,#1,r1
		cmp r1,#1
		bne away            ; never taken: still owns its delay slot
		add r1,#10,r1       ; useful slot work
		cmp r1,#99
		beq away
		nop
	away:	ret r25,#8
		nop
	`)
}

func TestEngineEquivalenceFaults(t *testing.T) {
	cases := map[string]struct {
		cfg Config
		src string
	}{
		// A misaligned load in the middle of a straight-line block: the
		// fault must unwind the batched accounting of everything after it.
		"misaligned load mid-block": {Config{}, `
	main:	add r0,#1,r1
		add r1,#1,r2
		ldl (r0)#2,r3
		add r2,#1,r4
		add r4,#1,r5
		ret r25,#8
		nop
	`},
		"store out of range": {Config{MemSize: 1 << 16}, `
	main:	ldhi r1,#40
		add r1,#0,r1
		stl r1,(r1)#0
		add r0,#1,r2
		ret r25,#8
		nop
	`},
		// Fault in the delay slot of a taken branch: PC/NPC must show the
		// discontinuous pair.
		"fault in delay slot": {Config{}, `
	main:	add r0,#1,r1
		b target
		ldl (r0)#2,r3
	target:	ret r25,#8
		nop
	`},
		// The save stack fills during a call chain: the transfer itself
		// faults after spill cycles were charged.
		"save stack overflow": {Config{SaveStackBytes: 128}, recurseSrc},
		// Execution falls into a word that does not decode.
		"undecodable word": {Config{}, `
	main:	add r0,#1,r1
		add r1,#1,r2
		.word 0xffffffff
		ret r25,#8
		nop
	`},
	}
	for name, tc := range cases {
		t.Run(name, func(t *testing.T) {
			img := asm.MustAssemble(tc.src)
			cs, errS := runEngine(t, tc.cfg, EngineStep, img)
			cb, errB := runEngine(t, tc.cfg, EngineBlock, img)
			if errS == nil {
				t.Fatalf("expected a fault, got clean run")
			}
			compareEngines(t, "block", cs, cb, errS, errB)
			ct, errT := runEngine(t, tc.cfg, EngineTrace, img)
			compareEngines(t, "trace", cs, ct, errS, errT)
		})
	}
}

// TestEngineEquivalenceMaxCycles sweeps the cycle budget across every
// boundary of the first few hundred cycles of both a tight loop and a
// spill-heavy recursion. This pins the batched-accounting split: wherever
// the budget lands — mid-block, at the transfer, at the delay slot after
// dynamic spill cycles — both engines must refuse at the same instruction
// with identical statistics.
func TestEngineEquivalenceMaxCycles(t *testing.T) {
	for name, src := range map[string]string{"loop": loopSrc, "recurse": recurseSrc} {
		t.Run(name, func(t *testing.T) {
			img := asm.MustAssemble(src)
			for limit := uint64(1); limit <= 600; limit++ {
				cs, errS := runEngine(t, Config{MaxCycles: limit}, EngineStep, img)
				cb, errB := runEngine(t, Config{MaxCycles: limit}, EngineBlock, img)
				compareEngines(t, "block", cs, cb, errS, errB)
				ct, errT := runEngine(t, Config{MaxCycles: limit}, EngineTrace, img)
				compareEngines(t, "trace", cs, ct, errS, errT)
			}
		})
	}
}

// TestEngineEquivalenceSelfModifyingBlock stores over an instruction two
// words ahead in the store's own block: the block engine must stop at the
// store and pick up the fresh bytes, exactly like the step engine's
// predecode invalidation.
func TestEngineEquivalenceSelfModifyingBlock(t *testing.T) {
	cs, _ := diffEngines(t, Config{}, `
	main:	li #target,r4
		li #donor,r3
		ldl (r3)#0,r1
		stl r1,(r4)#0       ; overwrite target, later in this very block
		add r0,#5,r2
	target:	add r0,#7,r5        ; patched to "add r0,#99,r5" before it runs
		ret r25,#8
		nop
	donor:	add r0,#99,r5
	`)
	if got := cs.Reg(5); got != 99 {
		t.Fatalf("r5 = %d, want 99 (patch must take effect in-block)", got)
	}
}

// TestEngineEquivalenceSelfModifyingSlot patches the delay slot of the
// block's own terminator.
func TestEngineEquivalenceSelfModifyingSlot(t *testing.T) {
	cs, _ := diffEngines(t, Config{}, `
	main:	li #slot,r4
		li #donor,r3
		ldl (r3)#0,r1
		stl r1,(r4)#0       ; overwrite the branch's delay slot
		b done
	slot:	add r0,#7,r5        ; patched to "add r0,#99,r5"
	done:	ret r25,#8
		nop
	donor:	add r0,#99,r5
	`)
	if got := cs.Reg(5); got != 99 {
		t.Fatalf("r5 = %d, want 99 (patched slot must run fresh)", got)
	}
}

func TestEngineEquivalenceSelfModLoop(t *testing.T) {
	diffEngines(t, Config{}, `
	main:	li #donor,r3
		ldl (r3)#0,r1
		li #patch,r4
	patch:	add r0,#7,r2
		cmp r2,#7
		bne done
		nop
		stl r1,(r4)#0
		b patch
		nop
	done:	ret r25,#8
		nop
	donor:	add r0,#77,r2
	`)
}

// TestEngineEquivalenceInterrupt delivers a queued interrupt and runs the
// handler round trip under both engines.
func TestEngineEquivalenceInterrupt(t *testing.T) {
	src := `
	main:	add r0,#0,r1
	loop:	add r1,#1,r1
		cmp r1,#50
		blt loop
		nop
		stl r1,(r0)#` + putIntDisp + `
		ret r25,#8
		nop
		.align 4
	handler: callint r16
		add r5,#1,r5
		retint r16,#0
		nop
	`
	img := asm.MustAssemble(src)
	vec, _ := img.Symbol("handler")
	run := func(e Engine) (*CPU, error) {
		c := New(Config{Engine: e, HotThreshold: 2})
		if err := c.Load(img); err != nil {
			t.Fatal(err)
		}
		c.Interrupt(vec)
		return c, c.Run()
	}
	cs, errS := run(EngineStep)
	cb, errB := run(EngineBlock)
	compareEngines(t, "block", cs, cb, errS, errB)
	ct, errT := run(EngineTrace)
	compareEngines(t, "trace", cs, ct, errS, errT)
	if cs.Console() != "50" {
		t.Fatalf("console = %q, want 50", cs.Console())
	}
}

// TestEngineAutoTraceFallsBack pins the auto engine's trace contract: a
// per-instruction Trace sees every instruction even under EngineAuto.
func TestEngineAutoTraceFallsBack(t *testing.T) {
	img := asm.MustAssemble(loopSrc)
	c := New(Config{Engine: EngineAuto})
	if err := c.Load(img); err != nil {
		t.Fatal(err)
	}
	var traced uint64
	c.Trace = func(pc uint32, inst isa.Inst) { traced++ }
	if err := c.Run(); err != nil {
		t.Fatal(err)
	}
	if traced != c.Stats().Instructions {
		t.Fatalf("trace saw %d of %d instructions", traced, c.Stats().Instructions)
	}
}

// TestParseEngine pins the knob's spellings.
func TestParseEngine(t *testing.T) {
	for s, want := range map[string]Engine{"": EngineAuto, "auto": EngineAuto, "block": EngineBlock, "step": EngineStep, "trace": EngineTrace} {
		got, err := ParseEngine(s)
		if err != nil || got != want {
			t.Fatalf("ParseEngine(%q) = %v, %v", s, got, err)
		}
	}
	if got, err := ParseEngine("warp"); err == nil {
		t.Fatal("ParseEngine accepted garbage")
	} else if got != EngineInvalid {
		// The sentinel must never alias a runnable engine: a caller that
		// drops the error must not get a silent auto run.
		t.Fatalf("ParseEngine(garbage) = %v, want EngineInvalid", got)
	}
	if got := EngineInvalid.String(); got != "invalid" {
		t.Fatalf("EngineInvalid.String() = %q", got)
	}
}

// TestInvalidEngineClamped pins the defense-in-depth path: a caller that
// ignores ParseEngine's error and runs anyway still gets a working machine
// (EngineAuto), not an engine value the dispatch switch has never heard of.
func TestInvalidEngineClamped(t *testing.T) {
	c := run(t, Config{Engine: EngineInvalid}, `
	main:	add r0,#1,r1
		ret r25,#8
		nop
	`)
	if got := c.Reg(1); got != 1 {
		t.Fatalf("r1 = %d, want 1", got)
	}
	if !c.Halted() {
		t.Error("machine did not halt")
	}
}
