package core

import (
	"testing"

	"risc1/internal/asm"
)

// TestProgramAtNonZeroOrigin runs a program assembled away from address 0:
// entry, relative branches and gp-free data references must all be
// position-correct.
func TestProgramAtNonZeroOrigin(t *testing.T) {
	c := run(t, Config{}, `
		.org 0x4000
		.entry main
	main:	la value,r1
		ldl (r1)#0,r2
		cmp r2,#77
		bne bad
		nop
		stl r2,(r0)#-252
		ret r25,#8
		nop
	bad:	add r0,#0,r3
		stl r3,(r0)#-252
		ret r25,#8
		nop
		.align 4
	value:	.word 77
	`)
	if c.Console() != "77" {
		t.Errorf("printed %q, want 77", c.Console())
	}
}

// TestLoadSetsConditionCodes covers the SCC bit on memory loads: a load may
// set Z/N directly, saving the explicit compare (the `while (s[i])` idiom).
func TestLoadSetsConditionCodes(t *testing.T) {
	c := run(t, Config{}, `
	main:	la data,r1
		ldl! (r1)#0,r2      ; loads 0: Z set
		beq iszero
		nop
		add r0,#9,r3
		ret r25,#8
		nop
	iszero:	ldl! (r1)#4,r4      ; loads -5: N set
		bmi isneg
		nop
		add r0,#8,r3
		ret r25,#8
		nop
	isneg:	add r0,#1,r3
		ret r25,#8
		nop
		.align 4
	data:	.word 0, -5
	`)
	if c.Reg(3) != 1 {
		t.Errorf("r3 = %d, want 1 (both SCC loads honored)", c.Reg(3))
	}
}

// TestSubWithCarryChain verifies ADDC/SUBC multi-word arithmetic: a 64-bit
// add implemented as two 32-bit operations.
func TestSubWithCarryChain(t *testing.T) {
	c := run(t, Config{}, `
	main:	li #0xFFFFFFFF,r1   ; low word of A = 2^32-1
		add r0,#1,r2        ; high word of A = 1
		add r0,#1,r3        ; low word of B = 1
		add r0,#0,r4        ; high word of B = 0
		add! r1,r3,r5       ; low sum: carries out
		addc r2,r4,r6       ; high sum: 1 + 0 + carry = 2
		ret r25,#8
		nop
	`)
	if c.Reg(5) != 0 || c.Reg(6) != 2 {
		t.Errorf("64-bit add: low=%#x high=%d, want 0 and 2", c.Reg(5), c.Reg(6))
	}
}

// TestReverseSubtract covers SUBR/SUBCR, the ALU ops that let a compiler
// subtract a register from an immediate in one instruction.
func TestReverseSubtract(t *testing.T) {
	c := run(t, Config{}, `
	main:	add r0,#10,r1
		subr r1,#3,r2       ; 3 - 10 = -7
		sub! r0,r0,r0       ; set carry (no borrow)
		subcr r1,#100,r3    ; 100 - 10 - 0 = 90
		ret r25,#8
		nop
	`)
	if int32(c.Reg(2)) != -7 || c.Reg(3) != 90 {
		t.Errorf("subr=%d subcr=%d, want -7 and 90", int32(c.Reg(2)), c.Reg(3))
	}
}

// TestWindowTrapTrafficAccounting pins down the memory accounting of one
// spill/fill pair: exactly 64 bytes written and 64 read.
func TestWindowTrapTrafficAccounting(t *testing.T) {
	img := asm.MustAssemble(`
	main:	callr r25,f1
		nop
		ret r25,#8
		nop
	f1:	callr r25,f2
		nop
		ret r25,#8
		nop
	f2:	ret r25,#8
		nop
	`)
	c := New(Config{Windows: 3}) // depth 3 forces exactly one spill
	if err := c.Load(img); err != nil {
		t.Fatal(err)
	}
	if err := c.Run(); err != nil {
		t.Fatal(err)
	}
	s := c.Stats()
	if s.WindowOverflow != 1 || s.WindowUnderflow != 1 {
		t.Fatalf("ovf=%d unf=%d, want 1 each", s.WindowOverflow, s.WindowUnderflow)
	}
	if s.DataWrites != 64 || s.DataReads != 64 {
		t.Errorf("trap traffic: %dW/%dR bytes, want 64/64", s.DataWrites, s.DataReads)
	}
}
