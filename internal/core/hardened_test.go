package core

import (
	"context"
	"errors"
	"testing"
	"time"

	"risc1/internal/asm"
	"risc1/internal/mem"
)

// TestRunContextDeadline runs a guest that never halts under a short wall
// deadline: the run must stop with an error wrapping DeadlineExceeded.
func TestRunContextDeadline(t *testing.T) {
	c := New(Config{})
	if err := c.Load(asm.MustAssemble(infiniteLoop)); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
	defer cancel()
	err := c.RunContext(ctx)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want DeadlineExceeded", err)
	}
	var re *RunError
	if !errors.As(err, &re) {
		t.Fatalf("err = %T, want *RunError", err)
	}
}

// TestRunContextPreCanceled checks that an already-canceled context stops
// the run before any batch completes.
func TestRunContextPreCanceled(t *testing.T) {
	c := New(Config{})
	if err := c.Load(asm.MustAssemble(infiniteLoop)); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if err := c.RunContext(ctx); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want Canceled", err)
	}
	if got := c.Stats().Instructions; got != 0 {
		t.Fatalf("pre-canceled run executed %d instructions, want 0", got)
	}
}

// TestRunErrorState checks the diagnostic payload: PC, disassembly, cycle
// count and a register-window snapshot all describe the faulting state.
func TestRunErrorState(t *testing.T) {
	// r1 := 5, then a misaligned load faults.
	img := asm.MustAssemble("main: add r0,#5,r1\n ldl (r0)#2,r2\n nop\n")
	c := New(Config{})
	if err := c.Load(img); err != nil {
		t.Fatal(err)
	}
	err := c.Run()
	var re *RunError
	if !errors.As(err, &re) {
		t.Fatalf("err = %T (%v), want *RunError", err, err)
	}
	if re.PC != img.Entry+4 {
		t.Errorf("PC = %#x, want %#x", re.PC, img.Entry+4)
	}
	if re.Inst == "" {
		t.Error("Inst empty, want disassembly of the faulting load")
	}
	if re.Cycles == 0 {
		t.Error("Cycles = 0, want nonzero")
	}
	if len(re.Window) != 32 {
		t.Fatalf("len(Window) = %d, want 32", len(re.Window))
	}
	if re.Window[1] != 5 {
		t.Errorf("Window[1] = %d, want 5 (set before the fault)", re.Window[1])
	}
	var mf *mem.Fault
	if !errors.As(err, &mf) || !mf.Misalign {
		t.Errorf("cause = %v, want misaligned mem.Fault", re.Err)
	}
}

// TestInjectedFaultSurfacesAsRunError arms a fault plan on the CPU's memory
// and checks the injected fault travels up as a structured run error.
func TestInjectedFaultSurfacesAsRunError(t *testing.T) {
	img := asm.MustAssemble("main: ldl (r0)#256,r1\n nop\n ret r25,#8\n nop\n")
	c := New(Config{})
	if err := c.Load(img); err != nil {
		t.Fatal(err)
	}
	c.Mem.SetFaultPlan(&mem.FaultPlan{FailNthRead: 1})
	err := c.Run()
	var mf *mem.Fault
	if !errors.As(err, &mf) || !mf.Injected {
		t.Fatalf("err = %v, want injected mem.Fault", err)
	}
	var re *RunError
	if !errors.As(err, &re) {
		t.Fatalf("err = %T, want *RunError", err)
	}
	if re.PC != img.Entry {
		t.Errorf("PC = %#x, want %#x (the faulting load)", re.PC, img.Entry)
	}
}
