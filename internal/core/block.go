// Basic-block superinstruction engine. Straight-line runs of predecoded
// instructions — up to and including a delayed transfer plus its delay
// slot — are compiled once into a flat list of specialized closures with
// common pairs fused, and their fixed per-instruction accounting (cycle
// cost, instruction count, opcode mix) is charged in one batched update
// per block. Everything observable must match Step exactly: faults unwind
// the accounting of the instructions that never ran and restore the
// precise PC pair, MaxCycles refuses at the same instruction boundary,
// and a store into the executing block stops it at the store (the
// self-modifying-code contract of the predecode cache).
package core

import (
	"risc1/internal/cfg"
	"risc1/internal/isa"
	"risc1/internal/timing"
)

// blockOp is one compiled body operation: one instruction, or a fused
// pair whose first half cannot fault.
type blockOp struct {
	fn func(c *CPU) error
	// fidx is the block-relative index of the op's faultable (last)
	// instruction: a fault there unwinds everything after it.
	fidx uint16
	// store marks an op that may write memory; after it runs, the engine
	// re-checks that the store did not invalidate this very block.
	store bool
}

// instCost is the fixed accounting of one block instruction, kept
// per-instruction so faults can unwind the unexecuted suffix.
type instCost struct {
	op     uint8
	cycles uint8
}

// opCount aggregates the block's opcode mix for the batched charge.
type opCount struct {
	op uint8
	n  uint32
}

// block is one compiled basic block.
type block struct {
	startPC uint32
	nInst   int // instructions covered (== code words covered)

	ops []blockOp

	term     bool     // block ends with a delayed transfer + slot
	termIdx  int      // block-relative index of the transfer (slot is termIdx+1)
	termInst isa.Inst // the transfer, copied out of the predecode cache
	// termPre is the compare-and-branch fusion: a fault-free final body
	// instruction dispatched together with the transfer.
	termPre func(c *CPU) error
	// termFast is the specialized dispatch for JMP/JMPR terminators: they
	// cannot fault, cannot halt, and add no dynamic cycles, so the slot
	// may run without the halt and budget re-checks the generic path
	// (CALL/RET through control) needs. When the final body instruction is
	// a fault-free compare it is fused in (the compare-and-branch pair).
	termFast func(c *CPU) (target uint32, taken bool)
	// selfLoop marks a JMPR terminator whose taken target is the block's
	// own leader: runBlock iterates such blocks in place, paying the
	// dispatch overhead once per batch instead of once per trip.
	selfLoop bool
	// slotFn is nil when the slot is an effect-free nop (ALU into r0
	// without SCC): r0 is hard-wired, so there is nothing to execute.
	slotFn  func(c *CPU) error
	slotNop bool

	// nBody is how many leading body instructions ops covers: the body
	// minus anything the terminator dispatch absorbed (termPre, the fused
	// compare of a compare-and-branch pair). The trace tier re-fuses the
	// same [start, start+nBody) span with its profile-guided repertoire.
	nBody int

	fixedCycles uint64 // batched per-category cost of every instruction
	// cyclesButLast is fixedCycles minus the final instruction's cost: the
	// block may start iff Cycles+cyclesButLast < MaxCycles, because fixed
	// costs are monotone so only the last instruction's start can trip the
	// budget first. (Dynamic spill/fill cycles at the transfer get their
	// own re-check before the slot.)
	cyclesButLast uint64
	counts        []opCount
	costs         []instCost
}

// noBlock is the cached "this word cannot start a block" answer, so
// unblockable leaders are not re-scanned on every visit.
var noBlock = &block{}

// blockable reports whether in may occupy a block body or delay slot:
// instructions with a fixed cycle cost whose semantics do not depend on
// state the engine updates only at block boundaries. GTLPC reads lastPC
// (stale mid-block) and PUTPSW flips the interrupt-enable bit, so both —
// and every control transfer — stay on the single-step path.
func blockable(in isa.Inst) bool {
	switch in.Op.Cat() {
	case isa.CatALU, isa.CatLoad, isa.CatStore:
		return true
	case isa.CatMisc:
		return in.Op == isa.OpLDHI || in.Op == isa.OpGETPSW
	}
	return false
}

// categoryCycles is the fixed per-category cost execute charges.
func categoryCycles(cat isa.Category) uint8 {
	switch cat {
	case isa.CatLoad:
		return timing.RiscLoadCycles
	case isa.CatStore:
		return timing.RiscStoreCycles
	case isa.CatControl:
		return timing.RiscTransferCycles
	case isa.CatALU:
		return timing.RiscALUCycles
	default:
		return timing.RiscMiscCycles
	}
}

// nextBlock resolves the block for the current machine state, or nil when
// the state requires single-stepping: mid-delay-slot, an interrupt
// pending, the PC outside the predecoded range, a budget (context batch)
// smaller than the block, or MaxCycles close enough that the block could
// overrun it.
func (c *CPU) nextBlock(budget int) (*block, uint32) {
	if c.inDelay || len(c.pendIRQ) > 0 {
		return nil, 0
	}
	off := c.pc - c.codeOrg
	if off&3 != 0 || off>>2 >= uint32(len(c.predec)) {
		return nil, 0
	}
	w := off >> 2
	b := c.blockAt(w)
	if b.nInst == 0 || b.nInst > budget {
		return nil, 0
	}
	if c.stat.Cycles+b.cyclesButLast >= c.cfg.MaxCycles {
		return nil, 0
	}
	return b, w
}

// blockAt returns the compiled block leading at word w, compiling it on
// first use.
func (c *CPU) blockAt(w uint32) *block {
	if b := c.blocks[w]; b != nil {
		return b
	}
	b := c.compileBlock(int(w))
	c.blocks[w] = b
	return b
}

// compileBlock builds the block starting at word index start, or noBlock
// if no blockable span begins there.
func (c *CPU) compileBlock(start int) *block {
	p := cfg.New(c.codeOrg, c.predec, c.predecOK)
	span := p.BlockSpan(start, runBatch, blockable)
	n := span.Words()
	if n == 0 {
		return noBlock
	}
	b := &block{
		startPC: c.codeOrg + uint32(4*start),
		nInst:   n,
		term:    span.Term,
		termIdx: span.Body,
	}

	b.costs = make([]instCost, n)
	var agg [128]uint32
	for j := 0; j < n; j++ {
		in := &c.predec[start+j]
		cyc := categoryCycles(in.Op.Cat())
		b.costs[j] = instCost{op: uint8(in.Op) & 0x7F, cycles: cyc}
		b.fixedCycles += uint64(cyc)
		agg[uint8(in.Op)&0x7F]++
	}
	b.cyclesButLast = b.fixedCycles - uint64(b.costs[n-1].cycles)
	for opv, cnt := range agg {
		if cnt > 0 {
			b.counts = append(b.counts, opCount{op: uint8(opv), n: cnt})
		}
	}

	type compiled struct {
		fn       func(*CPU) error
		canFault bool
		isStore  bool
	}
	cs := make([]compiled, span.Body)
	for j := 0; j < span.Body; j++ {
		in := &c.predec[start+j]
		fn, canFault := compileStraight(in)
		cs[j] = compiled{fn, canFault, in.Op.Cat() == isa.CatStore}
	}

	nBody := span.Body
	if span.Term {
		b.termInst = c.predec[start+span.Body]
		termPC := b.blockPC(span.Body)
		b.termFast = compileJump(&b.termInst, termPC)
		slot := &c.predec[start+span.Body+1]
		b.slotNop = isNop(slot)
		if !b.slotNop {
			// An effect-free nop slot (ALU into the hard-wired r0, no SCC)
			// compiles to nothing; anything else executes.
			b.slotFn, _ = compileStraight(slot)
		}
		if b.termInst.Op == isa.OpJMPR {
			b.selfLoop = termPC+uint32(b.termInst.Imm19) == b.startPC
		}
		// Compare-and-branch fusion: a flag-setting SUB feeding a JMPR
		// collapses into a single dispatch that computes the flags and the
		// branch decision together.
		if nBody > 0 {
			if fused := fuseCmpBranch(&c.predec[start+nBody-1], &b.termInst, termPC); fused != nil {
				b.termFast = fused
				nBody--
			}
		}
		// A remaining fault-free final body instruction still rides with
		// the transfer dispatch.
		if nBody > 0 && !cs[nBody-1].canFault {
			b.termPre = cs[nBody-1].fn
			nBody--
		}
	}

	b.nBody = nBody
	// Pair fusion: ALU+ALU, address-setup+load/store — any op that cannot
	// fault merges with its successor into one dispatch.
	for j := 0; j < nBody; {
		if j+1 < nBody && !cs[j].canFault {
			f1, f2 := cs[j].fn, cs[j+1].fn
			b.ops = append(b.ops, blockOp{
				fn:    func(c *CPU) error { _ = f1(c); return f2(c) },
				fidx:  uint16(j + 1),
				store: cs[j+1].isStore,
			})
			j += 2
		} else {
			b.ops = append(b.ops, blockOp{fn: cs[j].fn, fidx: uint16(j), store: cs[j].isStore})
			j++
		}
	}
	return b
}

// blockPC is the address of the block-relative instruction idx.
func (b *block) blockPC(idx int) uint32 { return b.startPC + uint32(4*idx) }

// runBlock executes b, iterating in place while b is a self-loop that
// keeps branching back to its own leader. It reports how many
// instructions it consumed from budget. Preconditions (nextBlock): not
// halted, not in a delay slot, no interrupt pending, pc == b.startPC, no
// Trace installed, and Cycles+cyclesButLast < MaxCycles.
func (c *CPU) runBlock(w uint32, b *block, budget int) (int, error) {
	consumed := 0
	for {
		// Batched accounting: charge the whole block up front. Every early
		// exit below unwinds the instructions that did not run.
		c.stat.Instructions += uint64(b.nInst)
		c.stat.Cycles += b.fixedCycles
		for _, oc := range b.counts {
			c.opCounts[oc.op] += uint64(oc.n)
		}
		consumed += b.nInst

		for i := range b.ops {
			op := &b.ops[i]
			if err := op.fn(c); err != nil {
				return consumed, c.blockFault(b, int(op.fidx), err)
			}
			if op.store && c.blocks[w] != b {
				// The store rewrote part of this very block (self-modifying
				// code). Stop after the store — exactly where the predecode
				// cache's step path would pick up the fresh bytes.
				next := int(op.fidx) + 1
				c.unwindBlock(b, next)
				c.lastPC = b.blockPC(int(op.fidx))
				c.pc = b.blockPC(next)
				c.npc = c.pc + 4
				return consumed, nil
			}
		}

		if !b.term {
			// Fell off the straight-line end; the next word single-steps.
			end := b.blockPC(b.nInst)
			c.lastPC = end - 4
			c.pc = end
			c.npc = end + 4
			return consumed, nil
		}

		if b.termPre != nil {
			_ = b.termPre(c)
		}
		termPC := b.blockPC(b.termIdx)
		slotPC := termPC + 4
		if b.termFast != nil {
			// JMP/JMPR: no fault, no halt, no dynamic cycles — the slot
			// runs unconditionally and the delay-slot state nets out to
			// false.
			target, taken := b.termFast(c)
			c.lastPC = termPC
			if taken {
				c.npc = target
				c.stat.TakenTransfers++
			} else {
				c.npc = slotPC + 4
			}
			c.stat.Transfers++
			if b.slotNop {
				c.stat.DelaySlotNops++
			} else {
				c.stat.DelaySlotUseful++
				if err := b.slotFn(c); err != nil {
					c.pc = slotPC
					return consumed, c.runError(slotPC, err)
				}
			}
			c.lastPC = slotPC
			c.pc = c.npc
			c.npc = c.pc + 4
			// Loop-resident execution: the taken branch lands back on this
			// block's leader and the machine is exactly at block entry, so
			// iterate here under the same gates nextBlock would apply.
			if taken && b.selfLoop &&
				consumed+b.nInst <= budget &&
				c.stat.Cycles+b.cyclesButLast < c.cfg.MaxCycles &&
				c.blocks[w] == b {
				continue
			}
			return consumed, nil
		}
		target, transferred, err := c.control(&b.termInst, termPC)
		if err != nil {
			// The transfer faulted in the window machinery; it stays
			// charged (Step charges before executing), the slot never ran.
			c.unwindBlock(b, b.termIdx+1)
			if b.termIdx > 0 {
				c.lastPC = termPC - 4
			}
			c.pc = termPC
			c.npc = termPC + 4
			return consumed, c.runError(termPC, err)
		}
		c.lastPC = termPC
		c.pc = slotPC
		if transferred {
			c.npc = target
			c.stat.TakenTransfers++
		} else {
			c.npc = slotPC + 4
		}
		// Every terminator is a delayed transfer: taken or not, it owns
		// the slot.
		c.stat.Transfers++
		c.inDelay = true
		if c.halted {
			// RET to HaltAddr halts during the transfer itself; the slot
			// never executes.
			c.unwindBlock(b, b.termIdx+1)
			return consumed, nil
		}
		// The transfer may have accrued dynamic spill/fill cycles; re-check
		// the budget exactly where Step would, at the slot boundary.
		if c.stat.Cycles-uint64(b.costs[b.termIdx+1].cycles) >= c.cfg.MaxCycles {
			c.unwindBlock(b, b.termIdx+1)
			return consumed, c.runError(c.pc, ErrMaxCycles)
		}
		c.inDelay = false
		if b.slotNop {
			c.stat.DelaySlotNops++
		} else {
			c.stat.DelaySlotUseful++
		}
		if b.slotFn != nil {
			if err := b.slotFn(c); err != nil {
				return consumed, c.runError(slotPC, err)
			}
		}
		c.lastPC = slotPC
		c.pc = c.npc
		c.npc = c.pc + 4
		return consumed, nil
	}
}

// blockFault unwinds a body fault at block-relative instruction fidx and
// restores the machine state Step would show: the faulting instruction is
// current (and stays charged), nothing after it happened.
func (c *CPU) blockFault(b *block, fidx int, err error) error {
	c.unwindBlock(b, fidx+1)
	fpc := b.blockPC(fidx)
	if fidx > 0 {
		c.lastPC = fpc - 4
	}
	c.pc = fpc
	c.npc = fpc + 4
	return c.runError(fpc, err)
}

// unwindBlock removes the batched accounting of instructions [from, nInst)
// that a fault, a halt, or an invalidation bail-out kept from executing.
func (c *CPU) unwindBlock(b *block, from int) {
	for _, ic := range b.costs[from:] {
		c.stat.Instructions--
		c.stat.Cycles -= uint64(ic.cycles)
		c.opCounts[ic.op]--
	}
}

// condPred specializes a jump condition into a direct predicate, saving
// the 16-way Holds dispatch on every executed branch.
func condPred(cond isa.Cond) func(isa.Flags) bool {
	switch cond {
	case isa.CondNEV:
		return func(isa.Flags) bool { return false }
	case isa.CondALW:
		return func(isa.Flags) bool { return true }
	case isa.CondEQ:
		return func(f isa.Flags) bool { return f.Z }
	case isa.CondNE:
		return func(f isa.Flags) bool { return !f.Z }
	case isa.CondGT:
		return func(f isa.Flags) bool { return !f.Z && f.N == f.V }
	case isa.CondLE:
		return func(f isa.Flags) bool { return f.Z || f.N != f.V }
	case isa.CondGE:
		return func(f isa.Flags) bool { return f.N == f.V }
	case isa.CondLT:
		return func(f isa.Flags) bool { return f.N != f.V }
	case isa.CondHI:
		return func(f isa.Flags) bool { return f.C && !f.Z }
	case isa.CondLOS:
		return func(f isa.Flags) bool { return !f.C || f.Z }
	case isa.CondLO:
		return func(f isa.Flags) bool { return !f.C }
	case isa.CondHIS:
		return func(f isa.Flags) bool { return f.C }
	case isa.CondPL:
		return func(f isa.Flags) bool { return !f.N }
	case isa.CondMI:
		return func(f isa.Flags) bool { return f.N }
	case isa.CondNV:
		return func(f isa.Flags) bool { return !f.V }
	default: // isa.CondV
		return func(f isa.Flags) bool { return f.V }
	}
}

// fuseCmpBranch fuses the hottest terminator pair — a flag-setting SUB
// (cmp) immediately before a JMPR — into one closure computing the
// subtraction, the flag update and the branch decision on locals. Returns
// nil when the pair does not match.
func fuseCmpBranch(cmp *isa.Inst, jin *isa.Inst, jmpPC uint32) func(*CPU) (uint32, bool) {
	if cmp.Op != isa.OpSUB || !cmp.SCC || jin.Op != isa.OpJMPR {
		return nil
	}
	pred := condPred(jin.Cond())
	tgt := jmpPC + uint32(jin.Imm19)
	rd, rs1 := cmp.Rd, cmp.Rs1
	step := func(c *CPU, x, y uint32) (uint32, bool) {
		full := uint64(x) - uint64(y)
		r := uint32(full)
		c.Regs.Set(rd, r)
		f := isa.Flags{
			C: full <= 0xFFFFFFFF,
			V: (x^y)&0x80000000 != 0 && (x^r)&0x80000000 != 0,
			Z: r == 0,
			N: int32(r) < 0,
		}
		c.flags = f
		if pred(f) {
			return tgt, true
		}
		return 0, false
	}
	if cmp.Imm {
		y := uint32(cmp.Imm13)
		return func(c *CPU) (uint32, bool) { return step(c, c.Regs.Get(rs1), y) }
	}
	rs2 := cmp.Rs2
	return func(c *CPU) (uint32, bool) { return step(c, c.Regs.Get(rs1), c.Regs.Get(rs2)) }
}

// compileJump specializes a JMP/JMPR terminator, or returns nil for the
// transfers that must go through control (calls and returns: window
// machinery, halt detection, dynamic cycles).
func compileJump(in *isa.Inst, pc uint32) func(*CPU) (uint32, bool) {
	pred := condPred(in.Cond())
	switch in.Op {
	case isa.OpJMPR:
		tgt := pc + uint32(in.Imm19)
		return func(c *CPU) (uint32, bool) {
			if pred(c.flags) {
				return tgt, true
			}
			return 0, false
		}
	case isa.OpJMP:
		rs1 := in.Rs1
		if in.Imm {
			d := uint32(in.Imm13)
			return func(c *CPU) (uint32, bool) {
				if pred(c.flags) {
					return c.Regs.Get(rs1) + d, true
				}
				return 0, false
			}
		}
		rs2 := in.Rs2
		return func(c *CPU) (uint32, bool) {
			if pred(c.flags) {
				return c.Regs.Get(rs1) + c.Regs.Get(rs2), true
			}
			return 0, false
		}
	}
	return nil
}

// compileStraight specializes one blockable instruction into a closure,
// reporting whether it can fault (memory operations only).
func compileStraight(in *isa.Inst) (fn func(*CPU) error, canFault bool) {
	switch in.Op.Cat() {
	case isa.CatALU:
		return compileALU(in), false
	case isa.CatLoad:
		return compileLoad(in), true
	case isa.CatStore:
		return compileStore(in), true
	default: // LDHI, GETPSW — the blockable CatMisc subset
		return compileMisc(in), false
	}
}

// addrFn builds the rs1+s2 effective-address computation.
func addrFn(in *isa.Inst) func(*CPU) uint32 {
	rs1 := in.Rs1
	if in.Imm {
		d := uint32(in.Imm13)
		return func(c *CPU) uint32 { return c.Regs.Get(rs1) + d }
	}
	rs2 := in.Rs2
	return func(c *CPU) uint32 { return c.Regs.Get(rs1) + c.Regs.Get(rs2) }
}

// setLoadFlags applies the SCC flag update of loads: Z/N from the value,
// C/V cleared.
func (c *CPU) setLoadFlags(v uint32) {
	c.flags = isa.Flags{Z: v == 0, N: int32(v) < 0}
}

func compileALU(in *isa.Inst) func(*CPU) error {
	op, rd, rs1, scc := in.Op, in.Rd, in.Rs1, in.SCC
	useImm, imm, rs2 := in.Imm, uint32(in.Imm13), in.Rs2

	// The hottest idioms get the shortest paths: plain ADD, and the
	// compare (flag-setting SUB) that feeds every conditional branch.
	if op == isa.OpADD && !scc {
		if useImm {
			return func(c *CPU) error { c.Regs.Set(rd, c.Regs.Get(rs1)+imm); return nil }
		}
		return func(c *CPU) error { c.Regs.Set(rd, c.Regs.Get(rs1)+c.Regs.Get(rs2)); return nil }
	}
	if op == isa.OpSUB && scc {
		sub := func(c *CPU, x, y uint32) {
			full := uint64(x) - uint64(y)
			r := uint32(full)
			c.Regs.Set(rd, r)
			c.flags = isa.Flags{
				C: full <= 0xFFFFFFFF,
				V: (x^y)&0x80000000 != 0 && (x^r)&0x80000000 != 0,
				Z: r == 0,
				N: int32(r) < 0,
			}
		}
		if useImm {
			return func(c *CPU) error { sub(c, c.Regs.Get(rs1), imm); return nil }
		}
		return func(c *CPU) error { sub(c, c.Regs.Get(rs1), c.Regs.Get(rs2)); return nil }
	}

	src := func(c *CPU) (uint32, uint32) { return c.Regs.Get(rs1), imm }
	if !useImm {
		src = func(c *CPU) (uint32, uint32) { return c.Regs.Get(rs1), c.Regs.Get(rs2) }
	}

	switch op {
	case isa.OpADD, isa.OpADDC:
		withC := op == isa.OpADDC
		if !scc {
			return func(c *CPU) error {
				a, b := src(c)
				var carry uint32
				if withC && c.flags.C {
					carry = 1
				}
				c.Regs.Set(rd, a+b+carry)
				return nil
			}
		}
		return func(c *CPU) error {
			a, b := src(c)
			var carry uint64
			if withC && c.flags.C {
				carry = 1
			}
			full := uint64(a) + uint64(b) + carry
			r := uint32(full)
			c.Regs.Set(rd, r)
			c.flags = isa.Flags{
				C: full > 0xFFFFFFFF,
				V: (a^b)&0x80000000 == 0 && (a^r)&0x80000000 != 0,
				Z: r == 0,
				N: int32(r) < 0,
			}
			return nil
		}
	case isa.OpSUB, isa.OpSUBC, isa.OpSUBR, isa.OpSUBCR:
		rev := op == isa.OpSUBR || op == isa.OpSUBCR
		withC := op == isa.OpSUBC || op == isa.OpSUBCR
		if !scc {
			return func(c *CPU) error {
				x, y := src(c)
				if rev {
					x, y = y, x
				}
				var borrow uint32
				if withC && !c.flags.C {
					borrow = 1
				}
				c.Regs.Set(rd, x-y-borrow)
				return nil
			}
		}
		return func(c *CPU) error {
			x, y := src(c)
			if rev {
				x, y = y, x
			}
			var borrow uint64
			if withC && !c.flags.C {
				borrow = 1
			}
			full := uint64(x) - uint64(y) - borrow
			r := uint32(full)
			c.Regs.Set(rd, r)
			c.flags = isa.Flags{
				C: full <= 0xFFFFFFFF, // carry = no borrow
				V: (x^y)&0x80000000 != 0 && (x^r)&0x80000000 != 0,
				Z: r == 0,
				N: int32(r) < 0,
			}
			return nil
		}
	}

	// Logical and shift group: same shape, op-specific combiner; SCC
	// clears C/V.
	var f func(a, b uint32) uint32
	switch op {
	case isa.OpAND:
		f = func(a, b uint32) uint32 { return a & b }
	case isa.OpOR:
		f = func(a, b uint32) uint32 { return a | b }
	case isa.OpXOR:
		f = func(a, b uint32) uint32 { return a ^ b }
	case isa.OpSLL:
		f = func(a, b uint32) uint32 { return a << (b & 31) }
	case isa.OpSRL:
		f = func(a, b uint32) uint32 { return a >> (b & 31) }
	default: // OpSRA
		f = func(a, b uint32) uint32 { return uint32(int32(a) >> (b & 31)) }
	}
	if !scc {
		return func(c *CPU) error {
			a, b := src(c)
			c.Regs.Set(rd, f(a, b))
			return nil
		}
	}
	return func(c *CPU) error {
		a, b := src(c)
		r := f(a, b)
		c.Regs.Set(rd, r)
		c.flags = isa.Flags{Z: r == 0, N: int32(r) < 0}
		return nil
	}
}

func compileLoad(in *isa.Inst) func(*CPU) error {
	rd, scc := in.Rd, in.SCC
	addr := addrFn(in)
	switch in.Op {
	case isa.OpLDL:
		return func(c *CPU) error {
			v, err := c.Mem.Load32(addr(c))
			if err != nil {
				return err
			}
			c.Regs.Set(rd, v)
			if scc {
				c.setLoadFlags(v)
			}
			return nil
		}
	case isa.OpLDSU:
		return func(c *CPU) error {
			h, err := c.Mem.Load16(addr(c))
			if err != nil {
				return err
			}
			v := uint32(h)
			c.Regs.Set(rd, v)
			if scc {
				c.setLoadFlags(v)
			}
			return nil
		}
	case isa.OpLDSS:
		return func(c *CPU) error {
			h, err := c.Mem.Load16(addr(c))
			if err != nil {
				return err
			}
			v := uint32(int32(int16(h)))
			c.Regs.Set(rd, v)
			if scc {
				c.setLoadFlags(v)
			}
			return nil
		}
	case isa.OpLDBU:
		return func(c *CPU) error {
			b, err := c.Mem.Load8(addr(c))
			if err != nil {
				return err
			}
			v := uint32(b)
			c.Regs.Set(rd, v)
			if scc {
				c.setLoadFlags(v)
			}
			return nil
		}
	default: // OpLDBS
		return func(c *CPU) error {
			b, err := c.Mem.Load8(addr(c))
			if err != nil {
				return err
			}
			v := uint32(int32(int8(b)))
			c.Regs.Set(rd, v)
			if scc {
				c.setLoadFlags(v)
			}
			return nil
		}
	}
}

func compileStore(in *isa.Inst) func(*CPU) error {
	rd := in.Rd
	addr := addrFn(in)
	switch in.Op {
	case isa.OpSTL:
		return func(c *CPU) error { return c.Mem.Store32(addr(c), c.Regs.Get(rd)) }
	case isa.OpSTS:
		return func(c *CPU) error { return c.Mem.Store16(addr(c), uint16(c.Regs.Get(rd))) }
	default: // OpSTB
		return func(c *CPU) error { return c.Mem.Store8(addr(c), uint8(c.Regs.Get(rd))) }
	}
}

func compileMisc(in *isa.Inst) func(*CPU) error {
	rd := in.Rd
	if in.Op == isa.OpLDHI {
		v := uint32(in.Imm19&0x7FFFF) << 13
		return func(c *CPU) error { c.Regs.Set(rd, v); return nil }
	}
	// GETPSW: ie and CWP are exact mid-block — nothing in a block body
	// changes either.
	return func(c *CPU) error {
		var v uint32
		if c.flags.C {
			v |= pswC
		}
		if c.flags.V {
			v |= pswV
		}
		if c.flags.N {
			v |= pswN
		}
		if c.flags.Z {
			v |= pswZ
		}
		if c.ie {
			v |= pswIE
		}
		v |= uint32(c.Regs.CWP()&0xFF) << 16
		c.Regs.Set(rd, v)
		return nil
	}
}
