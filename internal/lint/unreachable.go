package lint

// checkUnreachable reports runs of decodable instructions that no path
// reaches. To stay quiet on things that merely look like dead code, a run
// is only a finding when it starts unlabeled (a label marks an interrupt
// handler, an indirectly-called function, or data) and directly follows
// reachable code — the classic shape of instructions orphaned behind an
// unconditional transfer. Runs end at the first label, undecodable word, or
// reachable instruction.
func (p *program) checkUnreachable() {
	for i := 0; i < p.n; {
		if p.ok[i] && !p.executed(i) && !p.labels[i] && i > 0 && p.executed(i-1) {
			j := i
			for j < p.n && p.ok[j] && !p.executed(j) && !p.labels[j] {
				j++
			}
			word := "words"
			if j-i == 1 {
				word = "word"
			}
			p.reportAt(SevWarning, "unreachable", i,
				"unreachable code: %d %s no path from the entry or any label reaches", j-i, word)
			i = j
			continue
		}
		i++
	}
}
