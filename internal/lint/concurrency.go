package lint

import (
	"fmt"
	"sort"
	"strings"

	"risc1/internal/isa"
	"risc1/internal/mem"
)

// Concurrency passes: a static lockset/escape analysis for programs that
// use the SMP device pages (spawn/join mailbox and test-and-set lock page).
//
//   - smp-race: stores reachable from spawned worker code to statically
//     resolvable shared addresses, where no lock is provably held in common
//     with the word's other worker accesses.
//   - smp-lock: lock discipline — acquiring a lock already held on every
//     path (self-deadlock), releasing a lock held on no path (a runtime
//     fault on this machine), and lock-order inversion (deadlock
//     candidates) over the acquisition-order graph.
//   - smp-spawn: join with no spawn anywhere in the image, and a spawn
//     fired from a delay slot (the handle read that follows can be skipped
//     by the in-flight transfer).
//
// The passes engage automatically when a windowed image contains SMP
// operations — calls to the compiler's __lock/__unlock/__spawn/__join
// runtime, or direct constant-address device accesses — and can be forced
// with Options.SMP.
//
// Soundness shape: lock state is a forward dataflow over the delay-slot
// CFG, with a MUST set (intersection at merges) feeding the race and
// double-lock checks and a MAY set (union) feeding unlock-without-lock, so
// each check errs away from false positives. The race check is
// deliberately limited to what is static here: only addresses the constant
// propagation can resolve (r0-relative idioms, ldhi/add chains, and the
// gp-relative form rooted in the startup stub), only code reachable from
// spawned worker entries, and only access pairs two worker instances can
// actually execute concurrently. Register-computed addresses (array
// indexing) and worker-versus-main overlap are left to the dynamic race
// detector in internal/smp, which has the fork/join order this analysis
// lacks — the corpus contract validates the two sides against each other.

// Device-page geometry, mirrored from internal/mem.
const (
	lockPageBase = mem.LockBase
	lockPageEnd  = mem.LockBase + 4*mem.LockCount
	spawnFnAddr  = mem.SMPSpawnFn
	joinBase     = mem.SMPJoinBase
	joinEnd      = mem.SMPJoinBase + 4*mem.SMPJoinMax
)

// runtimeNames are the Cm SMP runtime entry points. Their bodies reach the
// device pages through worker-specific registers; the call sites carry the
// statically-visible semantics, so the bodies are excluded from op
// discovery and access collection.
var runtimeNames = map[string]bool{
	"__spawn": true, "__join": true, "__lock": true, "__unlock": true,
}

// smpOpKind classifies a discovered SMP operation.
type smpOpKind int

const (
	opAcquire smpOpKind = iota // lock(k): __lock call or test-and-set load
	opRelease                  // unlock(k): __unlock call or store 0 to lock word
	opSpawn                    // __spawn call or direct SPAWNFN store
	opJoin                     // __join call or join-page load
)

// smpOp is one discovered operation.
type smpOp struct {
	kind smpOpKind
	idx  int  // word index of the call / device access
	call bool // via a runtime call (idx is the callr) vs a direct access
	lock int  // lock index for acquire/release; -1 unknown
	fn   int  // worker entry word index for spawn; -1 unknown
}

type concurrency struct {
	p   *program
	ops []smpOp

	rtEntry map[int]string // word idx -> runtime name
	rtSkip  []bool         // per word: inside a runtime body

	effect map[int]smpOp // node -> lock effect applied when leaving it

	// globalConst resolves registers with exactly one constant definition
	// site in the whole image — the Cm global pointer (r8, anchored by the
	// startup stub) above all. Only r1..r9 qualify: higher registers are
	// window-renamed, so one textual definition is many physical ones.
	globalConst map[uint8]uint32

	must, may []uint64 // per-node lock state on entry
	seen      []bool   // node participated in the lock dataflow
}

const fullSet = ^uint64(0)

// checkConcurrency runs the suite when it applies.
func (p *program) checkConcurrency() {
	if p.opts.Flat || p.entryIdx < 0 {
		return
	}
	c := &concurrency{p: p}
	c.findRuntime()
	c.findGlobalConsts()
	c.discoverOps()
	if len(c.ops) == 0 && !p.opts.SMP {
		return
	}
	c.lockDataflow()
	c.checkLockDiscipline()
	c.checkLockOrder()
	c.checkSpawnJoin()
	c.checkRaces()
}

// findRuntime locates the SMP runtime bodies so discovery can skip them.
// A body runs from its entry symbol to the next non-local symbol (or the
// end of code); hand-written images without the symbols skip nothing.
func (c *concurrency) findRuntime() {
	p := c.p
	c.rtEntry = map[int]string{}
	c.rtSkip = make([]bool, p.n)
	type sym struct {
		addr uint32
		name string
	}
	var syms []sym
	for name, a := range p.img.Symbols {
		if !strings.HasPrefix(name, ".L") && name != dataStartSym {
			syms = append(syms, sym{a, name})
		}
	}
	sort.Slice(syms, func(i, j int) bool { return syms[i].addr < syms[j].addr })
	for i, s := range syms {
		if !runtimeNames[s.name] {
			continue
		}
		idx, ok := p.indexOf(s.addr)
		if !ok {
			continue
		}
		c.rtEntry[idx] = s.name
		end := p.n
		if i+1 < len(syms) {
			if e, ok := p.indexOf(syms[i+1].addr); ok {
				end = e
			}
		}
		for j := idx; j < end; j++ {
			c.rtSkip[j] = true
		}
	}
}

// findGlobalConsts resolves the global registers (r1..r9) that the whole
// image defines exactly once as a constant: a lone `add r0,#k,r` or
// `ldhi r,#hi`, or the adjacent `ldhi r,#hi` + `add r,#lo,r` pair that a
// wide li/la expands to.
func (c *concurrency) findGlobalConsts() {
	p := c.p
	c.globalConst = map[uint8]uint32{}
	for r := uint8(1); r <= 9; r++ {
		var defs []int
		for i := 0; i < p.n; i++ {
			if p.ok[i] && writesReg(p.insts[i], r) {
				defs = append(defs, i)
			}
		}
		switch len(defs) {
		case 1:
			if v, ok := constDef(p.insts[defs[0]], r); ok {
				c.globalConst[r] = v
			}
		case 2:
			if defs[1] != defs[0]+1 {
				continue
			}
			hi, hiOK := constDef(p.insts[defs[0]], r)
			base, lo, loOK := chaseDef(p.insts[defs[1]], r)
			if hiOK && loOK && base == r {
				c.globalConst[r] = hi + lo
			}
		}
	}
}

// constDef resolves in as a complete constant definition of r: the li/la
// heads `add r0,#k,r` and `ldhi r,#hi`.
func constDef(in isa.Inst, r uint8) (uint32, bool) {
	switch {
	case in.Op == isa.OpADD && !in.SCC && in.Rd == r && in.Rs1 == 0 && in.Imm:
		return uint32(in.Imm13), true
	case in.Op == isa.OpLDHI && in.Rd == r:
		return uint32(in.Imm19) << 13, true
	}
	return 0, false
}

// chaseDef resolves in as an incremental definition `add rs,#k,r` (which
// covers the mov pseudo and the low half of wide li/la): the value is rs
// plus k.
func chaseDef(in isa.Inst, r uint8) (base uint8, delta uint32, ok bool) {
	if in.Op == isa.OpADD && !in.SCC && in.Rd == r && in.Imm && in.Rs1 != 0 {
		return in.Rs1, uint32(in.Imm13), true
	}
	return 0, 0, false
}

// writesReg reports whether in writes register r (r != 0 assumed).
func writesReg(in isa.Inst, r uint8) bool {
	switch in.Op.Cat() {
	case isa.CatALU, isa.CatLoad:
		return in.Rd == r
	case isa.CatStore, isa.CatControl:
		return false
	}
	switch in.Op {
	case isa.OpLDHI, isa.OpGTLPC, isa.OpGETPSW:
		return in.Rd == r
	}
	return false
}

// constAt resolves the value register r holds when word idx executes, by
// scanning backward through the dominating straight-line code: li/la
// expansions and mov chains resolve; a transfer, an inbound label, or an
// opaque producer gives up — unless the register still being chased has a
// single constant definition in the whole image (the Cm global pointer
// pattern), which holds across any block boundary. With checkSlot (call
// sites), idx+1 is examined first — the delay-slot optimizer hoists
// argument setup into the slot of the call it feeds, where it still
// executes before the callee.
func (c *concurrency) constAt(idx int, r uint8, checkSlot bool) (uint32, bool) {
	if r == 0 {
		return 0, true
	}
	p := c.p
	reg, off := r, uint32(0)
	if checkSlot && idx+1 < p.n && p.ok[idx+1] {
		if slot := p.insts[idx+1]; writesReg(slot, r) {
			if v, ok := constDef(slot, r); ok {
				return v, true
			}
			b, d, ok := chaseDef(slot, r)
			if !ok {
				return 0, false // the slot clobbers r opaquely
			}
			reg, off = b, d
		}
	}
	for i := idx - 1; i >= 0; i-- {
		if !p.ok[i] {
			return c.globalFallback(reg, off)
		}
		in := p.insts[i]
		if in.Op.Transfers() || (i+1 < idx && p.labels[i+1]) {
			// Block boundary: i no longer dominates idx.
			return c.globalFallback(reg, off)
		}
		if !writesReg(in, reg) {
			continue
		}
		if v, ok := constDef(in, reg); ok {
			return v + off, true
		}
		if b, d, ok := chaseDef(in, reg); ok {
			reg, off = b, off+d
			continue
		}
		return 0, false
	}
	return c.globalFallback(reg, off)
}

// globalFallback resolves reg through the single-definition global table
// when the block-local scan runs out of dominating code.
func (c *concurrency) globalFallback(reg uint8, off uint32) (uint32, bool) {
	if v, ok := c.globalConst[reg]; ok {
		return v + off, true
	}
	return 0, false
}

// discoverOps finds the image's SMP operations: calls into the runtime
// (with the argument resolved through r10, the windowed out-arg register)
// and direct constant-address device accesses outside the runtime bodies.
func (c *concurrency) discoverOps() {
	p := c.p
	const argOut = 10
	for i := 0; i < p.n; i++ {
		if !p.executed(i) || !p.ok[i] || c.rtSkip[i] {
			continue
		}
		in := p.insts[i]
		if in.IsCall() {
			tidx, known := p.staticTarget(i, in)
			if !known {
				continue
			}
			name := c.rtEntry[tidx]
			if name == "" {
				continue
			}
			op := smpOp{idx: i, call: true, lock: -1, fn: -1}
			switch name {
			case "__lock":
				op.kind = opAcquire
			case "__unlock":
				op.kind = opRelease
			case "__spawn":
				op.kind = opSpawn
			case "__join":
				op.kind = opJoin
			}
			if arg, ok := c.constAt(i, argOut, true); ok {
				switch op.kind {
				case opAcquire, opRelease:
					if arg < mem.LockCount {
						op.lock = int(arg)
					}
				case opSpawn:
					if fidx, ok := p.indexOf(arg); ok && p.ok[fidx] {
						op.fn = fidx
					}
				}
			}
			c.ops = append(c.ops, op)
			continue
		}
		cat := in.Op.Cat()
		if (cat != isa.CatLoad && cat != isa.CatStore) || !in.Imm {
			continue
		}
		base, baseOK := c.constAt(i, in.Rs1, false)
		if !baseOK {
			continue
		}
		a := base + uint32(in.Imm13)
		switch {
		case a >= lockPageBase && a < lockPageEnd:
			op := smpOp{idx: i, lock: int(a-lockPageBase) / 4, fn: -1}
			if cat == isa.CatLoad {
				op.kind = opAcquire
			} else {
				op.kind = opRelease
			}
			c.ops = append(c.ops, op)
		case a == spawnFnAddr && cat == isa.CatStore:
			op := smpOp{idx: i, kind: opSpawn, lock: -1, fn: -1}
			if v, ok := c.constAt(i, in.Rd, false); ok {
				if fidx, ok := p.indexOf(v); ok && p.ok[fidx] {
					op.fn = fidx
				}
			}
			c.ops = append(c.ops, op)
		case a >= joinBase && a < joinEnd && cat == isa.CatLoad:
			c.ops = append(c.ops, smpOp{idx: i, kind: opJoin, lock: -1, fn: -1})
		}
	}
}

// lockDataflow propagates MUST- and MAY-held lock sets forward over the
// node graph from the same roots the reachability walk uses. A runtime
// call's effect rides its return edge (the callee body is skipped); a
// direct device access's effect applies leaving its own word. Ordinary
// calls are lockset-transparent across the return and also propagate into
// the callee, so a helper called under a lock analyzes as holding it.
func (c *concurrency) lockDataflow() {
	p := c.p
	n := 2 * p.n
	c.effect = map[int]smpOp{}
	for _, op := range c.ops {
		if op.kind != opAcquire && op.kind != opRelease {
			continue
		}
		if op.call {
			c.effect[2*(op.idx+1)+1] = op
		} else {
			c.effect[2*op.idx] = op
			c.effect[2*op.idx+1] = op
		}
	}
	c.must = make([]uint64, n)
	c.may = make([]uint64, n)
	c.seen = make([]bool, n)
	for i := range c.must {
		c.must[i] = fullSet
	}
	var wl []int
	seed := func(node int) {
		if node >= 0 && node < n && !c.seen[node] {
			c.seen[node] = true
			c.must[node], c.may[node] = 0, 0
			wl = append(wl, node)
		}
	}
	seed(2 * p.entryIdx)
	if p.hasDataMark {
		for idx := range p.labels {
			if !c.rtSkip[idx] {
				seed(2 * idx)
			}
		}
	}
	for len(wl) > 0 {
		node := wl[len(wl)-1]
		wl = wl[:len(wl)-1]
		mustOut, mayOut := c.must[node], c.may[node]
		if op, ok := c.effect[node]; ok {
			mustOut, mayOut = applyLock(op, mustOut, mayOut)
		}
		for _, e := range p.edges(node) {
			if e.Callee && c.rtSkip[e.To/2] {
				continue // runtime body: modeled on the return edge
			}
			if !c.seen[e.To] {
				c.seen[e.To] = true
				c.must[e.To], c.may[e.To] = mustOut, mayOut
				wl = append(wl, e.To)
				continue
			}
			nm, ny := c.must[e.To]&mustOut, c.may[e.To]|mayOut
			if nm != c.must[e.To] || ny != c.may[e.To] {
				c.must[e.To], c.may[e.To] = nm, ny
				wl = append(wl, e.To)
			}
		}
	}
}

// applyLock applies one acquire/release to the (must, may) pair. Unknown
// indices push both sets toward "nothing provably held": an unknown
// acquire adds to may only; an unknown release may have released anything.
func applyLock(op smpOp, must, may uint64) (uint64, uint64) {
	if op.kind == opAcquire {
		if op.lock < 0 {
			return must, fullSet
		}
		bit := uint64(1) << uint(op.lock)
		return must | bit, may | bit
	}
	if op.lock < 0 {
		return 0, may
	}
	bit := uint64(1) << uint(op.lock)
	return must &^ bit, may &^ bit
}

// heldBefore is the lock state on entry to an op: the dataflow value at
// the node whose exit carries the op's effect.
func (c *concurrency) heldBefore(op smpOp) (must, may uint64) {
	node := 2 * op.idx
	if op.call {
		node = 2*(op.idx+1) + 1
	}
	if c.seen[node] {
		return c.must[node], c.may[node]
	}
	if c.seen[node^1] {
		return c.must[node^1], c.may[node^1]
	}
	return 0, 0
}

// accessLocks is the MUST lock set when word idx executes, meeting both
// execution modes.
func (c *concurrency) accessLocks(idx int) uint64 {
	out, any := fullSet, false
	for _, node := range [2]int{2 * idx, 2*idx + 1} {
		if c.seen[node] {
			out &= c.must[node]
			any = true
		}
	}
	if !any {
		return 0
	}
	return out
}

// checkLockDiscipline reports double-lock and unlock-without-lock.
func (c *concurrency) checkLockDiscipline() {
	p := c.p
	for _, op := range c.ops {
		if op.lock < 0 {
			continue
		}
		bit := uint64(1) << uint(op.lock)
		must, may := c.heldBefore(op)
		switch op.kind {
		case opAcquire:
			if must&bit != 0 {
				p.reportAt(SevError, "smp-lock", op.idx,
					"lock %d is acquired while already held on every path: the spin can never succeed (self-deadlock)",
					op.lock)
			}
		case opRelease:
			if may&bit == 0 {
				p.reportAt(SevWarning, "smp-lock", op.idx,
					"lock %d is released but held on no path to this point (a runtime fault on this machine)",
					op.lock)
			}
		}
	}
}

// checkLockOrder builds the acquisition-order graph — an edge j->k when
// lock k is acquired while j is provably held — and reports every edge on
// a cycle: two such sites can each take their first lock and then wait
// forever for the other's.
func (c *concurrency) checkLockOrder() {
	var site [mem.LockCount][mem.LockCount]int
	var have, reach [mem.LockCount][mem.LockCount]bool
	for _, op := range c.ops {
		if op.kind != opAcquire || op.lock < 0 {
			continue
		}
		must, _ := c.heldBefore(op)
		for j := 0; j < mem.LockCount; j++ {
			if j != op.lock && must&(1<<uint(j)) != 0 {
				if !have[j][op.lock] {
					have[j][op.lock] = true
					site[j][op.lock] = op.idx
				}
				reach[j][op.lock] = true
			}
		}
	}
	for k := 0; k < mem.LockCount; k++ {
		for i := 0; i < mem.LockCount; i++ {
			if !reach[i][k] {
				continue
			}
			for j := 0; j < mem.LockCount; j++ {
				if reach[k][j] {
					reach[i][j] = true
				}
			}
		}
	}
	for j := 0; j < mem.LockCount; j++ {
		for k := 0; k < mem.LockCount; k++ {
			if have[j][k] && reach[k][j] {
				c.p.reportAt(SevWarning, "smp-lock", site[j][k],
					"lock order inversion: lock %d is acquired while holding lock %d, and elsewhere %d is acquired while holding %d (deadlock candidate)",
					k, j, j, k)
			}
		}
	}
}

// checkSpawnJoin reports join-without-spawn and spawn-in-delay-slot.
func (c *concurrency) checkSpawnJoin() {
	p := c.p
	spawns := 0
	for _, op := range c.ops {
		if op.kind == opSpawn {
			spawns++
		}
	}
	for _, op := range c.ops {
		switch op.kind {
		case opJoin:
			if spawns == 0 {
				p.reportAt(SevWarning, "smp-spawn", op.idx,
					"join with no spawn anywhere in the image: the handle can never name a live worker")
			}
		case opSpawn:
			if !op.call && p.reach[2*op.idx+1] {
				p.reportAt(SevWarning, "smp-spawn", op.idx,
					"spawn fired from a delay slot: the in-flight transfer can skip the code that reads the handle")
			}
		}
	}
}

// concAccess is one statically-resolved data access in worker-reachable
// code.
type concAccess struct {
	idx     int
	write   bool
	locks   uint64
	entries uint // bitmask of worker entries reaching this site
	multi   bool // two instances of this site's code can overlap
}

// checkRaces reports shared words written by worker-reachable code with no
// lock provably in common with the word's other worker accesses.
func (c *concurrency) checkRaces() {
	p := c.p
	// Worker entries and their instance counts: a spawn in a loop (the op
	// can re-execute itself) means unbounded instances of that entry.
	entryList := []int{}
	entryPos := map[int]int{}
	count := map[int]int{}
	for _, op := range c.ops {
		if op.kind != opSpawn || op.fn < 0 {
			continue
		}
		if _, ok := entryPos[op.fn]; !ok {
			entryPos[op.fn] = len(entryList)
			entryList = append(entryList, op.fn)
		}
		count[op.fn]++
		if c.inLoop(op) {
			count[op.fn] += 2
		}
	}
	if len(entryList) == 0 || len(entryList) > 64 {
		return
	}
	// Per-entry reachability, so access pairs can be tested for genuine
	// concurrency: a once-spawned worker does not race with itself.
	reaches := make([][]bool, len(entryList))
	for i, e := range entryList {
		reaches[i] = p.g.Walk(-1, []int{e}).Reach
	}

	accesses := map[uint32][]concAccess{}
	for i := 0; i < p.n; i++ {
		if !p.ok[i] || c.rtSkip[i] {
			continue
		}
		var ent uint
		multi := false
		for ei := range entryList {
			if reaches[ei][2*i] || reaches[ei][2*i+1] {
				ent |= 1 << uint(ei)
				if count[entryList[ei]] >= 2 {
					multi = true
				}
			}
		}
		if ent == 0 {
			continue
		}
		in := p.insts[i]
		cat := in.Op.Cat()
		if (cat != isa.CatLoad && cat != isa.CatStore) || !in.Imm {
			continue
		}
		base, ok := c.constAt(i, in.Rs1, false)
		if !ok {
			continue
		}
		a := base + uint32(in.Imm13)
		if a >= lockPageBase { // device pages and console are not data
			continue
		}
		if ent&(ent-1) != 0 {
			multi = true // shared by two different workers
		}
		w := a &^ 3
		accesses[w] = append(accesses[w], concAccess{
			idx: i, write: cat == isa.CatStore, locks: c.accessLocks(i),
			entries: ent, multi: multi,
		})
	}

	var addrs []uint32
	for a := range accesses {
		addrs = append(addrs, a)
	}
	sort.Slice(addrs, func(i, j int) bool { return addrs[i] < addrs[j] })
	for _, a := range addrs {
		list := accesses[a]
	report:
		for _, wr := range list {
			if !wr.write {
				continue
			}
			for _, other := range list {
				if !concurrentPair(wr, other) {
					continue
				}
				if wr.locks&other.locks != 0 {
					continue
				}
				what := "read"
				if other.write {
					what = "write"
				}
				p.reportAt(SevWarning, "smp-race", wr.idx,
					"store to shared word 0x%08x%s can race with the %s at 0x%08x: no lock is held in common by the worker instances",
					a, c.symSuffix(a), what, p.addrOf(other.idx))
				break report
			}
		}
	}
}

// concurrentPair reports whether two worker accesses (possibly the same
// site) can execute in overlapping worker instances: either side's code
// runs in two instances at once, or the sites belong to different spawned
// entries.
func concurrentPair(a, b concAccess) bool {
	if a.multi || b.multi {
		return true
	}
	return a.entries != b.entries || a.entries&(a.entries-1) != 0
}

// inLoop reports whether a spawn op can re-execute: its post-op node
// reaches the op again.
func (c *concurrency) inLoop(op smpOp) bool {
	p := c.p
	start := 2 * (op.idx + 1)
	if op.call {
		start = 2 * (op.idx + 2) // past the callr and its slot
	}
	visited := make([]bool, 2*p.n)
	stack := []int{start, start + 1}
	for len(stack) > 0 {
		node := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if node < 0 || node >= 2*p.n || visited[node] {
			continue
		}
		visited[node] = true
		if node/2 == op.idx {
			return true
		}
		for _, e := range p.edges(node) {
			stack = append(stack, e.To)
		}
	}
	return false
}

// symSuffix renders " (name)" when a symbol sits exactly at addr.
func (c *concurrency) symSuffix(addr uint32) string {
	for name, a := range c.p.img.Symbols {
		if a == addr && !strings.HasPrefix(name, ".L") && name != dataStartSym {
			return fmt.Sprintf(" (%s)", name)
		}
	}
	return ""
}
