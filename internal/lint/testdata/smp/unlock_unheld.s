;lint: smp-lock warning
;dyn: skip
; A direct store of 0 to lock word 0 ((r0)#-768 = 0xFFFFFD00) with no
; acquire on any path to it: a runtime fault on this machine's lock page.
main:
	stl r0,(r0)#-768
	ret r25,#8
	nop
