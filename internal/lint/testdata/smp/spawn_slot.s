;lint: smp-spawn warning
;dyn: skip
; A spawn fired from a delay slot: the store to SPAWNFN sits in the slot
; of the taken jump, so the handle read after the transfer lands somewhere
; the in-flight jump already decided — the reader can be skipped.
main:
	la w,r1
	stl r1,(r0)#-504	; stage arg
	jmpr alw,.Lnext
	stl r1,(r0)#-500	; spawn fires while the jump is in flight
.Lnext:
	ldl (r0)#-500,r2	; handle read the transfer can bypass
.Lpark:
	jmpr alw,.Lpark
	nop
w:
.Lwpark:
	jmpr alw,.Lwpark
	nop
