;lint: smp-race warning
;dyn: skip
; Two workers spawned through the raw device page both read-modify-write a
; shared word with no lock anywhere — the canonical race, in the
; assembler's own idiom. The spawn is the store to SPAWNFN (0xFFFFFE0C,
; (r0)#-500); the argument staging store goes to SPAWNARG ((r0)#-504).
main:
	la w,r1
	stl r1,(r0)#-504	; stage arg (the worker ignores it)
	stl r1,(r0)#-500	; spawn worker #1
	ldl (r0)#-500,r2	; handle
	la w,r1
	stl r1,(r0)#-504
	stl r1,(r0)#-500	; spawn worker #2
	ldl (r0)#-500,r3
.Lpark:
	jmpr alw,.Lpark		; static-only corpus entry: never joined, never run
	nop
w:
	la g,r16
	ldl (r16)#0,r17
	add r17,#1,r17
	stl r17,(r16)#0		; unguarded RMW of the shared word
.Lwpark:
	jmpr alw,.Lwpark
	nop
g:
	.word 0
