;lint: delay-slot warning
; The delay slot of a RET executes in the window being returned to; the
; add mutates the caller's r9 before the caller resumes.
main:
	callr r25,f
	nop
	ret r25,#8
	nop
f:
	ret r25,#0
	add r9,#4,r9
