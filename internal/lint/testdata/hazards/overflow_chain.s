;lint: reg-window info
; Nine nested calls with 8 windows: only 7 activations stay resident, so
; this chain spills on every traversal.
main:
	callr r25,f1
	nop
	ret r25,#8
	nop
f1:
	callr r25,f2
	nop
	ret r25,#0
	nop
f2:
	callr r25,f3
	nop
	ret r25,#0
	nop
f3:
	callr r25,f4
	nop
	ret r25,#0
	nop
f4:
	callr r25,f5
	nop
	ret r25,#0
	nop
f5:
	callr r25,f6
	nop
	ret r25,#0
	nop
f6:
	callr r25,f7
	nop
	ret r25,#0
	nop
f7:
	callr r25,f8
	nop
	ret r25,#0
	nop
f8:
	callr r25,f9
	nop
	ret r25,#0
	nop
f9:
	ret r25,#0
	nop
