;lint: branch-target error
; A conditional branch whose literal displacement lands far outside the
; code segment.
main:
	cmp r1,#0
	beq #8192
	nop
	ret r25,#8
	nop
