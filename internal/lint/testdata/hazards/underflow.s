;lint: reg-window error
; A return at call depth 0 through a register other than the reset link:
; it pops a window that was never pushed.
main:
	ret r1,#0
	nop
