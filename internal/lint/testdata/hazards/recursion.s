;lint: reg-window info
; Recursion makes the register-window depth unbounded; spills begin past
; N-1 nested activations.
main:
	callr r25,f
	nop
	ret r25,#8
	nop
f:
	callr r25,f
	nop
	ret r25,#0
	nop
