;lint: use-before-def warning
; r16 is a local-window register no path has written; reading it yields
; whatever the window held.
main:
	add r16,#1,r17
	ret r25,#8
	nop
