;lint: unreachable warning
; The add is orphaned behind an unconditional branch and carries no
; label, so nothing can reach it.
main:
	b done
	nop
	add r1,#1,r2
done:
	ret r25,#8
	nop
