;lint: delay-slot warning
; The delay slot of a CALL executes after CWP has slid to the callee's
; window; this store runs in the wrong frame.
main:
	callr r25,f
	stl r9,(r9)#0
	ret r25,#8
	nop
f:
	ret r25,#0
	nop
