;lint: delay-slot error
; The delay slot always executes, so the word after a transfer must
; decode; here it is data.
main:
	b main
	.word 0
