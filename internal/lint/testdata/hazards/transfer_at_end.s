;lint: delay-slot error
; A delayed transfer in the last code word: its slot lies outside the
; code segment, so the machine fetches whatever follows.
main:
	nop
	b main
