;lint: delay-slot error
; With the code/data split marked, labels are analyzed as entry points:
; the hazard in the never-called handler is still found.
main:
	ret r25,#8
	nop
handler:
	b handler
	b handler
__data_start:
	.word 0
