;lint: cfg warning
; The last instruction is not a transfer, so control runs off the end of
; the code segment.
main:
	add r0,#0,r1
	add r1,#1,r1
