;lint: delay-slot error
; A transfer in the delay slot of another transfer: two delayed jumps
; would be in flight at once.
main:
	b out
	b out
out:
	ret r25,#8
	nop
