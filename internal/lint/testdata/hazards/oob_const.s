;lint: mem-access warning
; A constant-address load that misses both the loaded image and the
; console device.
main:
	ldl (r0)#4000,r1
	ret r25,#8
	nop
