;lint: mem-access error
; A 4-byte access at a constant address that is not word-aligned.
main:
	ldl (r0)#6,r1
	ret r25,#8
	nop
