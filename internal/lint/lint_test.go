package lint

import (
	"bufio"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"risc1/internal/asm"
	"risc1/internal/cisc"
)

// TestHazardCorpus assembles every file under testdata/hazards and checks
// that it triggers exactly what its ";lint: <pass> <severity>" header
// promises: each expectation matches at least one diagnostic, and every
// warning-or-worse diagnostic is covered by an expectation.
func TestHazardCorpus(t *testing.T) {
	files, err := filepath.Glob(filepath.Join("testdata", "hazards", "*.s"))
	if err != nil || len(files) == 0 {
		t.Fatalf("no hazard corpus: %v (%d files)", err, len(files))
	}
	for _, file := range files {
		file := file
		t.Run(filepath.Base(file), func(t *testing.T) {
			src, err := os.ReadFile(file)
			if err != nil {
				t.Fatal(err)
			}
			type expect struct{ pass, sev string }
			var expects []expect
			sc := bufio.NewScanner(strings.NewReader(string(src)))
			for sc.Scan() {
				line := strings.TrimSpace(sc.Text())
				if !strings.HasPrefix(line, ";lint:") {
					continue
				}
				f := strings.Fields(strings.TrimPrefix(line, ";lint:"))
				if len(f) != 2 {
					t.Fatalf("bad expectation line %q", line)
				}
				expects = append(expects, expect{pass: f[0], sev: f[1]})
			}
			if len(expects) == 0 {
				t.Fatalf("%s has no ;lint: expectations", file)
			}
			img, err := asm.Assemble(string(src))
			if err != nil {
				t.Fatalf("assemble: %v", err)
			}
			diags := Check(img, Options{})
			matched := func(e expect) bool {
				for _, d := range diags {
					if d.Pass == e.pass && d.Severity.String() == e.sev {
						return true
					}
				}
				return false
			}
			for _, e := range expects {
				if !matched(e) {
					t.Errorf("expected a %s %s diagnostic, got %v", e.pass, e.sev, diags)
				}
			}
			for _, d := range diags {
				if d.Severity < SevWarning {
					continue
				}
				covered := false
				for _, e := range expects {
					if d.Pass == e.pass && d.Severity.String() == e.sev {
						covered = true
					}
				}
				if !covered {
					t.Errorf("unexpected diagnostic: %s", d)
				}
			}
			for _, d := range diags {
				if d.Line == 0 {
					t.Errorf("diagnostic lost its source line: %s", d)
				}
			}
		})
	}
}

func TestCleanProgram(t *testing.T) {
	img, err := asm.Assemble(`
main:
	li #42,r1
	stl r1,(r0)#-252
	ret r25,#8
	nop
`)
	if err != nil {
		t.Fatal(err)
	}
	if diags := Check(img, Options{}); len(diags) != 0 {
		t.Errorf("clean program produced diagnostics: %v", diags)
	}
}

// TestFlatOptions verifies the window-sensitive checks stand down for the
// flat ablation, where CWP never moves.
func TestFlatOptions(t *testing.T) {
	src := `
main:
	callr r25,f
	add r9,#0,r1
	ret r25,#8
	nop
f:
	ret r25,#0
	nop
`
	img, err := asm.Assemble(src)
	if err != nil {
		t.Fatal(err)
	}
	if got := Count(Check(img, Options{}), SevWarning); got != 1 {
		t.Errorf("windowed: want 1 call-slot warning, got %d", got)
	}
	if got := Count(Check(img, Options{Flat: true}), SevWarning); got != 0 {
		t.Errorf("flat: want 0 warnings, got %d", got)
	}
}

func TestWindowsOption(t *testing.T) {
	// A 3-deep chain is fine with 8 windows but guaranteed spill with 3.
	src := `
main:
	callr r25,f
	nop
	ret r25,#8
	nop
f:
	callr r25,g
	nop
	ret r25,#0
	nop
g:
	ret r25,#0
	nop
`
	img, err := asm.Assemble(src)
	if err != nil {
		t.Fatal(err)
	}
	if diags := Check(img, Options{}); len(diags) != 0 {
		t.Errorf("8 windows: want no diagnostics, got %v", diags)
	}
	diags := Check(img, Options{Windows: 3})
	if len(diags) != 1 || diags[0].Pass != "reg-window" || diags[0].Severity != SevInfo {
		t.Errorf("3 windows: want one reg-window info, got %v", diags)
	}
}

func TestDiagnosticJSON(t *testing.T) {
	d := Diagnostic{Severity: SevWarning, Pass: "delay-slot", PC: 0x1004, Line: 7,
		Disasm: "nop", Message: "m"}
	b, err := json.Marshal(d)
	if err != nil {
		t.Fatal(err)
	}
	want := `{"severity":"warning","pass":"delay-slot","pc":4100,"line":7,"disasm":"nop","message":"m"}`
	if string(b) != want {
		t.Errorf("json = %s, want %s", b, want)
	}
	var back Diagnostic
	if err := json.Unmarshal(b, &back); err != nil {
		t.Fatal(err)
	}
	if back != d {
		t.Errorf("round trip = %+v, want %+v", back, d)
	}
	var sev Severity
	if err := sev.UnmarshalText([]byte("nonsense")); err == nil {
		t.Error("UnmarshalText accepted nonsense")
	}
}

func TestCheckCISC(t *testing.T) {
	clean, err := cisc.Assemble(`
	.entry main
main:
	.mask
	movl #5, r0
	halt
`)
	if err != nil {
		t.Fatal(err)
	}
	if diags := CheckCISC(clean); len(diags) != 0 {
		t.Errorf("clean CX program produced diagnostics: %v", diags)
	}

	bad, err := cisc.Assemble(`
	.entry main
main:
	.mask
	jmp @0x4000
`)
	if err != nil {
		t.Fatal(err)
	}
	diags := CheckCISC(bad)
	found := false
	for _, d := range diags {
		if d.Pass == "cisc-flow" && d.Severity == SevError {
			found = true
		}
	}
	if !found {
		t.Errorf("out-of-segment jmp not flagged: %v", diags)
	}
}

// TestCISCAbsOperand checks the absolute-operand bounds pass on CX.
func TestCISCAbsOperand(t *testing.T) {
	img, err := cisc.Assemble(`
	.entry main
main:
	.mask
	movl @0x00100000, r0
	halt
`)
	if err != nil {
		t.Fatal(err)
	}
	diags := CheckCISC(img)
	found := false
	for _, d := range diags {
		if d.Pass == "cisc-mem" && d.Severity == SevWarning {
			found = true
		}
	}
	if !found {
		t.Errorf("out-of-image absolute operand not flagged: %v", diags)
	}
}

func TestSeverityStrings(t *testing.T) {
	if SevInfo.String() != "info" || SevWarning.String() != "warning" || SevError.String() != "error" {
		t.Error("severity names changed")
	}
	if Severity(9).String() != "severity9" {
		t.Error("unknown severity should degrade, not panic")
	}
}
