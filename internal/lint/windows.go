package lint

import "sort"

// checkWindows runs the register-window depth analyses. Neither applies to
// the flat ablation, where CWP never moves.
//
// Underflow: a RET reachable at minimum call depth 0 pops a window that was
// never pushed. The one legitimate shape is the halt convention — `ret
// r25,#8` through the reset-preset link register — so only returns through
// other registers are findings.
//
// Spill pressure: the hardware keeps N-1 activations resident; a static
// call chain deeper than that is guaranteed to spill on every traversal,
// and recursion makes the depth unbounded. Spilling is handled correctly by
// the machine, so both are SevInfo — the performance facts behind the
// paper's window-overflow measurements, not defects.
func (p *program) checkWindows() {
	if p.opts.Flat {
		return
	}
	for i := 0; i < p.n; i++ {
		if !p.reach[2*i] || !p.ok[i] {
			continue
		}
		in := p.insts[i]
		if in.IsReturn() && p.minDepth[2*i] == 0 && in.Rd != linkReg {
			p.reportAt(SevError, "reg-window", i,
				"return through r%d at call depth 0 pops a register window that was never pushed "+
					"(only the halt convention `ret r%d,#8` is defined here)", in.Rd, linkReg)
		}
	}
	p.checkCallChains()
}

// checkCallChains builds a function-level call graph — functions are the
// entry plus every statically-known call target — and measures the longest
// acyclic chain of window pushes from the entry.
//
// A function's body is its CFG closure without crossing call-entry edges,
// not a contiguous address range: the compiler's `__start` *jumps* to main,
// so main's call sites belong to the entry function's chain even though
// main sits between other functions in the image.
func (p *program) checkCallChains() {
	if p.entryIdx < 0 {
		return
	}
	starts := map[int]bool{p.entryIdx: true}
	for i := 0; i < p.n; i++ {
		if !p.reach[2*i] || !p.ok[i] || !p.insts[i].IsCall() {
			continue
		}
		if tidx, known := p.staticTarget(i, p.insts[i]); known {
			starts[tidx] = true
		}
	}
	type call struct{ site, callee int } // word indexes
	callees := map[int][]call{}
	for f := range starts {
		body := make(map[int]bool) // node ids
		wl := []int{2 * f}
		for len(wl) > 0 {
			node := wl[len(wl)-1]
			wl = wl[:len(wl)-1]
			if node >= 2*p.n || body[node] || !p.reach[node] {
				continue
			}
			body[node] = true
			idx := node / 2
			if node%2 == 0 && p.ok[idx] && p.insts[idx].IsCall() {
				if tidx, known := p.staticTarget(idx, p.insts[idx]); known {
					callees[f] = append(callees[f], call{site: idx, callee: tidx})
				}
			}
			for _, e := range p.edges(node) {
				if !e.Callee {
					wl = append(wl, e.To)
				}
			}
		}
		// Deterministic order for the DFS below.
		sort.Slice(callees[f], func(i, j int) bool { return callees[f][i].site < callees[f][j].site })
	}

	const (
		white = iota
		grey
		black
	)
	color := map[int]int{}
	depth := map[int]int{} // max window pushes below a function
	recursionAt := -1      // word index of the first back-edge call site
	var visit func(f int) int
	visit = func(f int) int {
		switch color[f] {
		case grey:
			return -1 // back edge: recursion
		case black:
			return depth[f]
		}
		color[f] = grey
		max := 0
		for _, c := range callees[f] {
			d := visit(c.callee)
			if d < 0 {
				if recursionAt < 0 {
					recursionAt = c.site
				}
				continue
			}
			if 1+d > max {
				max = 1 + d
			}
		}
		color[f] = black
		depth[f] = max
		return max
	}
	maxPush := visit(p.entryIdx)

	if recursionAt >= 0 {
		p.reportAt(SevInfo, "reg-window", recursionAt,
			"recursive call: register-window depth is unbounded, spills occur beyond %d nested activations",
			p.opts.Windows-1)
	}
	if maxPush >= p.opts.Windows-1 {
		p.report(SevInfo, "reg-window", p.img.Entry, p.entryIdx,
			"static call chain reaches depth %d but only %d activations stay resident in %d windows: spill traffic is guaranteed",
			maxPush, p.opts.Windows-1, p.opts.Windows)
	}
}
