package lint

// checkDelaySlots examines the word after every reachable delayed transfer.
// Three things can go wrong there:
//
//   - the transfer is the last code word, so its slot lies outside the code
//     segment and the machine will fetch data (or fault);
//   - the slot does not decode;
//   - the slot holds another control transfer, so two transfers are in
//     flight at once — the paper's hardware gives this no defined meaning.
//
// Additionally, on the windowed machine the slot of a CALL executes after
// CWP has already slid to the callee's window, and the slot of a RET in the
// window being returned to. An instruction with architectural effects there
// touches registers of the wrong frame; the compiler always leaves a nop.
// (Branch slots are different: the delay-slot filler hoists ALU ops, loads
// and stores into them, which is the whole point of the delayed jump.)
func (p *program) checkDelaySlots() {
	for i := 0; i < p.n; i++ {
		if !p.reach[2*i] || !p.ok[i] || !delayed(p.insts[i]) {
			continue
		}
		t := p.insts[i]
		j := i + 1
		if j >= p.n {
			p.reportAt(SevError, "delay-slot", i,
				"delayed transfer in the last code word: its delay slot lies outside the code segment")
			continue
		}
		if !p.ok[j] {
			p.reportAt(SevError, "delay-slot", j,
				"delay slot of `%s` does not decode as an instruction", t)
			continue
		}
		s := p.insts[j]
		if s.Op.Transfers() {
			p.reportAt(SevError, "delay-slot", j,
				"control transfer in the delay slot of `%s`: two transfers would be in flight at once", t)
			continue
		}
		if !p.opts.Flat && (t.IsCall() || t.IsReturn()) && !s.IsEffectFree() {
			which := "callee's"
			if t.IsReturn() {
				which = "returned-to"
			}
			p.reportAt(SevWarning, "delay-slot", j,
				"delay slot of `%s` executes in the %s register window; `%s` has effects there (use nop)",
				t, which, s)
		}
	}
}
