// Package lint statically analyzes assembled RISC I images (and, for the
// checks that translate, CX images) without running them. It decodes the
// code segment, builds a control-flow graph that honors the machine's
// delayed-transfer semantics — the instruction after every jump, call, or
// return executes before control moves — and runs a small set of dataflow
// passes over it:
//
//   - delay-slot: transfers or undecodable words in delay slots, effectful
//     instructions in CALL/RET slots (which execute in the shifted register
//     window on the windowed machine), and transfers in the last code word.
//   - branch-target: statically-known jump and call targets that land
//     outside the code segment, on a misaligned address, or on a word that
//     does not decode.
//   - reg-window: returns reachable at call depth 0 through a non-link
//     register, guaranteed window spill traffic from deep static call
//     chains, and recursion (unbounded window depth).
//   - use-before-def: registers read on some path from the entry before any
//     path has defined them.
//   - mem-access: constant-address loads and stores that miss both the
//     loaded image and the console device, and misaligned constant accesses.
//   - unreachable: decodable, unlabeled code that no path reaches but that
//     directly follows reachable code.
//   - cfg: control that can run past the end of the code segment.
//   - smp-race, smp-lock, smp-spawn: the concurrency suite for programs
//     that use the shared-memory machine's device pages — static lockset
//     race detection over spawned-worker code, lock discipline
//     (self-deadlock, release-without-hold, lock-order inversion), and
//     spawn/join plumbing. These engage automatically when an image visibly
//     uses the SMP runtime or device pages, and can be forced with
//     Options.SMP; see concurrency.go for the model and its deliberate
//     static limits, and internal/smp's dynamic race detector for the
//     other half of the contract.
//
// The passes are tuned to be warning-free on the output of the Cm compiler
// and on the repository's hand-written examples: anything the code
// generator legitimately emits (stores hoisted into branch delay slots,
// callee-save stores of not-yet-written registers, the `ret r25,#8` halt
// convention at depth 0) is not a finding. Window-spill predictions and
// recursion reports are SevInfo — facts about the program, not defects.
package lint

import (
	"fmt"
	"sort"
	"strings"

	"risc1/internal/asm"
	"risc1/internal/regwin"
)

// Severity ranks a finding. Info diagnostics never gate a build; the
// risclint CLI exits nonzero on errors, and on warnings under -Werror.
type Severity int

const (
	SevInfo Severity = iota
	SevWarning
	SevError
)

func (s Severity) String() string {
	switch s {
	case SevInfo:
		return "info"
	case SevWarning:
		return "warning"
	case SevError:
		return "error"
	default:
		return fmt.Sprintf("severity%d", int(s))
	}
}

// MarshalText renders the severity as its name, so JSON output carries
// "warning" rather than an enum ordinal.
func (s Severity) MarshalText() ([]byte, error) { return []byte(s.String()), nil }

// UnmarshalText parses a severity name; it accepts what MarshalText emits.
func (s *Severity) UnmarshalText(b []byte) error {
	switch string(b) {
	case "info":
		*s = SevInfo
	case "warning":
		*s = SevWarning
	case "error":
		*s = SevError
	default:
		return fmt.Errorf("lint: unknown severity %q", b)
	}
	return nil
}

// Diagnostic is one finding, tied to the instruction address it concerns
// and — when the image carries a line table — to the source line that
// emitted it.
type Diagnostic struct {
	Severity Severity `json:"severity"`
	Pass     string   `json:"pass"`
	PC       uint32   `json:"pc"`
	Line     int      `json:"line,omitempty"`
	Disasm   string   `json:"disasm,omitempty"`
	Message  string   `json:"message"`
}

func (d Diagnostic) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s: %s [%s] at 0x%08x", d.Severity, d.Message, d.Pass, d.PC)
	if d.Disasm != "" {
		fmt.Fprintf(&b, " `%s`", d.Disasm)
	}
	if d.Line > 0 {
		fmt.Fprintf(&b, " (line %d)", d.Line)
	}
	return b.String()
}

// Count returns how many diagnostics are at least as severe as min.
func Count(diags []Diagnostic, min Severity) int {
	n := 0
	for _, d := range diags {
		if d.Severity >= min {
			n++
		}
	}
	return n
}

// Options tunes the analysis to the convention the image was built for.
type Options struct {
	// Flat marks an image built for the windowless ablation: calls and
	// returns keep CWP fixed, so the register-window passes do not apply
	// and the entry-defined register set follows the flat convention.
	Flat bool
	// Windows is the register-window count used for spill predictions
	// (0 = regwin.DefaultWindows, the paper's 8).
	Windows int
	// SMP forces the concurrency passes (smp-race, smp-lock, smp-spawn)
	// on. They engage automatically when the image contains SMP operations
	// — runtime calls or device-page accesses — so the flag only matters
	// for declaring intent on images that should have them.
	SMP bool
}

// Check analyzes an assembled RISC I image and returns its findings sorted
// by address, most severe first within an address.
func Check(img *asm.Image, opts Options) []Diagnostic {
	if opts.Windows <= 0 {
		opts.Windows = regwin.DefaultWindows
	}
	p := newProgram(img, opts)
	if p == nil {
		return nil
	}
	p.walk()
	p.checkDelaySlots()
	p.checkTargets()
	p.checkMemAccess()
	p.checkWindows()
	p.checkUseBeforeDef()
	p.checkUnreachable()
	p.checkConcurrency()
	sortDiags(p.diags)
	return p.diags
}

func sortDiags(diags []Diagnostic) {
	sort.SliceStable(diags, func(i, j int) bool {
		if diags[i].PC != diags[j].PC {
			return diags[i].PC < diags[j].PC
		}
		if diags[i].Severity != diags[j].Severity {
			return diags[i].Severity > diags[j].Severity
		}
		return diags[i].Pass < diags[j].Pass
	})
}
