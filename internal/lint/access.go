package lint

import (
	"risc1/internal/isa"
	"risc1/internal/mem"
)

// checkTargets validates every statically-known transfer destination of
// reachable code: it must land inside the code segment, on a word boundary,
// and on a word that decodes. (Dynamic register targets are not checked —
// that is what the suspicious-constant pass and the runtime are for.)
// It also reports control that can run off the end of the code segment,
// where the machine would fetch data.
func (p *program) checkTargets() {
	for i := 0; i < p.n; i++ {
		if !p.reach[2*i] || !p.ok[i] {
			continue
		}
		in := p.insts[i]
		if in.Op.Transfers() {
			a, known := p.targetAddr(i, in)
			switch {
			case !known:
			case a < p.org || a >= p.codeEnd:
				p.reportAt(SevError, "branch-target", i,
					"transfer target 0x%08x lies outside the code segment [0x%08x,0x%08x)",
					a, p.org, p.codeEnd)
			case (a-p.org)%4 != 0:
				p.reportAt(SevError, "branch-target", i,
					"transfer target 0x%08x is not word-aligned", a)
			default:
				if tidx, _ := p.indexOf(a); !p.ok[tidx] {
					p.reportAt(SevError, "branch-target", i,
						"transfer target 0x%08x does not decode as an instruction", a)
				}
			}
		}
	}
	p.checkFallsOffEnd()
}

// checkFallsOffEnd reports reachable control whose fallthrough is the first
// word past the code segment. Only the last code word can fall through off
// the end: as itself, as the untaken path of a conditional in its slot, or
// as the return site of a call in its slot.
func (p *program) checkFallsOffEnd() {
	last := p.n - 1
	if last < 0 || !p.ok[last] {
		return
	}
	off := false
	if p.reach[2*last] && !delayed(p.insts[last]) {
		// Includes CALLINT; a delayed transfer there is the delay-slot
		// pass's finding, not a fallthrough.
		off = true
	}
	if p.reach[2*last+1] && last > 0 && p.ok[last-1] {
		t := p.insts[last-1]
		switch {
		case (t.Op == isa.OpJMP || t.Op == isa.OpJMPR) && t.Cond() != isa.CondALW:
			off = true
		case t.IsCall():
			off = true
		}
	}
	if off {
		p.reportAt(SevWarning, "cfg", last,
			"control can run past the end of the code segment into data")
	}
}

// checkMemAccess examines loads and stores whose effective address is fully
// constant — the (r0)#imm idiom. Negative immediates reach the device
// window at the top of the address space — the SMP lock and control pages
// and the console — and are fine; anything else must fall inside the
// loaded image, and word/halfword accesses must be aligned. Register-based
// addressing (the common case: gp- and sp-relative) is not statically
// evaluable and is left to the runtime's fault checks.
func (p *program) checkMemAccess() {
	for i := 0; i < p.n; i++ {
		if !p.executed(i) || !p.ok[i] {
			continue
		}
		in := p.insts[i]
		cat := in.Op.Cat()
		if cat != isa.CatLoad && cat != isa.CatStore {
			continue
		}
		if in.Rs1 != 0 || !in.Imm {
			continue
		}
		a := uint32(in.Imm13) // sign-extension wraps negatives to the top of memory
		if a < mem.LockBase {
			if a < p.org || a >= p.imgEnd {
				p.reportAt(SevWarning, "mem-access", i,
					"constant address 0x%08x lies outside the loaded image [0x%08x,0x%08x) and the device window",
					a, p.org, p.imgEnd)
			}
		}
		switch in.Op {
		case isa.OpLDL, isa.OpSTL:
			if a%4 != 0 {
				p.reportAt(SevError, "mem-access", i,
					"misaligned 4-byte access at constant address 0x%08x", a)
			}
		case isa.OpLDSU, isa.OpLDSS, isa.OpSTS:
			if a%2 != 0 {
				p.reportAt(SevError, "mem-access", i,
					"misaligned 2-byte access at constant address 0x%08x", a)
			}
		}
	}
}
