package lint

import (
	"fmt"

	"risc1/internal/cisc"
	"risc1/internal/mem"
)

// CheckCISC runs the checks that translate to the CX comparator machine.
// CX has no delay slots or register windows, so the analysis is a
// control-flow-following decode: starting from the entry and every CALLS
// target, it verifies that each reachable byte position decodes, that
// statically-known transfer targets stay inside the code segment, that
// absolute-mode data operands hit the image or the console device, and that
// control cannot run off the end of the code. Following the flow (rather
// than decoding linearly) matters because CX instructions are
// variable-length: a linear scan would lose frame and mis-decode everything
// after the first data byte.
func CheckCISC(img *cisc.Image) []Diagnostic {
	code := img.Bytes
	if ds, ok := img.Symbols[dataStartSym]; ok && ds >= img.Org && ds <= img.Org+uint32(len(img.Bytes)) {
		code = img.Bytes[:ds-img.Org]
	}
	if len(code) == 0 {
		return nil
	}
	org := img.Org
	codeEnd := org + uint32(len(code))
	imgEnd := org + uint32(len(img.Bytes))
	inCode := func(a uint32) bool { return a >= org && a < codeEnd }

	var diags []Diagnostic
	report := func(sev Severity, pass string, pc uint32, format string, args ...any) {
		diags = append(diags, Diagnostic{
			Severity: sev, Pass: pass, PC: pc, Message: fmt.Sprintf(format, args...),
		})
	}

	visited := make(map[uint32]bool)
	ranOff := false
	// The machine CALLSes the entry, so it is a procedure start: its first
	// two bytes are the register-save mask and execution begins after them.
	wl := []uint32{img.Entry + 2}
	if !inCode(img.Entry) {
		report(SevError, "cisc-flow", img.Entry, "entry point lies outside the code segment")
		wl = nil
	}
	for len(wl) > 0 {
		a := wl[len(wl)-1]
		wl = wl[:len(wl)-1]
		if visited[a] {
			continue
		}
		visited[a] = true
		f, ok := cisc.DecodeFlow(code, int(a-org), a)
		if !ok {
			report(SevError, "cisc-flow", a, "reachable byte position does not decode as an instruction")
			continue
		}
		for _, ref := range f.AbsRefs {
			if ref < mem.ConsoleBase && (ref < org || ref >= imgEnd) {
				report(SevWarning, "cisc-mem", a,
					"absolute operand address 0x%08x lies outside the loaded image [0x%08x,0x%08x) and the console device",
					ref, org, imgEnd)
			}
		}
		if f.HasTarget {
			if !inCode(f.Target) {
				report(SevError, "cisc-flow", a,
					"transfer target 0x%08x lies outside the code segment [0x%08x,0x%08x)",
					f.Target, org, codeEnd)
			} else {
				t := f.Target
				if f.Call {
					// A CALLS target is a procedure start: its first two
					// bytes are the register-save mask, not an opcode.
					t += 2
				}
				if inCode(t) {
					wl = append(wl, t)
				}
			}
		}
		if !f.Stops {
			next := a + uint32(f.Size)
			if !inCode(next) {
				if !ranOff {
					ranOff = true
					report(SevWarning, "cisc-flow", a,
						"control can run past the end of the code segment into data")
				}
			} else {
				wl = append(wl, next)
			}
		}
	}
	sortDiags(diags)
	return diags
}
