package lint

import (
	"bufio"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"risc1/internal/asm"
	"risc1/internal/cc"
)

// smpExpect is one ";lint: <pass> <severity>" promise from a corpus file.
type smpExpect struct{ pass, sev string }

// readSMPExpects parses the corpus header comments. Cm files carry the
// markers behind "//", assembly files behind ";".
func readSMPExpects(t *testing.T, src string) []smpExpect {
	t.Helper()
	var expects []smpExpect
	sc := bufio.NewScanner(strings.NewReader(src))
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		line = strings.TrimSpace(strings.TrimPrefix(line, "//"))
		if !strings.HasPrefix(line, ";lint:") {
			continue
		}
		f := strings.Fields(strings.TrimPrefix(line, ";lint:"))
		if len(f) != 2 {
			t.Fatalf("bad expectation line %q", line)
		}
		expects = append(expects, smpExpect{pass: f[0], sev: f[1]})
	}
	return expects
}

// compileSMPCorpus turns one corpus file into an image: Cm sources go
// through the compiler for the windowed target, assembly straight through
// the assembler.
func compileSMPCorpus(t *testing.T, file, src string) *asm.Image {
	t.Helper()
	text := src
	if strings.HasSuffix(file, ".cm") {
		res, err := cc.Compile(src, cc.Options{Target: cc.RISCWindowed})
		if err != nil {
			t.Fatalf("compile: %v", err)
		}
		text = res.Asm
	}
	img, err := asm.Assemble(text)
	if err != nil {
		t.Fatalf("assemble: %v", err)
	}
	return img
}

// TestSMPHazardCorpus is the static half of the two-sided contract: every
// file under testdata/smp trips exactly what its ";lint:" header promises —
// each expectation matches at least one diagnostic, every warning-or-worse
// diagnostic is covered by an expectation, and the concurrency passes
// engage on their own (no Options.SMP force) because the programs visibly
// use the SMP runtime or device pages.
func TestSMPHazardCorpus(t *testing.T) {
	files, err := filepath.Glob(filepath.Join("testdata", "smp", "*"))
	if err != nil || len(files) < 10 {
		t.Fatalf("smp hazard corpus too small: %v (%d files)", err, len(files))
	}
	for _, file := range files {
		file := file
		t.Run(filepath.Base(file), func(t *testing.T) {
			b, err := os.ReadFile(file)
			if err != nil {
				t.Fatal(err)
			}
			src := string(b)
			expects := readSMPExpects(t, src)
			if len(expects) == 0 {
				t.Fatalf("%s has no ;lint: expectations", file)
			}
			img := compileSMPCorpus(t, file, src)
			diags := Check(img, Options{})
			matched := func(e smpExpect) bool {
				for _, d := range diags {
					if d.Pass == e.pass && d.Severity.String() == e.sev {
						return true
					}
				}
				return false
			}
			for _, e := range expects {
				if !matched(e) {
					t.Errorf("expected a %s %s diagnostic, got %v", e.pass, e.sev, diags)
				}
			}
			for _, d := range diags {
				if d.Severity < SevWarning {
					continue
				}
				covered := false
				for _, e := range expects {
					if d.Pass == e.pass && d.Severity.String() == e.sev {
						covered = true
					}
				}
				if !covered {
					t.Errorf("unexpected diagnostic: %s", d)
				}
			}
			for _, d := range diags {
				if d.Line == 0 {
					t.Errorf("diagnostic lost its source line: %s", d)
				}
			}
		})
	}
}

// TestSMPRaceDiagnosticCmLine pins satellite wiring across three layers:
// the compiler stamps ";@line" markers, the assembler folds them into the
// image's line table, and the analyzer's race report therefore points at
// the Cm statement — not at some line of generated assembly. The racy
// store in race_counter.cm is `counter = counter + k;`.
func TestSMPRaceDiagnosticCmLine(t *testing.T) {
	b, err := os.ReadFile(filepath.Join("testdata", "smp", "race_counter.cm"))
	if err != nil {
		t.Fatal(err)
	}
	src := string(b)
	wantLine := 0
	for i, line := range strings.Split(src, "\n") {
		if strings.Contains(line, "counter = counter + k;") {
			wantLine = i + 1
		}
	}
	if wantLine == 0 {
		t.Fatal("race_counter.cm lost its racy statement")
	}
	img := compileSMPCorpus(t, "race_counter.cm", src)
	for _, d := range Check(img, Options{}) {
		if d.Pass == "smp-race" {
			if d.Line != wantLine {
				t.Errorf("race diagnostic at line %d, want Cm line %d: %s", d.Line, wantLine, d)
			}
			return
		}
	}
	t.Fatal("no smp-race diagnostic on race_counter.cm")
}

// TestSMPOptionForcesPasses checks Options.SMP engages the suite on an
// image with no visible SMP operation, and that such an image is still
// clean — the force changes eagerness, not verdicts.
func TestSMPOptionForcesPasses(t *testing.T) {
	img, err := asm.Assemble(`
main:
	li #42,r1
	stl r1,(r0)#-252
	ret r25,#8
	nop
`)
	if err != nil {
		t.Fatal(err)
	}
	if diags := Check(img, Options{SMP: true}); len(diags) != 0 {
		t.Errorf("forced SMP passes on a sequential program: %v", diags)
	}
}

// TestSMPCleanParallelSkeleton pins the negative side at this layer: a
// properly locked worker pair produces no concurrency findings.
func TestSMPCleanParallelSkeleton(t *testing.T) {
	const src = `
int g;
void w(int k) {
  int i;
  i = 0;
  while (i < 100) {
    lock(0);
    g = g + k;
    unlock(0);
    i = i + 1;
  }
}
int main() {
  int h1; int h2;
  h1 = spawn(w, 1);
  h2 = spawn(w, 2);
  join(h1);
  join(h2);
  putint(g);
  return 0;
}
`
	img := compileSMPCorpus(t, "clean.cm", src)
	for _, d := range Check(img, Options{}) {
		if d.Severity >= SevWarning {
			t.Errorf("clean locked worker linted dirty: %s", d)
		}
	}
}
