package lint

import "risc1/internal/isa"

// checkUseBeforeDef flags register reads that no path from any root has
// preceded with a definition. The merge is a union — "defined on some
// path" — so a register is flagged only when it is provably uninitialized
// everywhere it could arrive from, which keeps the pass quiet on code that
// merely has one cold path.
//
// Window semantics are deliberately coarse: labeled functions seed with
// every register defined (their callers pass arguments the analysis cannot
// see), and a call-return edge marks the argument/result overlap registers
// defined (the callee legitimately leaves values there). The pass therefore
// bites mainly on straight-line and entry-function code — which is exactly
// where hand-written assembly reads a register it forgot to load.
func (p *program) checkUseBeforeDef() {
	in := make([]uint32, 2*p.n)
	seen := make([]bool, 2*p.n)

	var entryDefined uint32
	for r := 0; r <= 9; r++ { // globals: r0, sp r9 among them
		entryDefined |= 1 << r
	}
	entryDefined |= 1 << linkReg // reset linkage
	if !p.opts.Flat {
		for r := 26; r <= 31; r++ { // high-window incoming-parameter area
			entryDefined |= 1 << r
		}
	}
	// Registers a returning callee may have rewritten (and so "defines"):
	// the windowed argument/result overlap, the link, and in flat mode the
	// global argument registers.
	var retClobber uint32
	for r := 10; r <= 15; r++ {
		retClobber |= 1 << r
	}
	retClobber |= 1 << linkReg
	if p.opts.Flat {
		for r := 1; r <= 6; r++ {
			retClobber |= 1 << r
		}
	}

	var wl []int
	seed := func(node int, v uint32) {
		if node < 0 || node >= 2*p.n {
			return
		}
		if !seen[node] || in[node]|v != in[node] {
			seen[node] = true
			in[node] |= v
			wl = append(wl, node)
		}
	}
	if p.entryIdx >= 0 {
		seed(2*p.entryIdx, entryDefined)
	}
	if p.hasDataMark {
		for idx := range p.labels {
			seed(2*idx, ^uint32(0))
		}
	}
	for len(wl) > 0 {
		node := wl[len(wl)-1]
		wl = wl[:len(wl)-1]
		out := in[node]
		if d, ok := p.insts[node/2].DestReg(); ok {
			out |= 1 << d
		}
		for _, e := range p.edges(node) {
			v := out
			if e.Ret {
				v |= retClobber
			}
			seed(e.To, v)
		}
	}

	reported := map[int]uint32{}
	var regs []uint8
	for i := 0; i < p.n; i++ {
		if !p.executed(i) || !p.ok[i] {
			continue
		}
		avail := uint32(0)
		got := false
		for _, node := range [2]int{2 * i, 2*i + 1} {
			if p.reach[node] && seen[node] {
				avail |= in[node]
				got = true
			}
		}
		if !got {
			continue // reachable only from depth-only roots; no facts
		}
		regs = readRegs(p.insts[i], regs[:0])
		for _, r := range regs {
			bit := uint32(1) << r
			if avail&bit != 0 || reported[i]&bit != 0 {
				continue
			}
			reported[i] |= bit
			p.reportAt(SevWarning, "use-before-def", i,
				"r%d is read here but no path from the entry defines it first", r)
		}
	}
}

// readRegs appends the registers in reads, excluding the operands this pass
// must not flag: r0 (always zero), store data (flat prologues save
// callee-saved registers that are intentionally still unwritten), and
// nothing for the long formats and the Rd-only writers.
func readRegs(in isa.Inst, dst []uint8) []uint8 {
	if in.Op.Long() {
		return dst
	}
	switch in.Op {
	case isa.OpCALLINT, isa.OpGETPSW:
		return dst
	}
	if in.Rs1 != 0 {
		dst = append(dst, in.Rs1)
	}
	if !in.Imm && in.Rs2 != 0 {
		dst = append(dst, in.Rs2)
	}
	if in.IsReturn() && in.Rd != 0 {
		dst = append(dst, in.Rd)
	}
	return dst
}
