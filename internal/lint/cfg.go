package lint

import (
	"fmt"

	"risc1/internal/asm"
	"risc1/internal/cfg"
	"risc1/internal/isa"
)

// The analyzer's graph — two nodes per code word, slot nodes carrying the
// outer transfer's edges, min-call-depth worklist — lives in internal/cfg,
// shared with the interpreter's block engine. This file binds it to the
// image being linted: symbol-derived roots, the code/data split, and
// diagnostic plumbing.

// linkReg is r25, the link register of both calling conventions and the
// register the reset linkage preselects so `ret r25,#8` at depth 0 halts.
const linkReg = 25

// dataStartSym is the symbol both compiler back ends emit between code and
// data. Hand-written sources may define it to get the same split.
const dataStartSym = "__data_start"

const depthUnknown = cfg.DepthUnknown

// cfgEdge is the shared package's edge type; the pass files predate the
// extraction and keep the local name.
type cfgEdge = cfg.Edge

type program struct {
	img  *asm.Image
	opts Options
	g    *cfg.Program

	org     uint32
	insts   []isa.Inst
	ok      []bool
	n       int    // code words
	codeEnd uint32 // org + 4n
	imgEnd  uint32 // org + len(Bytes)

	// hasDataMark reports the image carries dataStartSym. Only then are
	// labels trusted as code roots: without the split, a label may name
	// data whose bytes happen to decode.
	hasDataMark bool
	labels      map[int]bool // word index carries at least one symbol

	reach    []bool // 2n node reachability
	minDepth []int  // 2n minimum known call depth; depthUnknown if none

	entryIdx int

	diags []Diagnostic
}

func newProgram(img *asm.Image, opts Options) *program {
	code := img.Bytes
	hasMark := false
	if ds, ok := img.Symbols[dataStartSym]; ok && ds >= img.Org && ds <= img.Org+uint32(len(img.Bytes)) {
		code = img.Bytes[:ds-img.Org]
		hasMark = true
	}
	insts, okv := isa.DecodeBlock(code)
	if len(insts) == 0 {
		return nil
	}
	g := cfg.New(img.Org, insts, okv)
	p := &program{
		img:         img,
		opts:        opts,
		g:           g,
		org:         img.Org,
		insts:       insts,
		ok:          okv,
		n:           g.N(),
		codeEnd:     g.CodeEnd(),
		imgEnd:      img.Org + uint32(len(img.Bytes)),
		hasDataMark: hasMark,
		labels:      map[int]bool{},
		entryIdx:    -1,
	}
	for name, a := range img.Symbols {
		if name == dataStartSym {
			continue
		}
		if idx, ok := p.indexOf(a); ok {
			p.labels[idx] = true
		}
	}
	if idx, ok := p.indexOf(img.Entry); ok && p.ok[idx] {
		p.entryIdx = idx
	} else {
		p.report(SevError, "cfg", img.Entry, 0,
			"entry point is not a decodable instruction inside the code segment")
	}
	return p
}

func (p *program) addrOf(idx int) uint32 { return p.g.AddrOf(idx) }

func (p *program) indexOf(addr uint32) (int, bool) { return p.g.IndexOf(addr) }

func (p *program) report(sev Severity, pass string, pc uint32, idx int, format string, args ...any) {
	d := Diagnostic{
		Severity: sev,
		Pass:     pass,
		PC:       pc,
		Line:     p.img.LineFor(pc),
		Message:  fmt.Sprintf(format, args...),
	}
	if idx >= 0 && idx < p.n && p.ok[idx] {
		d.Disasm = p.insts[idx].String()
	}
	p.diags = append(p.diags, d)
}

// reportAt is report with the PC derived from the word index.
func (p *program) reportAt(sev Severity, pass string, idx int, format string, args ...any) {
	p.report(sev, pass, p.addrOf(idx), idx, format, args...)
}

// delayed reports whether in owns a delay slot.
func delayed(in isa.Inst) bool { return cfg.Delayed(in) }

// targetAddr resolves a transfer's statically-known destination.
func (p *program) targetAddr(idx int, in isa.Inst) (uint32, bool) {
	return p.g.TargetAddr(idx, in)
}

// staticTarget is targetAddr projected onto a code-word index.
func (p *program) staticTarget(idx int, in isa.Inst) (int, bool) {
	return p.g.StaticTarget(idx, in)
}

// edges enumerates a node's static successors.
func (p *program) edges(node int) []cfgEdge { return p.g.Edges(node) }

// walk computes reachability and minimum call depth over the node graph.
// Roots: the entry at depth 0, plus — when the image marks its code/data
// split — every labeled code word at unknown depth (interrupt handlers and
// indirectly-called functions are reachable even when no static path shows
// it).
func (p *program) walk() {
	var roots []int
	if p.hasDataMark {
		for idx := range p.labels {
			roots = append(roots, idx)
		}
	}
	r := p.g.Walk(p.entryIdx, roots)
	p.reach, p.minDepth = r.Reach, r.MinDepth
}

// executed reports whether any mode of word idx is reachable.
func (p *program) executed(idx int) bool {
	return idx >= 0 && idx < p.n && (p.reach[2*idx] || p.reach[2*idx+1])
}
