package lint

import (
	"fmt"
	"math"

	"risc1/internal/asm"
	"risc1/internal/isa"
)

// The analyzer models delayed transfers with two nodes per code word i:
// N_i ("normal"), the instruction executing on its own, and S_i ("slot"),
// the same instruction executing as the delay slot of the transfer at i-1.
// The slot is always the next sequential word, so the pairing is unique and
// the whole graph fits in two flat arrays. Edges out of S_i are the
// *transfer's* edges — by the time the slot has executed, control moves to
// the transfer's target (or falls through, for an untaken conditional).
//
// Each node carries the minimum call depth at which the entry can reach it
// (CALL/CALLINT push a window, RET/RETINT pop one). Labeled roots — symbols
// analyzed as extra entry points when the image marks its code/data split —
// have no meaningful depth and propagate "unknown".

// linkReg is r25, the link register of both calling conventions and the
// register the reset linkage preselects so `ret r25,#8` at depth 0 halts.
const linkReg = 25

// dataStartSym is the symbol both compiler back ends emit between code and
// data. Hand-written sources may define it to get the same split.
const dataStartSym = "__data_start"

const depthUnknown = math.MaxInt

type program struct {
	img  *asm.Image
	opts Options

	org     uint32
	insts   []isa.Inst
	ok      []bool
	n       int    // code words
	codeEnd uint32 // org + 4n
	imgEnd  uint32 // org + len(Bytes)

	// hasDataMark reports the image carries dataStartSym. Only then are
	// labels trusted as code roots: without the split, a label may name
	// data whose bytes happen to decode.
	hasDataMark bool
	labels      map[int]bool // word index carries at least one symbol

	reach    []bool // 2n node reachability
	minDepth []int  // 2n minimum known call depth; depthUnknown if none

	entryIdx int

	diags []Diagnostic
}

func newProgram(img *asm.Image, opts Options) *program {
	code := img.Bytes
	hasMark := false
	if ds, ok := img.Symbols[dataStartSym]; ok && ds >= img.Org && ds <= img.Org+uint32(len(img.Bytes)) {
		code = img.Bytes[:ds-img.Org]
		hasMark = true
	}
	insts, okv := isa.DecodeBlock(code)
	if len(insts) == 0 {
		return nil
	}
	p := &program{
		img:         img,
		opts:        opts,
		org:         img.Org,
		insts:       insts,
		ok:          okv,
		n:           len(insts),
		codeEnd:     img.Org + uint32(4*len(insts)),
		imgEnd:      img.Org + uint32(len(img.Bytes)),
		hasDataMark: hasMark,
		labels:      map[int]bool{},
		entryIdx:    -1,
	}
	for name, a := range img.Symbols {
		if name == dataStartSym {
			continue
		}
		if idx, ok := p.indexOf(a); ok {
			p.labels[idx] = true
		}
	}
	if idx, ok := p.indexOf(img.Entry); ok && p.ok[idx] {
		p.entryIdx = idx
	} else {
		p.report(SevError, "cfg", img.Entry, 0,
			"entry point is not a decodable instruction inside the code segment")
	}
	return p
}

func (p *program) addrOf(idx int) uint32 { return p.org + uint32(4*idx) }

func (p *program) indexOf(addr uint32) (int, bool) {
	if addr < p.org || addr >= p.codeEnd || (addr-p.org)%4 != 0 {
		return 0, false
	}
	return int((addr - p.org) / 4), true
}

func (p *program) report(sev Severity, pass string, pc uint32, idx int, format string, args ...any) {
	d := Diagnostic{
		Severity: sev,
		Pass:     pass,
		PC:       pc,
		Line:     p.img.LineFor(pc),
		Message:  fmt.Sprintf(format, args...),
	}
	if idx >= 0 && idx < p.n && p.ok[idx] {
		d.Disasm = p.insts[idx].String()
	}
	p.diags = append(p.diags, d)
}

// reportAt is report with the PC derived from the word index.
func (p *program) reportAt(sev Severity, pass string, idx int, format string, args ...any) {
	p.report(sev, pass, p.addrOf(idx), idx, format, args...)
}

type cfgEdge struct {
	to     int  // node id (idx*2, +1 for slot)
	delta  int  // call-depth change along the edge
	ret    bool // call-return edge: the callee may rewrite arg/result registers
	callee bool // call-entry edge: crosses into another function
}

// delayed reports whether in owns a delay slot. Every control transfer does
// except CALLINT, which the hardware takes immediately (it is the trap
// entry path).
func delayed(in isa.Inst) bool {
	return in.Op.Transfers() && in.Op != isa.OpCALLINT
}

// targetAddr resolves a transfer's statically-known destination: the
// PC-relative long formats always, the register forms only when they name
// the constant-address idiom (r0 base + immediate).
func (p *program) targetAddr(idx int, in isa.Inst) (uint32, bool) {
	switch in.Op {
	case isa.OpJMPR, isa.OpCALLR:
		return p.addrOf(idx) + uint32(in.Imm19), true
	case isa.OpJMP, isa.OpCALL:
		if in.Rs1 == 0 && in.Imm {
			return uint32(in.Imm13), true
		}
	}
	return 0, false
}

// staticTarget is targetAddr projected onto a code-word index; it reports
// false for dynamic targets and for targets the branch-target pass flags.
func (p *program) staticTarget(idx int, in isa.Inst) (int, bool) {
	a, ok := p.targetAddr(idx, in)
	if !ok {
		return 0, false
	}
	return p.indexOf(a)
}

// edges enumerates a node's static successors. Nodes past either end and
// undecodable words have none.
func (p *program) edges(node int) []cfgEdge {
	idx, slot := node/2, node%2 == 1
	if idx >= p.n || !p.ok[idx] {
		return nil
	}
	in := p.insts[idx]
	if !slot {
		if delayed(in) {
			delta := 0
			switch {
			case in.IsCall():
				delta = 1
			case in.IsReturn():
				delta = -1
			}
			return []cfgEdge{{to: 2*(idx+1) + 1, delta: delta}}
		}
		delta := 0
		if in.Op == isa.OpCALLINT {
			delta = 1
		}
		return []cfgEdge{{to: 2 * (idx + 1), delta: delta}}
	}

	// Slot of the transfer at idx-1: control now moves where the transfer
	// decided. The depth at this node already reflects the window shift.
	t := p.insts[idx-1]
	var out []cfgEdge
	switch {
	case t.Op == isa.OpJMP || t.Op == isa.OpJMPR:
		if tidx, known := p.staticTarget(idx-1, t); known && t.Cond() != isa.CondNEV {
			out = append(out, cfgEdge{to: 2 * tidx})
		}
		if t.Cond() != isa.CondALW { // conditional (or never-taken): may fall through
			out = append(out, cfgEdge{to: 2 * (idx + 1)})
		}
	case t.IsCall():
		if tidx, known := p.staticTarget(idx-1, t); known {
			out = append(out, cfgEdge{to: 2 * tidx, callee: true})
		}
		// Assume the callee returns: back to the word after the slot, in
		// the caller's window.
		out = append(out, cfgEdge{to: 2 * (idx + 1), delta: -1, ret: true})
	case t.IsReturn():
		// Dynamic destination; no static successors.
	}
	return out
}

// walk computes reachability and minimum call depth over the node graph.
// Roots: the entry at depth 0, plus — when the image marks its code/data
// split — every labeled code word at unknown depth (interrupt handlers and
// indirectly-called functions are reachable even when no static path shows
// it). Depths only ever decrease, so the worklist terminates.
func (p *program) walk() {
	p.reach = make([]bool, 2*p.n)
	p.minDepth = make([]int, 2*p.n)
	for i := range p.minDepth {
		p.minDepth[i] = depthUnknown
	}
	var wl []int
	push := func(node, d int) {
		if node < 0 || node >= 2*p.n {
			return
		}
		changed := !p.reach[node]
		p.reach[node] = true
		if d != depthUnknown && d < p.minDepth[node] {
			p.minDepth[node] = d
			changed = true
		}
		if changed {
			wl = append(wl, node)
		}
	}
	if p.entryIdx >= 0 {
		push(2*p.entryIdx, 0)
	}
	if p.hasDataMark {
		for idx := range p.labels {
			push(2*idx, depthUnknown)
		}
	}
	for len(wl) > 0 {
		node := wl[len(wl)-1]
		wl = wl[:len(wl)-1]
		d := p.minDepth[node]
		for _, e := range p.edges(node) {
			nd := depthUnknown
			if d != depthUnknown {
				nd = d + e.delta
				if nd < 0 {
					nd = 0
				}
			}
			push(e.to, nd)
		}
	}
}

// executed reports whether any mode of word idx is reachable.
func (p *program) executed(idx int) bool {
	return idx >= 0 && idx < p.n && (p.reach[2*idx] || p.reach[2*idx+1])
}
