package area

import "testing"

func TestRISC1Calibration(t *testing.T) {
	m := RISC1(8)
	total := m.Total()
	// The published chip is about 44k transistors; the model should land
	// in the same ballpark.
	if total < 35000 || total > 55000 {
		t.Errorf("RISC I model total = %d transistors, want ~44k", total)
	}
	if f := m.ControlFraction(); f > 0.12 {
		t.Errorf("RISC I control fraction = %.1f%%, paper says ~6%%", 100*f)
	}
	if f := m.RegisterFileFraction(); f < 0.4 {
		t.Errorf("register file fraction = %.1f%%, should dominate", 100*f)
	}
}

func TestCXControlDominates(t *testing.T) {
	m := CX()
	if f := m.ControlFraction(); f < 0.35 {
		t.Errorf("CISC control fraction = %.1f%%, should be roughly half", 100*f)
	}
}

func TestPaperContrast(t *testing.T) {
	// The headline claim: RISC control fraction is several times smaller.
	r, c := RISC1(8).ControlFraction(), CX().ControlFraction()
	if c/r < 3 {
		t.Errorf("control contrast only %.1fx (risc %.1f%%, cisc %.1f%%)", c/r, 100*r, 100*c)
	}
}

func TestWindowScaling(t *testing.T) {
	// More windows, more register file, monotonically.
	prev := 0
	for _, w := range []int{4, 8, 16} {
		tot := RISC1(w).Total()
		if tot <= prev {
			t.Errorf("total with %d windows = %d, not increasing", w, tot)
		}
		prev = tot
	}
}
