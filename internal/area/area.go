// Package area models the silicon budget of the two machines at the
// transistor-count level, reproducing the paper's VLSI argument: a reduced
// instruction set needs so little control logic that the transistors saved
// can be spent on a large windowed register file, whereas a microcoded CISC
// spends half its chip on control.
//
// The RISC I numbers are calibrated to the published chip (about 44,000
// transistors, register file dominant, control around 6%); the CISC column
// is calibrated to a 68000-class microcoded design (control store around
// half the device). The model is deliberately simple — cell counts times
// transistors per cell — because that is the granularity of the paper's
// own floorplan figure.
package area

import "risc1/internal/isa"

// Transistor costs per cell, NMOS-era.
const (
	regCellT    = 6 // static dual-ported register bit
	aluBitT     = 160
	shifterBitT = 60 // barrel shifter column
	pcUnitT     = 1500
	pswT        = 600
	padsT       = 2000
	romBitT     = 1 // microcode ROM bit
	plaMinterm  = 2 // PLA product-term transistor cost per output
)

// Block is one floorplan region.
type Block struct {
	Name        string
	Transistors int
	Control     bool // counts toward the control fraction
}

// Model is a machine's transistor budget.
type Model struct {
	Machine string
	Blocks  []Block
}

// Total sums the budget.
func (m Model) Total() int {
	t := 0
	for _, b := range m.Blocks {
		t += b.Transistors
	}
	return t
}

// ControlFraction returns the share of transistors spent on control.
func (m Model) ControlFraction() float64 {
	c := 0
	for _, b := range m.Blocks {
		if b.Control {
			c += b.Transistors
		}
	}
	return float64(c) / float64(m.Total())
}

// RegisterFileFraction returns the share spent on the register file.
func (m Model) RegisterFileFraction() float64 {
	for _, b := range m.Blocks {
		if b.Name == "register file" {
			return float64(b.Transistors) / float64(m.Total())
		}
	}
	return 0
}

// RISC1 models the RISC I chip with the given number of register windows
// (8 reproduces the published 138-register, ~44k-transistor design).
func RISC1(windows int) Model {
	physRegs := isa.NumGlobalRegs + isa.WindowRegs*windows
	return Model{
		Machine: "RISC I",
		Blocks: []Block{
			{Name: "register file", Transistors: physRegs * 32 * regCellT},
			{Name: "ALU", Transistors: 32 * aluBitT},
			{Name: "shifter", Transistors: 32 * shifterBitT},
			{Name: "PC unit (3 PCs + incr)", Transistors: pcUnitT},
			{Name: "PSW and misc datapath", Transistors: pswT},
			// 31 fixed-format instructions decode in a small PLA: this
			// is the whole point.
			{Name: "instruction decode PLA", Transistors: 31 * 32 * plaMinterm, Control: true},
			{Name: "control sequencing", Transistors: 900, Control: true},
			{Name: "pads and buffers", Transistors: padsT},
		},
	}
}

// CX models a 68000-class microcoded CISC: a small register file and a
// control store that dwarfs it.
func CX() Model {
	const (
		microWords = 640 // microinstructions
		microBits  = 17
		nanoWords  = 336
		nanoBits   = 68
	)
	return Model{
		Machine: "CX (microcoded CISC)",
		Blocks: []Block{
			{Name: "register file", Transistors: 16 * 32 * regCellT},
			{Name: "ALU", Transistors: 32 * aluBitT},
			{Name: "shifter", Transistors: 32 * shifterBitT},
			{Name: "PC unit", Transistors: pcUnitT},
			{Name: "PSW and misc datapath", Transistors: pswT},
			// Variable-length decode and general operand specifiers need
			// a wide execution-unit datapath: temporaries, extra buses,
			// byte rotators.
			{Name: "execution-unit datapath", Transistors: 13000},
			{Name: "microcode ROM", Transistors: (microWords*microBits + nanoWords*nanoBits) * romBitT, Control: true},
			{Name: "microsequencer", Transistors: 3500, Control: true},
			{Name: "instruction decode", Transistors: 4500, Control: true},
			{Name: "pads and buffers", Transistors: padsT},
		},
	}
}
