package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"testing"
)

// benchPost issues one /v1/run and fails the benchmark on a non-200.
func benchPost(b *testing.B, client *http.Client, url string, req RunRequest) {
	b.Helper()
	raw, _ := json.Marshal(req)
	resp, err := client.Post(url+"/v1/run", "application/json", bytes.NewReader(raw))
	if err != nil {
		b.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		b.Fatalf("status %d: %s", resp.StatusCode, body)
	}
}

const benchSrc = `int main() { putint(6 * 7); return 0; }`

// BenchmarkServeRunCold measures the no-cache path: every request carries a
// distinct source, so each one pays compile + assemble + run.
func BenchmarkServeRunCold(b *testing.B) {
	s := New(Config{CacheEntries: -1})
	ts := httptest.NewServer(s)
	defer ts.Close()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		src := fmt.Sprintf("int main() { putint(%d); return 0; }", i)
		benchPost(b, ts.Client(), ts.URL, RunRequest{Source: src})
	}
}

// BenchmarkServeRunCached measures the steady state the cache exists for:
// identical source on every request, so only the first compiles.
func BenchmarkServeRunCached(b *testing.B) {
	s := New(Config{})
	ts := httptest.NewServer(s)
	defer ts.Close()
	benchPost(b, ts.Client(), ts.URL, RunRequest{Source: benchSrc}) // warm
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		benchPost(b, ts.Client(), ts.URL, RunRequest{Source: benchSrc})
	}
}

// benchCacheParallel hammers an imageCache with the serving layer's access
// pattern — overwhelmingly hits, spread over a working set of hot keys —
// from GOMAXPROCS goroutines. This isolates the cache's lock from the
// simulation cost, which is what the shards=1 vs shards=N comparison needs:
// under /v1/run traffic the lock cost hides inside run latency; here it IS
// the latency.
func benchCacheParallel(b *testing.B, nShards int) {
	c := newImageCache(DefaultCacheEntries, nShards)
	img := mustImage(b, benchSrc)
	const hotKeys = 64
	keys := make([]cacheKey, hotKeys)
	for i := range keys {
		keys[i] = imageKey("cm", 0, fmt.Sprint(i))
		c.add(keys[i], img)
	}
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		i := 0
		for pb.Next() {
			k := keys[i%hotKeys]
			i++
			if _, ok := c.get(k); !ok {
				c.add(k, img)
			}
		}
	})
}

// BenchmarkImageCacheParallelSingleLock is the pre-sharding layout: one
// mutex in front of every lookup. The CI capacity gate asserts the sharded
// variant beats this under parallel load.
func BenchmarkImageCacheParallelSingleLock(b *testing.B) { benchCacheParallel(b, 1) }

// BenchmarkImageCacheParallelSharded is the production layout
// (DefaultCacheShards lock stripes).
func BenchmarkImageCacheParallelSharded(b *testing.B) { benchCacheParallel(b, DefaultCacheShards) }

// BenchmarkServeRunParallel measures cached req/s with concurrent clients
// saturating the worker pool (RunParallel drives GOMAXPROCS client procs).
func BenchmarkServeRunParallel(b *testing.B) {
	s := New(Config{QueueDepth: 1 << 16}) // benchmark throughput, not shedding
	ts := httptest.NewServer(s)
	defer ts.Close()
	benchPost(b, ts.Client(), ts.URL, RunRequest{Source: benchSrc})
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			benchPost(b, ts.Client(), ts.URL, RunRequest{Source: benchSrc})
		}
	})
}
