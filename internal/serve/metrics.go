// Hand-rolled Prometheus-text-format metrics. The repo's no-dependency rule
// extends to the serving layer: the exposition format is simple enough that
// a mutex, a few maps and a fixed histogram cover everything riscd needs.
package serve

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"

	"risc1"
)

// latencyBuckets are the histogram upper bounds in seconds. Simulated runs
// span ~100µs (cache-hit fib) to whole seconds (cold matmul on CX), so the
// buckets cover that range log-ish.
var latencyBuckets = []float64{
	0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10,
}

// metrics aggregates the counters behind GET /metrics. One mutex guards it
// all: every operation is a handful of map/slice updates, far below the
// cost of the simulations being counted.
type metrics struct {
	mu        sync.Mutex
	requests  map[string]map[int]uint64 // endpoint → HTTP status → count
	bucketCnt []uint64                  // cumulative-style histogram counts per bucket
	latSum    float64
	latCount  uint64
	simInstrs uint64            // cumulative simulated instructions across all runs
	runs      map[string]uint64 // execution engine → /v1/run simulations started
	lintFound map[string]uint64 // severity → findings reported by /v1/lint

	// runEWMA is the recent mean wall-clock latency of run-endpoint
	// requests, as an exponentially weighted moving average (α=0.2, so
	// roughly the last dozen runs dominate). It feeds the adaptive
	// Retry-After hint: unlike latSum/latCount it forgets, which matters
	// when traffic shifts from cache-hot microbenchmarks to cold matmuls.
	runEWMA float64

	// streamEvents counts events emitted on /v1/run/stream, by event type.
	streamEvents map[string]uint64

	// Trace-tier counters across all /v1/run simulations: superblocks
	// compiled, guarded side exits taken, and traces dropped by stores
	// into their code.
	traceCompiled      uint64
	traceSideExits     uint64
	traceInvalidations uint64

	// Pipeline-model counters across all pipelined-target runs: runs by
	// control-transfer policy, plus the aggregate stall-cycle breakdown.
	pipelineRuns map[string]uint64 // policy → pipelined /v1/run simulations
	pipeLoadUse  uint64            // load-use interlock stall cycles
	pipeWindow   uint64            // window-trap drain stall cycles
	pipeMemPort  uint64            // shared-memory-port structural stall cycles
	pipeFlush    uint64            // squash-policy flush bubbles
	pipeCycles   uint64            // pipeline cycles retired

	// Shared-memory machine counters across all multi-core /v1/run
	// simulations: runs, total cores engaged, and interconnect-arbitration
	// cycles charged by the contention model.
	smpRuns       uint64
	smpCores      uint64
	smpContention uint64

	// Dynamic race-detector counters: /v1/run simulations that asked for
	// the detector, and the data races it reported across all of them.
	raceRuns  uint64
	raceFound uint64
}

func newMetrics() *metrics {
	return &metrics{
		requests:  map[string]map[int]uint64{},
		bucketCnt: make([]uint64, len(latencyBuckets)),
		runs:      map[string]uint64{},
		lintFound: map[string]uint64{},

		streamEvents: map[string]uint64{},
		pipelineRuns: map[string]uint64{},
	}
}

// observe records one finished HTTP request.
func (m *metrics) observe(endpoint string, status int, d time.Duration) {
	secs := d.Seconds()
	m.mu.Lock()
	defer m.mu.Unlock()
	byStatus, ok := m.requests[endpoint]
	if !ok {
		byStatus = map[int]uint64{}
		m.requests[endpoint] = byStatus
	}
	byStatus[status]++
	for i, ub := range latencyBuckets {
		if secs <= ub {
			m.bucketCnt[i]++
		}
	}
	m.latSum += secs
	m.latCount++
	if endpoint == "/v1/run" || endpoint == "/v1/run/stream" {
		if m.runEWMA == 0 {
			m.runEWMA = secs
		} else {
			m.runEWMA = 0.2*secs + 0.8*m.runEWMA
		}
	}
}

// recentRunSeconds reports the EWMA of run-endpoint latency; zero until the
// first run endpoint request completes.
func (m *metrics) recentRunSeconds() float64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.runEWMA
}

// addStreamEvents counts events emitted on one /v1/run/stream response.
func (m *metrics) addStreamEvents(kind string, n uint64) {
	if n == 0 {
		return
	}
	m.mu.Lock()
	m.streamEvents[kind] += n
	m.mu.Unlock()
}

// addLintFindings counts the analyzer's findings by severity.
func (m *metrics) addLintFindings(diags []risc1.Diagnostic) {
	if len(diags) == 0 {
		return
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	for _, d := range diags {
		m.lintFound[d.Severity.String()]++
	}
}

// addRun counts one /v1/run simulation by the engine it executed under.
func (m *metrics) addRun(engine string) {
	m.mu.Lock()
	m.runs[engine]++
	m.mu.Unlock()
}

// addSimInstructions accumulates simulated work done on behalf of requests.
func (m *metrics) addSimInstructions(n uint64) {
	m.mu.Lock()
	m.simInstrs += n
	m.mu.Unlock()
}

// addTraceStats accumulates one run's trace-tier activity.
func (m *metrics) addTraceStats(info *risc1.RunInfo) {
	if info.TracesCompiled == 0 && info.TraceSideExits == 0 && info.TraceInvalidations == 0 {
		return
	}
	m.mu.Lock()
	m.traceCompiled += info.TracesCompiled
	m.traceSideExits += info.TraceSideExits
	m.traceInvalidations += info.TraceInvalidations
	m.mu.Unlock()
}

// addPipelineStats accumulates one pipelined-target run's cycle-accurate
// counters. A nil info (any other target) is a no-op.
func (m *metrics) addPipelineStats(p *risc1.PipelineInfo) {
	if p == nil {
		return
	}
	m.mu.Lock()
	m.pipelineRuns[p.Policy]++
	m.pipeLoadUse += p.LoadUseStallCycles
	m.pipeWindow += p.WindowStallCycles
	m.pipeMemPort += p.MemPortStallCycles
	m.pipeFlush += p.FlushBubbleCycles
	m.pipeCycles += p.Cycles
	m.mu.Unlock()
}

// addSMPStats accumulates one multi-core run's machine counters. A nil info
// (a single-core run) is a no-op.
func (m *metrics) addSMPStats(si *risc1.SMPInfo) {
	if si == nil {
		return
	}
	m.mu.Lock()
	m.smpRuns++
	m.smpCores += uint64(si.Cores)
	m.smpContention += si.ContentionCycles
	m.mu.Unlock()
}

// addRaceStats counts one race-detector run and its findings. Call it only
// for runs that requested the detector.
func (m *metrics) addRaceStats(races int) {
	m.mu.Lock()
	m.raceRuns++
	m.raceFound += uint64(races)
	m.mu.Unlock()
}

// gauges are sampled at render time so /metrics always reflects the live
// queue and pool state rather than a counter updated on a schedule.
type gauges struct {
	queueDepth    int
	inflight      int
	streamsActive int
	cacheHits     uint64
	cacheMisses   uint64
	cacheEntries  int
	cacheShards   []shardStat
}

// render writes the Prometheus text exposition. Output is deterministic
// (labels sorted) so tests can assert on substrings without flaking.
func (m *metrics) render(g gauges) string {
	m.mu.Lock()
	defer m.mu.Unlock()

	var b strings.Builder
	b.WriteString("# HELP riscd_requests_total HTTP requests served, by endpoint and status.\n")
	b.WriteString("# TYPE riscd_requests_total counter\n")
	endpoints := make([]string, 0, len(m.requests))
	for ep := range m.requests {
		endpoints = append(endpoints, ep)
	}
	sort.Strings(endpoints)
	for _, ep := range endpoints {
		statuses := make([]int, 0, len(m.requests[ep]))
		for st := range m.requests[ep] {
			statuses = append(statuses, st)
		}
		sort.Ints(statuses)
		for _, st := range statuses {
			fmt.Fprintf(&b, "riscd_requests_total{endpoint=%q,status=\"%d\"} %d\n",
				ep, st, m.requests[ep][st])
		}
	}

	b.WriteString("# HELP riscd_request_duration_seconds HTTP request latency.\n")
	b.WriteString("# TYPE riscd_request_duration_seconds histogram\n")
	for i, ub := range latencyBuckets {
		fmt.Fprintf(&b, "riscd_request_duration_seconds_bucket{le=\"%g\"} %d\n", ub, m.bucketCnt[i])
	}
	fmt.Fprintf(&b, "riscd_request_duration_seconds_bucket{le=\"+Inf\"} %d\n", m.latCount)
	fmt.Fprintf(&b, "riscd_request_duration_seconds_sum %g\n", m.latSum)
	fmt.Fprintf(&b, "riscd_request_duration_seconds_count %d\n", m.latCount)

	b.WriteString("# HELP riscd_queue_depth Requests admitted but waiting for a worker.\n")
	b.WriteString("# TYPE riscd_queue_depth gauge\n")
	fmt.Fprintf(&b, "riscd_queue_depth %d\n", g.queueDepth)

	b.WriteString("# HELP riscd_inflight_runs Requests holding a worker slot.\n")
	b.WriteString("# TYPE riscd_inflight_runs gauge\n")
	fmt.Fprintf(&b, "riscd_inflight_runs %d\n", g.inflight)

	b.WriteString("# HELP riscd_image_cache_hits_total Compiled-image cache hits.\n")
	b.WriteString("# TYPE riscd_image_cache_hits_total counter\n")
	fmt.Fprintf(&b, "riscd_image_cache_hits_total %d\n", g.cacheHits)

	b.WriteString("# HELP riscd_image_cache_misses_total Compiled-image cache misses.\n")
	b.WriteString("# TYPE riscd_image_cache_misses_total counter\n")
	fmt.Fprintf(&b, "riscd_image_cache_misses_total %d\n", g.cacheMisses)

	b.WriteString("# HELP riscd_image_cache_entries Compiled images currently cached.\n")
	b.WriteString("# TYPE riscd_image_cache_entries gauge\n")
	fmt.Fprintf(&b, "riscd_image_cache_entries %d\n", g.cacheEntries)

	b.WriteString("# HELP riscd_image_cache_shard_hits_total Compiled-image cache hits, by lock stripe.\n")
	b.WriteString("# TYPE riscd_image_cache_shard_hits_total counter\n")
	for i, sh := range g.cacheShards {
		fmt.Fprintf(&b, "riscd_image_cache_shard_hits_total{shard=\"%d\"} %d\n", i, sh.hits)
	}
	b.WriteString("# HELP riscd_image_cache_shard_misses_total Compiled-image cache misses, by lock stripe.\n")
	b.WriteString("# TYPE riscd_image_cache_shard_misses_total counter\n")
	for i, sh := range g.cacheShards {
		fmt.Fprintf(&b, "riscd_image_cache_shard_misses_total{shard=\"%d\"} %d\n", i, sh.misses)
	}
	b.WriteString("# HELP riscd_image_cache_shard_entries Compiled images currently cached, by lock stripe.\n")
	b.WriteString("# TYPE riscd_image_cache_shard_entries gauge\n")
	for i, sh := range g.cacheShards {
		fmt.Fprintf(&b, "riscd_image_cache_shard_entries{shard=\"%d\"} %d\n", i, sh.entries)
	}

	b.WriteString("# HELP riscd_stream_active Streaming runs with an open /v1/run/stream connection.\n")
	b.WriteString("# TYPE riscd_stream_active gauge\n")
	fmt.Fprintf(&b, "riscd_stream_active %d\n", g.streamsActive)

	b.WriteString("# HELP riscd_stream_events_total Events emitted on /v1/run/stream, by event type.\n")
	b.WriteString("# TYPE riscd_stream_events_total counter\n")
	kinds := make([]string, 0, len(m.streamEvents))
	for k := range m.streamEvents {
		kinds = append(kinds, k)
	}
	sort.Strings(kinds)
	for _, k := range kinds {
		fmt.Fprintf(&b, "riscd_stream_events_total{type=%q} %d\n", k, m.streamEvents[k])
	}

	b.WriteString("# HELP riscd_runs_total Simulations executed for /v1/run, by execution engine.\n")
	b.WriteString("# TYPE riscd_runs_total counter\n")
	engines := make([]string, 0, len(m.runs))
	for e := range m.runs {
		engines = append(engines, e)
	}
	sort.Strings(engines)
	for _, e := range engines {
		fmt.Fprintf(&b, "riscd_runs_total{engine=%q} %d\n", e, m.runs[e])
	}

	b.WriteString("# HELP riscd_simulated_instructions_total Guest instructions simulated for /v1/run.\n")
	b.WriteString("# TYPE riscd_simulated_instructions_total counter\n")
	fmt.Fprintf(&b, "riscd_simulated_instructions_total %d\n", m.simInstrs)

	b.WriteString("# HELP riscd_trace_compiled_total Hot-path superblocks compiled by the trace tier.\n")
	b.WriteString("# TYPE riscd_trace_compiled_total counter\n")
	fmt.Fprintf(&b, "riscd_trace_compiled_total %d\n", m.traceCompiled)

	b.WriteString("# HELP riscd_trace_side_exits_total Guarded side exits taken out of compiled traces.\n")
	b.WriteString("# TYPE riscd_trace_side_exits_total counter\n")
	fmt.Fprintf(&b, "riscd_trace_side_exits_total %d\n", m.traceSideExits)

	b.WriteString("# HELP riscd_trace_invalidations_total Compiled traces dropped by stores into their code.\n")
	b.WriteString("# TYPE riscd_trace_invalidations_total counter\n")
	fmt.Fprintf(&b, "riscd_trace_invalidations_total %d\n", m.traceInvalidations)

	b.WriteString("# HELP riscd_pipeline_runs_total Pipelined-target /v1/run simulations, by control-transfer policy.\n")
	b.WriteString("# TYPE riscd_pipeline_runs_total counter\n")
	policies := make([]string, 0, len(m.pipelineRuns))
	for p := range m.pipelineRuns {
		policies = append(policies, p)
	}
	sort.Strings(policies)
	for _, p := range policies {
		fmt.Fprintf(&b, "riscd_pipeline_runs_total{policy=%q} %d\n", p, m.pipelineRuns[p])
	}

	b.WriteString("# HELP riscd_pipeline_cycles_total Cycles retired by the pipeline model for /v1/run.\n")
	b.WriteString("# TYPE riscd_pipeline_cycles_total counter\n")
	fmt.Fprintf(&b, "riscd_pipeline_cycles_total %d\n", m.pipeCycles)

	b.WriteString("# HELP riscd_pipeline_stall_cycles_total Pipeline stall cycles for /v1/run, by cause.\n")
	b.WriteString("# TYPE riscd_pipeline_stall_cycles_total counter\n")
	fmt.Fprintf(&b, "riscd_pipeline_stall_cycles_total{cause=\"flush\"} %d\n", m.pipeFlush)
	fmt.Fprintf(&b, "riscd_pipeline_stall_cycles_total{cause=\"load_use\"} %d\n", m.pipeLoadUse)
	fmt.Fprintf(&b, "riscd_pipeline_stall_cycles_total{cause=\"mem_port\"} %d\n", m.pipeMemPort)
	fmt.Fprintf(&b, "riscd_pipeline_stall_cycles_total{cause=\"window\"} %d\n", m.pipeWindow)

	b.WriteString("# HELP riscd_smp_runs_total Multi-core /v1/run simulations on the shared-memory machine.\n")
	b.WriteString("# TYPE riscd_smp_runs_total counter\n")
	fmt.Fprintf(&b, "riscd_smp_runs_total %d\n", m.smpRuns)

	b.WriteString("# HELP riscd_smp_cores_total Cores engaged across multi-core /v1/run simulations.\n")
	b.WriteString("# TYPE riscd_smp_cores_total counter\n")
	fmt.Fprintf(&b, "riscd_smp_cores_total %d\n", m.smpCores)

	b.WriteString("# HELP riscd_smp_contention_cycles_total Interconnect-arbitration cycles charged by the contention model.\n")
	b.WriteString("# TYPE riscd_smp_contention_cycles_total counter\n")
	fmt.Fprintf(&b, "riscd_smp_contention_cycles_total %d\n", m.smpContention)

	b.WriteString("# HELP riscd_race_runs_total /v1/run simulations under the dynamic race detector.\n")
	b.WriteString("# TYPE riscd_race_runs_total counter\n")
	fmt.Fprintf(&b, "riscd_race_runs_total %d\n", m.raceRuns)

	b.WriteString("# HELP riscd_races_found_total Data races reported by the dynamic detector across all runs.\n")
	b.WriteString("# TYPE riscd_races_found_total counter\n")
	fmt.Fprintf(&b, "riscd_races_found_total %d\n", m.raceFound)

	b.WriteString("# HELP riscd_lint_findings_total Static-analyzer findings reported by /v1/lint, by severity.\n")
	b.WriteString("# TYPE riscd_lint_findings_total counter\n")
	sevs := make([]string, 0, len(m.lintFound))
	for sev := range m.lintFound {
		sevs = append(sevs, sev)
	}
	sort.Strings(sevs)
	for _, sev := range sevs {
		fmt.Fprintf(&b, "riscd_lint_findings_total{severity=%q} %d\n", sev, m.lintFound[sev])
	}
	return b.String()
}
