package serve

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"runtime"
	"strings"
	"testing"
	"time"
)

// sseEvent is one parsed Server-Sent Event.
type sseEvent struct {
	name string
	data []byte
}

// nextSSE reads one event off the wire, blocking until the server flushes
// it — which is what lets tests observe liveness, not just final content.
func nextSSE(br *bufio.Reader) (sseEvent, error) {
	var ev sseEvent
	for {
		line, err := br.ReadString('\n')
		if err != nil {
			return ev, err
		}
		line = strings.TrimRight(line, "\n")
		switch {
		case strings.HasPrefix(line, "event: "):
			ev.name = strings.TrimPrefix(line, "event: ")
		case strings.HasPrefix(line, "data: "):
			ev.data = []byte(strings.TrimPrefix(line, "data: "))
		case line == "" && ev.name != "":
			return ev, nil
		}
	}
}

// readAllSSE drains a stream to EOF.
func readAllSSE(t *testing.T, r io.Reader) []sseEvent {
	t.Helper()
	br := bufio.NewReader(r)
	var out []sseEvent
	for {
		ev, err := nextSSE(br)
		if err == io.EOF {
			return out
		}
		if err != nil {
			t.Fatalf("stream read: %v (after %d events)", err, len(out))
		}
		out = append(out, ev)
	}
}

// postStream opens a /v1/run/stream response without consuming the body.
func postStream(t *testing.T, ctx context.Context, url string, req RunRequest) *http.Response {
	t.Helper()
	raw, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	hr, err := http.NewRequestWithContext(ctx, http.MethodPost,
		url+"/v1/run/stream", bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	hr.Header.Set("Content-Type", "application/json")
	resp, err := http.DefaultClient.Do(hr)
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

// TestStreamRun pins the happy-path event protocol: start first (with the
// cache flag and the server's sampling interval), console chunks that
// reassemble the full output, one terminal result event, nothing after it —
// and a cache hit flagged on the repeat request.
func TestStreamRun(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	for round, wantCached := range []bool{false, true} {
		resp := postStream(t, context.Background(), ts.URL, RunRequest{Source: fibSrc})
		if resp.StatusCode != http.StatusOK {
			raw, _ := io.ReadAll(resp.Body)
			resp.Body.Close()
			t.Fatalf("round %d: status %d\n%s", round, resp.StatusCode, raw)
		}
		if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
			t.Fatalf("Content-Type = %q", ct)
		}
		events := readAllSSE(t, resp.Body)
		resp.Body.Close()
		if len(events) < 2 {
			t.Fatalf("round %d: only %d events", round, len(events))
		}
		if events[0].name != "start" {
			t.Fatalf("round %d: first event %q, want start", round, events[0].name)
		}
		var start StreamStart
		if err := json.Unmarshal(events[0].data, &start); err != nil {
			t.Fatal(err)
		}
		if start.Cached != wantCached {
			t.Errorf("round %d: cached = %v, want %v", round, start.Cached, wantCached)
		}
		if start.IntervalMS != DefaultStreamInterval.Milliseconds() {
			t.Errorf("round %d: interval %dms, want %v", round, start.IntervalMS, DefaultStreamInterval)
		}
		last := events[len(events)-1]
		if last.name != "result" {
			t.Fatalf("round %d: terminal event %q, want result", round, last.name)
		}
		var res StreamResult
		if err := json.Unmarshal(last.data, &res); err != nil {
			t.Fatal(err)
		}
		if res.Instructions == 0 || res.Cycles == 0 {
			t.Errorf("round %d: empty result stats: %+v", round, res)
		}
		var console strings.Builder
		for _, ev := range events[1 : len(events)-1] {
			switch ev.name {
			case "console":
				var c StreamConsole
				if err := json.Unmarshal(ev.data, &c); err != nil {
					t.Fatal(err)
				}
				console.WriteString(c.Chunk)
			case "stats":
			default:
				t.Errorf("round %d: unexpected mid-stream event %q", round, ev.name)
			}
		}
		if console.String() != "55" {
			t.Errorf("round %d: streamed console %q, want 55", round, console.String())
		}
	}

	_, raw := getBody(t, ts.URL+"/metrics")
	text := string(raw)
	for _, want := range []string{
		`riscd_stream_events_total{type="start"} 2`,
		`riscd_stream_events_total{type="result"} 2`,
		`riscd_stream_events_total{type="console"} `,
		"riscd_stream_active 0",
		`riscd_requests_total{endpoint="/v1/run/stream",status="200"} 2`,
	} {
		if !strings.Contains(text, want) {
			t.Errorf("metrics missing %q:\n%s", want, text)
		}
	}
}

// spinSrc prints early, then grinds long enough that a watcher provably
// overlaps the run: first output must arrive while the simulation is still
// in flight.
const spinSrc = `
int main() {
    int i;
    putint(1);
    i = 0;
    while (i < 400000) { i = i + 1; }
    putint(2);
    return 0;
}`

// printLoopAsm prints one value, then loops forever: output exists while
// the run provably cannot have completed.
const printLoopAsm = "main: add r0,#6,r10\n stl r10,(r0)#-252\n loop: jmpr alw,loop\n nop\n"

// TestStreamLiveBeforeCompletion is the acceptance criterion for liveness:
// the first console event is delivered while the run still holds a worker
// slot. The guest prints then spins forever, so any console event on the
// wire is by construction mid-run; the inflight/stream gauges confirm it,
// stats frames keep sampling the grind, and hanging up ends the run.
func TestStreamLiveBeforeCompletion(t *testing.T) {
	_, ts := newTestServer(t, Config{
		StreamInterval: 5 * time.Millisecond, Timeout: 60 * time.Second,
	})
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	resp := postStream(t, ctx, ts.URL, RunRequest{Source: printLoopAsm, Lang: "asm"})
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	br := bufio.NewReader(resp.Body)
	var sawConsole bool
	var statsFrames int
	for !sawConsole || statsFrames == 0 {
		ev, err := nextSSE(br)
		if err != nil {
			t.Fatalf("stream ended early: %v", err)
		}
		switch ev.name {
		case "console":
			if sawConsole {
				break
			}
			sawConsole = true
			var c StreamConsole
			if err := json.Unmarshal(ev.data, &c); err != nil {
				t.Fatal(err)
			}
			if c.Chunk != "6" {
				t.Errorf("chunk %q, want 6", c.Chunk)
			}
			// First output is on the wire; the infinite run is still going.
			_, raw := getBody(t, ts.URL+"/metrics")
			text := string(raw)
			if v := metricValue(t, text, "riscd_inflight_runs"); v < 1 {
				t.Errorf("inflight = %v with the run mid-flight, want >= 1", v)
			}
			if v := metricValue(t, text, "riscd_stream_active"); v != 1 {
				t.Errorf("riscd_stream_active = %v mid-stream, want 1", v)
			}
		case "stats":
			statsFrames++
			var f StreamStats
			if err := json.Unmarshal(ev.data, &f); err != nil {
				t.Fatal(err)
			}
			if f.Instructions == 0 && f.Cycles == 0 {
				t.Error("empty stats frame")
			}
		case "result", "error":
			t.Fatalf("infinite run terminated itself: %s %s", ev.name, ev.data)
		}
	}
}

// TestStreamSamplingInterval checks the server controls the frame rate: the
// number of stats frames is bounded by elapsed/interval (plus slack), no
// matter how many batch boundaries the run crosses.
func TestStreamSamplingInterval(t *testing.T) {
	const interval = 20 * time.Millisecond
	_, ts := newTestServer(t, Config{StreamInterval: interval})
	begin := time.Now()
	resp := postStream(t, context.Background(), ts.URL, RunRequest{Source: spinSrc})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	events := readAllSSE(t, resp.Body)
	resp.Body.Close()
	elapsed := time.Since(begin)

	frames := 0
	for _, ev := range events {
		if ev.name == "stats" {
			frames++
		}
	}
	// The run crosses ~100k batch boundaries; only the sampling interval
	// keeps the frame count near elapsed/interval.
	if maxFrames := int(elapsed/interval) + 2; frames > maxFrames {
		t.Errorf("%d stats frames in %v at a %v interval (max %d): sampling not honored",
			frames, elapsed, interval, maxFrames)
	}
}

// TestStreamTruncationFlag runs a console-flooding guest over the stream:
// the wire carries more than the server's 1 MiB retention cap (live
// watchers see everything), while the terminal event still flags that the
// buffered copy was truncated.
func TestStreamTruncationFlag(t *testing.T) {
	src := `
int main() {
    int i;
    for (i = 0; i < 300000; i = i + 1) putint(1234567);
    return 0;
}`
	_, ts := newTestServer(t, Config{Timeout: 60 * time.Second, MaxCycles: 400_000_000})
	resp := postStream(t, context.Background(), ts.URL, RunRequest{Source: src})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	events := readAllSSE(t, resp.Body)
	resp.Body.Close()

	var streamed int
	for _, ev := range events[1 : len(events)-1] {
		if ev.name == "console" {
			var c StreamConsole
			if err := json.Unmarshal(ev.data, &c); err != nil {
				t.Fatal(err)
			}
			streamed += len(c.Chunk)
		}
	}
	last := events[len(events)-1]
	if last.name != "result" {
		t.Fatalf("terminal event %q: %s", last.name, last.data)
	}
	var res StreamResult
	if err := json.Unmarshal(last.data, &res); err != nil {
		t.Fatal(err)
	}
	if !res.ConsoleTruncated {
		t.Error("console_truncated = false for a flooding guest")
	}
	if streamed <= 1<<20 {
		t.Errorf("stream carried %d bytes, want more than the 1 MiB buffered cap", streamed)
	}
}

// TestStreamDisconnectCancelsRun is the watcher-goes-away contract: closing
// the client connection mid-run cancels the simulation, frees the worker
// slot, and leaks no goroutines. Meaningful under -race.
func TestStreamDisconnectCancelsRun(t *testing.T) {
	before := runtime.NumGoroutine()
	s, ts := newTestServer(t, Config{Workers: 1, Timeout: 60 * time.Second})

	ctx, cancel := context.WithCancel(context.Background())
	resp := postStream(t, ctx, ts.URL, RunRequest{Source: loopAsm, Lang: "asm"})
	br := bufio.NewReader(resp.Body)
	if ev, err := nextSSE(br); err != nil || ev.name != "start" {
		t.Fatalf("first event %q, err %v", ev.name, err)
	}
	// The infinite loop now owns the only worker. Hang up.
	cancel()
	resp.Body.Close()

	deadline := time.Now().Add(5 * time.Second)
	for {
		_, raw := getBody(t, ts.URL+"/metrics")
		text := string(raw)
		if metricValue(t, text, "riscd_inflight_runs") == 0 &&
			metricValue(t, text, "riscd_stream_active") == 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("disconnect did not cancel the streamed run")
		}
		time.Sleep(5 * time.Millisecond)
	}

	// The freed worker must be usable immediately.
	r2, raw := postJSON(t, ts.URL+"/v1/run", RunRequest{Source: fibSrc})
	if r2.StatusCode != http.StatusOK {
		t.Fatalf("run after disconnect: status %d\n%s", r2.StatusCode, raw)
	}

	ts.Close()
	s.CancelRuns()
	deadline = time.Now().Add(5 * time.Second)
	for {
		runtime.GC()
		if n := runtime.NumGoroutine(); n <= before+3 {
			break
		} else if time.Now().After(deadline) {
			buf := make([]byte, 1<<16)
			t.Fatalf("goroutines: %d before, %d after\n%s",
				before, runtime.NumGoroutine(), buf[:runtime.Stack(buf, true)])
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// TestStreamBadInput pins that failures before the stream starts are still
// ordinary JSON errors, not half-open event streams.
func TestStreamBadInput(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	resp, raw := postJSON(t, ts.URL+"/v1/run/stream", RunRequest{Source: "int main( {"})
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("compile error: status %d\n%s", resp.StatusCode, raw)
	}
	if d := decodeError(t, raw); d.Code != "compile_error" {
		t.Errorf("code = %q, want compile_error", d.Code)
	}
	resp, raw = postJSON(t, ts.URL+"/v1/run/stream", RunRequest{Source: ""})
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("empty source: status %d\n%s", resp.StatusCode, raw)
	}
}

// TestStreamErrorEvent pins the in-stream failure contract: a run that dies
// after the stream opened ends with a typed "error" event.
func TestStreamErrorEvent(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	resp := postStream(t, context.Background(), ts.URL,
		RunRequest{Source: loopAsm, Lang: "asm", MaxCycles: 1000})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	events := readAllSSE(t, resp.Body)
	resp.Body.Close()
	last := events[len(events)-1]
	if last.name != "error" {
		t.Fatalf("terminal event %q, want error: %s", last.name, last.data)
	}
	var d ErrorDetail
	if err := json.Unmarshal(last.data, &d); err != nil {
		t.Fatal(err)
	}
	if d.Code != "cycle_limit" || d.Cycle != 1000 {
		t.Errorf("error detail %+v, want cycle_limit at cycle 1000", d)
	}
}

// TestQueueDepthGauge pins the explicit queued counter: with the single
// worker pinned, admitted-but-waiting requests are visible in
// riscd_queue_depth and the gauge returns to zero when they finish. The old
// len(slots)-len(active) derivation raced both ticket takes.
func TestQueueDepthGauge(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1, QueueDepth: 2, Timeout: 30 * time.Second})

	// Pin the worker.
	pinned := make(chan struct{})
	go func() {
		defer close(pinned)
		postJSON(t, ts.URL+"/v1/run", RunRequest{Source: loopAsm, Lang: "asm", TimeoutMS: 1000})
	}()
	waitFor := func(metric string, want float64) {
		t.Helper()
		deadline := time.Now().Add(5 * time.Second)
		for {
			_, raw := getBody(t, ts.URL+"/metrics")
			if metricValue(t, string(raw), metric) == want {
				return
			}
			if time.Now().After(deadline) {
				t.Fatalf("%s never reached %v", metric, want)
			}
			time.Sleep(5 * time.Millisecond)
		}
	}
	waitFor("riscd_inflight_runs", 1)

	// Two more requests queue behind it.
	done := make(chan struct{}, 2)
	for i := 0; i < 2; i++ {
		go func() {
			defer func() { done <- struct{}{} }()
			postJSON(t, ts.URL+"/v1/run", RunRequest{Source: fibSrc})
		}()
	}
	waitFor("riscd_queue_depth", 2)

	<-pinned
	<-done
	<-done
	waitFor("riscd_queue_depth", 0)
	waitFor("riscd_inflight_runs", 0)
}

// TestRetryAfterAdaptive unit-tests the 429 hint arithmetic directly.
func TestRetryAfterAdaptive(t *testing.T) {
	s := New(Config{Workers: 2, Timeout: 10 * time.Second})
	ceiling := 11 // timeout + 1

	// Cold histogram: fall back to the static ceiling.
	if got := s.retryAfterSeconds(); got != ceiling {
		t.Errorf("cold: %d, want %d", got, ceiling)
	}

	set := func(ewma float64, queued int64) {
		s.met.mu.Lock()
		s.met.runEWMA = ewma
		s.met.mu.Unlock()
		s.queued.Store(queued)
	}

	// 3 queued + this one = 2 waves of 2 workers at 2s each.
	set(2.0, 3)
	if got := s.retryAfterSeconds(); got != 4 {
		t.Errorf("2s mean, 3 queued: %d, want 4", got)
	}
	// Fast runs, empty queue: floor at one second.
	set(0.001, 0)
	if got := s.retryAfterSeconds(); got != 1 {
		t.Errorf("fast runs: %d, want floor 1", got)
	}
	// Slow runs, deep queue: capped at the static ceiling.
	set(30.0, 8)
	if got := s.retryAfterSeconds(); got != ceiling {
		t.Errorf("slow backlog: %d, want cap %d", got, ceiling)
	}
}

// TestRetryAfterOnWire checks the adaptive hint reaches the 429 header and
// respects the bounds end to end.
func TestRetryAfterOnWire(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1, QueueDepth: -1, Timeout: 5 * time.Second})

	// Warm the run-latency EWMA with a fast run.
	if resp, raw := postJSON(t, ts.URL+"/v1/run", RunRequest{Source: fibSrc}); resp.StatusCode != 200 {
		t.Fatalf("warm run: %d\n%s", resp.StatusCode, raw)
	}

	blocked := make(chan struct{})
	go func() {
		defer close(blocked)
		postJSON(t, ts.URL+"/v1/run", RunRequest{Source: loopAsm, Lang: "asm", TimeoutMS: 1500})
	}()
	deadline := time.Now().Add(3 * time.Second)
	for {
		_, raw := getBody(t, ts.URL+"/metrics")
		if metricValue(t, string(raw), "riscd_inflight_runs") >= 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("loop never occupied the worker")
		}
		time.Sleep(5 * time.Millisecond)
	}

	resp, _ := postJSON(t, ts.URL+"/v1/run", RunRequest{Source: fibSrc})
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("status %d, want 429", resp.StatusCode)
	}
	var ra int
	if _, err := fmt.Sscan(resp.Header.Get("Retry-After"), &ra); err != nil {
		t.Fatalf("Retry-After %q: %v", resp.Header.Get("Retry-After"), err)
	}
	// Mean run latency is ~ms and nothing is queued: the adaptive hint must
	// be near the floor, not the old static timeout+1.
	if ra < 1 || ra > 2 {
		t.Errorf("Retry-After = %d, want 1-2 (adaptive, not static %d)", ra, 6)
	}
	<-blocked
}
