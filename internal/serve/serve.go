// Package serve is riscd's simulation-as-a-service layer: an HTTP/JSON API
// over the risc1 facade with the properties a long-lived, heavily-loaded
// process needs and a library call does not — admission control with load
// shedding, server-enforced cycle and wall-clock budgets on every run, a
// compiled-image cache so repeat traffic skips the compiler, and Prometheus
// metrics to prove all of it.
//
// The design follows the paper's thesis applied to serving: spend the budget
// on the common fast path. The common case for benchmark traffic is
// compile-once, run-many — so the unit of caching is the compiled Image,
// keyed by a content hash of (lang, target, source), and a cache hit turns a
// request into pure simulation. Everything else is bounded: a request beyond
// pool+queue capacity is refused immediately with 429 instead of growing a
// goroutine pile, and a guest program that loops forever dies at the cycle
// budget or the deadline, whichever lands first.
package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math"
	"net/http"
	"runtime"
	"strings"
	"sync/atomic"
	"time"

	"risc1"
	"risc1/internal/prog"
)

// Defaults applied by Config.withDefaults.
const (
	// DefaultTimeout bounds one run's wall clock. Cached fib completes in
	// ~10ms; ten seconds is two orders of magnitude of headroom.
	DefaultTimeout = 10 * time.Second
	// DefaultMaxCores caps the shared-memory machine size a request may ask
	// for. Eight covers the whole E12 scalability sweep while keeping one
	// request's CPU appetite bounded.
	DefaultMaxCores = 8
	// DefaultCacheEntries sizes the compiled-image LRU. A full benchmark
	// suite across all three targets is ~40 images; 256 leaves room for
	// many distinct user programs before anything hot is evicted.
	DefaultCacheEntries = 256
	// DefaultCacheShards is how many lock stripes the image LRU splits
	// into. Eight independent locks keep cache lookups off the serialization
	// path for worker pools up to well past that size (a lookup holds its
	// stripe for tens of nanoseconds), while keeping per-shard LRU lists
	// long enough that striping does not meaningfully change eviction.
	DefaultCacheShards = 8
	// DefaultStreamInterval is how often /v1/run/stream samples a stats
	// frame. 100ms is fast enough to feel live and slow enough that frame
	// traffic never competes with console output.
	DefaultStreamInterval = 100 * time.Millisecond
	// maxBodyBytes caps a request body; the largest suite benchmark is
	// ~4 KiB of source, so 1 MiB is generous.
	maxBodyBytes = 1 << 20
)

// Experimenter renders one experiment table by ID. *risc1.Lab implements it
// with an in-process singleflight run cache; the interface is the
// horizontal-scale-out seam — multiple riscd processes behind a load
// balancer can inject an implementation that shares one lab (or partitions
// experiment IDs across processes) instead of each duplicating every
// simulation.
type Experimenter interface {
	Experiment(id string) (string, error)
}

// Config sizes a Server.
type Config struct {
	// Workers is the number of simulations run concurrently
	// (default GOMAXPROCS).
	Workers int
	// QueueDepth is how many admitted requests may wait for a worker
	// beyond the Workers already running (default 4×Workers; negative
	// means no queue — admission is the worker pool alone).
	QueueDepth int
	// MaxCycles is the per-run cycle budget ceiling and default
	// (default risc1.DefaultMaxCycles). Requests may lower it, never
	// raise it.
	MaxCycles uint64
	// Timeout is the per-run wall-clock deadline ceiling and default
	// (default DefaultTimeout). Requests may lower it, never raise it.
	Timeout time.Duration
	// CacheEntries sizes the compiled-image LRU (default
	// DefaultCacheEntries; negative disables caching).
	CacheEntries int
	// CacheShards is how many lock stripes the image LRU splits into
	// (default DefaultCacheShards; 1 gives the single-lock layout, which
	// the parallel cache benchmark uses as its baseline).
	CacheShards int
	// MaxCores caps RunRequest.Cores (default DefaultMaxCores; never above
	// risc1.MaxCores). Negative disables multi-core runs entirely.
	MaxCores int
	// StreamInterval is the sampling interval for /v1/run/stream stats
	// frames (default DefaultStreamInterval). Server-controlled so a
	// client cannot ask for a frame per instruction.
	StreamInterval time.Duration
	// Lab serves GET /v1/experiments/{id} (default a fresh risc1.NewLab()).
	// Injectable so scaled-out deployments can share or partition one lab
	// across processes instead of duplicating every simulation per process.
	Lab Experimenter
}

func (c Config) withDefaults() Config {
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.QueueDepth == 0 {
		c.QueueDepth = 4 * c.Workers
	}
	if c.QueueDepth < 0 {
		c.QueueDepth = 0
	}
	if c.MaxCycles == 0 {
		c.MaxCycles = risc1.DefaultMaxCycles
	}
	if c.Timeout == 0 {
		c.Timeout = DefaultTimeout
	}
	if c.CacheEntries == 0 {
		c.CacheEntries = DefaultCacheEntries
	}
	if c.CacheEntries < 0 {
		c.CacheEntries = 0
	}
	if c.CacheShards <= 0 {
		c.CacheShards = DefaultCacheShards
	}
	if c.StreamInterval <= 0 {
		c.StreamInterval = DefaultStreamInterval
	}
	if c.Lab == nil {
		c.Lab = risc1.NewLab()
	}
	if c.MaxCores == 0 {
		c.MaxCores = DefaultMaxCores
	}
	if c.MaxCores < 0 {
		c.MaxCores = 1
	}
	if c.MaxCores > risc1.MaxCores {
		c.MaxCores = risc1.MaxCores
	}
	return c
}

// Server is the riscd HTTP handler. Create one with New; it is safe for
// concurrent use and implements http.Handler.
type Server struct {
	cfg Config
	mux *http.ServeMux

	// Admission control. slots holds Workers+QueueDepth tickets: a request
	// that cannot take one immediately is shed with 429. active holds
	// Workers tickets: an admitted request waits here (the "queue") until
	// a worker slot frees.
	slots  chan struct{}
	active chan struct{}
	// queued counts requests that hold a slot ticket but are still waiting
	// for a worker. It is the authoritative queue depth: deriving it from
	// len(slots)-len(active) races, because a request takes the two tickets
	// in separate steps.
	queued atomic.Int64
	// streams counts /v1/run/stream connections currently open.
	streams atomic.Int64

	cache    *imageCache
	lab      Experimenter
	met      *metrics
	draining atomic.Bool

	// baseCtx parents every simulation; cancelRuns aborts them all, which
	// is how graceful shutdown drains a pool full of long guest programs.
	baseCtx    context.Context
	cancelRuns context.CancelFunc
}

// New builds a Server.
func New(cfg Config) *Server {
	cfg = cfg.withDefaults()
	s := &Server{
		cfg:    cfg,
		mux:    http.NewServeMux(),
		slots:  make(chan struct{}, cfg.Workers+cfg.QueueDepth),
		active: make(chan struct{}, cfg.Workers),
		cache:  newImageCache(cfg.CacheEntries, cfg.CacheShards),
		lab:    cfg.Lab,
		met:    newMetrics(),
	}
	s.baseCtx, s.cancelRuns = context.WithCancel(context.Background())
	s.mux.HandleFunc("POST /v1/run", s.handleRun)
	s.mux.HandleFunc("POST /v1/run/stream", s.handleRunStream)
	s.mux.HandleFunc("POST /v1/disasm", s.handleDisasm)
	s.mux.HandleFunc("POST /v1/lint", s.handleLint)
	s.mux.HandleFunc("GET /v1/benchmarks", s.handleBenchmarks)
	s.mux.HandleFunc("GET /v1/experiments/{id}", s.handleExperiment)
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	s.mux.HandleFunc("GET /metrics", s.handleMetrics)
	return s
}

// Drain puts the server into shutdown mode: /healthz starts reporting 503
// (so load balancers stop routing here) and new work is refused, while
// requests already admitted keep running.
func (s *Server) Drain() { s.draining.Store(true) }

// CancelRuns aborts every in-flight simulation via context cancellation.
// Call it after the HTTP server's own drain grace expires.
func (s *Server) CancelRuns() { s.cancelRuns() }

// statusRecorder captures the response status for metrics.
type statusRecorder struct {
	http.ResponseWriter
	status int
}

func (r *statusRecorder) WriteHeader(code int) {
	r.status = code
	r.ResponseWriter.WriteHeader(code)
}

// Flush passes streaming support through the wrapper; without it the SSE
// endpoint would see a non-Flusher and refuse to stream.
func (r *statusRecorder) Flush() {
	if f, ok := r.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

// endpointLabel collapses parameterized paths so metrics cardinality stays
// bounded no matter what clients request.
func endpointLabel(path string) string {
	switch {
	case strings.HasPrefix(path, "/v1/experiments/"):
		return "/v1/experiments/{id}"
	case path == "/v1/run", path == "/v1/run/stream", path == "/v1/disasm",
		path == "/v1/lint", path == "/v1/benchmarks", path == "/healthz",
		path == "/metrics":
		return path
	}
	return "other"
}

// ServeHTTP dispatches with per-request metrics.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	rec := &statusRecorder{ResponseWriter: w, status: http.StatusOK}
	s.mux.ServeHTTP(rec, r)
	s.met.observe(endpointLabel(r.URL.Path), rec.status, time.Since(start))
}

// admit takes an admission ticket and then a worker slot, returning a
// release func. A nil release means the response has already been written:
// 429 when pool+queue are full, 503 when draining, or the client gave up
// while queued.
func (s *Server) admit(w http.ResponseWriter, r *http.Request) func() {
	if s.draining.Load() {
		writeError(w, http.StatusServiceUnavailable, "shutting_down", "server is draining")
		return nil
	}
	select {
	case s.slots <- struct{}{}:
	default:
		// Full pool and full queue: shed now, with an adaptive hint about
		// when capacity is likely to exist again.
		w.Header().Set("Retry-After", fmt.Sprintf("%d", s.retryAfterSeconds()))
		writeError(w, http.StatusTooManyRequests, "overloaded",
			fmt.Sprintf("worker pool (%d) and queue (%d) are full",
				s.cfg.Workers, s.cfg.QueueDepth))
		return nil
	}
	// Fast path: a worker is free, no queueing happened.
	select {
	case s.active <- struct{}{}:
		return func() { <-s.active; <-s.slots }
	default:
	}
	s.queued.Add(1)
	defer s.queued.Add(-1)
	select {
	case s.active <- struct{}{}:
		return func() { <-s.active; <-s.slots }
	case <-r.Context().Done():
		<-s.slots
		writeError(w, http.StatusServiceUnavailable, "canceled", "client gave up while queued")
		return nil
	case <-s.baseCtx.Done():
		<-s.slots
		writeError(w, http.StatusServiceUnavailable, "shutting_down", "server is draining")
		return nil
	}
}

// retryAfterSeconds estimates when a shed client should come back: the work
// ahead of it (the current queue plus itself) spread across the worker pool,
// each unit taking the recent mean run latency. The estimate is floored at
// one second and capped at the server timeout + 1 — the static hint this
// replaces — so a backlog of slow runs never invites a retry sooner than the
// queue could possibly drain, and a cold histogram (no runs observed yet)
// falls back to the cap.
func (s *Server) retryAfterSeconds() int {
	ceiling := int(s.cfg.Timeout.Seconds()) + 1
	mean := s.met.recentRunSeconds()
	if mean <= 0 {
		return ceiling
	}
	waves := float64(s.queued.Load()+1) / float64(s.cfg.Workers)
	est := int(math.Ceil(waves * mean))
	if est < 1 {
		est = 1
	}
	if est > ceiling {
		est = ceiling
	}
	return est
}

// decode reads a JSON body with the size cap applied.
func decode(w http.ResponseWriter, r *http.Request, v any) error {
	body := http.MaxBytesReader(w, r.Body, maxBodyBytes)
	dec := json.NewDecoder(body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		var maxErr *http.MaxBytesError
		if errors.As(err, &maxErr) {
			return fmt.Errorf("body exceeds %d bytes", maxErr.Limit)
		}
		return fmt.Errorf("invalid JSON body: %w", err)
	}
	if dec.More() {
		return errors.New("trailing data after JSON body")
	}
	return nil
}

// image returns the compiled image for a request, consulting the LRU first.
// The bool reports a cache hit.
func (s *Server) image(lang string, target risc1.Target, source string) (*risc1.Image, bool, error) {
	k := imageKey(lang, target, source)
	if img, ok := s.cache.get(k); ok {
		return img, true, nil
	}
	var img *risc1.Image
	var err error
	if lang == "asm" {
		img, err = risc1.AssembleToImage(source, target)
	} else {
		img, err = risc1.CompileToImage(source, target)
	}
	if err != nil {
		return nil, false, err
	}
	s.cache.add(k, img)
	return img, false, nil
}

// runCtx builds the context one simulation runs under: the request context
// bounded by the effective deadline, and additionally canceled when the
// server aborts in-flight runs at shutdown.
func (s *Server) runCtx(r *http.Request, timeoutMS int) (context.Context, context.CancelFunc) {
	timeout := s.cfg.Timeout
	if req := time.Duration(timeoutMS) * time.Millisecond; timeoutMS > 0 && req < timeout {
		timeout = req
	}
	ctx, cancel := context.WithTimeout(r.Context(), timeout)
	stop := context.AfterFunc(s.baseCtx, cancel)
	return ctx, func() { stop(); cancel() }
}

// budget clamps a requested cycle budget to the server ceiling.
func (s *Server) budget(requested uint64) uint64 {
	if requested > 0 && requested < s.cfg.MaxCycles {
		return requested
	}
	return s.cfg.MaxCycles
}

// runParams is a validated RunRequest, shared by the buffered and streaming
// run endpoints so the two cannot drift on what they accept.
type runParams struct {
	req    RunRequest
	target risc1.Target
	lang   string
	engine risc1.Engine
	policy risc1.Policy
}

// parseRun decodes and validates a run request. On failure it has already
// written the 400 and returns false.
func (s *Server) parseRun(w http.ResponseWriter, r *http.Request) (runParams, bool) {
	var p runParams
	if err := decode(w, r, &p.req); err != nil {
		writeError(w, http.StatusBadRequest, "bad_request", err.Error())
		return p, false
	}
	req := &p.req
	if strings.TrimSpace(req.Source) == "" {
		writeError(w, http.StatusBadRequest, "bad_request", "source is required")
		return p, false
	}
	var err error
	if p.target, err = parseTarget(req.Target); err != nil {
		writeError(w, http.StatusBadRequest, "bad_request", err.Error())
		return p, false
	}
	if p.lang, err = parseLang(req.Lang); err != nil {
		writeError(w, http.StatusBadRequest, "bad_request", err.Error())
		return p, false
	}
	if p.engine, err = risc1.ParseEngine(req.Engine); err != nil {
		writeError(w, http.StatusBadRequest, "bad_request", err.Error())
		return p, false
	}
	if p.policy, err = risc1.ParsePolicy(req.Policy); err != nil {
		writeError(w, http.StatusBadRequest, "bad_request", err.Error())
		return p, false
	}
	if req.Cores < 0 || req.Cores > s.cfg.MaxCores {
		writeError(w, http.StatusBadRequest, "bad_request",
			fmt.Sprintf("cores %d: %v (server ceiling %d)", req.Cores, risc1.ErrBadCores, s.cfg.MaxCores))
		return p, false
	}
	if req.Cores > 1 && p.target != risc1.RISCWindowed {
		writeError(w, http.StatusBadRequest, "bad_request",
			fmt.Sprintf("cores %d on target %q: %v", req.Cores, req.Target, risc1.ErrWindowedOnly))
		return p, false
	}
	if req.Race && p.target != risc1.RISCWindowed {
		writeError(w, http.StatusBadRequest, "bad_request",
			fmt.Sprintf("race detection on target %q: %v", req.Target, risc1.ErrWindowedOnly))
		return p, false
	}
	return p, true
}

// runOptions builds the facade options for a validated request.
func (s *Server) runOptions(p runParams) risc1.RunOptions {
	return risc1.RunOptions{
		MaxCycles: s.budget(p.req.MaxCycles), Engine: p.engine, Policy: p.policy,
		Cores: p.req.Cores, Race: p.req.Race,
	}
}

// recordRunInfo feeds one successful run's counters into /metrics.
func (s *Server) recordRunInfo(p runParams, info *risc1.RunInfo) {
	s.met.addSimInstructions(info.Instructions)
	s.met.addTraceStats(info)
	s.met.addPipelineStats(info.Pipeline)
	s.met.addSMPStats(info.SMP)
	if p.req.Race {
		s.met.addRaceStats(len(info.Races))
	}
}

func (s *Server) handleRun(w http.ResponseWriter, r *http.Request) {
	p, ok := s.parseRun(w, r)
	if !ok {
		return
	}
	req := p.req
	target, lang, engine := p.target, p.lang, p.engine

	release := s.admit(w, r)
	if release == nil {
		return
	}
	defer release()

	img, hit, err := s.image(lang, target, req.Source)
	if err != nil {
		writeJSON(w, http.StatusBadRequest, compileErrorBody(err))
		return
	}

	ctx, cancel := s.runCtx(r, req.TimeoutMS)
	defer cancel()
	info, err := risc1.RunImage(ctx, img, s.runOptions(p))
	s.met.addRun(engine.String())
	if err != nil {
		status, body := runErrorStatus(err)
		writeJSON(w, status, body)
		return
	}
	s.recordRunInfo(p, info)
	writeJSON(w, http.StatusOK, RunResponse{
		Console:          info.Console,
		ConsoleTruncated: info.ConsoleTruncated,
		Instructions:     info.Instructions,
		Cycles:           info.Cycles,
		SimNS:            info.Time.Nanoseconds(),
		CodeBytes:        info.CodeBytes,
		Calls:            info.Calls,
		MaxCallDepth:     info.MaxCallDepth,
		WindowOverflows:  info.WindowOverflows,
		WindowUnderflows: info.WindowUnderflows,
		Cached:           hit,
		Pipeline:         info.Pipeline,
		SMP:              info.SMP,
		Races:            info.Races,
	})
}

func (s *Server) handleDisasm(w http.ResponseWriter, r *http.Request) {
	var req DisasmRequest
	if err := decode(w, r, &req); err != nil {
		writeError(w, http.StatusBadRequest, "bad_request", err.Error())
		return
	}
	if strings.TrimSpace(req.Source) == "" {
		writeError(w, http.StatusBadRequest, "bad_request", "source is required")
		return
	}
	target, err := parseTarget(req.Target)
	if err != nil {
		writeError(w, http.StatusBadRequest, "bad_request", err.Error())
		return
	}
	lang, err := parseLang(req.Lang)
	if err != nil {
		writeError(w, http.StatusBadRequest, "bad_request", err.Error())
		return
	}
	release := s.admit(w, r)
	if release == nil {
		return
	}
	defer release()

	img, hit, err := s.image(lang, target, req.Source)
	if err != nil {
		writeJSON(w, http.StatusBadRequest, compileErrorBody(err))
		return
	}
	writeJSON(w, http.StatusOK, DisasmResponse{Listing: img.Disassemble(), Cached: hit})
}

func (s *Server) handleLint(w http.ResponseWriter, r *http.Request) {
	var req LintRequest
	if err := decode(w, r, &req); err != nil {
		writeError(w, http.StatusBadRequest, "bad_request", err.Error())
		return
	}
	if strings.TrimSpace(req.Source) == "" {
		writeError(w, http.StatusBadRequest, "bad_request", "source is required")
		return
	}
	// "smp" is a lint-only target: the windowed convention with the
	// concurrency passes forced on.
	var lintOpts risc1.LintOptions
	targetName := req.Target
	if targetName == "smp" {
		targetName, lintOpts.SMP = "windowed", true
	}
	target, err := parseTarget(targetName)
	if err != nil {
		writeError(w, http.StatusBadRequest, "bad_request", err.Error())
		return
	}
	lang, err := parseLang(req.Lang)
	if err != nil {
		writeError(w, http.StatusBadRequest, "bad_request", err.Error())
		return
	}
	release := s.admit(w, r)
	if release == nil {
		return
	}
	defer release()

	// The analyzer shares the run path's image cache: linting a program you
	// are about to run (or vice versa) compiles it exactly once.
	img, hit, err := s.image(lang, target, req.Source)
	if err != nil {
		writeJSON(w, http.StatusBadRequest, compileErrorBody(err))
		return
	}
	diags := risc1.LintImage(img, lintOpts)
	resp := LintResponse{Diagnostics: diags, Cached: hit}
	if resp.Diagnostics == nil {
		resp.Diagnostics = []risc1.Diagnostic{} // JSON: [] rather than null
	}
	for _, d := range diags {
		switch d.Severity {
		case risc1.SevError:
			resp.Errors++
		case risc1.SevWarning:
			resp.Warnings++
		default:
			resp.Infos++
		}
	}
	s.met.addLintFindings(diags)
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleBenchmarks(w http.ResponseWriter, r *http.Request) {
	var out []BenchmarkInfo
	for _, b := range prog.All() {
		out = append(out, BenchmarkInfo{
			Name: b.Name, EDN: b.EDN, Desc: b.Desc, CallHeavy: b.CallHeavy,
		})
	}
	writeJSON(w, http.StatusOK, out)
}

func (s *Server) handleExperiment(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	known := false
	for _, k := range risc1.ExperimentIDs() {
		if k == id {
			known = true
			break
		}
	}
	if !known {
		writeError(w, http.StatusNotFound, "not_found",
			fmt.Sprintf("unknown experiment %q (want %s)", id,
				strings.Join(risc1.ExperimentIDs(), ", ")))
		return
	}

	release := s.admit(w, r)
	if release == nil {
		return
	}
	defer release()

	// The lab deduplicates runs across experiments and across requests
	// (singleflight), so repeated experiment traffic is nearly free after
	// the first rendering.
	table, err := s.lab.Experiment(id)
	if err != nil {
		writeError(w, http.StatusInternalServerError, "internal", err.Error())
		return
	}
	writeJSON(w, http.StatusOK, ExperimentResponse{ID: id, Table: table})
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	if s.draining.Load() {
		writeError(w, http.StatusServiceUnavailable, "shutting_down", "server is draining")
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	io.WriteString(w, "ok\n")
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	hits, misses, entries := s.cache.stats()
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	io.WriteString(w, s.met.render(gauges{
		queueDepth:    int(s.queued.Load()),
		inflight:      len(s.active),
		streamsActive: int(s.streams.Load()),
		cacheHits:     hits,
		cacheMisses:   misses,
		cacheEntries:  entries,
		cacheShards:   s.cache.shardStats(),
	}))
}
