package serve

import (
	"fmt"
	"sync"
	"testing"

	"risc1"
)

func mustImage(t *testing.T, src string) *risc1.Image {
	t.Helper()
	img, err := risc1.CompileToImage(src, risc1.RISCWindowed)
	if err != nil {
		t.Fatal(err)
	}
	return img
}

// TestImageCacheLRU pins eviction order: the least recently used entry goes
// first, and a get refreshes recency.
func TestImageCacheLRU(t *testing.T) {
	c := newImageCache(2)
	imgA := mustImage(t, "int main() { putint(1); return 0; }")
	kA := imageKey("cm", risc1.RISCWindowed, "a")
	kB := imageKey("cm", risc1.RISCWindowed, "b")
	kC := imageKey("cm", risc1.RISCWindowed, "c")

	c.add(kA, imgA)
	c.add(kB, imgA)
	if _, ok := c.get(kA); !ok { // refresh A; B is now the LRU
		t.Fatal("A missing")
	}
	c.add(kC, imgA) // evicts B
	if _, ok := c.get(kB); ok {
		t.Error("B survived eviction")
	}
	if _, ok := c.get(kA); !ok {
		t.Error("A was evicted despite being refreshed")
	}
	if _, ok := c.get(kC); !ok {
		t.Error("C missing")
	}
	hits, misses, size := c.stats()
	if size != 2 {
		t.Errorf("size = %d, want 2", size)
	}
	if hits != 3 || misses != 1 {
		t.Errorf("hits/misses = %d/%d, want 3/1", hits, misses)
	}
}

// TestImageCacheDisabled checks max <= 0 never stores.
func TestImageCacheDisabled(t *testing.T) {
	c := newImageCache(0)
	k := imageKey("cm", risc1.RISCWindowed, "x")
	c.add(k, mustImage(t, "int main() { return 0; }"))
	if _, ok := c.get(k); ok {
		t.Error("disabled cache returned an entry")
	}
}

// TestImageCacheKeyDisambiguates checks lang, target and source all feed
// the key: same source on two targets must not collide.
func TestImageCacheKeyDisambiguates(t *testing.T) {
	keys := map[cacheKey]string{}
	for _, lang := range []string{"cm", "asm"} {
		for _, target := range []risc1.Target{risc1.RISCWindowed, risc1.RISCFlat, risc1.CISC} {
			for _, src := range []string{"a", "b"} {
				k := imageKey(lang, target, src)
				name := fmt.Sprintf("%s/%v/%s", lang, target, src)
				if prev, dup := keys[k]; dup {
					t.Fatalf("key collision: %s and %s", prev, name)
				}
				keys[k] = name
			}
		}
	}
}

// TestImageCacheConcurrent hammers one small cache from many goroutines;
// meaningful under -race.
func TestImageCacheConcurrent(t *testing.T) {
	c := newImageCache(3)
	img := mustImage(t, "int main() { return 0; }")
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				k := imageKey("cm", risc1.RISCWindowed, fmt.Sprint((g+i)%7))
				if _, ok := c.get(k); !ok {
					c.add(k, img)
				}
			}
		}(g)
	}
	wg.Wait()
	if _, _, size := c.stats(); size > 3 {
		t.Errorf("cache grew past max: %d", size)
	}
}
