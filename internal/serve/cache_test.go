package serve

import (
	"fmt"
	"sync"
	"testing"

	"risc1"
)

func mustImage(t testing.TB, src string) *risc1.Image {
	t.Helper()
	img, err := risc1.CompileToImage(src, risc1.RISCWindowed)
	if err != nil {
		t.Fatal(err)
	}
	return img
}

// TestImageCacheLRU pins eviction order: the least recently used entry goes
// first, and a get refreshes recency.
func TestImageCacheLRU(t *testing.T) {
	// One shard so the three keys share an LRU list and eviction order is
	// deterministic regardless of how the hashes would stripe.
	c := newImageCache(2, 1)
	imgA := mustImage(t, "int main() { putint(1); return 0; }")
	kA := imageKey("cm", risc1.RISCWindowed, "a")
	kB := imageKey("cm", risc1.RISCWindowed, "b")
	kC := imageKey("cm", risc1.RISCWindowed, "c")

	c.add(kA, imgA)
	c.add(kB, imgA)
	if _, ok := c.get(kA); !ok { // refresh A; B is now the LRU
		t.Fatal("A missing")
	}
	c.add(kC, imgA) // evicts B
	if _, ok := c.get(kB); ok {
		t.Error("B survived eviction")
	}
	if _, ok := c.get(kA); !ok {
		t.Error("A was evicted despite being refreshed")
	}
	if _, ok := c.get(kC); !ok {
		t.Error("C missing")
	}
	hits, misses, size := c.stats()
	if size != 2 {
		t.Errorf("size = %d, want 2", size)
	}
	if hits != 3 || misses != 1 {
		t.Errorf("hits/misses = %d/%d, want 3/1", hits, misses)
	}
}

// TestImageCacheDisabled checks max <= 0 never stores.
func TestImageCacheDisabled(t *testing.T) {
	c := newImageCache(0, 8)
	k := imageKey("cm", risc1.RISCWindowed, "x")
	c.add(k, mustImage(t, "int main() { return 0; }"))
	if _, ok := c.get(k); ok {
		t.Error("disabled cache returned an entry")
	}
}

// TestImageCacheKeyDisambiguates checks lang, target and source all feed
// the key: same source on two targets must not collide.
func TestImageCacheKeyDisambiguates(t *testing.T) {
	keys := map[cacheKey]string{}
	for _, lang := range []string{"cm", "asm"} {
		for _, target := range []risc1.Target{risc1.RISCWindowed, risc1.RISCFlat, risc1.CISC} {
			for _, src := range []string{"a", "b"} {
				k := imageKey(lang, target, src)
				name := fmt.Sprintf("%s/%v/%s", lang, target, src)
				if prev, dup := keys[k]; dup {
					t.Fatalf("key collision: %s and %s", prev, name)
				}
				keys[k] = name
			}
		}
	}
}

// TestImageCacheConcurrent hammers one small cache from many goroutines;
// meaningful under -race.
func TestImageCacheConcurrent(t *testing.T) {
	c := newImageCache(3, 1)
	img := mustImage(t, "int main() { return 0; }")
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				k := imageKey("cm", risc1.RISCWindowed, fmt.Sprint((g+i)%7))
				if _, ok := c.get(k); !ok {
					c.add(k, img)
				}
			}
		}(g)
	}
	wg.Wait()
	if _, _, size := c.stats(); size > 3 {
		t.Errorf("cache grew past max: %d", size)
	}
}

// TestImageCacheSharded checks the striped layout: keys spread across more
// than one stripe, per-shard samples sum to the aggregate, and every key
// stays retrievable — striping must not change per-key behavior.
func TestImageCacheSharded(t *testing.T) {
	c := newImageCache(64, 8)
	if got := len(c.shards); got != 8 {
		t.Fatalf("shards = %d, want 8", got)
	}
	img := mustImage(t, "int main() { return 0; }")
	keys := make([]cacheKey, 32)
	for i := range keys {
		keys[i] = imageKey("cm", risc1.RISCWindowed, fmt.Sprint(i))
		c.add(keys[i], img)
	}
	for i, k := range keys {
		if _, ok := c.get(k); !ok {
			t.Errorf("key %d missing after add", i)
		}
		if got, want := c.shard(k), c.shard(k); got != want {
			t.Fatalf("key %d routed to two shards", i)
		}
	}
	populated := 0
	var sumHits, sumMisses uint64
	sumEntries := 0
	for _, sh := range c.shardStats() {
		if sh.entries > 0 {
			populated++
		}
		sumHits += sh.hits
		sumMisses += sh.misses
		sumEntries += sh.entries
	}
	// 32 sha256 keys across 8 stripes: all on one stripe would mean the
	// router ignores the hash.
	if populated < 2 {
		t.Errorf("only %d of 8 shards populated by 32 keys", populated)
	}
	hits, misses, entries := c.stats()
	if sumHits != hits || sumMisses != misses || sumEntries != entries {
		t.Errorf("shardStats sums (%d/%d/%d) != stats (%d/%d/%d)",
			sumHits, sumMisses, sumEntries, hits, misses, entries)
	}
	if hits != 32 || entries != 32 {
		t.Errorf("hits/entries = %d/%d, want 32/32", hits, entries)
	}
}

// TestImageCacheShardCapacity checks the ceiling split: total capacity is
// never below the configured max, and each stripe still evicts at its own
// bound.
func TestImageCacheShardCapacity(t *testing.T) {
	c := newImageCache(10, 4) // ceil(10/4) = 3 per shard
	for i := range c.shards {
		if got := c.shards[i].max; got != 3 {
			t.Fatalf("shard %d max = %d, want 3", i, got)
		}
	}
	img := mustImage(t, "int main() { return 0; }")
	for i := 0; i < 100; i++ {
		c.add(imageKey("cm", risc1.RISCWindowed, fmt.Sprint(i)), img)
	}
	if _, _, size := c.stats(); size > 12 {
		t.Errorf("size = %d beyond total striped capacity 12", size)
	}
	for _, sh := range c.shardStats() {
		if sh.entries > 3 {
			t.Errorf("a shard grew past its bound: %d", sh.entries)
		}
	}
}
