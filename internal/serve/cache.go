package serve

import (
	"container/list"
	"crypto/sha256"
	"sync"

	"risc1"
)

// cacheKey identifies one compiled image by content: the hash covers the
// language, the target and the full source text, so two requests share an
// entry exactly when the compiler would produce the same image.
type cacheKey [sha256.Size]byte

func imageKey(lang string, target risc1.Target, source string) cacheKey {
	h := sha256.New()
	h.Write([]byte(lang))
	h.Write([]byte{0, byte(target), 0})
	h.Write([]byte(source))
	var k cacheKey
	h.Sum(k[:0])
	return k
}

// imageCache is a concurrency-safe LRU of compiled images. Images are
// immutable (running one copies its bytes into a fresh machine), so a cached
// image can be handed to any number of concurrent runs. This is the serving
// layer's RISC move: the common case — compile-once, run-many benchmark
// traffic — skips the compiler entirely.
type imageCache struct {
	mu      sync.Mutex
	max     int
	order   *list.List // front = most recently used; values are *cacheEntry
	entries map[cacheKey]*list.Element

	hits, misses uint64
}

type cacheEntry struct {
	key cacheKey
	img *risc1.Image
}

// newImageCache builds a cache holding up to max images; max <= 0 disables
// caching (every lookup misses).
func newImageCache(max int) *imageCache {
	return &imageCache{max: max, order: list.New(), entries: map[cacheKey]*list.Element{}}
}

// get returns the cached image for k, refreshing its recency.
func (c *imageCache) get(k cacheKey) (*risc1.Image, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.entries[k]
	if !ok {
		c.misses++
		return nil, false
	}
	c.hits++
	c.order.MoveToFront(el)
	return el.Value.(*cacheEntry).img, true
}

// add inserts an image, evicting the least recently used entry when full.
func (c *imageCache) add(k cacheKey, img *risc1.Image) {
	if c.max <= 0 {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.entries[k]; ok { // raced with another compile of the same source
		c.order.MoveToFront(el)
		el.Value.(*cacheEntry).img = img
		return
	}
	c.entries[k] = c.order.PushFront(&cacheEntry{key: k, img: img})
	for c.order.Len() > c.max {
		last := c.order.Back()
		c.order.Remove(last)
		delete(c.entries, last.Value.(*cacheEntry).key)
	}
}

// stats returns the hit/miss counters and current size.
func (c *imageCache) stats() (hits, misses uint64, size int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits, c.misses, c.order.Len()
}
