package serve

import (
	"container/list"
	"crypto/sha256"
	"encoding/binary"
	"sync"

	"risc1"
)

// cacheKey identifies one compiled image by content: the hash covers the
// language, the target and the full source text, so two requests share an
// entry exactly when the compiler would produce the same image.
type cacheKey [sha256.Size]byte

func imageKey(lang string, target risc1.Target, source string) cacheKey {
	h := sha256.New()
	h.Write([]byte(lang))
	h.Write([]byte{0, byte(target), 0})
	h.Write([]byte(source))
	var k cacheKey
	h.Sum(k[:0])
	return k
}

// imageCache is a concurrency-safe LRU of compiled images, lock-striped into
// independent shards. Images are immutable (running one copies its bytes
// into a fresh machine), so a cached image can be handed to any number of
// concurrent runs. This is the serving layer's RISC move: the common case —
// compile-once, run-many benchmark traffic — skips the compiler entirely.
//
// Why shards: with one mutex, every request on a loaded pool serializes on
// the cache lookup even when the simulation work is perfectly parallel
// (an LRU get is a write — it reorders the recency list). Striping by the
// content hash gives N independent locks with no cross-shard invariants:
// a key lives in exactly one shard, so hit/miss/eviction behavior per key
// is identical to the single-lock cache. The same keying is what lets
// multiple riscd processes behind a load balancer partition compiled-image
// state: route (or replicate) by the same hash and no two processes need
// to agree on recency.
type imageCache struct {
	shards []cacheShard
}

// cacheShard is one stripe: a self-contained single-lock LRU.
type cacheShard struct {
	mu      sync.Mutex
	max     int
	order   *list.List // front = most recently used; values are *cacheEntry
	entries map[cacheKey]*list.Element

	hits, misses uint64
}

type cacheEntry struct {
	key cacheKey
	img *risc1.Image
}

// newImageCache builds a cache holding up to max images across nShards
// lock stripes; max <= 0 disables caching (every lookup misses) and
// nShards <= 1 degrades to the single-lock layout.
func newImageCache(max, nShards int) *imageCache {
	if nShards < 1 || max <= 0 {
		nShards = 1
	}
	perShard := max
	if max > 0 {
		// Ceiling split so total capacity is never below the configured max.
		perShard = (max + nShards - 1) / nShards
	}
	c := &imageCache{shards: make([]cacheShard, nShards)}
	for i := range c.shards {
		c.shards[i] = cacheShard{
			max:     perShard,
			order:   list.New(),
			entries: map[cacheKey]*list.Element{},
		}
	}
	return c
}

// shard routes a key to its stripe. The key is a sha256, so any fixed four
// bytes of it are uniformly distributed; modulo keeps non-power-of-two
// shard counts balanced too.
func (c *imageCache) shard(k cacheKey) *cacheShard {
	if len(c.shards) == 1 {
		return &c.shards[0]
	}
	return &c.shards[binary.BigEndian.Uint32(k[:4])%uint32(len(c.shards))]
}

// get returns the cached image for k, refreshing its recency.
func (c *imageCache) get(k cacheKey) (*risc1.Image, bool) {
	s := c.shard(k)
	s.mu.Lock()
	defer s.mu.Unlock()
	el, ok := s.entries[k]
	if !ok {
		s.misses++
		return nil, false
	}
	s.hits++
	s.order.MoveToFront(el)
	return el.Value.(*cacheEntry).img, true
}

// add inserts an image, evicting the least recently used entry of its shard
// when the shard is full.
func (c *imageCache) add(k cacheKey, img *risc1.Image) {
	s := c.shard(k)
	if s.max <= 0 {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if el, ok := s.entries[k]; ok { // raced with another compile of the same source
		s.order.MoveToFront(el)
		el.Value.(*cacheEntry).img = img
		return
	}
	s.entries[k] = s.order.PushFront(&cacheEntry{key: k, img: img})
	for s.order.Len() > s.max {
		last := s.order.Back()
		s.order.Remove(last)
		delete(s.entries, last.Value.(*cacheEntry).key)
	}
}

// stats returns the hit/miss counters and current size aggregated across
// shards.
func (c *imageCache) stats() (hits, misses uint64, size int) {
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		hits += s.hits
		misses += s.misses
		size += s.order.Len()
		s.mu.Unlock()
	}
	return hits, misses, size
}

// shardStat is one stripe's sample for the per-shard /metrics series.
type shardStat struct {
	hits, misses uint64
	entries      int
}

// shardStats samples every stripe, in shard order.
func (c *imageCache) shardStats() []shardStat {
	out := make([]shardStat, len(c.shards))
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		out[i] = shardStat{hits: s.hits, misses: s.misses, entries: s.order.Len()}
		s.mu.Unlock()
	}
	return out
}
