// The streaming run endpoint: POST /v1/run/stream executes the same
// simulation as /v1/run but emits Server-Sent Events while it runs —
// console output the moment the guest writes it, sampled progress frames,
// then one terminal result or error event. Two serving problems motivate
// it:
//
//   - A long simulation is invisible over /v1/run until it finishes, and a
//     chatty one buffers up to the 1 MiB console cap server-side before a
//     single byte reaches the client. Streaming forwards chunks as they are
//     written (including everything past the cap that the buffered response
//     would truncate), so server memory per run stays bounded regardless of
//     guest verbosity.
//   - A watcher that goes away should take its simulation with it. The
//     stream runs under the request context, so a dropped connection
//     cancels the run at the next batch boundary and frees the worker —
//     no abandoned simulations grinding the pool.
//
// Backpressure is the channel: console chunks are sent blocking, so a guest
// that prints faster than the client reads stalls at the next chunk instead
// of growing a buffer. Stats frames are droppable by design — they are
// samples, not a ledger — so they use a non-blocking send and whatever
// frame is current when the writer frees up wins.
package serve

import (
	"encoding/json"
	"fmt"
	"net/http"
	"time"

	"risc1"
)

// streamEvent is one SSE frame waiting to be written.
type streamEvent struct {
	kind string // "console", "stats", "result" or "error"
	data any
}

func (s *Server) handleRunStream(w http.ResponseWriter, r *http.Request) {
	p, ok := s.parseRun(w, r)
	if !ok {
		return
	}
	flusher, ok := w.(http.Flusher)
	if !ok {
		writeError(w, http.StatusInternalServerError, "internal",
			"response writer cannot stream")
		return
	}

	release := s.admit(w, r)
	if release == nil {
		return
	}
	defer release()

	// Compile before committing to the SSE response: a compile error is
	// still an ordinary JSON 400 at this point.
	img, hit, err := s.image(p.lang, p.target, p.req.Source)
	if err != nil {
		writeJSON(w, http.StatusBadRequest, compileErrorBody(err))
		return
	}

	s.streams.Add(1)
	defer s.streams.Add(-1)

	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.Header().Set("X-Accel-Buffering", "no") // defeat proxy buffering
	w.WriteHeader(http.StatusOK)

	counts := map[string]uint64{"start": 1}
	writeSSE(w, flusher, "start", StreamStart{
		Cached:     hit,
		IntervalMS: s.cfg.StreamInterval.Milliseconds(),
	})

	ctx, cancel := s.runCtx(r, p.req.TimeoutMS)
	defer cancel()

	// The simulation goroutine owns the events channel: it is the only
	// sender and closes it when the run is over, terminal event included.
	// Every send selects on ctx.Done so a gone client can never strand it.
	events := make(chan streamEvent)
	go func() {
		defer close(events)
		send := func(ev streamEvent) bool {
			select {
			case events <- ev:
				return true
			case <-ctx.Done():
				return false
			}
		}
		var lastFrame time.Time // goroutine-local; monitor hooks run here
		mon := &risc1.RunMonitor{
			Console: func(chunk string) {
				send(streamEvent{"console", StreamConsole{Chunk: chunk}})
			},
			Progress: func(instructions, cycles uint64) {
				if time.Since(lastFrame) < s.cfg.StreamInterval {
					return
				}
				select { // droppable: a stale sample has no value
				case events <- streamEvent{"stats", StreamStats{
					Instructions: instructions, Cycles: cycles,
				}}:
					lastFrame = time.Now()
				case <-ctx.Done():
				default:
				}
			},
		}
		opt := s.runOptions(p)
		opt.Monitor = mon
		info, err := risc1.RunImage(ctx, img, opt)
		s.met.addRun(p.engine.String())
		if err != nil {
			_, body := runErrorStatus(err)
			send(streamEvent{"error", body.Error})
			return
		}
		s.recordRunInfo(p, info)
		send(streamEvent{"result", StreamResult{
			ConsoleTruncated: info.ConsoleTruncated,
			Instructions:     info.Instructions,
			Cycles:           info.Cycles,
			SimNS:            info.Time.Nanoseconds(),
			CodeBytes:        info.CodeBytes,
			Calls:            info.Calls,
			MaxCallDepth:     info.MaxCallDepth,
			WindowOverflows:  info.WindowOverflows,
			WindowUnderflows: info.WindowUnderflows,
			Cached:           hit,
			Pipeline:         info.Pipeline,
			SMP:              info.SMP,
			Races:            info.Races,
		}})
	}()

	// Writer loop: drain until the simulation closes the channel. If the
	// client is gone, writes fail silently and ctx cancellation (wired to
	// r.Context by runCtx) stops the simulation; the loop still drains
	// whatever the goroutine manages to send, keeping shutdown leak-free.
	for ev := range events {
		writeSSE(w, flusher, ev.kind, ev.data)
		counts[ev.kind]++
	}
	for kind, n := range counts {
		s.met.addStreamEvents(kind, n)
	}
}

// writeSSE emits one Server-Sent Event with a JSON payload and flushes it to
// the socket.
func writeSSE(w http.ResponseWriter, f http.Flusher, event string, data any) {
	b, err := json.Marshal(data)
	if err != nil {
		return
	}
	fmt.Fprintf(w, "event: %s\ndata: %s\n\n", event, b)
	f.Flush()
}
