package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"

	"risc1"
	"risc1/internal/asm"
	"risc1/internal/cisc"
	"risc1/internal/core"
)

// RunRequest is the body of POST /v1/run.
type RunRequest struct {
	// Source is Cm source (default) or machine-level assembly (Lang "asm").
	Source string `json:"source"`
	// Lang selects the front end: "cm" (default) compiles, "asm" assembles.
	Lang string `json:"lang,omitempty"`
	// Target is "windowed" (default), "flat", "cisc" or "pipelined" —
	// pipelined runs windowed code on the cycle-accurate five-stage
	// pipeline model and reports its CPI/stall breakdown.
	Target string `json:"target,omitempty"`
	// MaxCycles lowers the server's per-run cycle budget. It can only
	// tighten the bound: values above the server ceiling are clamped.
	MaxCycles uint64 `json:"max_cycles,omitempty"`
	// TimeoutMS lowers the server's per-run wall-clock deadline, likewise
	// clamped to the server ceiling.
	TimeoutMS int `json:"timeout_ms,omitempty"`
	// Engine selects the RISC execution engine: "auto" (default), "block",
	// "step" or "trace" — auto resolves to the profile-guided trace tier.
	// CISC runs ignore it.
	Engine string `json:"engine,omitempty"`
	// Policy selects the pipeline's control-transfer policy for the
	// "pipelined" target: "delayed" (default, the paper's delayed jumps)
	// or "squash" (predict-not-taken hardware). Other targets ignore it.
	Policy string `json:"policy,omitempty"`
	// Cores runs the program on a shared-memory machine of this many RISC I
	// cores (0 or 1 = single-core). Requires the "windowed" target and must
	// not exceed the server's core ceiling; violations are 400s.
	Cores int `json:"cores,omitempty"`
	// Race runs the program under the dynamic race detector. Requires the
	// "windowed" target (the run routes through the shared-memory machine
	// even at one core); observed races come back in RunResponse.Races.
	Race bool `json:"race,omitempty"`
}

// RunResponse is the body of a successful POST /v1/run.
type RunResponse struct {
	Console          string `json:"console"`
	ConsoleTruncated bool   `json:"console_truncated,omitempty"`
	Instructions     uint64 `json:"instructions"`
	Cycles           uint64 `json:"cycles"`
	SimNS            int64  `json:"sim_ns"` // simulated time at the paper's clock
	CodeBytes        int    `json:"code_bytes"`
	Calls            uint64 `json:"calls"`
	MaxCallDepth     int    `json:"max_call_depth"`
	WindowOverflows  uint64 `json:"window_overflows,omitempty"`
	WindowUnderflows uint64 `json:"window_underflows,omitempty"`
	// Cached reports the compiled image came from the server's LRU —
	// the request skipped the compiler entirely.
	Cached bool `json:"cached"`
	// Pipeline carries the cycle-accurate model's CPI and stall breakdown.
	// Present only for the "pipelined" target.
	Pipeline *risc1.PipelineInfo `json:"pipeline,omitempty"`
	// SMP carries the shared-memory machine's breakdown — makespan,
	// contention charges, per-core stats. Present only when Cores > 1.
	SMP *risc1.SMPInfo `json:"smp,omitempty"`
	// Races lists the data races the dynamic detector observed. Present
	// only when the request set Race; an empty list on such a run means
	// the execution was race-free.
	Races []risc1.Race `json:"races,omitempty"`
}

// StreamStart is the first event on a /v1/run/stream response, emitted as
// soon as the run is admitted and compiled — before any simulation output,
// which is what makes the stream observably live.
type StreamStart struct {
	// Cached reports the compiled image came from the server's LRU.
	Cached bool `json:"cached"`
	// IntervalMS is the server-controlled stats-frame sampling interval.
	IntervalMS int64 `json:"interval_ms"`
}

// StreamConsole carries one chunk of guest console output, forwarded as the
// guest writes it. Unlike the buffered RunResponse.Console, the stream
// carries everything — chunks past the server's 1 MiB retention cap are
// still forwarded (the terminal event's ConsoleTruncated then reports that
// the buffered copy, not the stream, was cut).
type StreamConsole struct {
	Chunk string `json:"chunk"`
}

// StreamStats is a sampled progress frame: cumulative counters at some
// batch boundary, emitted at most once per server sampling interval.
type StreamStats struct {
	Instructions uint64 `json:"instructions"`
	Cycles       uint64 `json:"cycles"`
}

// StreamResult is the terminal event of a successful streamed run: a
// RunResponse minus Console, which has already been delivered chunk by
// chunk. A failed run ends with an "error" event carrying an ErrorDetail
// instead.
type StreamResult struct {
	ConsoleTruncated bool                `json:"console_truncated,omitempty"`
	Instructions     uint64              `json:"instructions"`
	Cycles           uint64              `json:"cycles"`
	SimNS            int64               `json:"sim_ns"`
	CodeBytes        int                 `json:"code_bytes"`
	Calls            uint64              `json:"calls"`
	MaxCallDepth     int                 `json:"max_call_depth"`
	WindowOverflows  uint64              `json:"window_overflows,omitempty"`
	WindowUnderflows uint64              `json:"window_underflows,omitempty"`
	Cached           bool                `json:"cached"`
	Pipeline         *risc1.PipelineInfo `json:"pipeline,omitempty"`
	SMP              *risc1.SMPInfo      `json:"smp,omitempty"`
	Races            []risc1.Race        `json:"races,omitempty"`
}

// LintRequest is the body of POST /v1/lint. Target additionally accepts
// "smp": the windowed convention with the concurrency passes (smp-race,
// smp-lock, smp-spawn) forced on.
type LintRequest struct {
	Source string `json:"source"`
	Lang   string `json:"lang,omitempty"`
	Target string `json:"target,omitempty"`
}

// LintResponse is the body of a successful POST /v1/lint. A program that
// compiles but trips the analyzer still gets a 200: the findings ARE the
// result. Clients gate on Errors/Warnings.
type LintResponse struct {
	Diagnostics []risc1.Diagnostic `json:"diagnostics"`
	Errors      int                `json:"errors"`
	Warnings    int                `json:"warnings"`
	Infos       int                `json:"infos"`
	Cached      bool               `json:"cached"`
}

// DisasmRequest is the body of POST /v1/disasm.
type DisasmRequest struct {
	Source string `json:"source"`
	Lang   string `json:"lang,omitempty"`
	Target string `json:"target,omitempty"`
}

// DisasmResponse is the body of a successful POST /v1/disasm.
type DisasmResponse struct {
	Listing string `json:"listing"`
	Cached  bool   `json:"cached"`
}

// BenchmarkInfo describes one suite benchmark in GET /v1/benchmarks.
type BenchmarkInfo struct {
	Name      string `json:"name"`
	EDN       string `json:"edn,omitempty"` // paper-era EDN tag, when applicable
	Desc      string `json:"desc"`
	CallHeavy bool   `json:"call_heavy"`
}

// ExperimentResponse is the body of GET /v1/experiments/{id}.
type ExperimentResponse struct {
	ID    string `json:"id"`
	Table string `json:"table"`
}

// ErrorBody is the JSON envelope of every non-2xx response.
type ErrorBody struct {
	Error ErrorDetail `json:"error"`
}

// ErrorDetail is a typed, machine-readable failure description.
type ErrorDetail struct {
	// Code is a stable identifier: bad_request, compile_error, deadline,
	// cycle_limit, runtime_fault, overloaded, shutting_down, not_found,
	// internal.
	Code    string `json:"code"`
	Message string `json:"message"`
	// Diagnostics lists per-line compiler/assembler errors, when available.
	Diagnostics []string `json:"diagnostics,omitempty"`
	// PC, Inst and Cycle locate a runtime fault in the guest program.
	PC    string `json:"pc,omitempty"`
	Inst  string `json:"inst,omitempty"`
	Cycle uint64 `json:"cycle,omitempty"`
}

// writeJSON writes v with the given status.
func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

// writeError writes a typed error body.
func writeError(w http.ResponseWriter, status int, code, message string) {
	writeJSON(w, status, ErrorBody{Error: ErrorDetail{Code: code, Message: message}})
}

// compileErrorBody maps a compile/assemble failure to a 400 body, expanding
// aggregated assembler diagnostics so clients see every problem at once.
func compileErrorBody(err error) ErrorBody {
	d := ErrorDetail{Code: "compile_error", Message: err.Error()}
	var list asm.ErrorList
	if errors.As(err, &list) {
		for _, e := range list {
			d.Diagnostics = append(d.Diagnostics, e.Error())
		}
	}
	return ErrorBody{Error: d}
}

// runErrorStatus maps a failed simulation to its HTTP status and typed body:
// 408 for a deadline, 503 for a canceled run (client gone or server
// draining), 422 for a genuine guest-program fault or an exhausted cycle
// budget — the request was well-formed, the program misbehaved.
func runErrorStatus(err error) (int, ErrorBody) {
	d := ErrorDetail{Code: "runtime_fault", Message: err.Error()}
	status := http.StatusUnprocessableEntity

	switch {
	case errors.Is(err, context.DeadlineExceeded):
		status, d.Code = http.StatusRequestTimeout, "deadline"
	case errors.Is(err, context.Canceled):
		status, d.Code = http.StatusServiceUnavailable, "canceled"
	case errors.Is(err, core.ErrMaxCycles), errors.Is(err, cisc.ErrMaxCycles):
		d.Code = "cycle_limit"
	}

	var ce *core.RunError
	var xe *cisc.RunError
	switch {
	case errors.As(err, &ce):
		d.PC = fmt.Sprintf("%#08x", ce.PC)
		d.Inst = ce.Inst
		d.Cycle = ce.Cycles
	case errors.As(err, &xe):
		d.PC = fmt.Sprintf("%#08x", xe.PC)
		d.Inst = xe.Inst
		d.Cycle = xe.Cycles
	}
	return status, ErrorBody{Error: d}
}

// parseTarget maps the wire name to a Target.
func parseTarget(s string) (risc1.Target, error) {
	switch s {
	case "", "windowed", "risc":
		return risc1.RISCWindowed, nil
	case "flat":
		return risc1.RISCFlat, nil
	case "cisc", "cx":
		return risc1.CISC, nil
	case "pipelined":
		return risc1.RISCPipelined, nil
	}
	return 0, fmt.Errorf("unknown target %q (want windowed, flat, cisc or pipelined)", s)
}

// parseLang normalizes the front-end selector.
func parseLang(s string) (string, error) {
	switch s {
	case "", "cm", "c":
		return "cm", nil
	case "asm", "s":
		return "asm", nil
	}
	return "", fmt.Errorf("unknown lang %q (want cm or asm)", s)
}
