package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"reflect"
	"regexp"
	"runtime"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"
)

const fibSrc = `
int fib(int n) {
    if (n < 2) return n;
    return fib(n - 1) + fib(n - 2);
}
int main() { putint(fib(10)); return 0; }`

// loopAsm spins forever: the delayed jump targets itself.
const loopAsm = "main: jmpr alw,main\n nop\n"

// parSrc spawns two workers that fold their IDs into a lock-guarded
// accumulator: 0+1+2 under any interleaving.
const parSrc = `
int total;
void worker(int k) {
    lock(0);
    total += k + 1;
    unlock(0);
}
int main() {
    int h1; int h2;
    h1 = spawn(worker, 0);
    h2 = spawn(worker, 1);
    join(h1);
    join(h2);
    putint(total);
    return 0;
}`

func newTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	s := New(cfg)
	ts := httptest.NewServer(s)
	t.Cleanup(ts.Close)
	return s, ts
}

func postJSON(t *testing.T, url string, body any) (*http.Response, []byte) {
	t.Helper()
	raw, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	out, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	return resp, out
}

func getBody(t *testing.T, url string) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	out, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	return resp, out
}

func decodeError(t *testing.T, raw []byte) ErrorDetail {
	t.Helper()
	var e ErrorBody
	if err := json.Unmarshal(raw, &e); err != nil {
		t.Fatalf("error body is not JSON: %v\n%s", err, raw)
	}
	return e.Error
}

// TestRunEndpoint runs one program on all four targets and checks the
// result and the cache-hit flag on a repeat request.
func TestRunEndpoint(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	for _, target := range []string{"windowed", "flat", "cisc", "pipelined"} {
		resp, raw := postJSON(t, ts.URL+"/v1/run", RunRequest{Source: fibSrc, Target: target})
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("%s: status %d\n%s", target, resp.StatusCode, raw)
		}
		var run RunResponse
		if err := json.Unmarshal(raw, &run); err != nil {
			t.Fatalf("%s: %v", target, err)
		}
		if run.Console != "55" {
			t.Errorf("%s: console = %q, want 55", target, run.Console)
		}
		if run.Cached {
			t.Errorf("%s: first request reported a cache hit", target)
		}
		if run.Instructions == 0 || run.Cycles == 0 || run.CodeBytes == 0 {
			t.Errorf("%s: empty stats: %+v", target, run)
		}

		resp, raw = postJSON(t, ts.URL+"/v1/run", RunRequest{Source: fibSrc, Target: target})
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("%s repeat: status %d\n%s", target, resp.StatusCode, raw)
		}
		var again RunResponse
		if err := json.Unmarshal(raw, &again); err != nil {
			t.Fatal(err)
		}
		if !again.Cached {
			t.Errorf("%s: repeat request missed the image cache", target)
		}
		if again.Console != run.Console || again.Cycles != run.Cycles {
			t.Errorf("%s: cached run diverged: %+v vs %+v", target, again, run)
		}
	}
}

// TestRunAssembly accepts machine-level source via lang=asm.
func TestRunAssembly(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	src := "main: add r0,#6,r10\n stl r10,(r0)#-252\n ret r25,#8\n nop\n"
	resp, raw := postJSON(t, ts.URL+"/v1/run", RunRequest{Source: src, Lang: "asm"})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d\n%s", resp.StatusCode, raw)
	}
	var run RunResponse
	if err := json.Unmarshal(raw, &run); err != nil {
		t.Fatal(err)
	}
	if run.Console != "6" {
		t.Errorf("console = %q, want 6", run.Console)
	}
}

// TestRunCompileError pins the 400 + typed diagnostics contract.
func TestRunCompileError(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	resp, raw := postJSON(t, ts.URL+"/v1/run",
		RunRequest{Source: "int main( { return 0; }"})
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("status = %d, want 400\n%s", resp.StatusCode, raw)
	}
	if d := decodeError(t, raw); d.Code != "compile_error" {
		t.Errorf("code = %q, want compile_error (%s)", d.Code, raw)
	}

	// Assembler failures aggregate per-line diagnostics.
	resp, raw = postJSON(t, ts.URL+"/v1/run",
		RunRequest{Source: "main: bogus r1\n worse r2\n", Lang: "asm"})
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("asm status = %d, want 400\n%s", resp.StatusCode, raw)
	}
	if d := decodeError(t, raw); len(d.Diagnostics) < 2 {
		t.Errorf("want >=2 diagnostics, got %+v", d)
	}
}

// TestRunBadRequests covers malformed JSON, empty source and bad enums.
func TestRunBadRequests(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	for name, body := range map[string]string{
		"malformed": "{not json",
		"empty":     `{"source":""}`,
		"target":    `{"source":"int main(){return 0;}","target":"vax"}`,
		"lang":      `{"source":"x","lang":"fortran"}`,
		"engine":    `{"source":"x","engine":"warp"}`,
		"policy":    `{"source":"x","policy":"oracle"}`,
		"unknown":   `{"source":"x","surprise":1}`,
	} {
		resp, err := http.Post(ts.URL+"/v1/run", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		raw, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: status = %d, want 400\n%s", name, resp.StatusCode, raw)
		}
	}
}

// TestRunDeadline pins the 408 mapping: an infinite loop with a tiny
// request deadline.
func TestRunDeadline(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	resp, raw := postJSON(t, ts.URL+"/v1/run",
		RunRequest{Source: loopAsm, Lang: "asm", TimeoutMS: 50})
	if resp.StatusCode != http.StatusRequestTimeout {
		t.Fatalf("status = %d, want 408\n%s", resp.StatusCode, raw)
	}
	if d := decodeError(t, raw); d.Code != "deadline" {
		t.Errorf("code = %q, want deadline", d.Code)
	}
}

// TestRunCycleLimit pins the 422 mapping for an exhausted cycle budget,
// including the fault location fields.
func TestRunCycleLimit(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	resp, raw := postJSON(t, ts.URL+"/v1/run",
		RunRequest{Source: loopAsm, Lang: "asm", MaxCycles: 1000})
	if resp.StatusCode != http.StatusUnprocessableEntity {
		t.Fatalf("status = %d, want 422\n%s", resp.StatusCode, raw)
	}
	d := decodeError(t, raw)
	if d.Code != "cycle_limit" {
		t.Errorf("code = %q, want cycle_limit", d.Code)
	}
	if d.Cycle != 1000 || d.PC == "" || d.Inst == "" {
		t.Errorf("fault location not populated: %+v", d)
	}
}

// TestRunRuntimeFault pins 422 for a genuine guest fault (misaligned store).
func TestRunRuntimeFault(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	src := "main: stl r0,(r0)#2\n ret r25,#8\n nop\n"
	resp, raw := postJSON(t, ts.URL+"/v1/run", RunRequest{Source: src, Lang: "asm"})
	if resp.StatusCode != http.StatusUnprocessableEntity {
		t.Fatalf("status = %d, want 422\n%s", resp.StatusCode, raw)
	}
	if d := decodeError(t, raw); d.Code != "runtime_fault" {
		t.Errorf("code = %q, want runtime_fault", d.Code)
	}
}

// metricValue extracts one sample from Prometheus text output.
func metricValue(t *testing.T, text, name string) float64 {
	t.Helper()
	re := regexp.MustCompile(`(?m)^` + regexp.QuoteMeta(name) + ` (\S+)$`)
	m := re.FindStringSubmatch(text)
	if m == nil {
		t.Fatalf("metric %s not found in:\n%s", name, text)
	}
	v, err := strconv.ParseFloat(m[1], 64)
	if err != nil {
		t.Fatal(err)
	}
	return v
}

// TestShedding429 fills a 1-worker, 0-queue server with an infinite loop
// and checks the next request is refused immediately with 429 + Retry-After.
func TestShedding429(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1, QueueDepth: -1, Timeout: 5 * time.Second})

	slow := make(chan struct{})
	go func() {
		defer close(slow)
		postJSON(t, ts.URL+"/v1/run",
			RunRequest{Source: loopAsm, Lang: "asm", TimeoutMS: 1500})
	}()

	// Wait until the slow run holds the only worker slot.
	deadline := time.Now().Add(3 * time.Second)
	for {
		_, raw := getBody(t, ts.URL+"/metrics")
		if metricValue(t, string(raw), "riscd_inflight_runs") >= 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("slow run never occupied the worker slot")
		}
		time.Sleep(5 * time.Millisecond)
	}

	resp, raw := postJSON(t, ts.URL+"/v1/run", RunRequest{Source: fibSrc})
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("status = %d, want 429\n%s", resp.StatusCode, raw)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("429 without Retry-After")
	}
	if d := decodeError(t, raw); d.Code != "overloaded" {
		t.Errorf("code = %q, want overloaded", d.Code)
	}
	<-slow

	// The shed request must show up in the request counters.
	_, raw = getBody(t, ts.URL+"/metrics")
	if !strings.Contains(string(raw), `riscd_requests_total{endpoint="/v1/run",status="429"} 1`) {
		t.Errorf("429 not counted:\n%s", raw)
	}
}

// TestDrainRefusesNewWork pins the shutdown contract: after Drain, healthz
// and run return 503 while the metrics endpoint stays up.
func TestDrainRefusesNewWork(t *testing.T) {
	s, ts := newTestServer(t, Config{})
	s.Drain()
	if resp, _ := getBody(t, ts.URL+"/healthz"); resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("healthz after Drain: %d, want 503", resp.StatusCode)
	}
	resp, raw := postJSON(t, ts.URL+"/v1/run", RunRequest{Source: fibSrc})
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("run after Drain: %d, want 503\n%s", resp.StatusCode, raw)
	}
	if resp, _ := getBody(t, ts.URL+"/metrics"); resp.StatusCode != http.StatusOK {
		t.Errorf("metrics after Drain: %d, want 200", resp.StatusCode)
	}
}

// TestCancelRunsAbortsInflight starts an infinite run and kills it through
// CancelRuns — the graceful-shutdown path for stuck guests.
func TestCancelRunsAbortsInflight(t *testing.T) {
	s, ts := newTestServer(t, Config{Timeout: 30 * time.Second})
	done := make(chan int, 1)
	go func() {
		resp, _ := postJSON(t, ts.URL+"/v1/run", RunRequest{Source: loopAsm, Lang: "asm"})
		done <- resp.StatusCode
	}()
	deadline := time.Now().Add(3 * time.Second)
	for {
		_, raw := getBody(t, ts.URL+"/metrics")
		if metricValue(t, string(raw), "riscd_inflight_runs") >= 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("run never started")
		}
		time.Sleep(5 * time.Millisecond)
	}
	s.CancelRuns()
	select {
	case status := <-done:
		if status != http.StatusServiceUnavailable {
			t.Errorf("canceled run: status %d, want 503", status)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("CancelRuns did not abort the in-flight run")
	}
}

// TestDisasmEndpoint checks both languages disassemble.
func TestDisasmEndpoint(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	resp, raw := postJSON(t, ts.URL+"/v1/disasm", DisasmRequest{Source: fibSrc, Target: "cisc"})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d\n%s", resp.StatusCode, raw)
	}
	var d DisasmResponse
	if err := json.Unmarshal(raw, &d); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(d.Listing, "fib") {
		t.Errorf("listing lacks the fib symbol:\n%s", d.Listing)
	}

	// A disasm after a run of the same source hits the same image cache.
	postJSON(t, ts.URL+"/v1/run", RunRequest{Source: fibSrc, Target: "cisc"})
	resp, raw = postJSON(t, ts.URL+"/v1/disasm", DisasmRequest{Source: fibSrc, Target: "cisc"})
	if resp.StatusCode != http.StatusOK {
		t.Fatal(resp.StatusCode)
	}
	if err := json.Unmarshal(raw, &d); err != nil {
		t.Fatal(err)
	}
	if !d.Cached {
		t.Error("disasm after run of same source missed the cache")
	}
}

// TestLintEndpoint checks the analyzer route: a recursive benchmark gets
// its reg-window info (findings are a 200, not an error), a hazardous
// assembly program gets its warning with a source line, and the findings
// counter shows up in /metrics.
func TestLintEndpoint(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	resp, raw := postJSON(t, ts.URL+"/v1/lint", LintRequest{Source: fibSrc, Target: "windowed"})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d\n%s", resp.StatusCode, raw)
	}
	var rep LintResponse
	if err := json.Unmarshal(raw, &rep); err != nil {
		t.Fatal(err)
	}
	if rep.Errors != 0 || rep.Warnings != 0 {
		t.Errorf("compiled fib linted dirty: %+v", rep)
	}
	if rep.Infos == 0 {
		t.Errorf("recursive fib produced no reg-window info: %+v", rep)
	}

	// A delayed call whose slot stores: the store runs in the callee's
	// window — exactly the hazard the delay-slot pass exists for.
	hazard := "main:\n callr r25,f\n stl r9,(r0)#-252\n ret r25,#8\n nop\nf:\n ret r25,#0\n nop\n"
	resp, raw = postJSON(t, ts.URL+"/v1/lint", LintRequest{Source: hazard, Lang: "asm"})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("hazard status %d\n%s", resp.StatusCode, raw)
	}
	if err := json.Unmarshal(raw, &rep); err != nil {
		t.Fatal(err)
	}
	if rep.Warnings != 1 || len(rep.Diagnostics) == 0 {
		t.Fatalf("hazard not flagged: %+v", rep)
	}
	d := rep.Diagnostics[0]
	if d.Pass != "delay-slot" || d.Line != 3 {
		t.Errorf("diagnostic = %+v, want delay-slot at line 3", d)
	}

	// Same source again: the lint path shares the compiled-image cache.
	resp, raw = postJSON(t, ts.URL+"/v1/lint", LintRequest{Source: hazard, Lang: "asm"})
	if resp.StatusCode != http.StatusOK {
		t.Fatal(resp.StatusCode)
	}
	if err := json.Unmarshal(raw, &rep); err != nil {
		t.Fatal(err)
	}
	if !rep.Cached {
		t.Error("repeat lint missed the image cache")
	}

	_, raw = getBody(t, ts.URL+"/metrics")
	if !strings.Contains(string(raw), `riscd_lint_findings_total{severity="warning"} 2`) {
		t.Errorf("lint findings counter missing or wrong:\n%s", raw)
	}
}

// TestLintEndpointClean pins the empty-result shape: a warning-free program
// yields an empty array (never null) and zero counts.
func TestLintEndpointClean(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	resp, raw := postJSON(t, ts.URL+"/v1/lint",
		LintRequest{Source: "int main() { putint(42); return 0; }", Target: "flat"})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d\n%s", resp.StatusCode, raw)
	}
	if !strings.Contains(string(raw), `"diagnostics":[]`) {
		t.Errorf("clean program: want empty diagnostics array, got %s", raw)
	}
	var rep LintResponse
	if err := json.Unmarshal(raw, &rep); err != nil {
		t.Fatal(err)
	}
	if rep.Errors+rep.Warnings+rep.Infos != 0 {
		t.Errorf("clean program reported findings: %+v", rep)
	}
}

// TestLintEndpointBadInput covers the failure contract: source that does not
// compile is a 400 compile_error (linting never ran), and request-shape
// problems are plain 400s.
func TestLintEndpointBadInput(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	resp, raw := postJSON(t, ts.URL+"/v1/lint",
		LintRequest{Source: "int main( { return 0; }"})
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("status = %d, want 400\n%s", resp.StatusCode, raw)
	}
	if d := decodeError(t, raw); d.Code != "compile_error" {
		t.Errorf("code = %q, want compile_error (%s)", d.Code, raw)
	}

	resp, raw = postJSON(t, ts.URL+"/v1/lint", LintRequest{Source: "  "})
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("empty source: status %d, want 400\n%s", resp.StatusCode, raw)
	}
	resp, raw = postJSON(t, ts.URL+"/v1/lint", LintRequest{Source: "int main() {}", Target: "vax"})
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad target: status %d, want 400\n%s", resp.StatusCode, raw)
	}
}

// TestBenchmarksEndpoint checks the suite listing.
func TestBenchmarksEndpoint(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	resp, raw := getBody(t, ts.URL+"/v1/benchmarks")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	var list []BenchmarkInfo
	if err := json.Unmarshal(raw, &list); err != nil {
		t.Fatal(err)
	}
	names := map[string]bool{}
	for _, b := range list {
		names[b.Name] = true
	}
	for _, want := range []string{"fib", "hanoi", "acker", "sieve", "search"} {
		if !names[want] {
			t.Errorf("benchmark %q missing from listing", want)
		}
	}
}

// TestExperimentEndpoint renders a static experiment and rejects unknown
// IDs with 404.
func TestExperimentEndpoint(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	resp, raw := getBody(t, ts.URL+"/v1/experiments/E2")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d\n%s", resp.StatusCode, raw)
	}
	var e ExperimentResponse
	if err := json.Unmarshal(raw, &e); err != nil {
		t.Fatal(err)
	}
	if e.ID != "E2" || !strings.Contains(e.Table, "RISC I") {
		t.Errorf("unexpected experiment body: %+v", e)
	}

	resp, raw = getBody(t, ts.URL+"/v1/experiments/E99")
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown id: status %d, want 404\n%s", resp.StatusCode, raw)
	}
	if d := decodeError(t, raw); d.Code != "not_found" {
		t.Errorf("code = %q, want not_found", d.Code)
	}
}

// stubLab is an Experimenter that answers instantly with a canned table,
// or an error when told to fail — the injection seam that lets serving
// tests avoid real benchmark sweeps.
type stubLab struct {
	table string
	err   error
}

func (l *stubLab) Experiment(id string) (string, error) {
	if l.err != nil {
		return "", l.err
	}
	return l.table + " (" + id + ")", nil
}

// TestInjectedLab proves Config.Lab substitutes the experiment backend:
// responses come from the stub, and a failing stub maps to a typed 500.
func TestInjectedLab(t *testing.T) {
	_, ts := newTestServer(t, Config{Lab: &stubLab{table: "stub table"}})
	resp, raw := getBody(t, ts.URL+"/v1/experiments/E4")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d\n%s", resp.StatusCode, raw)
	}
	var e ExperimentResponse
	if err := json.Unmarshal(raw, &e); err != nil {
		t.Fatal(err)
	}
	if e.Table != "stub table (E4)" {
		t.Errorf("table = %q, want the stub's answer", e.Table)
	}

	_, ts = newTestServer(t, Config{Lab: &stubLab{err: errors.New("lab exploded")}})
	resp, raw = getBody(t, ts.URL+"/v1/experiments/E4")
	if resp.StatusCode != http.StatusInternalServerError {
		t.Fatalf("failing lab: status %d, want 500\n%s", resp.StatusCode, raw)
	}
	if d := decodeError(t, raw); d.Code != "internal" {
		t.Errorf("code = %q, want internal", d.Code)
	}
}

// TestHealthzAndMetrics smoke-checks the operational endpoints.
func TestHealthzAndMetrics(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	resp, raw := getBody(t, ts.URL+"/healthz")
	if resp.StatusCode != http.StatusOK || string(raw) != "ok\n" {
		t.Fatalf("healthz: %d %q", resp.StatusCode, raw)
	}
	postJSON(t, ts.URL+"/v1/run", RunRequest{Source: fibSrc})
	_, raw = getBody(t, ts.URL+"/metrics")
	text := string(raw)
	for _, want := range []string{
		`riscd_requests_total{endpoint="/v1/run",status="200"} 1`,
		"riscd_request_duration_seconds_bucket",
		"riscd_image_cache_misses_total 1",
		"riscd_queue_depth 0",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("metrics missing %q:\n%s", want, text)
		}
	}
	if metricValue(t, text, "riscd_simulated_instructions_total") <= 0 {
		t.Error("simulated instruction counter did not advance")
	}
}

// TestConsoleTruncationSurfaced runs a guest that floods the console and
// checks the truncation marker reaches the response. The server's console
// device cap (1 MiB) is what keeps such guests from growing the process.
func TestConsoleTruncationSurfaced(t *testing.T) {
	src := `
int main() {
    int i;
    for (i = 0; i < 300000; i = i + 1) putint(1234567);
    return 0;
}`
	_, ts := newTestServer(t, Config{Timeout: 60 * time.Second, MaxCycles: 400_000_000})
	resp, raw := postJSON(t, ts.URL+"/v1/run", RunRequest{Source: src})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d\n%s", resp.StatusCode, raw)
	}
	var run RunResponse
	if err := json.Unmarshal(raw, &run); err != nil {
		t.Fatal(err)
	}
	if !run.ConsoleTruncated {
		t.Error("console_truncated = false for a flooding guest")
	}
	if len(run.Console) > 1<<20 {
		t.Errorf("console grew past the cap: %d bytes", len(run.Console))
	}
}

// TestCacheHitRate drives repeated identical traffic and asserts the >90%
// hit rate the acceptance criteria demand.
func TestCacheHitRate(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	const n = 40
	for i := 0; i < n; i++ {
		resp, raw := postJSON(t, ts.URL+"/v1/run", RunRequest{Source: fibSrc})
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("request %d: status %d\n%s", i, resp.StatusCode, raw)
		}
	}
	_, raw := getBody(t, ts.URL+"/metrics")
	hits := metricValue(t, string(raw), "riscd_image_cache_hits_total")
	misses := metricValue(t, string(raw), "riscd_image_cache_misses_total")
	if rate := hits / (hits + misses); rate <= 0.9 {
		t.Errorf("cache hit rate = %.2f (hits %v, misses %v), want > 0.90", rate, hits, misses)
	}
}

// TestConcurrentTrafficAndLeaks hammers the pool and a tiny LRU from many
// goroutines (meaningful under -race), then asserts the server leaks no
// goroutines once traffic stops.
func TestConcurrentTrafficAndLeaks(t *testing.T) {
	before := runtime.NumGoroutine()

	s, ts := newTestServer(t, Config{Workers: 4, QueueDepth: 8, CacheEntries: 4})
	var wg sync.WaitGroup
	var shed, ok, other atomic64
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 15; i++ {
				// Cycle through more sources than cache entries so the
				// LRU evicts under concurrent access.
				want := fmt.Sprint((g*15 + i) % 6)
				src := fmt.Sprintf("int main() { putint(%s); return 0; }", want)
				// Every third request takes the streaming path, so the SSE
				// writer, the monitor hooks and the buffered path all race
				// over the same pool, cache and metrics.
				if i%3 == 2 {
					resp := postStream(t, context.Background(), ts.URL, RunRequest{Source: src})
					if resp.StatusCode == http.StatusTooManyRequests {
						resp.Body.Close()
						shed.add(1)
						continue
					}
					if resp.StatusCode != http.StatusOK {
						resp.Body.Close()
						other.add(1)
						t.Errorf("stream status %d", resp.StatusCode)
						continue
					}
					events := readAllSSE(t, resp.Body)
					resp.Body.Close()
					if last := events[len(events)-1]; last.name != "result" {
						t.Errorf("stream terminal event %q: %s", last.name, last.data)
					} else {
						ok.add(1)
					}
					continue
				}
				resp, raw := postJSON(t, ts.URL+"/v1/run", RunRequest{Source: src})
				switch resp.StatusCode {
				case http.StatusOK:
					ok.add(1)
					var run RunResponse
					if err := json.Unmarshal(raw, &run); err != nil {
						t.Error(err)
					} else if run.Console != want {
						t.Errorf("console = %q, want %q", run.Console, want)
					}
				case http.StatusTooManyRequests:
					shed.add(1)
				default:
					other.add(1)
					t.Errorf("unexpected status %d: %s", resp.StatusCode, raw)
				}
			}
		}(g)
	}
	wg.Wait()
	if ok.load() == 0 {
		t.Fatal("no request succeeded")
	}
	t.Logf("ok=%d shed=%d other=%d", ok.load(), shed.load(), other.load())

	ts.Close()
	s.CancelRuns()

	// The worker pool spawns nothing persistent: once the httptest server
	// closes its keep-alive connections, the goroutine count must return
	// to the baseline (small slack for the test runtime itself).
	deadline := time.Now().Add(5 * time.Second)
	for {
		runtime.GC()
		if n := runtime.NumGoroutine(); n <= before+3 {
			break
		} else if time.Now().After(deadline) {
			buf := make([]byte, 1<<16)
			t.Fatalf("goroutines: %d before, %d after\n%s",
				before, n, buf[:runtime.Stack(buf, true)])
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// atomic64 is a tiny counter safe under -race without importing sync/atomic
// typed wrappers everywhere.
type atomic64 struct {
	mu sync.Mutex
	n  int64
}

func (a *atomic64) add(d int64) { a.mu.Lock(); a.n += d; a.mu.Unlock() }
func (a *atomic64) load() int64 { a.mu.Lock(); defer a.mu.Unlock(); return a.n }

// TestRunEngineSelection pins the engine knob on /v1/run: all engines
// produce identical results, the engine spelling is validated, and the
// per-engine run counter shows up in /metrics.
func TestRunEngineSelection(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	src := "main: add r0,#6,r10\n stl r10,(r0)#-252\n ret r25,#8\n nop\n"
	engines := []string{"step", "block", "trace"}
	got := make([]RunResponse, len(engines))
	for i, engine := range engines {
		resp, raw := postJSON(t, ts.URL+"/v1/run",
			RunRequest{Source: src, Lang: "asm", Engine: engine})
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("engine %q: status %d\n%s", engine, resp.StatusCode, raw)
		}
		if err := json.Unmarshal(raw, &got[i]); err != nil {
			t.Fatal(err)
		}
	}
	for i := 1; i < len(engines); i++ {
		got[i].Cached = got[0].Cached // the image cache hit is the only allowed difference
		if !reflect.DeepEqual(got[0], got[i]) {
			t.Errorf("engines disagree:\n%s: %+v\n%s: %+v",
				engines[0], got[0], engines[i], got[i])
		}
	}

	resp, raw := postJSON(t, ts.URL+"/v1/run",
		RunRequest{Source: src, Lang: "asm", Engine: "warp"})
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad engine: status %d\n%s", resp.StatusCode, raw)
	}
	if d := decodeError(t, raw); d.Code != "bad_request" {
		t.Errorf("bad engine: code %q, want bad_request", d.Code)
	}

	_, raw = getBody(t, ts.URL+"/metrics")
	for _, want := range []string{
		`riscd_runs_total{engine="step"} 1`,
		`riscd_runs_total{engine="block"} 1`,
		`riscd_runs_total{engine="trace"} 1`,
	} {
		if !strings.Contains(string(raw), want) {
			t.Errorf("metrics missing %q", want)
		}
	}
}

// TestRunPipelined pins the pipelined target end to end: the response
// carries the cycle-accurate CPI/stall breakdown, the two control policies
// differ only in flush bubbles, invalid policies are rejected with a typed
// 400, and the pipeline counters show up in /metrics.
func TestRunPipelined(t *testing.T) {
	_, ts := newTestServer(t, Config{})

	var byPolicy [2]RunResponse
	for i, policy := range []string{"delayed", "squash"} {
		resp, raw := postJSON(t, ts.URL+"/v1/run",
			RunRequest{Source: fibSrc, Target: "pipelined", Policy: policy})
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("%s: status %d\n%s", policy, resp.StatusCode, raw)
		}
		if err := json.Unmarshal(raw, &byPolicy[i]); err != nil {
			t.Fatal(err)
		}
		run := byPolicy[i]
		if run.Console != "55" {
			t.Errorf("%s: console = %q, want 55", policy, run.Console)
		}
		p := run.Pipeline
		if p == nil {
			t.Fatalf("%s: response has no pipeline section\n%s", policy, raw)
		}
		if p.Policy != policy {
			t.Errorf("policy echoed as %q, want %q", p.Policy, policy)
		}
		if p.CPI < 1 || p.Cycles != run.Cycles {
			t.Errorf("%s: inconsistent pipeline stats: %+v vs cycles %d", policy, p, run.Cycles)
		}
		if p.RefCycles == 0 || p.RefCycles == p.Cycles {
			t.Errorf("%s: ref cycles %d vs pipelined %d — single-cycle baseline lost",
				policy, p.RefCycles, p.Cycles)
		}
	}
	dl, sq := byPolicy[0].Pipeline, byPolicy[1].Pipeline
	if dl.FlushBubbleCycles != 0 {
		t.Errorf("delayed policy charged %d flush bubbles", dl.FlushBubbleCycles)
	}
	if sq.Cycles-dl.Cycles != sq.FlushBubbleCycles {
		t.Errorf("policy gap %d cycles, flush bubbles %d", sq.Cycles-dl.Cycles, sq.FlushBubbleCycles)
	}

	// A non-pipelined run must not grow a pipeline section.
	resp, raw := postJSON(t, ts.URL+"/v1/run", RunRequest{Source: fibSrc, Target: "windowed"})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("windowed: status %d\n%s", resp.StatusCode, raw)
	}
	var plain RunResponse
	if err := json.Unmarshal(raw, &plain); err != nil {
		t.Fatal(err)
	}
	if plain.Pipeline != nil {
		t.Error("windowed run reported pipeline stats")
	}

	resp, raw = postJSON(t, ts.URL+"/v1/run",
		RunRequest{Source: fibSrc, Target: "pipelined", Policy: "oracle"})
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad policy: status %d\n%s", resp.StatusCode, raw)
	}
	if d := decodeError(t, raw); d.Code != "bad_request" {
		t.Errorf("bad policy: code %q, want bad_request", d.Code)
	}

	_, raw = getBody(t, ts.URL+"/metrics")
	for _, want := range []string{
		`riscd_pipeline_runs_total{policy="delayed"} 1`,
		`riscd_pipeline_runs_total{policy="squash"} 1`,
		"riscd_pipeline_cycles_total ",
		`riscd_pipeline_stall_cycles_total{cause="flush"} `,
	} {
		if !strings.Contains(string(raw), want) {
			t.Errorf("metrics missing %q", want)
		}
	}
}

// TestRunTraceTierMetrics runs a loop hot enough for the trace tier to
// compile a superblock (and take its guarded side exit when the loop
// ends), then checks the /metrics trace counters moved.
func TestRunTraceTierMetrics(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	src := `main:	add r0,#0,r1
	loop:	add r1,#1,r1
		cmp r1,#2000
		blt loop
		nop
		ret r25,#8
		nop
	`
	resp, raw := postJSON(t, ts.URL+"/v1/run",
		RunRequest{Source: src, Lang: "asm", Engine: "trace"})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d\n%s", resp.StatusCode, raw)
	}

	_, raw = getBody(t, ts.URL+"/metrics")
	text := string(raw)
	for metric, needNonZero := range map[string]bool{
		"riscd_trace_compiled_total":      true,
		"riscd_trace_side_exits_total":    true,
		"riscd_trace_invalidations_total": false,
	} {
		if val := metricValue(t, text, metric); needNonZero && val == 0 {
			t.Errorf("%s = 0, want > 0", metric)
		}
	}
}

// TestRunSMP covers the multi-core run path: a parallel program on the
// shared-memory machine, the SMP response section, the server core ceiling,
// the windowed-only rule, and the smp metrics counters.
func TestRunSMP(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 2, MaxCores: 4})

	resp, raw := postJSON(t, ts.URL+"/v1/run", RunRequest{Source: parSrc, Cores: 2})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("cores=2: status %d: %s", resp.StatusCode, raw)
	}
	var out RunResponse
	if err := json.Unmarshal(raw, &out); err != nil {
		t.Fatal(err)
	}
	if out.Console != "3" {
		t.Fatalf("console %q, want 3", out.Console)
	}
	if out.SMP == nil || out.SMP.Cores != 2 || out.SMP.Spawns == 0 {
		t.Fatalf("SMP section %+v, want 2 cores with spawns", out.SMP)
	}
	if len(out.SMP.PerCore) != 2 {
		t.Fatalf("per-core stats %+v, want 2 entries", out.SMP.PerCore)
	}

	// Single-core requests must not grow an SMP section.
	resp, raw = postJSON(t, ts.URL+"/v1/run", RunRequest{Source: fibSrc, Cores: 1})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("cores=1: status %d: %s", resp.StatusCode, raw)
	}
	out = RunResponse{}
	if err := json.Unmarshal(raw, &out); err != nil {
		t.Fatal(err)
	}
	if out.SMP != nil {
		t.Fatalf("cores=1 grew an SMP section: %+v", out.SMP)
	}

	// Above the server ceiling and on the wrong target: typed 400s.
	for _, req := range []RunRequest{
		{Source: parSrc, Cores: 8},
		{Source: parSrc, Cores: -1},
		{Source: fibSrc, Cores: 2, Target: "cisc"},
		{Source: fibSrc, Cores: 2, Target: "flat"},
		{Source: fibSrc, Cores: 2, Target: "pipelined"},
	} {
		resp, raw := postJSON(t, ts.URL+"/v1/run", req)
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("cores=%d target=%q: status %d, want 400: %s",
				req.Cores, req.Target, resp.StatusCode, raw)
		}
		if d := decodeError(t, raw); d.Code != "bad_request" {
			t.Fatalf("cores=%d target=%q: code %q, want bad_request", req.Cores, req.Target, d.Code)
		}
	}

	// The multi-core run above must show up in the smp counters.
	resp, raw = getBody(t, ts.URL+"/metrics")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/metrics: %d", resp.StatusCode)
	}
	body := string(raw)
	for _, want := range []string{
		"riscd_smp_runs_total 1\n",
		"riscd_smp_cores_total 2\n",
		"riscd_smp_contention_cycles_total ",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}
}

// racySrc increments a shared global from two unlocked workers; each loops
// long enough that the instances always overlap, so the detector flags it
// under every schedule.
const racySrc = `
int counter;
void w(int k) {
    int i;
    i = 0;
    while (i < 200) {
        counter = counter + k;
        i = i + 1;
    }
}
int main() {
    int h1; int h2;
    h1 = spawn(w, 1);
    h2 = spawn(w, 2);
    join(h1);
    join(h2);
    putint(counter);
    return 0;
}`

// TestRunRace covers the dynamic race detector on /v1/run: a racy program
// reports its races with core and line attribution, a locked program
// reports none, the windowed-only rule holds, and the race counters tick.
func TestRunRace(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 2, MaxCores: 4})

	resp, raw := postJSON(t, ts.URL+"/v1/run", RunRequest{Source: racySrc, Cores: 4, Race: true})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("racy run: status %d: %s", resp.StatusCode, raw)
	}
	var out RunResponse
	if err := json.Unmarshal(raw, &out); err != nil {
		t.Fatal(err)
	}
	if len(out.Races) == 0 {
		t.Fatalf("racy program reported no races: %s", raw)
	}
	for _, r := range out.Races {
		if r.Prev.Core == r.Curr.Core {
			t.Errorf("race %+v pairs two accesses from the same core", r)
		}
		if r.Prev.Line == 0 || r.Curr.Line == 0 {
			t.Errorf("race %+v lacks line attribution", r)
		}
	}

	// A lock-disciplined program under the same flag: no races, right answer.
	resp, raw = postJSON(t, ts.URL+"/v1/run", RunRequest{Source: parSrc, Cores: 2, Race: true})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("clean run: status %d: %s", resp.StatusCode, raw)
	}
	out = RunResponse{}
	if err := json.Unmarshal(raw, &out); err != nil {
		t.Fatal(err)
	}
	if out.Console != "3" || len(out.Races) != 0 {
		t.Fatalf("clean run under race mode: console %q, races %+v", out.Console, out.Races)
	}

	// The detector rides the shared-memory machine: windowed-only.
	resp, raw = postJSON(t, ts.URL+"/v1/run", RunRequest{Source: fibSrc, Target: "flat", Race: true})
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("flat + race: status %d, want 400: %s", resp.StatusCode, raw)
	}
	if d := decodeError(t, raw); d.Code != "bad_request" {
		t.Fatalf("flat + race: code %q, want bad_request", d.Code)
	}

	_, raw = getBody(t, ts.URL+"/metrics")
	body := string(raw)
	for _, want := range []string{
		"riscd_race_runs_total 2\n",
		"riscd_races_found_total ",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}
}

// TestLintSMPTarget checks /v1/lint's "smp" target: the concurrency passes
// run forced on windowed code, flag the racy program, and stay quiet on the
// lock-disciplined one.
func TestLintSMPTarget(t *testing.T) {
	_, ts := newTestServer(t, Config{})

	resp, raw := postJSON(t, ts.URL+"/v1/lint", LintRequest{Source: racySrc, Target: "smp"})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("lint smp: status %d: %s", resp.StatusCode, raw)
	}
	var out LintResponse
	if err := json.Unmarshal(raw, &out); err != nil {
		t.Fatal(err)
	}
	if out.Warnings == 0 {
		t.Fatalf("racy program linted clean under target smp: %s", raw)
	}
	found := false
	for _, d := range out.Diagnostics {
		if d.Pass == "smp-race" {
			found = true
		}
	}
	if !found {
		t.Errorf("no smp-race diagnostic: %s", raw)
	}

	resp, raw = postJSON(t, ts.URL+"/v1/lint", LintRequest{Source: parSrc, Target: "smp"})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("lint smp clean: status %d: %s", resp.StatusCode, raw)
	}
	out = LintResponse{}
	if err := json.Unmarshal(raw, &out); err != nil {
		t.Fatal(err)
	}
	if out.Warnings != 0 || out.Errors != 0 {
		t.Fatalf("lock-disciplined program linted dirty under target smp: %s", raw)
	}
}
