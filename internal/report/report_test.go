package report

import (
	"strings"
	"testing"
)

func TestRenderAlignment(t *testing.T) {
	tb := &Table{
		Title:   "T",
		Note:    "note",
		Headers: []string{"name", "value"},
	}
	tb.AddRow("short", "1")
	tb.AddRow("a-much-longer-name", "12,345")
	out := tb.Render()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if lines[0] != "T" || lines[1] != "note" {
		t.Errorf("title/note lines wrong: %q, %q", lines[0], lines[1])
	}
	// All data lines must be equally wide (right-aligned numeric column).
	if len(lines) != 6 {
		t.Fatalf("expected 6 lines, got %d:\n%s", len(lines), out)
	}
	if len(lines[3]) < len("a-much-longer-name") {
		t.Error("separator shorter than widest row")
	}
	if !strings.HasSuffix(lines[4], "     1") && !strings.HasSuffix(lines[4], " 1") {
		t.Errorf("numeric column not right-aligned: %q", lines[4])
	}
	if !strings.HasSuffix(lines[5], "12,345") {
		t.Errorf("row lost: %q", lines[5])
	}
}

func TestNum(t *testing.T) {
	cases := map[uint64]string{
		0: "0", 7: "7", 999: "999", 1000: "1,000",
		1234567: "1,234,567", 1000000000: "1,000,000,000",
	}
	for in, want := range cases {
		if got := Num(in); got != want {
			t.Errorf("Num(%d) = %q, want %q", in, got, want)
		}
	}
}

func TestRatioPct(t *testing.T) {
	if Ratio(3, 2) != "1.50" || Ratio(1, 0) != "-" {
		t.Error("Ratio wrong")
	}
	if Pct(1, 4) != "25.0%" || Pct(1, 0) != "-" {
		t.Error("Pct wrong")
	}
}

func TestSeconds(t *testing.T) {
	cases := map[float64]string{
		2.5:      "2.50s",
		0.0021:   "2.10ms",
		0.000004: "4us",
	}
	for in, want := range cases {
		if got := Seconds(in); got != want {
			t.Errorf("Seconds(%g) = %q, want %q", in, got, want)
		}
	}
}
