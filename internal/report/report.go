// Package report renders the evaluation tables in aligned plain text, the
// way the paper's tables read: one row per benchmark or configuration, a
// totals/averages row where meaningful.
package report

import (
	"fmt"
	"strings"
)

// Table is a titled grid. Cells are preformatted strings; numeric columns
// should be formatted by the caller (Num and Ratio help).
type Table struct {
	Title   string
	Note    string // one-line caption under the title
	Headers []string
	Rows    [][]string
}

// AddRow appends a row.
func (t *Table) AddRow(cells ...string) { t.Rows = append(t.Rows, cells) }

// Render formats the table with aligned columns.
func (t *Table) Render() string {
	widths := make([]int, len(t.Headers))
	for i, h := range t.Headers {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "%s\n", t.Title)
	}
	if t.Note != "" {
		fmt.Fprintf(&b, "%s\n", t.Note)
	}
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			// Right-align everything but the first column.
			if i == 0 {
				fmt.Fprintf(&b, "%-*s", widths[i], c)
			} else {
				fmt.Fprintf(&b, "%*s", widths[i], c)
			}
		}
		b.WriteByte('\n')
	}
	line(t.Headers)
	total := 0
	for _, w := range widths {
		total += w + 2
	}
	b.WriteString(strings.Repeat("-", total-2))
	b.WriteByte('\n')
	for _, row := range t.Rows {
		line(row)
	}
	return b.String()
}

// Num formats an integer with thousands separators.
func Num(v uint64) string {
	s := fmt.Sprintf("%d", v)
	if len(s) <= 3 {
		return s
	}
	var parts []string
	for len(s) > 3 {
		parts = append([]string{s[len(s)-3:]}, parts...)
		s = s[:len(s)-3]
	}
	return s + "," + strings.Join(parts, ",")
}

// Ratio formats a ratio to two decimals.
func Ratio(a, b float64) string {
	if b == 0 {
		return "-"
	}
	return fmt.Sprintf("%.2f", a/b)
}

// Pct formats a percentage to one decimal.
func Pct(part, whole float64) string {
	if whole == 0 {
		return "-"
	}
	return fmt.Sprintf("%.1f%%", 100*part/whole)
}

// Seconds formats a simulated duration in engineering units.
func Seconds(s float64) string {
	switch {
	case s >= 1:
		return fmt.Sprintf("%.2fs", s)
	case s >= 1e-3:
		return fmt.Sprintf("%.2fms", s*1e3)
	default:
		return fmt.Sprintf("%.0fus", s*1e6)
	}
}
