package isa

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestInstructionCount(t *testing.T) {
	if got := len(Ops()); got != NumInstructions {
		t.Fatalf("instruction set has %d opcodes, want %d (the paper's count)", got, NumInstructions)
	}
}

func TestOpMetadata(t *testing.T) {
	counts := map[Category]int{}
	for _, op := range Ops() {
		counts[op.Cat()]++
		if op.Name() == "" {
			t.Errorf("opcode %#02x has no name", uint8(op))
		}
		back, ok := ByName(op.Name())
		if !ok || back != op {
			t.Errorf("ByName(%q) = %v, %v; want %v", op.Name(), back, ok, op)
		}
	}
	want := map[Category]int{CatALU: 12, CatLoad: 5, CatStore: 3, CatControl: 7, CatMisc: 4}
	for cat, n := range want {
		if counts[cat] != n {
			t.Errorf("category %v has %d instructions, want %d", cat, counts[cat], n)
		}
	}
}

func TestByNameUnknown(t *testing.T) {
	if _, ok := ByName("bogus"); ok {
		t.Fatal("ByName accepted an unknown mnemonic")
	}
}

func TestEncodeDecodeExamples(t *testing.T) {
	tests := []struct {
		in   Inst
		want string
	}{
		{Inst{Op: OpADD, Rs1: 1, Rs2: 2, Rd: 3}, "add r1,r2,r3"},
		{Inst{Op: OpSUB, SCC: true, Rs1: 4, Imm: true, Imm13: -7, Rd: 0}, "sub! r4,#-7,r0"},
		{Inst{Op: OpLDL, Rs1: 2, Imm: true, Imm13: 8, Rd: 5}, "ldl (r2)#8,r5"},
		{Inst{Op: OpSTB, Rs1: 9, Rs2: 3, Rd: 7}, "stb r7,(r9)r3"},
		{Inst{Op: OpJMP, Rd: uint8(CondEQ), Rs1: 2, Imm: true, Imm13: 0}, "jmp eq,(r2)#0"},
		{Inst{Op: OpJMPR, Rd: uint8(CondALW), Imm19: -12}, "jmpr alw,#-12"},
		{Inst{Op: OpCALL, Rd: 25, Rs1: 2, Imm: true, Imm13: 4}, "call r25,(r2)#4"},
		{Inst{Op: OpCALLR, Rd: 25, Imm19: 160}, "callr r25,#160"},
		{Inst{Op: OpRET, Rd: 25, Imm: true, Imm13: 8}, "ret r25,#8"},
		{Inst{Op: OpLDHI, Rd: 5, Imm19: 4096}, "ldhi r5,#4096"},
		{Inst{Op: OpGTLPC, Rd: 6}, "gtlpc r6"},
		{Inst{Op: OpGETPSW, Rd: 1}, "getpsw r1"},
		{Inst{Op: OpPUTPSW, Rs1: 1, Imm: true, Imm13: 0}, "putpsw r1,#0"},
	}
	for _, tt := range tests {
		w := tt.in.Encode()
		got, err := Decode(w)
		if err != nil {
			t.Errorf("Decode(Encode(%v)): %v", tt.in, err)
			continue
		}
		if got != tt.in {
			t.Errorf("round trip %v -> %#08x -> %v", tt.in, w, got)
		}
		if got.String() != tt.want {
			t.Errorf("String() = %q, want %q", got.String(), tt.want)
		}
	}
}

func TestDecodeInvalidOpcode(t *testing.T) {
	if _, err := Decode(0); err == nil {
		t.Error("Decode(0) should fail: opcode 0 is undefined")
	}
	if _, err := Decode(0x7F << 25); err == nil {
		t.Error("Decode of opcode 0x7f should fail")
	}
}

func TestCheckRanges(t *testing.T) {
	bad := []Inst{
		{Op: OpADD, Rs1: 32},
		{Op: OpADD, Rd: 40},
		{Op: OpADD, Rs2: 33},
		{Op: OpADD, Imm: true, Imm13: MaxImm13 + 1},
		{Op: OpADD, Imm: true, Imm13: MinImm13 - 1},
		{Op: OpLDHI, Imm19: MaxImm19 + 1},
		{Op: OpCALLR, Imm19: MinImm19 - 1},
		{Op: opInvalid},
	}
	for _, i := range bad {
		if err := i.Check(); err == nil {
			t.Errorf("Check(%+v) accepted an invalid instruction", i)
		}
	}
}

func TestEncodePanicsOnInvalid(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Encode of out-of-range immediate did not panic")
		}
	}()
	Inst{Op: OpADD, Imm: true, Imm13: 99999}.Encode()
}

// randInst builds a random canonical instruction: every field that the
// format does not carry is zero, matching what Decode produces.
func randInst(r *rand.Rand) Inst {
	ops := Ops()
	i := Inst{Op: ops[r.Intn(len(ops))]}
	i.SCC = r.Intn(2) == 1
	i.Rd = uint8(r.Intn(32))
	if i.Op.Long() {
		i.Imm19 = int32(r.Intn(MaxImm19-MinImm19+1)) + MinImm19
		return i
	}
	i.Rs1 = uint8(r.Intn(32))
	if r.Intn(2) == 1 {
		i.Imm = true
		i.Imm13 = int32(r.Intn(MaxImm13-MinImm13+1)) + MinImm13
	} else {
		i.Rs2 = uint8(r.Intn(32))
	}
	return i
}

func TestEncodeDecodeRoundTripProperty(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	f := func() bool {
		in := randInst(r)
		out, err := Decode(in.Encode())
		return err == nil && out == in
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 5000}); err != nil {
		t.Error(err)
	}
}

func TestSignExtendProperty(t *testing.T) {
	f := func(v uint32) bool {
		got13 := signExtend(v&maskImm13, 13)
		got19 := signExtend(v&maskImm19, 19)
		return got13 >= MinImm13 && got13 <= MaxImm13 &&
			got19 >= MinImm19 && got19 <= MaxImm19 &&
			uint32(got13)&maskImm13 == v&maskImm13 &&
			uint32(got19)&maskImm19 == v&maskImm19
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestCondNegateProperties(t *testing.T) {
	f := func(c uint8, z, n, v, carry bool) bool {
		cond := Cond(c & 0xF)
		flags := Flags{Z: z, N: n, V: v, C: carry}
		neg := cond.Negate()
		return neg.Negate() == cond && neg.Holds(flags) == !cond.Holds(flags)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestCondSemantics(t *testing.T) {
	// Flags as produced by `sub! a,b,r0` for small signed operands.
	subFlags := func(a, b int32) Flags {
		diff := a - b
		ua, ub := uint64(uint32(a)), uint64(uint32(b))
		return Flags{
			Z: diff == 0,
			N: diff < 0,
			V: (a >= 0 && b < 0 && diff < 0) || (a < 0 && b >= 0 && diff >= 0),
			C: ua >= ub, // no borrow
		}
	}
	vals := []int32{-3, -1, 0, 1, 2, 100}
	for _, a := range vals {
		for _, b := range vals {
			f := subFlags(a, b)
			checks := []struct {
				cond Cond
				want bool
			}{
				{CondEQ, a == b}, {CondNE, a != b},
				{CondLT, a < b}, {CondGE, a >= b},
				{CondGT, a > b}, {CondLE, a <= b},
				{CondLO, uint32(a) < uint32(b)}, {CondHIS, uint32(a) >= uint32(b)},
				{CondHI, uint32(a) > uint32(b)}, {CondLOS, uint32(a) <= uint32(b)},
				{CondALW, true}, {CondNEV, false},
			}
			for _, c := range checks {
				if got := c.cond.Holds(f); got != c.want {
					t.Errorf("a=%d b=%d cond %v: got %v, want %v", a, b, c.cond, got, c.want)
				}
			}
		}
	}
}

func TestCondNames(t *testing.T) {
	for c := Cond(0); c < 16; c++ {
		back, ok := CondByName(c.String())
		if !ok || back != c {
			t.Errorf("CondByName(%q) = %v, %v", c.String(), back, ok)
		}
	}
	if _, ok := CondByName("zz"); ok {
		t.Error("CondByName accepted unknown name")
	}
}

func TestDisasmWordFallback(t *testing.T) {
	if got := DisasmWord(0); got != ".word 0x00000000" {
		t.Errorf("DisasmWord(0) = %q", got)
	}
	w := Inst{Op: OpADD, Rs1: 1, Rs2: 2, Rd: 3}.Encode()
	if got := DisasmWord(w); got != "add r1,r2,r3" {
		t.Errorf("DisasmWord = %q", got)
	}
}
