package isa

import "fmt"

// Flags holds the four RISC I condition-code bits. Any instruction may set
// them (the SCC bit); only JMP/JMPR read them.
type Flags struct {
	Z bool // zero
	N bool // negative
	V bool // signed overflow
	C bool // carry out
}

// Cond is a 4-bit jump condition carried in the Rd field of JMP and JMPR.
type Cond uint8

// The sixteen RISC I jump conditions.
const (
	CondNEV Cond = iota // never (used to encode no-ops in the jump unit)
	CondALW             // always
	CondEQ              // equal (Z)
	CondNE              // not equal (!Z)
	CondGT              // signed greater
	CondLE              // signed less or equal
	CondGE              // signed greater or equal
	CondLT              // signed less
	CondHI              // unsigned higher
	CondLOS             // unsigned lower or same
	CondLO              // unsigned lower (no carry)
	CondHIS             // unsigned higher or same (carry)
	CondPL              // plus (!N)
	CondMI              // minus (N)
	CondNV              // no overflow (!V)
	CondV               // overflow (V)
)

var condNames = [16]string{
	"nev", "alw", "eq", "ne", "gt", "le", "ge", "lt",
	"hi", "los", "lo", "his", "pl", "mi", "nv", "v",
}

func (c Cond) String() string {
	if c < 16 {
		return condNames[c]
	}
	return fmt.Sprintf("cond%d", uint8(c))
}

// CondByName maps an assembler condition name to its encoding.
func CondByName(name string) (Cond, bool) {
	for i, n := range condNames {
		if n == name {
			return Cond(i), true
		}
	}
	return 0, false
}

// Holds reports whether the condition is satisfied by the given flags.
// The carry convention follows the paper's subtract-sets-carry-on-no-borrow
// rule, so after `sub! a,b,r0`: HIS means a >= b unsigned.
func (c Cond) Holds(f Flags) bool {
	switch c {
	case CondNEV:
		return false
	case CondALW:
		return true
	case CondEQ:
		return f.Z
	case CondNE:
		return !f.Z
	case CondGT:
		return !f.Z && f.N == f.V
	case CondLE:
		return f.Z || f.N != f.V
	case CondGE:
		return f.N == f.V
	case CondLT:
		return f.N != f.V
	case CondHI:
		return f.C && !f.Z
	case CondLOS:
		return !f.C || f.Z
	case CondLO:
		return !f.C
	case CondHIS:
		return f.C
	case CondPL:
		return !f.N
	case CondMI:
		return f.N
	case CondNV:
		return !f.V
	case CondV:
		return f.V
	}
	return false
}

// Negate returns the complementary condition (CondALW <-> CondNEV, etc.).
// The compiler's branch lowering relies on Negate(c).Holds == !c.Holds.
func (c Cond) Negate() Cond {
	switch c {
	case CondNEV:
		return CondALW
	case CondALW:
		return CondNEV
	case CondEQ:
		return CondNE
	case CondNE:
		return CondEQ
	case CondGT:
		return CondLE
	case CondLE:
		return CondGT
	case CondGE:
		return CondLT
	case CondLT:
		return CondGE
	case CondHI:
		return CondLOS
	case CondLOS:
		return CondHI
	case CondLO:
		return CondHIS
	case CondHIS:
		return CondLO
	case CondPL:
		return CondMI
	case CondMI:
		return CondPL
	case CondNV:
		return CondV
	case CondV:
		return CondNV
	}
	return CondNEV
}
