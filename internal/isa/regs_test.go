package isa

import (
	"reflect"
	"testing"
)

func TestSourceRegs(t *testing.T) {
	cases := []struct {
		name string
		in   Inst
		want []uint8
	}{
		{"alu r/r", Inst{Op: OpADD, Rd: 3, Rs1: 1, Rs2: 2}, []uint8{1, 2}},
		{"alu r/imm", Inst{Op: OpSUB, Rd: 3, Rs1: 4, Imm: true, Imm13: 7}, []uint8{4}},
		{"load", Inst{Op: OpLDL, Rd: 5, Rs1: 9, Imm: true}, []uint8{9}},
		{"store reads data", Inst{Op: OpSTL, Rd: 5, Rs1: 9, Imm: true}, []uint8{9, 5}},
		{"ret reads base", Inst{Op: OpRET, Rd: 25, Imm: true, Imm13: 8}, []uint8{0, 25}},
		{"jmp reads cond sources", Inst{Op: OpJMP, Rd: uint8(CondEQ), Rs1: 7, Rs2: 8}, []uint8{7, 8}},
		{"long reads nothing", Inst{Op: OpLDHI, Rd: 3, Imm19: 1}, nil},
		{"jmpr reads nothing", Inst{Op: OpJMPR, Rd: uint8(CondALW), Imm19: 8}, nil},
		{"callint reads nothing", Inst{Op: OpCALLINT, Rd: 25}, nil},
		{"getpsw reads nothing", Inst{Op: OpGETPSW, Rd: 4}, nil},
		{"putpsw reads rs1", Inst{Op: OpPUTPSW, Rs1: 6, Imm: true}, []uint8{6}},
	}
	for _, c := range cases {
		if got := c.in.SourceRegs(nil); !reflect.DeepEqual(got, c.want) {
			t.Errorf("%s: SourceRegs = %v, want %v", c.name, got, c.want)
		}
	}
}

func TestDestReg(t *testing.T) {
	cases := []struct {
		name string
		in   Inst
		reg  uint8
		ok   bool
	}{
		{"alu", Inst{Op: OpADD, Rd: 3}, 3, true},
		{"alu to r0", Inst{Op: OpADD, Rd: 0}, 0, true},
		{"load", Inst{Op: OpLDBU, Rd: 7}, 7, true},
		{"store writes memory only", Inst{Op: OpSTL, Rd: 7}, 0, false},
		{"call links", Inst{Op: OpCALL, Rd: 25}, 25, true},
		{"callr links", Inst{Op: OpCALLR, Rd: 25}, 25, true},
		{"callint links", Inst{Op: OpCALLINT, Rd: 25}, 25, true},
		{"ret", Inst{Op: OpRET, Rd: 25}, 0, false},
		{"jmp", Inst{Op: OpJMP, Rd: uint8(CondALW)}, 0, false},
		{"ldhi", Inst{Op: OpLDHI, Rd: 4}, 4, true},
		{"gtlpc", Inst{Op: OpGTLPC, Rd: 4}, 4, true},
		{"getpsw", Inst{Op: OpGETPSW, Rd: 4}, 4, true},
		{"putpsw writes psw only", Inst{Op: OpPUTPSW, Rs1: 4}, 0, false},
	}
	for _, c := range cases {
		reg, ok := c.in.DestReg()
		if ok != c.ok || (ok && reg != c.reg) {
			t.Errorf("%s: DestReg = (%d,%v), want (%d,%v)", c.name, reg, ok, c.reg, c.ok)
		}
	}
}

func TestIsEffectFree(t *testing.T) {
	if !(Inst{Op: OpADD}).IsEffectFree() {
		t.Error("the canonical nop (add r0,r0,r0) should be effect-free")
	}
	for name, in := range map[string]Inst{
		"writes a register": {Op: OpADD, Rd: 1},
		"sets flags":        {Op: OpADD, SCC: true},
		"load":              {Op: OpLDL},
		"store":             {Op: OpSTL},
		"transfer":          {Op: OpJMPR, Rd: uint8(CondALW)},
	} {
		if in.IsEffectFree() {
			t.Errorf("%s: IsEffectFree = true, want false", name)
		}
	}
}

func TestCallReturnClassifiers(t *testing.T) {
	for _, op := range []Op{OpCALL, OpCALLR, OpCALLINT} {
		if !(Inst{Op: op}).IsCall() {
			t.Errorf("%s: IsCall = false", op)
		}
	}
	for _, op := range []Op{OpRET, OpRETINT} {
		if !(Inst{Op: op}).IsReturn() {
			t.Errorf("%s: IsReturn = false", op)
		}
	}
	if (Inst{Op: OpJMP}).IsCall() || (Inst{Op: OpJMPR}).IsReturn() {
		t.Error("jumps are neither calls nor returns")
	}
}
