package isa

// Register use/def classification. These helpers describe which registers an
// instruction reads and writes *architecturally* — the facts the lint
// dataflow passes need — without executing anything. They deliberately know
// nothing about register windows: CALL writes its Rd in the callee's window
// and RET reads its Rd in the window being left; callers that care (the
// window-depth and use-before-def passes) handle that shift themselves.

// SourceRegs appends to dst the registers i reads and returns the result.
// Store instructions read their Rd as the store data; RET/RETINT read Rd as
// the return-address base; conditional jumps read no register through Rd
// (it holds a condition). r0 appears like any other register — it always
// reads as zero, so callers typically ignore it.
func (i Inst) SourceRegs(dst []uint8) []uint8 {
	if i.Op.Long() {
		// LDHI, JMPR, CALLR, GTLPC carry only an immediate.
		return dst
	}
	switch i.Op {
	case OpCALLINT, OpGETPSW:
		// Rd-only writers.
		return dst
	}
	dst = append(dst, i.Rs1)
	if !i.Imm {
		dst = append(dst, i.Rs2)
	}
	switch {
	case i.Op.Cat() == CatStore:
		dst = append(dst, i.Rd) // store data
	case i.Op == OpRET || i.Op == OpRETINT:
		dst = append(dst, i.Rd) // return-address base
	}
	return dst
}

// DestReg returns the register i writes, if any. Writes to r0 are reported
// (ok true) even though the hardware discards them: the delay-slot pass
// distinguishes "writes r0" (an idiomatic NOP) from "writes nothing".
func (i Inst) DestReg() (uint8, bool) {
	switch i.Op.Cat() {
	case CatALU, CatLoad:
		return i.Rd, true
	case CatMisc:
		if i.Op == OpPUTPSW {
			return 0, false
		}
		return i.Rd, true // LDHI, GTLPC, GETPSW
	case CatControl:
		switch i.Op {
		case OpCALL, OpCALLR, OpCALLINT:
			return i.Rd, true // link, written in the new window
		}
	}
	return 0, false
}

// IsEffectFree reports whether executing i changes no architectural state: a
// non-flag-setting ALU operation targeting r0, the assembler's nop. This is
// the only instruction class that is safe in a CALL or RET delay slot, where
// the register window has already moved.
func (i Inst) IsEffectFree() bool {
	return i.Op.Cat() == CatALU && i.Rd == 0 && !i.SCC
}

// IsCall reports whether i pushes a register window (CALL, CALLR, CALLINT).
func (i Inst) IsCall() bool {
	return i.Op == OpCALL || i.Op == OpCALLR || i.Op == OpCALLINT
}

// IsReturn reports whether i pops a register window (RET, RETINT).
func (i Inst) IsReturn() bool {
	return i.Op == OpRET || i.Op == OpRETINT
}
