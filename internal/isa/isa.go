// Package isa defines the RISC I instruction set architecture as published
// by Patterson and Séquin (ISCA 1981): 31 fixed-size 32-bit instructions in
// two formats, sixteen jump conditions, and a register file of 32 visible
// registers (r0 reads as zero).
//
// The package is a pure description layer: it knows how to encode, decode,
// classify and print instructions, but it does not execute them. Execution
// lives in package core; assembly in package asm.
package isa

import "fmt"

// Op is a 7-bit RISC I opcode.
type Op uint8

// The 31 RISC I instructions, grouped as in the paper's instruction-set
// table: arithmetic/logic (12), memory access (8), control transfer (7) and
// miscellaneous (4).
const (
	opInvalid Op = 0x00

	// Arithmetic and logic. All compute Rd := Rs1 op S2 where S2 is either
	// a register or a sign-extended 13-bit immediate, and may optionally
	// set the condition codes.
	OpADD   Op = 0x10 // integer add
	OpADDC  Op = 0x11 // add with carry
	OpSUB   Op = 0x12 // integer subtract
	OpSUBC  Op = 0x13 // subtract with borrow
	OpSUBR  Op = 0x14 // reverse subtract: Rd := S2 - Rs1
	OpSUBCR Op = 0x15 // reverse subtract with borrow
	OpAND   Op = 0x16 // bitwise and
	OpOR    Op = 0x17 // bitwise or
	OpXOR   Op = 0x18 // bitwise exclusive or
	OpSLL   Op = 0x19 // shift left logical
	OpSRL   Op = 0x1A // shift right logical
	OpSRA   Op = 0x1B // shift right arithmetic

	// Memory access: the only instructions that touch memory.
	// Effective address is Rs1 + S2.
	OpLDL  Op = 0x20 // load 32-bit word
	OpLDSU Op = 0x21 // load 16-bit halfword, zero-extended
	OpLDSS Op = 0x22 // load 16-bit halfword, sign-extended
	OpLDBU Op = 0x23 // load byte, zero-extended
	OpLDBS Op = 0x24 // load byte, sign-extended
	OpSTL  Op = 0x25 // store 32-bit word
	OpSTS  Op = 0x26 // store 16-bit halfword
	OpSTB  Op = 0x27 // store byte

	// Control transfer. All transfers are delayed by one instruction.
	OpJMP     Op = 0x30 // conditional jump to Rs1 + S2
	OpJMPR    Op = 0x31 // conditional PC-relative jump (long format)
	OpCALL    Op = 0x32 // call Rs1 + S2: CWP--, Rd := PC (in the new window)
	OpCALLR   Op = 0x33 // PC-relative call (long format)
	OpRET     Op = 0x34 // return to Rd + S2: CWP++
	OpCALLINT Op = 0x35 // trap/interrupt entry: disable interrupts, CWP--
	OpRETINT  Op = 0x36 // interrupt return: enable interrupts, CWP++

	// Miscellaneous.
	OpLDHI   Op = 0x40 // Rd<31:13> := imm19; Rd<12:0> := 0 (long format)
	OpGTLPC  Op = 0x41 // Rd := last PC (restart support after interrupts)
	OpGETPSW Op = 0x42 // Rd := PSW
	OpPUTPSW Op = 0x43 // PSW := Rs1 op-ed with S2 (we use Rs1 + S2)
)

// NumInstructions is the size of the RISC I instruction set; the paper's
// headline count.
const NumInstructions = 31

// Category classifies an instruction into the paper's four groups.
type Category uint8

// Instruction categories, in the order the paper's table lists them.
const (
	CatInvalid Category = iota
	CatALU              // arithmetic/logic register operations
	CatLoad             // memory loads
	CatStore            // memory stores
	CatControl          // jumps, calls, returns
	CatMisc             // LDHI, GTLPC, PSW access
)

func (c Category) String() string {
	switch c {
	case CatALU:
		return "alu"
	case CatLoad:
		return "load"
	case CatStore:
		return "store"
	case CatControl:
		return "control"
	case CatMisc:
		return "misc"
	default:
		return "invalid"
	}
}

type opInfo struct {
	name string
	cat  Category
	long bool // long-immediate (19-bit) format
}

// opTable is indexed directly by the 7-bit opcode (hot path: every decode
// consults it); opEntries below is the source definition.
var opTable = func() (t [128]opInfo) {
	for op, info := range opEntries {
		t[op] = info
	}
	return t
}()

// catTable duplicates just the category column of opTable so the execute
// dispatch (which calls Cat on every instruction) loads one byte instead of
// an opInfo; undefined opcodes hold the zero value CatInvalid.
var catTable = func() (t [128]Category) {
	for op, info := range opEntries {
		t[op] = info.cat
	}
	return t
}()

var opEntries = map[Op]opInfo{
	OpADD:     {"add", CatALU, false},
	OpADDC:    {"addc", CatALU, false},
	OpSUB:     {"sub", CatALU, false},
	OpSUBC:    {"subc", CatALU, false},
	OpSUBR:    {"subr", CatALU, false},
	OpSUBCR:   {"subcr", CatALU, false},
	OpAND:     {"and", CatALU, false},
	OpOR:      {"or", CatALU, false},
	OpXOR:     {"xor", CatALU, false},
	OpSLL:     {"sll", CatALU, false},
	OpSRL:     {"srl", CatALU, false},
	OpSRA:     {"sra", CatALU, false},
	OpLDL:     {"ldl", CatLoad, false},
	OpLDSU:    {"ldsu", CatLoad, false},
	OpLDSS:    {"ldss", CatLoad, false},
	OpLDBU:    {"ldbu", CatLoad, false},
	OpLDBS:    {"ldbs", CatLoad, false},
	OpSTL:     {"stl", CatStore, false},
	OpSTS:     {"sts", CatStore, false},
	OpSTB:     {"stb", CatStore, false},
	OpJMP:     {"jmp", CatControl, false},
	OpJMPR:    {"jmpr", CatControl, true},
	OpCALL:    {"call", CatControl, false},
	OpCALLR:   {"callr", CatControl, true},
	OpRET:     {"ret", CatControl, false},
	OpCALLINT: {"callint", CatControl, false},
	OpRETINT:  {"retint", CatControl, false},
	OpLDHI:    {"ldhi", CatMisc, true},
	OpGTLPC:   {"gtlpc", CatMisc, true},
	OpGETPSW:  {"getpsw", CatMisc, false},
	OpPUTPSW:  {"putpsw", CatMisc, false},
}

// Ops returns every defined opcode in a stable order (grouped by category,
// ascending opcode value).
func Ops() []Op {
	out := make([]Op, 0, len(opEntries))
	for op := Op(0); op < 0x7F; op++ {
		if opTable[op].name != "" {
			out = append(out, op)
		}
	}
	return out
}

// Valid reports whether op is a defined RISC I opcode.
func (op Op) Valid() bool { return op < 128 && opTable[op].name != "" }

// Name returns the assembler mnemonic for op.
func (op Op) Name() string {
	if op.Valid() {
		return opTable[op].name
	}
	return fmt.Sprintf("op%#02x", uint8(op))
}

func (op Op) String() string { return op.Name() }

// Cat returns the instruction category of op.
func (op Op) Cat() Category {
	if op >= 128 {
		return CatInvalid
	}
	return catTable[op]
}

// Long reports whether op uses the long-immediate (19-bit) format.
func (op Op) Long() bool {
	return op.Valid() && opTable[op].long
}

// IsConditional reports whether op's dest field holds a jump condition
// rather than a destination register.
func (op Op) IsConditional() bool { return op == OpJMP || op == OpJMPR }

// Transfers reports whether op is a (delayed) control transfer.
func (op Op) Transfers() bool { return op < 128 && catTable[op] == CatControl }

// ByName maps an assembler mnemonic to its opcode.
func ByName(name string) (Op, bool) {
	op, ok := nameTable[name]
	return op, ok
}

var nameTable = func() map[string]Op {
	m := make(map[string]Op, len(opEntries))
	for op, info := range opEntries {
		m[info.name] = op
	}
	return m
}()

// Register file geometry. A RISC I program sees 32 registers partitioned
// into globals and the three window regions described in the paper.
const (
	NumVisibleRegs = 32
	NumGlobalRegs  = 10 // r0..r9; r0 reads as zero
	FirstLow       = 10 // r10..r15: outgoing parameters (callee's HIGH)
	FirstLocal     = 16 // r16..r25: locals
	FirstHigh      = 26 // r26..r31: incoming parameters (caller's LOW)
	WindowRegs     = 16 // non-overlapping registers contributed per window
	OverlapRegs    = 6  // registers shared between adjacent windows
)

// Immediate ranges.
const (
	MaxImm13 = 1<<12 - 1  // 4095
	MinImm13 = -(1 << 12) // -4096
	MaxImm19 = 1<<18 - 1
	MinImm19 = -(1 << 18)
)

// Inst is a decoded RISC I instruction.
//
// For short-format instructions the second source operand S2 is either
// register Rs2 (Imm false) or the sign-extended Imm13 (Imm true). Long-format
// instructions (LDHI, JMPR, CALLR, GTLPC) carry Imm19 instead of Rs1/S2.
// For JMP and JMPR the Rd field holds a Cond.
type Inst struct {
	Op    Op
	SCC   bool  // set condition codes
	Rd    uint8 // destination register, or Cond for JMP/JMPR
	Rs1   uint8
	Imm   bool // S2 is Imm13 rather than Rs2
	Rs2   uint8
	Imm13 int32 // sign-extended 13-bit immediate
	Imm19 int32 // sign-extended 19-bit immediate (long format)
}

// Cond returns the jump condition encoded in the Rd field.
func (i Inst) Cond() Cond { return Cond(i.Rd & 0xF) }

// Encoding layout.
const (
	shiftOp   = 25
	shiftSCC  = 24
	shiftRd   = 19
	shiftRs1  = 14
	shiftImm  = 13
	maskImm13 = 1<<13 - 1
	maskImm19 = 1<<19 - 1
)

// Encode packs the instruction into its 32-bit machine form.
// It panics if the instruction's immediate is out of range or a register
// index exceeds 31; use Check first for untrusted input.
func (i Inst) Encode() uint32 {
	if err := i.Check(); err != nil {
		panic(err)
	}
	w := uint32(i.Op) << shiftOp
	if i.SCC {
		w |= 1 << shiftSCC
	}
	w |= uint32(i.Rd&0x1F) << shiftRd
	if i.Op.Long() {
		w |= uint32(i.Imm19) & maskImm19
		return w
	}
	w |= uint32(i.Rs1&0x1F) << shiftRs1
	if i.Imm {
		w |= 1 << shiftImm
		w |= uint32(i.Imm13) & maskImm13
	} else {
		w |= uint32(i.Rs2 & 0x1F)
	}
	return w
}

// Check validates field ranges without encoding.
func (i Inst) Check() error {
	if !i.Op.Valid() {
		return fmt.Errorf("isa: invalid opcode %#02x", uint8(i.Op))
	}
	if i.Rd > 31 {
		return fmt.Errorf("isa: %s: destination register r%d out of range", i.Op, i.Rd)
	}
	if i.Op.Long() {
		if i.Imm19 < MinImm19 || i.Imm19 > MaxImm19 {
			return fmt.Errorf("isa: %s: immediate %d outside 19-bit range", i.Op, i.Imm19)
		}
		return nil
	}
	if i.Rs1 > 31 {
		return fmt.Errorf("isa: %s: source register r%d out of range", i.Op, i.Rs1)
	}
	if i.Imm {
		if i.Imm13 < MinImm13 || i.Imm13 > MaxImm13 {
			return fmt.Errorf("isa: %s: immediate %d outside 13-bit range", i.Op, i.Imm13)
		}
	} else if i.Rs2 > 31 {
		return fmt.Errorf("isa: %s: source register r%d out of range", i.Op, i.Rs2)
	}
	return nil
}

// Decode unpacks a 32-bit machine word. It returns an error for undefined
// opcodes so the CPU can raise an illegal-instruction trap.
func Decode(w uint32) (Inst, error) {
	var i Inst
	i.Op = Op(w >> shiftOp)
	if !i.Op.Valid() {
		return Inst{}, fmt.Errorf("isa: undefined opcode %#02x in word %#08x", uint8(i.Op), w)
	}
	i.SCC = w>>shiftSCC&1 == 1
	i.Rd = uint8(w >> shiftRd & 0x1F)
	if i.Op.Long() {
		i.Imm19 = signExtend(w&maskImm19, 19)
		return i, nil
	}
	i.Rs1 = uint8(w >> shiftRs1 & 0x1F)
	i.Imm = w>>shiftImm&1 == 1
	if i.Imm {
		i.Imm13 = signExtend(w&maskImm13, 13)
	} else {
		i.Rs2 = uint8(w & 0x1F)
	}
	return i, nil
}

// DecodeBlock decodes a big-endian code block into one Inst per word, for
// predecoded-dispatch simulation. ok[i] reports whether word i decoded; a
// false entry (data or an undefined opcode) must be re-fetched live by the
// consumer so it faults with the same error a hardware fetch would raise.
// Trailing bytes beyond the last whole word are ignored.
func DecodeBlock(code []byte) (insts []Inst, ok []bool) {
	n := len(code) / InstBytes
	insts = make([]Inst, n)
	ok = make([]bool, n)
	for i := 0; i < n; i++ {
		b := code[i*InstBytes:]
		w := uint32(b[0])<<24 | uint32(b[1])<<16 | uint32(b[2])<<8 | uint32(b[3])
		inst, err := Decode(w)
		if err == nil {
			insts[i], ok[i] = inst, true
		}
	}
	return insts, ok
}

func signExtend(v uint32, bits uint) int32 {
	shift := 32 - bits
	return int32(v<<shift) >> shift
}

// InstBytes is the size of every RISC I instruction: the fixed 32-bit format
// is one of the paper's core design rules.
const InstBytes = 4
