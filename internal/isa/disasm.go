package isa

import (
	"fmt"
	"strings"
)

// String renders the instruction in the assembler syntax accepted by
// package asm, so that assembly and disassembly round-trip:
//
//	add r1,r2,r3        Rd := Rs1 + Rs2
//	sub! r1,#5,r3       ... setting condition codes
//	ldl (r2)#8,r5       Rd := M[Rs1 + 8]
//	stl r5,(r2)r3       M[Rs1 + Rs2] := Rm
//	jmp eq,(r2)#0       delayed conditional jump to Rs1 + 0
//	jmpr alw,#-12       delayed PC-relative jump
//	call r25,(r2)#0     CWP--; r25 := PC; jump
//	callr r25,#160
//	ret r25,#8          CWP++; jump to r25 + 8
//	ldhi r5,#4096       r5<31:13> := imm
func (i Inst) String() string {
	var b strings.Builder
	b.WriteString(i.Op.Name())
	if i.SCC {
		b.WriteByte('!')
	}
	b.WriteByte(' ')
	switch i.Op {
	case OpJMP:
		fmt.Fprintf(&b, "%s,%s", i.Cond(), i.addr())
	case OpJMPR:
		fmt.Fprintf(&b, "%s,#%d", i.Cond(), i.Imm19)
	case OpCALL:
		fmt.Fprintf(&b, "r%d,%s", i.Rd, i.addr())
	case OpCALLR:
		fmt.Fprintf(&b, "r%d,#%d", i.Rd, i.Imm19)
	case OpRET, OpRETINT:
		fmt.Fprintf(&b, "r%d,%s", i.Rd, i.s2())
	case OpCALLINT:
		fmt.Fprintf(&b, "r%d", i.Rd)
	case OpLDHI:
		fmt.Fprintf(&b, "r%d,#%d", i.Rd, i.Imm19)
	case OpGTLPC, OpGETPSW:
		fmt.Fprintf(&b, "r%d", i.Rd)
	case OpPUTPSW:
		fmt.Fprintf(&b, "r%d,%s", i.Rs1, i.s2())
	default:
		switch i.Op.Cat() {
		case CatLoad:
			fmt.Fprintf(&b, "%s,r%d", i.addr(), i.Rd)
		case CatStore:
			fmt.Fprintf(&b, "r%d,%s", i.Rd, i.addr())
		default: // ALU
			fmt.Fprintf(&b, "r%d,%s,r%d", i.Rs1, i.s2(), i.Rd)
		}
	}
	return b.String()
}

// addr renders the (Rs1)S2 effective-address operand.
func (i Inst) addr() string { return fmt.Sprintf("(r%d)%s", i.Rs1, i.s2()) }

// s2 renders the second source operand: register or immediate.
func (i Inst) s2() string {
	if i.Imm {
		return fmt.Sprintf("#%d", i.Imm13)
	}
	return fmt.Sprintf("r%d", i.Rs2)
}

// DisasmWord decodes and prints one machine word, returning a placeholder
// for undefined encodings rather than an error (handy for memory dumps).
func DisasmWord(w uint32) string {
	i, err := Decode(w)
	if err != nil {
		return fmt.Sprintf(".word %#08x", w)
	}
	return i.String()
}
