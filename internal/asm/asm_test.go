package asm

import (
	"strings"
	"testing"
	"testing/quick"

	"risc1/internal/isa"
)

func decode(t *testing.T, img *Image, off int) isa.Inst {
	t.Helper()
	b := img.Bytes[off:]
	w := uint32(b[0])<<24 | uint32(b[1])<<16 | uint32(b[2])<<8 | uint32(b[3])
	inst, err := isa.Decode(w)
	if err != nil {
		t.Fatalf("decode at %d: %v", off, err)
	}
	return inst
}

func TestBasicInstructions(t *testing.T) {
	img := MustAssemble(`
		add r1,r2,r3
		sub! r4,#-7,r5
		ldl (r2)#8,r6
		stb r7,(r9)r3
		jmp eq,(r2)#0
		ret r25,#8
		ldhi r5,#1000
		getpsw r1
	`)
	want := []string{
		"add r1,r2,r3",
		"sub! r4,#-7,r5",
		"ldl (r2)#8,r6",
		"stb r7,(r9)r3",
		"jmp eq,(r2)#0",
		"ret r25,#8",
		"ldhi r5,#1000",
		"getpsw r1",
	}
	if len(img.Bytes) != 4*len(want) {
		t.Fatalf("image size %d, want %d", len(img.Bytes), 4*len(want))
	}
	for i, w := range want {
		if got := decode(t, img, 4*i).String(); got != w {
			t.Errorf("inst %d = %q, want %q", i, got, w)
		}
	}
}

func TestLabelsAndBranches(t *testing.T) {
	img := MustAssemble(`
	start:	add r0,#1,r1
	loop:	sub! r1,#10,r0
		beq done
		nop
		b loop
		nop
	done:	ret r25,#8
	`)
	// beq at offset 8 targets done at offset 24: delta 16.
	beq := decode(t, img, 8)
	if beq.Op != isa.OpJMPR || beq.Cond() != isa.CondEQ || beq.Imm19 != 16 {
		t.Errorf("beq = %v (imm %d)", beq, beq.Imm19)
	}
	// b at offset 16 targets loop at offset 4: delta -12.
	b := decode(t, img, 16)
	if b.Cond() != isa.CondALW || b.Imm19 != -12 {
		t.Errorf("b loop = %v (imm %d)", b, b.Imm19)
	}
	if addr, ok := img.Symbol("done"); !ok || addr != 24 {
		t.Errorf("symbol done = %d, %v", addr, ok)
	}
	// Entry defaults to "start" when there is no "main".
	if img.Entry != 0 {
		t.Errorf("entry = %d, want 0", img.Entry)
	}
}

func TestCallRelative(t *testing.T) {
	img := MustAssemble(`
	main:	callr r25,f
		nop
		ret r25,#8
	f:	ret r25,#8
	`)
	call := decode(t, img, 0)
	if call.Op != isa.OpCALLR || call.Rd != 25 || call.Imm19 != 12 {
		t.Errorf("callr = %v (imm %d)", call, call.Imm19)
	}
	if img.Entry != 0 {
		t.Errorf("entry = %d", img.Entry)
	}
}

func TestOrgAndEntry(t *testing.T) {
	img := MustAssemble(`
		.org 0x1000
		.entry go
		nop
	go:	nop
	`)
	if img.Org != 0x1000 || img.Entry != 0x1004 {
		t.Errorf("org=%#x entry=%#x", img.Org, img.Entry)
	}
}

func TestDataDirectives(t *testing.T) {
	img := MustAssemble(`
		.word 0x11223344, -1
		.half 0x5566
		.byte 1,2
		.align 4
		.asciz "hi\n"
		.align 4
	tab:	.space 8
		.word tab
	`)
	b := img.Bytes
	if b[0] != 0x11 || b[3] != 0x44 || b[4] != 0xFF || b[7] != 0xFF {
		t.Errorf(".word bytes wrong: % x", b[:8])
	}
	if b[8] != 0x55 || b[9] != 0x66 || b[10] != 1 || b[11] != 2 {
		t.Errorf(".half/.byte wrong: % x", b[8:12])
	}
	if string(b[12:16]) != "hi\n\x00" {
		t.Errorf(".asciz wrong: %q", b[12:16])
	}
	tab, _ := img.Symbol("tab")
	if tab != 16 {
		t.Fatalf("tab = %d", tab)
	}
	// .word tab at offset 24 holds 16.
	if b[24] != 0 || b[27] != 16 {
		t.Errorf(".word tab = % x", b[24:28])
	}
}

func TestEqu(t *testing.T) {
	img := MustAssemble(`
		.equ size, 40
		add r0,#size,r1
		add r0,#size+2,r1
	`)
	if got := decode(t, img, 0); got.Imm13 != 40 {
		t.Errorf("equ value = %d", got.Imm13)
	}
	// .equ names substitute inside expressions too... (sym+N form)
	if got := decode(t, img, 4); got.Imm13 != 42 {
		t.Errorf("equ+2 value = %d", got.Imm13)
	}
}

func TestPseudoLi(t *testing.T) {
	img := MustAssemble(`
		li #5,r1
		li #100000,r2
		li #-100000,r3
		li #0x80000000,r4
	`)
	// Small li is one add.
	if got := decode(t, img, 0); got.Op != isa.OpADD || got.Imm13 != 5 {
		t.Errorf("small li = %v", got)
	}
	// Each big li is ldhi+add; verify the arithmetic identity.
	checkPair := func(off int, want uint32) {
		hi := decode(t, img, off)
		lo := decode(t, img, off+4)
		if hi.Op != isa.OpLDHI || lo.Op != isa.OpADD {
			t.Fatalf("li pair at %d = %v / %v", off, hi, lo)
		}
		got := uint32(hi.Imm19&0x7FFFF)<<13 + uint32(lo.Imm13)
		if got != want {
			t.Errorf("li at %d materializes %#x, want %#x", off, got, want)
		}
	}
	checkPair(4, 100000)
	checkPair(12, uint32(0xFFFE795F+1)) // -100000
	checkPair(20, 0x80000000)
}

func TestSplitHiLoProperty(t *testing.T) {
	f := func(v uint32) bool {
		hi, lo := splitHiLo(v)
		if lo < isa.MinImm13 || lo > isa.MaxImm13 || hi < isa.MinImm19 || hi > isa.MaxImm19 {
			return false
		}
		return uint32(hi&0x7FFFF)<<13+uint32(lo) == v
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestLa(t *testing.T) {
	img := MustAssemble(`
		la msg,r1
		nop
	msg:	.asciz "x"
	`)
	hi := decode(t, img, 0)
	lo := decode(t, img, 4)
	if got := uint32(hi.Imm19&0x7FFFF)<<13 + uint32(lo.Imm13); got != 12 {
		t.Errorf("la materializes %d, want 12", got)
	}
}

func TestComments(t *testing.T) {
	img := MustAssemble(`
		; full line comment
		add r1,r2,r3  ; trailing
		// slash comment
		nop // another
	`)
	if len(img.Bytes) != 8 {
		t.Errorf("image size %d, want 8", len(img.Bytes))
	}
}

func TestErrors(t *testing.T) {
	cases := map[string]string{
		"undefined symbol":  "b nowhere",
		"redefined":         "x: nop\nx: nop",
		"bad operands":      "add r1,r2",
		"unknown mnemonic":  "frob r1",
		"13-bit range":      "add r0,#5000,r1",
		"19-bit range":      "ldhi r1,#300000",
		"unknown directive": ".bogus 3",
		"bad condition":     "jmpr zz,#0",
		"redefined equ":     ".equ a,1\n.equ a,2",
		"org twice":         ".org 0\n.org 4",
		"org after code":    "nop\n.org 16",
		"entry undefined":   ".entry nowhere\nnop",
		"unbalanced":        "ldl (r2,r3",
	}
	for what, src := range cases {
		if _, err := Assemble(src); err == nil {
			t.Errorf("%s: assembled without error:\n%s", what, src)
		}
	}
}

func TestErrorListAggregates(t *testing.T) {
	_, err := Assemble("frob r1\nfrob r2\n")
	if err == nil {
		t.Fatal("no error")
	}
	if !strings.Contains(err.Error(), "2 assembly errors") {
		t.Errorf("error = %v, want aggregate of 2", err)
	}
}

func TestBranchOutOfRange(t *testing.T) {
	var b strings.Builder
	b.WriteString("b far\n")
	for i := 0; i < 70000; i++ {
		b.WriteString("nop\n")
	}
	b.WriteString("far: nop\n")
	if _, err := Assemble(b.String()); err == nil {
		t.Error("branch beyond ±256KB assembled")
	}
}

func TestDisassembleListing(t *testing.T) {
	img := MustAssemble("main: add r1,r2,r3\n .word 0\n")
	out := Disassemble(img)
	for _, want := range []string{"main:", "add r1,r2,r3", ".word 0x00000000"} {
		if !strings.Contains(out, want) {
			t.Errorf("listing missing %q:\n%s", want, out)
		}
	}
}

func TestCharLiterals(t *testing.T) {
	img := MustAssemble(`add r0,#'a',r1` + "\n" + `add r0,#'\n',r2`)
	if got := decode(t, img, 0); got.Imm13 != 'a' {
		t.Errorf("char literal = %d", got.Imm13)
	}
	if got := decode(t, img, 4); got.Imm13 != '\n' {
		t.Errorf("escaped char literal = %d", got.Imm13)
	}
}

func TestMovCmpNop(t *testing.T) {
	img := MustAssemble("mov r3,r4\ncmp r1,#5\nnop")
	mv := decode(t, img, 0)
	if mv.Op != isa.OpADD || mv.Rs1 != 3 || mv.Rd != 4 || !mv.Imm || mv.Imm13 != 0 {
		t.Errorf("mov = %v", mv)
	}
	cm := decode(t, img, 4)
	if cm.Op != isa.OpSUB || !cm.SCC || cm.Rd != 0 || cm.Imm13 != 5 {
		t.Errorf("cmp = %v", cm)
	}
	np := decode(t, img, 8)
	if np.Op != isa.OpADD || np.Rd != 0 || np.Rs1 != 0 || !np.Imm || np.Imm13 != 0 {
		t.Errorf("nop = %v", np)
	}
}
