package asm

import (
	"fmt"
	"strings"

	"risc1/internal/isa"
)

// ---------- pass 2: resolve symbols and encode ----------

func (a *assembler) resolve(e expr, line int) (uint32, error) {
	if e.isNum() {
		return uint32(e.off), nil
	}
	base, ok := a.symbols[e.sym]
	if !ok {
		return 0, &Error{Line: line, Msg: fmt.Sprintf("undefined symbol %q", e.sym)}
	}
	return base + uint32(e.off), nil
}

// splitHiLo decomposes a 32-bit value into the (ldhi, add) immediate pair
// such that (hi << 13) + signExtend13(lo) == v (mod 2^32).
func splitHiLo(v uint32) (hi int32, lo int32) {
	lo13 := v & 0x1FFF
	lo = int32(lo13)
	if lo13&0x1000 != 0 {
		lo = int32(lo13) - 0x2000
	}
	hiPattern := (v - uint32(lo)) >> 13 // 19 significant bits
	hi = int32(hiPattern<<13) >> 13     // sign-extend to satisfy the encoder
	return hi, lo
}

func (a *assembler) encode() (*Image, error) {
	size := a.pc - a.org
	img := &Image{Org: a.org, Bytes: make([]byte, size), Symbols: a.symbols}
	var errs ErrorList
	fail := func(line int, format string, args ...any) {
		errs = append(errs, &Error{Line: line, Msg: fmt.Sprintf(format, args...)})
	}

	for _, it := range a.items {
		off := it.addr - a.org
		if size := a.itemSize(it); size > 0 {
			ln := it.line
			if it.srcLine > 0 {
				ln = it.srcLine
			}
			img.Lines = append(img.Lines, LineSpan{Addr: it.addr, Size: size, Line: ln})
		}
		switch {
		case it.inst != nil:
			w, err := a.encodeInst(it)
			if err != nil {
				if e, ok := err.(*Error); ok {
					errs = append(errs, e)
				} else {
					fail(it.line, "%v", err)
				}
				continue
			}
			putWord(img.Bytes[off:], w)
		case it.words != nil:
			for i, e := range it.words {
				v, err := a.resolve(e, it.line)
				if err != nil {
					errs = append(errs, err.(*Error))
					continue
				}
				putWord(img.Bytes[off+uint32(4*i):], v)
			}
		case it.data != nil:
			copy(img.Bytes[off:], it.data)
		}
	}
	if len(errs) > 0 {
		return nil, errs
	}

	img.Entry = a.org
	if a.entry != "" {
		v, ok := a.symbols[a.entry]
		if !ok {
			return nil, &Error{Line: a.entryLine, Msg: fmt.Sprintf(".entry symbol %q undefined", a.entry)}
		}
		img.Entry = v
	} else if v, ok := a.symbols["main"]; ok {
		img.Entry = v
	} else if v, ok := a.symbols["start"]; ok {
		img.Entry = v
	}
	return img, nil
}

func (a *assembler) encodeInst(it item) (uint32, error) {
	p := it.inst
	inst := isa.Inst{Op: p.op, SCC: p.scc, Rd: p.rd, Rs1: p.rs1}
	if p.hasCond {
		inst.Rd = uint8(p.cond)
	}
	switch {
	case p.op.Long():
		v, err := a.resolve(p.imm19, it.line)
		if err != nil {
			return 0, err
		}
		switch {
		case p.hiPart:
			hi, _ := splitHiLo(v)
			inst.Imm19 = hi
		case p.relative:
			delta := int64(int32(v)) - int64(int32(it.addr))
			if delta < isa.MinImm19 || delta > isa.MaxImm19 {
				return 0, &Error{Line: it.line, OutOfRange: true, Msg: fmt.Sprintf(
					"relative target out of range: %d bytes", delta)}
			}
			inst.Imm19 = int32(delta)
		default:
			iv := int64(int32(v))
			if p.imm19.isNum() {
				iv = p.imm19.off
			}
			if iv < isa.MinImm19 || iv > isa.MaxImm19 {
				return 0, &Error{Line: it.line, OutOfRange: true, Msg: fmt.Sprintf(
					"immediate %d outside 19-bit range", iv)}
			}
			inst.Imm19 = int32(iv)
		}
	case p.useS2:
		if p.s2.isReg {
			inst.Rs2 = p.s2.reg
		} else {
			inst.Imm = true
			v, err := a.resolve(p.s2.imm, it.line)
			if err != nil {
				return 0, err
			}
			iv := int64(int32(v))
			if p.s2.imm.isNum() {
				iv = p.s2.imm.off
			}
			if p.loPart {
				_, lo := splitHiLo(v)
				iv = int64(lo)
			}
			if iv < isa.MinImm13 || iv > isa.MaxImm13 {
				return 0, &Error{Line: it.line, OutOfRange: true, Msg: fmt.Sprintf(
					"immediate %d outside 13-bit range", iv)}
			}
			inst.Imm13 = int32(iv)
		}
	}
	if err := inst.Check(); err != nil {
		return 0, &Error{Line: it.line, Msg: err.Error()}
	}
	return inst.Encode(), nil
}

// itemSize returns how many image bytes one parsed item occupies.
func (a *assembler) itemSize(it item) uint32 {
	switch {
	case it.inst != nil:
		return isa.InstBytes
	case it.words != nil:
		return uint32(4 * len(it.words))
	case it.data != nil:
		return uint32(len(it.data))
	default:
		return uint32(it.space)
	}
}

func putWord(b []byte, v uint32) {
	b[0] = byte(v >> 24)
	b[1] = byte(v >> 16)
	b[2] = byte(v >> 8)
	b[3] = byte(v)
}

// Disassemble renders an image's words as assembly with addresses, for
// riscdis and debugging. Data is shown as .word directives.
func Disassemble(img *Image) string {
	// Invert the symbol table for labels.
	labels := map[uint32][]string{}
	for name, addr := range img.Symbols {
		labels[addr] = append(labels[addr], name)
	}
	var b strings.Builder
	for off := 0; off+4 <= len(img.Bytes); off += 4 {
		addr := img.Org + uint32(off)
		for _, l := range labels[addr] {
			fmt.Fprintf(&b, "%s:\n", l)
		}
		w := uint32(img.Bytes[off])<<24 | uint32(img.Bytes[off+1])<<16 |
			uint32(img.Bytes[off+2])<<8 | uint32(img.Bytes[off+3])
		fmt.Fprintf(&b, "  %08x:  %08x  %s\n", addr, w, isa.DisasmWord(w))
	}
	return b.String()
}
