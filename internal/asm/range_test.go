package asm

import (
	"testing"
)

// TestIsOutOfRange pins the error classification the facade's WideData retry
// keys on: only genuine range overflows qualify, and a list qualifies only
// when every diagnostic in it does — a single unrelated error means retrying
// with wide addressing could not help.
func TestIsOutOfRange(t *testing.T) {
	rangeErr := &Error{Line: 1, OutOfRange: true, Msg: "immediate 99999 outside 13-bit range"}
	otherErr := &Error{Line: 2, Msg: "undefined symbol \"x\""}

	cases := []struct {
		name string
		err  error
		want bool
	}{
		{"nil", nil, false},
		{"range error", rangeErr, true},
		{"other error", otherErr, false},
		{"all-range list", ErrorList{rangeErr, rangeErr}, true},
		{"mixed list", ErrorList{rangeErr, otherErr}, false},
		{"empty list", ErrorList{}, false},
	}
	for _, tc := range cases {
		if got := IsOutOfRange(tc.err); got != tc.want {
			t.Errorf("%s: IsOutOfRange = %v, want %v", tc.name, got, tc.want)
		}
	}
}

// TestAssembleMarksRangeErrors checks the encoder actually sets the flag on
// each of its range diagnostics.
func TestAssembleMarksRangeErrors(t *testing.T) {
	// 13-bit immediate overflow.
	if _, err := Assemble("main: add r0,#100000,r1\n"); !IsOutOfRange(err) {
		t.Errorf("13-bit overflow: IsOutOfRange = false (%v)", err)
	}
	// 19-bit immediate overflow on a long-format instruction.
	if _, err := Assemble("main: callr r25,#1000000\n nop\n"); !IsOutOfRange(err) {
		t.Errorf("19-bit overflow: IsOutOfRange = false (%v)", err)
	}
	// An ordinary error must not qualify.
	if _, err := Assemble("main: add r0,#1,r99\n"); err == nil || IsOutOfRange(err) {
		t.Errorf("bad register: IsOutOfRange = true (%v)", err)
	}
}
