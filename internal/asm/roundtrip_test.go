package asm

import (
	"math/rand"
	"testing"

	"risc1/internal/isa"
)

// TestDisassemblerRoundTrip cross-validates the assembler against the
// disassembler: any canonical instruction, printed by isa.Inst.String and
// re-assembled as a source line, must encode to the identical machine word.
func TestDisassemblerRoundTrip(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	ops := isa.Ops()
	for trial := 0; trial < 5000; trial++ {
		in := isa.Inst{Op: ops[r.Intn(len(ops))]}
		in.SCC = r.Intn(2) == 1
		in.Rd = uint8(r.Intn(32))
		if in.Op.IsConditional() {
			in.Rd = uint8(r.Intn(16)) // condition field
		}
		if in.Op.Long() {
			in.Imm19 = int32(r.Intn(isa.MaxImm19-isa.MinImm19+1)) + isa.MinImm19
		} else {
			in.Rs1 = uint8(r.Intn(32))
			if r.Intn(2) == 1 {
				in.Imm = true
				in.Imm13 = int32(r.Intn(isa.MaxImm13-isa.MinImm13+1)) + isa.MinImm13
			} else {
				in.Rs2 = uint8(r.Intn(32))
			}
		}
		// Canonicalize the fields the assembler syntax does not carry
		// (they are ignored by the hardware, so the printed form cannot
		// reproduce arbitrary values in them).
		switch in.Op {
		case isa.OpRET, isa.OpRETINT:
			in.Rs1 = 0
		case isa.OpCALLINT, isa.OpGETPSW:
			in.Rs1, in.Imm, in.Rs2, in.Imm13 = 0, false, 0, 0
		case isa.OpGTLPC:
			in.Imm19 = 0
		case isa.OpPUTPSW:
			in.Rd = 0
		}
		// Transfers print `jmpr cond,#n` where n is PC-relative; assembling
		// at address 0 keeps the numeric immediate literal, so the word
		// matches. (SCC on transfers is legal but unusual; keep it.)
		want := in.Encode()
		img, err := Assemble(in.String() + "\n")
		if err != nil {
			t.Fatalf("trial %d: %v failed to re-assemble %q: %v",
				trial, in.Op, in.String(), err)
		}
		if len(img.Bytes) != 4 {
			t.Fatalf("trial %d: %q assembled to %d bytes", trial, in.String(), len(img.Bytes))
		}
		got := uint32(img.Bytes[0])<<24 | uint32(img.Bytes[1])<<16 |
			uint32(img.Bytes[2])<<8 | uint32(img.Bytes[3])
		if got != want {
			t.Fatalf("trial %d: %q: reassembled %#08x, want %#08x",
				trial, in.String(), got, want)
		}
	}
}
