package asm

import (
	"strings"
	"testing"
)

// TestLineTable checks the per-item source-line spans the assembler records:
// every instruction, word, and data byte maps back to the 1-based line that
// emitted it, and padding stays unmapped.
func TestLineTable(t *testing.T) {
	img, err := Assemble(`; comment
main:
	add r1,#1,r2
	ret r25,#8
	nop
	.word 1, 2
msg:
	.asciz "hi"
`)
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		addr uint32
		want int
	}{
		{0, 3},  // add
		{4, 4},  // ret
		{8, 5},  // nop
		{12, 6}, // .word, first
		{16, 6}, // .word, second
		{20, 8}, // .asciz first byte
		{22, 8}, // .asciz inside the span
	}
	for _, c := range cases {
		if got := img.LineFor(c.addr); got != c.want {
			t.Errorf("LineFor(%#x) = %d, want %d", c.addr, got, c.want)
		}
	}
	if got := img.LineFor(0x1000); got != 0 {
		t.Errorf("LineFor(outside) = %d, want 0", got)
	}
}

// TestLineTableSpace checks that .space reservations map to the directive
// that made them — a diagnostic about a buffer should point at its
// declaration — and that items after the gap stay correct.
func TestLineTableSpace(t *testing.T) {
	img, err := Assemble(`main:
	nop
buf:
	.space 8
	.word 7
`)
	if err != nil {
		t.Fatal(err)
	}
	if got := img.LineFor(4); got != 4 {
		t.Errorf("LineFor(.space byte) = %d, want 4", got)
	}
	if got := img.LineFor(12); got != 5 {
		t.Errorf("LineFor(.word after space) = %d, want 5", got)
	}
}

// TestEntryUndefinedCarriesLine is the regression test for the one assembler
// diagnostic that used to lose its source position: an .entry naming an
// undefined symbol now points at the .entry directive's line.
func TestEntryUndefinedCarriesLine(t *testing.T) {
	_, err := Assemble(`; leading comment
	.entry nowhere
main:
	nop
`)
	if err == nil {
		t.Fatal("expected an error for undefined .entry symbol")
	}
	var line int
	switch e := err.(type) {
	case *Error:
		line = e.Line
	case ErrorList:
		if len(e) == 0 {
			t.Fatalf("empty error list")
		}
		line = e[0].Line
	default:
		t.Fatalf("unexpected error type %T: %v", err, err)
	}
	if line != 2 {
		t.Errorf("error line = %d, want 2 (the .entry directive)", line)
	}
	if !strings.Contains(err.Error(), "nowhere") {
		t.Errorf("error should name the symbol: %v", err)
	}
}
