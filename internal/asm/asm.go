// Package asm implements a two-pass assembler for the RISC I instruction
// set, in the syntax printed by the isa disassembler, plus labels, data
// directives and a small set of pseudo-instructions (nop, mov, li, la, cmp,
// b<cond>). It is the assembly layer both for hand-written programs and for
// the Cm compiler's RISC back ends.
package asm

import (
	"fmt"
	"strconv"
	"strings"

	"risc1/internal/isa"
)

// Image is an assembled program: a contiguous byte image placed at Org, an
// entry point, the symbol table, and the source-line table that maps image
// addresses back to the assembly text they came from.
type Image struct {
	Org     uint32
	Bytes   []byte
	Entry   uint32
	Symbols map[string]uint32
	// Lines records, per assembled item, which 1-based source line emitted
	// the bytes at [Addr, Addr+Size). Sorted by Addr; LineFor queries it.
	// Diagnostics produced after assembly (the lint passes, runtime fault
	// reporters) use it to point at source rather than raw addresses.
	Lines []LineSpan
}

// LineSpan ties one address range of the image to its source line.
type LineSpan struct {
	Addr uint32
	Size uint32
	Line int
}

// Size returns the image size in bytes.
func (img *Image) Size() int { return len(img.Bytes) }

// Symbol looks up a label's address.
func (img *Image) Symbol(name string) (uint32, bool) {
	v, ok := img.Symbols[name]
	return v, ok
}

// LineFor returns the 1-based source line that emitted the byte at addr, or
// 0 when the address is outside every recorded span (e.g. .space padding of
// a hand-built image, or an image predating the line table).
func (img *Image) LineFor(addr uint32) int {
	lo, hi := 0, len(img.Lines)
	for lo < hi {
		mid := (lo + hi) / 2
		s := img.Lines[mid]
		switch {
		case addr < s.Addr:
			hi = mid
		case addr >= s.Addr+s.Size:
			lo = mid + 1
		default:
			return s.Line
		}
	}
	return 0
}

// Error is an assembly diagnostic tied to a source line.
type Error struct {
	Line int
	Msg  string
	// OutOfRange marks a value that did not fit its encoding field (a 13- or
	// 19-bit immediate, or a relative target) — the only class of failure
	// that recompiling with wide addressing can fix.
	OutOfRange bool
}

func (e *Error) Error() string { return fmt.Sprintf("asm: line %d: %s", e.Line, e.Msg) }

// IsOutOfRange reports whether err is (or aggregates only) out-of-range
// encoding diagnostics. Callers use it to decide whether a WideData
// recompile could succeed; retrying on any other error would just mask the
// original diagnostic behind a second, identical failure.
func IsOutOfRange(err error) bool {
	switch e := err.(type) {
	case *Error:
		return e.OutOfRange
	case ErrorList:
		for _, d := range e {
			if !d.OutOfRange {
				return false
			}
		}
		return len(e) > 0
	}
	return false
}

// ErrorList aggregates diagnostics so callers see every problem at once.
type ErrorList []*Error

func (l ErrorList) Error() string {
	if len(l) == 1 {
		return l[0].Error()
	}
	msgs := make([]string, len(l))
	for i, e := range l {
		msgs[i] = e.Error()
	}
	return fmt.Sprintf("%d assembly errors:\n%s", len(l), strings.Join(msgs, "\n"))
}

// expr is a (possibly symbolic) constant: sym + off, or just off.
type expr struct {
	sym string
	off int64
}

func (e expr) isNum() bool { return e.sym == "" }

// operand is one parsed instruction operand.
type operand struct {
	isReg  bool
	reg    uint8
	isImm  bool // written with '#' or a bare expression
	imm    expr
	isAddr bool // (rN)S2 effective-address form
	base   uint8
	index  operand2
}

// operand2 is the S2 part of an address: register or immediate.
type operand2 struct {
	isReg bool
	reg   uint8
	imm   expr
}

// item is anything that occupies space in the image.
type item struct {
	line int
	// srcLine, when nonzero, overrides line in the image's line table: a
	// ";@line N" marker redirected attribution to an originating source
	// line (the Cm compiler stamps its output this way). Diagnostics about
	// the assembly text itself still use line.
	srcLine int
	addr    uint32
	// one of:
	inst  *protoInst
	data  []byte // literal bytes (.byte/.half/.word with numeric values)
	words []expr // .word with symbolic values, 4 bytes each
	space int    // .space
}

// protoInst is an instruction before symbol resolution.
type protoInst struct {
	op      isa.Op
	scc     bool
	rd      uint8
	cond    isa.Cond
	hasCond bool
	rs1     uint8
	s2      operand2
	useS2   bool
	imm19   expr
	// relative marks imm19 as a PC-relative target (label or absolute
	// address expression): the encoder subtracts the instruction address.
	relative bool
	// hiPart/loPart mark the two halves of li/la expansions: the encoder
	// computes the ldhi/add split of the resolved 32-bit value.
	hiPart bool
	loPart bool
}

type assembler struct {
	items   []item
	symbols map[string]uint32
	equs    map[string]int64
	entry   string
	// entryLine is where .entry appeared, so an undefined-entry diagnostic
	// can point at the directive instead of arriving line-less.
	entryLine int
	org       uint32
	orgSet    bool
	pc        uint32
	errs      ErrorList
	line      int
	// srcLine carries the current text line's ";@line N" marker (0 = none)
	// into the items it emits.
	srcLine int
}

// Assemble runs both passes over src and returns the linked image.
func Assemble(src string) (*Image, error) {
	a := &assembler{symbols: map[string]uint32{}, equs: map[string]int64{}}
	a.parse(src)
	if len(a.errs) > 0 {
		return nil, a.errs
	}
	img, err := a.encode()
	if err != nil {
		return nil, err
	}
	return img, nil
}

// MustAssemble is Assemble for tests and fixed internal programs.
func MustAssemble(src string) *Image {
	img, err := Assemble(src)
	if err != nil {
		panic(err)
	}
	return img
}

func (a *assembler) errorf(format string, args ...any) {
	a.errs = append(a.errs, &Error{Line: a.line, Msg: fmt.Sprintf(format, args...)})
}

// ---------- pass 1: parse ----------

func (a *assembler) parse(src string) {
	for n, raw := range strings.Split(src, "\n") {
		a.line = n + 1
		a.srcLine = 0
		line := raw
		if i := indexOutsideQuotes(line, ";"); i >= 0 {
			a.srcLine = parseLineMarker(line[i+1:])
			line = line[:i]
		}
		// Strip comments beginning with "//" too, but not inside quotes.
		if i := indexOutsideQuotes(line, "//"); i >= 0 {
			line = line[:i]
		}
		line = strings.TrimSpace(line)
		for line != "" {
			// Labels: one or more "name:" prefixes.
			i := indexOutsideQuotes(line, ":")
			head := ""
			if i >= 0 {
				head = strings.TrimSpace(line[:i])
			}
			if i >= 0 && isIdent(head) {
				a.defineLabel(head)
				line = strings.TrimSpace(line[i+1:])
				continue
			}
			a.statement(line)
			break
		}
	}
}

func (a *assembler) defineLabel(name string) {
	if _, dup := a.symbols[name]; dup {
		a.errorf("label %q redefined", name)
		return
	}
	if _, dup := a.equs[name]; dup {
		a.errorf("label %q conflicts with .equ", name)
		return
	}
	a.symbols[name] = a.pc
}

// parseLineMarker recognizes the "@line N" attribution marker in a comment
// and returns N, or 0 when the comment is ordinary prose.
func parseLineMarker(comment string) int {
	s := strings.TrimSpace(comment)
	if !strings.HasPrefix(s, "@line") {
		return 0
	}
	s = strings.TrimSpace(s[len("@line"):])
	n, err := strconv.Atoi(s)
	if err != nil || n <= 0 {
		return 0
	}
	return n
}

func (a *assembler) add(it item) {
	it.line = a.line
	it.srcLine = a.srcLine
	it.addr = a.pc
	switch {
	case it.inst != nil:
		a.pc += isa.InstBytes
	case it.words != nil:
		a.pc += uint32(4 * len(it.words))
	case it.data != nil:
		a.pc += uint32(len(it.data))
	default:
		a.pc += uint32(it.space)
	}
	a.items = append(a.items, it)
}

func (a *assembler) statement(line string) {
	mnemonic, rest := splitMnemonic(line)
	if strings.HasPrefix(mnemonic, ".") {
		a.directive(mnemonic, rest)
		return
	}
	scc := false
	if strings.HasSuffix(mnemonic, "!") {
		scc = true
		mnemonic = mnemonic[:len(mnemonic)-1]
	}
	ops, ok := a.parseOperands(rest)
	if !ok {
		return
	}
	if op, isReal := isa.ByName(mnemonic); isReal {
		a.realInst(op, scc, ops)
		return
	}
	a.pseudo(mnemonic, scc, ops)
}

func splitMnemonic(line string) (string, string) {
	i := strings.IndexAny(line, " \t")
	if i < 0 {
		return strings.ToLower(line), ""
	}
	return strings.ToLower(line[:i]), strings.TrimSpace(line[i+1:])
}

// parseOperands splits on top-level commas and parses each operand.
func (a *assembler) parseOperands(rest string) ([]operand, bool) {
	if rest == "" {
		return nil, true
	}
	parts, err := splitCommas(rest)
	if err != nil {
		a.errorf("%v", err)
		return nil, false
	}
	ops := make([]operand, 0, len(parts))
	for _, p := range parts {
		op, err := a.parseOperand(p)
		if err != nil {
			a.errorf("%v", err)
			return nil, false
		}
		ops = append(ops, op)
	}
	return ops, true
}

func (a *assembler) parseOperand(s string) (operand, error) {
	s = strings.TrimSpace(s)
	if s == "" {
		return operand{}, fmt.Errorf("empty operand")
	}
	if s[0] == '(' {
		// (rN)S2 address form.
		close := strings.IndexByte(s, ')')
		if close < 0 {
			return operand{}, fmt.Errorf("missing ')' in %q", s)
		}
		base, ok := regNum(strings.TrimSpace(s[1:close]))
		if !ok {
			return operand{}, fmt.Errorf("bad base register in %q", s)
		}
		idx, err := a.parseS2(strings.TrimSpace(s[close+1:]))
		if err != nil {
			return operand{}, err
		}
		return operand{isAddr: true, base: base, index: idx}, nil
	}
	if r, ok := regNum(s); ok {
		return operand{isReg: true, reg: r}, nil
	}
	e, err := a.parseExpr(strings.TrimPrefix(s, "#"))
	if err != nil {
		return operand{}, err
	}
	return operand{isImm: true, imm: e}, nil
}

func (a *assembler) parseS2(s string) (operand2, error) {
	if s == "" {
		return operand2{}, fmt.Errorf("missing offset after ')'")
	}
	if r, ok := regNum(s); ok {
		return operand2{isReg: true, reg: r}, nil
	}
	e, err := a.parseExpr(strings.TrimPrefix(s, "#"))
	if err != nil {
		return operand2{}, err
	}
	return operand2{imm: e}, nil
}

// parseExpr accepts NUM, 'c', SYM, SYM+NUM, SYM-NUM.
func (a *assembler) parseExpr(s string) (expr, error) {
	s = strings.TrimSpace(s)
	if s == "" {
		return expr{}, fmt.Errorf("empty expression")
	}
	if s[0] == '\'' {
		v, err := charLit(s)
		return expr{off: v}, err
	}
	if v, err := parseInt(s); err == nil {
		return expr{off: v}, nil
	}
	// SYM, SYM+N, SYM-N
	for _, sep := range []byte{'+', '-'} {
		if i := strings.LastIndexByte(s, sep); i > 0 {
			sym := strings.TrimSpace(s[:i])
			if !isIdent(sym) {
				continue
			}
			n, err := parseInt(strings.TrimSpace(s[i+1:]))
			if err != nil {
				return expr{}, fmt.Errorf("bad offset in %q", s)
			}
			if sep == '-' {
				n = -n
			}
			return a.symExpr(sym, n)
		}
	}
	if isIdent(s) {
		return a.symExpr(s, 0)
	}
	return expr{}, fmt.Errorf("cannot parse expression %q", s)
}

func (a *assembler) symExpr(sym string, off int64) (expr, error) {
	if v, ok := a.equs[sym]; ok {
		return expr{off: v + off}, nil
	}
	return expr{sym: sym, off: off}, nil
}

func parseInt(s string) (int64, error) {
	s = strings.TrimSpace(s)
	neg := false
	if strings.HasPrefix(s, "-") {
		neg = true
		s = s[1:]
	}
	v, err := strconv.ParseUint(strings.TrimSpace(s), 0, 32)
	if err != nil {
		// Also allow full-range negative decimals like -2147483648.
		if w, err2 := strconv.ParseInt(s, 0, 64); err2 == nil && w <= 1<<32 {
			v = uint64(w)
		} else {
			return 0, err
		}
	}
	n := int64(v)
	if neg {
		n = -n
	}
	return n, nil
}

func charLit(s string) (int64, error) {
	if len(s) >= 3 && s[0] == '\'' && s[len(s)-1] == '\'' {
		body := s[1 : len(s)-1]
		if body == `\n` {
			return '\n', nil
		}
		if body == `\t` {
			return '\t', nil
		}
		if body == `\\` {
			return '\\', nil
		}
		if body == `\'` {
			return '\'', nil
		}
		if len(body) == 1 {
			return int64(body[0]), nil
		}
	}
	return 0, fmt.Errorf("bad character literal %s", s)
}

func regNum(s string) (uint8, bool) {
	s = strings.ToLower(strings.TrimSpace(s))
	if len(s) < 2 || s[0] != 'r' {
		return 0, false
	}
	n, err := strconv.Atoi(s[1:])
	if err != nil || n < 0 || n > 31 {
		return 0, false
	}
	return uint8(n), true
}

func isIdent(s string) bool {
	if s == "" {
		return false
	}
	for i, c := range s {
		switch {
		case c == '_' || c == '.':
		case c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z':
		case c >= '0' && c <= '9':
			if i == 0 {
				return false
			}
		default:
			return false
		}
	}
	// Avoid treating register names as symbols.
	if _, isReg := regNum(s); isReg {
		return false
	}
	return true
}

func splitCommas(s string) ([]string, error) {
	var parts []string
	depth, start, inQuote := 0, 0, byte(0)
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch {
		case inQuote != 0:
			if c == '\\' {
				i++
			} else if c == inQuote {
				inQuote = 0
			}
		case c == '"' || c == '\'':
			inQuote = c
		case c == '(':
			depth++
		case c == ')':
			depth--
			if depth < 0 {
				return nil, fmt.Errorf("unbalanced ')'")
			}
		case c == ',' && depth == 0:
			parts = append(parts, s[start:i])
			start = i + 1
		}
	}
	if depth != 0 || inQuote != 0 {
		return nil, fmt.Errorf("unbalanced delimiter in %q", s)
	}
	parts = append(parts, s[start:])
	return parts, nil
}

func indexOutsideQuotes(s, sub string) int {
	inQuote := byte(0)
	for i := 0; i+len(sub) <= len(s); i++ {
		c := s[i]
		if inQuote != 0 {
			if c == '\\' {
				i++
			} else if c == inQuote {
				inQuote = 0
			}
			continue
		}
		if c == '"' || c == '\'' {
			inQuote = c
			continue
		}
		if s[i:i+len(sub)] == sub {
			return i
		}
	}
	return -1
}
