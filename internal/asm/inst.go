package asm

import (
	"fmt"
	"strings"

	"risc1/internal/isa"
)

// realInst builds a protoInst for one of the 31 hardware instructions.
func (a *assembler) realInst(op isa.Op, scc bool, ops []operand) {
	p := &protoInst{op: op, scc: scc}
	bad := func() {
		a.errorf("%s: bad operands", op)
	}
	switch op {
	case isa.OpJMP: // jmp cond,(rx)s2
		if len(ops) != 2 || !ops[0].isImm || !ops[0].imm.isNum() || !ops[1].isAddr {
			// Conditions arrive as bare identifiers; catch them here.
			if len(ops) == 2 && ops[1].isAddr {
				if c, ok := condOf(ops[0]); ok {
					p.cond, p.hasCond = c, true
					p.rs1, p.s2, p.useS2 = ops[1].base, ops[1].index, true
					a.add(item{inst: p})
					return
				}
			}
			bad()
			return
		}
	case isa.OpJMPR: // jmpr cond,target
		if len(ops) != 2 || !ops[1].isImm {
			bad()
			return
		}
		c, ok := condOf(ops[0])
		if !ok {
			a.errorf("jmpr: bad condition")
			return
		}
		p.cond, p.hasCond = c, true
		p.imm19 = ops[1].imm
		p.relative = !ops[1].imm.isNum() // labels are PC-relative; #n literal
		a.add(item{inst: p})
		return
	case isa.OpCALL: // call rd,(rx)s2
		if len(ops) != 2 || !ops[0].isReg || !ops[1].isAddr {
			bad()
			return
		}
		p.rd = ops[0].reg
		p.rs1, p.s2, p.useS2 = ops[1].base, ops[1].index, true
		a.add(item{inst: p})
		return
	case isa.OpCALLR: // callr rd,target
		if len(ops) != 2 || !ops[0].isReg || !ops[1].isImm {
			bad()
			return
		}
		p.rd = ops[0].reg
		p.imm19 = ops[1].imm
		p.relative = !ops[1].imm.isNum()
		a.add(item{inst: p})
		return
	case isa.OpRET, isa.OpRETINT: // ret rd,s2
		if len(ops) != 2 || !ops[0].isReg {
			bad()
			return
		}
		p.rd = ops[0].reg
		s2, ok := s2Of(ops[1])
		if !ok {
			bad()
			return
		}
		p.s2, p.useS2 = s2, true
		a.add(item{inst: p})
		return
	case isa.OpCALLINT, isa.OpGTLPC, isa.OpGETPSW: // op rd
		if len(ops) != 1 || !ops[0].isReg {
			bad()
			return
		}
		p.rd = ops[0].reg
		a.add(item{inst: p})
		return
	case isa.OpPUTPSW: // putpsw rs1,s2
		if len(ops) != 2 || !ops[0].isReg {
			bad()
			return
		}
		p.rs1 = ops[0].reg
		s2, ok := s2Of(ops[1])
		if !ok {
			bad()
			return
		}
		p.s2, p.useS2 = s2, true
		a.add(item{inst: p})
		return
	case isa.OpLDHI: // ldhi rd,#imm19
		if len(ops) != 2 || !ops[0].isReg || !ops[1].isImm {
			bad()
			return
		}
		p.rd = ops[0].reg
		p.imm19 = ops[1].imm
		a.add(item{inst: p})
		return
	default:
		switch op.Cat() {
		case isa.CatLoad: // ldl (rx)s2,rd
			if len(ops) != 2 || !ops[0].isAddr || !ops[1].isReg {
				bad()
				return
			}
			p.rs1, p.s2, p.useS2 = ops[0].base, ops[0].index, true
			p.rd = ops[1].reg
			a.add(item{inst: p})
			return
		case isa.CatStore: // stl rm,(rx)s2
			if len(ops) != 2 || !ops[0].isReg || !ops[1].isAddr {
				bad()
				return
			}
			p.rd = ops[0].reg
			p.rs1, p.s2, p.useS2 = ops[1].base, ops[1].index, true
			a.add(item{inst: p})
			return
		case isa.CatALU: // add rs1,s2,rd
			if len(ops) != 3 || !ops[0].isReg || !ops[2].isReg {
				bad()
				return
			}
			p.rs1 = ops[0].reg
			s2, ok := s2Of(ops[1])
			if !ok {
				bad()
				return
			}
			p.s2, p.useS2 = s2, true
			p.rd = ops[2].reg
			a.add(item{inst: p})
			return
		}
		bad()
		return
	}
	bad()
}

// condOf interprets an operand as a jump condition: conditions parse as
// symbolic immediates ("eq" has no # prefix).
func condOf(op operand) (isa.Cond, bool) {
	if !op.isImm || op.imm.isNum() || op.imm.off != 0 {
		return 0, false
	}
	return isa.CondByName(op.imm.sym)
}

func s2Of(op operand) (operand2, bool) {
	switch {
	case op.isReg:
		return operand2{isReg: true, reg: op.reg}, true
	case op.isImm:
		return operand2{imm: op.imm}, true
	}
	return operand2{}, false
}

// pseudo expands the assembler's convenience mnemonics.
func (a *assembler) pseudo(mnemonic string, scc bool, ops []operand) {
	switch mnemonic {
	case "nop":
		if len(ops) != 0 {
			a.errorf("nop takes no operands")
			return
		}
		a.add(item{inst: &protoInst{op: isa.OpADD, useS2: true}})
		return
	case "mov": // mov rs,rd -> add rs,r0? No: or rs,r0,rd keeps flags simple
		if len(ops) != 2 || !ops[0].isReg || !ops[1].isReg {
			a.errorf("mov needs two registers")
			return
		}
		a.add(item{inst: &protoInst{op: isa.OpADD, scc: scc,
			rs1: ops[0].reg, useS2: true, rd: ops[1].reg}})
		return
	case "cmp": // cmp rs1,s2 -> sub! rs1,s2,r0
		if len(ops) != 2 || !ops[0].isReg {
			a.errorf("cmp needs register, s2")
			return
		}
		s2, ok := s2Of(ops[1])
		if !ok {
			a.errorf("cmp: bad second operand")
			return
		}
		a.add(item{inst: &protoInst{op: isa.OpSUB, scc: true,
			rs1: ops[0].reg, s2: s2, useS2: true}})
		return
	case "li", "la": // li #value,rd / la symbol,rd
		if len(ops) != 2 || !ops[0].isImm || !ops[1].isReg {
			a.errorf("%s needs value, register", mnemonic)
			return
		}
		v, rd := ops[0].imm, ops[1].reg
		if v.isNum() && v.off >= isa.MinImm13 && v.off <= isa.MaxImm13 {
			a.add(item{inst: &protoInst{op: isa.OpADD, scc: scc,
				s2: operand2{imm: v}, useS2: true, rd: rd}})
			return
		}
		// Two-instruction form: ldhi rd,#hi ; add rd,#lo,rd.
		a.add(item{inst: &protoInst{op: isa.OpLDHI, rd: rd, imm19: v, hiPart: true}})
		a.add(item{inst: &protoInst{op: isa.OpADD, scc: scc, rs1: rd,
			s2: operand2{imm: v}, useS2: true, rd: rd, loPart: true}})
		return
	}
	// b / b<cond> label: PC-relative conditional branches.
	if mnemonic == "b" || strings.HasPrefix(mnemonic, "b") {
		cond := isa.CondALW
		if mnemonic != "b" {
			c, ok := isa.CondByName(mnemonic[1:])
			if !ok {
				a.errorf("unknown mnemonic %q", mnemonic)
				return
			}
			cond = c
		}
		if len(ops) != 1 || !ops[0].isImm {
			a.errorf("%s needs a target", mnemonic)
			return
		}
		a.add(item{inst: &protoInst{op: isa.OpJMPR, cond: cond, hasCond: true,
			imm19: ops[0].imm, relative: !ops[0].imm.isNum()}})
		return
	}
	a.errorf("unknown mnemonic %q", mnemonic)
}

// directive handles dot-directives.
func (a *assembler) directive(name, rest string) {
	switch name {
	case ".org":
		v, err := parseInt(rest)
		if err != nil || v < 0 {
			a.errorf(".org: bad address %q", rest)
			return
		}
		if a.orgSet {
			a.errorf(".org may appear only once")
			return
		}
		if len(a.items) > 0 {
			a.errorf(".org must precede all code and data")
			return
		}
		a.org, a.orgSet = uint32(v), true
		a.pc = uint32(v)
	case ".entry":
		a.entry = strings.TrimSpace(rest)
		a.entryLine = a.line
		if !isIdent(a.entry) {
			a.errorf(".entry: bad symbol %q", rest)
		}
	case ".equ":
		parts, _ := splitCommas(rest)
		if len(parts) != 2 || !isIdent(strings.TrimSpace(parts[0])) {
			a.errorf(".equ needs name, value")
			return
		}
		v, err := parseInt(parts[1])
		if err != nil {
			a.errorf(".equ: bad value %q", parts[1])
			return
		}
		name := strings.TrimSpace(parts[0])
		if _, dup := a.equs[name]; dup {
			a.errorf(".equ %q redefined", name)
			return
		}
		a.equs[name] = v
	case ".word":
		parts, _ := splitCommas(rest)
		var words []expr
		for _, p := range parts {
			e, err := a.parseExpr(strings.TrimSpace(strings.TrimPrefix(strings.TrimSpace(p), "#")))
			if err != nil {
				a.errorf(".word: %v", err)
				return
			}
			words = append(words, e)
		}
		a.add(item{words: words})
	case ".half", ".byte":
		size := 2
		if name == ".byte" {
			size = 1
		}
		parts, _ := splitCommas(rest)
		var data []byte
		for _, p := range parts {
			e, err := a.parseExpr(strings.TrimSpace(p))
			if err != nil || !e.isNum() {
				a.errorf("%s: bad value %q", name, p)
				return
			}
			v := uint64(e.off)
			if size == 2 {
				data = append(data, byte(v>>8), byte(v))
			} else {
				data = append(data, byte(v))
			}
		}
		a.add(item{data: data})
	case ".ascii", ".asciz":
		s, err := stringLit(strings.TrimSpace(rest))
		if err != nil {
			a.errorf("%s: %v", name, err)
			return
		}
		data := []byte(s)
		if name == ".asciz" {
			data = append(data, 0)
		}
		a.add(item{data: data})
	case ".space":
		v, err := parseInt(rest)
		if err != nil || v < 0 || v > 1<<24 {
			a.errorf(".space: bad size %q", rest)
			return
		}
		a.add(item{space: int(v)})
	case ".align":
		v, err := parseInt(rest)
		if err != nil || v <= 0 || (v&(v-1)) != 0 {
			a.errorf(".align: need a power of two, got %q", rest)
			return
		}
		pad := (uint32(v) - a.pc%uint32(v)) % uint32(v)
		if pad > 0 {
			a.add(item{space: int(pad)})
		}
	default:
		a.errorf("unknown directive %q", name)
	}
}

func stringLit(s string) (string, error) {
	if len(s) < 2 || s[0] != '"' || s[len(s)-1] != '"' {
		return "", fmt.Errorf("expected quoted string, got %q", s)
	}
	body := s[1 : len(s)-1]
	var b strings.Builder
	for i := 0; i < len(body); i++ {
		c := body[i]
		if c != '\\' {
			b.WriteByte(c)
			continue
		}
		i++
		if i >= len(body) {
			return "", fmt.Errorf("trailing backslash")
		}
		switch body[i] {
		case 'n':
			b.WriteByte('\n')
		case 't':
			b.WriteByte('\t')
		case '0':
			b.WriteByte(0)
		case '\\', '"':
			b.WriteByte(body[i])
		default:
			return "", fmt.Errorf("unknown escape \\%c", body[i])
		}
	}
	return b.String(), nil
}
