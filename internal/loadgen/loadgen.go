// Package loadgen is riscload's engine: it replays realistic traffic mixes
// against a running riscd and reduces what happened to the numbers a
// capacity decision needs — latency percentiles, throughput, shed rate and
// cache hit rate, per mix.
//
// Each mix isolates one serving regime the daemon must survive: cold
// compile-heavy traffic (every request misses the image cache), cache-hot
// rerun traffic (the steady state the LRU exists for), fault-heavy guests
// (the error path must not be slower than the happy path), analyzer
// traffic, multi-core SMP runs, and streaming watchers. Mixes run
// sequentially so each gets the whole worker pool and its /metrics deltas
// are attributable; within a mix, a fixed number of workers issue requests
// back to back for the configured duration — closed-loop load, so measured
// throughput is the server's, not the generator's arrival schedule.
package loadgen

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Options configures one riscload session.
type Options struct {
	// BaseURL locates the riscd under test, e.g. http://127.0.0.1:8080.
	BaseURL string
	// Concurrency is the number of closed-loop workers per mix.
	Concurrency int
	// Duration is how long each mix runs.
	Duration time.Duration
	// Mixes selects by name; empty means every known mix.
	Mixes []string
}

// MixResult is the capacity summary of one mix.
type MixResult struct {
	Name     string `json:"name"`
	Desc     string `json:"desc"`
	Requests int    `json:"requests"`
	// OK counts requests the server answered as the mix expects — for the
	// fault mix that is the typed 422, not a 200.
	OK     int `json:"ok"`
	Shed   int `json:"shed"` // 429s: load the server refused by design
	Errors int `json:"errors"`

	P50MS  float64 `json:"p50_ms"`
	P90MS  float64 `json:"p90_ms"`
	P99MS  float64 `json:"p99_ms"`
	MeanMS float64 `json:"mean_ms"`

	ThroughputRPS float64 `json:"throughput_rps"`
	ShedRate      float64 `json:"shed_rate"`
	// CacheHitRate is the image-cache hit rate over this mix's window,
	// from /metrics deltas (-1 when the scrape failed).
	CacheHitRate float64 `json:"cache_hit_rate"`
}

// Report is the full session result, the schema of BENCH_serve.json.
type Report struct {
	Timestamp   string      `json:"timestamp"`
	BaseURL     string      `json:"base_url"`
	Concurrency int         `json:"concurrency"`
	DurationS   float64     `json:"duration_s"` // per mix
	Mixes       []MixResult `json:"mixes"`
}

// outcome classifies one request against its mix's expectation.
type outcome int

const (
	outcomeOK outcome = iota
	outcomeShed
	outcomeError
)

// mix is one traffic pattern: issue fires a single request and classifies
// the answer. seq is unique across the mix, which is how the cold mix
// defeats the cache.
type mix struct {
	name  string
	desc  string
	issue func(c *http.Client, baseURL string, seq int64) outcome
}

// Source programs for the mixes. Sized so one request is a few milliseconds
// of simulation — long enough to exercise the pool, short enough that a
// smoke run finishes inside CI.
const (
	// hotSrc and coldSrcPattern run the identical simulation; cold splices
	// a per-request constant into the source so every request is a distinct
	// image. Same guest work on both sides is what makes the hot-vs-cold
	// p50 comparison a measurement of the cache, not of the programs.
	hotSrc = `
int fib(int n) {
    if (n < 2) return n;
    return fib(n - 1) + fib(n - 2);
}
int main() { putint(fib(12)); return 0; }`

	coldSrcPattern = `
int fib(int n) {
    if (n < 2) return n;
    return fib(n - 1) + fib(n - 2);
}
int main() { putint(fib(12) + %d); return 0; }`

	// faultAsm stores misaligned: a guest bug the server must answer with a
	// typed 422, cheaply.
	faultAsm = "main: stl r0,(r0)#2\n ret r25,#8\n nop\n"

	// lintAsm carries a delay-slot hazard so the analyzer has a finding.
	lintAsm = "main:\n callr r25,f\n stl r9,(r0)#-252\n ret r25,#8\n nop\nf:\n ret r25,#0\n nop\n"

	smpSrc = `
int total;
void worker(int k) {
    lock(0);
    total += k + 1;
    unlock(0);
}
int main() {
    int h1; int h2;
    h1 = spawn(worker, 0);
    h2 = spawn(worker, 1);
    join(h1);
    join(h2);
    putint(total);
    return 0;
}`

	streamSrc = `
int main() {
    int i;
    i = 0;
    while (i < 20000) {
        if (i - (i / 1000) * 1000 == 0) putint(i);
        i = i + 1;
    }
    return 0;
}`
)

// postJSON posts a body and returns the status plus drained response.
func postJSON(c *http.Client, url string, body any) (int, []byte, error) {
	raw, err := json.Marshal(body)
	if err != nil {
		return 0, nil, err
	}
	resp, err := c.Post(url, "application/json", bytes.NewReader(raw))
	if err != nil {
		return 0, nil, err
	}
	out, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		return resp.StatusCode, nil, err
	}
	return resp.StatusCode, out, nil
}

// expectStatus builds the classifier shared by the buffered-endpoint mixes.
func expectStatus(url string, want int, body func(seq int64) any) func(*http.Client, string, int64) outcome {
	return func(c *http.Client, baseURL string, seq int64) outcome {
		status, _, err := postJSON(c, baseURL+url, body(seq))
		switch {
		case err != nil:
			return outcomeError
		case status == http.StatusTooManyRequests:
			return outcomeShed
		case status == want:
			return outcomeOK
		}
		return outcomeError
	}
}

// runBody is the minimal /v1/run request shape riscload speaks. Kept local:
// the load generator is a client and must not grow compile-time knowledge
// of server internals beyond the wire format.
type runBody struct {
	Source string `json:"source"`
	Lang   string `json:"lang,omitempty"`
	Cores  int    `json:"cores,omitempty"`
}

type lintBody struct {
	Source string `json:"source"`
	Lang   string `json:"lang,omitempty"`
}

// Mixes returns the known traffic patterns in their canonical order.
func Mixes() []string {
	out := make([]string, len(allMixes))
	for i, m := range allMixes {
		out[i] = m.name
	}
	return out
}

var allMixes = []mix{
	{
		name: "cold",
		desc: "compile-heavy: every request is distinct source, all cache misses",
		issue: expectStatus("/v1/run", http.StatusOK, func(seq int64) any {
			return runBody{Source: fmt.Sprintf(coldSrcPattern, seq)}
		}),
	},
	{
		name: "hot",
		desc: "cache-hot rerun: identical source, the compile-once run-many steady state",
		issue: expectStatus("/v1/run", http.StatusOK, func(int64) any {
			return runBody{Source: hotSrc}
		}),
	},
	{
		name: "fault",
		desc: "fault-heavy: guest bugs answered with typed 422s",
		issue: expectStatus("/v1/run", http.StatusUnprocessableEntity, func(int64) any {
			return runBody{Source: faultAsm, Lang: "asm"}
		}),
	},
	{
		name: "lint",
		desc: "analyzer traffic: delay-slot hazard findings",
		issue: expectStatus("/v1/lint", http.StatusOK, func(int64) any {
			return lintBody{Source: lintAsm, Lang: "asm"}
		}),
	},
	{
		name: "smp",
		desc: "multi-core runs on the shared-memory machine",
		issue: expectStatus("/v1/run", http.StatusOK, func(int64) any {
			return runBody{Source: smpSrc, Cores: 2}
		}),
	},
	{
		name:  "stream",
		desc:  "streaming watchers: SSE consumed to the terminal event",
		issue: issueStream,
	},
}

// issueStream opens /v1/run/stream and drains it; success is a terminal
// "result" event after at least one console chunk.
func issueStream(c *http.Client, baseURL string, seq int64) outcome {
	raw, _ := json.Marshal(runBody{Source: streamSrc})
	resp, err := c.Post(baseURL+"/v1/run/stream", "application/json", bytes.NewReader(raw))
	if err != nil {
		return outcomeError
	}
	defer resp.Body.Close()
	if resp.StatusCode == http.StatusTooManyRequests {
		io.Copy(io.Discard, resp.Body)
		return outcomeShed
	}
	if resp.StatusCode != http.StatusOK {
		io.Copy(io.Discard, resp.Body)
		return outcomeError
	}
	br := bufio.NewReader(resp.Body)
	var event string
	sawConsole, sawResult := false, false
	for {
		line, err := br.ReadString('\n')
		if err != nil {
			break
		}
		line = strings.TrimRight(line, "\n")
		if strings.HasPrefix(line, "event: ") {
			event = strings.TrimPrefix(line, "event: ")
			switch event {
			case "console":
				sawConsole = true
			case "result":
				sawResult = true
			}
		}
	}
	if sawResult && sawConsole {
		return outcomeOK
	}
	return outcomeError
}

// cacheCounters scrapes the image-cache hit/miss totals from /metrics.
func cacheCounters(c *http.Client, baseURL string) (hits, misses float64, err error) {
	resp, err := c.Get(baseURL + "/metrics")
	if err != nil {
		return 0, 0, err
	}
	raw, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		return 0, 0, err
	}
	text := string(raw)
	get := func(name string) (float64, error) {
		m := regexp.MustCompile(`(?m)^` + name + ` (\S+)$`).FindStringSubmatch(text)
		if m == nil {
			return 0, fmt.Errorf("metric %s not found", name)
		}
		return strconv.ParseFloat(m[1], 64)
	}
	if hits, err = get("riscd_image_cache_hits_total"); err != nil {
		return 0, 0, err
	}
	if misses, err = get("riscd_image_cache_misses_total"); err != nil {
		return 0, 0, err
	}
	return hits, misses, nil
}

// percentile reads the p-th percentile from an ascending-sorted sample set
// (nearest-rank).
func percentile(sorted []float64, p float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	idx := int(p*float64(len(sorted))+0.5) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(sorted) {
		idx = len(sorted) - 1
	}
	return sorted[idx]
}

// runMix drives one mix with opts.Concurrency closed-loop workers.
func runMix(m mix, opts Options, client *http.Client) MixResult {
	res := MixResult{Name: m.name, Desc: m.desc, CacheHitRate: -1}

	hits0, misses0, scrapeErr := cacheCounters(client, opts.BaseURL)

	var mu sync.Mutex
	var latencies []float64 // milliseconds, ok requests only
	var seq atomic.Int64
	var wg sync.WaitGroup
	deadline := time.Now().Add(opts.Duration)
	for w := 0; w < opts.Concurrency; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for time.Now().Before(deadline) {
				start := time.Now()
				out := m.issue(client, opts.BaseURL, seq.Add(1))
				ms := float64(time.Since(start).Microseconds()) / 1000
				mu.Lock()
				res.Requests++
				switch out {
				case outcomeOK:
					res.OK++
					latencies = append(latencies, ms)
				case outcomeShed:
					res.Shed++
				default:
					res.Errors++
				}
				mu.Unlock()
			}
		}()
	}
	wg.Wait()

	sort.Float64s(latencies)
	res.P50MS = percentile(latencies, 0.50)
	res.P90MS = percentile(latencies, 0.90)
	res.P99MS = percentile(latencies, 0.99)
	var sum float64
	for _, l := range latencies {
		sum += l
	}
	if len(latencies) > 0 {
		res.MeanMS = sum / float64(len(latencies))
	}
	res.ThroughputRPS = float64(res.OK) / opts.Duration.Seconds()
	if res.Requests > 0 {
		res.ShedRate = float64(res.Shed) / float64(res.Requests)
	}
	if scrapeErr == nil {
		if hits1, misses1, err := cacheCounters(client, opts.BaseURL); err == nil {
			dh, dm := hits1-hits0, misses1-misses0
			if dh+dm > 0 {
				res.CacheHitRate = dh / (dh + dm)
			}
		}
	}
	return res
}

// Run executes the selected mixes sequentially and assembles the report.
func Run(opts Options) (*Report, error) {
	if opts.BaseURL == "" {
		return nil, fmt.Errorf("base URL is required")
	}
	if opts.Concurrency <= 0 {
		opts.Concurrency = 8
	}
	if opts.Duration <= 0 {
		opts.Duration = 10 * time.Second
	}
	selected := allMixes
	if len(opts.Mixes) > 0 {
		byName := map[string]mix{}
		for _, m := range allMixes {
			byName[m.name] = m
		}
		selected = nil
		for _, name := range opts.Mixes {
			m, ok := byName[name]
			if !ok {
				return nil, fmt.Errorf("unknown mix %q (want one of %s)",
					name, strings.Join(Mixes(), ", "))
			}
			selected = append(selected, m)
		}
	}

	client := &http.Client{Timeout: 2 * time.Minute}
	// Fail fast when riscd is not there at all.
	resp, err := client.Get(opts.BaseURL + "/healthz")
	if err != nil {
		return nil, fmt.Errorf("riscd unreachable: %w", err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("riscd unhealthy: %d from /healthz", resp.StatusCode)
	}

	rep := &Report{
		Timestamp:   time.Now().UTC().Format(time.RFC3339),
		BaseURL:     opts.BaseURL,
		Concurrency: opts.Concurrency,
		DurationS:   opts.Duration.Seconds(),
	}
	for _, m := range selected {
		rep.Mixes = append(rep.Mixes, runMix(m, opts, client))
	}
	return rep, nil
}

// Gate evaluates the capacity assertions CI enforces and returns the
// violations, empty when the report passes:
//
//   - every mix completed at least one expected-answer request;
//   - the hot mix's cache hit rate is at least 0.9 (the compile-once
//     run-many steady state actually engaged);
//   - the hot mix's p50 does not exceed the cold mix's p50 (skipping the
//     compiler must not be slower than paying it).
func Gate(rep *Report) []string {
	var violations []string
	byName := map[string]MixResult{}
	for _, m := range rep.Mixes {
		byName[m.Name] = m
		if m.OK == 0 {
			violations = append(violations,
				fmt.Sprintf("mix %s: no request got its expected answer (%d requests, %d shed, %d errors)",
					m.Name, m.Requests, m.Shed, m.Errors))
		}
	}
	hot, hasHot := byName["hot"]
	if hasHot && hot.CacheHitRate >= 0 && hot.CacheHitRate < 0.9 {
		violations = append(violations,
			fmt.Sprintf("mix hot: cache hit rate %.2f, want >= 0.90", hot.CacheHitRate))
	}
	if cold, ok := byName["cold"]; ok && hasHot && hot.OK > 0 && cold.OK > 0 && hot.P50MS > cold.P50MS {
		violations = append(violations,
			fmt.Sprintf("hot p50 %.2fms exceeds cold p50 %.2fms: cache hits slower than compiles",
				hot.P50MS, cold.P50MS))
	}
	return violations
}
