package loadgen

import (
	"net/http/httptest"
	"testing"
	"time"

	"risc1/internal/serve"
)

// TestRunAllMixes drives every mix against an in-process riscd for a short
// window and checks the report shape: every mix present, every mix got at
// least one expected answer, percentiles ordered, cache hit rate sensible,
// and the capacity gate passing — the same assertions CI's smoke run makes.
func TestRunAllMixes(t *testing.T) {
	ts := httptest.NewServer(serve.New(serve.Config{Workers: 4, QueueDepth: 64}))
	defer ts.Close()

	rep, err := Run(Options{
		BaseURL:     ts.URL,
		Concurrency: 4,
		Duration:    300 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Mixes) != len(Mixes()) {
		t.Fatalf("report has %d mixes, want %d", len(rep.Mixes), len(Mixes()))
	}
	for i, m := range rep.Mixes {
		if m.Name != Mixes()[i] {
			t.Errorf("mix %d = %q, want %q", i, m.Name, Mixes()[i])
		}
		if m.OK == 0 {
			t.Errorf("mix %s: no expected answers (%d requests, %d shed, %d errors)",
				m.Name, m.Requests, m.Shed, m.Errors)
		}
		if m.Errors > 0 {
			t.Errorf("mix %s: %d unexpected errors", m.Name, m.Errors)
		}
		if m.P50MS > m.P90MS || m.P90MS > m.P99MS {
			t.Errorf("mix %s: percentiles out of order: p50 %.2f p90 %.2f p99 %.2f",
				m.Name, m.P50MS, m.P90MS, m.P99MS)
		}
		if m.OK > 0 && (m.P50MS <= 0 || m.ThroughputRPS <= 0) {
			t.Errorf("mix %s: empty latency/throughput: %+v", m.Name, m)
		}
	}
	byName := map[string]MixResult{}
	for _, m := range rep.Mixes {
		byName[m.Name] = m
	}
	// The cold mix defeats the cache by construction; the hot mix lives on
	// it after the first request.
	if cold := byName["cold"]; cold.CacheHitRate > 0.1 {
		t.Errorf("cold mix hit rate %.2f, want ~0", cold.CacheHitRate)
	}
	if hot := byName["hot"]; hot.CacheHitRate >= 0 && hot.CacheHitRate < 0.9 {
		t.Errorf("hot mix hit rate %.2f, want >= 0.9", hot.CacheHitRate)
	}
	if violations := Gate(rep); len(violations) != 0 {
		t.Errorf("gate violations on a healthy server: %v", violations)
	}
}

// TestRunSelectsMixes checks -mix style selection and unknown-name errors.
func TestRunSelectsMixes(t *testing.T) {
	ts := httptest.NewServer(serve.New(serve.Config{Workers: 2}))
	defer ts.Close()

	rep, err := Run(Options{
		BaseURL:     ts.URL,
		Concurrency: 2,
		Duration:    100 * time.Millisecond,
		Mixes:       []string{"fault", "hot"},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Mixes) != 2 || rep.Mixes[0].Name != "fault" || rep.Mixes[1].Name != "hot" {
		t.Fatalf("selected mixes wrong: %+v", rep.Mixes)
	}

	if _, err := Run(Options{BaseURL: ts.URL, Mixes: []string{"nope"}}); err == nil {
		t.Error("unknown mix accepted")
	}
}

// TestRunUnreachable pins the fail-fast contract when no riscd answers.
func TestRunUnreachable(t *testing.T) {
	if _, err := Run(Options{BaseURL: "http://127.0.0.1:1", Duration: time.Second}); err == nil {
		t.Error("unreachable riscd did not error")
	}
}

// TestGateViolations checks each capacity assertion trips on a bad report.
func TestGateViolations(t *testing.T) {
	rep := &Report{Mixes: []MixResult{
		{Name: "cold", OK: 10, P50MS: 5},
		{Name: "hot", OK: 10, P50MS: 9, CacheHitRate: 0.5},
		{Name: "fault", OK: 0, Requests: 4, Errors: 4},
	}}
	violations := Gate(rep)
	if len(violations) != 3 {
		t.Fatalf("violations = %v, want 3 (dead mix, low hit rate, hot slower than cold)", violations)
	}
}

// TestPercentile pins the nearest-rank arithmetic.
func TestPercentile(t *testing.T) {
	sorted := []float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}
	for _, tc := range []struct {
		p    float64
		want float64
	}{{0.50, 5}, {0.90, 9}, {0.99, 10}, {1.0, 10}} {
		if got := percentile(sorted, tc.p); got != tc.want {
			t.Errorf("p%.0f = %v, want %v", tc.p*100, got, tc.want)
		}
	}
	if got := percentile(nil, 0.5); got != 0 {
		t.Errorf("empty set percentile = %v, want 0", got)
	}
}
