// Package timing centralizes the clock models used by the evaluation, so
// every experiment converts cycles to time the same way.
//
// RISC I's published performance estimates assume a 400 ns processor cycle
// (the NMOS prototype's design target). The CISC comparator CX is modelled
// on a VAX-11/780-class machine: a 200 ns microcycle (5 MHz), with each
// instruction costing several microcycles of microcode plus memory time.
package timing

import "time"

// Clock periods.
const (
	RiscCycleNS    = 400 // RISC I processor cycle (paper's design target)
	CXMicrocycleNS = 200 // CX microcycle, VAX-11/780-class (5 MHz)
)

// RISC I instruction costs in cycles. Register-register instructions take a
// single cycle; memory instructions add one cycle of memory access, which is
// the whole point of the load/store discipline.
const (
	RiscALUCycles      = 1
	RiscLoadCycles     = 2
	RiscStoreCycles    = 2
	RiscTransferCycles = 1 // delayed jumps/calls/returns
	RiscMiscCycles     = 1 // LDHI, GTLPC, GETPSW, PUTPSW
)

// Register-window trap costs: trap entry/exit plus 16 stores (spill) or 16
// loads (fill) of the window image at 2 cycles each, handled by a short
// software sequence.
const (
	RiscSpillCycles = 8 + 16*RiscStoreCycles // 40
	RiscFillCycles  = 8 + 16*RiscLoadCycles  // 40
)

// RiscTime converts a RISC I cycle count to simulated wall time.
func RiscTime(cycles uint64) time.Duration {
	return time.Duration(cycles) * RiscCycleNS * time.Nanosecond
}

// CXTime converts a CX microcycle count to simulated wall time.
func CXTime(microcycles uint64) time.Duration {
	return time.Duration(microcycles) * CXMicrocycleNS * time.Nanosecond
}
