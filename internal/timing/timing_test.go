package timing

import (
	"testing"
	"time"
)

func TestClockConversions(t *testing.T) {
	if RiscTime(1) != 400*time.Nanosecond {
		t.Errorf("one RISC cycle = %v", RiscTime(1))
	}
	if CXTime(5) != time.Microsecond {
		t.Errorf("five CX microcycles = %v", CXTime(5))
	}
}

func TestTrapCosts(t *testing.T) {
	// A window spill is trap overhead plus 16 two-cycle stores; fill is
	// symmetric. These constants feed the E6 trap-time column.
	if RiscSpillCycles != 40 || RiscFillCycles != 40 {
		t.Errorf("spill/fill = %d/%d cycles, want 40/40",
			RiscSpillCycles, RiscFillCycles)
	}
}

func TestMemoryCostsExceedALU(t *testing.T) {
	if RiscLoadCycles <= RiscALUCycles || RiscStoreCycles <= RiscALUCycles {
		t.Error("memory instructions must cost more than register ops")
	}
}
