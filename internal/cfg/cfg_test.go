package cfg

import (
	"testing"

	"risc1/internal/asm"
	"risc1/internal/isa"
)

func decode(t *testing.T, src string) *Program {
	t.Helper()
	img := asm.MustAssemble(src)
	insts, ok := isa.DecodeBlock(img.Bytes)
	return New(img.Org, insts, ok)
}

func allStraight(isa.Inst) bool { return true }

func TestBlockSpanLoop(t *testing.T) {
	p := decode(t, `
	main:	add r0,#0,r1
		li #10,r2
	loop:	add r1,#1,r1
		cmp r1,r2
		blt loop
		nop
		ret r25,#8
		nop
	`)

	// From the top: four straight words, then the blt and its slot.
	s := p.BlockSpan(0, 64, allStraight)
	if s.Body != 4 || !s.Term || s.Words() != 6 {
		t.Fatalf("span from 0 = %+v (words %d), want body 4 + term", s, s.Words())
	}

	// Starting at a transfer: empty body, transfer + slot only.
	s = p.BlockSpan(6, 64, allStraight)
	if s.Body != 0 || !s.Term || s.Words() != 2 {
		t.Fatalf("span from ret = %+v, want body 0 + term", s)
	}
}

func TestBlockSpanLimits(t *testing.T) {
	p := decode(t, `
	main:	add r0,#0,r1
		add r1,#1,r1
		add r1,#2,r1
		ret r25,#8
		nop
	`)

	// maxWords caps the span even when the code runs on.
	s := p.BlockSpan(0, 3, allStraight)
	if s.Body != 1 || s.Term {
		t.Fatalf("capped span = %+v, want body 1 no term", s)
	}

	// The caller's policy ends the span before a rejected instruction.
	noAdd2 := func(in isa.Inst) bool { return in.Imm13 != 2 }
	s = p.BlockSpan(0, 64, noAdd2)
	if s.Body != 2 || s.Term {
		t.Fatalf("policy span = %+v, want body 2 no term", s)
	}

	// A transfer whose slot is rejected is left out of the span too.
	noNop := func(in isa.Inst) bool { return !(in.Op.Cat() == isa.CatALU && in.Rd == 0) }
	s = p.BlockSpan(0, 64, noNop)
	if s.Body != 3 || s.Term {
		t.Fatalf("slot-rejected span = %+v, want body 3 no term", s)
	}
}

func TestBlockSpanStopsAtCALLINT(t *testing.T) {
	p := decode(t, `
	main:	add r0,#0,r1
		callint r25
		ret r25,#8
		nop
	`)
	s := p.BlockSpan(0, 64, allStraight)
	if s.Body != 1 || s.Term {
		t.Fatalf("span = %+v, want body 1 no term (CALLINT is slotless)", s)
	}
}

func TestWalkCallDepth(t *testing.T) {
	p := decode(t, `
	main:	callr r25,f
		nop
		ret r25,#8
		nop
	f:	ret r25,#8
		nop
	`)
	r := p.Walk(0, nil)
	fi, ok := p.IndexOf(p.AddrOf(4))
	if !ok || fi != 4 {
		t.Fatalf("IndexOf round-trip failed: %d %v", fi, ok)
	}
	if !r.Reach[2*4] {
		t.Fatal("callee f not reachable")
	}
	if d := r.MinDepth[2*4]; d != 1 {
		t.Fatalf("callee depth = %d, want 1", d)
	}
	// The word after the call's slot is reached on the return edge, back
	// at depth 0.
	if d := r.MinDepth[2*2]; d != 0 {
		t.Fatalf("post-call depth = %d, want 0", d)
	}
}

func TestWalkUnknownRoots(t *testing.T) {
	p := decode(t, `
	main:	ret r25,#8
		nop
	isr:	ret r25,#8
		nop
	`)
	r := p.Walk(0, []int{2})
	if !r.Reach[2*2] {
		t.Fatal("rooted word not reachable")
	}
	if d := r.MinDepth[2*2]; d != DepthUnknown {
		t.Fatalf("rooted depth = %d, want DepthUnknown", d)
	}
}

func TestIndexOfBounds(t *testing.T) {
	p := decode(t, "main:\tret r25,#8\n\tnop\n")
	if _, ok := p.IndexOf(p.Org + 1); ok {
		t.Fatal("misaligned address resolved")
	}
	if _, ok := p.IndexOf(p.CodeEnd()); ok {
		t.Fatal("end address resolved")
	}
	if idx, ok := p.IndexOf(p.Org); !ok || idx != 0 {
		t.Fatalf("org resolved to %d,%v", idx, ok)
	}
}
