// Package cfg models control flow over decoded RISC I code with the
// machine's delayed-transfer semantics. It is the single implementation
// shared by the static analyzer (internal/lint), which walks the whole
// graph for reachability and call-depth facts, and the interpreter's block
// engine (internal/core), which only needs the straight-line spans the
// graph is built from.
//
// The model uses two nodes per code word i: N_i ("normal"), the
// instruction executing on its own, and S_i ("slot"), the same instruction
// executing as the delay slot of the transfer at i-1. The slot is always
// the next sequential word, so the pairing is unique and the whole graph
// fits in two flat arrays. Edges out of S_i are the *transfer's* edges —
// by the time the slot has executed, control moves to the transfer's
// target (or falls through, for an untaken conditional).
//
// Each node carries the minimum call depth at which an entry can reach it
// (CALL/CALLINT push a window, RET/RETINT pop one). Roots walked at
// DepthUnknown — labeled words without a static path — propagate
// "unknown".
package cfg

import (
	"math"

	"risc1/internal/isa"
)

// DepthUnknown marks a node reachable only from roots with no meaningful
// call depth.
const DepthUnknown = math.MaxInt

// Program is a decoded code segment: the words of the image up to the
// code/data split, with OK marking the ones that decode.
type Program struct {
	Org   uint32
	Insts []isa.Inst
	OK    []bool
}

// New wraps an already-decoded code segment. The slices are retained, not
// copied: callers that re-decode must build a fresh Program.
func New(org uint32, insts []isa.Inst, ok []bool) *Program {
	return &Program{Org: org, Insts: insts, OK: ok}
}

// N is the number of code words.
func (p *Program) N() int { return len(p.Insts) }

// CodeEnd is the first address past the code segment.
func (p *Program) CodeEnd() uint32 { return p.Org + uint32(4*len(p.Insts)) }

// AddrOf maps a word index to its address.
func (p *Program) AddrOf(idx int) uint32 { return p.Org + uint32(4*idx) }

// IndexOf maps an address to a word index; false for addresses outside or
// misaligned within the code segment.
func (p *Program) IndexOf(addr uint32) (int, bool) {
	if addr < p.Org || addr >= p.CodeEnd() || (addr-p.Org)%4 != 0 {
		return 0, false
	}
	return int((addr - p.Org) / 4), true
}

// Delayed reports whether in owns a delay slot. Every control transfer
// does except CALLINT, which the hardware takes immediately (it is the
// trap entry path).
func Delayed(in isa.Inst) bool {
	return in.Op.Transfers() && in.Op != isa.OpCALLINT
}

// TargetAddr resolves a transfer's statically-known destination: the
// PC-relative long formats always, the register forms only when they name
// the constant-address idiom (r0 base + immediate). in must be the decoded
// instruction at idx.
func (p *Program) TargetAddr(idx int, in isa.Inst) (uint32, bool) {
	switch in.Op {
	case isa.OpJMPR, isa.OpCALLR:
		return p.AddrOf(idx) + uint32(in.Imm19), true
	case isa.OpJMP, isa.OpCALL:
		if in.Rs1 == 0 && in.Imm {
			return uint32(in.Imm13), true
		}
	}
	return 0, false
}

// StaticTarget is TargetAddr projected onto a code-word index; it reports
// false for dynamic targets and targets outside the code segment.
func (p *Program) StaticTarget(idx int, in isa.Inst) (int, bool) {
	a, ok := p.TargetAddr(idx, in)
	if !ok {
		return 0, false
	}
	return p.IndexOf(a)
}

// Edge is one static successor of a node.
type Edge struct {
	To     int  // node id (idx*2, +1 for slot)
	Delta  int  // call-depth change along the edge
	Ret    bool // call-return edge: the callee may rewrite arg/result registers
	Callee bool // call-entry edge: crosses into another function
}

// Edges enumerates a node's static successors. Nodes past either end and
// undecodable words have none.
func (p *Program) Edges(node int) []Edge {
	idx, slot := node/2, node%2 == 1
	if idx >= len(p.Insts) || !p.OK[idx] {
		return nil
	}
	in := p.Insts[idx]
	if !slot {
		if Delayed(in) {
			delta := 0
			switch {
			case in.IsCall():
				delta = 1
			case in.IsReturn():
				delta = -1
			}
			return []Edge{{To: 2*(idx+1) + 1, Delta: delta}}
		}
		delta := 0
		if in.Op == isa.OpCALLINT {
			delta = 1
		}
		return []Edge{{To: 2 * (idx + 1), Delta: delta}}
	}

	// Slot of the transfer at idx-1: control now moves where the transfer
	// decided. The depth at this node already reflects the window shift.
	t := p.Insts[idx-1]
	var out []Edge
	switch {
	case t.Op == isa.OpJMP || t.Op == isa.OpJMPR:
		if tidx, known := p.StaticTarget(idx-1, t); known && t.Cond() != isa.CondNEV {
			out = append(out, Edge{To: 2 * tidx})
		}
		if t.Cond() != isa.CondALW { // conditional (or never-taken): may fall through
			out = append(out, Edge{To: 2 * (idx + 1)})
		}
	case t.IsCall():
		if tidx, known := p.StaticTarget(idx-1, t); known {
			out = append(out, Edge{To: 2 * tidx, Callee: true})
		}
		// Assume the callee returns: back to the word after the slot, in
		// the caller's window.
		out = append(out, Edge{To: 2 * (idx + 1), Delta: -1, Ret: true})
	case t.IsReturn():
		// Dynamic destination; no static successors.
	}
	return out
}

// Reach is the result of Walk: per-node reachability and minimum known
// call depth (DepthUnknown when no rooted path carries one).
type Reach struct {
	Reach    []bool
	MinDepth []int
}

// Walk computes reachability and minimum call depth over the node graph
// from the given roots: entry (a word index, or -1 for none) at depth 0,
// plus every word index in roots at unknown depth. Depths only ever
// decrease, so the worklist terminates.
func (p *Program) Walk(entry int, roots []int) Reach {
	n := len(p.Insts)
	r := Reach{
		Reach:    make([]bool, 2*n),
		MinDepth: make([]int, 2*n),
	}
	for i := range r.MinDepth {
		r.MinDepth[i] = DepthUnknown
	}
	var wl []int
	push := func(node, d int) {
		if node < 0 || node >= 2*n {
			return
		}
		changed := !r.Reach[node]
		r.Reach[node] = true
		if d != DepthUnknown && d < r.MinDepth[node] {
			r.MinDepth[node] = d
			changed = true
		}
		if changed {
			wl = append(wl, node)
		}
	}
	if entry >= 0 {
		push(2*entry, 0)
	}
	for _, idx := range roots {
		push(2*idx, DepthUnknown)
	}
	for len(wl) > 0 {
		node := wl[len(wl)-1]
		wl = wl[:len(wl)-1]
		d := r.MinDepth[node]
		for _, e := range p.Edges(node) {
			nd := DepthUnknown
			if d != DepthUnknown {
				nd = d + e.Delta
				if nd < 0 {
					nd = 0
				}
			}
			push(e.To, nd)
		}
	}
	return r
}

// Span is a straight-line execution block: Body sequential non-transfer
// words starting at Start, optionally terminated by a delayed transfer and
// its delay slot (Term). A Span never extends past an undecodable word, a
// word the caller's policy rejects, or maxWords total words.
type Span struct {
	Start int
	Body  int
	Term  bool
}

// Words is the number of code words the span covers (Body, plus the
// transfer and its slot when terminated).
func (s Span) Words() int {
	if s.Term {
		return s.Body + 2
	}
	return s.Body
}

// BlockSpan scans the block starting at word start. straight decides which
// non-control instructions may occupy the body or the delay slot; a
// control word terminates the span — with the transfer and slot included
// (Term) only when the transfer is delayed, the slot word decodes, and the
// slot itself is a straight instruction. CALLINT, slotless tails, and
// transfers whose slot is another control word end the span before the
// transfer so the caller can handle those words one at a time.
func (p *Program) BlockSpan(start, maxWords int, straight func(isa.Inst) bool) Span {
	s := Span{Start: start}
	for i := start; i < len(p.Insts) && s.Body < maxWords-2; i++ {
		if !p.OK[i] {
			return s
		}
		in := p.Insts[i]
		if in.Op.Cat() == isa.CatControl {
			if Delayed(in) && i+1 < len(p.Insts) && p.OK[i+1] &&
				p.Insts[i+1].Op.Cat() != isa.CatControl && straight(p.Insts[i+1]) {
				s.Term = true
			}
			return s
		}
		if !straight(in) {
			return s
		}
		s.Body++
	}
	return s
}
