package cc

import "risc1/internal/isa"

// Statement generation for the RISC back end.

func (g *riscGen) genBlock(b *Block) error {
	for _, s := range b.Stmts {
		if err := g.genStmt(s); err != nil {
			return err
		}
	}
	return nil
}

func (g *riscGen) genStmt(s Stmt) error {
	if ln := stmtLine(s); ln > 0 {
		g.curLine = ln
	}
	switch st := s.(type) {
	case *Block:
		return g.genBlock(st)
	case *DeclStmt:
		if st.Init == nil {
			return nil
		}
		return g.genStore(&VarRef{exprBase: exprBase{st.Var.Type}, Decl: st.Var}, st.Init)
	case *ExprStmt:
		t, err := g.genExpr(st.X)
		if err != nil {
			return err
		}
		if t >= 0 {
			g.pop(t)
		}
		return nil
	case *IfStmt:
		elseL := g.newLabel("else")
		endL := g.newLabel("endif")
		target := endL
		if st.Else != nil {
			target = elseL
		}
		if err := g.genBranch(st.Cond, target, false); err != nil {
			return err
		}
		if err := g.genStmt(st.Then); err != nil {
			return err
		}
		if st.Else != nil {
			g.curLine = st.Line
			g.emit("b %s", endL)
			g.emit("nop")
			g.label(elseL)
			if err := g.genStmt(st.Else); err != nil {
				return err
			}
		}
		g.label(endL)
		return nil
	case *WhileStmt:
		top := g.newLabel("while")
		end := g.newLabel("endwhile")
		g.label(top)
		if err := g.genBranch(st.Cond, end, false); err != nil {
			return err
		}
		g.breakL = append(g.breakL, end)
		g.contL = append(g.contL, top)
		err := g.genStmt(st.Body)
		g.breakL = g.breakL[:len(g.breakL)-1]
		g.contL = g.contL[:len(g.contL)-1]
		if err != nil {
			return err
		}
		g.curLine = st.Line
		g.emit("b %s", top)
		g.emit("nop")
		g.label(end)
		return nil
	case *ForStmt:
		if st.Init != nil {
			if err := g.genStmt(st.Init); err != nil {
				return err
			}
		}
		top := g.newLabel("for")
		post := g.newLabel("forpost")
		end := g.newLabel("endfor")
		g.label(top)
		if st.Cond != nil {
			if err := g.genBranch(st.Cond, end, false); err != nil {
				return err
			}
		}
		g.breakL = append(g.breakL, end)
		g.contL = append(g.contL, post)
		err := g.genStmt(st.Body)
		g.breakL = g.breakL[:len(g.breakL)-1]
		g.contL = g.contL[:len(g.contL)-1]
		if err != nil {
			return err
		}
		g.label(post)
		g.curLine = st.Line
		if st.Post != nil {
			t, err := g.genExpr(st.Post)
			if err != nil {
				return err
			}
			if t >= 0 {
				g.pop(t)
			}
		}
		g.emit("b %s", top)
		g.emit("nop")
		g.label(end)
		return nil
	case *ReturnStmt:
		if st.X != nil {
			r, t, err := g.operandReg(st.X)
			if err != nil {
				return err
			}
			if r != g.conv.retOut {
				g.emit("mov r%d,r%d", r, g.conv.retOut)
			}
			if t >= 0 {
				g.pop(t)
			}
		}
		g.emit("b .Lret_%s", g.fn.Name)
		g.emit("nop")
		return nil
	case *BreakStmt:
		g.emit("b %s", g.breakL[len(g.breakL)-1])
		g.emit("nop")
		return nil
	case *ContinueStmt:
		g.emit("b %s", g.contL[len(g.contL)-1])
		g.emit("nop")
		return nil
	}
	return errorAt(0, "unknown statement %T", s)
}

// stmtLine is the source line a statement began on, 0 when unrecorded.
func stmtLine(s Stmt) int {
	switch st := s.(type) {
	case *DeclStmt:
		return st.Var.Line
	case *ExprStmt:
		return st.Line
	case *IfStmt:
		return st.Line
	case *WhileStmt:
		return st.Line
	case *ForStmt:
		return st.Line
	case *ReturnStmt:
		return st.Line
	case *BreakStmt:
		return st.Line
	case *ContinueStmt:
		return st.Line
	}
	return 0
}

// ---------- conditions ----------

// genBranch emits a branch to label taken when e's truth equals whenTrue.
func (g *riscGen) genBranch(e Expr, label string, whenTrue bool) error {
	switch x := e.(type) {
	case *IntLit:
		truth := x.Val != 0
		if truth == whenTrue {
			g.emit("b %s", label)
			g.emit("nop")
		}
		return nil
	case *Unary:
		if x.Op == "!" {
			return g.genBranch(x.X, label, !whenTrue)
		}
	case *Logic:
		if x.Op == "&&" {
			if whenTrue {
				skip := g.newLabel("and")
				if err := g.genBranch(x.X, skip, false); err != nil {
					return err
				}
				if err := g.genBranch(x.Y, label, true); err != nil {
					return err
				}
				g.label(skip)
				return nil
			}
			if err := g.genBranch(x.X, label, false); err != nil {
				return err
			}
			return g.genBranch(x.Y, label, false)
		}
		// ||
		if whenTrue {
			if err := g.genBranch(x.X, label, true); err != nil {
				return err
			}
			return g.genBranch(x.Y, label, true)
		}
		skip := g.newLabel("or")
		if err := g.genBranch(x.X, skip, true); err != nil {
			return err
		}
		if err := g.genBranch(x.Y, label, false); err != nil {
			return err
		}
		g.label(skip)
		return nil
	case *Binary:
		if cond, ok := comparisonCond(x); ok {
			if err := g.genCompare(x); err != nil {
				return err
			}
			if !whenTrue {
				cond = cond.Negate()
			}
			g.emit("b%s %s", cond, label)
			g.emit("nop")
			return nil
		}
	}
	// General scalar truth test.
	r, t, err := g.operandReg(e)
	if err != nil {
		return err
	}
	g.emit("cmp r%d,#0", r)
	if t >= 0 {
		g.pop(t)
	}
	if whenTrue {
		g.emit("bne %s", label)
	} else {
		g.emit("beq %s", label)
	}
	g.emit("nop")
	return nil
}

// comparisonCond maps a comparison operator to the branch condition that is
// true when the comparison holds, choosing unsigned conditions for pointer
// comparisons.
func comparisonCond(b *Binary) (isa.Cond, bool) {
	unsigned := b.X.TypeOf().Kind == TypePtr || b.Y.TypeOf().Kind == TypePtr
	switch b.Op {
	case "==":
		return isa.CondEQ, true
	case "!=":
		return isa.CondNE, true
	case "<":
		if unsigned {
			return isa.CondLO, true
		}
		return isa.CondLT, true
	case "<=":
		if unsigned {
			return isa.CondLOS, true
		}
		return isa.CondLE, true
	case ">":
		if unsigned {
			return isa.CondHI, true
		}
		return isa.CondGT, true
	case ">=":
		if unsigned {
			return isa.CondHIS, true
		}
		return isa.CondGE, true
	}
	return 0, false
}

// genCompare emits `cmp x,s2` for a comparison node.
func (g *riscGen) genCompare(b *Binary) error {
	rx, tx, err := g.operandReg(b.X)
	if err != nil {
		return err
	}
	if tx >= 0 {
		g.pin(rx)
	}
	s2, ty, err := g.genS2(b.Y)
	if err != nil {
		return err
	}
	if tx >= 0 {
		g.unpin(g.reg(tx))
		rx = g.reg(tx) // re-query: evaluating Y may have spilled it
	}
	g.emit("cmp r%d,%s", rx, s2)
	if ty >= 0 {
		g.pop(ty)
	}
	if tx >= 0 {
		g.pop(tx)
	}
	return nil
}

// operandReg returns a register holding e's value. Register-resident locals
// and parameters are used in place — no copy — so the register is only
// valid until the next assignment or statement boundary; temps (tref >= 0)
// must be popped by the caller.
func (g *riscGen) operandReg(e Expr) (uint8, tref, error) {
	if v, ok := e.(*VarRef); ok {
		// Chars are stored pre-truncated, so their register is the value.
		if r, inReg := g.localReg[v.Decl]; inReg {
			return r, -1, nil
		}
	}
	t, err := g.genExpr(e)
	if err != nil {
		return 0, -1, err
	}
	return g.reg(t), t, nil
}

// genS2 produces the second ALU operand: a small literal becomes an
// immediate, a register-resident variable is used directly; anything else
// is evaluated into a temporary (returned so the caller can pop it; -1 when
// no temp was needed).
func (g *riscGen) genS2(e Expr) (string, tref, error) {
	if lit, ok := e.(*IntLit); ok &&
		lit.Val >= isa.MinImm13 && lit.Val <= isa.MaxImm13 {
		return fmt2("#%d", lit.Val), -1, nil
	}
	if v, ok := e.(*VarRef); ok {
		if r, inReg := g.localReg[v.Decl]; inReg {
			return fmt2("r%d", r), -1, nil
		}
	}
	t, err := g.genExpr(e)
	if err != nil {
		return "", -1, err
	}
	return fmt2("r%d", g.reg(t)), t, nil
}
