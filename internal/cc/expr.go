package cc

import (
	"fmt"
	"strings"
)

// Expression parsing with integrated type checking. Precedence follows C.

func (p *parser) expr() (Expr, error) { return p.assignExpr() }

func (p *parser) assignExpr() (Expr, error) {
	lhs, err := p.condExpr()
	if err != nil {
		return nil, err
	}
	op := p.cur().text
	switch op {
	case "=", "+=", "-=", "*=", "/=", "%=", "&=", "|=", "^=", "<<=", ">>=":
		if p.cur().kind != tokPunct {
			return lhs, nil
		}
		line := p.line()
		p.pos++
		if !isLvalue(lhs) {
			return nil, &CompileError{Line: line, Msg: "assignment to non-lvalue"}
		}
		rhs, err := p.assignExpr()
		if err != nil {
			return nil, err
		}
		if op != "=" {
			// Compound assignment desugars to x = x op y. The lvalue
			// is shared between the two positions; Cm requires it to
			// be side-effect free (checked here).
			if hasSideEffects(lhs) {
				return nil, &CompileError{Line: line,
					Msg: "compound assignment needs a side-effect-free left side"}
			}
			rhs, err = p.binary(strings.TrimSuffix(op, "="), lhs, rhs, line)
			if err != nil {
				return nil, err
			}
		}
		rhs, err = p.coerce(rhs, lhs.TypeOf())
		if err != nil {
			return nil, err
		}
		return &Assign{exprBase: exprBase{lhs.TypeOf()}, X: lhs, Y: rhs}, nil
	}
	return lhs, nil
}

func (p *parser) condExpr() (Expr, error) {
	c, err := p.binaryLevel(0)
	if err != nil {
		return nil, err
	}
	if !p.accept("?") {
		return c, nil
	}
	c = p.rvalue(c)
	a, err := p.expr()
	if err != nil {
		return nil, err
	}
	if err := p.expect(":"); err != nil {
		return nil, err
	}
	b, err := p.condExpr()
	if err != nil {
		return nil, err
	}
	a, b = p.rvalue(a), p.rvalue(b)
	t := a.TypeOf()
	if t.Kind == TypeChar {
		t = intType
	}
	return &Cond{exprBase: exprBase{t}, C: c, A: a, B: b}, nil
}

// binary operator precedence levels, loosest first.
var binLevels = [][]string{
	{"||"},
	{"&&"},
	{"|"},
	{"^"},
	{"&"},
	{"==", "!="},
	{"<", "<=", ">", ">="},
	{"<<", ">>"},
	{"+", "-"},
	{"*", "/", "%"},
}

func (p *parser) binaryLevel(level int) (Expr, error) {
	if level == len(binLevels) {
		return p.unary()
	}
	x, err := p.binaryLevel(level + 1)
	if err != nil {
		return nil, err
	}
	for {
		op := ""
		for _, cand := range binLevels[level] {
			if p.cur().kind == tokPunct && p.cur().text == cand {
				op = cand
				break
			}
		}
		if op == "" {
			return x, nil
		}
		line := p.line()
		p.pos++
		y, err := p.binaryLevel(level + 1)
		if err != nil {
			return nil, err
		}
		if op == "&&" || op == "||" {
			x = &Logic{exprBase: exprBase{intType},
				Op: op, X: p.rvalue(x), Y: p.rvalue(y)}
			continue
		}
		x, err = p.binary(op, x, y, line)
		if err != nil {
			return nil, err
		}
	}
}

// binary type-checks one binary operation and builds the node.
func (p *parser) binary(op string, x, y Expr, line int) (Expr, error) {
	x, y = p.rvalue(x), p.rvalue(y)
	tx, ty := x.TypeOf(), y.TypeOf()
	fail := func(msg string) (Expr, error) {
		return nil, &CompileError{Line: line,
			Msg: "operator " + op + ": " + msg + " (" + tx.String() + ", " + ty.String() + ")"}
	}
	node := func(t *Type, scale int) Expr {
		return &Binary{exprBase: exprBase{t}, Op: op, X: x, Y: y, Scale: scale}
	}
	isArith := func(t *Type) bool { return t.Kind == TypeInt || t.Kind == TypeChar }

	switch op {
	case "+":
		switch {
		case isArith(tx) && isArith(ty):
			return node(intType, 0), nil
		case tx.Kind == TypePtr && isArith(ty):
			return node(tx, tx.Elem.Size()), nil
		case isArith(tx) && ty.Kind == TypePtr:
			x, y = y, x
			tx = x.TypeOf()
			return node(tx, tx.Elem.Size()), nil
		}
		return fail("bad operand types")
	case "-":
		switch {
		case isArith(tx) && isArith(ty):
			return node(intType, 0), nil
		case tx.Kind == TypePtr && isArith(ty):
			return node(tx, tx.Elem.Size()), nil
		case tx.Kind == TypePtr && ty.Kind == TypePtr && equalTypes(tx, ty):
			// Pointer difference: negative Scale asks codegen to
			// divide the byte difference by the element size.
			return node(intType, -tx.Elem.Size()), nil
		}
		return fail("bad operand types")
	case "==", "!=", "<", "<=", ">", ">=":
		ok := isArith(tx) && isArith(ty) ||
			tx.Kind == TypePtr && ty.Kind == TypePtr && equalTypes(tx, ty) ||
			tx.Kind == TypePtr && isZero(y) || ty.Kind == TypePtr && isZero(x)
		if !ok {
			return fail("cannot compare")
		}
		// Pointer comparisons are unsigned; sema records that by type.
		return node(intType, 0), nil
	default: // * / % << >> & ^ |
		if !isArith(tx) || !isArith(ty) {
			return fail("needs integer operands")
		}
		if op == "*" || op == "/" || op == "%" {
			// RISC I multiplies and divides in software: these lower
			// to runtime calls, so the function is not a leaf.
			if p.fn != nil {
				p.fn.hasCalls = true
				if p.fn.MaxArgs < 2 {
					p.fn.MaxArgs = 2
				}
			}
		}
		return node(intType, 0), nil
	}
}

func (p *parser) unary() (Expr, error) {
	line := p.line()
	switch {
	case p.accept("-"):
		x, err := p.unary()
		if err != nil {
			return nil, err
		}
		x = p.rvalue(x)
		if x.TypeOf().Kind == TypePtr {
			return nil, &CompileError{Line: line, Msg: "cannot negate a pointer"}
		}
		if lit, ok := x.(*IntLit); ok {
			return &IntLit{exprBase: exprBase{intType}, Val: -lit.Val}, nil
		}
		return &Unary{exprBase: exprBase{intType}, Op: "-", X: x}, nil
	case p.accept("!"):
		x, err := p.unary()
		if err != nil {
			return nil, err
		}
		return &Unary{exprBase: exprBase{intType}, Op: "!", X: p.rvalue(x)}, nil
	case p.accept("~"):
		x, err := p.unary()
		if err != nil {
			return nil, err
		}
		x = p.rvalue(x)
		if x.TypeOf().Kind == TypePtr {
			return nil, &CompileError{Line: line, Msg: "cannot complement a pointer"}
		}
		return &Unary{exprBase: exprBase{intType}, Op: "~", X: x}, nil
	case p.accept("*"):
		x, err := p.unary()
		if err != nil {
			return nil, err
		}
		x = p.rvalue(x)
		if x.TypeOf().Kind != TypePtr {
			return nil, &CompileError{Line: line, Msg: "cannot dereference a " + x.TypeOf().String()}
		}
		return &Unary{exprBase: exprBase{x.TypeOf().Elem}, Op: "*", X: x}, nil
	case p.accept("&"):
		x, err := p.unary()
		if err != nil {
			return nil, err
		}
		switch v := x.(type) {
		case *VarRef:
			v.Decl.AddrTaken = true
			if v.Decl.Type.Kind == TypeArray {
				return nil, &CompileError{Line: line,
					Msg: "&array is not supported; the array name is already its address"}
			}
			return &Unary{exprBase: exprBase{ptrTo(v.Decl.Type)}, Op: "&", X: x}, nil
		case *Index, *Unary:
			if u, ok := x.(*Unary); ok && u.Op != "*" {
				return nil, &CompileError{Line: line, Msg: "cannot take the address of this expression"}
			}
			return &Unary{exprBase: exprBase{ptrTo(x.TypeOf())}, Op: "&", X: x}, nil
		}
		return nil, &CompileError{Line: line, Msg: "cannot take the address of this expression"}
	case p.accept("++"), p.is("--"):
		op := "--"
		if p.toks[p.pos-1].text == "++" {
			op = "++"
		} else {
			p.pos++
		}
		x, err := p.unary()
		if err != nil {
			return nil, err
		}
		return p.incDec(x, op, false, line)
	}
	return p.postfix()
}

func (p *parser) incDec(x Expr, op string, post bool, line int) (Expr, error) {
	if !isLvalue(x) || !x.TypeOf().IsScalar() {
		return nil, &CompileError{Line: line, Msg: op + " needs a scalar lvalue"}
	}
	delta := 1
	if x.TypeOf().Kind == TypePtr {
		delta = x.TypeOf().Elem.Size()
	}
	if op == "--" {
		delta = -delta
	}
	t := x.TypeOf()
	if t.Kind == TypeChar {
		t = intType
	}
	return &IncDec{exprBase: exprBase{t}, X: x, Delta: delta, Post: post}, nil
}

func (p *parser) postfix() (Expr, error) {
	x, err := p.primary()
	if err != nil {
		return nil, err
	}
	for {
		line := p.line()
		switch {
		case p.accept("["):
			idx, err := p.expr()
			if err != nil {
				return nil, err
			}
			if err := p.expect("]"); err != nil {
				return nil, err
			}
			base := p.rvalue(x)
			if base.TypeOf().Kind != TypePtr {
				return nil, &CompileError{Line: line,
					Msg: "cannot index a " + base.TypeOf().String()}
			}
			idx = p.rvalue(idx)
			if idx.TypeOf().Kind == TypePtr {
				return nil, &CompileError{Line: line, Msg: "index must be an integer"}
			}
			x = &Index{exprBase: exprBase{base.TypeOf().Elem}, Arr: base, Idx: idx}
		case p.accept("++"):
			x, err = p.incDec(x, "++", true, line)
			if err != nil {
				return nil, err
			}
		case p.accept("--"):
			x, err = p.incDec(x, "--", true, line)
			if err != nil {
				return nil, err
			}
		default:
			return x, nil
		}
	}
}

func (p *parser) primary() (Expr, error) {
	t := p.cur()
	switch {
	case t.kind == tokNumber || t.kind == tokChar:
		p.pos++
		return &IntLit{exprBase: exprBase{intType}, Val: t.num}, nil
	case t.kind == tokString:
		p.pos++
		idx, ok := p.strings[t.text]
		if !ok {
			idx = len(p.prog.Strings)
			p.strings[t.text] = idx
			p.prog.Strings = append(p.prog.Strings, t.text)
		}
		return &StrLit{exprBase: exprBase{ptrTo(charType)}, Index: idx}, nil
	case p.accept("("):
		x, err := p.expr()
		if err != nil {
			return nil, err
		}
		return x, p.expect(")")
	case t.kind == tokIdent:
		p.pos++
		if p.is("(") {
			return p.call(t.text, t.line)
		}
		v := p.lookupVar(t.text)
		if v == nil {
			return nil, &CompileError{Line: t.line, Msg: "undefined variable " + t.text}
		}
		typ := v.Type
		return &VarRef{exprBase: exprBase{typ}, Decl: v}, nil
	}
	return nil, p.errf("unexpected %s in expression", t)
}

func (p *parser) call(name string, line int) (Expr, error) {
	if name == "spawn" {
		return p.spawnCall(line)
	}
	if err := p.expect("("); err != nil {
		return nil, err
	}
	var args []Expr
	if !p.accept(")") {
		for {
			a, err := p.assignExpr()
			if err != nil {
				return nil, err
			}
			args = append(args, a)
			if p.accept(")") {
				break
			}
			if err := p.expect(","); err != nil {
				return nil, err
			}
		}
	}
	p.fn.hasCalls = true
	if len(args) > p.fn.MaxArgs {
		p.fn.MaxArgs = len(args)
	}

	switch name {
	case "putint", "putchar", "join", "lock", "unlock":
		// One-scalar-argument builtins: console output, and the SMP
		// runtime surface (join a spawned worker, take/release one of the
		// hardware test-and-set locks).
		if len(args) != 1 {
			return nil, &CompileError{Line: line, Msg: name + " takes one argument"}
		}
		a := p.rvalue(args[0])
		if !a.TypeOf().IsScalar() {
			return nil, &CompileError{Line: line, Msg: name + " needs a scalar"}
		}
		return &Call{exprBase: exprBase{voidType}, Builtin: name,
			Args: []Expr{a}, Line: line}, nil
	case "coreid", "ncores":
		// SMP identity builtins: which core am I, how many are there.
		if len(args) != 0 {
			return nil, &CompileError{Line: line, Msg: name + " takes no arguments"}
		}
		return &Call{exprBase: exprBase{intType}, Builtin: name, Line: line}, nil
	}

	fn, ok := p.funcs[name]
	if !ok {
		return nil, &CompileError{Line: line, Msg: "undefined function " + name}
	}
	if len(args) != len(fn.Params) {
		return nil, &CompileError{Line: line, Msg: fmt.Sprintf(
			"%s takes %d arguments, got %d", name, len(fn.Params), len(args))}
	}
	for i := range args {
		a, err := p.coerce(p.rvalue(args[i]), fn.Params[i].Type)
		if err != nil {
			return nil, err
		}
		args[i] = a
	}
	return &Call{exprBase: exprBase{fn.Ret}, Func: fn, Args: args, Line: line}, nil
}

// spawnCall parses spawn(fn, arg): unlike every other call, the first
// argument is a function name — the language has no function pointers — so
// it resolves against the declared functions instead of parsing as a value.
// spawn yields the worker's join handle (int), or -1 when no core was free
// and the runtime ran fn inline on the calling core.
func (p *parser) spawnCall(line int) (Expr, error) {
	if err := p.expect("("); err != nil {
		return nil, err
	}
	t := p.next()
	if t.kind != tokIdent {
		return nil, &CompileError{Line: line, Msg: "spawn needs a function name"}
	}
	fn, ok := p.funcs[t.text]
	if !ok {
		return nil, &CompileError{Line: line, Msg: "spawn: undefined function " + t.text}
	}
	if len(fn.Params) != 1 || !fn.Params[0].Type.IsScalar() {
		return nil, &CompileError{Line: line,
			Msg: "spawn: " + t.text + " must take one scalar argument"}
	}
	if err := p.expect(","); err != nil {
		return nil, err
	}
	a, err := p.assignExpr()
	if err != nil {
		return nil, err
	}
	a = p.rvalue(a)
	if !a.TypeOf().IsScalar() {
		return nil, &CompileError{Line: line, Msg: "spawn needs a scalar argument"}
	}
	if err := p.expect(")"); err != nil {
		return nil, err
	}
	p.fn.hasCalls = true
	if p.fn.MaxArgs < 2 {
		p.fn.MaxArgs = 2 // the runtime call __spawn(fn, arg) takes two
	}
	return &Call{exprBase: exprBase{intType}, Builtin: "spawn", Func: fn,
		Args: []Expr{a}, Line: line}, nil
}

// ---------- typing helpers ----------

// rvalue converts an expression to value context: arrays decay to pointers
// to their first element.
func (p *parser) rvalue(e Expr) Expr {
	if e.TypeOf().Kind == TypeArray {
		return &Unary{exprBase: exprBase{ptrTo(e.TypeOf().Elem)}, Op: "decay", X: e}
	}
	return e
}

// coerce checks that an rvalue is assignable to type want.
func (p *parser) coerce(e Expr, want *Type) (Expr, error) {
	e = p.rvalue(e)
	have := e.TypeOf()
	ok := false
	switch {
	case want.Kind == TypeInt || want.Kind == TypeChar:
		ok = have.Kind == TypeInt || have.Kind == TypeChar
	case want.Kind == TypePtr:
		ok = have.Kind == TypePtr && equalTypes(have, want) || isZero(e)
	}
	if !ok {
		return nil, p.errf("cannot use %s as %s", have, want)
	}
	return e, nil
}

func isLvalue(e Expr) bool {
	switch v := e.(type) {
	case *VarRef:
		return v.Decl.Type.Kind != TypeArray
	case *Index:
		return true
	case *Unary:
		return v.Op == "*"
	}
	return false
}

func isZero(e Expr) bool {
	lit, ok := e.(*IntLit)
	return ok && lit.Val == 0
}

// hasSideEffects reports whether evaluating e twice would misbehave.
func hasSideEffects(e Expr) bool {
	switch v := e.(type) {
	case nil:
		return false
	case *IntLit, *StrLit, *VarRef:
		return false
	case *Unary:
		return hasSideEffects(v.X)
	case *Binary:
		return hasSideEffects(v.X) || hasSideEffects(v.Y)
	case *Logic:
		return hasSideEffects(v.X) || hasSideEffects(v.Y)
	case *Index:
		return hasSideEffects(v.Arr) || hasSideEffects(v.Idx)
	case *Cond:
		return hasSideEffects(v.C) || hasSideEffects(v.A) || hasSideEffects(v.B)
	}
	return true // calls, assignments, inc/dec
}
