package cc_test

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"
)

// TestDifferentialRandomPrograms generates random structured Cm programs —
// globals, arrays, helper functions, bounded loops, conditionals — and
// requires all three targets to print identical output. Unlike the
// expression test this exercises control flow, memory and calls together.
func TestDifferentialRandomPrograms(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	for trial := 0; trial < 20; trial++ {
		src := randomProgram(r)
		outputs := map[string]bool{}
		var first string
		for _, target := range allTargets {
			got := runTarget(t, src, target)
			outputs[got] = true
			first = got
		}
		if len(outputs) != 1 {
			t.Fatalf("trial %d: targets disagree: %v\nprogram:\n%s",
				trial, outputs, src)
		}
		if first == "" {
			t.Fatalf("trial %d: program printed nothing:\n%s", trial, src)
		}
	}
}

// randomProgram builds a terminating Cm program with deterministic output.
type progGen struct {
	r        *rand.Rand
	b        strings.Builder
	locals   []string // assignable variables
	readable []string // additionally readable (loop iterators)
	depth    int
}

func randomProgram(r *rand.Rand) string {
	g := &progGen{r: r}
	g.b.WriteString("int g0; int g1; int arr[16];\n")
	g.b.WriteString("int helper(int a, int b) { return a * 3 - b + g0; }\n")
	g.b.WriteString("int main() {\n")
	g.b.WriteString("\tint i; int x; int y;\n\tx = 1; y = 2; g0 = 3; g1 = 4;\n")
	g.b.WriteString("\tfor (i = 0; i < 16; i++) arr[i] = i * i - 5;\n")
	g.locals = []string{"x", "y", "g0", "g1"}
	for s := 0; s < 6; s++ {
		g.stmt(1)
	}
	g.b.WriteString("\tputint(x); putchar(' '); putint(y); putchar(' ');\n")
	g.b.WriteString("\tputint(g0 + g1);\n")
	g.b.WriteString("\tfor (i = 0; i < 16; i++) { putchar(' '); putint(arr[i]); }\n")
	g.b.WriteString("\treturn 0;\n}\n")
	return g.b.String()
}

// v picks an assignable variable; rv picks any readable one.
func (g *progGen) v() string { return g.locals[g.r.Intn(len(g.locals))] }

func (g *progGen) rv() string {
	all := append(append([]string{}, g.locals...), g.readable...)
	return all[g.r.Intn(len(all))]
}

// expr builds a side-effect-free expression over the tracked variables.
func (g *progGen) expr(depth int) string {
	if depth == 0 || g.r.Intn(3) == 0 {
		switch g.r.Intn(3) {
		case 0:
			return fmt.Sprintf("%d", g.r.Intn(41)-20)
		case 1:
			return g.rv()
		default:
			return fmt.Sprintf("arr[%d]", g.r.Intn(16))
		}
	}
	a, b := g.expr(depth-1), g.expr(depth-1)
	switch g.r.Intn(8) {
	case 0:
		return fmt.Sprintf("(%s + %s)", a, b)
	case 1:
		return fmt.Sprintf("(%s - %s)", a, b)
	case 2:
		return fmt.Sprintf("(%s * %s)", a, b)
	case 3:
		// Division by a guaranteed-nonzero value.
		return fmt.Sprintf("(%s / (1 + ((%s) & 7)))", a, b)
	case 4:
		return fmt.Sprintf("(%s %% (2 + ((%s) & 3)))", a, b)
	case 5:
		return fmt.Sprintf("(%s ^ %s)", a, b)
	case 6:
		return fmt.Sprintf("(%s < %s)", a, b)
	default:
		return fmt.Sprintf("helper(%s, %s)", a, b)
	}
}

func (g *progGen) stmt(indent int) {
	pad := strings.Repeat("\t", indent)
	if g.depth > 2 {
		fmt.Fprintf(&g.b, "%s%s = %s;\n", pad, g.v(), g.expr(2))
		return
	}
	switch g.r.Intn(5) {
	case 0: // assignment
		fmt.Fprintf(&g.b, "%s%s = %s;\n", pad, g.v(), g.expr(2))
	case 1: // array store with a safe index
		fmt.Fprintf(&g.b, "%sarr[(%s) & 15] = %s;\n", pad, g.expr(1), g.expr(2))
	case 2: // bounded loop over a fresh iterator (readable, never assigned)
		it := fmt.Sprintf("t%d", g.r.Intn(1000000))
		fmt.Fprintf(&g.b, "%sfor (int %s = 0; %s < %d; %s++) {\n",
			pad, it, it, 2+g.r.Intn(6), it)
		g.depth++
		g.readable = append(g.readable, it)
		g.stmt(indent + 1)
		g.readable = g.readable[:len(g.readable)-1]
		g.depth--
		fmt.Fprintf(&g.b, "%s}\n", pad)
	case 3: // conditional
		fmt.Fprintf(&g.b, "%sif (%s) {\n", pad, g.expr(2))
		g.depth++
		g.stmt(indent + 1)
		g.depth--
		fmt.Fprintf(&g.b, "%s} else {\n", pad)
		g.depth++
		g.stmt(indent + 1)
		g.depth--
		fmt.Fprintf(&g.b, "%s}\n", pad)
	default: // compound update
		ops := []string{"+=", "-=", "^=", "|="}
		fmt.Fprintf(&g.b, "%s%s %s %s;\n", pad, g.v(), ops[g.r.Intn(len(ops))], g.expr(2))
	}
}
