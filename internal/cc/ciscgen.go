package cc

import (
	"fmt"
	"sort"
	"strings"
)

// GenerateCISC compiles a checked program to CX assembly. The generator
// leans on everything that makes a CISC dense: memory operands on ALU
// instructions, indexed addressing for arrays, memory-to-memory moves,
// hardware multiply/divide, and CALLS frames with register-save masks.
func GenerateCISC(prog *Program) (string, error) {
	g := &ciscGen{prog: prog}
	return g.generate()
}

type ciscGen struct {
	prog *Program
	out  strings.Builder

	fn        *FuncDecl
	body      []string
	localReg  map[*VarDecl]int // r2..r11
	localOff  map[*VarDecl]int // frameAlloc offset (block below fp)
	memBytes  int
	usedRegs  map[int]bool
	temps     []rtemp
	freeRegs  []int // r0, r1
	freeSlots []int
	spillMax  int
	labelN    int
	breakL    []string
	contL     []string
}

func (g *ciscGen) emit(format string, args ...any) {
	g.body = append(g.body, "\t"+fmt.Sprintf(format, args...))
}

func (g *ciscGen) label(l string) { g.body = append(g.body, l+":") }

func (g *ciscGen) newLabel(hint string) string {
	g.labelN++
	return fmt.Sprintf("L%s_%s%d", g.fn.Name, hint, g.labelN)
}

func (g *ciscGen) generate() (string, error) {
	g.out.WriteString("; Cm compiler output, target: CX (CISC)\n\t.entry main\n")
	for _, fn := range g.prog.Funcs {
		if err := g.genFunc(fn); err != nil {
			return "", err
		}
	}
	g.genData()
	return g.out.String(), nil
}

// frame spec helpers: scalar block allocated at off occupies
// [fp-off-4, fp-off); its operand is -(off+4)(fp).
func scalarSpec(off int) string { return fmt.Sprintf("-%d(fp)", off+4) }

func (g *ciscGen) slotSpec(slot int) string { return scalarSpec(g.memBytes + 4*slot) }

func (g *ciscGen) genFunc(fn *FuncDecl) error {
	g.fn = fn
	g.body = nil
	g.localReg = map[*VarDecl]int{}
	g.localOff = map[*VarDecl]int{}
	g.memBytes = 0
	g.usedRegs = map[int]bool{}
	g.temps = nil
	g.freeRegs = []int{1, 0}
	g.freeSlots = nil
	g.spillMax = 0
	g.labelN = 0
	g.breakL, g.contL = nil, nil

	next := 2
	takeReg := func() (int, bool) {
		if next <= 11 {
			next++
			g.usedRegs[next-1] = true
			return next - 1, true
		}
		return 0, false
	}
	frameAlloc := func(size int) int {
		off := g.memBytes
		g.memBytes += (size + 3) &^ 3
		return off
	}

	for _, p := range fn.Params {
		if p.AddrTaken {
			g.localOff[p] = frameAlloc(4)
			continue
		}
		if r, ok := takeReg(); ok {
			g.localReg[p] = r
		} else {
			g.localOff[p] = frameAlloc(4)
		}
	}
	for _, v := range fn.Locals {
		if v.AddrTaken || !v.Type.IsScalar() {
			g.localOff[v] = frameAlloc(v.Type.Size())
			continue
		}
		if r, ok := takeReg(); ok {
			g.localReg[v] = r
		} else {
			g.localOff[v] = frameAlloc(4)
		}
	}

	retL := fmt.Sprintf("Lret_%s", fn.Name)
	if err := g.genBlock(fn.Body); err != nil {
		return err
	}
	g.label(retL)

	// Prologue with the final frame size and register mask.
	fmt.Fprintf(&g.out, "\n; ---- %s ----\n%s:", fn.Name, fn.Name)
	var masked []string
	var regs []int
	for r := range g.usedRegs {
		regs = append(regs, r)
	}
	sort.Ints(regs)
	for _, r := range regs {
		masked = append(masked, fmt.Sprintf("r%d", r))
	}
	fmt.Fprintf(&g.out, "\t.mask %s\n", strings.Join(masked, ", "))
	frame := g.memBytes + 4*g.spillMax
	if frame > 0 {
		fmt.Fprintf(&g.out, "\tsubl2 #%d, sp\n", frame)
	}
	for i, p := range fn.Params {
		src := fmt.Sprintf("%d(ap)", 4+4*i)
		if r, ok := g.localReg[p]; ok {
			fmt.Fprintf(&g.out, "\tmovl %s, r%d\n", src, r)
		} else {
			fmt.Fprintf(&g.out, "\tmovl %s, %s\n", src, scalarSpec(g.localOff[p]))
		}
	}
	for _, line := range g.body {
		g.out.WriteString(line)
		g.out.WriteByte('\n')
	}
	g.out.WriteString("\tret\n")
	return nil
}

// ---------- temporaries (r0/r1 with frame spill) ----------

func (g *ciscGen) allocSlot() int {
	if n := len(g.freeSlots); n > 0 {
		s := g.freeSlots[n-1]
		g.freeSlots = g.freeSlots[:n-1]
		return s
	}
	g.spillMax++
	return g.spillMax - 1
}

func (g *ciscGen) takeReg() int {
	if len(g.freeRegs) > 0 {
		r := g.freeRegs[0]
		g.freeRegs = g.freeRegs[1:]
		return r
	}
	for i := range g.temps {
		t := &g.temps[i]
		if t.reg >= 0 {
			r := int(t.reg)
			t.slot = g.allocSlot()
			g.emit("movl r%d, %s", r, g.slotSpec(t.slot))
			t.reg = -1
			return r
		}
	}
	panic("cc/cisc: out of temporary registers")
}

func (g *ciscGen) pushTemp() tref {
	r := g.takeReg()
	g.temps = append(g.temps, rtemp{reg: int16(r)})
	return tref(len(g.temps) - 1)
}

// spec returns an operand specifier for the temp: its register, or its
// frame slot when spilled (memory operands are first-class on CX).
func (g *ciscGen) spec(t tref) string {
	tm := &g.temps[t]
	if tm.reg >= 0 {
		return fmt.Sprintf("r%d", tm.reg)
	}
	return g.slotSpec(tm.slot)
}

// reg forces the temp into a register (needed for indexed addressing).
func (g *ciscGen) reg(t tref) int {
	tm := &g.temps[t]
	if tm.reg >= 0 {
		return int(tm.reg)
	}
	r := g.takeReg()
	g.emit("movl %s, r%d", g.slotSpec(tm.slot), r)
	g.freeSlots = append(g.freeSlots, tm.slot)
	tm.reg = int16(r)
	return r
}

func (g *ciscGen) pop(t tref) {
	if int(t) != len(g.temps)-1 {
		panic("cc/cisc: temp stack discipline violated")
	}
	tm := g.temps[t]
	if tm.reg >= 0 {
		g.freeRegs = append(g.freeRegs, int(tm.reg))
	} else {
		g.freeSlots = append(g.freeSlots, tm.slot)
	}
	g.temps = g.temps[:t]
}

func (g *ciscGen) spillAllTemps() {
	for i := range g.temps {
		t := &g.temps[i]
		if t.reg >= 0 {
			t.slot = g.allocSlot()
			g.emit("movl r%d, %s", int(t.reg), g.slotSpec(t.slot))
			g.freeRegs = append(g.freeRegs, int(t.reg))
			t.reg = -1
		}
	}
}

// ---------- statements ----------

func (g *ciscGen) genBlock(b *Block) error {
	for _, s := range b.Stmts {
		if err := g.genStmt(s); err != nil {
			return err
		}
	}
	return nil
}

func (g *ciscGen) genStmt(s Stmt) error {
	switch st := s.(type) {
	case *Block:
		return g.genBlock(st)
	case *DeclStmt:
		if st.Init == nil {
			return nil
		}
		_, err := g.genStoreVal(&VarRef{exprBase: exprBase{st.Var.Type}, Decl: st.Var}, st.Init, false)
		return err
	case *ExprStmt:
		t, err := g.genExpr(st.X)
		if err != nil {
			return err
		}
		if t >= 0 {
			g.pop(t)
		}
		return nil
	case *IfStmt:
		elseL := g.newLabel("else")
		endL := g.newLabel("endif")
		target := endL
		if st.Else != nil {
			target = elseL
		}
		if err := g.genBranch(st.Cond, target, false); err != nil {
			return err
		}
		if err := g.genStmt(st.Then); err != nil {
			return err
		}
		if st.Else != nil {
			g.emit("br %s", endL)
			g.label(elseL)
			if err := g.genStmt(st.Else); err != nil {
				return err
			}
		}
		g.label(endL)
		return nil
	case *WhileStmt:
		top := g.newLabel("while")
		end := g.newLabel("endwhile")
		g.label(top)
		if err := g.genBranch(st.Cond, end, false); err != nil {
			return err
		}
		g.breakL = append(g.breakL, end)
		g.contL = append(g.contL, top)
		err := g.genStmt(st.Body)
		g.breakL = g.breakL[:len(g.breakL)-1]
		g.contL = g.contL[:len(g.contL)-1]
		if err != nil {
			return err
		}
		g.emit("br %s", top)
		g.label(end)
		return nil
	case *ForStmt:
		if st.Init != nil {
			if err := g.genStmt(st.Init); err != nil {
				return err
			}
		}
		top := g.newLabel("for")
		post := g.newLabel("forpost")
		end := g.newLabel("endfor")
		g.label(top)
		if st.Cond != nil {
			if err := g.genBranch(st.Cond, end, false); err != nil {
				return err
			}
		}
		g.breakL = append(g.breakL, end)
		g.contL = append(g.contL, post)
		err := g.genStmt(st.Body)
		g.breakL = g.breakL[:len(g.breakL)-1]
		g.contL = g.contL[:len(g.contL)-1]
		if err != nil {
			return err
		}
		g.label(post)
		if st.Post != nil {
			t, err := g.genExpr(st.Post)
			if err != nil {
				return err
			}
			if t >= 0 {
				g.pop(t)
			}
		}
		g.emit("br %s", top)
		g.label(end)
		return nil
	case *ReturnStmt:
		if st.X != nil {
			t, err := g.genExpr(st.X)
			if err != nil {
				return err
			}
			if g.spec(t) != "r0" {
				g.emit("movl %s, r0", g.spec(t))
			}
			g.pop(t)
		}
		g.emit("br Lret_%s", g.fn.Name)
		return nil
	case *BreakStmt:
		g.emit("br %s", g.breakL[len(g.breakL)-1])
		return nil
	case *ContinueStmt:
		g.emit("br %s", g.contL[len(g.contL)-1])
		return nil
	}
	return errorAt(0, "cisc: unknown statement %T", s)
}

// ---------- conditions ----------

var cxCondName = map[string]string{
	"==": "eq", "!=": "ne", "<": "lt", "<=": "le", ">": "gt", ">=": "ge",
}
var cxCondNameU = map[string]string{
	"==": "eq", "!=": "ne", "<": "lo", "<=": "los", ">": "hi", ">=": "his",
}
var cxCondNeg = map[string]string{
	"eq": "ne", "ne": "eq", "lt": "ge", "ge": "lt", "le": "gt", "gt": "le",
	"lo": "his", "his": "lo", "los": "hi", "hi": "los",
}

func (g *ciscGen) genBranch(e Expr, label string, whenTrue bool) error {
	switch x := e.(type) {
	case *IntLit:
		if (x.Val != 0) == whenTrue {
			g.emit("br %s", label)
		}
		return nil
	case *Unary:
		if x.Op == "!" {
			return g.genBranch(x.X, label, !whenTrue)
		}
	case *Logic:
		if x.Op == "&&" {
			if whenTrue {
				skip := g.newLabel("and")
				if err := g.genBranch(x.X, skip, false); err != nil {
					return err
				}
				if err := g.genBranch(x.Y, label, true); err != nil {
					return err
				}
				g.label(skip)
				return nil
			}
			if err := g.genBranch(x.X, label, false); err != nil {
				return err
			}
			return g.genBranch(x.Y, label, false)
		}
		if whenTrue {
			if err := g.genBranch(x.X, label, true); err != nil {
				return err
			}
			return g.genBranch(x.Y, label, true)
		}
		skip := g.newLabel("or")
		if err := g.genBranch(x.X, skip, true); err != nil {
			return err
		}
		if err := g.genBranch(x.Y, label, false); err != nil {
			return err
		}
		g.label(skip)
		return nil
	case *Binary:
		names := cxCondName
		if x.X.TypeOf().Kind == TypePtr || x.Y.TypeOf().Kind == TypePtr {
			names = cxCondNameU
		}
		if cond, ok := names[x.Op]; ok {
			sx, tx, err := g.genOperand(x.X)
			if err != nil {
				return err
			}
			sy, ty, err := g.genOperand(x.Y)
			if err != nil {
				return err
			}
			// Re-query X's operand: evaluating Y may have spilled it.
			if tx >= 0 {
				sx = g.spec(tx)
			}
			g.emit("cmpl %s, %s", sx, sy)
			if ty >= 0 {
				g.pop(ty)
			}
			if tx >= 0 {
				g.pop(tx)
			}
			if !whenTrue {
				cond = cxCondNeg[cond]
			}
			g.emit("b%s %s", cond, label)
			return nil
		}
	}
	t, err := g.genExpr(e)
	if err != nil {
		return err
	}
	g.emit("tstl %s", g.spec(t))
	g.pop(t)
	if whenTrue {
		g.emit("bne %s", label)
	} else {
		g.emit("beq %s", label)
	}
	return nil
}
