package cc

// SMP runtime for RISC I: spawn/join over the memory-mapped control page
// and a spinlock over the test-and-set lock page (see internal/mem's
// smpdev.go for the device contract). These routines are windowed-only —
// genSMPBuiltin rejects the flat target — because the spawn fallback's
// nested call leans on the window overlap and the spin loops keep state in
// LOCAL registers, which the flat convention does not have to spare.
//
// Device addresses reach through r0 with negative 13-bit displacements:
//	#-768  0xFFFFFD00  lock page (test-and-set words)
//	#-504  0xFFFFFE08  SPAWNARG
//	#-500  0xFFFFFE0C  SPAWNFN / spawn handle
//	#-448  0xFFFFFE40  join page (word per handle, 1 while running)

// runtimeSpawn emits __spawn(fn, arg) -> handle. Storing the staged fn
// address fires the scheduler's spawn; a handle of -1 (no free core, or no
// SMP controller at all) falls back to calling fn inline on this core, so
// parallel programs degrade to correct sequential ones anywhere.
func (g *riscGen) runtimeSpawn() string {
	r := g.rtRegs()
	return expandRT(`
; ---- runtime: spawn a worker core ----
__spawn:
	stl {b},(r0)#-504       ; stage the argument
	stl {a},(r0)#-500       ; fn address: fires the spawn
	ldl (r0)#-500,{t1}      ; handle, or -1
	cmp {t1},#-1
	bne .Lspawn_done
	nop
	mov {b},r10             ; no free core: run fn inline right here
	call {link},({a})#0
	nop
	add r0,#-1,{t1}         ; inline handle: join treats -1 as done
.Lspawn_done:
	mov {t1},{ret}
	ret {link},#8
	nop
`, r)
}

// runtimeJoin emits __join(handle): spin until the worker halts. The join
// page reads 0 for a halted worker, an out-of-range handle, or no
// controller, so joining an inline-call handle (-1) returns immediately.
func (g *riscGen) runtimeJoin() string {
	r := g.rtRegs()
	return expandRT(`
; ---- runtime: join a worker core ----
__join:
	cmp {a},#0
	blt .Ljoin_done         ; inline-call handle: already complete
	nop
	sll {a},#2,{t1}         ; handle -> join-page offset
.Ljoin_wait:
	ldl ({t1})#-448,{t2}    ; 1 while the worker still runs
	cmp {t2},#0
	bne .Ljoin_wait
	nop
.Ljoin_done:
	ret {link},#8
	nop
`, r)
}

// runtimeLock emits __lock(n): spin on test-and-set word n. The load
// returns the word's previous value and sets it; 0 means we took it.
func (g *riscGen) runtimeLock() string {
	r := g.rtRegs()
	return expandRT(`
; ---- runtime: take spinlock n ----
__lock:
	sll {a},#2,{t1}
.Llock_spin:
	ldl ({t1})#-768,{t2}    ; test-and-set: old value, sets 1
	cmp {t2},#0
	bne .Llock_spin
	nop
	ret {link},#8
	nop
`, r)
}

// runtimeUnlock emits __unlock(n): release test-and-set word n.
func (g *riscGen) runtimeUnlock() string {
	r := g.rtRegs()
	return expandRT(`
; ---- runtime: release spinlock n ----
__unlock:
	sll {a},#2,{t1}
	stl r0,({t1})#-768
	ret {link},#8
	nop
`, r)
}
