package cc

import (
	"fmt"
	"strings"
)

// Software multiply/divide for RISC I, which (like the real chip) has no
// multiply or divide instructions: the compiler calls these routines, just
// as the Berkeley C compiler did. Each is generated for the active calling
// convention.
//
// The windowed variant keeps its state in LOCAL registers (private to the
// window). The flat variant must limit itself to the caller-saved scratch
// registers r10..r15 and its argument registers to stay leaf-cheap.

type rtRegs struct {
	a, b           string // arguments
	ret            string // result register
	t1, t2, t3, t4 string
	t5, t6         string
	link           string
}

func (g *riscGen) rtRegs() rtRegs {
	if g.windowed {
		return rtRegs{a: "r26", b: "r27", ret: "r26",
			t1: "r16", t2: "r17", t3: "r18", t4: "r19", t5: "r20", t6: "r21",
			link: "r25"}
	}
	return rtRegs{a: "r1", b: "r2", ret: "r1",
		t1: "r10", t2: "r11", t3: "r12", t4: "r13", t5: "r14", t6: "r15",
		link: "r25"}
}

// runtimeMul emits __mulsi: shift-and-add, 32 iterations worst case.
// Works for signed operands because the product is taken mod 2^32.
func (g *riscGen) runtimeMul() string {
	r := g.rtRegs()
	return expandRT(`
; ---- runtime: signed multiply ----
__mulsi:
	add r0,#0,{t1}          ; accumulator
	mov {a},{t2}            ; multiplicand
	mov {b},{t3}            ; multiplier
.Lmul_loop:
	cmp {t3},#0
	beq .Lmul_done
	nop
	and {t3},#1,{t4}
	cmp {t4},#0
	beq .Lmul_skip
	nop
	add {t1},{t2},{t1}
.Lmul_skip:
	sll {t2},#1,{t2}
	srl {t3},#1,{t3}
	b .Lmul_loop
	nop
.Lmul_done:
	mov {t1},{ret}
	ret {link},#8
	nop
`, r)
}

// runtimeDivMod emits __divsi or __modsi: sign-aware restoring division,
// truncating toward zero like C (and like CX's DIVL microcode).
func (g *riscGen) runtimeDivMod(name string, isDiv bool) string {
	r := g.rtRegs()
	sign, res := "{t5}", "{t1}" // quotient sign, quotient
	if !isDiv {
		sign, res = "{t6}", "{t2}" // remainder sign, remainder
	}
	body := `
; ---- runtime: signed ` + map[bool]string{true: "divide", false: "remainder"}[isDiv] + ` ----
` + name + `:
	cmp {b},#0
	bne .L` + name + `_ok
	nop
	add r0,#0,{ret}         ; divide by zero yields zero
	ret {link},#8
	nop
.L` + name + `_ok:
	add r0,#0,{t5}          ; quotient-sign flag
	add r0,#0,{t6}          ; remainder-sign flag
	cmp {a},#0
	bge .L` + name + `_apos
	nop
	sub r0,{a},{a}
	xor {t5},#1,{t5}
	add r0,#1,{t6}
.L` + name + `_apos:
	cmp {b},#0
	bge .L` + name + `_bpos
	nop
	sub r0,{b},{b}
	xor {t5},#1,{t5}
.L` + name + `_bpos:
	add r0,#0,{t1}          ; quotient
	add r0,#0,{t2}          ; remainder
	add r0,#32,{t3}         ; bit counter
.L` + name + `_loop:
	sll {t2},#1,{t2}
	srl {a},#31,{t4}
	or {t2},{t4},{t2}
	sll {a},#1,{a}
	sll {t1},#1,{t1}
	cmp {t2},{b}
	blo .L` + name + `_next
	nop
	sub {t2},{b},{t2}
	or {t1},#1,{t1}
.L` + name + `_next:
	sub! {t3},#1,{t3}
	bne .L` + name + `_loop
	nop
	cmp ` + sign + `,#0
	beq .L` + name + `_pos
	nop
	sub r0,` + res + `,` + res + `
.L` + name + `_pos:
	mov ` + res + `,{ret}
	ret {link},#8
	nop
`
	return expandRT(body, r)
}

func expandRT(body string, r rtRegs) string {
	pairs := []string{
		"{a}", r.a, "{b}", r.b, "{ret}", r.ret,
		"{t1}", r.t1, "{t2}", r.t2, "{t3}", r.t3,
		"{t4}", r.t4, "{t5}", r.t5, "{t6}", r.t6,
		"{link}", r.link,
	}
	out := strings.NewReplacer(pairs...).Replace(body)
	if strings.Contains(out, "{") {
		panic(fmt.Sprintf("cc: unexpanded placeholder in runtime:\n%s", out))
	}
	return out
}
