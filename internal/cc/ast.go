package cc

import "fmt"

// Type describes a Cm type.
type Type struct {
	Kind TypeKind
	Elem *Type // Ptr and Array element
	Len  int   // Array length
}

// TypeKind enumerates Cm's types.
type TypeKind uint8

// Cm type kinds.
const (
	TypeInt TypeKind = iota
	TypeChar
	TypeVoid
	TypePtr
	TypeArray
)

var (
	intType  = &Type{Kind: TypeInt}
	charType = &Type{Kind: TypeChar}
	voidType = &Type{Kind: TypeVoid}
)

func ptrTo(e *Type) *Type { return &Type{Kind: TypePtr, Elem: e} }

// Size returns the storage size in bytes.
func (t *Type) Size() int {
	switch t.Kind {
	case TypeChar:
		return 1
	case TypeArray:
		return t.Len * t.Elem.Size()
	case TypeVoid:
		return 0
	default:
		return 4
	}
}

// IsScalar reports whether values of t fit in a register.
func (t *Type) IsScalar() bool {
	return t.Kind == TypeInt || t.Kind == TypeChar || t.Kind == TypePtr
}

func (t *Type) String() string {
	switch t.Kind {
	case TypeInt:
		return "int"
	case TypeChar:
		return "char"
	case TypeVoid:
		return "void"
	case TypePtr:
		return t.Elem.String() + "*"
	case TypeArray:
		return fmt.Sprintf("%s[%d]", t.Elem, t.Len)
	}
	return "?"
}

// equalTypes compares structurally.
func equalTypes(a, b *Type) bool {
	if a.Kind != b.Kind {
		return false
	}
	switch a.Kind {
	case TypePtr:
		return equalTypes(a.Elem, b.Elem)
	case TypeArray:
		return a.Len == b.Len && equalTypes(a.Elem, b.Elem)
	}
	return true
}

// Program is a checked Cm translation unit.
type Program struct {
	Globals []*VarDecl
	Funcs   []*FuncDecl
	Strings []string // interned string literals, indexed by StrLit.Index
}

// VarDecl is a global or local variable.
type VarDecl struct {
	Name string
	Type *Type
	Line int

	// Global initialization.
	InitInts   []int64 // scalar (len 1) or int-array initializer
	InitString string  // char-array initializer
	HasInit    bool

	// Storage assignment, filled by the back ends / sema.
	IsGlobal  bool
	AddrTaken bool // &x used, or type is an array: must live in memory
	Seq       int  // declaration order within its function
}

// FuncDecl is a function definition.
type FuncDecl struct {
	Name   string
	Ret    *Type
	Params []*VarDecl
	Body   *Block
	Line   int

	Locals  []*VarDecl // all block-scope declarations, in order
	IsLeaf  bool       // calls nothing (backend hint)
	MaxArgs int        // largest call arity inside

	hasCalls bool // set by the parser when any Call appears in the body
}

// Statements.

// Stmt is implemented by all statement nodes.
type Stmt interface{ stmtNode() }

// Block is a { ... } statement list with its own scope.
type Block struct {
	Stmts []Stmt
}

// DeclStmt declares a local, optionally initialized.
type DeclStmt struct {
	Var  *VarDecl
	Init Expr // nil if none
}

// ExprStmt evaluates an expression for effect.
type ExprStmt struct {
	X    Expr
	Line int
}

// IfStmt is if/else.
type IfStmt struct {
	Cond Expr
	Then Stmt
	Else Stmt // nil if absent
	Line int
}

// WhileStmt is a while loop.
type WhileStmt struct {
	Cond Expr
	Body Stmt
	Line int
}

// ForStmt is a for loop; any of Init/Cond/Post may be nil.
type ForStmt struct {
	Init Stmt // DeclStmt or ExprStmt
	Cond Expr
	Post Expr
	Body Stmt
	Line int
}

// ReturnStmt returns from the enclosing function.
type ReturnStmt struct {
	X    Expr // nil for bare return
	Line int
}

// BreakStmt exits the innermost loop.
type BreakStmt struct{ Line int }

// ContinueStmt restarts the innermost loop.
type ContinueStmt struct{ Line int }

func (*Block) stmtNode()        {}
func (*DeclStmt) stmtNode()     {}
func (*ExprStmt) stmtNode()     {}
func (*IfStmt) stmtNode()       {}
func (*WhileStmt) stmtNode()    {}
func (*ForStmt) stmtNode()      {}
func (*ReturnStmt) stmtNode()   {}
func (*BreakStmt) stmtNode()    {}
func (*ContinueStmt) stmtNode() {}

// Expressions. Every expression carries its checked type after sema.

// Expr is implemented by all expression nodes.
type Expr interface {
	exprNode()
	TypeOf() *Type
}

type exprBase struct{ typ *Type }

func (e *exprBase) exprNode()     {}
func (e *exprBase) TypeOf() *Type { return e.typ }

// IntLit is an integer or character literal.
type IntLit struct {
	exprBase
	Val int64
}

// StrLit is a string literal (char* to interned storage).
type StrLit struct {
	exprBase
	Index int
}

// VarRef names a variable.
type VarRef struct {
	exprBase
	Decl *VarDecl
}

// Unary is -x, !x, ~x, *p, &lv.
type Unary struct {
	exprBase
	Op string
	X  Expr
}

// Binary is any binary operator except assignment and short-circuits.
type Binary struct {
	exprBase
	Op   string
	X, Y Expr
	// Scale is the pointer-arithmetic multiplier applied to Y (for p+i)
	// or to the difference (p-q), set by sema.
	Scale int
}

// Logic is && or || with short-circuit evaluation.
type Logic struct {
	exprBase
	Op   string
	X, Y Expr
}

// Assign stores Y into lvalue X and yields the stored value.
type Assign struct {
	exprBase
	X, Y Expr
}

// Index is X[i]; sema also rewrites *p to Index(p, 0) form? No: kept as Unary("*").
type Index struct {
	exprBase
	Arr, Idx Expr
}

// Call invokes a function or builtin.
type Call struct {
	exprBase
	Func    *FuncDecl // nil for builtins, except "spawn" (the spawned fn)
	Builtin string    // "putint", "putchar", the SMP builtins, or ""
	Args    []Expr
	Line    int

	// runtimeName names a compiler-runtime routine (__mulsi, __divsi,
	// __modsi) when the back end lowers an operator to a call.
	runtimeName string
}

// Cond is c ? a : b.
type Cond struct {
	exprBase
	C, A, B Expr
}

// IncDec is ++x, --x, x++ or x--; X is an lvalue. The value of the
// expression is the new value (prefix) or the original value (postfix).
// Delta is +1 or -1 scaled for pointer arithmetic by sema.
type IncDec struct {
	exprBase
	X     Expr
	Delta int
	Post  bool
}
