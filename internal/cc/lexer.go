// Package cc implements the Cm compiler: the small C dialect the benchmark
// suite is written in, with code generators for three targets — RISC I with
// register windows, RISC I without windows (the flat-register ablation), and
// the CX CISC comparator. One front end feeding three back ends mirrors the
// paper's methodology of compiling the same C benchmarks for every machine
// under comparison.
//
// Cm covers what the benchmarks need: int (32-bit signed) and char, pointers
// and arrays, global and local variables, the usual C expressions (including
// short-circuit && and ||), if/while/for/break/continue/return, function
// definitions with up to six parameters, string literals, and the output
// builtins putint and putchar.
package cc

import (
	"fmt"
	"strconv"
	"strings"
	"unicode"
)

// tokKind classifies tokens.
type tokKind uint8

const (
	tokEOF tokKind = iota
	tokIdent
	tokNumber
	tokString
	tokChar
	tokPunct   // operators and delimiters
	tokKeyword // int, char, if, ...
)

var keywords = map[string]bool{
	"int": true, "char": true, "void": true,
	"if": true, "else": true, "while": true, "for": true,
	"return": true, "break": true, "continue": true,
}

type token struct {
	kind tokKind
	text string
	num  int64 // value for tokNumber and tokChar
	line int
}

func (t token) String() string {
	if t.kind == tokEOF {
		return "end of file"
	}
	return fmt.Sprintf("%q", t.text)
}

// CompileError is a front-end diagnostic with a source line.
type CompileError struct {
	Line int
	Msg  string
}

func (e *CompileError) Error() string { return fmt.Sprintf("cc: line %d: %s", e.Line, e.Msg) }

// multi-character punctuation, longest first.
var punct2 = []string{
	// Longest first: three-character operators shadow their prefixes.
	"<<=", ">>=",
	"<<", ">>", "<=", ">=", "==", "!=", "&&", "||",
	"+=", "-=", "*=", "/=", "%=", "&=", "|=", "^=", "++", "--",
}

// lex tokenizes src.
func lex(src string) ([]token, error) {
	var toks []token
	line := 1
	i := 0
	for i < len(src) {
		c := src[i]
		switch {
		case c == '\n':
			line++
			i++
		case c == ' ' || c == '\t' || c == '\r':
			i++
		case c == '/' && i+1 < len(src) && src[i+1] == '/':
			for i < len(src) && src[i] != '\n' {
				i++
			}
		case c == '/' && i+1 < len(src) && src[i+1] == '*':
			i += 2
			for i+1 < len(src) && !(src[i] == '*' && src[i+1] == '/') {
				if src[i] == '\n' {
					line++
				}
				i++
			}
			if i+1 >= len(src) {
				return nil, &CompileError{Line: line, Msg: "unterminated comment"}
			}
			i += 2
		case unicode.IsDigit(rune(c)):
			j := i
			for j < len(src) && (isAlnum(src[j])) {
				j++
			}
			text := src[i:j]
			v, err := strconv.ParseInt(text, 0, 64)
			if err != nil || v > 1<<32 {
				return nil, &CompileError{Line: line, Msg: "bad number " + text}
			}
			toks = append(toks, token{tokNumber, text, v, line})
			i = j
		case isAlpha(c):
			j := i
			for j < len(src) && isAlnum(src[j]) {
				j++
			}
			text := src[i:j]
			kind := tokIdent
			if keywords[text] {
				kind = tokKeyword
			}
			toks = append(toks, token{kind, text, 0, line})
			i = j
		case c == '"':
			s, n, err := scanString(src[i:], line)
			if err != nil {
				return nil, err
			}
			toks = append(toks, token{tokString, s, 0, line})
			i += n
		case c == '\'':
			v, n, err := scanChar(src[i:], line)
			if err != nil {
				return nil, err
			}
			toks = append(toks, token{tokChar, src[i : i+n], v, line})
			i += n
		default:
			matched := false
			for _, p := range punct2 {
				if strings.HasPrefix(src[i:], p) {
					toks = append(toks, token{tokPunct, p, 0, line})
					i += len(p)
					matched = true
					break
				}
			}
			if matched {
				continue
			}
			if strings.ContainsRune("+-*/%<>=!&|^~(){}[];,?:", rune(c)) {
				toks = append(toks, token{tokPunct, string(c), 0, line})
				i++
				continue
			}
			return nil, &CompileError{Line: line, Msg: fmt.Sprintf("unexpected character %q", c)}
		}
	}
	toks = append(toks, token{tokEOF, "", 0, line})
	return toks, nil
}

func isAlpha(c byte) bool {
	return c == '_' || c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z'
}

func isAlnum(c byte) bool { return isAlpha(c) || c >= '0' && c <= '9' }

// scanString returns the decoded string body and the source length consumed.
func scanString(s string, line int) (string, int, error) {
	var b strings.Builder
	i := 1
	for i < len(s) {
		switch c := s[i]; c {
		case '"':
			return b.String(), i + 1, nil
		case '\n':
			return "", 0, &CompileError{Line: line, Msg: "newline in string literal"}
		case '\\':
			i++
			if i >= len(s) {
				return "", 0, &CompileError{Line: line, Msg: "unterminated string"}
			}
			d, err := unescape(s[i], line)
			if err != nil {
				return "", 0, err
			}
			b.WriteByte(d)
			i++
		default:
			b.WriteByte(c)
			i++
		}
	}
	return "", 0, &CompileError{Line: line, Msg: "unterminated string"}
}

func scanChar(s string, line int) (int64, int, error) {
	if len(s) >= 4 && s[1] == '\\' && s[3] == '\'' {
		d, err := unescape(s[2], line)
		return int64(d), 4, err
	}
	if len(s) >= 3 && s[2] == '\'' && s[1] != '\\' && s[1] != '\'' {
		return int64(s[1]), 3, nil
	}
	return 0, 0, &CompileError{Line: line, Msg: "bad character literal"}
}

func unescape(c byte, line int) (byte, error) {
	switch c {
	case 'n':
		return '\n', nil
	case 't':
		return '\t', nil
	case '0':
		return 0, nil
	case '\\', '\'', '"':
		return c, nil
	}
	return 0, &CompileError{Line: line, Msg: fmt.Sprintf("unknown escape \\%c", c)}
}
