package cc

import (
	"strings"
	"testing"
)

func lines(s string) []string {
	var out []string
	for _, l := range strings.Split(s, "\n") {
		if t := strings.TrimSpace(l); t != "" {
			out = append(out, t)
		}
	}
	return out
}

func TestFillsUnconditionalBranchSlot(t *testing.T) {
	src := "\tadd r1,#1,r2\n\tb done\n\tnop\ndone:\n"
	out, n := OptimizeDelaySlots(src)
	if n != 1 {
		t.Fatalf("filled %d, want 1:\n%s", n, out)
	}
	got := lines(out)
	want := []string{"b done", "add r1,#1,r2", "done:"}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("line %d = %q, want %q\n%s", i, got[i], want[i], out)
		}
	}
}

func TestFillsConditionalSlotWithNonFlagSetter(t *testing.T) {
	src := "\tadd r1,#1,r2\n\tbeq out\n\tnop\nout:\n"
	_, n := OptimizeDelaySlots(src)
	if n != 1 {
		t.Errorf("filled %d, want 1", n)
	}
}

func TestNeverMovesFlagSetters(t *testing.T) {
	for _, inst := range []string{"cmp r1,#0", "sub! r1,#1,r1", "add! r1,#1,r2"} {
		src := "\t" + inst + "\n\tbeq out\n\tnop\nout:\n"
		out, n := OptimizeDelaySlots(src)
		if n != 0 {
			t.Errorf("moved flag setter %q into a conditional slot:\n%s", inst, out)
		}
	}
}

func TestNeverFillsCallOrReturnSlots(t *testing.T) {
	// Call/return slots execute in the other register window.
	for _, xfer := range []string{"callr r25,f", "ret r25,#8", "call r25,(r2)#0"} {
		src := "\tadd r1,#1,r2\n\t" + xfer + "\n\tnop\nf:\n"
		_, n := OptimizeDelaySlots(src)
		if n != 0 {
			t.Errorf("filled the slot of %q", xfer)
		}
	}
}

func TestDoesNotMoveBranchDependency(t *testing.T) {
	// X writes the register the indirect jump reads.
	src := "\tadd r1,#4,r3\n\tjmp alw,(r3)#0\n\tnop\n"
	_, n := OptimizeDelaySlots(src)
	if n != 0 {
		t.Error("moved the producer of the jump's base register")
	}
	// Index-register form too.
	src = "\tadd r1,#4,r4\n\tjmp alw,(r3)r4\n\tnop\n"
	if _, n := OptimizeDelaySlots(src); n != 0 {
		t.Error("moved the producer of the jump's index register")
	}
	// An unrelated register is fine.
	src = "\tadd r1,#4,r7\n\tjmp alw,(r3)#0\n\tnop\n"
	if _, n := OptimizeDelaySlots(src); n != 1 {
		t.Error("refused a safe fill before an indirect jump")
	}
}

func TestDoesNotMoveMultiWordPseudos(t *testing.T) {
	// li/la can expand to two instructions; one slot cannot hold them.
	for _, inst := range []string{"li #100000,r2", "la foo,r2"} {
		src := "\t" + inst + "\n\tb out\n\tnop\nout:\nfoo:\n"
		if _, n := OptimizeDelaySlots(src); n != 0 {
			t.Errorf("moved multi-word pseudo %q", inst)
		}
	}
}

func TestDoesNotMoveLabelsOrBranches(t *testing.T) {
	src := "lbl:\n\tb out\n\tnop\nout:\n"
	if _, n := OptimizeDelaySlots(src); n != 0 {
		t.Error("treated a label as movable")
	}
	src = "\tb first\n\tb out\n\tnop\nfirst:\nout:\n"
	if _, n := OptimizeDelaySlots(src); n != 0 {
		t.Error("moved a branch into a slot")
	}
}

func TestMovesLoadsAndStores(t *testing.T) {
	src := "\tldl (r9)#4,r2\n\tb out\n\tnop\nout:\n"
	if _, n := OptimizeDelaySlots(src); n != 1 {
		t.Error("refused to move a load")
	}
	src = "\tstl r2,(r9)#4\n\tbne out\n\tnop\nout:\n"
	if _, n := OptimizeDelaySlots(src); n != 1 {
		t.Error("refused to move a store")
	}
}

func TestChainedBranchesIndependent(t *testing.T) {
	src := "\tadd r1,#1,r2\n\tb a\n\tnop\n\tadd r3,#1,r4\n\tb b\n\tnop\na:\nb:\n"
	out, n := OptimizeDelaySlots(src)
	if n != 2 {
		t.Errorf("filled %d of 2 independent slots:\n%s", n, out)
	}
}

func TestOptimizedProgramStillCorrect(t *testing.T) {
	// End-to-end sanity at the text level: the optimizer must preserve
	// every non-empty line (just reordered, with NOPs removed).
	src := "\tadd r1,#1,r2\n\tb done\n\tnop\ndone:\tret r25,#8\n\tnop\n"
	out, _ := OptimizeDelaySlots(src)
	for _, want := range []string{"add r1,#1,r2", "b done", "ret r25,#8"} {
		if !strings.Contains(out, want) {
			t.Errorf("lost %q:\n%s", want, out)
		}
	}
}
