package cc_test

import (
	"fmt"
	"testing"
)

// TestOperatorPrecedence pins the C precedence table with expressions whose
// value differs under wrong associativity or binding.
func TestOperatorPrecedence(t *testing.T) {
	cases := []struct {
		expr string
		want int32
	}{
		{"2 + 3 * 4", 14},
		{"(2 + 3) * 4", 20},
		{"10 - 4 - 3", 3},        // left associative
		{"100 / 10 / 2", 5},      // left associative
		{"1 << 2 + 1", 8},        // shift binds looser than +
		{"4 & 2 | 1", 1},         // & binds tighter than |
		{"1 | 2 ^ 2", 1},         // ^ between | and &
		{"6 & 3 == 3", 6 & 1},    // comparison tighter than & (C's famous gotcha)
		{"1 + 2 < 2 + 2", 1},     // + tighter than <
		{"0 || 1 && 0", 0},       // && tighter than ||
		{"1 ? 2 : 0 ? 3 : 4", 2}, // ?: right associative
		{"0 ? 2 : 1 ? 3 : 4", 3},
		{"-2 * -3", 6},
		{"~0 & 15", 15},
		{"!3 + 1", 1},
		{"10 % 4 * 2", 4}, // % and * same level, left assoc
	}
	for _, c := range cases {
		src := fmt.Sprintf("int main() { putint(%s); return 0; }", c.expr)
		want := fmt.Sprintf("%d", c.want)
		for _, target := range allTargets {
			if got := runTarget(t, src, target); got != want {
				t.Errorf("%q on %v = %s, want %s", c.expr, target, got, want)
			}
		}
	}
}

// TestCommentsAndFormatting exercises lexer corners.
func TestCommentsAndFormatting(t *testing.T) {
	src := `
/* block
   comment */ int main() {
	int x; // line comment
	x = 1; /* inline */ x += 2;
	putint(x);
	return 0; // done
}`
	for _, target := range allTargets {
		if got := runTarget(t, src, target); got != "3" {
			t.Errorf("%v: %q", target, got)
		}
	}
}

// TestCharEscapes covers character and string escape handling end to end.
func TestCharEscapes(t *testing.T) {
	src := `
char s[] = "a\tb\\c\"d";
int main() {
	int i;
	for (i = 0; s[i]; i++) putchar(s[i]);
	putchar('\n');
	putint('\t');
	return 0;
}`
	want := "a\tb\\c\"d\n9"
	for _, target := range allTargets {
		if got := runTarget(t, src, target); got != want {
			t.Errorf("%v: %q, want %q", target, got, want)
		}
	}
}
