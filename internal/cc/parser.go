package cc

import (
	"fmt"
)

// Parse builds and type-checks a Cm program. Function bodies may reference
// functions defined later in the file: signatures are collected in a first
// phase, bodies parsed in a second.
func Parse(src string) (*Program, error) {
	toks, err := lex(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	return p.program()
}

type parser struct {
	toks []token
	pos  int

	prog    *Program
	funcs   map[string]*FuncDecl
	globals map[string]*VarDecl
	strings map[string]int

	// body-parsing state
	fn        *FuncDecl
	scopes    []map[string]*VarDecl
	loopDepth int
}

func (p *parser) cur() token  { return p.toks[p.pos] }
func (p *parser) next() token { t := p.toks[p.pos]; p.pos++; return t }
func (p *parser) line() int   { return p.cur().line }

func (p *parser) errf(format string, args ...any) error {
	return &CompileError{Line: p.line(), Msg: fmt.Sprintf(format, args...)}
}

func (p *parser) is(text string) bool { return p.cur().text == text && p.cur().kind != tokString }

func (p *parser) accept(text string) bool {
	if p.is(text) {
		p.pos++
		return true
	}
	return false
}

func (p *parser) expect(text string) error {
	if !p.accept(text) {
		return p.errf("expected %q, found %s", text, p.cur())
	}
	return nil
}

// ---------- phase A: top level ----------

func (p *parser) program() (*Program, error) {
	p.prog = &Program{}
	p.funcs = map[string]*FuncDecl{}
	p.globals = map[string]*VarDecl{}
	p.strings = map[string]int{}

	type pending struct {
		fn        *FuncDecl
		bodyStart int
	}
	var bodies []pending

	for p.cur().kind != tokEOF {
		base, err := p.baseType()
		if err != nil {
			return nil, err
		}
		typ := p.pointers(base)
		if p.cur().kind != tokIdent {
			return nil, p.errf("expected a name, found %s", p.cur())
		}
		name := p.next().text

		if p.is("(") {
			fn := &FuncDecl{Name: name, Ret: typ, Line: p.line()}
			if err := p.paramList(fn); err != nil {
				return nil, err
			}
			if _, dup := p.funcs[name]; dup {
				return nil, p.errf("function %q redefined", name)
			}
			if _, dup := p.globals[name]; dup {
				return nil, p.errf("%q is already a global variable", name)
			}
			p.funcs[name] = fn
			p.prog.Funcs = append(p.prog.Funcs, fn)
			if !p.is("{") {
				return nil, p.errf("expected function body")
			}
			bodies = append(bodies, pending{fn, p.pos})
			if err := p.skipBlock(); err != nil {
				return nil, err
			}
			continue
		}

		if err := p.globalVar(name, typ); err != nil {
			return nil, err
		}
	}

	// ---------- phase B: bodies ----------
	for _, b := range bodies {
		p.pos = b.bodyStart
		p.fn = b.fn
		p.scopes = []map[string]*VarDecl{{}}
		for _, param := range b.fn.Params {
			p.scopes[0][param.Name] = param
		}
		body, err := p.block()
		if err != nil {
			return nil, err
		}
		b.fn.Body = body
		b.fn.IsLeaf = b.fn.MaxArgs == 0 && !p.callsAnything(b.fn)
	}
	if main, ok := p.funcs["main"]; !ok {
		return nil, &CompileError{Line: 1, Msg: "program has no main function"}
	} else if len(main.Params) != 0 {
		return nil, &CompileError{Line: main.Line, Msg: "main must take no parameters"}
	}
	return p.prog, nil
}

// callsAnything reports whether fn contains any Call (set during body
// parsing through the hasCalls flag on the decl).
func (p *parser) callsAnything(fn *FuncDecl) bool { return fn.hasCalls }

func (p *parser) baseType() (*Type, error) {
	switch {
	case p.accept("int"):
		return intType, nil
	case p.accept("char"):
		return charType, nil
	case p.accept("void"):
		return voidType, nil
	}
	return nil, p.errf("expected a type, found %s", p.cur())
}

func (p *parser) pointers(t *Type) *Type {
	for p.accept("*") {
		t = ptrTo(t)
	}
	return t
}

func (p *parser) paramList(fn *FuncDecl) error {
	if err := p.expect("("); err != nil {
		return err
	}
	if p.accept(")") {
		return nil
	}
	if p.is("void") && p.toks[p.pos+1].text == ")" {
		p.pos += 2
		return nil
	}
	for {
		base, err := p.baseType()
		if err != nil {
			return err
		}
		typ := p.pointers(base)
		if typ.Kind == TypeVoid {
			return p.errf("parameter cannot be void")
		}
		if p.cur().kind != tokIdent {
			return p.errf("expected parameter name")
		}
		name := p.next().text
		if p.accept("[") { // T name[] is a pointer parameter
			if err := p.expect("]"); err != nil {
				return err
			}
			typ = ptrTo(typ)
		}
		for _, prev := range fn.Params {
			if prev.Name == name {
				return p.errf("duplicate parameter %q", name)
			}
		}
		fn.Params = append(fn.Params, &VarDecl{Name: name, Type: typ, Line: p.line()})
		if p.accept(")") {
			break
		}
		if err := p.expect(","); err != nil {
			return err
		}
	}
	if len(fn.Params) > MaxParams {
		return &CompileError{Line: fn.Line,
			Msg: fmt.Sprintf("function %q has %d parameters; the calling convention supports %d",
				fn.Name, len(fn.Params), MaxParams)}
	}
	return nil
}

// MaxParams is the calling-convention limit: six registers of incoming
// parameters (the register-window overlap size).
const MaxParams = 6

func (p *parser) skipBlock() error {
	if err := p.expect("{"); err != nil {
		return err
	}
	depth := 1
	for depth > 0 {
		t := p.next()
		switch {
		case t.kind == tokEOF:
			return p.errf("unterminated function body")
		case t.text == "{" && t.kind == tokPunct:
			depth++
		case t.text == "}" && t.kind == tokPunct:
			depth--
		}
	}
	return nil
}

func (p *parser) globalVar(name string, typ *Type) error {
	if typ.Kind == TypeVoid {
		return p.errf("variable %q cannot be void", name)
	}
	v := &VarDecl{Name: name, Type: typ, Line: p.line(), IsGlobal: true}
	if p.accept("[") {
		if p.is("]") { // size from initializer
			p.pos++
			v.Type = &Type{Kind: TypeArray, Elem: typ, Len: -1}
		} else {
			n, err := p.constInt()
			if err != nil {
				return err
			}
			if n <= 0 || n > 1<<20 {
				return p.errf("bad array size %d", n)
			}
			if err := p.expect("]"); err != nil {
				return err
			}
			v.Type = &Type{Kind: TypeArray, Elem: typ, Len: int(n)}
		}
	}
	if p.accept("=") {
		if err := p.globalInit(v); err != nil {
			return err
		}
	}
	if v.Type.Kind == TypeArray && v.Type.Len == -1 {
		return p.errf("array %q has no size", name)
	}
	if _, dup := p.globals[name]; dup {
		return p.errf("global %q redefined", name)
	}
	if _, dup := p.funcs[name]; dup {
		return p.errf("%q is already a function", name)
	}
	p.globals[name] = v
	p.prog.Globals = append(p.prog.Globals, v)
	return p.expect(";")
}

func (p *parser) globalInit(v *VarDecl) error {
	v.HasInit = true
	switch {
	case p.cur().kind == tokString:
		if v.Type.Kind != TypeArray || v.Type.Elem.Kind != TypeChar {
			return p.errf("string initializer needs a char array")
		}
		s := p.next().text
		if v.Type.Len == -1 {
			v.Type = &Type{Kind: TypeArray, Elem: charType, Len: len(s) + 1}
		} else if len(s)+1 > v.Type.Len {
			return p.errf("string initializer too long for %q", v.Name)
		}
		v.InitString = s
		return nil
	case p.is("{"):
		if v.Type.Kind != TypeArray {
			return p.errf("brace initializer needs an array")
		}
		p.pos++
		for {
			n, err := p.constInt()
			if err != nil {
				return err
			}
			v.InitInts = append(v.InitInts, n)
			if p.accept("}") {
				break
			}
			if err := p.expect(","); err != nil {
				return err
			}
		}
		if v.Type.Len == -1 {
			v.Type = &Type{Kind: TypeArray, Elem: v.Type.Elem, Len: len(v.InitInts)}
		} else if len(v.InitInts) > v.Type.Len {
			return p.errf("too many initializers for %q", v.Name)
		}
		return nil
	default:
		if !v.Type.IsScalar() {
			return p.errf("scalar initializer for non-scalar %q", v.Name)
		}
		n, err := p.constInt()
		if err != nil {
			return err
		}
		v.InitInts = []int64{n}
		return nil
	}
}

func (p *parser) constInt() (int64, error) {
	neg := p.accept("-")
	t := p.cur()
	if t.kind != tokNumber && t.kind != tokChar {
		return 0, p.errf("expected a constant, found %s", t)
	}
	p.pos++
	if neg {
		return -t.num, nil
	}
	return t.num, nil
}
