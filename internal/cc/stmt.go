package cc

// Statement parsing (phase B). Scopes nest per block; every local
// declaration is also recorded in the function's Locals list for the back
// ends to assign storage.

func (p *parser) pushScope() { p.scopes = append(p.scopes, map[string]*VarDecl{}) }
func (p *parser) popScope()  { p.scopes = p.scopes[:len(p.scopes)-1] }

func (p *parser) lookupVar(name string) *VarDecl {
	for i := len(p.scopes) - 1; i >= 0; i-- {
		if v, ok := p.scopes[i][name]; ok {
			return v
		}
	}
	return p.globals[name]
}

func (p *parser) declare(v *VarDecl) error {
	top := p.scopes[len(p.scopes)-1]
	if _, dup := top[v.Name]; dup {
		return p.errf("variable %q redeclared in this scope", v.Name)
	}
	top[v.Name] = v
	v.Seq = len(p.fn.Locals)
	p.fn.Locals = append(p.fn.Locals, v)
	return nil
}

func (p *parser) block() (*Block, error) {
	if err := p.expect("{"); err != nil {
		return nil, err
	}
	p.pushScope()
	defer p.popScope()
	b := &Block{}
	for !p.accept("}") {
		if p.cur().kind == tokEOF {
			return nil, p.errf("unterminated block")
		}
		s, err := p.statement()
		if err != nil {
			return nil, err
		}
		if s != nil {
			b.Stmts = append(b.Stmts, s)
		}
	}
	return b, nil
}

// statement parses one statement and stamps it with the source line it
// began on, so the back ends can attribute the code they emit.
func (p *parser) statement() (Stmt, error) {
	line := p.line()
	s, err := p.bareStatement()
	if s != nil {
		switch st := s.(type) {
		case *ExprStmt:
			st.Line = line
		case *IfStmt:
			st.Line = line
		case *WhileStmt:
			st.Line = line
		case *ForStmt:
			st.Line = line
		}
	}
	return s, err
}

func (p *parser) bareStatement() (Stmt, error) {
	switch {
	case p.is("{"):
		return p.block()
	case p.accept(";"):
		return nil, nil
	case p.is("int") || p.is("char"):
		s, err := p.localDecl()
		if err != nil {
			return nil, err
		}
		if err := p.expect(";"); err != nil {
			return nil, err
		}
		return s, nil
	case p.accept("if"):
		return p.ifStmt()
	case p.accept("while"):
		return p.whileStmt()
	case p.accept("for"):
		return p.forStmt()
	case p.accept("return"):
		return p.returnStmt()
	case p.is("break"):
		line := p.line()
		p.pos++
		if p.loopDepth == 0 {
			return nil, &CompileError{Line: line, Msg: "break outside a loop"}
		}
		return &BreakStmt{Line: line}, p.expect(";")
	case p.is("continue"):
		line := p.line()
		p.pos++
		if p.loopDepth == 0 {
			return nil, &CompileError{Line: line, Msg: "continue outside a loop"}
		}
		return &ContinueStmt{Line: line}, p.expect(";")
	default:
		x, err := p.expr()
		if err != nil {
			return nil, err
		}
		return &ExprStmt{X: x}, p.expect(";")
	}
}

func (p *parser) localDecl() (Stmt, error) {
	base, err := p.baseType()
	if err != nil {
		return nil, err
	}
	typ := p.pointers(base)
	if p.cur().kind != tokIdent {
		return nil, p.errf("expected variable name")
	}
	name := p.next().text
	v := &VarDecl{Name: name, Type: typ, Line: p.line()}
	if p.accept("[") {
		n, err := p.constInt()
		if err != nil {
			return nil, err
		}
		if n <= 0 || n > 1<<16 {
			return nil, p.errf("bad array size %d", n)
		}
		if err := p.expect("]"); err != nil {
			return nil, err
		}
		v.Type = &Type{Kind: TypeArray, Elem: typ, Len: int(n)}
		v.AddrTaken = true // arrays live in memory
	}
	if err := p.declare(v); err != nil {
		return nil, err
	}
	d := &DeclStmt{Var: v}
	if p.accept("=") {
		if v.Type.Kind == TypeArray {
			return nil, p.errf("local arrays cannot have initializers")
		}
		x, err := p.assignExpr()
		if err != nil {
			return nil, err
		}
		d.Init, err = p.coerce(x, v.Type)
		if err != nil {
			return nil, err
		}
	}
	return d, nil
}

func (p *parser) ifStmt() (Stmt, error) {
	if err := p.expect("("); err != nil {
		return nil, err
	}
	cond, err := p.expr()
	if err != nil {
		return nil, err
	}
	cond = p.rvalue(cond)
	if err := p.expect(")"); err != nil {
		return nil, err
	}
	then, err := p.statement()
	if err != nil {
		return nil, err
	}
	s := &IfStmt{Cond: cond, Then: then}
	if p.accept("else") {
		s.Else, err = p.statement()
		if err != nil {
			return nil, err
		}
	}
	return s, nil
}

func (p *parser) whileStmt() (Stmt, error) {
	if err := p.expect("("); err != nil {
		return nil, err
	}
	cond, err := p.expr()
	if err != nil {
		return nil, err
	}
	cond = p.rvalue(cond)
	if err := p.expect(")"); err != nil {
		return nil, err
	}
	p.loopDepth++
	body, err := p.statement()
	p.loopDepth--
	if err != nil {
		return nil, err
	}
	return &WhileStmt{Cond: cond, Body: body}, nil
}

func (p *parser) forStmt() (Stmt, error) {
	if err := p.expect("("); err != nil {
		return nil, err
	}
	p.pushScope() // a for-init declaration scopes to the loop
	defer p.popScope()
	s := &ForStmt{}
	var err error
	if !p.accept(";") {
		if p.is("int") || p.is("char") {
			s.Init, err = p.localDecl()
		} else {
			var x Expr
			x, err = p.expr()
			s.Init = &ExprStmt{X: x}
		}
		if err != nil {
			return nil, err
		}
		if err := p.expect(";"); err != nil {
			return nil, err
		}
	}
	if !p.accept(";") {
		s.Cond, err = p.expr()
		if err != nil {
			return nil, err
		}
		s.Cond = p.rvalue(s.Cond)
		if err := p.expect(";"); err != nil {
			return nil, err
		}
	}
	if !p.is(")") {
		s.Post, err = p.expr()
		if err != nil {
			return nil, err
		}
	}
	if err := p.expect(")"); err != nil {
		return nil, err
	}
	p.loopDepth++
	s.Body, err = p.statement()
	p.loopDepth--
	if err != nil {
		return nil, err
	}
	return s, nil
}

func (p *parser) returnStmt() (Stmt, error) {
	line := p.line()
	s := &ReturnStmt{Line: line}
	if p.accept(";") {
		if p.fn.Ret.Kind != TypeVoid {
			return nil, &CompileError{Line: line,
				Msg: "return needs a value in function " + p.fn.Name}
		}
		return s, nil
	}
	x, err := p.expr()
	if err != nil {
		return nil, err
	}
	if p.fn.Ret.Kind == TypeVoid {
		return nil, &CompileError{Line: line,
			Msg: "void function " + p.fn.Name + " returns a value"}
	}
	s.X, err = p.coerce(x, p.fn.Ret)
	if err != nil {
		return nil, err
	}
	return s, p.expect(";")
}
