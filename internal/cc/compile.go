package cc

import "fmt"

// Target selects a code generator.
type Target int

// The three compilation targets of the evaluation.
const (
	// RISCWindowed is RISC I as built: register-window calling convention.
	RISCWindowed Target = iota
	// RISCFlat is the ablation: the same ISA compiled with a conventional
	// save/restore calling convention and no window sliding.
	RISCFlat
	// CISC is the CX comparator machine.
	CISC
	// RISCPipelined runs the windowed machine on the cycle-accurate
	// five-stage pipeline model: identical code generation and
	// architectural results, measured rather than unit-cost timing.
	RISCPipelined
)

func (t Target) String() string {
	switch t {
	case RISCWindowed:
		return "risc-windowed"
	case RISCFlat:
		return "risc-flat"
	case CISC:
		return "cisc"
	case RISCPipelined:
		return "risc-pipelined"
	}
	return fmt.Sprintf("target%d", int(t))
}

// Options controls compilation.
type Options struct {
	Target Target
	// NoDelaySlotFill keeps NOPs in every delay slot (RISC targets only);
	// the delayed-jump experiment compares both settings.
	NoDelaySlotFill bool
	// WideData disables gp-relative addressing of globals on the RISC
	// targets (r8 anchored at 4096, reaching the first 8 KiB with one
	// instruction) in favour of full 32-bit la sequences. Use it for
	// programs whose code+data exceeds 8 KiB.
	WideData bool
}

// Result is a compilation product.
type Result struct {
	Asm         string // assembly text for the target's assembler
	SlotsFilled int    // delay slots filled by the optimizer (RISC only)
}

// Compile parses, checks and compiles a Cm source file for the target.
func Compile(src string, opts Options) (*Result, error) {
	prog, err := Parse(src)
	if err != nil {
		return nil, err
	}
	switch opts.Target {
	case RISCWindowed, RISCFlat, RISCPipelined:
		text, err := generateRISC(prog, opts.Target != RISCFlat, !opts.WideData)
		if err != nil {
			return nil, err
		}
		res := &Result{Asm: text}
		if !opts.NoDelaySlotFill {
			res.Asm, res.SlotsFilled = OptimizeDelaySlots(text)
		}
		return res, nil
	case CISC:
		text, err := GenerateCISC(prog)
		if err != nil {
			return nil, err
		}
		return &Result{Asm: text}, nil
	}
	return nil, fmt.Errorf("cc: unknown target %v", opts.Target)
}
