package cc_test

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"risc1/internal/asm"
	"risc1/internal/cc"
	"risc1/internal/cisc"
	"risc1/internal/core"
)

// runTarget compiles and runs src on one target, returning console output.
func runTarget(t *testing.T, src string, target cc.Target) string {
	t.Helper()
	res, err := cc.Compile(src, cc.Options{Target: target})
	if err != nil {
		t.Fatalf("%v: compile: %v", target, err)
	}
	switch target {
	case cc.CISC:
		img, err := cisc.Assemble(res.Asm)
		if err != nil {
			t.Fatalf("cisc assemble: %v\n%s", err, numbered(res.Asm))
		}
		m := cisc.New(cisc.Config{})
		if err := m.Load(img); err != nil {
			t.Fatal(err)
		}
		if err := m.Run(); err != nil {
			t.Fatalf("cisc run: %v\n%s", err, numbered(res.Asm))
		}
		return m.Console()
	default:
		img, err := asm.Assemble(res.Asm)
		if err != nil {
			t.Fatalf("%v assemble: %v\n%s", target, err, numbered(res.Asm))
		}
		m := core.New(core.Config{Flat: target == cc.RISCFlat})
		if err := m.Load(img); err != nil {
			t.Fatal(err)
		}
		if err := m.Run(); err != nil {
			t.Fatalf("%v run: %v\n%s", target, err, numbered(res.Asm))
		}
		return m.Console()
	}
}

func numbered(src string) string {
	lines := strings.Split(src, "\n")
	var b strings.Builder
	for i, l := range lines {
		fmt.Fprintf(&b, "%4d| %s\n", i+1, l)
	}
	return b.String()
}

var allTargets = []cc.Target{cc.RISCWindowed, cc.RISCFlat, cc.CISC}

// checkAll runs src on all three targets and requires identical output.
func checkAll(t *testing.T, src, want string) {
	t.Helper()
	for _, target := range allTargets {
		if got := runTarget(t, src, target); got != want {
			t.Errorf("%v: output %q, want %q", target, got, want)
		}
	}
}

func TestArithmetic(t *testing.T) {
	checkAll(t, `
int main() {
	putint(2 + 3 * 4 - 6 / 2);     // 11
	putchar(' ');
	putint((7 & 3) | (8 ^ 1));     // 3 | 9 = 11
	putchar(' ');
	putint(1 << 10);               // 1024
	putchar(' ');
	putint(-20 >> 2);              // -5
	putchar(' ');
	putint(~0);                    // -1
	return 0;
}`, "11 11 1024 -5 -1")
}

func TestDivModSigns(t *testing.T) {
	// C semantics: division truncates toward zero; remainder follows the
	// dividend. RISC uses the software routines, CX the hardware divide —
	// they must agree exactly.
	checkAll(t, `
int main() {
	putint(7 / 2); putchar(' ');
	putint(-7 / 2); putchar(' ');
	putint(7 / -2); putchar(' ');
	putint(-7 / -2); putchar(' ');
	putint(7 % 3); putchar(' ');
	putint(-7 % 3); putchar(' ');
	putint(7 % -3); putchar(' ');
	putint(-7 % -3);
	return 0;
}`, "3 -3 -3 3 1 -1 1 -1")
}

func TestMultiplyRange(t *testing.T) {
	big := int64(46341) * 46341 // wraps when truncated to 32 bits
	checkAll(t, `
int main() {
	putint(123 * 456); putchar(' ');
	putint(-50 * 37); putchar(' ');
	putint(46341 * 46341);   // overflows 32 bits: wraps like C
	return 0;
}`, fmt.Sprintf("56088 -1850 %d", int32(big)))
}

func TestControlFlow(t *testing.T) {
	checkAll(t, `
int main() {
	int i; int sum;
	sum = 0;
	for (i = 1; i <= 10; i++) sum = sum + i;
	putint(sum); putchar(' ');
	i = 0;
	while (i < 5) { i++; if (i == 3) continue; putint(i); }
	putchar(' ');
	for (;;) { break; }
	if (sum > 50 && i == 5 || 0) putint(1); else putint(0);
	return 0;
}`, "55 1245 1")
}

func TestRecursionFibonacci(t *testing.T) {
	checkAll(t, `
int fib(int n) {
	if (n < 2) return n;
	return fib(n - 1) + fib(n - 2);
}
int main() { putint(fib(15)); return 0; }`, "610")
}

func TestDeepRecursionWindows(t *testing.T) {
	// Depth 100 forces window overflow traps on the windowed RISC.
	checkAll(t, `
int sum(int n) {
	if (n <= 0) return 0;
	return n + sum(n - 1);
}
int main() { putint(sum(100)); return 0; }`, "5050")
}

func TestGlobalsAndArrays(t *testing.T) {
	checkAll(t, `
int a[10];
int total;
int main() {
	int i;
	for (i = 0; i < 10; i++) a[i] = i * i;
	total = 0;
	for (i = 0; i < 10; i++) total += a[i];
	putint(total);
	return 0;
}`, "285")
}

func TestInitializedData(t *testing.T) {
	checkAll(t, `
int primes[] = {2, 3, 5, 7, 11};
int scale = 3;
char tag[] = "ok";
int main() {
	int i; int s;
	s = 0;
	for (i = 0; i < 5; i++) s += primes[i] * scale;
	putint(s);
	putchar(tag[0]); putchar(tag[1]);
	return 0;
}`, "84ok")
}

func TestPointers(t *testing.T) {
	checkAll(t, `
int x;
int main() {
	int *p;
	int v;
	p = &x;
	*p = 41;
	x = x + 1;
	putint(*p); putchar(' ');
	v = 7;
	p = &v;
	*p += 3;
	putint(v);
	return 0;
}`, "42 10")
}

func TestPointerArithmetic(t *testing.T) {
	checkAll(t, `
int a[5] = {10, 20, 30, 40, 50};
int main() {
	int *p; int *q;
	p = a;
	q = p + 4;
	putint(*q); putchar(' ');
	putint(q - p); putchar(' ');
	p++;
	putint(*p); putchar(' ');
	putint(*(a + 3));
	return 0;
}`, "50 4 20 40")
}

func TestCharsAndStrings(t *testing.T) {
	checkAll(t, `
char msg[] = "hello";
int length(char *s) {
	int n;
	n = 0;
	while (s[n]) n++;
	return n;
}
int main() {
	int i;
	for (i = 0; i < length(msg); i++) putchar(msg[i] - 32);  // upper-case
	putchar(' ');
	putint(length("four"));
	return 0;
}`, "HELLO 4")
}

func TestCharTruncation(t *testing.T) {
	checkAll(t, `
char c;
int main() {
	c = 300;          // truncates to 44
	putint(c); putchar(' ');
	c = c + 212;      // 256 -> 0
	putint(c);
	return 0;
}`, "44 0")
}

func TestLocalArrays(t *testing.T) {
	checkAll(t, `
int main() {
	int buf[8];
	int i; int s;
	for (i = 0; i < 8; i++) buf[i] = i + 1;
	s = 0;
	for (i = 0; i < 8; i++) s += buf[i];
	putint(s);
	return 0;
}`, "36")
}

func TestFunctionArgs(t *testing.T) {
	checkAll(t, `
int six(int a, int b, int c, int d, int e, int f) {
	return a + 2*b + 3*c + 4*d + 5*e + 6*f;
}
int main() { putint(six(1, 2, 3, 4, 5, 6)); return 0; }`, "91")
}

func TestNestedCallsInExpressions(t *testing.T) {
	checkAll(t, `
int sq(int x) { return x * x; }
int add(int a, int b) { return a + b; }
int main() {
	putint(add(sq(3), sq(4)) + sq(add(1, 1)));
	return 0;
}`, "29")
}

func TestTernaryAndBooleans(t *testing.T) {
	checkAll(t, `
int main() {
	int a; int b;
	a = 5; b = 9;
	putint(a > b ? a : b); putchar(' ');
	putint(a < b); putchar(' ');
	putint(!(a < b)); putchar(' ');
	putint((a == 5) + (b == 5));
	return 0;
}`, "9 1 0 1")
}

func TestShortCircuitEffects(t *testing.T) {
	checkAll(t, `
int count;
int bump() { count++; return 1; }
int main() {
	count = 0;
	if (0 && bump()) putint(99);
	if (1 || bump()) putint(count);   // both short-circuit: count still 0
	if (bump() && bump()) putint(count);
	return 0;
}`, "02")
}

func TestIncDecForms(t *testing.T) {
	checkAll(t, `
int a[3] = {5, 6, 7};
int main() {
	int i;
	i = 0;
	putint(i++); putint(i); putint(++i); putchar(' ');
	putint(a[1]--); putint(a[1]); putchar(' ');
	putint(--a[2]);
	return 0;
}`, "012 65 6")
}

func TestVoidFunctions(t *testing.T) {
	checkAll(t, `
int n;
void emit(int x) { putint(x + n); return; }
int main() {
	n = 10;
	emit(5);
	return 0;
}`, "15")
}

func TestPassingPointersToFunctions(t *testing.T) {
	checkAll(t, `
void swap(int *a, int *b) {
	int t;
	t = *a; *a = *b; *b = t;
}
int g1; int g2;
int main() {
	g1 = 3; g2 = 8;
	swap(&g1, &g2);
	putint(g1); putint(g2);
	return 0;
}`, "83")
}

func TestAddressOfLocal(t *testing.T) {
	checkAll(t, `
void setit(int *p) { *p = 77; }
int main() {
	int v;
	v = 0;
	setit(&v);
	putint(v);
	return 0;
}`, "77")
}

func TestManyLocalsSpillToFrame(t *testing.T) {
	// More locals than local registers: overflow goes to the frame.
	checkAll(t, `
int main() {
	int a; int b; int c; int d; int e; int f; int g; int h;
	int i; int j; int k; int l; int m;
	a=1; b=2; c=3; d=4; e=5; f=6; g=7; h=8; i=9; j=10; k=11; l=12; m=13;
	putint(a+b+c+d+e+f+g+h+i+j+k+l+m);
	return 0;
}`, "91")
}

func TestDeepExpressionSpill(t *testing.T) {
	// Expression deep enough to exhaust scratch registers on both targets.
	checkAll(t, `
int main() {
	int x;
	x = ((((1+2)*(3+4)) + ((5+6)*(7+8))) + (((9+10)*(11+12)) + ((13+14)*(15+16))));
	putint(x);
	return 0;
}`, fmt.Sprintf("%d", ((1+2)*(3+4)+(5+6)*(7+8))+((9+10)*(11+12)+(13+14)*(15+16))))
}

func TestCompileErrors(t *testing.T) {
	cases := map[string]string{
		"no main":          "int f() { return 0; }",
		"undefined var":    "int main() { return x; }",
		"undefined func":   "int main() { return f(); }",
		"arg count":        "int f(int a) { return a; } int main() { return f(1,2); }",
		"type mismatch":    "int *g; int main() { g = 5; return 0; }",
		"break outside":    "int main() { break; return 0; }",
		"assign to rvalue": "int main() { 3 = 4; return 0; }",
		"void variable":    "void v; int main() { return 0; }",
		"too many params":  "int f(int a,int b,int c,int d,int e,int f2,int g) { return 0; } int main() { return 0; }",
		"deref int":        "int main() { int x; return *x; }",
		"redeclared":       "int main() { int x; int x; return 0; }",
		"bad compound":     "int g[2]; int z() { return 1; } int main() { g[z()] += 2; return 0; }",
	}
	for what, src := range cases {
		if _, err := cc.Compile(src, cc.Options{Target: cc.RISCWindowed}); err == nil {
			t.Errorf("%s: compiled without error", what)
		}
	}
}

func TestDelaySlotOptimizerCounts(t *testing.T) {
	src := `
int fib(int n) {
	if (n < 2) return n;
	return fib(n - 1) + fib(n - 2);
}
int main() { putint(fib(10)); return 0; }`
	plain, err := cc.Compile(src, cc.Options{Target: cc.RISCWindowed, NoDelaySlotFill: true})
	if err != nil {
		t.Fatal(err)
	}
	opt, err := cc.Compile(src, cc.Options{Target: cc.RISCWindowed})
	if err != nil {
		t.Fatal(err)
	}
	if opt.SlotsFilled == 0 {
		t.Error("optimizer filled no delay slots")
	}
	if plain.SlotsFilled != 0 {
		t.Error("NoDelaySlotFill still filled slots")
	}
	// Both versions must still compute fib(10) = 55.
	for _, res := range []*cc.Result{plain, opt} {
		img, err := asm.Assemble(res.Asm)
		if err != nil {
			t.Fatalf("assemble: %v", err)
		}
		m := core.New(core.Config{})
		m.Load(img)
		if err := m.Run(); err != nil {
			t.Fatal(err)
		}
		if m.Console() != "55" {
			t.Errorf("fib(10) = %q", m.Console())
		}
	}
	if opt.Asm == plain.Asm {
		t.Error("optimized assembly identical to unoptimized")
	}
}

// TestDifferentialRandomExpressions generates random integer expression
// programs and checks that all three targets (software mul/div on RISC,
// hardware on CX) agree with a direct Go evaluation.
func TestDifferentialRandomExpressions(t *testing.T) {
	r := rand.New(rand.NewSource(42))
	for trial := 0; trial < 25; trial++ {
		expr, val := randomExpr(r, 4)
		src := fmt.Sprintf("int main() { putint(%s); return 0; }", expr)
		want := fmt.Sprintf("%d", val)
		for _, target := range allTargets {
			if got := runTarget(t, src, target); got != want {
				t.Fatalf("trial %d target %v: %s = %q, want %q",
					trial, target, expr, got, want)
			}
		}
	}
}

// randomExpr builds a random expression and its int32 value.
func randomExpr(r *rand.Rand, depth int) (string, int32) {
	if depth == 0 || r.Intn(4) == 0 {
		v := int32(r.Intn(2001) - 1000)
		if v < 0 {
			return fmt.Sprintf("(%d)", v), v
		}
		return fmt.Sprintf("%d", v), v
	}
	a, av := randomExpr(r, depth-1)
	b, bv := randomExpr(r, depth-1)
	switch r.Intn(8) {
	case 0:
		return fmt.Sprintf("(%s + %s)", a, b), av + bv
	case 1:
		return fmt.Sprintf("(%s - %s)", a, b), av - bv
	case 2:
		return fmt.Sprintf("(%s * %s)", a, b), av * bv
	case 3:
		if bv == 0 {
			return fmt.Sprintf("(%s + %s)", a, b), av + bv
		}
		return fmt.Sprintf("(%s / %s)", a, b), av / bv
	case 4:
		if bv == 0 {
			return fmt.Sprintf("(%s - %s)", a, b), av - bv
		}
		return fmt.Sprintf("(%s %% %s)", a, b), av % bv
	case 5:
		return fmt.Sprintf("(%s & %s)", a, b), av & bv
	case 6:
		return fmt.Sprintf("(%s | %s)", a, b), av | bv
	default:
		return fmt.Sprintf("(%s ^ %s)", a, b), av ^ bv
	}
}
