package cc

import (
	"strings"
)

// OptimizeDelaySlots rewrites RISC assembly text, moving the instruction
// preceding a branch into the branch's delay slot when that is provably
// safe, and returns the rewritten text plus the number of slots filled.
// This is the paper's post-pass: RISC I relied on a simple reorganizer to
// make delayed jumps cheap instead of building branch prediction hardware.
//
// A candidate pattern is
//
//	<inst X>
//	<branch B>     (b, b<cond>, jmpr, jmp — never call/ret: their slots
//	nop             execute in the callee's/caller's register window)
//
// X may move when it is a single real instruction (no li/la pseudos, which
// can expand to two words), does not set the condition codes (the branch
// may read them), and does not write a register the branch reads.
func OptimizeDelaySlots(src string) (string, int) {
	lines := strings.Split(src, "\n")
	filled := 0
	for i := 0; i+2 < len(lines); i++ {
		// Classify on comment-stripped text: the compiler stamps ";@line"
		// attribution markers on its instructions, and those must neither
		// defeat the pattern match nor confuse the register extraction.
		// The swap below moves the raw lines, so a marker travels with
		// its instruction into the slot.
		x := stripComment(lines[i])
		b := stripComment(lines[i+1])
		nop := stripComment(lines[i+2])
		if nop != "nop" || !isBranch(b) || !movable(x) {
			continue
		}
		if writesAny(x, branchReads(b)) {
			continue
		}
		// Swap X into the slot.
		lines[i], lines[i+1], lines[i+2] = lines[i+1], lines[i], ""
		copy(lines[i+2:], lines[i+3:])
		lines = lines[:len(lines)-1]
		filled++
		i++ // skip past the branch+slot we just built
	}
	return strings.Join(lines, "\n"), filled
}

// stripComment drops a trailing ";" comment and surrounding space. The
// generator never emits ";" inside a quoted string on an instruction line,
// so a plain byte scan suffices here.
func stripComment(line string) string {
	if i := strings.IndexByte(line, ';'); i >= 0 {
		line = line[:i]
	}
	return strings.TrimSpace(line)
}

func mnemonicOf(line string) string {
	f := strings.Fields(line)
	if len(f) == 0 {
		return ""
	}
	return f[0]
}

// isBranch recognizes the transfers whose slots we fill.
func isBranch(line string) bool {
	m := mnemonicOf(line)
	if m == "jmpr" || m == "jmp" {
		return true
	}
	// b and b<cond>.
	if m == "b" {
		return true
	}
	if strings.HasPrefix(m, "b") {
		_, ok := condNamesSet[m[1:]]
		return ok
	}
	return false
}

var condNamesSet = func() map[string]struct{} {
	s := map[string]struct{}{}
	for _, n := range []string{"nev", "alw", "eq", "ne", "gt", "le", "ge",
		"lt", "hi", "los", "lo", "his", "pl", "mi", "nv", "v"} {
		s[n] = struct{}{}
	}
	return s
}()

// movable instructions: plain ALU ops, loads and stores that neither set
// flags nor expand to multiple words.
var movableOps = map[string]bool{
	"add": true, "sub": true, "and": true, "or": true, "xor": true,
	"sll": true, "srl": true, "sra": true, "mov": true,
	"ldl": true, "ldbu": true, "ldbs": true, "ldsu": true, "ldss": true,
	"stl": true, "stb": true, "sts": true, "ldhi": true,
}

func movable(line string) bool {
	if line == "" || strings.HasSuffix(strings.Fields(line + " x")[0], ":") {
		return false
	}
	m := mnemonicOf(line)
	if strings.HasSuffix(m, "!") || strings.HasPrefix(m, ".") {
		return false
	}
	return movableOps[m]
}

// branchReads returns the registers a branch reads (for `jmp cond,(rx)s2`
// the base and a possible index register; relative branches read none).
func branchReads(line string) []string {
	if mnemonicOf(line) != "jmp" {
		return nil
	}
	var regs []string
	rest := strings.TrimSpace(strings.TrimPrefix(line, "jmp"))
	if i := strings.IndexByte(rest, ','); i >= 0 {
		rest = rest[i+1:]
	}
	// rest is like "(r3)#0" or "(r3)r4".
	rest = strings.TrimSpace(rest)
	if strings.HasPrefix(rest, "(") {
		if j := strings.IndexByte(rest, ')'); j > 1 {
			regs = append(regs, rest[1:j])
			tail := strings.TrimSpace(rest[j+1:])
			if strings.HasPrefix(tail, "r") {
				regs = append(regs, tail)
			}
		}
	}
	return regs
}

// writesAny reports whether instruction line writes any of regs.
func writesAny(line string, regs []string) bool {
	if len(regs) == 0 {
		return false
	}
	dst := destReg(line)
	if dst == "" {
		return false
	}
	for _, r := range regs {
		if r == dst {
			return true
		}
	}
	return false
}

// destReg extracts the destination register of a movable instruction
// (always the last comma-separated operand for ALU/loads; stores write
// memory only).
func destReg(line string) string {
	m := mnemonicOf(line)
	switch m {
	case "stl", "stb", "sts":
		return ""
	}
	i := strings.LastIndexByte(line, ',')
	if i < 0 {
		return ""
	}
	dst := strings.TrimSpace(line[i+1:])
	if strings.HasPrefix(dst, "r") {
		return dst
	}
	return ""
}
