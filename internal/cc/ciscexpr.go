package cc

import (
	"fmt"
	"strings"
)

// Expression generation for the CX back end.

// genOperand produces an operand specifier for e without necessarily using
// a temporary: literals, register locals, frame scalars and global int
// scalars are referenced directly (that is the CISC density story). Other
// expressions evaluate into a temp whose handle is returned for popping.
func (g *ciscGen) genOperand(e Expr) (string, tref, error) {
	switch x := e.(type) {
	case *IntLit:
		return fmt.Sprintf("#%d", int32(x.Val)), -1, nil
	case *VarRef:
		v := x.Decl
		if v.Type.Kind == TypeInt || v.Type.Kind == TypePtr {
			if r, ok := g.localReg[v]; ok {
				return fmt.Sprintf("r%d", r), -1, nil
			}
			if off, ok := g.localOff[v]; ok {
				return scalarSpec(off), -1, nil
			}
			if v.IsGlobal {
				return "@" + globalLabel(v), -1, nil
			}
		}
	}
	t, err := g.genExpr(e)
	if err != nil {
		return "", -1, err
	}
	return g.spec(t), t, nil
}

func (g *ciscGen) genExpr(e Expr) (tref, error) {
	switch x := e.(type) {
	case *IntLit:
		t := g.pushTemp()
		g.emit("movl #%d, %s", int32(x.Val), g.spec(t))
		return t, nil

	case *StrLit:
		t := g.pushTemp()
		g.emit("moval Lstr%d, %s", x.Index, g.spec(t))
		return t, nil

	case *VarRef:
		v := x.Decl
		t := g.pushTemp()
		switch {
		case v.Type.Kind == TypeArray:
			if v.IsGlobal {
				g.emit("moval %s, %s", globalLabel(v), g.spec(t))
			} else {
				off := g.localOff[v]
				g.emit("moval -%d(fp), %s", off+v.Type.Size(), g.spec(t))
			}
		case v.Type.Kind == TypeChar:
			g.emit("movzbl %s, %s", g.charVarSpec(v), g.spec(t))
		default:
			if r, ok := g.localReg[v]; ok {
				g.emit("movl r%d, %s", r, g.spec(t))
			} else if off, ok := g.localOff[v]; ok {
				g.emit("movl %s, %s", scalarSpec(off), g.spec(t))
			} else {
				g.emit("movl @%s, %s", globalLabel(v), g.spec(t))
			}
		}
		return t, nil

	case *Unary:
		return g.genUnary(x)

	case *Index:
		spec, temps, err := g.genMem(x)
		if err != nil {
			return -1, err
		}
		t := g.pushTemp()
		if x.TypeOf().Size() == 1 {
			g.emit("movzbl %s, %s", spec, g.spec(t))
		} else {
			g.emit("movl %s, %s", spec, g.spec(t))
		}
		// Move the result below the address temps, then pop them.
		return g.sinkResult(t, temps)

	case *Binary:
		return g.genBinary(x)

	case *Logic, *Cond:
		return g.genValueViaBranches(e)

	case *Assign:
		return g.genStoreVal(x.X, x.Y, true)

	case *IncDec:
		return g.genIncDec(x)

	case *Call:
		return g.genCall(x)
	}
	return -1, errorAt(0, "cisc: unknown expression %T", e)
}

// charVarSpec returns the byte-sized operand for a char variable. Register
// chars read the register (low byte semantics via movzbl source is wrong for
// registers — movzbl of a register reads its low byte, which is exactly the
// stored char since stores truncate).
func (g *ciscGen) charVarSpec(v *VarDecl) string {
	if r, ok := g.localReg[v]; ok {
		return fmt.Sprintf("r%d", r)
	}
	if off, ok := g.localOff[v]; ok {
		// chars in the frame occupy the low byte of their word: the
		// word address is the big-endian MSB, so the byte sits at +3.
		return fmt.Sprintf("-%d(fp)", off+1)
	}
	return "@" + globalLabel(v)
}

// sinkResult moves the result temp t below the given (still-live) address
// temps so the stack discipline holds, popping the address temps.
func (g *ciscGen) sinkResult(t tref, temps []tref) (tref, error) {
	if len(temps) == 0 {
		return t, nil
	}
	bottom := temps[0]
	if g.spec(t) != g.spec(bottom) {
		g.emit("movl %s, %s", g.spec(t), g.spec(bottom))
	}
	g.pop(t)
	for i := len(temps) - 1; i >= 1; i-- {
		g.pop(temps[i])
	}
	return bottom, nil
}

// genMem builds a memory operand specifier for an Index or deref lvalue,
// returning the live temps that back it (in push order).
func (g *ciscGen) genMem(lv Expr) (string, []tref, error) {
	switch x := lv.(type) {
	case *Index:
		base, err := g.genExpr(x.Arr)
		if err != nil {
			return "", nil, err
		}
		size := x.TypeOf().Size()
		// Constant index: displacement addressing off the base register.
		if lit, ok := x.Idx.(*IntLit); ok {
			off := lit.Val * int64(size)
			if off == 0 {
				return fmt.Sprintf("(r%d)", g.reg(base)), []tref{base}, nil
			}
			return fmt.Sprintf("%d(r%d)", off, g.reg(base)), []tref{base}, nil
		}
		// Register index: use scaled indexed addressing.
		rb := g.reg(base)
		if v, ok := x.Idx.(*VarRef); ok {
			if r, inReg := g.localReg[v.Decl]; inReg && v.Decl.Type.Kind == TypeInt {
				return indexedSpec(rb, r, size), []tref{base}, nil
			}
		}
		idx, err := g.genExpr(x.Idx)
		if err != nil {
			return "", nil, err
		}
		return indexedSpec(g.reg(base), g.reg(idx), size), []tref{base, idx}, nil

	case *Unary:
		if x.Op == "*" {
			t, err := g.genExpr(x.X)
			if err != nil {
				return "", nil, err
			}
			return fmt.Sprintf("(r%d)", g.reg(t)), []tref{t}, nil
		}
	}
	return "", nil, errorAt(0, "cisc: not a memory lvalue: %T", lv)
}

func indexedSpec(base, idx, size int) string {
	if size == 1 {
		return fmt.Sprintf("(r%d)[r%d.b]", base, idx)
	}
	return fmt.Sprintf("(r%d)[r%d]", base, idx)
}

func (g *ciscGen) genStoreVal(lv, rhs Expr, wantValue bool) (tref, error) {
	// Register and direct-memory scalars take the RHS operand directly.
	if x, ok := lv.(*VarRef); ok {
		v := x.Decl
		dst := ""
		if r, ok := g.localReg[v]; ok {
			dst = fmt.Sprintf("r%d", r)
		} else if off, ok := g.localOff[v]; ok {
			dst = scalarSpec(off)
		} else if v.IsGlobal && v.Type.IsScalar() {
			dst = "@" + globalLabel(v)
		}
		if dst != "" {
			src, t, err := g.genOperand(rhs)
			if err != nil {
				return -1, err
			}
			if t >= 0 {
				src = g.spec(t)
			}
			if v.Type.Kind == TypeChar {
				if _, inReg := g.localReg[v]; inReg {
					g.emit("movzbl %s, %s", byteOf(src), dst)
				} else {
					g.emit("movb %s, %s", byteOf(src), g.charVarSpec(v))
				}
			} else {
				g.emit("movl %s, %s", src, dst)
			}
			if wantValue {
				if t < 0 {
					t, err = g.genExpr(rhs)
					if err != nil {
						return -1, err
					}
				}
				return t, nil
			}
			if t >= 0 {
				g.pop(t)
			}
			return -1, nil
		}
	}

	// General memory lvalue: evaluate RHS first (into a temp or direct
	// operand), then build the memory specifier.
	vt, err := g.genExpr(rhs)
	if err != nil {
		return -1, err
	}
	spec, temps, err := g.genMem(lv)
	if err != nil {
		return -1, err
	}
	size := lvSize(lv)
	if size == 1 {
		g.emit("movb %s, %s", byteOf(g.spec(vt)), spec)
	} else {
		g.emit("movl %s, %s", g.spec(vt), spec)
	}
	for i := len(temps) - 1; i >= 0; i-- {
		g.pop(temps[i])
	}
	if wantValue {
		return vt, nil
	}
	g.pop(vt)
	return -1, nil
}

func lvSize(lv Expr) int { return lv.TypeOf().Size() }

// byteOf adapts a longword operand spec to a byte access. Registers read
// their low byte directly; frame/absolute references must address the low
// (big-endian: last) byte — but since RHS temps are registers or slot words
// holding small values, adjusting is only needed for slot words.
func byteOf(spec string) string {
	if strings.HasPrefix(spec, "r") || strings.HasPrefix(spec, "#") {
		return spec
	}
	// -N(fp) slot word: its low byte lives at -N+3.
	if strings.HasSuffix(spec, "(fp)") && strings.HasPrefix(spec, "-") {
		var n int
		fmt.Sscanf(spec, "-%d(fp)", &n)
		return fmt.Sprintf("-%d(fp)", n-3)
	}
	return spec
}

func (g *ciscGen) genUnary(x *Unary) (tref, error) {
	switch x.Op {
	case "-":
		src, t, err := g.genOperand(x.X)
		if err != nil {
			return -1, err
		}
		if t < 0 {
			t = g.pushTemp()
			g.emit("subl3 #0, %s, %s", src, g.spec(t))
		} else {
			g.emit("subl3 #0, %s, %s", g.spec(t), g.spec(t))
		}
		return t, nil
	case "~":
		src, t, err := g.genOperand(x.X)
		if err != nil {
			return -1, err
		}
		if t < 0 {
			t = g.pushTemp()
		}
		g.emit("xorl3 #-1, %s, %s", src, g.spec(t))
		return t, nil
	case "!":
		return g.genValueViaBranches(x)
	case "*":
		spec, temps, err := g.genMem(x)
		if err != nil {
			return -1, err
		}
		t := g.pushTemp()
		if x.TypeOf().Size() == 1 {
			g.emit("movzbl %s, %s", spec, g.spec(t))
		} else {
			g.emit("movl %s, %s", spec, g.spec(t))
		}
		return g.sinkResult(t, temps)
	case "&", "decay":
		return g.genAddr(x.X)
	}
	return -1, errorAt(0, "cisc: unknown unary %q", x.Op)
}

// genAddr produces the byte address of an lvalue or array in a temp.
func (g *ciscGen) genAddr(e Expr) (tref, error) {
	switch x := e.(type) {
	case *VarRef:
		v := x.Decl
		t := g.pushTemp()
		switch {
		case v.IsGlobal:
			g.emit("moval %s, %s", globalLabel(v), g.spec(t))
		default:
			off, ok := g.localOff[v]
			if !ok {
				return -1, errorAt(v.Line, "cisc: address of register variable %s", v.Name)
			}
			size := v.Type.Size()
			if v.Type.IsScalar() {
				g.emit("moval %s, %s", scalarSpec(off), g.spec(t))
			} else {
				g.emit("moval -%d(fp), %s", off+size, g.spec(t))
			}
		}
		return t, nil
	case *StrLit:
		t := g.pushTemp()
		g.emit("moval Lstr%d, %s", x.Index, g.spec(t))
		return t, nil
	case *Unary:
		if x.Op == "*" || x.Op == "decay" {
			if x.Op == "decay" {
				return g.genAddr(x.X)
			}
			return g.genExpr(x.X)
		}
	case *Index:
		spec, temps, err := g.genMem(x)
		if err != nil {
			return -1, err
		}
		t := g.pushTemp()
		g.emit("moval %s, %s", spec, g.spec(t))
		return g.sinkResult(t, temps)
	}
	return -1, errorAt(0, "cisc: cannot take the address of %T", e)
}

var cxALUOp = map[string]string{
	"+": "addl3", "-": "subl3", "*": "mull3", "/": "divl3",
	"&": "andl3", "|": "orl3", "^": "xorl3",
}

func (g *ciscGen) genBinary(b *Binary) (tref, error) {
	if _, isCmp := cxCondName[b.Op]; isCmp {
		return g.genValueViaBranches(b)
	}
	// Strength-reduce multiply/divide by powers of two, as contemporary
	// CISC compilers did (MULL is 16 microcycles, DIVL 40).
	if lit, ok := b.Y.(*IntLit); ok {
		if sh := log2(lit.Val); sh >= 0 && (b.Op == "*" || b.Op == "/") {
			if sh == 0 {
				return g.genExpr(b.X)
			}
			if b.Op == "*" {
				sx, tx, err := g.genOperand(b.X)
				if err != nil {
					return -1, err
				}
				if tx < 0 {
					tx = g.pushTemp()
				} else {
					sx = g.spec(tx)
				}
				g.emit("ashl #%d, %s, %s", sh, sx, g.spec(tx))
				return tx, nil
			}
			// Truncating /2^sh: bias negative dividends before the
			// arithmetic shift.
			t, err := g.genExpr(b.X)
			if err != nil {
				return -1, err
			}
			pos := g.newLabel("divp")
			g.emit("tstl %s", g.spec(t))
			g.emit("bge %s", pos)
			g.emit("addl2 #%d, %s", (1<<sh)-1, g.spec(t))
			g.label(pos)
			g.emit("ashl #%d, %s, %s", -sh, g.spec(t), g.spec(t))
			return t, nil
		}
	}
	if b.Op == "%" {
		return g.genMod(b)
	}
	if b.Op == "<<" || b.Op == ">>" {
		return g.genShift(b)
	}

	sx, tx, err := g.genOperand(b.X)
	if err != nil {
		return -1, err
	}
	sy, ty, err := g.genOperand(b.Y)
	if err != nil {
		return -1, err
	}
	if tx >= 0 {
		sx = g.spec(tx)
	}
	// Pointer arithmetic: scale the integer operand.
	if b.Scale > 1 {
		if ty < 0 {
			ty, err = g.genExpr(b.Y)
			if err != nil {
				return -1, err
			}
		}
		g.emit("ashl #2, %s, %s", g.spec(ty), g.spec(ty))
		sy = g.spec(ty)
	} else if ty >= 0 {
		sy = g.spec(ty)
	}

	dst := tx
	switch {
	case tx >= 0 && ty >= 0:
		g.emit("%s %s, %s, %s", cxALUOp[b.Op], sx, sy, g.spec(tx))
		g.pop(ty)
	case tx >= 0:
		g.emit("%s %s, %s, %s", cxALUOp[b.Op], sx, sy, g.spec(tx))
	case ty >= 0:
		g.emit("%s %s, %s, %s", cxALUOp[b.Op], sx, sy, g.spec(ty))
		dst = ty
	default:
		dst = g.pushTemp()
		g.emit("%s %s, %s, %s", cxALUOp[b.Op], sx, sy, g.spec(dst))
	}
	// Pointer difference: divide by the element size.
	if b.Scale < 0 && -b.Scale == 4 {
		g.emit("ashl #-2, %s, %s", g.spec(dst), g.spec(dst))
	}
	return dst, nil
}

func (g *ciscGen) genMod(b *Binary) (tref, error) {
	// a % b = a - (a/b)*b, with hardware divide.
	ta, err := g.genExpr(b.X)
	if err != nil {
		return -1, err
	}
	sb, tb, err := g.genOperand(b.Y)
	if err != nil {
		return -1, err
	}
	if tb >= 0 {
		sb = g.spec(tb)
	}
	q := g.pushTemp() // stack: ta [, tb], q — popped in reverse
	if tb >= 0 {
		sb = g.spec(tb) // re-query: allocating q may have spilled tb
	}
	g.emit("divl3 %s, %s, %s", g.spec(ta), sb, g.spec(q))
	g.emit("mull2 %s, %s", sb, g.spec(q))
	g.emit("subl2 %s, %s", g.spec(q), g.spec(ta))
	g.pop(q)
	if tb >= 0 {
		g.pop(tb)
	}
	return ta, nil
}

func (g *ciscGen) genShift(b *Binary) (tref, error) {
	sx, tx, err := g.genOperand(b.X)
	if err != nil {
		return -1, err
	}
	// Shift count: constant or register.
	if lit, ok := b.Y.(*IntLit); ok {
		n := lit.Val & 31
		if b.Op == ">>" {
			n = -n
		}
		if tx < 0 {
			tx = g.pushTemp()
		} else {
			sx = g.spec(tx)
		}
		g.emit("ashl #%d, %s, %s", n, sx, g.spec(tx))
		return tx, nil
	}
	ty, err := g.genExpr(b.Y)
	if err != nil {
		return -1, err
	}
	if tx >= 0 {
		sx = g.spec(tx)
	}
	if b.Op == ">>" {
		g.emit("subl3 #0, %s, %s", g.spec(ty), g.spec(ty))
	}
	dst := ty
	g.emit("ashl %s, %s, %s", g.spec(ty), sx, g.spec(ty))
	if tx >= 0 {
		// Result is in ty (top); sink it into tx.
		if g.spec(ty) != g.spec(tx) {
			g.emit("movl %s, %s", g.spec(ty), g.spec(tx))
		}
		g.pop(ty)
		dst = tx
	}
	return dst, nil
}

func (g *ciscGen) genValueViaBranches(e Expr) (tref, error) {
	g.spillAllTemps()
	slot := g.allocSlot()
	meet := g.slotSpec(slot)

	if c, ok := e.(*Cond); ok {
		elseL := g.newLabel("celse")
		endL := g.newLabel("cend")
		if err := g.genBranch(c.C, elseL, false); err != nil {
			return -1, err
		}
		ta, err := g.genExpr(c.A)
		if err != nil {
			return -1, err
		}
		g.emit("movl %s, %s", g.spec(ta), meet)
		g.pop(ta)
		g.emit("br %s", endL)
		g.label(elseL)
		tb, err := g.genExpr(c.B)
		if err != nil {
			return -1, err
		}
		g.emit("movl %s, %s", g.spec(tb), meet)
		g.pop(tb)
		g.label(endL)
	} else {
		trueL := g.newLabel("btrue")
		endL := g.newLabel("bend")
		if err := g.genBranch(e, trueL, true); err != nil {
			return -1, err
		}
		g.emit("clrl %s", meet)
		g.emit("br %s", endL)
		g.label(trueL)
		g.emit("movl #1, %s", meet)
		g.label(endL)
	}
	t := g.pushTemp()
	g.emit("movl %s, %s", meet, g.spec(t))
	g.freeSlots = append(g.freeSlots, slot)
	return t, nil
}

func (g *ciscGen) genIncDec(x *IncDec) (tref, error) {
	if lv, ok := x.X.(*VarRef); ok {
		dst := ""
		if r, ok := g.localReg[lv.Decl]; ok {
			dst = fmt.Sprintf("r%d", r)
		} else if off, ok := g.localOff[lv.Decl]; ok {
			dst = scalarSpec(off)
		} else if lv.Decl.IsGlobal && lv.Decl.Type.IsScalar() {
			dst = "@" + globalLabel(lv.Decl)
		}
		if dst != "" {
			t := g.pushTemp()
			if x.Post {
				g.emit("movl %s, %s", dst, g.spec(t))
				g.emitDelta(dst, x.Delta)
			} else {
				g.emitDelta(dst, x.Delta)
				g.emit("movl %s, %s", dst, g.spec(t))
			}
			return t, nil
		}
	}
	// Memory lvalue.
	spec, temps, err := g.genMem(x.X)
	if err != nil {
		return -1, err
	}
	t := g.pushTemp()
	if x.Post {
		g.emit("movl %s, %s", spec, g.spec(t))
		g.emitDelta(spec, x.Delta)
	} else {
		g.emitDelta(spec, x.Delta)
		g.emit("movl %s, %s", spec, g.spec(t))
	}
	return g.sinkResult(t, temps)
}

func (g *ciscGen) emitDelta(dst string, delta int) {
	switch delta {
	case 1:
		g.emit("incl %s", dst)
	case -1:
		g.emit("decl %s", dst)
	default:
		if delta >= 0 {
			g.emit("addl2 #%d, %s", delta, dst)
		} else {
			g.emit("subl2 #%d, %s", -delta, dst)
		}
	}
}

func (g *ciscGen) genCall(c *Call) (tref, error) {
	switch c.Builtin {
	case "spawn", "join", "lock", "unlock", "coreid", "ncores":
		// The SMP runtime exists only for the windowed RISC target.
		return -1, &CompileError{Line: c.Line,
			Msg: c.Builtin + " requires the windowed risc target"}
	}
	if c.Builtin != "" {
		src, t, err := g.genOperand(c.Args[0])
		if err != nil {
			return -1, err
		}
		if t >= 0 {
			src = g.spec(t)
		}
		port := "@0xFFFFFF00"
		if c.Builtin == "putint" {
			port = "@0xFFFFFF04"
		}
		g.emit("movl %s, %s", src, port)
		if t >= 0 {
			g.pop(t)
		}
		return -1, nil
	}

	g.spillAllTemps()
	// Push arguments right-to-left; each is evaluated just before its
	// push, so inner calls compose naturally.
	for i := len(c.Args) - 1; i >= 0; i-- {
		src, t, err := g.genOperand(c.Args[i])
		if err != nil {
			return -1, err
		}
		if t >= 0 {
			src = g.spec(t)
		}
		g.emit("pushl %s", src)
		if t >= 0 {
			g.pop(t)
		}
	}
	g.emit("calls #%d, %s", len(c.Args), c.Func.Name)
	if c.Func.Ret.Kind == TypeVoid {
		return -1, nil
	}
	t := g.pushTemp()
	if g.spec(t) != "r0" {
		g.emit("movl r0, %s", g.spec(t))
	}
	return t, nil
}

// ---------- data ----------

func (g *ciscGen) genData() {
	g.out.WriteString("\n; ---- data ----\n\t.align 4\n__data_start:\n")
	for _, v := range g.prog.Globals {
		fmt.Fprintf(&g.out, "%s:\n", globalLabel(v))
		g.emitInit(v)
		g.out.WriteString("\t.align 4\n")
	}
	for i, s := range g.prog.Strings {
		fmt.Fprintf(&g.out, "Lstr%d:\t.asciz %q\n\t.align 4\n", i, s)
	}
}

func (g *ciscGen) emitInit(v *VarDecl) {
	switch {
	case v.InitString != "":
		fmt.Fprintf(&g.out, "\t.asciz %q\n", v.InitString)
		if pad := v.Type.Len - len(v.InitString) - 1; pad > 0 {
			fmt.Fprintf(&g.out, "\t.space %d\n", pad)
		}
	case len(v.InitInts) > 0:
		if v.Type.Kind == TypeArray && v.Type.Elem.Kind == TypeChar {
			for _, n := range v.InitInts {
				fmt.Fprintf(&g.out, "\t.byte %d\n", uint8(n))
			}
			if pad := v.Type.Len - len(v.InitInts); pad > 0 {
				fmt.Fprintf(&g.out, "\t.space %d\n", pad)
			}
			return
		}
		vals := make([]string, len(v.InitInts))
		for i, n := range v.InitInts {
			vals[i] = fmt.Sprintf("%d", int32(n))
		}
		fmt.Fprintf(&g.out, "\t.word %s\n", strings.Join(vals, ", "))
		if v.Type.Kind == TypeArray {
			if pad := 4 * (v.Type.Len - len(v.InitInts)); pad > 0 {
				fmt.Fprintf(&g.out, "\t.space %d\n", pad)
			}
		}
	default:
		fmt.Fprintf(&g.out, "\t.space %d\n", v.Type.Size())
	}
}
