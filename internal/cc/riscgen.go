package cc

import (
	"fmt"
	"strings"
)

// fmt2 is a short alias used by the emitters.
func fmt2(format string, args ...any) string { return fmt.Sprintf(format, args...) }

// GenerateRISC compiles a checked program to RISC I assembly (package asm
// syntax). windowed selects the register-window calling convention; false
// selects the flat-register ablation, whose compiler must save and restore
// registers around calls like any conventional machine.
//
// The emitted code leaves a NOP in every delayed-transfer slot;
// OptimizeDelaySlots rewrites the text to fill the slots it can.
func GenerateRISC(prog *Program, windowed bool) (string, error) {
	return generateRISC(prog, windowed, true)
}

func generateRISC(prog *Program, windowed, useGP bool) (string, error) {
	g := &riscGen{prog: prog, windowed: windowed, useGP: useGP}
	return g.generate()
}

// GPReg is the global-pointer register: anchored at address 4096 by the
// startup stub so any symbol in the first 8 KiB is one signed-13-bit
// displacement away — the classic small-data trick, matching the CISC's
// absolute addressing with a single instruction instead of an ldhi pair.
const GPReg = 8

// gpAnchor is the value the startup stub loads into GPReg.
const gpAnchor = 4096

// Calling-convention register assignments.
type riscConv struct {
	argIn    uint8 // first incoming-parameter register
	argOut   uint8 // first outgoing-argument register
	retIn    uint8 // where the caller finds the return value
	retOut   uint8 // where the callee leaves the return value
	link     uint8
	sp       uint8
	localLo  uint8 // local-variable register range
	localHi  uint8
	scratch  []uint8 // expression temporaries (clobbered by calls)
	saveUsed bool    // callee must save/restore its local registers
}

func conventionFor(windowed bool) riscConv {
	if windowed {
		// Outgoing arguments in LOW (r10..r15) become the callee's HIGH
		// (r26..r31); the return value travels back through the same
		// overlap. The link register is a LOCAL so every activation
		// keeps its own. No register is ever saved by software unless
		// the hardware runs out of windows.
		return riscConv{
			argIn: 26, argOut: 10, retIn: 10, retOut: 26,
			link: 25, sp: 9, localLo: 16, localHi: 24,
			scratch: []uint8{10, 11, 12, 13, 14, 15},
		}
	}
	// Flat: a conventional RISC convention. r1..r6 carry arguments and
	// are caller-saved; r16..r24 are callee-saved locals; r25 holds the
	// return address and must be saved by non-leaf procedures.
	return riscConv{
		argIn: 1, argOut: 1, retIn: 1, retOut: 1,
		link: 25, sp: 9, localLo: 16, localHi: 24,
		scratch:  []uint8{10, 11, 12, 13, 14, 15},
		saveUsed: true,
	}
}

// rtemp is one entry of the expression-temporary stack.
type rtemp struct {
	reg  int16 // register, or -1 when spilled
	slot int   // frame spill slot when spilled
}

type riscGen struct {
	prog     *Program
	windowed bool
	useGP    bool
	conv     riscConv
	out      strings.Builder

	// per-function state
	fn        *FuncDecl
	body      []string
	localReg  map[*VarDecl]uint8
	localOff  map[*VarDecl]int
	memBytes  int // frame bytes used by memory locals
	temps     []rtemp
	freeRegs  []uint8
	pinned    map[uint8]bool
	freeSlots []int
	spillMax  int // total spill slots ever allocated
	labelN    int
	breakL    []string
	contL     []string
	savedRegs []uint8

	usesMul, usesDiv, usesMod bool

	usesSpawn, usesJoin, usesLock, usesUnlock bool

	// curLine is the Cm source line the statement generator is currently
	// lowering; emit stamps it on each instruction as a ";@line N" marker
	// that the assembler folds into the image's line table. Zero (runtime
	// helpers, prologue glue) leaves attribution on the assembly text.
	curLine int
}

type tref int

func (g *riscGen) emit(format string, args ...any) {
	s := "\t" + fmt.Sprintf(format, args...)
	if g.curLine > 0 {
		s += fmt.Sprintf(" ;@line %d", g.curLine)
	}
	g.body = append(g.body, s)
}

func (g *riscGen) label(l string) { g.body = append(g.body, l+":") }

func (g *riscGen) newLabel(hint string) string {
	g.labelN++
	return fmt.Sprintf(".L%s_%s%d", g.fn.Name, hint, g.labelN)
}

func (g *riscGen) generate() (string, error) {
	g.conv = conventionFor(g.windowed)
	fmt.Fprintf(&g.out, "; Cm compiler output, target: RISC I (%s)\n",
		map[bool]string{true: "register windows", false: "flat registers"}[g.windowed])
	if g.useGP {
		// Startup stub: anchor the global pointer, then fall into main
		// with a plain branch so the halt linkage set at reset survives.
		g.out.WriteString("\t.entry __start\n__start:\n")
		fmt.Fprintf(&g.out, "\tli #%d,r%d\n", gpAnchor, GPReg)
		g.out.WriteString("\tb main\n\tnop\n")
	} else {
		g.out.WriteString("\t.entry main\n")
	}
	for _, fn := range g.prog.Funcs {
		if err := g.genFunc(fn); err != nil {
			return "", err
		}
	}
	if g.usesMul {
		g.out.WriteString(g.runtimeMul())
	}
	if g.usesDiv {
		g.out.WriteString(g.runtimeDivMod("__divsi", true))
	}
	if g.usesMod {
		g.out.WriteString(g.runtimeDivMod("__modsi", false))
	}
	if g.usesSpawn {
		g.out.WriteString(g.runtimeSpawn())
	}
	if g.usesJoin {
		g.out.WriteString(g.runtimeJoin())
	}
	if g.usesLock {
		g.out.WriteString(g.runtimeLock())
	}
	if g.usesUnlock {
		g.out.WriteString(g.runtimeUnlock())
	}
	g.genData()
	return g.out.String(), nil
}

// errorAt builds a backend diagnostic.
func errorAt(line int, format string, args ...any) error {
	return &CompileError{Line: line, Msg: fmt.Sprintf(format, args...)}
}

// ---------- function framework ----------

func (g *riscGen) genFunc(fn *FuncDecl) error {
	g.fn = fn
	g.body = nil
	g.curLine = fn.Line
	g.localReg = map[*VarDecl]uint8{}
	g.localOff = map[*VarDecl]int{}
	g.memBytes = 0
	g.temps = nil
	g.pinned = map[uint8]bool{}
	g.freeSlots, g.spillMax = nil, 0
	g.labelN = 0
	g.breakL, g.contL = nil, nil
	g.savedRegs = nil

	// Assign storage: parameters first, then locals.
	nextLocal := g.conv.localLo
	if !g.windowed {
		nextLocal = g.conv.localLo // parameters also consume local registers
	}
	usedLocal := map[uint8]bool{}
	takeLocalReg := func() (uint8, bool) {
		for r := nextLocal; r <= g.conv.localHi; r++ {
			if !usedLocal[r] && r != g.conv.link {
				usedLocal[r] = true
				return r, true
			}
		}
		return 0, false
	}
	frameAlloc := func(size int) int {
		off := g.memBytes
		g.memBytes += (size + 3) &^ 3
		return off
	}

	for i, p := range fn.Params {
		if p.AddrTaken {
			g.localOff[p] = frameAlloc(4)
			continue
		}
		if g.windowed {
			// Parameters live where they arrive: the HIGH registers.
			g.localReg[p] = g.conv.argIn + uint8(i)
			continue
		}
		r, ok := takeLocalReg()
		if !ok {
			g.localOff[p] = frameAlloc(4)
			continue
		}
		g.localReg[p] = r
	}
	for _, v := range fn.Locals {
		if v.AddrTaken || !v.Type.IsScalar() {
			g.localOff[v] = frameAlloc(v.Type.Size())
			continue
		}
		if r, ok := takeLocalReg(); ok {
			g.localReg[v] = r
		} else {
			g.localOff[v] = frameAlloc(4)
		}
	}

	// Scratch pool: the convention's scratch registers plus any local
	// registers this function left unused (windowed only — in flat mode
	// unused locals would have to be saved to be usable).
	g.freeRegs = append([]uint8(nil), g.conv.scratch...)
	if g.windowed {
		for r := g.conv.localLo; r <= g.conv.localHi; r++ {
			if !usedLocal[r] && r != g.conv.link {
				g.freeRegs = append(g.freeRegs, r)
			}
		}
	}

	// Generate the body.
	retLabel := fmt.Sprintf(".Lret_%s", fn.Name)
	if err := g.genBlock(fn.Body); err != nil {
		return err
	}
	g.label(retLabel)

	// Assemble prologue / body / epilogue now that the frame is known.
	if !g.windowed {
		for _, v := range fn.Locals {
			if r, ok := g.localReg[v]; ok {
				g.savedRegs = append(g.savedRegs, r)
			}
		}
		for _, p := range fn.Params {
			if r, ok := g.localReg[p]; ok {
				g.savedRegs = append(g.savedRegs, r)
			}
		}
		if !fn.IsLeaf {
			g.savedRegs = append(g.savedRegs, g.conv.link)
		}
	}
	frame := g.memBytes + 4*g.spillMax + 4*len(g.savedRegs)
	sp := g.conv.sp

	fmt.Fprintf(&g.out, "\n; ---- %s ----\n%s:\n", fn.Name, fn.Name)
	if frame > 0 {
		fmt.Fprintf(&g.out, "\tsub r%d,#%d,r%d\n", sp, frame, sp)
	}
	saveBase := g.memBytes + 4*g.spillMax
	for i, r := range g.savedRegs {
		fmt.Fprintf(&g.out, "\tstl r%d,(r%d)#%d\n", r, sp, saveBase+4*i)
	}
	// Flat mode: move incoming arguments to their homes.
	if !g.windowed {
		for i, p := range fn.Params {
			in := g.conv.argIn + uint8(i)
			if r, ok := g.localReg[p]; ok {
				fmt.Fprintf(&g.out, "\tmov r%d,r%d\n", in, r)
			} else if off, ok := g.localOff[p]; ok {
				fmt.Fprintf(&g.out, "\tstl r%d,(r%d)#%d\n", in, sp, off)
			}
		}
	} else {
		for i, p := range fn.Params {
			if off, ok := g.localOff[p]; ok { // address-taken parameter
				fmt.Fprintf(&g.out, "\tstl r%d,(r%d)#%d\n",
					g.conv.argIn+uint8(i), sp, off)
			}
		}
	}
	for _, line := range g.body {
		g.out.WriteString(line)
		g.out.WriteByte('\n')
	}
	// Epilogue.
	for i, r := range g.savedRegs {
		fmt.Fprintf(&g.out, "\tldl (r%d)#%d,r%d\n", sp, saveBase+4*i, r)
	}
	if frame > 0 {
		fmt.Fprintf(&g.out, "\tadd r%d,#%d,r%d\n", sp, frame, sp)
	}
	fmt.Fprintf(&g.out, "\tret r%d,#8\n\tnop\n", g.conv.link)
	return nil
}

// ---------- temporaries ----------

func (g *riscGen) takeReg() uint8 {
	if len(g.freeRegs) > 0 {
		r := g.freeRegs[0]
		g.freeRegs = g.freeRegs[1:]
		return r
	}
	// Spill the oldest unpinned in-register temporary.
	for i := range g.temps {
		t := &g.temps[i]
		if t.reg >= 0 && !g.pinned[uint8(t.reg)] {
			r := uint8(t.reg)
			t.slot = g.allocSlot()
			g.emit("stl r%d,(r%d)#%d", r, g.conv.sp, g.slotOff(t.slot))
			t.reg = -1
			return r
		}
	}
	panic("cc: expression too complex: out of temporary registers")
}

func (g *riscGen) allocSlot() int {
	if n := len(g.freeSlots); n > 0 {
		s := g.freeSlots[n-1]
		g.freeSlots = g.freeSlots[:n-1]
		return s
	}
	g.spillMax++
	return g.spillMax - 1
}

func (g *riscGen) slotOff(slot int) int { return g.memBytes + 4*slot }

func (g *riscGen) pushTemp() tref {
	r := g.takeReg()
	g.temps = append(g.temps, rtemp{reg: int16(r)})
	return tref(len(g.temps) - 1)
}

// reg ensures the temp is register-resident and returns its register.
func (g *riscGen) reg(t tref) uint8 {
	tm := &g.temps[t]
	if tm.reg >= 0 {
		return uint8(tm.reg)
	}
	r := g.takeReg()
	g.emit("ldl (r%d)#%d,r%d", g.conv.sp, g.slotOff(tm.slot), r)
	g.freeSlots = append(g.freeSlots, tm.slot)
	tm.reg = int16(r)
	return r
}

// pop releases the top temporary, which must be t.
func (g *riscGen) pop(t tref) {
	if int(t) != len(g.temps)-1 {
		panic("cc: temp stack discipline violated")
	}
	tm := g.temps[t]
	if tm.reg >= 0 {
		g.freeRegs = append(g.freeRegs, uint8(tm.reg))
		delete(g.pinned, uint8(tm.reg))
	} else {
		g.freeSlots = append(g.freeSlots, tm.slot)
	}
	g.temps = g.temps[:t]
}

// spillAllTemps forces every live temporary to its frame slot (before a
// call clobbers the scratch registers).
func (g *riscGen) spillAllTemps() {
	for i := range g.temps {
		t := &g.temps[i]
		if t.reg >= 0 {
			t.slot = g.allocSlot()
			g.emit("stl r%d,(r%d)#%d", uint8(t.reg), g.conv.sp, g.slotOff(t.slot))
			g.freeRegs = append(g.freeRegs, uint8(t.reg))
			delete(g.pinned, uint8(t.reg))
			t.reg = -1
		}
	}
}

func (g *riscGen) pin(r uint8)   { g.pinned[r] = true }
func (g *riscGen) unpin(r uint8) { delete(g.pinned, r) }
